package core

import (
	"fmt"

	"scap/internal/pgrid"
)

// Solver selects the power-grid solve path used by every per-pattern and
// statistical rail analysis (see DESIGN.md "Solver hierarchy").
type Solver uint8

const (
	// SolverFactored (the default) solves every injection against the
	// grid's cached banded LDLᵀ factorization: the matrix work is paid
	// once per grid and each solve is two exact triangular sweeps. The
	// factorization is read-only after construction, so all workers share
	// it and results are independent of the worker count by construction.
	SolverFactored Solver = iota
	// SolverSOR keeps the iterative successive-over-relaxation path with
	// shared warm starts — the fallback for memory-constrained meshes
	// (the factor stores N³ floats) and the cross-validation oracle the
	// equivalence tests run against.
	SolverSOR
)

// String names the solver the way the -solver flag spells it.
func (s Solver) String() string {
	if s == SolverSOR {
		return "sor"
	}
	return "factored"
}

// ParseSolver maps a -solver flag value onto a Solver.
func ParseSolver(name string) (Solver, error) {
	switch name {
	case "", "factored":
		return SolverFactored, nil
	case "sor":
		return SolverSOR, nil
	}
	return 0, fmt.Errorf("core: unknown solver %q (want factored or sor)", name)
}

// solveRail solves one rail injection with the system's configured
// solver. The reuse hooks are all optional: warm (an initial guess)
// applies only to the SOR path, scratch only to the factored path, and
// reuse recycles the Solution under both.
func (sys *System) solveRail(g *pgrid.Grid, inj, warm []float64, reuse *pgrid.Solution, scratch *pgrid.SolveScratch) (*pgrid.Solution, error) {
	if sys.Solver == SolverSOR {
		return g.SolveWarm(inj, warm, reuse)
	}
	return g.SolveFactored(inj, reuse, scratch)
}
