package core

import (
	"fmt"

	"scap/internal/pgrid"
)

// Solver selects the power-grid solve path used by every per-pattern and
// statistical rail analysis (see DESIGN.md "Solver hierarchy").
type Solver uint8

const (
	// SolverFactored (the default) solves every injection against the
	// grid's cached banded LDLᵀ factorization: the matrix work is paid
	// once per grid and each solve is two exact triangular sweeps. The
	// factorization is read-only after construction, so all workers share
	// it and results are independent of the worker count by construction.
	SolverFactored Solver = iota
	// SolverSOR keeps the iterative successive-over-relaxation path with
	// shared warm starts — the fallback for memory-constrained meshes
	// (the factor stores N³ floats) and the cross-validation oracle the
	// equivalence tests run against.
	SolverSOR
	// SolverSparse solves against the grid's cached sparse LDLᵀ
	// factorization under a geometric nested-dissection ordering. Same
	// exactness and sharing discipline as SolverFactored, but factor
	// storage is O(N·log N) instead of the banded N³, so it scales to
	// meshes the banded tier cannot hold. Per-pattern cost is two sparse
	// triangular sweeps over nnz(L).
	SolverSparse
	// SolverMG solves by geometric V-cycle multigrid (red-black
	// Gauss-Seidel smoothing, full-weighting/bilinear transfers, direct
	// coarse solve) to the grid's Tol, with per-solve O(N) work and no
	// factor storage at all — the tier for meshes where even the sparse
	// factor's O(N·log N) bites. The smoother/residual/transfer passes
	// fan out over the grid's Workers knob (row-blocked, bit-identical
	// for any count), and per-pattern warm starts cut the V-cycle count
	// the way they cut SOR sweeps.
	SolverMG
	// SolverAuto defers the choice to Build, which resolves it from the
	// mesh node count: factored while the banded factor is cheap, sparse
	// through the mid sizes, multigrid above autoMGNodes.
	SolverAuto
)

// Auto-tier thresholds, in mesh nodes (N²): above autoSparseNodes the
// banded factor's N³ storage stops being worth its simplicity; above
// autoMGNodes the sparse factor's storage and build time lose to the
// factor-free multigrid tier (the grid-scale sweep in EXPERIMENTS.md is
// the calibration source).
const (
	autoSparseNodes = 1 << 12
	autoMGNodes     = 1 << 17
)

// Resolve maps SolverAuto onto a concrete tier for a mesh of the given
// node count; concrete tiers pass through unchanged.
func (s Solver) Resolve(nodes int) Solver {
	if s != SolverAuto {
		return s
	}
	switch {
	case nodes > autoMGNodes:
		return SolverMG
	case nodes > autoSparseNodes:
		return SolverSparse
	}
	return SolverFactored
}

// String names the solver the way the -solver flag spells it.
func (s Solver) String() string {
	switch s {
	case SolverSOR:
		return "sor"
	case SolverSparse:
		return "sparse"
	case SolverMG:
		return "mg"
	case SolverAuto:
		return "auto"
	}
	return "factored"
}

// SolverNames lists the accepted -solver spellings, in the order the
// CLIs document them. ParseSolver renders its error from this one list,
// so every CLI rejects a bad -solver with the same accepted set.
const SolverNames = "factored|sparse|mg|sor|auto"

// SolverFlagUsage is the shared help text the CLIs register their
// -solver flag with, so the three frontends (irdrop, flow, scap)
// document the tiers identically.
const SolverFlagUsage = "power-grid solver: factored (banded LDLᵀ, default) | sparse (nested-dissection LDLᵀ, large meshes) | mg (geometric multigrid, factor-free) | sor (iterative fallback) | auto (pick by mesh size)"

// ParseSolver maps a -solver flag value onto a Solver.
func ParseSolver(name string) (Solver, error) {
	switch name {
	case "", "factored":
		return SolverFactored, nil
	case "sparse":
		return SolverSparse, nil
	case "mg":
		return SolverMG, nil
	case "sor":
		return SolverSOR, nil
	case "auto":
		return SolverAuto, nil
	}
	return 0, fmt.Errorf("core: unknown solver %q (want %s)", name, SolverNames)
}

// solveRail solves one rail injection with the system's configured
// solver. The reuse hooks are all optional: warm (an initial guess)
// applies to the iterative paths (SOR and multigrid), scratch applies
// to the factored, sparse and multigrid paths, and reuse recycles the
// Solution under all tiers. SolverAuto never reaches here — Build
// resolves it to a concrete tier.
func (sys *System) solveRail(g *pgrid.Grid, inj, warm []float64, reuse *pgrid.Solution, scratch *pgrid.SolveScratch) (*pgrid.Solution, error) {
	switch sys.Solver {
	case SolverSOR:
		return g.SolveWarm(inj, warm, reuse)
	case SolverSparse:
		return g.SolveSparse(inj, reuse, scratch)
	case SolverMG:
		return g.SolveMultigrid(inj, warm, reuse, scratch)
	}
	return g.SolveFactored(inj, reuse, scratch)
}

// prefactor builds the configured solver's one-time state for g up
// front, on the calling goroutine, so the one-time cost (factorization
// or multigrid hierarchy, and its obs span) lands outside the worker
// pool and per-pattern timing. A no-op for the iterative SOR tier.
func (sys *System) prefactor(g *pgrid.Grid) error {
	switch sys.Solver {
	case SolverSOR:
		return nil
	case SolverSparse:
		_, err := g.SparseFactor()
		return err
	case SolverMG:
		_, err := g.MG()
		return err
	}
	_, err := g.Factor()
	return err
}
