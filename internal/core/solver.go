package core

import (
	"fmt"

	"scap/internal/pgrid"
)

// Solver selects the power-grid solve path used by every per-pattern and
// statistical rail analysis (see DESIGN.md "Solver hierarchy").
type Solver uint8

const (
	// SolverFactored (the default) solves every injection against the
	// grid's cached banded LDLᵀ factorization: the matrix work is paid
	// once per grid and each solve is two exact triangular sweeps. The
	// factorization is read-only after construction, so all workers share
	// it and results are independent of the worker count by construction.
	SolverFactored Solver = iota
	// SolverSOR keeps the iterative successive-over-relaxation path with
	// shared warm starts — the fallback for memory-constrained meshes
	// (the factor stores N³ floats) and the cross-validation oracle the
	// equivalence tests run against.
	SolverSOR
	// SolverSparse solves against the grid's cached sparse LDLᵀ
	// factorization under a geometric nested-dissection ordering. Same
	// exactness and sharing discipline as SolverFactored, but factor
	// storage is O(N·log N) instead of the banded N³, so it scales to
	// meshes the banded tier cannot hold. Per-pattern cost is two sparse
	// triangular sweeps over nnz(L).
	SolverSparse
)

// String names the solver the way the -solver flag spells it.
func (s Solver) String() string {
	switch s {
	case SolverSOR:
		return "sor"
	case SolverSparse:
		return "sparse"
	}
	return "factored"
}

// SolverNames lists the accepted -solver spellings, in the order the
// CLIs document them. ParseSolver renders its error from this one list,
// so every CLI rejects a bad -solver with the same accepted set.
const SolverNames = "factored|sparse|sor"

// SolverFlagUsage is the shared help text the CLIs register their
// -solver flag with, so the three frontends (irdrop, flow, scap)
// document the tiers identically.
const SolverFlagUsage = "power-grid solver: factored (banded LDLᵀ, default) | sparse (nested-dissection LDLᵀ, large meshes) | sor (iterative fallback)"

// ParseSolver maps a -solver flag value onto a Solver.
func ParseSolver(name string) (Solver, error) {
	switch name {
	case "", "factored":
		return SolverFactored, nil
	case "sparse":
		return SolverSparse, nil
	case "sor":
		return SolverSOR, nil
	}
	return 0, fmt.Errorf("core: unknown solver %q (want %s)", name, SolverNames)
}

// solveRail solves one rail injection with the system's configured
// solver. The reuse hooks are all optional: warm (an initial guess)
// applies only to the SOR path, scratch applies to the factored and
// sparse paths (they share the work vector), and reuse recycles the
// Solution under all three.
func (sys *System) solveRail(g *pgrid.Grid, inj, warm []float64, reuse *pgrid.Solution, scratch *pgrid.SolveScratch) (*pgrid.Solution, error) {
	switch sys.Solver {
	case SolverSOR:
		return g.SolveWarm(inj, warm, reuse)
	case SolverSparse:
		return g.SolveSparse(inj, reuse, scratch)
	}
	return g.SolveFactored(inj, reuse, scratch)
}

// prefactor builds the configured direct factorization for g up front,
// on the calling goroutine, so the one-time factor cost (and its obs
// span) lands outside the worker pool and per-pattern timing. A no-op
// for the iterative SOR tier.
func (sys *System) prefactor(g *pgrid.Grid) error {
	switch sys.Solver {
	case SolverSOR:
		return nil
	case SolverSparse:
		_, err := g.SparseFactor()
		return err
	}
	_, err := g.Factor()
	return err
}
