// Package core assembles the substrates into the paper's methodology:
//
//  1. build the SOC with its physical design (placement, parasitics, scan,
//     clock tree, power grids);
//  2. run the vector-less statistical IR-drop analysis that yields the
//     per-block average-switching-power thresholds (Table 3);
//  3. generate patterns — conventionally (random fill, all blocks at once)
//     or with the paper's noise-tolerant procedure (per-block steps with
//     fill-0, hot block last);
//  4. validate patterns: per-pattern SCAP via gate-level timing simulation
//     (the PLI calculator), dynamic per-pattern IR-drop maps, and
//     IR-drop-aware delay re-simulation.
package core

import (
	"fmt"

	"scap/internal/atpg"
	"scap/internal/clocktree"
	"scap/internal/fault"
	"scap/internal/faultsim"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/obs"
	"scap/internal/parasitic"
	"scap/internal/pgrid"
	"scap/internal/place"
	"scap/internal/power"
	"scap/internal/scan"
	"scap/internal/sdf"
	"scap/internal/sim"
	"scap/internal/soc"
)

// Config assembles all subsystem parameters.
type Config struct {
	SOC       soc.Config
	Scan      scan.Config
	Parasitic parasitic.Params
	Clock     clocktree.Params
	Grid      pgrid.Params

	// ToggleProb is the statistical net-toggle probability; the paper uses
	// a pessimistic 30% against the customary 20%.
	ToggleProb float64

	// GridCalibTargetV calibrates the grid impedance so the statistical
	// Case-2 worst drop in the hottest block hits this value (0 disables).
	// It stands in for the unknown real package/grid impedance.
	GridCalibTargetV float64

	// BacktrackLimit is the ATPG abort threshold.
	BacktrackLimit int

	// Seed drives placement, clock jitter and ATPG tie-breaking.
	Seed int64

	// Workers sizes the worker pool of the per-pattern analysis layers
	// (ProfilePatterns, DynamicIRDropAll, MonteCarloIRDrop): 0 means all
	// cores, 1 forces the exact serial path. Results are deterministic
	// for any value — workers only own scratch state and write
	// index-addressed outputs.
	Workers int

	// Solver picks the power-grid solve path: the cached banded-LDLᵀ
	// factorization (SolverFactored, the default), the sparse LDLᵀ under
	// a nested-dissection ordering (SolverSparse), geometric multigrid
	// (SolverMG), the iterative SOR fallback (SolverSOR), or SolverAuto,
	// which Build resolves from the mesh node count. Grid calibration
	// always uses the exact factored solve, so the built grids are
	// identical across choices.
	Solver Solver
}

// DefaultConfig returns the full experiment configuration at the given SOC
// scale divisor (8 reproduces the paper's shapes in minutes; larger values
// shrink the design for tests).
func DefaultConfig(scale int) Config {
	return Config{
		SOC:              soc.DefaultConfig(scale),
		Scan:             scan.DefaultConfig(),
		Parasitic:        parasitic.DefaultParams(),
		Clock:            clocktree.DefaultParams(),
		Grid:             pgrid.DefaultParams(),
		ToggleProb:       0.30,
		GridCalibTargetV: 0.11,
		BacktrackLimit:   64,
		Seed:             1,
		Solver:           SolverFactored,
	}
}

// System is a fully built design plus its analysis machinery.
type System struct {
	Cfg    Config
	D      *netlist.Design
	Plan   *soc.Plan
	FP     *place.Floorplan
	SC     *scan.Scan
	Sim    *sim.Simulator
	FSim   *faultsim.Sim
	Tree   *clocktree.Tree
	Delays *sdf.Delays

	// GridVDD and GridVSS are the two rail meshes; the VSS pads interleave
	// with the VDD pads.
	GridVDD, GridVSS *pgrid.Grid

	// Period is the at-speed test clock period (ns).
	Period float64

	// Workers mirrors Config.Workers and may be changed between calls
	// (0 = all cores, 1 = exact serial path).
	Workers int

	// Solver mirrors Config.Solver and may be changed between calls.
	Solver Solver
}

// Build constructs the complete system.
func Build(cfg Config) (*System, error) {
	defer obs.StartSpan("build").End()
	d, plan, err := soc.Generate(cfg.SOC)
	if err != nil {
		return nil, fmt.Errorf("core: generate: %w", err)
	}
	fp, err := place.Place(d, cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: place: %w", err)
	}
	sc, err := scan.Insert(d, cfg.Scan)
	if err != nil {
		return nil, fmt.Errorf("core: scan: %w", err)
	}
	if _, err := parasitic.Extract(d, fp, cfg.Parasitic); err != nil {
		return nil, fmt.Errorf("core: parasitics: %w", err)
	}
	s, err := sim.New(d)
	if err != nil {
		return nil, fmt.Errorf("core: sim: %w", err)
	}
	fs, err := faultsim.New(s)
	if err != nil {
		return nil, fmt.Errorf("core: faultsim: %w", err)
	}
	fs.Workers = cfg.Workers
	sys := &System{
		Cfg: cfg, D: d, Plan: plan, FP: fp, SC: sc,
		Sim: s, FSim: fs,
		Tree:    clocktree.Build(d, fp, cfg.Clock, cfg.Seed+1),
		Delays:  sdf.Compute(d),
		Period:  cfg.SOC.TestPeriodNs,
		Workers: cfg.Workers,
		Solver:  cfg.Solver,
	}
	// Resolve the auto tier against the mesh size before anything solves;
	// System.Solver always holds a concrete tier after Build.
	sys.Solver = cfg.Solver.Resolve(cfg.Grid.N * cfg.Grid.N)
	if err := sys.buildGrids(); err != nil {
		return nil, err
	}
	// Surface the solver tier and mesh geometry in the run report's info
	// block; the sparse tier adds its factor nnz/fill when it builds.
	obs.SetRunInfo("solver", sys.Solver.String())
	obs.SetRunInfo("grid_mesh_n", sys.GridVDD.P.N)
	obs.SetRunInfo("grid_nodes", sys.GridVDD.P.N*sys.GridVDD.P.N)
	return sys, nil
}

// buildGrids constructs the two rail meshes, optionally calibrating the
// mesh impedance so the statistical Case-2 worst drop in the hottest block
// matches the configured target.
func (sys *System) buildGrids() error {
	defer obs.StartSpan("grid-calibration").End()
	mk := func(p pgrid.Params) (*pgrid.Grid, *pgrid.Grid, error) {
		vdd, err := pgrid.New(sys.FP, p)
		if err != nil {
			return nil, nil, err
		}
		pvss := p
		pvss.PadOffset = 0.5
		vss, err := pgrid.New(sys.FP, pvss)
		if err != nil {
			return nil, nil, err
		}
		return vdd, vss, nil
	}
	p := sys.Cfg.Grid
	// The grids inherit the system's worker knob: it drives the multigrid
	// passes and the sparse factorization's subtree fan-out (both
	// bit-identical for any count, so this is purely a scheduling choice).
	p.Workers = sys.Cfg.Workers
	vdd, vss, err := mk(p)
	if err != nil {
		return fmt.Errorf("core: grid: %w", err)
	}
	if target := sys.Cfg.GridCalibTargetV; target > 0 {
		// Solve the half-cycle statistical case and scale the impedance
		// linearly to land the hottest block's worst drop on the target.
		cur := power.StatCurrents(sys.D, sys.Cfg.ToggleProb, sys.Period/2)
		for i := range cur {
			cur[i] /= 2 // rising edges only on the VDD rail
		}
		// Calibrate with the exact factored solve regardless of the
		// configured per-pattern solver: the scale factor then carries no
		// iteration-tolerance noise, so -solver only changes how solves
		// are computed, never which grids they run on.
		sol, err := vdd.SolveFactored(vdd.InjectInstCurrents(sys.D, cur), nil, nil)
		if err != nil {
			return fmt.Errorf("core: grid calibration: %w", err)
		}
		worst := sol.WorstPerBlock(vdd, sys.D.NumBlocks)
		hot := 0.0
		for b := 0; b < sys.D.NumBlocks; b++ {
			if worst[b] > hot {
				hot = worst[b]
			}
		}
		if hot > 0 {
			f := target / hot
			p.SegRes *= f
			p.PadRes *= f
			vdd, vss, err = mk(p)
			if err != nil {
				return fmt.Errorf("core: grid rebuild: %w", err)
			}
		}
	}
	sys.GridVDD, sys.GridVSS = vdd, vss
	return nil
}

// LaunchState derives the launch-off-capture V2 state of a pattern for the
// given domain: domain flops capture the frame-1 response, all others hold.
func (sys *System) LaunchState(v1, pis []logic.V, dom int) []logic.V {
	s, d := sys.Sim, sys.D
	nets := s.NewNets()
	s.SetPIs(nets, pis)
	s.ApplyState(nets, v1)
	s.Propagate(nets)
	cap1 := s.CaptureState(nets)
	v2 := make([]logic.V, len(d.Flops))
	for i, f := range d.Flops {
		if d.Inst(f).Domain == dom {
			v2[i] = cap1[i]
		} else {
			v2[i] = v1[i]
		}
	}
	return v2
}

// LaunchStateInto is the buffer-reusing form of LaunchState: the frame-1
// settle runs inside ls (selective-trace from the scratch's cached
// baseline) and the V2 state is written into v2, with capBuf as the
// capture buffer (both len(d.Flops)). The settle stays cached in ls, so
// a following LaunchInto on the same scratch with the same (v1, pis)
// skips its own settle entirely — each pattern is settled exactly once.
func (sys *System) LaunchStateInto(ls *sim.LaunchScratch, v2, capBuf []logic.V, v1, pis []logic.V, dom int) ([]logic.V, error) {
	nets, err := ls.SettleBaseline(v1, pis)
	if err != nil {
		return nil, err
	}
	cap1 := sys.Sim.CaptureStateInto(capBuf, nets)
	d := sys.D
	for i, f := range d.Flops {
		if d.Inst(f).Domain == dom {
			v2[i] = cap1[i]
		} else {
			v2[i] = v1[i]
		}
	}
	return v2, nil
}

// NewFaultList returns a fresh collapsed fault universe for the design.
func (sys *System) NewFaultList() *fault.List { return fault.Universe(sys.D) }

// ATPG runs one ATPG invocation against the given fault list. The fault
// simulator and the epoch-sharded generator both inherit sys.Workers, so
// fault-dropping sweeps and test generation fan out across the worker
// pool (results are identical for any worker count).
func (sys *System) ATPG(l *fault.List, opts atpg.Options) (*atpg.Result, error) {
	if opts.BacktrackLimit == 0 {
		opts.BacktrackLimit = sys.Cfg.BacktrackLimit
	}
	if opts.GenWorkers == 0 {
		opts.GenWorkers = sys.Workers
	}
	sys.FSim.Workers = sys.Workers
	return atpg.Run(sys.FSim, l, sys.SC, opts)
}
