package core

import (
	"math"
	"sort"

	"scap/internal/logic"
	"scap/internal/obs"
	"scap/internal/parallel"
	"scap/internal/power"
)

// tkScreen is the screening attribution table: the patterns the packed
// zero-delay pre-screen ranked most active, labeled with the
// ScreenTop verdict ("kept" went on to exact profiling, "cut" was
// screened out). Cost is the estimated chip CAP in integer nanowatts —
// a popcount product, deterministic for any worker count. Recorded in
// the serial ScreenTop selection.
var tkScreen = obs.NewTopK("core.screen_hotspots", 16, "est_cap_nw",
	"est_cap_mw", "toggles", "step")

// PatternScreen is the packed zero-delay triage estimate of one pattern:
// toggle count and CAP-style average powers derived from popcounts over
// the settled launch frames, with no event-driven timing simulation. It
// ranks patterns by switching activity so the exact SCAP profiler
// (ProfilePatterns) can be reserved for the risky fraction — the
// screen-then-verify pipeline in front of the paper's per-pattern
// validation flow.
type PatternScreen struct {
	Index   int
	Step    int
	Toggles int
	// EstChipCAPVdd is the estimated chip VDD cycle-average power (mW):
	// zero-delay switched energy over the tester period.
	EstChipCAPVdd float64
	// EstBlockCAPVdd is the per-block estimate (mW).
	EstBlockCAPVdd []float64
}

// ScreenPatterns runs the packed zero-delay SCAP pre-screen over a flow's
// pattern set: patterns are packed 64 per good-machine batch, and each
// batch costs two packed settles plus one popcount pass over the design
// (power.PackedEstimate) — orders of magnitude below the event-driven
// profiler. Batches are independent and fan out across sys.Workers; every
// pattern writes only its own slot and the per-slot energies accumulate in
// fixed instance order, so the output is identical for any worker count.
func (sys *System) ScreenPatterns(fr *FlowResult) ([]PatternScreen, error) {
	defer obs.StartSpan("screen-patterns").End()
	n := len(fr.Patterns)
	out := make([]PatternScreen, n)
	if n == 0 {
		return out, nil
	}
	nBatches := (n + 63) / 64
	workers := parallel.Resolve(sys.Workers)
	if workers > nBatches {
		workers = nBatches
	}
	meters := make([]*power.Meter, workers)
	meters[0] = power.NewMeter(sys.D)
	for w := 1; w < workers; w++ {
		meters[w] = meters[0].Clone()
	}
	err := parallel.For(workers, nBatches, func(w, bi int) error {
		lo := bi * 64
		hi := lo + 64
		if hi > n {
			hi = n
		}
		chunk := fr.Patterns[lo:hi]
		slotV1 := make([][]logic.V, len(chunk))
		slotPI := make([][]logic.V, len(chunk))
		for s := range chunk {
			slotV1[s] = chunk[s].V1
			slotPI[s] = chunk[s].PIs
		}
		v1W := logic.PackSlots(nil, slotV1)
		piW := logic.PackSlots(nil, slotPI)
		// GoodSim touches no Sim scratch, so the shared FSim serves every
		// worker concurrently.
		b := sys.FSim.GoodSim(v1W, piW, fr.Dom, logic.ValidMask(len(chunk)))
		est := meters[w].PackedEstimate(b.N1, b.N2, b.Valid)
		for s := range chunk {
			ps := &out[lo+s]
			ps.Index = lo + s
			ps.Step = chunk[s].Step
			ps.Toggles = est.Toggles[s]
			ps.EstChipCAPVdd = est.CAPVdd(s, sys.Period)
			ps.EstBlockCAPVdd = make([]float64, sys.D.NumBlocks)
			for blk := 0; blk < sys.D.NumBlocks; blk++ {
				ps.EstBlockCAPVdd[blk] = est.BlockEnergyVDD[s][blk] / sys.Period * 1e-3
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScreenTop returns the indexes of the top fraction (0..1] of screened
// patterns ranked by estimated VDD CAP in the given block — pass
// block == sys.D.NumBlocks (or any negative value) to rank on the chip
// total. Ties break toward the lower pattern index, so the selection is
// deterministic. The returned indexes are sorted ascending, ready to
// subset a pattern list for exact profiling.
func ScreenTop(screens []PatternScreen, block int, frac float64) []int {
	if len(screens) == 0 || frac <= 0 {
		return nil
	}
	key := func(i int) float64 {
		s := &screens[i]
		if block >= 0 && block < len(s.EstBlockCAPVdd) {
			return s.EstBlockCAPVdd[block]
		}
		return s.EstChipCAPVdd
	}
	idx := make([]int, len(screens))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ka, kb := key(idx[a]), key(idx[b])
		if ka != kb {
			return ka > kb
		}
		return idx[a] < idx[b]
	})
	keep := int(math.Ceil(frac * float64(len(screens))))
	if keep > len(screens) {
		keep = len(screens)
	}
	for rank, i := range idx {
		verdict := "kept"
		if rank >= keep {
			verdict = "cut"
		}
		s := &screens[i]
		tkScreen.Record(int64(i), int64(math.Round(s.EstChipCAPVdd*1e6)), verdict,
			s.EstChipCAPVdd, float64(s.Toggles), float64(s.Step))
	}
	top := append([]int(nil), idx[:keep]...)
	sort.Ints(top)
	return top
}
