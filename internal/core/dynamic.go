package core

import (
	"fmt"

	"scap/internal/atpg"
	"scap/internal/delayscale"
	"scap/internal/pgrid"
	"scap/internal/power"
	"scap/internal/sim"
)

// PowerModel selects the averaging window of the dynamic analysis.
type PowerModel uint8

// Power models (Table 4 compares them).
const (
	// ModelCAP averages the pattern's switching over the full tester cycle.
	ModelCAP PowerModel = iota
	// ModelSCAP averages over the switching time frame window only —
	// the paper's model, which roughly doubles both power and IR-drop.
	ModelSCAP
)

// String names the model.
func (m PowerModel) String() string {
	if m == ModelCAP {
		return "CAP"
	}
	return "SCAP"
}

// DynamicIR is one pattern's dynamic IR-drop analysis.
type DynamicIR struct {
	Model   PowerModel
	Profile *power.Profile
	STW     float64
	// SolVDD/SolVSS are the solved rail drops; WorstVDD/WorstVSS the worst
	// node drop per block plus a chip entry, volts.
	SolVDD, SolVSS     *pgrid.Solution
	WorstVDD, WorstVSS []float64
}

// DynamicIRDrop simulates one pattern with full timing, captures its
// switching energy (the VCD-less PLI path), converts it to per-instance
// currents over the model's window, and solves both rail meshes.
func (sys *System) DynamicIRDrop(p *atpg.Pattern, dom int, model PowerModel) (*DynamicIR, error) {
	d := sys.D
	meter := power.NewMeter(d)
	tm := sim.NewTiming(sys.Sim, sys.Delays, sys.Tree)
	v2 := sys.LaunchState(p.V1, p.PIs, dom)
	res, err := tm.Launch(p.V1, v2, p.PIs, sys.Period, meter.OnToggle)
	if err != nil {
		return nil, fmt.Errorf("core: dynamic sim: %w", err)
	}
	prof := meter.Report(sys.Period)
	window := sys.Period
	if model == ModelSCAP {
		window = res.STW
	}
	out := &DynamicIR{Model: model, Profile: prof, STW: res.STW}

	solve := func(g *pgrid.Grid, energy []float64) (*pgrid.Solution, []float64, error) {
		cur := power.InstCurrents(d, energy, window)
		sol, err := g.Solve(g.InjectInstCurrents(d, cur))
		if err != nil {
			return nil, nil, fmt.Errorf("core: dynamic solve: %w", err)
		}
		return sol, sol.WorstPerBlock(g, d.NumBlocks), nil
	}
	if out.SolVDD, out.WorstVDD, err = solve(sys.GridVDD, prof.InstEnergyVDD); err != nil {
		return nil, err
	}
	if out.SolVSS, out.WorstVSS, err = solve(sys.GridVSS, prof.InstEnergyVSS); err != nil {
		return nil, err
	}
	return out, nil
}

// CombinedDrop returns a node-wise sum of the two rails' drops: the
// effective supply collapse a cell sees (VDD sag plus ground bounce),
// which is what scales its delay.
func (dyn *DynamicIR) CombinedDrop() *pgrid.Solution {
	n := dyn.SolVDD.N
	sum := &pgrid.Solution{N: n, Drop: make([]float64, n*n)}
	for i := range sum.Drop {
		v := dyn.SolVDD.Drop[i] + dyn.SolVSS.Drop[i]
		sum.Drop[i] = v
		if v > sum.Worst {
			sum.Worst = v
		}
	}
	return sum
}

// DelayImpact runs the paper's Figure 7 experiment on one pattern: dynamic
// IR-drop with the SCAP window, then a nominal-vs-derated timing
// re-simulation with cell and clock delays scaled by the local voltage
// collapse.
func (sys *System) DelayImpact(p *atpg.Pattern, dom int) (*delayscale.Impact, *DynamicIR, error) {
	dyn, err := sys.DynamicIRDrop(p, dom, ModelSCAP)
	if err != nil {
		return nil, nil, err
	}
	v2 := sys.LaunchState(p.V1, p.PIs, dom)
	imp, err := delayscale.Compare(sys.Sim, sys.Delays, sys.Tree,
		sys.GridVDD, dyn.CombinedDrop(), sys.D.Lib.KVolt,
		p.V1, v2, p.PIs, sys.Period)
	if err != nil {
		return nil, nil, err
	}
	return imp, dyn, nil
}
