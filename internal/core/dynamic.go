package core

import (
	"fmt"
	"math"

	"scap/internal/atpg"
	"scap/internal/delayscale"
	"scap/internal/obs"
	"scap/internal/parallel"
	"scap/internal/pgrid"
	"scap/internal/power"
)

// PowerModel selects the averaging window of the dynamic analysis.
type PowerModel uint8

// Power models (Table 4 compares them).
const (
	// ModelCAP averages the pattern's switching over the full tester cycle.
	ModelCAP PowerModel = iota
	// ModelSCAP averages over the switching time frame window only —
	// the paper's model, which roughly doubles both power and IR-drop.
	ModelSCAP
)

// String names the model.
func (m PowerModel) String() string {
	if m == ModelCAP {
		return "CAP"
	}
	return "SCAP"
}

// tkIRDrop is the per-pattern IR-drop attribution table: the patterns
// whose batched dynamic analysis produced the deepest combined chip
// supply collapse (worst VDD sag + worst VSS bounce, in integer
// nanovolts). Solved drops are exact deterministic products of the
// pattern, so the table is bit-identical for any worker count.
var tkIRDrop = obs.NewTopK("core.irdrop_hotspots", 16, "drop_nv",
	"vdd_mv", "vss_mv", "stw_ns", "iter_vdd", "iter_vss")

// DynamicIR is one pattern's dynamic IR-drop analysis.
type DynamicIR struct {
	Model   PowerModel
	Profile *power.Profile
	STW     float64
	// SolVDD/SolVSS are the solved rail drops; WorstVDD/WorstVSS the worst
	// node drop per block plus a chip entry, volts.
	SolVDD, SolVSS     *pgrid.Solution
	WorstVDD, WorstVSS []float64
}

// DynamicIRDrop simulates one pattern with full timing, captures its
// switching energy (the VCD-less PLI path), converts it to per-instance
// currents over the model's window, and solves both rail meshes.
func (sys *System) DynamicIRDrop(p *atpg.Pattern, dom int, model PowerModel) (*DynamicIR, error) {
	pool := sys.profPool(1)
	return sys.dynamicIRDrop(&pool[0], p, dom, model)
}

// dynamicIRDrop is DynamicIRDrop on a caller-supplied worker scratch,
// so composite analyses (DelayImpact) can keep reusing the scratch —
// and its cached settled baseline — for follow-up launches of the same
// pattern.
func (sys *System) dynamicIRDrop(ps *profScratch, p *atpg.Pattern, dom int, model PowerModel) (*DynamicIR, error) {
	defer obs.StartSpan("dynamic-irdrop").End()
	d := sys.D
	ps.meter.Reset()
	res, err := ps.launch(sys, p.V1, p.PIs, dom, ps.toggle)
	if err != nil {
		return nil, fmt.Errorf("core: dynamic sim: %w", err)
	}
	prof := ps.meter.Report(sys.Period)
	window := sys.Period
	if model == ModelSCAP {
		window = res.STW
	}
	out := &DynamicIR{Model: model, Profile: prof, STW: res.STW}

	// One current and one injection buffer serve both rail solves in
	// turn (each rail keeps its own Solution, but the intermediate
	// vectors never outlive a solve).
	var cur, inj []float64
	solve := func(g *pgrid.Grid, energy []float64) (*pgrid.Solution, []float64, error) {
		cur = power.InstCurrentsInto(cur, d, energy, window)
		inj = g.InjectInstCurrentsInto(inj, d, cur)
		sol, err := sys.solveRail(g, inj, nil, nil, nil)
		if err != nil {
			return nil, nil, fmt.Errorf("core: dynamic solve: %w", err)
		}
		return sol, sol.WorstPerBlock(g, d.NumBlocks), nil
	}
	if out.SolVDD, out.WorstVDD, err = solve(sys.GridVDD, prof.InstEnergyVDD); err != nil {
		return nil, err
	}
	if out.SolVSS, out.WorstVSS, err = solve(sys.GridVSS, prof.InstEnergyVSS); err != nil {
		return nil, err
	}
	return out, nil
}

// IRDropSummary is one pattern's result from the batched dynamic
// analysis: the worst node drop per block (chip entry at index
// NumBlocks) on each rail, volts, plus the SOR effort that produced it.
// The full node-by-node maps of DynamicIR are deliberately not kept —
// screening a whole pattern set only consumes the per-block extremes,
// and dropping the maps is what lets each worker recycle its solver
// buffers.
type IRDropSummary struct {
	Index            int
	Model            PowerModel
	STW              float64
	WorstVDD         []float64
	WorstVSS         []float64
	IterVDD, IterVSS int
}

// irScratch is one worker's solver state for DynamicIRDropAll: reusable
// current/injection vectors, a recycled Solution per rail, and the
// factored solver's forward-substitution scratch.
type irScratch struct {
	cur, inj       []float64
	solVDD, solVSS *pgrid.Solution
	fs             pgrid.SolveScratch
}

// DynamicIRDropAll runs the dynamic per-pattern IR-drop analysis over a
// whole flow, fanned across sys.Workers workers (0 = all cores, 1 = the
// exact serial path).
//
// Under the default factored solver every pattern is two exact banded
// triangular sweeps against the grid's shared read-only factorization,
// so all patterns fan out immediately and results are bit-identical for
// any worker count by construction. Under the SOR fallback, pattern 0
// is solved cold first and its rail solutions become the shared
// warm-start guess for every remaining pattern — per-pattern injections
// resemble each other, so SOR converges in a fraction of the cold
// iteration count, and because the guess is the same for every pattern
// the results are again identical for any worker count (each solve
// still runs to the grid's own tolerance).
func (sys *System) DynamicIRDropAll(fr *FlowResult, model PowerModel) ([]IRDropSummary, error) {
	defer obs.StartSpan("dynamic-irdrop-all").End()
	n := len(fr.Patterns)
	out := make([]IRDropSummary, n)
	if n == 0 {
		return out, nil
	}
	workers := parallel.Resolve(sys.Workers)
	if workers > n {
		workers = n
	}
	pool := sys.profPool(workers)
	scratch := make([]irScratch, workers)

	// eval simulates pattern i on worker w's scratch and solves both
	// rails warm-started from the given guesses (nil = cold).
	eval := func(w, i int, warmVDD, warmVSS []float64) error {
		p := &fr.Patterns[i]
		ps, sc := &pool[w], &scratch[w]
		ps.meter.Reset()
		res, err := ps.launch(sys, p.V1, p.PIs, fr.Dom, ps.toggle)
		if err != nil {
			return fmt.Errorf("core: dynamic sim pattern %d: %w", i, err)
		}
		window := sys.Period
		if model == ModelSCAP {
			window = res.STW
		}
		sum := &out[i]
		sum.Index, sum.Model, sum.STW = i, model, res.STW

		solve := func(g *pgrid.Grid, energy, warm []float64, reuse *pgrid.Solution) (*pgrid.Solution, []float64, error) {
			sc.cur = power.InstCurrentsInto(sc.cur, sys.D, energy, window)
			sc.inj = g.InjectInstCurrentsInto(sc.inj, sys.D, sc.cur)
			sol, err := sys.solveRail(g, sc.inj, warm, reuse, &sc.fs)
			if err != nil {
				return nil, nil, fmt.Errorf("core: dynamic solve pattern %d: %w", i, err)
			}
			return sol, sol.WorstPerBlock(g, sys.D.NumBlocks), nil
		}
		var sol *pgrid.Solution
		if sol, sum.WorstVDD, err = solve(sys.GridVDD, ps.meter.RawInstEnergyVDD(), warmVDD, sc.solVDD); err != nil {
			return err
		}
		sc.solVDD, sum.IterVDD = sol, sol.Iterations
		if sol, sum.WorstVSS, err = solve(sys.GridVSS, ps.meter.RawInstEnergyVSS(), warmVSS, sc.solVSS); err != nil {
			return err
		}
		sc.solVSS, sum.IterVSS = sol, sol.Iterations
		nb := sys.D.NumBlocks
		vdd, vss := sum.WorstVDD[nb], sum.WorstVSS[nb]
		tkIRDrop.Record(int64(i), int64(math.Round((vdd+vss)*1e9)), model.String(),
			vdd*1e3, vss*1e3, sum.STW, float64(sum.IterVDD), float64(sum.IterVSS))
		return nil
	}

	if sys.Solver != SolverSOR {
		// Direct paths (banded or sparse): the shared factorization makes
		// every solve exact and independent, so all patterns fan out at
		// once. Factor both rails up front rather than inside the first
		// solves, so the one-time cost is not attributed to a worker's
		// pattern.
		if err := sys.prefactor(sys.GridVDD); err != nil {
			return nil, err
		}
		if err := sys.prefactor(sys.GridVSS); err != nil {
			return nil, err
		}
		if err := parallel.For(workers, n, func(w, i int) error {
			return eval(w, i, nil, nil)
		}); err != nil {
			return nil, err
		}
		return out, nil
	}

	// SOR fallback. Cold baseline: pattern 0 on worker 0, then copy its
	// drops out of the recyclable scratch as the shared read-only warm
	// guess.
	if err := eval(0, 0, nil, nil); err != nil {
		return nil, err
	}
	warmVDD := append([]float64(nil), scratch[0].solVDD.Drop...)
	warmVSS := append([]float64(nil), scratch[0].solVSS.Drop...)
	err := parallel.For(workers, n-1, func(w, i int) error {
		return eval(w, i+1, warmVDD, warmVSS)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CombinedDrop returns a node-wise sum of the two rails' drops: the
// effective supply collapse a cell sees (VDD sag plus ground bounce),
// which is what scales its delay.
func (dyn *DynamicIR) CombinedDrop() *pgrid.Solution {
	n := dyn.SolVDD.N
	sum := &pgrid.Solution{N: n, Drop: make([]float64, n*n)}
	for i := range sum.Drop {
		v := dyn.SolVDD.Drop[i] + dyn.SolVSS.Drop[i]
		sum.Drop[i] = v
		if v > sum.Worst {
			sum.Worst = v
		}
	}
	return sum
}

// DelayImpact runs the paper's Figure 7 experiment on one pattern: dynamic
// IR-drop with the SCAP window, then a nominal-vs-derated timing
// re-simulation with cell and clock delays scaled by the local voltage
// collapse.
func (sys *System) DelayImpact(p *atpg.Pattern, dom int) (*delayscale.Impact, *DynamicIR, error) {
	pool := sys.profPool(1)
	ps := &pool[0]
	dyn, err := sys.dynamicIRDrop(ps, p, dom, ModelSCAP)
	if err != nil {
		return nil, nil, err
	}
	resim := obs.StartSpan("resimulation")
	defer resim.End()
	// The scratch still holds this pattern's settled baseline (the
	// launch restored it), so the V2 re-derivation and both Compare
	// launches are cone-cache hits: the baseline is delay- and
	// clock-independent, which is exactly why the derated run may share
	// the scratch.
	v2, err := sys.LaunchStateInto(ps.ls, ps.v2, ps.capBuf, p.V1, p.PIs, dom)
	if err != nil {
		return nil, nil, err
	}
	imp, err := delayscale.Compare(sys.Sim, sys.Delays, sys.Tree,
		sys.GridVDD, dyn.CombinedDrop(), sys.D.Lib.KVolt,
		p.V1, v2, p.PIs, sys.Period, ps.ls)
	if err != nil {
		return nil, nil, err
	}
	return imp, dyn, nil
}
