package core

import (
	"fmt"
	"math"

	"scap/internal/atpg"
	"scap/internal/fault"
	"scap/internal/logic"
	"scap/internal/obs"
	"scap/internal/parallel"
	"scap/internal/power"
	"scap/internal/sim"
	"scap/internal/soc"
)

// tkPatterns is the per-pattern attribution table: the patterns whose
// exact SCAP profiling found the highest chip-level switching power —
// the candidates the ROADMAP's repair loop would re-fill. Cost is the
// chip SCAP in integer nanowatts (a deterministic simulation product,
// never wall time), so the table is bit-identical for any worker count.
var tkPatterns = obs.NewTopK("core.pattern_hotspots", 16, "scap_nw",
	"scap_mw", "cap_mw", "stw_ns", "toggles", "step", "target")

// cAboveThreshold tallies AboveThreshold verdicts: how many profiled
// patterns exceeded the paper's screening criterion.
var cAboveThreshold = obs.NewCounter("core.patterns_above_threshold")

// FlowResult is one complete pattern-generation flow for a clock domain.
type FlowResult struct {
	Name     string
	Dom      int
	Patterns []atpg.Pattern
	Faults   *fault.List
	// Subset is the domain fault-index set the coverage curve is computed
	// over.
	Subset []int
	// Coverage[i] is the cumulative test coverage (0..1) after pattern i.
	Coverage []float64
	Counts   fault.Counts
}

// ConventionalFlow is the baseline the paper compares against: one ATPG
// run over the whole domain with random fill for maximal fortuitous
// detection — and maximal switching activity.
func (sys *System) ConventionalFlow(dom int) (*FlowResult, error) {
	defer obs.StartSpan("flow:conventional").End()
	l := sys.NewFaultList()
	res, err := sys.ATPG(l, atpg.Options{
		Dom: dom, Fill: atpg.FillRandom, Seed: sys.Cfg.Seed + 10,
	})
	if err != nil {
		return nil, err
	}
	return sys.finishFlow("conventional", dom, l, res.Patterns)
}

// StepBlocks is the paper's Section 3.1 step ordering for the dominant
// domain: first the low-drop peripheral blocks together, then B6, and the
// hot central block B5 alone at the end, all with fill-0 so untargeted
// blocks stay quiet.
var StepBlocks = [][]int{
	{soc.B1, soc.B2, soc.B3, soc.B4},
	{soc.B6},
	{soc.B5},
}

// NewProcedureFlow is the paper's supply-noise-tolerant procedure: three
// per-block ATPG steps with fill-0. Patterns carry their step index.
func (sys *System) NewProcedureFlow(dom int) (*FlowResult, error) {
	return sys.StepFlow("new-procedure", dom, StepBlocks, atpg.Fill0)
}

// StepFlow runs a multi-step block-targeted flow with the given fill (the
// generalized form used by the ablation benches). Compaction is bounded by
// a care-bit budget proportional to the targeted blocks' flop population,
// so the per-pattern care density — and with it the launch activity that
// fill-0 cannot suppress — stays scale-invariant.
func (sys *System) StepFlow(name string, dom int, steps [][]int, fill atpg.Fill) (*FlowResult, error) {
	defer obs.StartSpan("flow:" + name).End()
	l := sys.NewFaultList()
	var all []atpg.Pattern
	for si, blocks := range steps {
		budget := sys.careBudget(dom, blocks)
		step := obs.StartSpan(fmt.Sprintf("step%d", si+1))
		res, err := sys.ATPG(l, atpg.Options{
			Dom: dom, Fill: fill, Seed: sys.Cfg.Seed + 20 + int64(si),
			Blocks: blocks, PatternBase: len(all), CareBudget: budget,
		})
		step.End()
		if err != nil {
			return nil, fmt.Errorf("core: step %d: %w", si+1, err)
		}
		for i := range res.Patterns {
			res.Patterns[i].Step = si
		}
		all = append(all, res.Patterns...)
	}
	return sys.finishFlow(name, dom, l, all)
}

// careBudget returns the compaction care-bit budget for a step: ~1% of the
// targeted blocks' domain flops (the care density full-size industrial
// patterns exhibit), floored so single faults always fit.
func (sys *System) careBudget(dom int, blocks []int) int {
	want := map[int]bool{}
	for _, b := range blocks {
		want[b] = true
	}
	n := 0
	for _, f := range sys.D.Flops {
		inst := sys.D.Inst(f)
		if inst.Domain == dom && want[inst.Block] {
			n++
		}
	}
	budget := n / 100
	if budget < 12 {
		budget = 12
	}
	return budget
}

// finishFlow computes the coverage curve over the domain's fault subset.
func (sys *System) finishFlow(name string, dom int, l *fault.List, pats []atpg.Pattern) (*FlowResult, error) {
	subset := l.InDomain(dom)
	fr := &FlowResult{
		Name: name, Dom: dom, Patterns: pats, Faults: l,
		Subset: subset, Counts: l.CountOf(subset),
	}
	detectedAt := make([]int, len(pats))
	testable := 0
	for _, fi := range subset {
		if l.Status[fi] == fault.Detected {
			p := l.DetectedBy[fi]
			if p >= 0 && p < len(pats) {
				detectedAt[p]++
			}
		}
		if l.Status[fi] != fault.Untestable {
			testable++
		}
	}
	fr.Coverage = make([]float64, len(pats))
	cum := 0
	for i, n := range detectedAt {
		cum += n
		if testable > 0 {
			fr.Coverage[i] = float64(cum) / float64(testable)
		}
	}
	return fr, nil
}

// PatternProfile is the per-pattern power summary used by the Figure 2 and
// Figure 6 experiments.
type PatternProfile struct {
	Index       int
	Target      int
	TargetBlock int
	Step        int
	STW         float64
	Toggles     int
	// ChipSCAPVdd and BlockSCAPVdd are the pattern's SCAP values (mW) at
	// the top level and per block.
	ChipSCAPVdd  float64
	ChipCAPVdd   float64
	BlockSCAPVdd []float64
}

// profScratch is one worker's simulator state for the per-pattern
// analysis loops: a meter, a timing simulator and a reusable launch
// scratch nothing else touches, plus the V2 derivation buffers.
type profScratch struct {
	meter *power.Meter
	tm    *sim.Timing
	ls    *sim.LaunchScratch
	// toggle is meter.OnToggle bound once: creating the method value per
	// launch would be the last steady-state allocation on the hot path.
	toggle     sim.ToggleFn
	v2, capBuf []logic.V
}

// profPool builds one scratch state per worker. The first is constructed
// from the design; the rest clone it, sharing only immutable tables.
// Every worker owns a private LaunchScratch, so steady-state launches
// allocate nothing.
func (sys *System) profPool(workers int) []profScratch {
	pool := make([]profScratch, workers)
	pool[0] = profScratch{
		meter: power.NewMeter(sys.D),
		tm:    sim.NewTiming(sys.Sim, sys.Delays, sys.Tree),
	}
	for w := 1; w < workers; w++ {
		pool[w] = profScratch{meter: pool[0].meter.Clone(), tm: pool[0].tm.Clone()}
	}
	nf := len(sys.D.Flops)
	for w := range pool {
		pool[w].ls = sim.NewLaunchScratch(sys.Sim)
		pool[w].toggle = pool[w].meter.OnToggle
		pool[w].v2 = make([]logic.V, nf)
		pool[w].capBuf = make([]logic.V, nf)
	}
	return pool
}

// launch derives the pattern's V2 state and runs one timing launch, all
// on the worker's reusable scratch: the settle performed for the V2
// derivation is cached in the scratch, so the launch itself re-settles
// nothing. The returned Result lives in the scratch and is valid until
// the worker's next launch.
func (ps *profScratch) launch(sys *System, v1, pis []logic.V, dom int, onToggle sim.ToggleFn) (*sim.Result, error) {
	v2, err := sys.LaunchStateInto(ps.ls, ps.v2, ps.capBuf, v1, pis, dom)
	if err != nil {
		return nil, err
	}
	return ps.tm.LaunchInto(ps.ls, v1, v2, pis, sys.Period, onToggle)
}

// ProfilePatterns runs the streaming SCAP calculator (timing simulation +
// power meter) over a whole pattern set and returns one summary per
// pattern. The patterns are independent, so the loop fans out across
// sys.Workers workers (0 = all cores, 1 = the exact serial path), each
// owning a cloned meter and timing simulator; every pattern writes only
// its own slot, so the output is identical for any worker count.
func (sys *System) ProfilePatterns(fr *FlowResult) ([]PatternProfile, error) {
	idx := make([]int, len(fr.Patterns))
	for i := range idx {
		idx[i] = i
	}
	return sys.ProfilePatternsAt(fr, idx)
}

// ProfilePatternsAt is ProfilePatterns restricted to a subset of pattern
// indexes — the exact-verification half of the screen-then-verify
// pipeline (feed it ScreenTop's selection). out[i] profiles
// fr.Patterns[idx[i]] and carries the original pattern index.
func (sys *System) ProfilePatternsAt(fr *FlowResult, idx []int) ([]PatternProfile, error) {
	defer obs.StartSpan("profile-patterns").End()
	for _, pi := range idx {
		if pi < 0 || pi >= len(fr.Patterns) {
			return nil, fmt.Errorf("core: profile index %d out of range (%d patterns)", pi, len(fr.Patterns))
		}
	}
	workers := parallel.Resolve(sys.Workers)
	if workers > len(idx) && len(idx) > 0 {
		workers = len(idx)
	}
	pool := sys.profPool(workers)
	out := make([]PatternProfile, len(idx))
	err := parallel.For(workers, len(idx), func(w, i int) error {
		pi := idx[i]
		p := &fr.Patterns[pi]
		s := &pool[w]
		s.meter.Reset()
		res, err := s.launch(sys, p.V1, p.PIs, fr.Dom, s.toggle)
		if err != nil {
			return fmt.Errorf("core: profile pattern %d: %w", pi, err)
		}
		blocks := s.meter.ReportBlocks(sys.Period)
		chip := &blocks[sys.D.NumBlocks]
		pp := &out[i]
		pp.Index, pp.Target, pp.Step = pi, p.Target, p.Step
		pp.TargetBlock = fr.Faults.Faults[p.Target].Block
		pp.STW = res.STW
		pp.Toggles = res.Toggles
		pp.ChipSCAPVdd = chip.SCAPVdd
		pp.ChipCAPVdd = chip.CAPVdd
		pp.BlockSCAPVdd = make([]float64, sys.D.NumBlocks)
		for b := 0; b < sys.D.NumBlocks; b++ {
			pp.BlockSCAPVdd[b] = blocks[b].SCAPVdd
		}
		tkPatterns.Record(int64(pi), int64(math.Round(pp.ChipSCAPVdd*1e6)), fr.Name,
			pp.ChipSCAPVdd, pp.ChipCAPVdd, pp.STW, float64(pp.Toggles),
			float64(pp.Step), float64(pp.Target))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// AboveThreshold counts profiles whose SCAP in the given block exceeds the
// threshold (the paper's screening criterion).
func AboveThreshold(profiles []PatternProfile, block int, thresholdMW float64) int {
	n := 0
	for i := range profiles {
		if profiles[i].BlockSCAPVdd[block] > thresholdMW {
			n++
		}
	}
	cAboveThreshold.Add(int64(n))
	return n
}

// DomainSummary is one domain's contribution to a full-chip run.
type DomainSummary struct {
	Dom      int
	Name     string
	Patterns int
	Counts   fault.Counts
}

// FullChip runs the conventional flow for every clock domain (the paper
// generates "transition fault test patterns per clock domain") and returns
// the per-domain summaries plus chip totals.
func (sys *System) FullChip() ([]DomainSummary, fault.Counts, error) {
	defer obs.StartSpan("full-chip").End()
	l := sys.NewFaultList()
	var out []DomainSummary
	var total fault.Counts
	base := 0
	for dom := range sys.D.Domains {
		res, err := sys.ATPG(l, atpg.Options{
			Dom: dom, Fill: atpg.FillRandom, Seed: sys.Cfg.Seed + 40 + int64(dom),
			PatternBase: base,
		})
		if err != nil {
			return nil, total, fmt.Errorf("core: domain %d: %w", dom, err)
		}
		base += len(res.Patterns)
		c := l.CountOf(res.Subset)
		out = append(out, DomainSummary{
			Dom: dom, Name: sys.D.Domains[dom].Name,
			Patterns: len(res.Patterns), Counts: c,
		})
		total.Total += c.Total
		total.Detected += c.Detected
		total.Undetected += c.Undetected
		total.Aborted += c.Aborted
		total.Untestable += c.Untestable
	}
	return out, total, nil
}
