package core

import (
	"fmt"

	"scap/internal/pgrid"
	"scap/internal/power"
)

// StatCase is one window of the vector-less analysis (Table 3): Case 1
// spreads the cycle's switching over the full tester period, Case 2 over
// half of it — the paper's estimate of the real switching time frame,
// which doubles the average power.
type StatCase struct {
	WindowNs float64
	Power    *power.StatProfile
	// WorstVDD/WorstVSS hold the worst node drop per block plus a chip
	// entry (index NumBlocks), in volts.
	WorstVDD, WorstVSS []float64
}

// StatAnalysis is the full statistical IR-drop analysis.
type StatAnalysis struct {
	ToggleProb   float64
	Case1, Case2 StatCase
	// ThresholdMW is the per-block average switching power threshold the
	// pattern-generation procedure screens against: the block's Case-2
	// (half-cycle) average switching power on the VDD network (the paper's
	// 204 mW for B5). Index NumBlocks is the chip threshold.
	ThresholdMW []float64
	// HotBlock is the index of the block with the largest threshold.
	HotBlock int
}

// Statistical runs the paper's Section 2.2 analysis on both windows.
func (sys *System) Statistical() (*StatAnalysis, error) {
	an := &StatAnalysis{ToggleProb: sys.Cfg.ToggleProb, HotBlock: -1}
	for i, window := range []float64{sys.Period, sys.Period / 2} {
		c, err := sys.statCase(window)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			an.Case1 = *c
		} else {
			an.Case2 = *c
		}
	}
	an.ThresholdMW = make([]float64, sys.D.NumBlocks+1)
	hot := 0.0
	for b := 0; b <= sys.D.NumBlocks; b++ {
		an.ThresholdMW[b] = an.Case2.Power.Blocks[b].PowerVddMW
		if b < sys.D.NumBlocks && an.ThresholdMW[b] > hot {
			hot = an.ThresholdMW[b]
			an.HotBlock = b
		}
	}
	return an, nil
}

func (sys *System) statCase(windowNs float64) (*StatCase, error) {
	d := sys.D
	c := &StatCase{
		WindowNs: windowNs,
		Power:    power.Statistical(d, sys.Cfg.ToggleProb, windowNs),
	}
	// Each rail sees half the transitions (rising on VDD, falling on VSS).
	cur := power.StatCurrents(d, sys.Cfg.ToggleProb, windowNs)
	for i := range cur {
		cur[i] /= 2
	}
	solve := func(g *pgrid.Grid) ([]float64, error) {
		sol, err := g.Solve(g.InjectInstCurrents(d, cur))
		if err != nil {
			return nil, fmt.Errorf("core: statistical solve: %w", err)
		}
		return sol.WorstPerBlock(g, d.NumBlocks), nil
	}
	var err error
	if c.WorstVDD, err = solve(sys.GridVDD); err != nil {
		return nil, err
	}
	if c.WorstVSS, err = solve(sys.GridVSS); err != nil {
		return nil, err
	}
	return c, nil
}
