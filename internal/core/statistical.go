package core

import (
	"fmt"
	"math/rand"
	"sort"

	"scap/internal/netlist"
	"scap/internal/obs"
	"scap/internal/parallel"
	"scap/internal/pgrid"
	"scap/internal/power"
)

// StatCase is one window of the vector-less analysis (Table 3): Case 1
// spreads the cycle's switching over the full tester period, Case 2 over
// half of it — the paper's estimate of the real switching time frame,
// which doubles the average power.
type StatCase struct {
	WindowNs float64
	Power    *power.StatProfile
	// WorstVDD/WorstVSS hold the worst node drop per block plus a chip
	// entry (index NumBlocks), in volts.
	WorstVDD, WorstVSS []float64
}

// StatAnalysis is the full statistical IR-drop analysis.
type StatAnalysis struct {
	ToggleProb   float64
	Case1, Case2 StatCase
	// ThresholdMW is the per-block average switching power threshold the
	// pattern-generation procedure screens against: the block's Case-2
	// (half-cycle) average switching power on the VDD network (the paper's
	// 204 mW for B5). Index NumBlocks is the chip threshold.
	ThresholdMW []float64
	// HotBlock is the index of the block with the largest threshold.
	HotBlock int
}

// Statistical runs the paper's Section 2.2 analysis on both windows.
func (sys *System) Statistical() (*StatAnalysis, error) {
	defer obs.StartSpan("statistical").End()
	// Build the direct factorizations on this goroutine before the rail
	// solves fan out, so the one-time factor spans nest under
	// "statistical" rather than inside a pool worker.
	for _, g := range []*pgrid.Grid{sys.GridVDD, sys.GridVSS} {
		if err := sys.prefactor(g); err != nil {
			return nil, fmt.Errorf("core: statistical factorization: %w", err)
		}
	}
	an := &StatAnalysis{ToggleProb: sys.Cfg.ToggleProb, HotBlock: -1}
	var cur []float64 // per-instance currents buffer shared by both windows
	for i, window := range []float64{sys.Period, sys.Period / 2} {
		c, err := sys.statCase(window, &cur)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			an.Case1 = *c
		} else {
			an.Case2 = *c
		}
	}
	an.ThresholdMW = make([]float64, sys.D.NumBlocks+1)
	hot := 0.0
	for b := 0; b <= sys.D.NumBlocks; b++ {
		an.ThresholdMW[b] = an.Case2.Power.Blocks[b].PowerVddMW
		if b < sys.D.NumBlocks && an.ThresholdMW[b] > hot {
			hot = an.ThresholdMW[b]
			an.HotBlock = b
		}
	}
	return an, nil
}

func (sys *System) statCase(windowNs float64, curBuf *[]float64) (*StatCase, error) {
	d := sys.D
	c := &StatCase{
		WindowNs: windowNs,
		Power:    power.Statistical(d, sys.Cfg.ToggleProb, windowNs),
	}
	// Each rail sees half the transitions (rising on VDD, falling on VSS).
	*curBuf = power.StatCurrentsInto(*curBuf, d, sys.Cfg.ToggleProb, windowNs)
	cur := *curBuf
	for i := range cur {
		cur[i] /= 2
	}
	// The two rail solves are independent; fan them across the pool
	// (cur is shared read-only, each rail writes its own slot).
	grids := [2]*pgrid.Grid{sys.GridVDD, sys.GridVSS}
	var worst [2][]float64
	err := parallel.For(sys.Workers, 2, func(_, r int) error {
		g := grids[r]
		sol, err := sys.solveRail(g, g.InjectInstCurrents(d, cur), nil, nil, nil)
		if err != nil {
			return fmt.Errorf("core: statistical solve: %w", err)
		}
		worst[r] = sol.WorstPerBlock(g, d.NumBlocks)
		return nil
	})
	if err != nil {
		return nil, err
	}
	c.WorstVDD, c.WorstVSS = worst[0], worst[1]
	return c, nil
}

// MCResult aggregates the Monte-Carlo refinement of the vector-less
// analysis: instead of one expected-current solve, each trial draws a
// Bernoulli toggle realization per instance at the configured toggle
// probability (a rising edge with half that probability — the VDD-rail
// share), solves the VDD mesh, and the per-block worst drops are
// reduced to mean / 95th-percentile / max envelopes. The expected value
// of a trial's injection equals the Case-2 deterministic injection, so
// the mean envelope brackets Table 3 while the tail quantifies how much
// worse an unlucky cycle can be.
type MCResult struct {
	Trials     int
	WindowNs   float64
	ToggleProb float64
	// MeanVDD, P95VDD and MaxVDD hold the per-block (+chip, index
	// NumBlocks) statistics of the worst VDD-rail node drop, volts.
	MeanVDD, P95VDD, MaxVDD []float64
	// MeanIters is the mean solver sweep count per trial: 1 under the
	// factored solver (every trial is exact), and under the SOR fallback
	// the warm-started iteration count, far below a cold solve.
	MeanIters float64
}

// MonteCarloIRDrop runs the Monte-Carlo loop over the Case-2 (half
// cycle) window. Trials are independent, so they fan out across
// sys.Workers workers; each trial seeds its own PRNG from (seed, trial)
// and solves against the shared read-only factorization (or, under the
// SOR fallback, warm-starts from the shared deterministic baseline), so
// the result is identical for any worker count.
func (sys *System) MonteCarloIRDrop(trials int, seed int64) (*MCResult, error) {
	defer obs.StartSpan("monte-carlo-irdrop").End()
	if trials <= 0 {
		return nil, fmt.Errorf("core: trials must be positive")
	}
	d := sys.D
	window := sys.Period / 2
	prob := sys.Cfg.ToggleProb

	// fullCur[i] is instance i's VDD-rail current when it toggles with a
	// rising edge this cycle: C·VDD²/(VDD·window), in mA.
	fullCur := make([]float64, d.NumInsts())
	for i := range fullCur {
		fullCur[i] = d.LoadCap(netlist.InstID(i)) * d.Lib.VDD / window * 1e-3
	}

	// Deterministic warm-start baseline for the iterative tiers (SOR and
	// multigrid): the expected injection (the Case-2 VDD solve of the
	// Statistical analysis), solved by the configured tier itself. The
	// direct paths need no guess — every trial is an exact solve against
	// the shared factorization.
	g := sys.GridVDD
	var warm []float64
	if sys.Solver == SolverSOR || sys.Solver == SolverMG {
		exp := power.StatCurrents(d, prob, window)
		for i := range exp {
			exp[i] /= 2
		}
		base, err := sys.solveRail(g, g.InjectInstCurrents(d, exp), nil, nil, nil)
		if err != nil {
			return nil, fmt.Errorf("core: MC baseline: %w", err)
		}
		warm = base.Drop
	} else if err := sys.prefactor(g); err != nil {
		return nil, fmt.Errorf("core: MC factorization: %w", err)
	}

	workers := parallel.Resolve(sys.Workers)
	if workers > trials {
		workers = trials
	}
	type mcScratch struct {
		cur, inj []float64
		sol      *pgrid.Solution
		fs       pgrid.SolveScratch
	}
	scratch := make([]mcScratch, workers)
	perTrial := make([][]float64, trials)
	iters := make([]int, trials)
	err := parallel.For(workers, trials, func(w, t int) error {
		sc := &scratch[w]
		if sc.cur == nil {
			sc.cur = make([]float64, d.NumInsts())
		}
		rng := rand.New(rand.NewSource(seed + int64(t)*7919))
		for i := range sc.cur {
			if rng.Float64() < prob/2 { // toggles AND rises
				sc.cur[i] = fullCur[i]
			} else {
				sc.cur[i] = 0
			}
		}
		sc.inj = g.InjectInstCurrentsInto(sc.inj, d, sc.cur)
		sol, err := sys.solveRail(g, sc.inj, warm, sc.sol, &sc.fs)
		if err != nil {
			return fmt.Errorf("core: MC trial %d: %w", t, err)
		}
		sc.sol = sol
		perTrial[t] = sol.WorstPerBlock(g, d.NumBlocks)
		iters[t] = sol.Iterations
		return nil
	})
	if err != nil {
		return nil, err
	}

	nb := d.NumBlocks + 1
	res := &MCResult{
		Trials: trials, WindowNs: window, ToggleProb: prob,
		MeanVDD: make([]float64, nb),
		P95VDD:  make([]float64, nb),
		MaxVDD:  make([]float64, nb),
	}
	vals := make([]float64, trials)
	for b := 0; b < nb; b++ {
		for t := range perTrial {
			v := perTrial[t][b]
			vals[t] = v
			res.MeanVDD[b] += v
			if v > res.MaxVDD[b] {
				res.MaxVDD[b] = v
			}
		}
		res.MeanVDD[b] /= float64(trials)
		sort.Float64s(vals)
		idx := (95*trials - 1) / 100
		if idx >= trials {
			idx = trials - 1
		}
		res.P95VDD[b] = vals[idx]
	}
	for _, it := range iters {
		res.MeanIters += float64(it)
	}
	res.MeanIters /= float64(trials)
	return res, nil
}
