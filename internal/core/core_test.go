package core

import (
	"sync"
	"testing"

	"scap/internal/atpg"
	"scap/internal/soc"
)

var (
	once    sync.Once
	sysG    *System
	statG   *StatAnalysis
	convG   *FlowResult
	newG    *FlowResult
	buildEr error
)

// build constructs one shared small system plus both flows; the ATPG runs
// dominate test time, so all core tests share them.
func build(t *testing.T) (*System, *StatAnalysis, *FlowResult, *FlowResult) {
	t.Helper()
	once.Do(func() {
		cfg := DefaultConfig(48)
		sysG, buildEr = Build(cfg)
		if buildEr != nil {
			return
		}
		statG, buildEr = sysG.Statistical()
		if buildEr != nil {
			return
		}
		convG, buildEr = sysG.ConventionalFlow(0)
		if buildEr != nil {
			return
		}
		newG, buildEr = sysG.NewProcedureFlow(0)
	})
	if buildEr != nil {
		t.Fatal(buildEr)
	}
	return sysG, statG, convG, newG
}

func TestBuildCalibratesGrid(t *testing.T) {
	sys, stat, _, _ := build(t)
	// After calibration, the hottest block's Case-2 worst VDD drop should
	// sit on the configured target.
	hot := stat.HotBlock
	if hot != soc.B5 {
		t.Fatalf("hot block is B%d, want B5", hot+1)
	}
	got := stat.Case2.WorstVDD[hot]
	want := sys.Cfg.GridCalibTargetV
	if got < 0.8*want || got > 1.25*want {
		t.Fatalf("calibrated Case2 B5 drop %v, target %v", got, want)
	}
}

func TestStatisticalShapes(t *testing.T) {
	sys, stat, _, _ := build(t)
	d := sys.D
	// Case 2 power must be exactly double Case 1 (half window).
	for b := 0; b <= d.NumBlocks; b++ {
		p1 := stat.Case1.Power.Blocks[b].PowerVddMW
		p2 := stat.Case2.Power.Blocks[b].PowerVddMW
		if p1 <= 0 {
			t.Fatalf("block %d zero statistical power", b)
		}
		if p2 < 1.99*p1 || p2 > 2.01*p1 {
			t.Fatalf("block %d: Case2 %v not ~2x Case1 %v", b, p2, p1)
		}
	}
	// B5 has the largest power and the worst drop in both cases.
	for b := 0; b < d.NumBlocks; b++ {
		if b == soc.B5 {
			continue
		}
		if stat.ThresholdMW[b] >= stat.ThresholdMW[soc.B5] {
			t.Fatalf("threshold B%d >= B5", b+1)
		}
		if stat.Case2.WorstVDD[b] >= stat.Case2.WorstVDD[soc.B5] {
			t.Fatalf("Case2 drop B%d >= B5", b+1)
		}
	}
	// The drop rises when the window halves, but sub-linearly for small
	// peripheral blocks (the paper's observation 1) — at minimum it must
	// not shrink.
	for b := 0; b < d.NumBlocks; b++ {
		if stat.Case2.WorstVDD[b] < stat.Case1.WorstVDD[b] {
			t.Fatalf("block %d: Case2 drop below Case1", b)
		}
	}
	// VSS analysis present and positive.
	if stat.Case2.WorstVSS[soc.B5] <= 0 {
		t.Fatal("no VSS drop")
	}
}

func TestFlowsReachSimilarCoverage(t *testing.T) {
	_, _, conv, nw := build(t)
	if len(conv.Patterns) == 0 || len(nw.Patterns) == 0 {
		t.Fatal("empty flows")
	}
	cc := conv.Counts.TestCoverage()
	nc := nw.Counts.TestCoverage()
	t.Logf("conventional: %d patterns, %.1f%% TC; new: %d patterns, %.1f%% TC",
		len(conv.Patterns), 100*cc, len(nw.Patterns), 100*nc)
	if cc < 0.6 || nc < 0.6 {
		t.Fatalf("coverage too low: %v vs %v", cc, nc)
	}
	if nc < cc-0.08 {
		t.Fatalf("new procedure lost too much coverage: %v vs %v", nc, cc)
	}
	// Coverage curves are monotone and end at the final coverage.
	for _, fr := range []*FlowResult{conv, nw} {
		prev := 0.0
		for i, c := range fr.Coverage {
			if c < prev-1e-12 {
				t.Fatalf("%s coverage decreases at %d", fr.Name, i)
			}
			prev = c
		}
	}
	// The new procedure's steps are tagged in order.
	lastStep := 0
	for _, p := range nw.Patterns {
		if p.Step < lastStep {
			t.Fatal("steps out of order")
		}
		lastStep = p.Step
	}
	if lastStep != 2 {
		t.Fatalf("last step %d, want 2 (B5)", lastStep)
	}
}

// TestNewProcedureReducesAboveThresholdPatterns is the paper's headline
// result (Fig. 2 vs Fig. 6): with block-stepped fill-0 generation, the
// number of patterns whose B5 SCAP exceeds the statistical threshold drops
// dramatically versus conventional random fill.
func TestNewProcedureReducesAboveThresholdPatterns(t *testing.T) {
	sys, stat, conv, nw := build(t)
	convProf, err := sys.ProfilePatterns(conv)
	if err != nil {
		t.Fatal(err)
	}
	newProf, err := sys.ProfilePatterns(nw)
	if err != nil {
		t.Fatal(err)
	}
	thr := stat.ThresholdMW[soc.B5]
	convAbove := AboveThreshold(convProf, soc.B5, thr)
	newAbove := AboveThreshold(newProf, soc.B5, thr)
	t.Logf("B5 threshold %.2f mW: conventional %d/%d above, new %d/%d above",
		thr, convAbove, len(convProf), newAbove, len(newProf))
	if convAbove == 0 {
		t.Fatal("conventional random fill produced no hot patterns — shape broken")
	}
	// At this reduced unit-test scale a single test cube's care bits are
	// already ~10% of B5's flop population, so the B5-targeted tail cannot
	// be as quiet as the paper's full-size design; the full contrast is
	// exercised at the default experiment scale by the bench harness.
	// Here the assertions are directional.
	convFrac := float64(convAbove) / float64(len(convProf))
	newFrac := float64(newAbove) / float64(len(newProf))
	if convFrac < 0.5 {
		t.Fatalf("conventional fraction %.2f unexpectedly low", convFrac)
	}
	if newFrac >= convFrac {
		t.Fatalf("new procedure fraction %.2f not below conventional %.2f", newFrac, convFrac)
	}
	// Early-step (non-B5) patterns must be mostly quiet in B5 — the
	// paper's Figure 6 prefix.
	earlyAbove, earlyN := 0, 0
	var earlySum, lateSum float64
	lateN := 0
	for i := range newProf {
		if newProf[i].Step < 2 {
			earlyN++
			earlySum += newProf[i].BlockSCAPVdd[soc.B5]
			if newProf[i].BlockSCAPVdd[soc.B5] > thr {
				earlyAbove++
			}
		} else {
			lateN++
			lateSum += newProf[i].BlockSCAPVdd[soc.B5]
		}
	}
	if earlyN == 0 || lateN == 0 {
		t.Fatal("missing steps")
	}
	if frac := float64(earlyAbove) / float64(earlyN); frac > 0.5 {
		t.Fatalf("early steps have %.0f%% of patterns above the B5 threshold", 100*frac)
	}
	if earlySum/float64(earlyN) >= lateSum/float64(lateN) {
		t.Fatalf("early steps (%.2f mW) not quieter in B5 than step 3 (%.2f mW)",
			earlySum/float64(earlyN), lateSum/float64(lateN))
	}
}

func TestSTWNearHalfPeriod(t *testing.T) {
	sys, _, conv, _ := build(t)
	prof, err := sys.ProfilePatterns(conv)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := range prof {
		sum += prof[i].STW
	}
	mean := sum / float64(len(prof))
	frac := mean / sys.Period
	t.Logf("mean STW %.2f ns (%.0f%% of the %v ns period)", mean, 100*frac, sys.Period)
	// The paper observes STW near half the cycle; accept a broad band.
	if frac < 0.2 || frac > 0.95 {
		t.Fatalf("mean STW fraction %.2f outside plausible band", frac)
	}
	// SCAP must exceed CAP for every active pattern, by the T/STW ratio.
	for i := range prof {
		if prof[i].Toggles == 0 {
			continue
		}
		if prof[i].ChipSCAPVdd < prof[i].ChipCAPVdd {
			t.Fatalf("pattern %d: SCAP below CAP", i)
		}
	}
}

func TestDynamicIRDropSCAPvsCAP(t *testing.T) {
	sys, _, conv, _ := build(t)
	prof, err := sys.ProfilePatterns(conv)
	if err != nil {
		t.Fatal(err)
	}
	// Pick the hottest pattern.
	hot := 0
	for i := range prof {
		if prof[i].ChipSCAPVdd > prof[hot].ChipSCAPVdd {
			hot = i
		}
	}
	cap, err := sys.DynamicIRDrop(&conv.Patterns[hot], 0, ModelCAP)
	if err != nil {
		t.Fatal(err)
	}
	scap, err := sys.DynamicIRDrop(&conv.Patterns[hot], 0, ModelSCAP)
	if err != nil {
		t.Fatal(err)
	}
	nb := sys.D.NumBlocks
	t.Logf("hot pattern: CAP worst %v V, SCAP worst %v V (STW %.2f ns)",
		cap.WorstVDD[nb], scap.WorstVDD[nb], scap.STW)
	if scap.WorstVDD[nb] <= cap.WorstVDD[nb] {
		t.Fatal("SCAP-model drop not above CAP-model drop")
	}
	ratio := scap.WorstVDD[nb] / cap.WorstVDD[nb]
	wantRatio := sys.Period / scap.STW
	if ratio < 0.9*wantRatio || ratio > 1.1*wantRatio {
		t.Fatalf("drop ratio %v, want ~T/STW = %v", ratio, wantRatio)
	}
	if scap.WorstVSS[nb] <= 0 {
		t.Fatal("no VSS drop")
	}
	comb := scap.CombinedDrop()
	if comb.Worst < scap.SolVDD.Worst {
		t.Fatal("combined drop below VDD drop")
	}
}

func TestDelayImpact(t *testing.T) {
	sys, _, conv, _ := build(t)
	prof, err := sys.ProfilePatterns(conv)
	if err != nil {
		t.Fatal(err)
	}
	hot := 0
	for i := range prof {
		if prof[i].ChipSCAPVdd > prof[hot].ChipSCAPVdd {
			hot = i
		}
	}
	imp, dyn, err := sys.DelayImpact(&conv.Patterns[hot], 0)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.SolVDD.Worst <= 0 {
		t.Fatal("no drop")
	}
	if imp.Slowed == 0 {
		t.Fatal("IR-drop slowed no endpoint")
	}
	t.Logf("delay impact: %d slowed, %d sped, max slowdown %.1f%%",
		imp.Slowed, imp.Sped, 100*imp.MaxSlowdownFrac)
	if imp.MaxSlowdownFrac <= 0 {
		t.Fatal("no slowdown fraction")
	}
}

func TestATPGDefaultsApplied(t *testing.T) {
	sys, _, _, _ := build(t)
	l := sys.NewFaultList()
	res, err := sys.ATPG(l, atpg.Options{Dom: 1, Fill: atpg.Fill0, MaxPatterns: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) > 3 {
		t.Fatal("MaxPatterns ignored")
	}
}

func TestFunctionalPowerFarBelowTestPower(t *testing.T) {
	sys, _, conv, _ := build(t)
	fn, err := sys.FunctionalPowerSim(0, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	if fn.MeanPowerMW[sys.D.NumBlocks] <= 0 {
		t.Fatal("no functional activity")
	}
	prof, err := sys.ProfilePatterns(conv)
	if err != nil {
		t.Fatal(err)
	}
	// Mean test-pattern CAP (chip) vs functional mean power.
	sum := 0.0
	for i := range prof {
		sum += prof[i].ChipCAPVdd
	}
	meanTest := sum / float64(len(prof))
	ratio := meanTest / fn.MeanPowerMW[sys.D.NumBlocks]
	t.Logf("functional %.2f mW vs mean test CAP(VDD) %.2f mW: ratio %.1fx (cycles %d, %0.f toggles/cycle)",
		fn.MeanPowerMW[sys.D.NumBlocks], meanTest, ratio, fn.Cycles, fn.MeanToggles)
	// The paper's premise: test switching far exceeds functional.
	if ratio < 1.5 {
		t.Fatalf("test power only %.2fx functional — premise broken", ratio)
	}
	if r := TestVsFunctionalRatio(prof, fn, soc.B5); r <= 1 {
		t.Fatalf("B5 test/functional ratio %.2f", r)
	}
	if _, err := sys.FunctionalPowerSim(0, 0, 1); err == nil {
		t.Fatal("zero cycles accepted")
	}
}

func TestGradeDetections(t *testing.T) {
	sys, _, conv, _ := build(t)
	rep, err := sys.GradeDetections(conv, 400)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Grades) == 0 {
		t.Fatal("no grades")
	}
	total := 0
	for _, n := range rep.Deciles {
		total += n
	}
	if total != len(rep.Grades) {
		t.Fatalf("histogram holds %d, grades %d", total, len(rep.Grades))
	}
	for _, g := range rep.Grades {
		if g.DetectDelayNs <= 0 || g.DetectDelayNs > sys.Period {
			t.Fatalf("fault %d detect delay %v outside (0, %v]", g.Fault, g.DetectDelayNs, sys.Period)
		}
		if g.SlackNs < 0 || g.SlackNs+g.DetectDelayNs != sys.Period {
			t.Fatalf("fault %d slack inconsistent: %v + %v != %v",
				g.Fault, g.SlackNs, g.DetectDelayNs, sys.Period)
		}
	}
	if rep.BestSlack > rep.MeanSlack || rep.MeanSlack > rep.WorstSlack {
		t.Fatalf("slack ordering broken: %v %v %v", rep.BestSlack, rep.MeanSlack, rep.WorstSlack)
	}
	t.Logf("graded %d detections: slack best %.2f / mean %.2f / worst %.2f ns",
		len(rep.Grades), rep.BestSlack, rep.MeanSlack, rep.WorstSlack)
	if _, err := sys.GradeDetections(&FlowResult{Faults: sys.NewFaultList(), Dom: 0}, 10); err == nil {
		t.Fatal("empty flow accepted")
	}
}

func TestFullChipCoversAllDomains(t *testing.T) {
	sys, _, _, _ := build(t)
	sums, total, err := sys.FullChip()
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != len(sys.D.Domains) {
		t.Fatalf("%d summaries for %d domains", len(sums), len(sys.D.Domains))
	}
	pats := 0
	for _, s := range sums {
		if s.Counts.Total == 0 {
			t.Fatalf("domain %s has no faults", s.Name)
		}
		if s.Counts.Detected == 0 {
			t.Fatalf("domain %s detected nothing", s.Name)
		}
		pats += s.Patterns
	}
	if total.Detected == 0 || total.Total == 0 {
		t.Fatal("empty totals")
	}
	t.Logf("full chip: %d patterns across %d domains, %d/%d detected (TC %.1f%%)",
		pats, len(sums), total.Detected, total.Total, 100*total.TestCoverage())
	if total.TestCoverage() < 0.6 {
		t.Fatalf("full-chip coverage %.1f%% too low", 100*total.TestCoverage())
	}
}
