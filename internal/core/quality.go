package core

import (
	"fmt"
	"math"
	"sort"

	"scap/internal/fault"
	"scap/internal/faultsim"
	"scap/internal/logic"
	"scap/internal/obs"
	"scap/internal/parallel"
)

// FaultGrade records through how long a path one fault was detected.
// A transition fault detected through a short path only screens gross
// delay defects; small-delay defects escape by the slack. This is the
// quality argument behind the authors' faster-than-at-speed companion
// work (the paper's ref [20]).
type FaultGrade struct {
	Fault   int
	Pattern int
	// DetectDelayNs is the longest measured endpoint delay among the
	// flops that observe the fault (relative to each flop's own clock).
	DetectDelayNs float64
	// SlackNs is Period - DetectDelayNs: the size of delay defect that
	// escapes this detection.
	SlackNs float64
}

// QualityReport aggregates detection-path quality over a pattern set.
type QualityReport struct {
	PeriodNs   float64
	Grades     []FaultGrade
	MeanSlack  float64
	WorstSlack float64 // the largest escape window
	BestSlack  float64
	// Deciles[i] counts faults whose detect delay falls in
	// [i*10%, (i+1)*10%) of the period: mass on the left means short-path
	// detections that screen little.
	Deciles [10]int
}

// gradeEntry is one (fault, detecting pattern) pair scheduled into a
// 64-pattern batch: slot is the pattern's slot in the packed good-machine
// batch, pat its index in the flow's pattern list.
type gradeEntry struct {
	fi, slot, pat int
}

// GradeDetections measures, for up to maxFaults detected faults of the
// flow, the timing-simulated delay of the paths their detecting patterns
// exercise. Faults are graded against their first detecting pattern.
//
// The grading engine is fully packed: detecting patterns are grouped 64
// per good-machine batch (one GoodSim where the old path ran one per
// pattern with a single valid slot), the per-pattern timing launches and
// the per-fault failure-signature propagations both fan out across
// sys.Workers, and signatures come from the allocation-free FailSlots
// instead of a fresh map per fault. Batches run in sorted pattern order
// and the per-fault results merge serially in schedule order, so the
// report is bit-identical for any worker count.
func (sys *System) GradeDetections(fr *FlowResult, maxFaults int) (*QualityReport, error) {
	defer obs.StartSpan("grade-detections").End()
	if maxFaults <= 0 {
		maxFaults = 1 << 30
	}
	d, l := sys.D, fr.Faults

	// Group detected faults by detecting pattern.
	byPat := map[int][]int{}
	taken := 0
	for _, fi := range fr.Subset {
		if l.Status[fi] != fault.Detected || taken >= maxFaults {
			continue
		}
		p := l.DetectedBy[fi]
		if p < 0 || p >= len(fr.Patterns) {
			continue
		}
		byPat[p] = append(byPat[p], fi)
		taken++
	}
	if taken == 0 {
		return nil, fmt.Errorf("core: flow has no graded detections")
	}
	pats := make([]int, 0, len(byPat))
	for p := range byPat {
		pats = append(pats, p)
	}
	sort.Ints(pats)

	workers := parallel.Resolve(sys.Workers)
	tpool := sys.profPool(workers)
	// Per-worker fault simulators: the shared FSim serves worker 0, the
	// rest get clones with private cone scratch.
	sims := make([]*faultsim.Sim, workers)
	sims[0] = sys.FSim
	for w := 1; w < workers; w++ {
		sims[w] = sys.FSim.Clone()
	}

	rep := &QualityReport{PeriodNs: sys.Period, BestSlack: math.Inf(1)}
	nf := len(d.Flops)
	nSlots := 64
	if len(pats) < nSlots {
		nSlots = len(pats)
	}
	// Per-slot endpoint timing of the batch's patterns (copied out of the
	// worker launch scratches, reused across batches).
	arr := make([][]float64, nSlots)
	act := make([][]bool, nSlots)
	for s := range arr {
		arr[s] = make([]float64, nf)
		act[s] = make([]bool, nf)
	}
	var v1W, piW []logic.Word
	slotV1 := make([][]logic.V, 0, nSlots)
	slotPI := make([][]logic.V, 0, nSlots)
	var entries []gradeEntry
	var delays []float64

	for lo := 0; lo < len(pats); lo += 64 {
		hi := lo + 64
		if hi > len(pats) {
			hi = len(pats)
		}
		batch := pats[lo:hi]

		// One packed good-machine simulation for the whole batch.
		slotV1, slotPI = slotV1[:0], slotPI[:0]
		for _, pi := range batch {
			slotV1 = append(slotV1, fr.Patterns[pi].V1)
			slotPI = append(slotPI, fr.Patterns[pi].PIs)
		}
		v1W = logic.PackSlots(v1W, slotV1)
		piW = logic.PackSlots(piW, slotPI)
		b := sys.FSim.GoodSim(v1W, piW, fr.Dom, logic.ValidMask(len(batch)))

		// Timing: per-endpoint arrivals of every batch pattern (no power
		// accounting — the meters stay idle, the scratches are reused).
		tw := workers
		if tw > len(batch) {
			tw = len(batch)
		}
		err := parallel.For(tw, len(batch), func(w, s int) error {
			p := &fr.Patterns[batch[s]]
			res, err := tpool[w].launch(sys, p.V1, p.PIs, fr.Dom, nil)
			if err != nil {
				return fmt.Errorf("core: grading pattern %d: %w", batch[s], err)
			}
			copy(arr[s], res.EndpointArrival)
			copy(act[s], res.EndpointActive)
			return nil
		})
		if err != nil {
			return nil, err
		}

		// Fault grading: propagate every scheduled fault's failure
		// signature through the packed batch, one index-addressed delay
		// per entry.
		entries = entries[:0]
		for s, pi := range batch {
			for _, fi := range byPat[pi] {
				entries = append(entries, gradeEntry{fi: fi, slot: s, pat: pi})
			}
		}
		if cap(delays) < len(entries) {
			delays = make([]float64, len(entries))
		}
		delays = delays[:len(entries)]
		fw := workers
		if fw > len(entries) {
			fw = len(entries)
		}
		err = parallel.For(fw, len(entries), func(w, i int) error {
			e := entries[i]
			flops, masks := sims[w].FailSlots(b, &l.Faults[e.fi])
			bit := uint64(1) << uint(e.slot)
			delay := 0.0
			for j, flop := range flops {
				if masks[j]&bit == 0 || !act[e.slot][flop] {
					continue
				}
				dd := arr[e.slot][flop] - sys.Tree.Arrival(d.Flops[flop])
				if dd > delay {
					delay = dd
				}
			}
			delays[i] = delay
			return nil
		})
		if err != nil {
			return nil, err
		}

		// Serial merge in schedule order: identical float accumulation for
		// any worker count.
		for i := range entries {
			e, delay := &entries[i], delays[i]
			if delay <= 0 {
				continue // fault observed through a non-transitioning path
			}
			g := FaultGrade{
				Fault: e.fi, Pattern: e.pat,
				DetectDelayNs: delay, SlackNs: sys.Period - delay,
			}
			rep.Grades = append(rep.Grades, g)
			rep.MeanSlack += g.SlackNs
			if g.SlackNs > rep.WorstSlack {
				rep.WorstSlack = g.SlackNs
			}
			if g.SlackNs < rep.BestSlack {
				rep.BestSlack = g.SlackNs
			}
			dec := int(delay / sys.Period * 10)
			if dec < 0 {
				dec = 0
			}
			if dec > 9 {
				dec = 9
			}
			rep.Deciles[dec]++
		}
	}
	if len(rep.Grades) == 0 {
		return nil, fmt.Errorf("core: no gradable detections")
	}
	rep.MeanSlack /= float64(len(rep.Grades))
	return rep, nil
}
