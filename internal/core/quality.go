package core

import (
	"fmt"
	"math"
	"sort"

	"scap/internal/fault"
	"scap/internal/logic"
	"scap/internal/obs"
)

// FaultGrade records through how long a path one fault was detected.
// A transition fault detected through a short path only screens gross
// delay defects; small-delay defects escape by the slack. This is the
// quality argument behind the authors' faster-than-at-speed companion
// work (the paper's ref [20]).
type FaultGrade struct {
	Fault   int
	Pattern int
	// DetectDelayNs is the longest measured endpoint delay among the
	// flops that observe the fault (relative to each flop's own clock).
	DetectDelayNs float64
	// SlackNs is Period - DetectDelayNs: the size of delay defect that
	// escapes this detection.
	SlackNs float64
}

// QualityReport aggregates detection-path quality over a pattern set.
type QualityReport struct {
	PeriodNs   float64
	Grades     []FaultGrade
	MeanSlack  float64
	WorstSlack float64 // the largest escape window
	BestSlack  float64
	// Deciles[i] counts faults whose detect delay falls in
	// [i*10%, (i+1)*10%) of the period: mass on the left means short-path
	// detections that screen little.
	Deciles [10]int
}

// GradeDetections measures, for up to maxFaults detected faults of the
// flow, the timing-simulated delay of the paths their detecting patterns
// exercise. Faults are graded against their first detecting pattern.
func (sys *System) GradeDetections(fr *FlowResult, maxFaults int) (*QualityReport, error) {
	defer obs.StartSpan("grade-detections").End()
	if maxFaults <= 0 {
		maxFaults = 1 << 30
	}
	d, l := sys.D, fr.Faults

	// Group detected faults by detecting pattern.
	byPat := map[int][]int{}
	taken := 0
	for _, fi := range fr.Subset {
		if l.Status[fi] != fault.Detected || taken >= maxFaults {
			continue
		}
		p := l.DetectedBy[fi]
		if p < 0 || p >= len(fr.Patterns) {
			continue
		}
		byPat[p] = append(byPat[p], fi)
		taken++
	}
	if taken == 0 {
		return nil, fmt.Errorf("core: flow has no graded detections")
	}
	pats := make([]int, 0, len(byPat))
	for p := range byPat {
		pats = append(pats, p)
	}
	sort.Ints(pats)

	pool := sys.profPool(1)
	ps := &pool[0]
	rep := &QualityReport{PeriodNs: sys.Period, BestSlack: math.Inf(1)}

	v1W := make([]logic.Word, len(d.Flops))
	piW := make([]logic.Word, len(d.PIs))
	for _, pi := range pats {
		p := &fr.Patterns[pi]
		// Timing: per-endpoint arrivals for this pattern (no power
		// accounting needed — the meter stays idle, the scratch is reused).
		res, err := ps.launch(sys, p.V1, p.PIs, fr.Dom, nil)
		if err != nil {
			return nil, fmt.Errorf("core: grading pattern %d: %w", pi, err)
		}
		// Fault observation points for this single pattern.
		for i := range v1W {
			v1W[i] = logic.Splat(p.V1[i])
		}
		for i := range piW {
			piW[i] = logic.Splat(p.PIs[i])
		}
		b := sys.FSim.GoodSim(v1W, piW, fr.Dom, 1)
		for _, fi := range byPat[pi] {
			masks := sys.FSim.FailMasks(b, &l.Faults[fi])
			delay := 0.0
			for flop, m := range masks {
				if m&1 == 0 || !res.EndpointActive[flop] {
					continue
				}
				dd := res.EndpointArrival[flop] - sys.Tree.Arrival(d.Flops[flop])
				if dd > delay {
					delay = dd
				}
			}
			if delay <= 0 {
				continue // fault observed through a non-transitioning path
			}
			g := FaultGrade{
				Fault: fi, Pattern: pi,
				DetectDelayNs: delay, SlackNs: sys.Period - delay,
			}
			rep.Grades = append(rep.Grades, g)
			rep.MeanSlack += g.SlackNs
			if g.SlackNs > rep.WorstSlack {
				rep.WorstSlack = g.SlackNs
			}
			if g.SlackNs < rep.BestSlack {
				rep.BestSlack = g.SlackNs
			}
			dec := int(delay / sys.Period * 10)
			if dec < 0 {
				dec = 0
			}
			if dec > 9 {
				dec = 9
			}
			rep.Deciles[dec]++
		}
	}
	if len(rep.Grades) == 0 {
		return nil, fmt.Errorf("core: no gradable detections")
	}
	rep.MeanSlack /= float64(len(rep.Grades))
	return rep, nil
}
