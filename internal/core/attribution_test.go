package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"scap/internal/obs"
	"scap/internal/soc"
)

// hotspotJSON runs fn with instrumentation enabled on a clean registry
// and returns the marshaled hotspot tables it produced (map keys
// marshal sorted, so equal tables give equal bytes).
func hotspotJSON(t *testing.T, fn func()) []byte {
	t.Helper()
	obs.Reset()
	obs.Enable()
	defer func() {
		obs.Reset()
		obs.Disable()
	}()
	fn()
	b, err := json.Marshal(obs.BuildReport("test", nil).Hotspots)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestHotspotTablesWorkerIndependent is the attribution contract for the
// profiling pipeline: every hotspot table (pattern SCAP, packed screen,
// IR-drop) ranks on deterministic quantities, so the serialized tables
// must be byte-identical for any -workers value.
func TestHotspotTablesWorkerIndependent(t *testing.T) {
	sys, _, conv, _ := build(t)
	run := func(workers int) []byte {
		return hotspotJSON(t, func() {
			setWorkers(t, sys, workers)
			if _, err := sys.ProfilePatterns(conv); err != nil {
				t.Fatal(err)
			}
			screens, err := sys.ScreenPatterns(conv)
			if err != nil {
				t.Fatal(err)
			}
			ScreenTop(screens, soc.B5, 0.25)
			if _, err := sys.DynamicIRDropAll(conv, ModelSCAP); err != nil {
				t.Fatal(err)
			}
		})
	}
	want := run(1)
	var tables map[string]obs.TopKReport
	if err := json.Unmarshal(want, &tables); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"core.pattern_hotspots", "core.screen_hotspots", "core.irdrop_hotspots"} {
		if len(tables[name].Entries) == 0 {
			t.Errorf("serial run recorded no %s entries", name)
		}
	}
	for _, workers := range []int{2, 8} {
		if got := run(workers); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: hotspot tables differ from serial\nserial: %s\npar:    %s",
				workers, want, got)
		}
	}
}
