package core

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"scap/internal/pgrid"
	"scap/internal/soc"
)

// setWorkers temporarily overrides the shared system's worker knob.
func setWorkers(t *testing.T, sys *System, n int) {
	t.Helper()
	old := sys.Workers
	sys.Workers = n
	t.Cleanup(func() { sys.Workers = old })
}

// setSolver temporarily overrides the shared system's solver choice.
func setSolver(t *testing.T, sys *System, s Solver) {
	t.Helper()
	old := sys.Solver
	sys.Solver = s
	t.Cleanup(func() { sys.Solver = old })
}

// TestProfilePatternsDeterministicAcrossWorkers is the concurrency
// contract: the parallel profiling pipeline must produce field-by-field
// identical results for any worker count (run under -race via the
// Makefile's test-race gate).
func TestProfilePatternsDeterministicAcrossWorkers(t *testing.T) {
	sys, _, conv, _ := build(t)
	setWorkers(t, sys, 1)
	serial, err := sys.ProfilePatterns(conv)
	if err != nil {
		t.Fatal(err)
	}
	sys.Workers = 8
	par, err := sys.ProfilePatterns(conv)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) {
		t.Fatalf("length %d vs %d", len(par), len(serial))
	}
	for i := range serial {
		s, p := &serial[i], &par[i]
		if s.Index != p.Index || s.Target != p.Target || s.TargetBlock != p.TargetBlock ||
			s.Step != p.Step || s.Toggles != p.Toggles {
			t.Fatalf("pattern %d: integer fields differ: %+v vs %+v", i, s, p)
		}
		if s.STW != p.STW || s.ChipSCAPVdd != p.ChipSCAPVdd || s.ChipCAPVdd != p.ChipCAPVdd {
			t.Fatalf("pattern %d: scalar fields differ: %+v vs %+v", i, s, p)
		}
		if len(s.BlockSCAPVdd) != len(p.BlockSCAPVdd) {
			t.Fatalf("pattern %d: block slice length", i)
		}
		for b := range s.BlockSCAPVdd {
			if s.BlockSCAPVdd[b] != p.BlockSCAPVdd[b] {
				t.Fatalf("pattern %d block %d: %v vs %v", i, b, s.BlockSCAPVdd[b], p.BlockSCAPVdd[b])
			}
		}
	}
}

// TestDynamicIRDropAllDeterministicAcrossWorkers: every pattern past the
// first warm-starts from the same baseline guess, so the batched
// analysis is also bit-identical for any worker count.
func TestDynamicIRDropAllDeterministicAcrossWorkers(t *testing.T) {
	sys, _, conv, _ := build(t)
	setWorkers(t, sys, 1)
	serial, err := sys.DynamicIRDropAll(conv, ModelSCAP)
	if err != nil {
		t.Fatal(err)
	}
	sys.Workers = 8
	par, err := sys.DynamicIRDropAll(conv, ModelSCAP)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(serial) || len(serial) != len(conv.Patterns) {
		t.Fatalf("lengths %d / %d / %d", len(par), len(serial), len(conv.Patterns))
	}
	for i := range serial {
		s, p := &serial[i], &par[i]
		if s.Index != p.Index || s.STW != p.STW || s.IterVDD != p.IterVDD || s.IterVSS != p.IterVSS {
			t.Fatalf("pattern %d: %+v vs %+v", i, s, p)
		}
		for b := range s.WorstVDD {
			if s.WorstVDD[b] != p.WorstVDD[b] || s.WorstVSS[b] != p.WorstVSS[b] {
				t.Fatalf("pattern %d block %d: VDD %v/%v VSS %v/%v",
					i, b, s.WorstVDD[b], p.WorstVDD[b], s.WorstVSS[b], p.WorstVSS[b])
			}
		}
	}
}

// TestDynamicIRDropAllMatchesSingle: the batched path must agree with
// the one-pattern API — exactly on the cold-solved first pattern, to
// solver tolerance on the warm-started rest.
func TestDynamicIRDropAllMatchesSingle(t *testing.T) {
	sys, _, conv, _ := build(t)
	all, err := sys.DynamicIRDropAll(conv, ModelSCAP)
	if err != nil {
		t.Fatal(err)
	}
	nb := sys.D.NumBlocks
	check := []int{0, len(conv.Patterns) / 2, len(conv.Patterns) - 1}
	for _, i := range check {
		single, err := sys.DynamicIRDrop(&conv.Patterns[i], 0, ModelSCAP)
		if err != nil {
			t.Fatal(err)
		}
		if all[i].STW != single.STW {
			t.Fatalf("pattern %d: STW %v vs %v", i, all[i].STW, single.STW)
		}
		tol := 1e-4
		if i == 0 {
			tol = 0 // same cold solve, bit-identical
		}
		for b := 0; b <= nb; b++ {
			if d := math.Abs(all[i].WorstVDD[b] - single.WorstVDD[b]); d > tol {
				t.Fatalf("pattern %d block %d: VDD %v vs %v", i, b, all[i].WorstVDD[b], single.WorstVDD[b])
			}
			if d := math.Abs(all[i].WorstVSS[b] - single.WorstVSS[b]); d > tol {
				t.Fatalf("pattern %d block %d: VSS %v vs %v", i, b, all[i].WorstVSS[b], single.WorstVSS[b])
			}
		}
	}
}

// TestDynamicIRDropAllSORWarmStart pins the SOR fallback's warm-start
// contract: later patterns must converge in fewer sweeps than the cold
// first solve on average.
func TestDynamicIRDropAllSORWarmStart(t *testing.T) {
	sys, _, conv, _ := build(t)
	setSolver(t, sys, SolverSOR)
	all, err := sys.DynamicIRDropAll(conv, ModelSCAP)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) <= 2 {
		t.Skip("too few patterns to compare warm vs cold")
	}
	warmSum, n := 0, 0
	for _, s := range all[1:] {
		warmSum += s.IterVDD
		n++
	}
	if mean := float64(warmSum) / float64(n); mean >= float64(all[0].IterVDD) {
		t.Fatalf("warm-started mean %v sweeps not below cold %d", mean, all[0].IterVDD)
	}
}

// TestDynamicIRDropAllSolverEquivalence is the cross-solver acceptance
// contract: the batched analysis must agree field-for-field across all
// three solver tiers — banded factored, sparse nested-dissection LDLᵀ,
// and the SOR fallback — within 1e-9 V once SOR runs at a tolerance
// tight enough to be comparable to an exact solve. (The default 1e-7
// SOR tolerance is what the direct solvers remove; the grids themselves
// are identical because calibration is always exact.)
func TestDynamicIRDropAllSolverEquivalence(t *testing.T) {
	sys, _, conv, _ := build(t)
	fac, err := sys.DynamicIRDropAll(conv, ModelSCAP)
	if err != nil {
		t.Fatal(err)
	}
	setSolver(t, sys, SolverSparse)
	sparse, err := sys.DynamicIRDropAll(conv, ModelSCAP)
	if err != nil {
		t.Fatal(err)
	}
	// The iterative tiers (multigrid, SOR) run at a tolerance tight
	// enough to compare against the exact solves.
	for _, g := range []*pgrid.Grid{sys.GridVDD, sys.GridVSS} {
		oldTol, oldIter := g.P.Tol, g.P.MaxIter
		g.P.Tol, g.P.MaxIter = 1e-13, 400000
		t.Cleanup(func() { g.P.Tol, g.P.MaxIter = oldTol, oldIter })
	}
	sys.Solver = SolverMG
	mg, err := sys.DynamicIRDropAll(conv, ModelSCAP)
	if err != nil {
		t.Fatal(err)
	}
	sys.Solver = SolverSOR
	sor, err := sys.DynamicIRDropAll(conv, ModelSCAP)
	if err != nil {
		t.Fatal(err)
	}

	const tol = 1e-9
	compare := func(name string, other []IRDropSummary) {
		t.Helper()
		if len(fac) != len(other) {
			t.Fatalf("%s: lengths %d vs %d", name, len(fac), len(other))
		}
		for i := range fac {
			f, s := &fac[i], &other[i]
			if f.Index != s.Index || f.Model != s.Model || f.STW != s.STW {
				t.Fatalf("%s pattern %d: metadata differs: %+v vs %+v", name, i, f, s)
			}
			if len(f.WorstVDD) != len(s.WorstVDD) || len(f.WorstVSS) != len(s.WorstVSS) {
				t.Fatalf("%s pattern %d: block slice lengths differ", name, i)
			}
			for b := range f.WorstVDD {
				if d := math.Abs(f.WorstVDD[b] - s.WorstVDD[b]); d > tol {
					t.Fatalf("pattern %d block %d: VDD factored %v vs %s %v (|d|=%v)",
						i, b, f.WorstVDD[b], name, s.WorstVDD[b], d)
				}
				if d := math.Abs(f.WorstVSS[b] - s.WorstVSS[b]); d > tol {
					t.Fatalf("pattern %d block %d: VSS factored %v vs %s %v (|d|=%v)",
						i, b, f.WorstVSS[b], name, s.WorstVSS[b], d)
				}
			}
		}
	}
	compare("sparse", sparse)
	compare("mg", mg)
	compare("sor", sor)
}

// TestSolverAutoResolve pins the auto tier's size thresholds and that
// concrete tiers pass through Resolve untouched.
func TestSolverAutoResolve(t *testing.T) {
	cases := []struct {
		nodes int
		want  Solver
	}{
		{40 * 40, SolverFactored},
		{autoSparseNodes, SolverFactored},
		{autoSparseNodes + 1, SolverSparse},
		{512 * 512, SolverMG},
		{autoMGNodes, SolverSparse},
		{autoMGNodes + 1, SolverMG},
	}
	for _, c := range cases {
		if got := SolverAuto.Resolve(c.nodes); got != c.want {
			t.Errorf("auto at %d nodes resolved to %v, want %v", c.nodes, got, c.want)
		}
	}
	for _, s := range []Solver{SolverFactored, SolverSparse, SolverMG, SolverSOR} {
		if got := s.Resolve(1 << 20); got != s {
			t.Errorf("%v resolved to %v, want unchanged", s, got)
		}
	}
}

// TestSolverParseRoundTrip: every tier's String() parses back to
// itself, and bad names are rejected.
func TestSolverParseRoundTrip(t *testing.T) {
	for _, s := range []Solver{SolverFactored, SolverSparse, SolverMG, SolverSOR, SolverAuto} {
		got, err := ParseSolver(s.String())
		if err != nil || got != s {
			t.Errorf("ParseSolver(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseSolver("multigrid"); err == nil {
		t.Error("ParseSolver accepted an unknown name")
	}
}

// TestMonteCarloIRDrop: determinism across worker counts, envelope
// ordering, and agreement in magnitude with the deterministic Case-2
// analysis it refines.
func TestMonteCarloIRDrop(t *testing.T) {
	sys, stat, _, _ := build(t)
	const trials = 24
	setWorkers(t, sys, 1)
	serial, err := sys.MonteCarloIRDrop(trials, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys.Workers = 8
	par, err := sys.MonteCarloIRDrop(trials, 7)
	if err != nil {
		t.Fatal(err)
	}
	nb := sys.D.NumBlocks
	for b := 0; b <= nb; b++ {
		if serial.MeanVDD[b] != par.MeanVDD[b] || serial.P95VDD[b] != par.P95VDD[b] ||
			serial.MaxVDD[b] != par.MaxVDD[b] {
			t.Fatalf("block %d: MC stats differ across worker counts", b)
		}
		if serial.MeanVDD[b] < 0 || serial.P95VDD[b] < serial.MeanVDD[b]*0.5 ||
			serial.MaxVDD[b] < serial.P95VDD[b] {
			t.Fatalf("block %d: envelope ordering broken: mean %v p95 %v max %v",
				b, serial.MeanVDD[b], serial.P95VDD[b], serial.MaxVDD[b])
		}
	}
	// B5 stays the hot block under sampling, and the MC mean lands in the
	// same magnitude as the deterministic Case-2 worst drop.
	if serial.MeanVDD[soc.B5] <= 0 {
		t.Fatal("no B5 drop")
	}
	det := stat.Case2.WorstVDD[soc.B5]
	if m := serial.MeanVDD[soc.B5]; m < det/3 || m > det*3 {
		t.Fatalf("MC mean B5 drop %v far from deterministic %v", m, det)
	}
	if _, err := sys.MonteCarloIRDrop(0, 1); err == nil {
		t.Fatal("zero trials accepted")
	}
}

// TestGradeDetectionsDeterministicAcrossWorkers: the batched grading
// engine packs 64 patterns per good-machine batch and fans both the
// timing launches and the failure-signature propagations across the
// pool; the merged report must be bit-identical for any worker count.
func TestGradeDetectionsDeterministicAcrossWorkers(t *testing.T) {
	sys, _, conv, _ := build(t)
	setWorkers(t, sys, 1)
	serial, err := sys.GradeDetections(conv, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		sys.Workers = workers
		par, err := sys.GradeDetections(conv, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: report differs from serial\nserial: %+v\npar:    %+v",
				workers, summary(serial), summary(par))
		}
	}
}

func summary(r *QualityReport) string {
	return fmt.Sprintf("%d grades, mean %.9f, worst %.9f, best %.9f, deciles %v",
		len(r.Grades), r.MeanSlack, r.WorstSlack, r.BestSlack, r.Deciles)
}

// TestScreenPatternsDeterministicAcrossWorkers: batches write
// index-addressed slots and the per-slot energies accumulate in fixed
// instance order, so the screen is bit-identical for any worker count.
func TestScreenPatternsDeterministicAcrossWorkers(t *testing.T) {
	sys, _, conv, _ := build(t)
	setWorkers(t, sys, 1)
	serial, err := sys.ScreenPatterns(conv)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		sys.Workers = workers
		par, err := sys.ScreenPatterns(conv)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, par) {
			t.Fatalf("workers=%d: screens differ from serial", workers)
		}
	}
}

// TestScreenTopSelection pins the triage contract: the selection is the
// requested fraction (rounded up), sorted ascending, and every selected
// pattern's block estimate dominates every rejected one's.
func TestScreenTopSelection(t *testing.T) {
	sys, _, conv, _ := build(t)
	screens, err := sys.ScreenPatterns(conv)
	if err != nil {
		t.Fatal(err)
	}
	if len(screens) != len(conv.Patterns) {
		t.Fatalf("screened %d of %d patterns", len(screens), len(conv.Patterns))
	}
	const block = soc.B5
	top := ScreenTop(screens, block, 0.25)
	wantN := (len(screens) + 3) / 4
	if len(top) != wantN {
		t.Fatalf("kept %d, want %d", len(top), wantN)
	}
	sel := make(map[int]bool, len(top))
	minSel := math.Inf(1)
	for i, pi := range top {
		if i > 0 && top[i] <= top[i-1] {
			t.Fatal("selection not sorted ascending")
		}
		sel[pi] = true
		if v := screens[pi].EstBlockCAPVdd[block]; v < minSel {
			minSel = v
		}
	}
	for i := range screens {
		if !sel[i] && screens[i].EstBlockCAPVdd[block] > minSel {
			t.Fatalf("rejected pattern %d estimate %v above kept minimum %v",
				i, screens[i].EstBlockCAPVdd[block], minSel)
		}
	}
	// The exact profiler accepts the selection directly.
	prof, err := sys.ProfilePatternsAt(conv, top)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != len(top) {
		t.Fatalf("profiled %d, want %d", len(prof), len(top))
	}
	for i, pi := range top {
		if prof[i].Index != pi {
			t.Fatalf("profile %d carries index %d, want %d", i, prof[i].Index, pi)
		}
	}
}
