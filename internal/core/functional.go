package core

import (
	"fmt"
	"math/rand"

	"scap/internal/logic"
	"scap/internal/power"
	"scap/internal/sim"
)

// FunctionalPower is the per-block average switching power measured over
// simulated functional operation — the baseline the paper's whole argument
// rests on: at-speed test patterns switch far more logic than the mission
// mode the power grid was designed for.
type FunctionalPower struct {
	Cycles int
	// MeanPowerMW[b] is the mean launch-cycle power (VDD+VSS) per block,
	// with the chip at index NumBlocks.
	MeanPowerMW []float64
	// MeanToggles is the mean per-cycle toggle count chip-wide.
	MeanToggles float64
}

// FunctionalPowerSim runs `cycles` functional clock cycles of domain dom
// from a random initial state (seeded), measuring each cycle's switching
// with the timing simulator. Primary inputs change randomly every few
// cycles, bus enables included — mission-mode behaviour, not test mode.
func (sys *System) FunctionalPowerSim(dom, cycles int, seed int64) (*FunctionalPower, error) {
	if cycles <= 0 {
		return nil, fmt.Errorf("core: cycles must be positive")
	}
	d := sys.D
	r := rand.New(rand.NewSource(seed))
	state := make([]logic.V, len(d.Flops))
	for i := range state {
		state[i] = logic.FromBool(r.Intn(2) == 1)
	}
	pis := make([]logic.V, len(d.PIs))
	for i := range pis {
		pis[i] = logic.FromBool(r.Intn(2) == 1)
	}
	if sys.SC != nil {
		pis[d.Nets[sys.SC.SE].PI] = logic.Zero // functional mode
	}

	meter := power.NewMeter(d)
	tm := sim.NewTiming(sys.Sim, sys.Delays, sys.Tree)
	ls := sim.NewLaunchScratch(sys.Sim)
	toggle := sim.ToggleFn(meter.OnToggle)
	// state/next ping-pong so the V2 derivation never writes into the
	// live V1 buffer; capBuf serves LaunchStateInto.
	next := make([]logic.V, len(d.Flops))
	capBuf := make([]logic.V, len(d.Flops))
	fp := &FunctionalPower{Cycles: cycles, MeanPowerMW: make([]float64, d.NumBlocks+1)}
	toggles := 0
	for cyc := 0; cyc < cycles; cyc++ {
		if cyc%7 == 6 { // occasional input activity
			pis[r.Intn(len(pis))] = logic.FromBool(r.Intn(2) == 1)
			if sys.SC != nil {
				pis[d.Nets[sys.SC.SE].PI] = logic.Zero
			}
		}
		if _, err := sys.LaunchStateInto(ls, next, capBuf, state, pis, dom); err != nil {
			return nil, fmt.Errorf("core: functional cycle %d: %w", cyc, err)
		}
		meter.Reset()
		res, err := tm.LaunchInto(ls, state, next, pis, sys.Period, toggle)
		if err != nil {
			return nil, fmt.Errorf("core: functional cycle %d: %w", cyc, err)
		}
		prof := meter.Report(sys.Period)
		for b := 0; b <= d.NumBlocks; b++ {
			fp.MeanPowerMW[b] += prof.Blocks[b].CAPVdd + prof.Blocks[b].CAPVss
		}
		toggles += res.Toggles
		state, next = next, state
	}
	for b := range fp.MeanPowerMW {
		fp.MeanPowerMW[b] /= float64(cycles)
	}
	fp.MeanToggles = float64(toggles) / float64(cycles)
	return fp, nil
}

// TestVsFunctionalRatio compares a pattern set's mean launch power against
// the functional baseline, per block (the paper: "the switching activity
// during test is far greater and non-uniform than during functional
// operation").
func TestVsFunctionalRatio(profiles []PatternProfile, functional *FunctionalPower, block int) float64 {
	if len(profiles) == 0 || functional.MeanPowerMW[block] <= 0 {
		return 0
	}
	sum := 0.0
	for i := range profiles {
		// Convert the block's SCAP back to cycle-average power for an
		// apples-to-apples mean: CAP = SCAP * STW / T is already tracked
		// chip-level only, so approximate with SCAP*STW/T per pattern.
		sum += profiles[i].BlockSCAPVdd[block]
	}
	meanSCAP := sum / float64(len(profiles))
	return meanSCAP / functional.MeanPowerMW[block]
}
