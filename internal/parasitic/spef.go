package parasitic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"scap/internal/netlist"
)

// WriteSPEF emits the design's net parasitics in a reduced SPEF-style
// format: a header followed by one *D_NET record per annotated net carrying
// the lumped capacitance (fF) and interconnect delay (ns). This is the
// exchange file consumed by the cmd/scap "PLI" pipeline (the paper's
// Figure 5 uses STAR-RCXT SPEF for the same purpose).
func WriteSPEF(w io.Writer, d *netlist.Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "*SPEF \"reduced\"\n*DESIGN \"%s\"\n*C_UNIT FF\n*T_UNIT NS\n", d.Name)
	for i := range d.Nets {
		n := &d.Nets[i]
		if n.WireCap == 0 && n.WireDelay == 0 {
			continue
		}
		fmt.Fprintf(bw, "*D_NET %s %.6g %.6g\n", n.Name, n.WireCap, n.WireDelay)
	}
	fmt.Fprintln(bw, "*END")
	return bw.Flush()
}

// ReadSPEF parses a reduced-SPEF stream written by WriteSPEF and annotates
// the matching nets of d (looked up by name). Unknown net names are an
// error; nets absent from the file keep their current annotation.
func ReadSPEF(r io.Reader, d *netlist.Design) error {
	byName := make(map[string]netlist.NetID, len(d.Nets))
	for i := range d.Nets {
		byName[d.Nets[i].Name] = d.Nets[i].ID
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || !strings.HasPrefix(txt, "*D_NET") {
			continue
		}
		f := strings.Fields(txt)
		if len(f) != 4 {
			return fmt.Errorf("parasitic: SPEF line %d: want 4 fields, got %d", line, len(f))
		}
		id, ok := byName[f[1]]
		if !ok {
			return fmt.Errorf("parasitic: SPEF line %d: unknown net %q", line, f[1])
		}
		c, err := strconv.ParseFloat(f[2], 64)
		if err != nil {
			return fmt.Errorf("parasitic: SPEF line %d: bad cap: %v", line, err)
		}
		dl, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return fmt.Errorf("parasitic: SPEF line %d: bad delay: %v", line, err)
		}
		d.Nets[id].WireCap = c
		d.Nets[id].WireDelay = dl
	}
	return sc.Err()
}
