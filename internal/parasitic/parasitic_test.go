package parasitic

import (
	"bytes"
	"strings"
	"testing"

	"scap/internal/netlist"
	"scap/internal/place"
	"scap/internal/soc"
)

func placedSOC(t *testing.T) (*netlist.Design, *place.Floorplan) {
	t.Helper()
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := place.Place(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d, fp
}

func TestExtractAnnotatesEveryDrivenNet(t *testing.T) {
	d, fp := placedSOC(t)
	sum, err := Extract(d, fp, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if sum.Nets != d.NumNets() {
		t.Fatalf("annotated %d of %d nets", sum.Nets, d.NumNets())
	}
	if sum.TotalWireCap <= 0 || sum.MaxHPWL <= 0 || sum.MeanHPWL <= 0 {
		t.Fatalf("degenerate summary: %+v", sum)
	}
	for i := range d.Nets {
		n := &d.Nets[i]
		if len(n.Loads) > 0 && n.WireCap < 0 {
			t.Fatalf("net %s has negative wire cap", n.Name)
		}
	}
}

func TestExtractScalesWithDistance(t *testing.T) {
	// Two 2-pin nets, one short and one long: the long one must get more
	// cap and delay.
	dd, fp := placedSOC(t)
	if _, err := Extract(dd, fp, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	// Find two instance-driven 2-pin nets with very different spans.
	var short, long *netlist.Net
	for i := range dd.Nets {
		n := &dd.Nets[i]
		if n.Driver == netlist.NoInst || len(n.Loads) != 1 {
			continue
		}
		drv, ld := dd.Inst(n.Driver), dd.Inst(n.Loads[0].Inst)
		dist := place.Dist(drv, ld)
		if dist < 50 && short == nil {
			short = n
		}
		if dist > 300 && long == nil {
			long = n
		}
	}
	if short == nil || long == nil {
		t.Skip("no suitable net pair at this scale")
	}
	if long.WireCap <= short.WireCap || long.WireDelay <= short.WireDelay {
		t.Fatalf("long net (C=%v D=%v) not larger than short (C=%v D=%v)",
			long.WireCap, long.WireDelay, short.WireCap, short.WireDelay)
	}
}

func TestPadXYOnPeriphery(t *testing.T) {
	fp := place.NewFloorplan()
	n := 40
	for i := 0; i < n; i++ {
		x, y := PadXY(i, n, fp)
		onEdge := x == 0 || y == 0 || x == fp.W || y == fp.H
		if !onEdge {
			t.Fatalf("pad %d at (%v,%v) not on periphery", i, x, y)
		}
	}
	// Pads must be spread over all four edges.
	edges := map[string]bool{}
	for i := 0; i < n; i++ {
		x, y := PadXY(i, n, fp)
		switch {
		case y == 0:
			edges["bottom"] = true
		case x == fp.W:
			edges["right"] = true
		case y == fp.H:
			edges["top"] = true
		case x == 0:
			edges["left"] = true
		}
	}
	if len(edges) != 4 {
		t.Fatalf("pads only on edges %v", edges)
	}
	if x, y := PadXY(0, 0, fp); x != 0 || y != 0 {
		t.Fatal("PadXY with n=0 should return origin")
	}
}

func TestParamsValidate(t *testing.T) {
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.CapPerUnit = -1
	if err := p.Validate(); err == nil {
		t.Fatal("negative cap accepted")
	}
	if _, err := Extract(nil, nil, p); err == nil {
		t.Fatal("Extract accepted bad params")
	}
}

func TestSPEFRoundTrip(t *testing.T) {
	d, fp := placedSOC(t)
	if _, err := Extract(d, fp, DefaultParams()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSPEF(&buf, d); err != nil {
		t.Fatal(err)
	}
	want := make([]struct{ c, dl float64 }, len(d.Nets))
	for i := range d.Nets {
		want[i].c, want[i].dl = d.Nets[i].WireCap, d.Nets[i].WireDelay
		d.Nets[i].WireCap, d.Nets[i].WireDelay = 0, 0
	}
	if err := ReadSPEF(&buf, d); err != nil {
		t.Fatal(err)
	}
	for i := range d.Nets {
		if !approx(d.Nets[i].WireCap, want[i].c) || !approx(d.Nets[i].WireDelay, want[i].dl) {
			t.Fatalf("net %d: got (%v,%v) want (%v,%v)", i,
				d.Nets[i].WireCap, d.Nets[i].WireDelay, want[i].c, want[i].dl)
		}
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := b
	if scale < 0 {
		scale = -scale
	}
	return d <= 1e-4*(1+scale)
}

func TestReadSPEFErrors(t *testing.T) {
	d, _ := placedSOC(t)
	if err := ReadSPEF(strings.NewReader("*D_NET nosuchnet 1 2\n"), d); err == nil {
		t.Fatal("unknown net accepted")
	}
	if err := ReadSPEF(strings.NewReader("*D_NET short\n"), d); err == nil {
		t.Fatal("short record accepted")
	}
	name := d.Nets[0].Name
	if err := ReadSPEF(strings.NewReader("*D_NET "+name+" xx 2\n"), d); err == nil {
		t.Fatal("bad cap accepted")
	}
	if err := ReadSPEF(strings.NewReader("*D_NET "+name+" 1 yy\n"), d); err == nil {
		t.Fatal("bad delay accepted")
	}
	// Comments and blank lines are fine.
	if err := ReadSPEF(strings.NewReader("\n// nothing\n*END\n"), d); err != nil {
		t.Fatal(err)
	}
}
