// Package parasitic estimates interconnect parasitics from placement and
// annotates the netlist with per-net wire capacitance and delay. It stands
// in for the paper's Synopsys STAR-RCXT extraction step: downstream
// consumers (the SCAP power model, the timing simulator, the IR-drop
// analysis) only need per-net lumped C and a driver-to-load delay, which
// are estimated here from half-perimeter wirelength (HPWL).
package parasitic

import (
	"fmt"
	"math"

	"scap/internal/netlist"
	"scap/internal/place"
)

// Params calibrates the per-unit-length wire model. The defaults are tuned
// so that, on the default SOC, sensitized path delays land near half the
// 20 ns test period — the paper's observed average switching time frame.
type Params struct {
	CapPerUnit   float64 // fF of wire capacitance per die unit of HPWL
	DelayPerUnit float64 // ns of interconnect delay per die unit of HPWL
	PadExtra     float64 // extra HPWL charged to primary-input nets (pad escape)
}

// DefaultParams returns the calibrated 180 nm-magnitude wire model.
func DefaultParams() Params {
	return Params{CapPerUnit: 0.18, DelayPerUnit: 0.0006, PadExtra: 30}
}

// Validate reports parameter problems.
func (p Params) Validate() error {
	if p.CapPerUnit < 0 || p.DelayPerUnit < 0 || p.PadExtra < 0 {
		return fmt.Errorf("parasitic: negative parameter: %+v", p)
	}
	return nil
}

// Summary reports aggregate extraction results.
type Summary struct {
	Nets         int
	TotalWireCap float64 // fF
	MaxHPWL      float64 // die units
	MeanHPWL     float64 // die units
}

// PadXY returns the die-boundary location of primary-input pad i of n,
// distributed uniformly around the periphery starting at the lower-left
// corner and walking counter-clockwise.
func PadXY(i, n int, fp *place.Floorplan) (float64, float64) {
	if n <= 0 {
		return 0, 0
	}
	per := 2 * (fp.W + fp.H)
	pos := per * float64(i) / float64(n)
	switch {
	case pos < fp.W:
		return pos, 0
	case pos < fp.W+fp.H:
		return fp.W, pos - fp.W
	case pos < 2*fp.W+fp.H:
		return 2*fp.W + fp.H - pos, fp.H
	default:
		return 0, per - pos
	}
}

// Extract computes the HPWL of every net from the placed design and fills
// in Net.WireCap and Net.WireDelay. Primary-input nets use their pad
// location as the driver point.
func Extract(d *netlist.Design, fp *place.Floorplan, p Params) (Summary, error) {
	if err := p.Validate(); err != nil {
		return Summary{}, err
	}
	var sum Summary
	totalHPWL := 0.0
	for i := range d.Nets {
		n := &d.Nets[i]
		var x0, y0, x1, y1 float64
		switch {
		case n.Driver != netlist.NoInst:
			drv := d.Inst(n.Driver)
			x0, y0, x1, y1 = drv.X, drv.Y, drv.X, drv.Y
		case n.PI >= 0:
			px, py := PadXY(n.PI, len(d.PIs), fp)
			x0, y0, x1, y1 = px, py, px, py
		default:
			continue
		}
		for _, ld := range n.Loads {
			li := d.Inst(ld.Inst)
			x0, x1 = math.Min(x0, li.X), math.Max(x1, li.X)
			y0, y1 = math.Min(y0, li.Y), math.Max(y1, li.Y)
		}
		hpwl := (x1 - x0) + (y1 - y0)
		if n.PI >= 0 {
			hpwl += p.PadExtra
		}
		n.WireCap = p.CapPerUnit * hpwl
		n.WireDelay = p.DelayPerUnit * hpwl
		sum.Nets++
		sum.TotalWireCap += n.WireCap
		totalHPWL += hpwl
		if hpwl > sum.MaxHPWL {
			sum.MaxHPWL = hpwl
		}
	}
	if sum.Nets > 0 {
		sum.MeanHPWL = totalHPWL / float64(sum.Nets)
	}
	return sum, nil
}
