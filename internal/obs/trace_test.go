package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func countPhase(doc *chromeTrace, ph string) int {
	n := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph == ph {
			n++
		}
	}
	return n
}

func TestTraceDisabledIsNoop(t *testing.T) {
	resetForTest(t)
	Enable() // metrics on, tracing off
	TraceStart().End("cat", "never")
	TraceInstant("cat", "never")
	TraceTask(0, "never", time.Now(), time.Millisecond)
	if evs, dropped := traceSnapshot(); len(evs) != 0 || dropped != 0 {
		t.Fatalf("disabled tracing recorded %d events (%d dropped)", len(evs), dropped)
	}
	if TraceOn() {
		t.Fatal("TraceOn while disabled")
	}
}

func TestTraceRecordsSpansTasksAndInstants(t *testing.T) {
	resetForTest(t)
	timeNow = fakeClock()
	EnableTrace(1024, 1)

	s := StartSpan("flow")
	inner := StartSpan("profile")
	TraceStart().End("pgrid", "banded-factor")
	TraceInstant("atpg", "epoch-merge")
	TraceTask(3, "profile", timeNow(), 7*time.Millisecond)
	inner.End()
	s.End()

	doc := BuildChromeTrace()
	if got := countPhase(doc, "X"); got != 4 { // 2 spans + 1 burst + 1 task
		t.Errorf("complete events = %d, want 4", got)
	}
	if got := countPhase(doc, "i"); got != 1 {
		t.Errorf("instant events = %d, want 1", got)
	}
	byName := map[string]chromeEvent{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			byName[ev.Name] = ev
		}
	}
	if ev := byName["flow"]; ev.Pid != LaneStages || ev.Cat != "stage" {
		t.Errorf("stage span on wrong lane: %+v", ev)
	}
	if ev := byName["profile"]; ev.Pid != LaneWorkers || ev.Tid != 3 || ev.Dur != 7000 {
		t.Errorf("worker task wrong: %+v", ev)
	}
	if ev := byName["epoch-merge"]; ev.Ph != "i" || ev.S != "t" {
		t.Errorf("instant not thread-scoped: %+v", ev)
	}
	// Nesting: the banded-factor burst must fall inside the outer span.
	outer, burst := byName["flow"], byName["banded-factor"]
	if burst.Ts < outer.Ts || burst.Ts+burst.Dur > outer.Ts+outer.Dur {
		t.Errorf("burst [%g,%g] not nested in outer span [%g,%g]",
			burst.Ts, burst.Ts+burst.Dur, outer.Ts, outer.Ts+outer.Dur)
	}
}

// TestTraceConcurrent hammers every trace entry point from many
// goroutines; under -race this is the data-race proof, and the event
// count proves nothing is lost below capacity.
func TestTraceConcurrent(t *testing.T) {
	resetForTest(t)
	EnableTrace(1<<16, 1)
	const goroutines, perG = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				TraceTask(w, "task", timeNow(), time.Microsecond)
				TraceStart().End("cat", "burst")
			}
		}(w)
	}
	wg.Wait()
	evs, dropped := traceSnapshot()
	if dropped != 0 {
		t.Fatalf("dropped %d events below capacity", dropped)
	}
	if len(evs) != goroutines*perG*2 {
		t.Fatalf("recorded %d events, want %d", len(evs), goroutines*perG*2)
	}
}

// TestTraceRingWraps: a tiny buffer keeps only the newest events per
// shard and counts the overwritten ones as dropped.
func TestTraceRingWraps(t *testing.T) {
	resetForTest(t)
	EnableTrace(1, 1) // clamps to 64 slots per shard
	const total = 1000
	for i := 0; i < total; i++ {
		TraceTask(0, "task", timeNow(), 0) // tid 0: single shard
	}
	evs, dropped := traceSnapshot()
	if len(evs) != 64 {
		t.Fatalf("kept %d events, want the 64-slot shard", len(evs))
	}
	if dropped != total-64 {
		t.Fatalf("dropped = %d, want %d", dropped, total-64)
	}
	doc := BuildChromeTrace()
	if got := doc.OtherData["dropped"].(int64); got != total-64 {
		t.Fatalf("otherData dropped = %v, want %d", got, total-64)
	}
}

func TestWriteTraceValidChromeJSON(t *testing.T) {
	resetForTest(t)
	timeNow = fakeClock()
	EnableTrace(1024, 1)
	s := StartSpan("flow")
	TraceTask(1, "profile", timeNow(), time.Millisecond)
	s.End()

	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteTrace(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	if doc.DisplayUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayUnit)
	}
	names := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		for _, k := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Fatalf("event missing %q: %v", k, ev)
			}
		}
		if ev["ph"] == "M" {
			names[ev["args"].(map[string]any)["name"].(string)] = true
		}
	}
	for _, want := range []string{"pipeline stages", "worker pool", "worker 1"} {
		if !names[want] {
			t.Errorf("metadata name %q missing (have %v)", want, names)
		}
	}
}

func TestTraceTaskSample(t *testing.T) {
	resetForTest(t)
	EnableTrace(1024, 7)
	if got := TraceTaskSample(); got != 7 {
		t.Errorf("sample = %d, want 7", got)
	}
	EnableTrace(1024, 0)
	if got := TraceTaskSample(); got != 1 {
		t.Errorf("sample floor = %d, want 1", got)
	}
}
