package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"scap/internal/textplot"
)

// SchemaVersion identifies the run-report JSON layout. Bump it on any
// structural change; the golden-file test pins the current shape.
// v2 added the free-form `info` block (solver tier, mesh geometry,
// sparse-factor fill — see SetRunInfo). v3 added per-unit attribution:
// top-K hotspot tables (`hotspots`), periodic metric snapshots
// (`snapshots`) and p50/p95/p99 quantiles on histograms.
const SchemaVersion = "scap/run-report/v3"

// runInfo is the process-wide run-information block: small key/value
// facts about how the run was configured or what the build produced
// (selected solver tier, mesh edge and node count, sparse factor
// nnz/fill ratio). Unlike counters these are set-once descriptive
// values, surfaced both in the JSON report and the exit-time summary.
var runInfo = struct {
	mu sync.Mutex
	kv map[string]any
}{kv: map[string]any{}}

// SetRunInfo records one descriptive run fact under key, overwriting
// any previous value. Values must be JSON-marshalable (strings and
// numbers in practice). A no-op while instrumentation is disabled, like
// all recording.
func SetRunInfo(key string, v any) {
	if !enabled.Load() {
		return
	}
	runInfo.mu.Lock()
	runInfo.kv[key] = v
	runInfo.mu.Unlock()
}

// Provenance records where and how a report was produced, so numbers
// stay comparable across machines and commits.
type Provenance struct {
	GitSHA     string `json:"git_sha"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	Hostname   string `json:"hostname"`
}

// CollectProvenance gathers the current build/host provenance. The git
// SHA comes from the binary's embedded VCS stamp when present, and
// otherwise from walking up to the repo's .git/HEAD (the `go run` and
// `go test` paths, which build without VCS stamping).
func CollectProvenance() Provenance {
	host, _ := os.Hostname()
	return Provenance{
		GitSHA:     gitSHA(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Hostname:   host,
	}
}

// gitSHA resolves the current commit without shelling out to git.
func gitSHA() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	dir, err := os.Getwd()
	if err != nil {
		return ""
	}
	for {
		head, err := os.ReadFile(filepath.Join(dir, ".git", "HEAD"))
		if err == nil {
			return resolveHead(filepath.Join(dir, ".git"), strings.TrimSpace(string(head)))
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}

// resolveHead dereferences a symbolic HEAD ("ref: refs/heads/x") via
// the loose ref file or packed-refs; a detached HEAD is already a SHA.
func resolveHead(gitDir, head string) string {
	ref, ok := strings.CutPrefix(head, "ref: ")
	if !ok {
		return head
	}
	if b, err := os.ReadFile(filepath.Join(gitDir, ref)); err == nil {
		return strings.TrimSpace(string(b))
	}
	if b, err := os.ReadFile(filepath.Join(gitDir, "packed-refs")); err == nil {
		for _, line := range strings.Split(string(b), "\n") {
			if sha, name, ok := strings.Cut(line, " "); ok && name == ref {
				return sha
			}
		}
	}
	return ""
}

// SpanReport is one serialized stage span. Times are milliseconds
// relative to the first span of the run.
type SpanReport struct {
	Name      string        `json:"name"`
	StartMs   float64       `json:"start_ms"`
	WallMs    float64       `json:"wall_ms"`
	Goroutine int64         `json:"goroutine"`
	Children  []*SpanReport `json:"children,omitempty"`
}

// HistBucket is one non-empty histogram bucket: Lo is the inclusive
// power-of-two lower bound of the bucket's range.
type HistBucket struct {
	Lo    float64 `json:"lo"`
	Count int64   `json:"count"`
}

// HistogramReport serializes one bounded histogram. The quantiles are
// bucket-interpolated estimates (see Histogram.Quantile), resolved to
// within a factor of two.
type HistogramReport struct {
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	P50     float64      `json:"p50,omitempty"`
	P95     float64      `json:"p95,omitempty"`
	P99     float64      `json:"p99,omitempty"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// TopKReport serializes one hotspot table: the ranking cost's name, the
// per-entry field names (aligning with each entry's Fields slice) and
// the entries best-first.
type TopKReport struct {
	CostKey string     `json:"cost_key"`
	Fields  []string   `json:"fields,omitempty"`
	Entries []TopEntry `json:"entries"`
}

// Report is the versioned machine-readable run report the -report flag
// emits. Map keys marshal sorted, so the JSON is stable for a given
// run.
type Report struct {
	Schema     string                     `json:"schema"`
	Tool       string                     `json:"tool"`
	Provenance Provenance                 `json:"provenance"`
	Config     any                        `json:"config,omitempty"`
	Info       map[string]any             `json:"info,omitempty"`
	Stages     []*SpanReport              `json:"stages,omitempty"`
	Counters   map[string]int64           `json:"counters,omitempty"`
	Gauges     map[string]int64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramReport `json:"histograms,omitempty"`
	PerWorker  map[string][]int64         `json:"per_worker,omitempty"`
	Hotspots   map[string]TopKReport      `json:"hotspots,omitempty"`
	Snapshots  []Snapshot                 `json:"snapshots,omitempty"`
	Derived    map[string]float64         `json:"derived,omitempty"`
}

// BuildReport snapshots the registry and span tree into a Report.
// config (optional) is embedded verbatim — the CLIs pass their resolved
// core.Config so a report is self-describing.
func BuildReport(tool string, config any) *Report {
	r := &Report{
		Schema:     SchemaVersion,
		Tool:       tool,
		Provenance: CollectProvenance(),
		Config:     config,
	}

	runInfo.mu.Lock()
	if len(runInfo.kv) > 0 {
		r.Info = make(map[string]any, len(runInfo.kv))
		for k, v := range runInfo.kv {
			r.Info[k] = v
		}
	}
	runInfo.mu.Unlock()

	reg.mu.Lock()
	counters := make(map[string]int64, len(reg.counters))
	for name, c := range reg.counters {
		counters[name] = c.Value()
	}
	if len(counters) > 0 {
		r.Counters = counters
	}
	if len(reg.gauges) > 0 {
		r.Gauges = make(map[string]int64, len(reg.gauges))
		for name, g := range reg.gauges {
			r.Gauges[name] = g.Value()
		}
	}
	if len(reg.hists) > 0 {
		r.Histograms = make(map[string]HistogramReport, len(reg.hists))
		for name, h := range reg.hists {
			r.Histograms[name] = histReport(h)
		}
	}
	for name, p := range reg.perWorker {
		if snap := p.Snapshot(); len(snap) > 0 {
			if r.PerWorker == nil {
				r.PerWorker = map[string][]int64{}
			}
			r.PerWorker[name] = snap
		}
	}
	for name, t := range reg.topks {
		if entries := t.Snapshot(); len(entries) > 0 {
			if r.Hotspots == nil {
				r.Hotspots = map[string]TopKReport{}
			}
			r.Hotspots[name] = TopKReport{
				CostKey: t.CostKey(),
				Fields:  t.FieldNames(),
				Entries: entries,
			}
		}
	}
	for name, fn := range reg.derived {
		if v, ok := fn(counters); ok {
			if r.Derived == nil {
				r.Derived = map[string]float64{}
			}
			r.Derived[name] = v
		}
	}
	reg.mu.Unlock()

	if snaps := Snapshots(); len(snaps) > 0 {
		r.Snapshots = snaps
	}

	trace.mu.Lock()
	for _, s := range trace.roots {
		r.Stages = append(r.Stages, spanReport(s, trace.epoch))
	}
	trace.mu.Unlock()
	return r
}

func histReport(h *Histogram) HistogramReport {
	out := HistogramReport{Count: h.Count(), Sum: h.Sum()}
	if out.Count > 0 {
		out.P50 = h.Quantile(0.50)
		out.P95 = h.Quantile(0.95)
		out.P99 = h.Quantile(0.99)
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			out.Buckets = append(out.Buckets, HistBucket{Lo: bucketLo(i), Count: n})
		}
	}
	return out
}

func spanReport(s *Span, epoch time.Time) *SpanReport {
	end := s.end
	if end.IsZero() {
		end = timeNow() // still-open span: report progress so far
	}
	sr := &SpanReport{
		Name:      s.name,
		StartMs:   float64(s.start.Sub(epoch)) / float64(time.Millisecond),
		WallMs:    float64(end.Sub(s.start)) / float64(time.Millisecond),
		Goroutine: s.goroutine,
	}
	for _, c := range s.children {
		sr.Children = append(sr.Children, spanReport(c, epoch))
	}
	return sr
}

// WriteFile marshals the report as indented JSON to path, checking
// every write error including Close.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: report: %w", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return fmt.Errorf("obs: report encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: report close: %w", err)
	}
	return nil
}

// SummaryTable renders the report's stage tree as the human-readable
// table the CLIs print at exit, with key counters appended.
func (r *Report) SummaryTable() string {
	var rows []textplot.StageRow
	var walk func(s *SpanReport, depth int)
	walk = func(s *SpanReport, depth int) {
		rows = append(rows, textplot.StageRow{
			Label: strings.Repeat("  ", depth) + s.Name,
			Ms:    s.WallMs,
		})
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	for _, s := range r.Stages {
		walk(s, 0)
	}
	var b strings.Builder
	b.WriteString(textplot.StageTable(rows, 32, "stage summary"))
	if len(r.Info) > 0 {
		keys := make([]string, 0, len(r.Info))
		for k := range r.Info {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s = %v\n", k, r.Info[k])
		}
	}
	if len(r.Derived) > 0 {
		keys := make([]string, 0, len(r.Derived))
		for k := range r.Derived {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s = %.4g\n", k, r.Derived[k])
		}
	}
	if s := r.quantileSummary(); s != "" {
		b.WriteString("\n")
		b.WriteString(s)
	}
	if s := r.hotspotSummary(); s != "" {
		b.WriteString("\n")
		b.WriteString(s)
	}
	return b.String()
}

// quantileSummary renders one line per non-empty histogram with its
// count, mean and bucket-interpolated p50/p95/p99.
func (r *Report) quantileSummary() string {
	keys := make([]string, 0, len(r.Histograms))
	for k, h := range r.Histograms {
		if h.Count > 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("histogram quantiles\n")
	for _, k := range keys {
		h := r.Histograms[k]
		fmt.Fprintf(&b, "  %-40s n=%-8d mean=%-10.4g p50=%-10.4g p95=%-10.4g p99=%.4g\n",
			k, h.Count, h.Sum/float64(h.Count), h.P50, h.P95, h.P99)
	}
	return b.String()
}

// summaryHotspotRows caps how many hotspot rows the exit summary prints
// per table; the JSON report keeps the full top-K.
const summaryHotspotRows = 8

// hotspotSummary renders the top rows of each hotspot table.
func (r *Report) hotspotSummary() string {
	keys := make([]string, 0, len(r.Hotspots))
	for k := range r.Hotspots {
		keys = append(keys, k)
	}
	if len(keys) == 0 {
		return ""
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		t := r.Hotspots[k]
		fmt.Fprintf(&b, "hotspots: %s (top %d by %s)\n", k, len(t.Entries), t.CostKey)
		fmt.Fprintf(&b, "  %10s %12s %-14s", "id", t.CostKey, "label")
		for _, f := range t.Fields {
			fmt.Fprintf(&b, " %12s", f)
		}
		b.WriteString("\n")
		for i, e := range t.Entries {
			if i >= summaryHotspotRows {
				fmt.Fprintf(&b, "  … %d more in the JSON report\n", len(t.Entries)-i)
				break
			}
			fmt.Fprintf(&b, "  %10d %12d %-14s", e.ID, e.Cost, e.Label)
			for _, v := range e.Fields {
				fmt.Fprintf(&b, " %12.4g", v)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
