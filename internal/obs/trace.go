package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// The trace-event log is the timeline companion to the aggregate
// metrics: a bounded, sharded ring buffer of begin/end ("complete") and
// instant events that the CLIs' -trace flag exports as Chrome
// trace-event JSON, loadable in Perfetto or chrome://tracing. Stage
// spans emit one complete event per End on the goroutine that ran them;
// the worker pool emits one (sampled) complete event per task on the
// worker's own lane, so a run renders as nested pipeline stages above
// per-worker task lanes with the solver/sim bursts visible inside them.
//
// Recording follows the same discipline as the counters: every entry
// point is gated on one atomic load, so the log costs nothing while
// tracing is off; while it is on, an event is one uncontended
// shard-mutex lock plus a slot write. The buffer is fixed-size — when
// it wraps, the oldest events in the shard are overwritten and counted
// as dropped (surfaced in the exported file's otherData).

// Trace lanes map to Chrome trace "pid"s so stage structure and worker
// activity render as two separate process groups.
const (
	// LaneStages holds pipeline stage spans and subsystem bursts,
	// one "tid" per goroutine.
	LaneStages = 1
	// LaneWorkers holds the worker pool's per-task events, one "tid"
	// per worker id.
	LaneWorkers = 2
)

// traceShards spreads recording across independently locked rings so
// concurrent workers rarely contend on one mutex.
const traceShards = 16

// DefaultTraceEvents is the default total event capacity behind the
// CLIs' -trace flag: enough for every stage and subsystem burst of a
// seed-scale flow run plus sampled task lanes, at ~64 B/event a few MB.
const DefaultTraceEvents = 1 << 16

type traceEvent struct {
	tsNs  int64 // start, relative to the trace epoch
	durNs int64 // 0 for instants
	tid   int64 // goroutine id (LaneStages) or worker id (LaneWorkers)
	lane  uint8
	ph    byte // 'X' complete, 'i' instant
	cat   string
	name  string
}

type traceShard struct {
	mu   sync.Mutex
	buf  []traceEvent
	next uint64 // events ever claimed; ring position is next % len(buf)
}

// tracing gates the trace entry points exactly like `enabled` gates the
// metric entry points.
var tracing atomic.Bool

var tracer struct {
	mu     sync.Mutex
	epoch  time.Time
	sample int64
	shards [traceShards]traceShard
}

// EnableTrace switches trace-event recording on with the given total
// event capacity (<= 0 selects DefaultTraceEvents) and task sampling
// stride (record every sample-th worker task event; <= 1 records all).
// It also enables the metric layer — a timeline without its counters
// would be half blind. Re-enabling resets the buffer and epoch.
func EnableTrace(capacity, sample int) {
	if capacity <= 0 {
		capacity = DefaultTraceEvents
	}
	per := capacity / traceShards
	if per < 64 {
		per = 64
	}
	if sample < 1 {
		sample = 1
	}
	tracer.mu.Lock()
	tracer.epoch = timeNow()
	tracer.sample = int64(sample)
	for i := range tracer.shards {
		s := &tracer.shards[i]
		s.mu.Lock()
		s.buf = make([]traceEvent, per)
		s.next = 0
		s.mu.Unlock()
	}
	tracer.mu.Unlock()
	Enable()
	tracing.Store(true)
}

// DisableTrace turns trace recording back off (tests).
func DisableTrace() { tracing.Store(false) }

// TraceOn reports whether trace events are being recorded.
func TraceOn() bool { return tracing.Load() }

// TraceTaskSample returns the configured task sampling stride (1 =
// every task).
func TraceTaskSample() int {
	tracer.mu.Lock()
	defer tracer.mu.Unlock()
	if tracer.sample < 1 {
		return 1
	}
	return int(tracer.sample)
}

// traceAdd claims the next ring slot of the event's shard and writes it.
func traceAdd(ev traceEvent) {
	shard := &tracer.shards[uint64(ev.tid)%traceShards]
	shard.mu.Lock()
	if len(shard.buf) > 0 {
		shard.buf[shard.next%uint64(len(shard.buf))] = ev
		shard.next++
	}
	shard.mu.Unlock()
}

// traceEpoch returns the enable-time epoch trace timestamps are
// relative to.
func traceEpoch() time.Time {
	tracer.mu.Lock()
	defer tracer.mu.Unlock()
	return tracer.epoch
}

// TraceTimer is an in-flight complete event: TraceStart captures the
// start time (or nothing, while tracing is off) and End records it.
// The zero value's End is a no-op, so call sites stay one line:
//
//	defer obs.TraceStart().End("pgrid", "banded-factor")
type TraceTimer struct {
	start time.Time
	on    bool
}

// TraceStart begins a complete event when tracing is enabled.
func TraceStart() TraceTimer {
	if !tracing.Load() {
		return TraceTimer{}
	}
	return TraceTimer{start: timeNow(), on: true}
}

// End records the complete event on the caller's goroutine lane.
func (t TraceTimer) End(cat, name string) {
	if !t.on || !tracing.Load() {
		return
	}
	end := timeNow()
	traceAdd(traceEvent{
		tsNs:  t.start.Sub(traceEpoch()).Nanoseconds(),
		durNs: end.Sub(t.start).Nanoseconds(),
		tid:   goid(),
		lane:  LaneStages,
		ph:    'X',
		cat:   cat,
		name:  name,
	})
}

// TraceInstant records a zero-duration marker on the caller's goroutine
// lane.
func TraceInstant(cat, name string) {
	if !tracing.Load() {
		return
	}
	traceAdd(traceEvent{
		tsNs: timeNow().Sub(traceEpoch()).Nanoseconds(),
		tid:  goid(),
		lane: LaneStages,
		ph:   'i',
		cat:  cat,
		name: name,
	})
}

// TraceTask records one worker-pool task as a complete event on the
// worker's lane. The caller owns sampling (see TraceTaskSample) so the
// stride applies per worker deterministically.
func TraceTask(worker int, name string, start time.Time, dur time.Duration) {
	if !tracing.Load() {
		return
	}
	traceAdd(traceEvent{
		tsNs:  start.Sub(traceEpoch()).Nanoseconds(),
		durNs: dur.Nanoseconds(),
		tid:   int64(worker),
		lane:  LaneWorkers,
		ph:    'X',
		cat:   "task",
		name:  name,
	})
}

// traceSpan records a finished stage span as a complete event.
func traceSpan(s *Span) {
	traceAdd(traceEvent{
		tsNs:  s.start.Sub(traceEpoch()).Nanoseconds(),
		durNs: s.end.Sub(s.start).Nanoseconds(),
		tid:   s.goroutine,
		lane:  LaneStages,
		ph:    'X',
		cat:   "stage",
		name:  s.name,
	})
}

// traceSnapshot drains a copy of the live events, oldest first, plus
// the total dropped by ring wrap-around.
func traceSnapshot() (evs []traceEvent, dropped int64) {
	for i := range tracer.shards {
		s := &tracer.shards[i]
		s.mu.Lock()
		n := uint64(len(s.buf))
		if n > 0 {
			kept := s.next
			if kept > n {
				dropped += int64(kept - n)
				kept = n
			}
			// Oldest first: the ring's logical order starts at next-kept.
			for j := uint64(0); j < kept; j++ {
				evs = append(evs, s.buf[(s.next-kept+j)%n])
			}
		}
		s.mu.Unlock()
	}
	sort.SliceStable(evs, func(a, b int) bool { return evs[a].tsNs < evs[b].tsNs })
	return evs, dropped
}

// chromeEvent is one serialized Chrome trace event. Timestamps and
// durations are microseconds per the trace-event format spec.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent  `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// BuildChromeTrace converts the recorded events into the Chrome
// trace-event JSON document (Perfetto- and chrome://tracing-loadable).
func BuildChromeTrace() *chromeTrace {
	evs, dropped := traceSnapshot()
	doc := &chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(evs)+8),
		DisplayTimeUnit: "ms",
	}
	// Name the two lanes so the viewer labels the process groups.
	meta := func(pid int, tid int64, key, val string) {
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: key, Ph: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": val},
		})
	}
	meta(LaneStages, 0, "process_name", "pipeline stages")
	meta(LaneWorkers, 0, "process_name", "worker pool")
	workers := map[int64]bool{}
	for _, ev := range evs {
		ce := chromeEvent{
			Name: ev.name,
			Cat:  ev.cat,
			Ph:   string(ev.ph),
			Ts:   float64(ev.tsNs) / 1e3,
			Pid:  int(ev.lane),
			Tid:  ev.tid,
		}
		if ev.ph == 'X' {
			ce.Dur = float64(ev.durNs) / 1e3
		}
		if ev.ph == 'i' {
			ce.S = "t" // thread-scoped instant
		}
		if ev.lane == LaneWorkers && !workers[ev.tid] {
			workers[ev.tid] = true
			meta(LaneWorkers, ev.tid, "thread_name", fmt.Sprintf("worker %d", ev.tid))
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	doc.OtherData = map[string]any{
		"events":  len(evs),
		"dropped": dropped,
		"sample":  TraceTaskSample(),
	}
	return doc
}

// WriteTrace exports the recorded timeline as Chrome trace-event JSON
// to path, checking every write error including Close.
func WriteTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: trace: %w", err)
	}
	enc := json.NewEncoder(f)
	if err := enc.Encode(BuildChromeTrace()); err != nil {
		f.Close()
		return fmt.Errorf("obs: trace encode: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("obs: trace close: %w", err)
	}
	return nil
}
