package obs

import (
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"
)

// timeNow is swapped by the report golden test for deterministic spans.
var timeNow = time.Now

// Span is one timed stage of a run. Spans form a tree: StartSpan nests
// the new span under the currently open one, so sequential pipeline
// stages produce the stage hierarchy the run report serializes.
//
// The intended discipline is well-nested start/end from one goroutine
// at a time (the CLI main goroutine driving the pipeline); worker-level
// attribution uses PerWorker counters instead of spans. All methods are
// nil-safe so call sites stay one line even while instrumentation is
// off: defer obs.StartSpan("stage").End().
type Span struct {
	name      string
	goroutine int64
	start     time.Time
	end       time.Time
	parent    *Span
	children  []*Span
}

// trace is the process-wide span tree.
var trace struct {
	mu    sync.Mutex
	epoch time.Time
	roots []*Span
	cur   *Span
}

// StartSpan opens a span named name as a child of the currently open
// span (or as a root) and returns it. Returns nil — a no-op span —
// while instrumentation is disabled.
func StartSpan(name string) *Span {
	if !enabled.Load() {
		return nil
	}
	now := timeNow()
	s := &Span{name: name, start: now, goroutine: goid()}
	trace.mu.Lock()
	if trace.epoch.IsZero() {
		trace.epoch = now
	}
	if trace.cur != nil {
		s.parent = trace.cur
		trace.cur.children = append(trace.cur.children, s)
	} else {
		trace.roots = append(trace.roots, s)
	}
	trace.cur = s
	trace.mu.Unlock()
	return s
}

// End closes the span and pops the open-span stack back to its parent.
// Ending a span with still-open children closes the whole subtree's
// position (the children keep their recorded times); ending twice is
// harmless.
func (s *Span) End() {
	if s == nil {
		return
	}
	now := timeNow()
	first := false
	trace.mu.Lock()
	if s.end.IsZero() {
		s.end = now
		first = true
	}
	for c := trace.cur; c != nil; c = c.parent {
		if c == s {
			trace.cur = s.parent
			break
		}
	}
	trace.mu.Unlock()
	// Mirror the finished span into the trace-event timeline (once).
	if first && tracing.Load() {
		traceSpan(s)
	}
}

// CurrentStage returns the name of the innermost open span, or "" when
// no stage is open (or instrumentation is off). The worker pool labels
// its per-task trace events with it, once per For call.
func CurrentStage() string {
	if !enabled.Load() {
		return ""
	}
	trace.mu.Lock()
	defer trace.mu.Unlock()
	if trace.cur == nil {
		return ""
	}
	return trace.cur.name
}

// WallMs returns the span's wall time in milliseconds (0 while open).
func (s *Span) WallMs() float64 {
	if s == nil || s.end.IsZero() {
		return 0
	}
	return float64(s.end.Sub(s.start)) / float64(time.Millisecond)
}

// goid returns the current goroutine's id by parsing the first line of
// its stack header ("goroutine N [running]:"). Only called on span
// start, never on a hot path.
func goid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	s := strings.TrimPrefix(string(buf[:n]), "goroutine ")
	if i := strings.IndexByte(s, ' '); i > 0 {
		if id, err := strconv.ParseInt(s[:i], 10, 64); err == nil {
			return id
		}
	}
	return 0
}
