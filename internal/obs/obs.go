// Package obs is the repo-wide observability layer: atomic counters,
// bounded histograms and hierarchical wall-time spans that are compiled
// into every hot subsystem (pgrid solves, the timing simulator, the
// worker pool, the SCAP meter, ATPG) but cost almost nothing while
// disabled — every instrumentation entry point is gated on one atomic
// load, and hot loops accumulate locally and flush once per unit of
// work (per solve, per launch, per pool run), never per iteration.
//
// The layer is stdlib-only and surfaces three ways:
//
//   - a versioned JSON run report (report.go) written by the CLIs'
//     -report flag: stage tree, counters, histograms, provenance;
//   - an expvar + /debug/pprof HTTP listener (http.go) behind the
//     CLIs' -metrics-addr flag, for watching long runs live;
//   - a human-readable stage summary table rendered through
//     internal/textplot at CLI exit.
//
// Naming convention: metrics are "<package>.<subsystem>.<metric>" with
// snake_case metric names and the unit suffixed when not a plain count
// (_ns for nanoseconds, _v for volts). See DESIGN.md §10.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// enabled gates every instrumentation entry point. Off by default so
// library users and benchmarks pay only the atomic load; the CLIs
// enable it when -report or -metrics-addr is given.
var enabled atomic.Bool

// Enable turns instrumentation on. Counters, histograms and spans
// created before Enable work normally afterwards — creation is always
// allowed, only recording is gated.
func Enable() { enabled.Store(true) }

// Disable turns instrumentation back off (tests).
func Disable() { enabled.Store(false) }

// On reports whether instrumentation is recording.
func On() bool { return enabled.Load() }

// registry is the process-wide metric namespace. Metrics register at
// package init of the instrumented packages; lookups never happen on
// hot paths (each package holds its *Counter in a package-level var).
var reg = struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	perWorker map[string]*PerWorker
	topks     map[string]*TopK
	derived   map[string]func(counters map[string]int64) (float64, bool)
}{
	counters:  map[string]*Counter{},
	gauges:    map[string]*Gauge{},
	hists:     map[string]*Histogram{},
	perWorker: map[string]*PerWorker{},
	topks:     map[string]*TopK{},
	derived:   map[string]func(map[string]int64) (float64, bool){},
}

// Reset zeroes every registered metric in place — counters, gauges,
// histograms, per-worker vectors, hotspot tables — and clears the run
// info, span tree, snapshot series and trace buffer, while keeping all
// registrations (the instrumented packages' package-level vars stay
// valid). It exists for multi-run processes (property tests comparing
// worker counts, the future scapd serving loop) that need a fresh
// attribution slate per run.
func Reset() {
	reg.mu.Lock()
	for _, c := range reg.counters {
		c.v.Store(0)
	}
	for _, g := range reg.gauges {
		g.v.Store(0)
	}
	for _, h := range reg.hists {
		h.count.Store(0)
		h.sumBits.Store(0)
		for i := range h.buckets {
			h.buckets[i].Store(0)
		}
	}
	for _, p := range reg.perWorker {
		p.n.Store(0)
		for i := range p.v {
			p.v[i].Store(0)
		}
	}
	topks := make([]*TopK, 0, len(reg.topks))
	for _, t := range reg.topks {
		topks = append(topks, t)
	}
	reg.mu.Unlock()
	for _, t := range topks {
		t.reset()
	}

	runInfo.mu.Lock()
	runInfo.kv = map[string]any{}
	runInfo.mu.Unlock()

	trace.mu.Lock()
	trace.epoch = time.Time{}
	trace.roots = nil
	trace.cur = nil
	trace.mu.Unlock()

	series.mu.Lock()
	series.epoch = time.Time{}
	series.entries = nil
	series.ticks = 0
	series.stride = 0
	series.mu.Unlock()

	for i := range tracer.shards {
		s := &tracer.shards[i]
		s.mu.Lock()
		s.next = 0
		s.mu.Unlock()
	}
}

// Counter is a monotonically increasing atomic count.
type Counter struct {
	name string
	v    atomic.Int64
}

// NewCounter registers (or returns the existing) counter under name.
func NewCounter(name string) *Counter {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if c, ok := reg.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	reg.counters[name] = c
	return c
}

// Add increments the counter when instrumentation is enabled.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Name returns the registered name.
func (c *Counter) Name() string { return c.name }

// Gauge tracks a high-water mark: Max keeps the largest value observed.
type Gauge struct {
	name string
	v    atomic.Int64
}

// NewGauge registers (or returns the existing) gauge under name.
func NewGauge(name string) *Gauge {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if g, ok := reg.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	reg.gauges[name] = g
	return g
}

// Max raises the gauge to n if n exceeds the current value.
func (g *Gauge) Max(n int64) {
	if !enabled.Load() {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the high-water mark.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets bounds every histogram: 64 power-of-two buckets covering
// [2^-32, 2^31); values outside clamp to the end buckets, so memory is
// fixed no matter what is observed.
const histBuckets = 64

// Histogram is a bounded exponential (base-2) histogram over
// non-negative float64 samples: bucket i counts values in
// [2^(i-32), 2^(i-31)). It additionally tracks the exact count and sum
// so means survive the bucketing.
type Histogram struct {
	name    string
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
	buckets [histBuckets]atomic.Int64
}

// NewHistogram registers (or returns the existing) histogram under name.
func NewHistogram(name string) *Histogram {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if h, ok := reg.hists[name]; ok {
		return h
	}
	h := &Histogram{name: name}
	reg.hists[name] = h
	return h
}

// bucketOf maps a sample to its bucket index. Non-positive and NaN
// samples land in bucket 0.
func bucketOf(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	_, exp := math.Frexp(v) // v = frac · 2^exp with frac ∈ [0.5, 1)
	i := exp + 31           // 2^-32 ≤ v < 2^-31 → exp = -31 → bucket 0
	if i < 0 {
		i = 0
	}
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// bucketLo returns bucket i's inclusive lower bound.
func bucketLo(i int) float64 { return math.Ldexp(1, i-32) }

// Observe records one sample when instrumentation is enabled.
func (h *Histogram) Observe(v float64) {
	if !enabled.Load() {
		return
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the exact sum of all samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0, 1]) from the bucket
// counts: it walks the cumulative distribution to the bucket holding
// rank q·count and interpolates linearly inside it. Resolution is
// therefore the bucket width (a factor of two); with no samples it
// returns 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum)+float64(n) >= rank {
			lo := bucketLo(i)
			frac := (rank - float64(cum)) / float64(n)
			return lo + frac*lo // bucket spans [lo, 2·lo)
		}
		cum += n
	}
	return bucketLo(histBuckets-1) * 2
}

// MaxWorkers bounds PerWorker attribution; worker ids beyond it fold
// into the last slot.
const MaxWorkers = 256

// PerWorker is a fixed-size vector of counters indexed by worker id —
// the pool's per-goroutine attribution (busy time, tasks) without
// unbounded label cardinality.
type PerWorker struct {
	name string
	n    atomic.Int64 // highest worker id seen + 1
	v    [MaxWorkers]atomic.Int64
}

// NewPerWorker registers (or returns the existing) per-worker vector.
func NewPerWorker(name string) *PerWorker {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if p, ok := reg.perWorker[name]; ok {
		return p
	}
	p := &PerWorker{name: name}
	reg.perWorker[name] = p
	return p
}

// Add accumulates n into worker w's slot when instrumentation is
// enabled.
func (p *PerWorker) Add(w int, n int64) {
	if !enabled.Load() || w < 0 {
		return
	}
	if w >= MaxWorkers {
		w = MaxWorkers - 1
	}
	p.v[w].Add(n)
	for {
		cur := p.n.Load()
		if int64(w+1) <= cur || p.n.CompareAndSwap(cur, int64(w+1)) {
			return
		}
	}
}

// Snapshot returns one value per worker seen so far.
func (p *PerWorker) Snapshot() []int64 {
	n := int(p.n.Load())
	out := make([]int64, n)
	for i := range out {
		out[i] = p.v[i].Load()
	}
	return out
}

// RegisterDerived registers a metric computed from the counter snapshot
// at report time (e.g. pool utilization = busy/capacity, factor cache
// hits = calls - builds). fn returns ok=false to omit the metric (for
// instance when its inputs are still zero).
func RegisterDerived(name string, fn func(counters map[string]int64) (float64, bool)) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	reg.derived[name] = fn
}
