package obs

import (
	"sync"
	"time"
)

// Time-series snapshots give a run's metrics a time axis: the CLIs'
// -snapshot-interval flag samples the counter/gauge registry on a
// ticker, and the samples land in the run report's `snapshots` array
// (and on -metrics-addr, which rebuilds the report per request). Memory
// stays bounded by decimation: when the series fills, every other
// sample is dropped and the sampling stride doubles, so a run of any
// length keeps uniform whole-run coverage in at most maxSnapshots
// entries.

// maxSnapshots bounds the in-memory series; at the default counter
// population a snapshot is well under 1 KiB.
const maxSnapshots = 360

// Snapshot is one timed sample of the metric registry. AtMs is relative
// to the first snapshot of the run.
type Snapshot struct {
	AtMs     float64          `json:"at_ms"`
	Counters map[string]int64 `json:"counters,omitempty"`
	Gauges   map[string]int64 `json:"gauges,omitempty"`
}

var series struct {
	mu      sync.Mutex
	epoch   time.Time
	stride  int // record every stride-th tick (doubles on decimation)
	ticks   int
	entries []Snapshot
	stop    chan struct{}
	done    chan struct{}
}

// TakeSnapshot samples the registry now and appends it to the series
// (a no-op while instrumentation is disabled). Zero-valued metrics are
// omitted; decimation keeps the series bounded.
func TakeSnapshot() {
	if !enabled.Load() {
		return
	}
	now := timeNow()
	snap := Snapshot{}
	reg.mu.Lock()
	for name, c := range reg.counters {
		if v := c.Value(); v != 0 {
			if snap.Counters == nil {
				snap.Counters = map[string]int64{}
			}
			snap.Counters[name] = v
		}
	}
	for name, g := range reg.gauges {
		if v := g.Value(); v != 0 {
			if snap.Gauges == nil {
				snap.Gauges = map[string]int64{}
			}
			snap.Gauges[name] = v
		}
	}
	reg.mu.Unlock()

	series.mu.Lock()
	if series.epoch.IsZero() {
		series.epoch = now
	}
	snap.AtMs = float64(now.Sub(series.epoch)) / float64(time.Millisecond)
	series.entries = append(series.entries, snap)
	if len(series.entries) >= maxSnapshots {
		kept := series.entries[:0]
		for i := 0; i < len(series.entries); i += 2 {
			kept = append(kept, series.entries[i])
		}
		series.entries = kept
		if series.stride == 0 {
			series.stride = 1
		}
		series.stride *= 2
	}
	series.mu.Unlock()
}

// StartSnapshots begins sampling the registry every interval on a
// background goroutine (replacing any previous sampler). Intervals
// <= 0 are ignored.
func StartSnapshots(interval time.Duration) {
	if interval <= 0 {
		return
	}
	StopSnapshots()
	stop := make(chan struct{})
	done := make(chan struct{})
	series.mu.Lock()
	series.stop, series.done = stop, done
	if series.stride == 0 {
		series.stride = 1
	}
	series.mu.Unlock()
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				series.mu.Lock()
				series.ticks++
				take := series.ticks%series.stride == 0
				series.mu.Unlock()
				if take {
					TakeSnapshot()
				}
			}
		}
	}()
}

// StopSnapshots stops the background sampler and waits for it to exit.
// Safe to call when none is running.
func StopSnapshots() {
	series.mu.Lock()
	stop, done := series.stop, series.done
	series.stop, series.done = nil, nil
	series.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Snapshots returns a copy of the recorded series, oldest first.
func Snapshots() []Snapshot {
	series.mu.Lock()
	defer series.mu.Unlock()
	out := make([]Snapshot, len(series.entries))
	copy(out, series.entries)
	return out
}
