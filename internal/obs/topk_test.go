package obs

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// TestTopKOrderIndependence is the attribution determinism property: for
// one record set, the snapshot must be identical no matter how the
// records are permuted or spread across goroutines — this is what makes
// the hotspot tables bit-identical for any -workers value.
func TestTopKOrderIndependence(t *testing.T) {
	const n, k = 200, 16
	type rec struct {
		id, cost int64
		label    string
		field    float64
	}
	rng := rand.New(rand.NewSource(7))
	recs := make([]rec, n)
	for i := range recs {
		// Deliberately many cost collisions to exercise the tie-breaks.
		recs[i] = rec{id: int64(i), cost: int64(rng.Intn(20)), label: []string{"a", "b"}[rng.Intn(2)], field: float64(rng.Intn(5))}
	}
	run := func(order []int, workers int) []TopEntry {
		resetForTest(t)
		Enable()
		tk := NewTopK("t.order", k, "cost", "f")
		if workers <= 1 {
			for _, i := range order {
				r := recs[i]
				tk.Record(r.id, r.cost, r.label, r.field)
			}
		} else {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for j := w; j < len(order); j += workers {
						r := recs[order[j]]
						tk.Record(r.id, r.cost, r.label, r.field)
					}
				}(w)
			}
			wg.Wait()
		}
		return tk.Snapshot()
	}

	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	want := run(base, 1)
	if len(want) != k {
		t.Fatalf("snapshot has %d entries, want %d", len(want), k)
	}
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(n)
		if got := run(perm, 1); !reflect.DeepEqual(got, want) {
			t.Fatalf("permuted insertion changed the table:\n got %+v\nwant %+v", got, want)
		}
	}
	for _, workers := range []int{2, 8} {
		if got := run(base, workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("%d-worker insertion changed the table:\n got %+v\nwant %+v", workers, got, want)
		}
	}
}

func TestTopKBoundedAndSorted(t *testing.T) {
	resetForTest(t)
	Enable()
	tk := NewTopK("t.bounded", 4, "cost")
	for i := 0; i < 100; i++ {
		tk.Record(int64(i), int64(i), "")
	}
	snap := tk.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("table grew to %d entries, want 4", len(snap))
	}
	for i, e := range snap {
		if want := int64(99 - i); e.Cost != want {
			t.Errorf("entry %d cost = %d, want %d (best-first)", i, e.Cost, want)
		}
	}
}

func TestTopKTieBreaks(t *testing.T) {
	resetForTest(t)
	Enable()
	tk := NewTopK("t.ties", 2, "cost")
	tk.Record(9, 10, "z")
	tk.Record(2, 10, "a")
	tk.Record(5, 10, "a")
	snap := tk.Snapshot()
	// Equal cost: lower id wins admission and sorts first.
	if snap[0].ID != 2 || snap[1].ID != 5 {
		t.Fatalf("tie-break by id failed: %+v", snap)
	}
}

func TestTopKDisabledIsNoop(t *testing.T) {
	resetForTest(t)
	tk := NewTopK("t.disabled", 4, "cost")
	tk.Record(1, 100, "x")
	if snap := tk.Snapshot(); len(snap) != 0 {
		t.Fatalf("disabled TopK recorded: %+v", snap)
	}
}

func TestTopKRegistryDedup(t *testing.T) {
	resetForTest(t)
	if NewTopK("t.dup.topk", 4, "cost") != NewTopK("t.dup.topk", 4, "cost") {
		t.Error("NewTopK returned distinct tables for one name")
	}
}

func TestQuantiles(t *testing.T) {
	resetForTest(t)
	Enable()
	h := NewHistogram("t.quant")
	// 100 samples in [1,2): every quantile lands in that bucket.
	for i := 0; i < 100; i++ {
		h.Observe(1.0)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		if v < 1 || v >= 2 {
			t.Errorf("q%g = %g, want within [1,2)", q, v)
		}
	}
	// Two well-separated modes: the median stays in the low bucket, the
	// p99 must land in the high one.
	h2 := NewHistogram("t.quant2")
	for i := 0; i < 98; i++ {
		h2.Observe(1.0)
	}
	h2.Observe(1024)
	h2.Observe(1024)
	if v := h2.Quantile(0.5); v >= 2 {
		t.Errorf("p50 = %g, want < 2", v)
	}
	if v := h2.Quantile(0.999); v < 1024 || v >= 2048 {
		t.Errorf("p99.9 = %g, want within [1024,2048)", v)
	}
	if v := h2.Quantile(-1); v != h2.Quantile(0) {
		t.Errorf("quantile clamp low: %g vs %g", v, h2.Quantile(0))
	}
}

func TestSnapshotSeries(t *testing.T) {
	resetForTest(t)
	Enable()
	timeNow = fakeClock()
	c := NewCounter("t.series.counter")
	c.Add(5)
	TakeSnapshot()
	c.Add(5)
	TakeSnapshot()
	snaps := Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("series has %d snapshots, want 2", len(snaps))
	}
	if snaps[0].AtMs != 0 || snaps[1].AtMs != 10 {
		t.Errorf("timestamps = %g, %g; want 0, 10", snaps[0].AtMs, snaps[1].AtMs)
	}
	if snaps[0].Counters["t.series.counter"] != 5 || snaps[1].Counters["t.series.counter"] != 10 {
		t.Errorf("counter trajectory wrong: %+v", snaps)
	}
}

// TestSnapshotDecimation: the series stays bounded and keeps whole-run
// coverage by dropping every other sample when it fills.
func TestSnapshotDecimation(t *testing.T) {
	resetForTest(t)
	Enable()
	timeNow = fakeClock()
	for i := 0; i < maxSnapshots+10; i++ {
		TakeSnapshot()
	}
	snaps := Snapshots()
	if len(snaps) > maxSnapshots {
		t.Fatalf("series grew to %d, bound is %d", len(snaps), maxSnapshots)
	}
	if snaps[0].AtMs != 0 {
		t.Errorf("decimation lost the run start: first at %g ms", snaps[0].AtMs)
	}
	for i := 1; i < len(snaps); i++ {
		if snaps[i].AtMs <= snaps[i-1].AtMs {
			t.Fatalf("series not monotonic at %d: %g after %g", i, snaps[i].AtMs, snaps[i-1].AtMs)
		}
	}
}
