package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// TopK is a bounded hotspot table: the K most expensive units (faults,
// patterns) of a run, each with a deterministic integer ranking cost, a
// short label and a fixed set of named float fields. Tables are the
// per-unit attribution layer on top of the aggregate counters — they
// answer "which faults ate the backtrack budget" instead of "how many
// backtracks happened".
//
// The contract mirrors the rest of the repo's concurrency discipline:
// Record may be called concurrently from any worker, and the final
// table depends only on the *set* of records, never on arrival order or
// worker count — entries are kept under a total order (cost desc, id
// asc, label asc, fields desc), so for a deterministic record set the
// snapshot is bit-identical for any -workers value. Memory is bounded
// at K entries; once the table is full a record strictly below the
// current cost floor is rejected on one atomic load without taking the
// mutex.
type TopK struct {
	name    string
	costKey string
	k       int
	fields  []string

	// floorSet/floor form the lock-free reject path: floor is only
	// meaningful once the table is full.
	full  atomic.Bool
	floor atomic.Int64

	mu      sync.Mutex
	entries []TopEntry
}

// TopEntry is one hotspot-table row.
type TopEntry struct {
	ID     int64     `json:"id"`
	Cost   int64     `json:"cost"`
	Label  string    `json:"label,omitempty"`
	Fields []float64 `json:"fields,omitempty"`
}

// NewTopK registers (or returns the existing) hotspot table under name.
// costKey names the ranking cost in reports; fields fixes the names of
// the per-entry float fields, in Record argument order.
func NewTopK(name string, k int, costKey string, fields ...string) *TopK {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if t, ok := reg.topks[name]; ok {
		return t
	}
	t := &TopK{name: name, costKey: costKey, k: k, fields: fields}
	reg.topks[name] = t
	return t
}

// better is the total order entries are kept under: higher cost wins,
// then lower id, then lower label, then lexicographically larger
// fields. Two entries that compare equal everywhere are identical in
// content, so either may be kept — the snapshot is the same.
func better(a, b *TopEntry) bool {
	if a.Cost != b.Cost {
		return a.Cost > b.Cost
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	if a.Label != b.Label {
		return a.Label < b.Label
	}
	for i := range a.Fields {
		if i >= len(b.Fields) {
			return true
		}
		if a.Fields[i] != b.Fields[i] {
			return a.Fields[i] > b.Fields[i]
		}
	}
	return false
}

// Record offers one unit's cost record to the table when
// instrumentation is enabled. fields must match the names given at
// registration (missing trailing values read as 0 in the order).
func (t *TopK) Record(id, cost int64, label string, fields ...float64) {
	if !enabled.Load() || t.k <= 0 {
		return
	}
	// Fast reject: a full table never admits a cost strictly below its
	// floor (ties can still win on id/label, so they take the mutex).
	if t.full.Load() && cost < t.floor.Load() {
		return
	}
	e := TopEntry{ID: id, Cost: cost, Label: label, Fields: append([]float64(nil), fields...)}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.entries) < t.k {
		t.entries = append(t.entries, e)
		if len(t.entries) == t.k {
			t.refloorLocked()
		}
		return
	}
	worst := 0
	for i := 1; i < len(t.entries); i++ {
		if better(&t.entries[worst], &t.entries[i]) {
			worst = i
		}
	}
	if better(&e, &t.entries[worst]) {
		t.entries[worst] = e
		t.refloorLocked()
	}
}

// refloorLocked recomputes the atomic admission floor; call with mu
// held and the table full.
func (t *TopK) refloorLocked() {
	floor := t.entries[0].Cost
	for i := 1; i < len(t.entries); i++ {
		if t.entries[i].Cost < floor {
			floor = t.entries[i].Cost
		}
	}
	t.floor.Store(floor)
	t.full.Store(true)
}

// Snapshot returns the table's entries sorted best-first under the
// keeping order. The result is deterministic for a deterministic record
// set, independent of insertion order and concurrency.
func (t *TopK) Snapshot() []TopEntry {
	t.mu.Lock()
	out := make([]TopEntry, len(t.entries))
	copy(out, t.entries)
	t.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return better(&out[a], &out[b]) })
	return out
}

// Name returns the registered name.
func (t *TopK) Name() string { return t.name }

// CostKey returns the name of the ranking cost.
func (t *TopK) CostKey() string { return t.costKey }

// FieldNames returns the registered field names.
func (t *TopK) FieldNames() []string { return t.fields }

// resetLocked drops all entries (obs.Reset); call with reg.mu NOT held
// on t itself.
func (t *TopK) reset() {
	t.mu.Lock()
	t.entries = t.entries[:0]
	t.full.Store(false)
	t.floor.Store(0)
	t.mu.Unlock()
}
