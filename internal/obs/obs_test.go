package obs

import (
	"sync"
	"testing"
	"time"
)

// resetForTest clears the process-wide registry and span tree so each
// test starts from a blank namespace. Tests run in this package, so the
// internals are reachable directly.
func resetForTest(t *testing.T) {
	t.Helper()
	StopSnapshots()
	reg.mu.Lock()
	reg.counters = map[string]*Counter{}
	reg.gauges = map[string]*Gauge{}
	reg.hists = map[string]*Histogram{}
	reg.perWorker = map[string]*PerWorker{}
	reg.topks = map[string]*TopK{}
	reg.derived = map[string]func(map[string]int64) (float64, bool){}
	reg.mu.Unlock()
	runInfo.mu.Lock()
	runInfo.kv = map[string]any{}
	runInfo.mu.Unlock()
	trace.mu.Lock()
	trace.epoch = time.Time{}
	trace.roots = nil
	trace.cur = nil
	trace.mu.Unlock()
	series.mu.Lock()
	series.epoch = time.Time{}
	series.entries = nil
	series.ticks = 0
	series.stride = 0
	series.mu.Unlock()
	for i := range tracer.shards {
		s := &tracer.shards[i]
		s.mu.Lock()
		s.buf = nil
		s.next = 0
		s.mu.Unlock()
	}
	DisableTrace()
	Disable()
	t.Cleanup(func() {
		StopSnapshots()
		DisableTrace()
		Disable()
		timeNow = time.Now
	})
}

func TestDisabledRecordingIsNoop(t *testing.T) {
	resetForTest(t)
	c := NewCounter("t.disabled.counter")
	g := NewGauge("t.disabled.gauge")
	h := NewHistogram("t.disabled.hist")
	p := NewPerWorker("t.disabled.pw")
	c.Add(5)
	g.Max(5)
	h.Observe(5)
	p.Add(0, 5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || len(p.Snapshot()) != 0 {
		t.Fatalf("disabled instrumentation recorded: c=%d g=%d h=%d pw=%v",
			c.Value(), g.Value(), h.Count(), p.Snapshot())
	}
	if s := StartSpan("t.disabled.span"); s != nil {
		t.Fatalf("StartSpan returned non-nil while disabled")
	}
	var s *Span
	s.End() // nil-safe
	if s.WallMs() != 0 {
		t.Fatalf("nil span WallMs = %v, want 0", s.WallMs())
	}
}

// TestConcurrentRecording hammers every metric kind from many
// goroutines; run under -race this is the data-race proof, and the
// totals prove no increments are lost.
func TestConcurrentRecording(t *testing.T) {
	resetForTest(t)
	Enable()
	c := NewCounter("t.conc.counter")
	g := NewGauge("t.conc.gauge")
	h := NewHistogram("t.conc.hist")
	p := NewPerWorker("t.conc.pw")

	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Add(1)
				g.Max(int64(w*perG + i))
				h.Observe(1.0)
				p.Add(w, 1)
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != goroutines*perG-1 {
		t.Errorf("gauge high-water = %d, want %d", got, goroutines*perG-1)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := h.Sum(); got != goroutines*perG {
		t.Errorf("histogram sum = %v, want %v", got, goroutines*perG)
	}
	snap := p.Snapshot()
	if len(snap) != goroutines {
		t.Fatalf("per-worker snapshot has %d slots, want %d", len(snap), goroutines)
	}
	for w, v := range snap {
		if v != perG {
			t.Errorf("worker %d = %d, want %d", w, v, perG)
		}
	}
}

func TestHistogramBuckets(t *testing.T) {
	resetForTest(t)
	Enable()
	h := NewHistogram("t.buckets.hist")
	// One sample per interesting region: subnormal-small clamps to the
	// first bucket, huge clamps to the last, each power of two starts a
	// new bucket at its own lower bound.
	for _, v := range []float64{0, -1, 1e-300, 0.5, 0.75, 1, 1.5, 2, 1e300} {
		h.Observe(v)
	}
	rep := histReport(h)
	if rep.Count != 9 {
		t.Fatalf("count = %d, want 9", rep.Count)
	}
	want := map[float64]int64{
		bucketLo(0):  3, // 0, -1, 1e-300
		0.5:          2, // 0.5, 0.75
		1:            2, // 1, 1.5
		2:            1,
		bucketLo(63): 1, // 1e300 clamps to the last bucket
	}
	if len(rep.Buckets) != len(want) {
		t.Fatalf("got %d non-empty buckets %+v, want %d", len(rep.Buckets), rep.Buckets, len(want))
	}
	for _, b := range rep.Buckets {
		if want[b.Lo] != b.Count {
			t.Errorf("bucket lo=%g count=%d, want %d", b.Lo, b.Count, want[b.Lo])
		}
	}
}

func TestRegistryDedup(t *testing.T) {
	resetForTest(t)
	if NewCounter("t.dup") != NewCounter("t.dup") {
		t.Error("NewCounter returned distinct counters for one name")
	}
	if NewGauge("t.dup") != NewGauge("t.dup") {
		t.Error("NewGauge returned distinct gauges for one name")
	}
	if NewHistogram("t.dup") != NewHistogram("t.dup") {
		t.Error("NewHistogram returned distinct histograms for one name")
	}
	if NewPerWorker("t.dup") != NewPerWorker("t.dup") {
		t.Error("NewPerWorker returned distinct vectors for one name")
	}
}

func TestPerWorkerBounds(t *testing.T) {
	resetForTest(t)
	Enable()
	p := NewPerWorker("t.bounds.pw")
	p.Add(-1, 100) // ignored
	p.Add(MaxWorkers+7, 3)
	p.Add(MaxWorkers-1, 4)
	snap := p.Snapshot()
	if len(snap) != MaxWorkers {
		t.Fatalf("snapshot length = %d, want %d", len(snap), MaxWorkers)
	}
	if snap[MaxWorkers-1] != 7 {
		t.Errorf("overflow slot = %d, want 7 (folded 3 + direct 4)", snap[MaxWorkers-1])
	}
	if snap[0] != 0 {
		t.Errorf("slot 0 = %d, want 0 (negative ids ignored)", snap[0])
	}
}

// fakeClock returns a timeNow replacement that advances 10 ms per call,
// starting at a fixed epoch.
func fakeClock() func() time.Time {
	t0 := time.Unix(1000, 0)
	n := 0
	return func() time.Time {
		t := t0.Add(time.Duration(n) * 10 * time.Millisecond)
		n++
		return t
	}
}

// TestSpanNesting pins the tree invariants: children nest under the
// open span, End pops back to the parent, and sibling order follows
// call order.
func TestSpanNesting(t *testing.T) {
	resetForTest(t)
	Enable()
	timeNow = fakeClock()

	flow := StartSpan("flow")  // t=0
	atpg := StartSpan("atpg")  // t=10
	atpg.End()                 // t=20
	prof := StartSpan("prof")  // t=30
	inner := StartSpan("fill") // t=40
	inner.End()                // t=50
	prof.End()                 // t=60
	flow.End()                 // t=70

	trace.mu.Lock()
	defer trace.mu.Unlock()
	if len(trace.roots) != 1 || trace.roots[0] != flow {
		t.Fatalf("roots = %v, want [flow]", trace.roots)
	}
	if trace.cur != nil {
		t.Fatalf("open-span stack not empty after all Ends")
	}
	if len(flow.children) != 2 || flow.children[0] != atpg || flow.children[1] != prof {
		t.Fatalf("flow children out of order: %v", flow.children)
	}
	if len(prof.children) != 1 || prof.children[0] != inner {
		t.Fatalf("prof children = %v, want [fill]", prof.children)
	}
	if atpg.parent != flow || prof.parent != flow || inner.parent != prof {
		t.Fatal("parent links wrong")
	}
	if got := flow.WallMs(); got != 70 {
		t.Errorf("flow wall = %v ms, want 70", got)
	}
	if got := atpg.WallMs(); got != 10 {
		t.Errorf("atpg wall = %v ms, want 10", got)
	}
	if got := inner.WallMs(); got != 10 {
		t.Errorf("fill wall = %v ms, want 10", got)
	}
}

// TestSpanEndWithOpenChildren: ending a parent with a still-open child
// pops the stack past the child, and a double End is harmless.
func TestSpanEndWithOpenChildren(t *testing.T) {
	resetForTest(t)
	Enable()
	timeNow = fakeClock()

	outer := StartSpan("outer")
	StartSpan("leaked") // never ended by its stage
	outer.End()
	if trace.cur != nil {
		t.Fatalf("ending outer did not pop past its open child")
	}
	wall := outer.WallMs()
	outer.End() // double End must not move the recorded end time
	if outer.WallMs() != wall {
		t.Errorf("double End changed wall time: %v -> %v", wall, outer.WallMs())
	}
	next := StartSpan("next")
	trace.mu.Lock()
	isRoot := len(trace.roots) == 2 && trace.roots[1] == next
	trace.mu.Unlock()
	if !isRoot {
		t.Fatal("span after a finished tree did not start a new root")
	}
	next.End()
}

func TestDerivedMetrics(t *testing.T) {
	resetForTest(t)
	Enable()
	calls := NewCounter("t.derived.calls")
	builds := NewCounter("t.derived.builds")
	RegisterDerived("t.derived.hits", func(c map[string]int64) (float64, bool) {
		if c["t.derived.calls"] == 0 {
			return 0, false
		}
		return float64(c["t.derived.calls"] - c["t.derived.builds"]), true
	})

	r := BuildReport("test", nil)
	if _, ok := r.Derived["t.derived.hits"]; ok {
		t.Error("derived metric emitted while its inputs are zero")
	}
	calls.Add(10)
	builds.Add(1)
	r = BuildReport("test", nil)
	if got := r.Derived["t.derived.hits"]; got != 9 {
		t.Errorf("derived hits = %v, want 9", got)
	}
}
