package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

var publishOnce sync.Once

// ServeMetrics starts an HTTP listener on addr (e.g. ":6060") serving
//
//   - /debug/vars — expvar, including a "scap" variable holding the
//     live run-report snapshot (counters, gauges, histograms, stages);
//   - /debug/pprof/ — the standard pprof index, profiles and trace.
//
// It returns once the listener is bound (so a bad address fails fast)
// and serves in a background goroutine for the life of the process —
// the intended use is watching long flow/irdrop runs live.
func ServeMetrics(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: metrics listener: %w", err)
	}
	publishOnce.Do(func() {
		expvar.Publish("scap", expvar.Func(func() any {
			return BuildReport("live", nil)
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go http.Serve(ln, mux) //nolint:errcheck — serves until process exit
	return nil
}
