package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildGoldenReport assembles a fully deterministic report: fake clock
// for the spans, fixed provenance, normalized goroutine ids.
func buildGoldenReport(t *testing.T) *Report {
	t.Helper()
	resetForTest(t)
	Enable()
	timeNow = fakeClock()

	NewCounter("pgrid.factor.calls").Add(7)
	NewCounter("pgrid.factor.builds").Add(1)
	NewGauge("sim.queue_high_water").Max(42)
	h := NewHistogram("pgrid.sor.final_residual_v")
	for _, v := range []float64{0.5, 1, 1.5, 3} {
		h.Observe(v)
	}
	pw := NewPerWorker("parallel.worker_tasks")
	pw.Add(0, 2)
	pw.Add(1, 3)
	RegisterDerived("pgrid.factor.cache_hits", func(c map[string]int64) (float64, bool) {
		return float64(c["pgrid.factor.calls"] - c["pgrid.factor.builds"]), c["pgrid.factor.calls"] > 0
	})
	// The multigrid tier's per-solve family (see pgrid/multigrid.go).
	NewCounter("pgrid.mg.solves").Add(4)
	NewCounter("pgrid.mg.vcycles").Add(10)
	NewGauge("pgrid.mg.levels").Max(3)
	RegisterDerived("pgrid.mg.cycles_per_solve", func(c map[string]int64) (float64, bool) {
		solves := c["pgrid.mg.solves"]
		if solves <= 0 {
			return 0, false
		}
		return float64(c["pgrid.mg.vcycles"]) / float64(solves), true
	})
	SetRunInfo("solver", "mg")
	SetRunInfo("grid_mesh_n", 40)
	SetRunInfo("mg_levels", 3)
	SetRunInfo("sparse_fill_ratio", 2.5)
	tk := NewTopK("atpg.fault_hotspots", 3, "waves", "backtracks", "pattern")
	tk.Record(11, 400, "detected", 2, 5)
	tk.Record(3, 1500, "aborted", 40, -1)
	tk.Record(7, 900, "detected", 12, 0)
	tk.Record(20, 100, "detected", 0, 1) // below the floor once full: rejected
	TakeSnapshot()                       // t advances via the fake clock
	TakeSnapshot()

	flow := StartSpan("flow") // t=0
	atpg := StartSpan("atpg") // t=10
	atpg.End()                // t=20
	flow.End()                // t=30

	r := BuildReport("flow", map[string]any{"scale": 8, "workers": 2})

	// Pin the volatile fields so the JSON is byte-stable everywhere.
	r.Provenance = Provenance{
		GitSHA:     "0000000000000000000000000000000000000000",
		GoVersion:  "go-golden",
		GOMAXPROCS: 8,
		NumCPU:     8,
		Hostname:   "golden-host",
	}
	var norm func(s *SpanReport)
	norm = func(s *SpanReport) {
		s.Goroutine = 1
		for _, c := range s.Children {
			norm(c)
		}
	}
	for _, s := range r.Stages {
		norm(s)
	}
	return r
}

// TestReportGolden pins the run-report JSON schema byte-for-byte. A
// structural change must bump SchemaVersion and regenerate the golden
// with `go test ./internal/obs -run Golden -update`.
func TestReportGolden(t *testing.T) {
	r := buildGoldenReport(t)
	if r.Schema != "scap/run-report/v3" {
		t.Fatalf("schema = %q; bump the golden and this pin together", r.Schema)
	}
	got, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "report_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (regenerate with -update)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report JSON drifted from golden (regenerate with -update if intended)\n got:\n%s\nwant:\n%s", got, want)
	}
}

func TestReportWriteFile(t *testing.T) {
	r := buildGoldenReport(t)
	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("written report is not valid JSON: %v", err)
	}
	if back.Schema != SchemaVersion || back.Tool != "flow" {
		t.Errorf("round-trip lost header: schema=%q tool=%q", back.Schema, back.Tool)
	}
	if back.Counters["pgrid.factor.calls"] != 7 {
		t.Errorf("round-trip lost counters: %v", back.Counters)
	}
	if err := r.WriteFile(filepath.Join(t.TempDir(), "no", "such", "dir.json")); err == nil {
		t.Error("WriteFile to a missing directory did not error")
	}
}

func TestSummaryTable(t *testing.T) {
	r := buildGoldenReport(t)
	s := r.SummaryTable()
	for _, want := range []string{
		"stage summary", "flow", "  atpg",
		"pgrid.factor.cache_hits = 6", "solver = mg", "grid_mesh_n = 40",
		"pgrid.mg.cycles_per_solve = 2.5", "mg_levels = 3",
		"histogram quantiles", "pgrid.sor.final_residual_v",
		"hotspots: atpg.fault_hotspots (top 3 by waves)", "aborted",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("summary table missing %q:\n%s", want, s)
		}
	}
}

func TestCollectProvenance(t *testing.T) {
	p := CollectProvenance()
	if p.GoVersion == "" || p.GOMAXPROCS <= 0 || p.NumCPU <= 0 {
		t.Errorf("provenance incomplete: %+v", p)
	}
	// The test binary runs inside the repo, so the .git/HEAD fallback
	// must resolve to a 40-hex SHA even without a VCS build stamp.
	if len(p.GitSHA) != 40 {
		t.Errorf("git SHA = %q, want a 40-hex commit id", p.GitSHA)
	}
}

func TestFinishCLIDisabledIsNoop(t *testing.T) {
	resetForTest(t)
	var b strings.Builder
	if err := FinishCLI(&b, "test", "", nil); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Errorf("disabled FinishCLI wrote output: %q", b.String())
	}
}
