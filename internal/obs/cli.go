package obs

import (
	"fmt"
	"io"
)

// SetupCLI wires the standard observability flags of a CLI: if either
// -report or -metrics-addr was given, instrumentation is enabled (and
// the metrics listener started). Call right after flag parsing, before
// any instrumented work.
func SetupCLI(reportPath, metricsAddr string) error {
	if reportPath == "" && metricsAddr == "" {
		return nil
	}
	Enable()
	if metricsAddr != "" {
		return ServeMetrics(metricsAddr)
	}
	return nil
}

// FinishCLI is the matching exit hook: it builds the run report, writes
// it to reportPath when non-empty, and prints the human-readable stage
// summary to w. A no-op while instrumentation is disabled.
func FinishCLI(w io.Writer, tool, reportPath string, config any) error {
	if !On() {
		return nil
	}
	r := BuildReport(tool, config)
	if reportPath != "" {
		if err := r.WriteFile(reportPath); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s\n", reportPath)
	}
	fmt.Fprint(w, "\n", r.SummaryTable())
	return nil
}
