package obs

import (
	"flag"
	"fmt"
	"io"
	"time"
)

// Flags is the standard observability flag bundle every CLI registers:
// the v1 -report/-metrics-addr pair plus the tracing and time-series
// knobs. RegisterFlags binds them on the default flag set; Setup/Finish
// bracket the instrumented work.
type Flags struct {
	Report        string
	MetricsAddr   string
	Trace         string
	TraceEvents   int
	TraceSample   int
	SnapshotEvery time.Duration
}

// RegisterFlags registers the observability flags on the process flag
// set and returns the bundle to pass to Setup and Finish after parsing.
func RegisterFlags() *Flags {
	f := &Flags{}
	flag.StringVar(&f.Report, "report", "", "write a versioned JSON run report to `file`")
	flag.StringVar(&f.MetricsAddr, "metrics-addr", "", "serve expvar metrics and pprof on `addr` (e.g. localhost:6060)")
	flag.StringVar(&f.Trace, "trace", "", "write a Chrome trace-event JSON timeline to `file` (load in Perfetto)")
	flag.IntVar(&f.TraceEvents, "trace-events", DefaultTraceEvents, "trace ring-buffer capacity in `events` (oldest overwritten beyond it)")
	flag.IntVar(&f.TraceSample, "trace-sample", 1, "record every `N`th worker-pool task in the trace")
	flag.DurationVar(&f.SnapshotEvery, "snapshot-interval", 0, "sample metrics into the report every `interval` (0 disables)")
	return f
}

// Setup enables whatever the parsed flags ask for: instrumentation when
// any output is requested, trace recording for -trace, the background
// snapshot sampler for -snapshot-interval, and the metrics listener for
// -metrics-addr. Call right after flag parsing, before any instrumented
// work.
func (f *Flags) Setup() error {
	if f.Report == "" && f.MetricsAddr == "" && f.Trace == "" && f.SnapshotEvery <= 0 {
		return nil
	}
	if f.Trace != "" {
		EnableTrace(f.TraceEvents, f.TraceSample)
	} else {
		Enable()
	}
	if f.SnapshotEvery > 0 {
		StartSnapshots(f.SnapshotEvery)
	}
	if f.MetricsAddr != "" {
		return ServeMetrics(f.MetricsAddr)
	}
	return nil
}

// Finish is the matching exit hook: it stops the snapshot sampler
// (appending one final sample so short runs still get a data point),
// builds the run report, writes the report and trace files when
// requested, and prints the human-readable summary to w. A no-op while
// instrumentation is disabled.
func (f *Flags) Finish(w io.Writer, tool string, config any) error {
	if !On() {
		return nil
	}
	if f.SnapshotEvery > 0 {
		StopSnapshots()
		TakeSnapshot()
	}
	r := BuildReport(tool, config)
	if f.Report != "" {
		if err := r.WriteFile(f.Report); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s\n", f.Report)
	}
	if f.Trace != "" {
		if err := WriteTrace(f.Trace); err != nil {
			return err
		}
		fmt.Fprintf(w, "  wrote %s\n", f.Trace)
	}
	fmt.Fprint(w, "\n", r.SummaryTable())
	return nil
}

// SetupCLI wires the v1 observability flag pair: if either -report or
// -metrics-addr was given, instrumentation is enabled (and the metrics
// listener started). Kept for callers without the full Flags bundle.
func SetupCLI(reportPath, metricsAddr string) error {
	f := Flags{Report: reportPath, MetricsAddr: metricsAddr}
	return f.Setup()
}

// FinishCLI is the matching v1 exit hook: it builds the run report,
// writes it to reportPath when non-empty, and prints the human-readable
// stage summary to w. A no-op while instrumentation is disabled.
func FinishCLI(w io.Writer, tool, reportPath string, config any) error {
	f := Flags{Report: reportPath}
	return f.Finish(w, tool, config)
}
