package power

// Waveform is a time-binned instantaneous power trace of one pattern's
// launch-to-capture cycle. The paper's introduction distinguishes the
// *peak* power of the launch burst from cycle averages — the waveform
// makes that visible: a pattern with modest CAP can still carry a sharp
// launch spike, which is what SCAP approximates with its single window.
type Waveform struct {
	BinNs float64
	// EnergyFJ[i] is the switching energy that landed in bin i
	// [i*BinNs, (i+1)*BinNs).
	EnergyFJ []float64
}

// PeakMW returns the largest per-bin average power in mW.
func (w *Waveform) PeakMW() float64 {
	peak := 0.0
	for _, e := range w.EnergyFJ {
		if p := mw(e, w.BinNs); p > peak {
			peak = p
		}
	}
	return peak
}

// PowerMW returns the per-bin average power series in mW.
func (w *Waveform) PowerMW() []float64 {
	out := make([]float64, len(w.EnergyFJ))
	for i, e := range w.EnergyFJ {
		out[i] = mw(e, w.BinNs)
	}
	return out
}

// EnableWaveform switches the meter to also bin energy over time with the
// given resolution; it applies from the next Reset. A zero or negative bin
// disables binning.
func (m *Meter) EnableWaveform(binNs float64) {
	m.binNs = binNs
	m.Reset()
}

// waveformAccumulate records a toggle's energy into its time bin.
func (m *Meter) waveformAccumulate(t, e float64) {
	if m.binNs <= 0 {
		return
	}
	idx := int(t / m.binNs)
	if idx < 0 {
		idx = 0
	}
	for len(m.bins) <= idx {
		m.bins = append(m.bins, 0)
	}
	m.bins[idx] += e
}

// WaveformOf returns the accumulated waveform since the last Reset, or nil
// when binning is disabled.
func (m *Meter) WaveformOf() *Waveform {
	if m.binNs <= 0 {
		return nil
	}
	return &Waveform{BinNs: m.binNs, EnergyFJ: append([]float64(nil), m.bins...)}
}
