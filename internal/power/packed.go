package power

import (
	"math/bits"

	"scap/internal/logic"
	"scap/internal/obs"
)

var cPackedEstimates = obs.NewCounter("power.packed_estimates")

// PackedEstimate is the zero-delay switching estimate of up to 64 packed
// patterns: for every pattern slot, the toggle count and switched energy
// a settled-frames view of the launch cycle predicts. It deliberately
// ignores glitches and the switching time window — it is the cheap triage
// in front of the exact event-driven meter, not a replacement — so it
// exposes energies (fJ) rather than SCAP, and callers average over the
// tester period (a CAP-style figure) to rank patterns.
type PackedEstimate struct {
	// Valid masks the slots that carried real patterns; other slots hold
	// zeros.
	Valid uint64
	// Toggles[s] counts gate outputs whose settled frame-1 and frame-2
	// values differ in slot s (both defined).
	Toggles []int
	// TotalToggles is the toggle count summed over all valid slots
	// (equals the sum of Toggles — accumulated independently via
	// popcounts as a consistency cross-check).
	TotalToggles int
	// EnergyVDD[s] / EnergyVSS[s] are the chip-level switched energies
	// (fJ) of slot s: rising edges charge from VDD, falling edges
	// discharge into VSS.
	EnergyVDD, EnergyVSS []float64
	// BlockEnergyVDD[s][b] is slot s's rising-edge energy in block b.
	BlockEnergyVDD [][]float64
}

// CAPVdd returns slot s's estimated VDD cycle-average power (mW) over the
// tester period.
func (e *PackedEstimate) CAPVdd(s int, periodNs float64) float64 {
	return mw(e.EnergyVDD[s], periodNs)
}

// PackedEstimate computes the zero-delay switching estimate of up to 64
// packed patterns in one pass over the design: per gate output, the
// dual-rail XOR of the settled frame-1 and frame-2 words (`Diff`, the
// defined-difference mask) gives the slots that toggle, `bits.OnesCount64`
// totals them, and each set bit adds the instance's switched capacitance ×
// VDD² to its slot's (and block's) energy. n1 and n2 are per-net settled
// values (a faultsim Batch's N1/N2); valid masks the live slots. Flop
// outputs are included — the event-driven meter counts their launch-edge Q
// transitions too, so the estimate stays comparable. The meter's
// accumulated pattern state is untouched; the method reads only the
// immutable capacitance table and is safe to call concurrently on meter
// clones.
func (m *Meter) PackedEstimate(n1, n2 []logic.Word, valid uint64) *PackedEstimate {
	defer obs.TraceStart().End("power", "packed-estimate")
	cPackedEstimates.Add(1)
	d := m.d
	nb := d.NumBlocks
	est := &PackedEstimate{
		Valid:     valid,
		Toggles:   make([]int, 64),
		EnergyVDD: make([]float64, 64),
		EnergyVSS: make([]float64, 64),
	}
	est.BlockEnergyVDD = make([][]float64, 64)
	for s := range est.BlockEnergyVDD {
		est.BlockEnergyVDD[s] = make([]float64, nb)
	}
	for i := range d.Insts {
		out := d.Insts[i].Out
		w1, w2 := n1[out], n2[out]
		rising := w1.Zero & w2.One & valid
		falling := w1.One & w2.Zero & valid
		diff := rising | falling // == w1.Diff(w2) & valid
		if diff == 0 {
			continue
		}
		est.TotalToggles += bits.OnesCount64(diff)
		e := m.capOf[i] * m.vdd2
		block := d.Insts[i].Block
		for ms := diff; ms != 0; ms &= ms - 1 {
			s := bits.TrailingZeros64(ms)
			est.Toggles[s]++
			if rising&(1<<uint(s)) != 0 {
				est.EnergyVDD[s] += e
				if block >= 0 {
					est.BlockEnergyVDD[s][block] += e
				}
			} else {
				est.EnergyVSS[s] += e
			}
		}
	}
	return est
}

// Estimate is the scalar single-pattern counterpart of PackedEstimate —
// the reference the packed path is property-tested against (bit-identical
// floats: both accumulate in instance order).
type Estimate struct {
	Toggles              int
	EnergyVDD, EnergyVSS float64
	BlockEnergyVDD       []float64
}

// ZeroDelayEstimate computes the zero-delay switching estimate of one
// pattern from scalar settled frames (per-net values, e.g. a Simulator
// Propagate result per frame).
func (m *Meter) ZeroDelayEstimate(n1, n2 []logic.V) *Estimate {
	d := m.d
	est := &Estimate{BlockEnergyVDD: make([]float64, d.NumBlocks)}
	for i := range d.Insts {
		out := d.Insts[i].Out
		v1, v2 := n1[out], n2[out]
		if v1 == logic.X || v2 == logic.X || v1 == v2 {
			continue
		}
		est.Toggles++
		e := m.capOf[i] * m.vdd2
		if v2 == logic.One {
			est.EnergyVDD += e
			if b := d.Insts[i].Block; b >= 0 {
				est.BlockEnergyVDD[b] += e
			}
		} else {
			est.EnergyVSS += e
		}
	}
	return est
}
