// Package power implements the paper's power models:
//
//   - CAP, the cycle average power: CAP_j = Σ C_i · VDD² / T — switching
//     energy of pattern j averaged over the full tester cycle T;
//   - SCAP, the switching cycle average power (the paper's contribution):
//     SCAP_j = Σ C_i · VDD² / STW_j — the same energy averaged over the
//     switching time frame window, the span from the launch clock edge to
//     the last transition (≈ the longest sensitized path delay);
//   - the vector-less statistical model used for the per-block functional
//     power/IR-drop thresholds of Table 3.
//
// The Meter streams toggles straight from the timing simulator (the role
// of the paper's VCS PLI), so no VCD file is materialized. Rising
// transitions charge from the VDD rails, falling ones discharge into VSS;
// the two are accounted separately, matching the paper's per-network
// columns.
//
// Units: capacitance fF, voltage V, time ns, energy fJ, power mW
// (1 fJ/ns = 1 µW = 1e-3 mW), current mA.
package power

import (
	"scap/internal/netlist"
	"scap/internal/obs"
)

// Meter observability: OnToggle sits in the timing simulator's event
// loop, so toggles are counted in a meter-local field and flushed to
// the shared counter once per pattern (on Reset and ReportBlocks).
var (
	cMeterResets   = obs.NewCounter("power.meter_resets")
	cTogglesMeterd = obs.NewCounter("power.toggles_metered")
)

// Rail selects the VDD or VSS accounting.
type Rail uint8

// Rails.
const (
	VDD Rail = iota
	VSS
)

// String names the rail.
func (r Rail) String() string {
	if r == VDD {
		return "VDD"
	}
	return "VSS"
}

// BlockPower is the per-block switching profile of one pattern.
type BlockPower struct {
	Block   int // block index; the last entry is the whole chip
	Toggles int
	// EnergyVDD/EnergyVSS are the switched energies (fJ) drawn from VDD
	// (rising edges) and dumped into VSS (falling edges).
	EnergyVDD, EnergyVSS float64
	// First and Last are the block's first/last transition times (ns after
	// the launch edge); STW = Last (the paper measures the window from the
	// launch edge, since the longest affected path defines it).
	First, Last float64
	STW         float64
	// CAPVdd/SCAPVdd (and VSS) are the average powers in mW.
	CAPVdd, CAPVss   float64
	SCAPVdd, SCAPVss float64
}

// CAP returns the rail's cycle average power in mW.
func (b *BlockPower) CAP(r Rail) float64 {
	if r == VDD {
		return b.CAPVdd
	}
	return b.CAPVss
}

// SCAP returns the rail's switching cycle average power in mW.
func (b *BlockPower) SCAP(r Rail) float64 {
	if r == VDD {
		return b.SCAPVdd
	}
	return b.SCAPVss
}

// Profile is the complete power report of one pattern.
type Profile struct {
	Period float64 // tester cycle, ns
	// Blocks has one entry per floorplan block followed by one chip-level
	// entry (index NumBlocks).
	Blocks []BlockPower
	// InstEnergy is the per-instance switched energy in fJ (both rails
	// combined), consumed by the delay-scaling analysis; InstEnergyVDD and
	// InstEnergyVSS split it by rail (rising vs falling edges) for the
	// per-rail dynamic IR-drop analysis.
	InstEnergy    []float64
	InstEnergyVDD []float64
	InstEnergyVSS []float64
}

// Chip returns the chip-level totals.
func (p *Profile) Chip() *BlockPower { return &p.Blocks[len(p.Blocks)-1] }

// Block returns block b's profile.
func (p *Profile) Block(b int) *BlockPower { return &p.Blocks[b] }

// Meter accumulates toggles from a timing simulation into a Profile.
// It implements the paper's PLI-based SCAP calculator.
type Meter struct {
	d     *netlist.Design
	vdd2  float64
	capOf []float64 // per-instance switched capacitance, fF

	instEnergy    []float64
	instEnergyVDD []float64
	instEnergyVSS []float64
	blocks        []BlockPower

	// waveform binning (see waveform.go); disabled when binNs <= 0.
	binNs float64
	bins  []float64

	// unflushedToggles counts OnToggle calls since the last flush to the
	// shared power.toggles_metered counter (kept local so the toggle hot
	// path never touches an atomic).
	unflushedToggles int64
}

// NewMeter builds a meter for a design whose parasitics are extracted
// (LoadCap must be meaningful).
func NewMeter(d *netlist.Design) *Meter {
	m := &Meter{
		d:     d,
		vdd2:  d.Lib.VDD * d.Lib.VDD,
		capOf: make([]float64, d.NumInsts()),
	}
	for i := range d.Insts {
		m.capOf[i] = d.LoadCap(netlist.InstID(i))
	}
	m.Reset()
	return m
}

// Clone returns a fresh, reset meter for the same design. The
// per-instance capacitance table is immutable after NewMeter and stays
// shared, so cloning skips the O(instances) LoadCap pass — the cheap
// per-worker constructor path of the parallel profiling pipeline.
func (m *Meter) Clone() *Meter {
	c := &Meter{d: m.d, vdd2: m.vdd2, capOf: m.capOf, binNs: m.binNs}
	c.Reset()
	return c
}

// Reset clears the accumulated pattern, reusing the accumulator buffers:
// the meter sits in a per-pattern hot loop, and Report already copies
// everything that escapes.
func (m *Meter) Reset() {
	cMeterResets.Add(1)
	m.flushToggles()
	m.instEnergy = resetF(m.instEnergy, m.d.NumInsts())
	m.instEnergyVDD = resetF(m.instEnergyVDD, m.d.NumInsts())
	m.instEnergyVSS = resetF(m.instEnergyVSS, m.d.NumInsts())
	if m.blocks == nil {
		m.blocks = make([]BlockPower, m.d.NumBlocks+1)
	}
	for i := range m.blocks {
		m.blocks[i] = BlockPower{Block: i, First: -1}
	}
	m.bins = m.bins[:0]
}

// resetF returns a zeroed float slice of length n, reusing s's storage
// when it is already the right size.
func resetF(s []float64, n int) []float64 {
	if len(s) != n {
		return make([]float64, n)
	}
	for i := range s {
		s[i] = 0
	}
	return s
}

// flushToggles moves the meter-local toggle count into the shared
// counter.
func (m *Meter) flushToggles() {
	if m.unflushedToggles > 0 {
		cTogglesMeterd.Add(m.unflushedToggles)
		m.unflushedToggles = 0
	}
}

// OnToggle records one output transition; it has the sim.ToggleFn shape.
func (m *Meter) OnToggle(inst netlist.InstID, t float64, rising bool) {
	m.unflushedToggles++
	e := m.capOf[inst] * m.vdd2
	m.instEnergy[inst] += e
	m.waveformAccumulate(t, e)
	if rising {
		m.instEnergyVDD[inst] += e
	} else {
		m.instEnergyVSS[inst] += e
	}
	add := func(idx int) {
		b := &m.blocks[idx]
		b.Toggles++
		if rising {
			b.EnergyVDD += e
		} else {
			b.EnergyVSS += e
		}
		if b.First < 0 || t < b.First {
			b.First = t
		}
		if t > b.Last {
			b.Last = t
		}
	}
	if bi := m.d.Insts[inst].Block; bi >= 0 {
		add(bi)
	}
	add(len(m.blocks) - 1)
}

// Report finalizes the pattern at tester period T (ns) and returns the
// profile. The meter keeps accumulating until Reset.
func (m *Meter) Report(period float64) *Profile {
	return &Profile{
		Period:        period,
		Blocks:        m.ReportBlocks(period),
		InstEnergy:    append([]float64(nil), m.instEnergy...),
		InstEnergyVDD: append([]float64(nil), m.instEnergyVDD...),
		InstEnergyVSS: append([]float64(nil), m.instEnergyVSS...),
	}
}

// ReportBlocks finalizes only the per-block view of the pattern (one
// entry per block plus the chip entry), skipping the three O(instances)
// energy-vector copies of Report that the pattern-profiling loop never
// consumes. The returned slice is independent of the meter.
func (m *Meter) ReportBlocks(period float64) []BlockPower {
	m.flushToggles()
	blocks := make([]BlockPower, len(m.blocks))
	copy(blocks, m.blocks)
	for i := range blocks {
		b := &blocks[i]
		if b.First < 0 {
			b.First = 0
		}
		b.STW = b.Last
		b.CAPVdd = mw(b.EnergyVDD, period)
		b.CAPVss = mw(b.EnergyVSS, period)
		b.SCAPVdd = mw(b.EnergyVDD, b.STW)
		b.SCAPVss = mw(b.EnergyVSS, b.STW)
	}
	return blocks
}

// RawInstEnergyVDD returns the meter's live per-instance VDD-rail energy
// accumulator (fJ, rising edges). It is valid until the next Reset and
// must not be mutated — the batched IR-drop pipeline reads it directly
// instead of paying Report's per-instance copies.
func (m *Meter) RawInstEnergyVDD() []float64 { return m.instEnergyVDD }

// RawInstEnergyVSS is RawInstEnergyVDD for the VSS rail (falling edges).
func (m *Meter) RawInstEnergyVSS() []float64 { return m.instEnergyVSS }

// mw converts energy (fJ) over a window (ns) to mW; a zero window yields 0.
func mw(energyFJ, windowNs float64) float64 {
	if windowNs <= 0 {
		return 0
	}
	return energyFJ / windowNs * 1e-3
}

// InstCurrents converts a per-instance energy vector (fJ) spent within a
// window (ns) into average per-instance currents in mA, the input of the
// IR-drop solver: I = E / (VDD · t).
func InstCurrents(d *netlist.Design, energy []float64, windowNs float64) []float64 {
	return InstCurrentsInto(nil, d, energy, windowNs)
}

// InstCurrentsInto is InstCurrents writing into a reusable buffer (the
// per-worker scratch of the batched IR-drop pipeline); dst is grown if
// needed and returned.
func InstCurrentsInto(dst []float64, d *netlist.Design, energy []float64, windowNs float64) []float64 {
	if len(dst) != len(energy) {
		dst = make([]float64, len(energy))
	}
	if windowNs <= 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	for i, e := range energy {
		dst[i] = e / (d.Lib.VDD * windowNs) * 1e-3 // µA -> mA
	}
	return dst
}
