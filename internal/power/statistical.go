package power

import "scap/internal/netlist"

// BlockStat is the vector-less average switching power of one block.
type BlockStat struct {
	Block              int
	PowerVddMW         float64
	PowerVssMW         float64
	SwitchedCapTotalFF float64
}

// StatProfile is the statistical (vector-less) power analysis result: the
// paper's Section 2.2 methodology, where every net is assumed to toggle
// with a fixed probability per cycle and the energy is averaged over a
// chosen time-frame window (the full cycle for Case 1, half of it for
// Case 2 — which doubles the average power).
type StatProfile struct {
	ToggleProb float64
	WindowNs   float64
	// Blocks holds one entry per floorplan block plus a chip-level entry.
	Blocks []BlockStat
}

// Chip returns the chip-level entry.
func (s *StatProfile) Chip() *BlockStat { return &s.Blocks[len(s.Blocks)-1] }

// Statistical runs the vector-less power estimate: each instance output
// toggles with probability toggleProb per tester cycle; rising and falling
// transitions are equally likely, splitting the energy across the VDD and
// VSS networks.
func Statistical(d *netlist.Design, toggleProb, windowNs float64) *StatProfile {
	s := &StatProfile{ToggleProb: toggleProb, WindowNs: windowNs}
	s.Blocks = make([]BlockStat, d.NumBlocks+1)
	for i := range s.Blocks {
		s.Blocks[i].Block = i
	}
	vdd2 := d.Lib.VDD * d.Lib.VDD
	chip := &s.Blocks[d.NumBlocks]
	for i := range d.Insts {
		c := d.LoadCap(netlist.InstID(i))
		e := toggleProb * c * vdd2 // fJ per cycle
		half := mw(e/2, windowNs)
		if b := d.Insts[i].Block; b >= 0 {
			s.Blocks[b].PowerVddMW += half
			s.Blocks[b].PowerVssMW += half
			s.Blocks[b].SwitchedCapTotalFF += toggleProb * c
		}
		chip.PowerVddMW += half
		chip.PowerVssMW += half
		chip.SwitchedCapTotalFF += toggleProb * c
	}
	return s
}

// StatCurrents returns the per-instance average current (mA) drawn under
// the statistical model, the input of the vector-less IR-drop analysis.
func StatCurrents(d *netlist.Design, toggleProb, windowNs float64) []float64 {
	return StatCurrentsInto(nil, d, toggleProb, windowNs)
}

// StatCurrentsInto is StatCurrents writing into a reusable per-instance
// buffer (grown if needed, fully overwritten, returned), so repeated
// statistical solves — the two Table-3 windows, Monte-Carlo baselines,
// grid calibration — stop allocating a currents vector per call.
func StatCurrentsInto(dst []float64, d *netlist.Design, toggleProb, windowNs float64) []float64 {
	if len(dst) != d.NumInsts() {
		dst = make([]float64, d.NumInsts())
	}
	if windowNs <= 0 {
		for i := range dst {
			dst[i] = 0
		}
		return dst
	}
	vdd := d.Lib.VDD
	for i := range d.Insts {
		e := toggleProb * d.LoadCap(netlist.InstID(i)) * vdd * vdd
		dst[i] = e / (vdd * windowNs) * 1e-3
	}
	return dst
}
