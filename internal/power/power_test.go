package power

import (
	"math"
	"testing"

	"scap/internal/cell"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/parasitic"
	"scap/internal/place"
	"scap/internal/sdf"
	"scap/internal/sim"
	"scap/internal/soc"
)

// chainDesign builds f1.Q -> INV a -> INV b -> f2.D in block 0.
func chainDesign(t *testing.T) (*netlist.Design, *sim.Simulator, *sim.Timing) {
	t.Helper()
	d := netlist.New("c", cell.New180nm())
	d.NumBlocks = 2
	d.BlockNames = []string{"B1", "B2"}
	d.Domains = []netlist.DomainInfo{{Name: "clk", FreqMHz: 50, PeriodNs: 20}}
	q1 := d.AddNet("q1")
	q2 := d.AddNet("q2")
	a := d.AddNet("a")
	b := d.AddNet("b")
	d.AddInst("i1", cell.Inv, []netlist.NetID{q1}, a, 0)
	d.AddInst("i2", cell.Inv, []netlist.NetID{a}, b, 1)
	f1 := d.AddInst("f1", cell.DFF, []netlist.NetID{b}, q1, 0)
	f2 := d.AddInst("f2", cell.DFF, []netlist.NetID{b}, q2, 1)
	d.SetDomain(f1, 0, false)
	d.SetDomain(f2, 0, false)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	dl := sdf.Compute(d)
	return d, s, sim.NewTiming(s, dl, nil)
}

func TestMeterCountsEnergyAndSTW(t *testing.T) {
	d, _, tm := chainDesign(t)
	m := NewMeter(d)
	res, err := tm.Launch(
		[]logic.V{logic.Zero, logic.X}, []logic.V{logic.One, logic.X},
		nil, 20, m.OnToggle)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Report(20)
	chip := p.Chip()
	// Toggles: q1 rise, a fall, b rise = 3.
	if chip.Toggles != 3 || res.Toggles != 3 {
		t.Fatalf("toggles %d / %d", chip.Toggles, res.Toggles)
	}
	vdd2 := d.Lib.VDD * d.Lib.VDD
	var f1ID, i1ID, i2ID netlist.InstID
	for i := range d.Insts {
		switch d.Insts[i].Name {
		case "f1":
			f1ID = netlist.InstID(i)
		case "i1":
			i1ID = netlist.InstID(i)
		case "i2":
			i2ID = netlist.InstID(i)
		}
	}
	wantVDD := (d.LoadCap(f1ID) + d.LoadCap(i2ID)) * vdd2 // q1 and b rise
	wantVSS := d.LoadCap(i1ID) * vdd2                     // a falls
	if !close(chip.EnergyVDD, wantVDD) || !close(chip.EnergyVSS, wantVSS) {
		t.Fatalf("energy (%v,%v), want (%v,%v)", chip.EnergyVDD, chip.EnergyVSS, wantVDD, wantVSS)
	}
	// STW must equal the last transition time and SCAP/CAP == T/STW.
	if !close(chip.STW, res.LastEvent) {
		t.Fatalf("STW %v vs last event %v", chip.STW, res.LastEvent)
	}
	if chip.SCAPVdd <= chip.CAPVdd {
		t.Fatal("SCAP not above CAP")
	}
	ratio := chip.SCAPVdd / chip.CAPVdd
	if !close(ratio, 20/chip.STW) {
		t.Fatalf("SCAP/CAP = %v, want %v", ratio, 20/chip.STW)
	}
	// Per-block split: block 0 has f1+i1 energy, block 1 has i2.
	b0, b1 := p.Block(0), p.Block(1)
	if !close(b0.EnergyVDD+b0.EnergyVSS, (d.LoadCap(f1ID)+d.LoadCap(i1ID))*vdd2) {
		t.Fatalf("block0 energy %v", b0.EnergyVDD+b0.EnergyVSS)
	}
	if !close(b1.EnergyVDD, d.LoadCap(i2ID)*vdd2) || b1.EnergyVSS != 0 {
		t.Fatalf("block1 energy (%v, %v)", b1.EnergyVDD, b1.EnergyVSS)
	}
	// Instance energies must sum to the chip energy.
	sum := 0.0
	for _, e := range p.InstEnergy {
		sum += e
	}
	if !close(sum, chip.EnergyVDD+chip.EnergyVSS) {
		t.Fatalf("instance energies sum %v, chip %v", sum, chip.EnergyVDD+chip.EnergyVSS)
	}
}

func TestMeterReset(t *testing.T) {
	d, _, tm := chainDesign(t)
	m := NewMeter(d)
	if _, err := tm.Launch([]logic.V{logic.Zero, logic.X}, []logic.V{logic.One, logic.X}, nil, 20, m.OnToggle); err != nil {
		t.Fatal(err)
	}
	m.Reset()
	p := m.Report(20)
	if p.Chip().Toggles != 0 || p.Chip().EnergyVDD != 0 {
		t.Fatal("reset did not clear")
	}
	if p.Chip().CAPVdd != 0 || p.Chip().SCAPVdd != 0 {
		t.Fatal("zero-activity powers should be 0")
	}
}

func TestRailAccessorsAndStrings(t *testing.T) {
	b := BlockPower{CAPVdd: 1, CAPVss: 2, SCAPVdd: 3, SCAPVss: 4}
	if b.CAP(VDD) != 1 || b.CAP(VSS) != 2 || b.SCAP(VDD) != 3 || b.SCAP(VSS) != 4 {
		t.Fatal("rail accessors")
	}
	if VDD.String() != "VDD" || VSS.String() != "VSS" {
		t.Fatal("rail strings")
	}
}

func TestStatisticalHalvingWindowDoublesPower(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := place.Place(d, 1)
	if _, err := parasitic.Extract(d, fp, parasitic.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	full := Statistical(d, 0.3, 20)
	half := Statistical(d, 0.3, 10)
	for i := range full.Blocks {
		f, h := &full.Blocks[i], &half.Blocks[i]
		if f.PowerVddMW <= 0 {
			t.Fatalf("block %d zero power", i)
		}
		if !close(h.PowerVddMW, 2*f.PowerVddMW) || !close(h.PowerVssMW, 2*f.PowerVssMW) {
			t.Fatalf("halving window did not double power: %v vs %v", h.PowerVddMW, f.PowerVddMW)
		}
	}
	// Chip power equals the block sum (all SOC instances are in blocks).
	sum := 0.0
	for i := 0; i < d.NumBlocks; i++ {
		sum += full.Blocks[i].PowerVddMW
	}
	if !close(sum, full.Chip().PowerVddMW) {
		t.Fatalf("blocks sum %v, chip %v", sum, full.Chip().PowerVddMW)
	}
	// B5 must be the hottest block (largest clka share).
	for b := 0; b < d.NumBlocks; b++ {
		if b != soc.B5 && full.Blocks[b].PowerVddMW >= full.Blocks[soc.B5].PowerVddMW {
			t.Fatalf("B%d (%.2f mW) hotter than B5 (%.2f mW)",
				b+1, full.Blocks[b].PowerVddMW, full.Blocks[soc.B5].PowerVddMW)
		}
	}
}

func TestStatCurrentsMatchPower(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := place.Place(d, 1)
	if _, err := parasitic.Extract(d, fp, parasitic.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	cur := StatCurrents(d, 0.3, 20)
	// Σ I·VDD must equal total power (VDD+VSS): P(mW) = I(mA)·V(V).
	totalI := 0.0
	for _, c := range cur {
		totalI += c
	}
	prof := Statistical(d, 0.3, 20)
	want := prof.Chip().PowerVddMW + prof.Chip().PowerVssMW
	if !close(totalI*d.Lib.VDD, want) {
		t.Fatalf("ΣI·V = %v, total power %v", totalI*d.Lib.VDD, want)
	}
	if z := StatCurrents(d, 0.3, 0); z[0] != 0 {
		t.Fatal("zero window should give zero currents")
	}
}

func TestStatCurrentsInto(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(96))
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := place.Place(d, 1)
	if _, err := parasitic.Extract(d, fp, parasitic.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	want := StatCurrents(d, 0.3, 20)
	buf := make([]float64, d.NumInsts())
	for i := range buf {
		buf[i] = 99 // stale content must be overwritten
	}
	got := StatCurrentsInto(buf, d, 0.3, 20)
	if &got[0] != &buf[0] {
		t.Fatal("buffer not reused")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("inst %d: %v != %v", i, got[i], want[i])
		}
	}
	// Wrong-size buffers are replaced; zero windows clear stale content.
	if small := StatCurrentsInto(make([]float64, 2), d, 0.3, 20); len(small) != d.NumInsts() {
		t.Fatalf("undersized buffer left %d entries", len(small))
	}
	z := StatCurrentsInto(got, d, 0.3, 0)
	for i := range z {
		if z[i] != 0 {
			t.Fatal("zero window should clear the buffer")
		}
	}
}

func TestInstCurrentsConversion(t *testing.T) {
	d, _, tm := chainDesign(t)
	m := NewMeter(d)
	if _, err := tm.Launch([]logic.V{logic.Zero, logic.X}, []logic.V{logic.One, logic.X}, nil, 20, m.OnToggle); err != nil {
		t.Fatal(err)
	}
	p := m.Report(20)
	cur := InstCurrents(d, p.InstEnergy, p.Chip().STW)
	totalI := 0.0
	for _, c := range cur {
		totalI += c
	}
	// ΣI·VDD == total SCAP power (VDD+VSS rails combined).
	want := p.Chip().SCAPVdd + p.Chip().SCAPVss
	if !close(totalI*d.Lib.VDD, want) {
		t.Fatalf("ΣI·V = %v, want %v", totalI*d.Lib.VDD, want)
	}
	if z := InstCurrents(d, p.InstEnergy, 0); z[0] != 0 {
		t.Fatal("zero window should give zero currents")
	}
}

func close(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(b))
}

func TestWaveformBinsEnergy(t *testing.T) {
	d, _, tm := chainDesign(t)
	m := NewMeter(d)
	m.EnableWaveform(0.5)
	if _, err := tm.Launch([]logic.V{logic.Zero, logic.X}, []logic.V{logic.One, logic.X},
		nil, 20, m.OnToggle); err != nil {
		t.Fatal(err)
	}
	p := m.Report(20)
	w := m.WaveformOf()
	if w == nil {
		t.Fatal("waveform disabled")
	}
	sum := 0.0
	for _, e := range w.EnergyFJ {
		sum += e
	}
	total := p.Chip().EnergyVDD + p.Chip().EnergyVSS
	if !close(sum, total) {
		t.Fatalf("binned energy %v, total %v", sum, total)
	}
	// Peak power must be at least the SCAP average and the series must
	// match PeakMW.
	peak := w.PeakMW()
	series := w.PowerMW()
	maxS := 0.0
	for _, v := range series {
		if v > maxS {
			maxS = v
		}
	}
	if !close(peak, maxS) {
		t.Fatalf("PeakMW %v, series max %v", peak, maxS)
	}
	// The peak bin power can never be below the all-cycle average (the
	// mean over bins is bounded by the max).
	cap := p.Chip().CAPVdd + p.Chip().CAPVss
	if peak < cap {
		t.Fatalf("peak %v below CAP %v", peak, cap)
	}
	// Disabled by default.
	m2 := NewMeter(d)
	if m2.WaveformOf() != nil {
		t.Fatal("waveform should be off by default")
	}
	// Disabling again.
	m.EnableWaveform(0)
	if m.WaveformOf() != nil {
		t.Fatal("waveform not disabled")
	}
}
