package power

import (
	"math/rand"
	"testing"

	"scap/internal/faultsim"
	"scap/internal/logic"
	"scap/internal/sim"
	"scap/internal/soc"
)

// randomScalar returns a random three-valued vector with a sprinkling of X.
func randomScalar(r *rand.Rand, n int) []logic.V {
	v := make([]logic.V, n)
	for i := range v {
		switch r.Intn(8) {
		case 0:
			v[i] = logic.X
		case 1, 2, 3:
			v[i] = logic.Zero
		default:
			v[i] = logic.One
		}
	}
	return v
}

// TestPackedEstimateMatchesScalarZeroDelay is the property behind the
// packed pre-screen: every slot of PackedEstimate must reproduce — to the
// exact float, since both accumulate in instance order — the scalar
// zero-delay estimate computed from that single pattern's settled frames.
func TestPackedEstimateMatchesScalarZeroDelay(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(96))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := faultsim.New(s)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeter(d)
	r := rand.New(rand.NewSource(41))

	const dom, nPat = 0, 50 // a partial batch exercises the valid mask too
	slotV1 := make([][]logic.V, nPat)
	slotPI := make([][]logic.V, nPat)
	for p := 0; p < nPat; p++ {
		slotV1[p] = randomScalar(r, len(d.Flops))
		slotPI[p] = randomScalar(r, len(d.PIs))
	}
	v1W := logic.PackSlots(nil, slotV1)
	piW := logic.PackSlots(nil, slotPI)
	b := fs.GoodSim(v1W, piW, dom, logic.ValidMask(nPat))
	est := m.PackedEstimate(b.N1, b.N2, b.Valid)

	totToggles := 0
	for p := 0; p < nPat; p++ {
		// Scalar reference frames: settle frame 1, capture, settle frame 2.
		n1 := s.NewNets()
		s.SetPIs(n1, slotPI[p])
		s.ApplyState(n1, slotV1[p])
		s.Propagate(n1)
		cap1 := s.CaptureState(n1)
		v2 := make([]logic.V, len(d.Flops))
		for i, f := range d.Flops {
			if d.Inst(f).Domain == dom {
				v2[i] = cap1[i]
			} else {
				v2[i] = slotV1[p][i]
			}
		}
		n2 := s.NewNets()
		s.SetPIs(n2, slotPI[p])
		s.ApplyState(n2, v2)
		s.Propagate(n2)

		want := m.ZeroDelayEstimate(n1, n2)
		if est.Toggles[p] != want.Toggles {
			t.Fatalf("pattern %d: packed toggles %d, scalar %d", p, est.Toggles[p], want.Toggles)
		}
		if est.EnergyVDD[p] != want.EnergyVDD || est.EnergyVSS[p] != want.EnergyVSS {
			t.Fatalf("pattern %d: packed energy %v/%v, scalar %v/%v",
				p, est.EnergyVDD[p], est.EnergyVSS[p], want.EnergyVDD, want.EnergyVSS)
		}
		for blk := range want.BlockEnergyVDD {
			if est.BlockEnergyVDD[p][blk] != want.BlockEnergyVDD[blk] {
				t.Fatalf("pattern %d block %d: packed %v, scalar %v",
					p, blk, est.BlockEnergyVDD[p][blk], want.BlockEnergyVDD[blk])
			}
		}
		totToggles += want.Toggles
	}
	if est.TotalToggles != totToggles {
		t.Fatalf("TotalToggles %d != per-slot sum %d", est.TotalToggles, totToggles)
	}
	// Slots beyond the valid mask must stay empty.
	for p := nPat; p < 64; p++ {
		if est.Toggles[p] != 0 || est.EnergyVDD[p] != 0 || est.EnergyVSS[p] != 0 {
			t.Fatalf("invalid slot %d carries estimate %d/%v/%v",
				p, est.Toggles[p], est.EnergyVDD[p], est.EnergyVSS[p])
		}
	}
	if totToggles == 0 {
		t.Fatal("degenerate test: no toggles at all")
	}
}

// TestZeroDelayEstimateCountsFlops pins the meter-comparability contract:
// flop launch transitions are part of the estimate, exactly as the
// event-driven meter counts their Q-output transitions.
func TestZeroDelayEstimateCountsFlops(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(96))
	if err != nil {
		t.Fatal(err)
	}
	m := NewMeter(d)
	// Build frames where only one flop's Q net differs.
	n1 := make([]logic.V, d.NumNets())
	n2 := make([]logic.V, d.NumNets())
	for i := range n1 {
		n1[i], n2[i] = logic.Zero, logic.Zero
	}
	q := d.Inst(d.Flops[0]).Out
	n2[q] = logic.One
	est := m.ZeroDelayEstimate(n1, n2)
	// The flop itself toggles, plus whatever single-input gates its fanout
	// cone would — but with all other nets pinned equal, only direct
	// output nets count; the flop's own toggle must be included.
	if est.Toggles < 1 || est.EnergyVDD <= 0 {
		t.Fatalf("flop launch transition not counted: %+v", est)
	}
}
