package pgrid

import "fmt"

// SolveDirect solves the same mesh equation G·v = I by dense Gaussian
// elimination with partial pivoting. It is O(n³) in the node count
// (cubic in N² for an N×N mesh, and O(n²) memory for the dense matrix)
// and exists as the numerical oracle that cross-validates both the
// banded factorization and the SOR solver. Inputs and outputs match
// Solve. Prefer SolveFactored for anything but validation: it computes
// the same exact solution with band-limited work and no dense matrix.
func (g *Grid) SolveDirect(injMA []float64) (*Solution, error) {
	n := g.P.N
	nn := n * n
	if len(injMA) != nn {
		return nil, fmt.Errorf("pgrid: injection length %d, want %d", len(injMA), nn)
	}
	gseg := 1 / g.P.SegRes

	// Assemble the dense conductance matrix (row-major) and RHS.
	a := make([]float64, nn*nn)
	b := make([]float64, nn)
	at := func(r, c int) *float64 { return &a[r*nn+c] }
	for iy := 0; iy < n; iy++ {
		for ix := 0; ix < n; ix++ {
			i := iy*n + ix
			diag := g.padG[i]
			couple := func(j int) {
				diag += gseg
				*at(i, j) -= gseg
			}
			if ix > 0 {
				couple(i - 1)
			}
			if ix < n-1 {
				couple(i + 1)
			}
			if iy > 0 {
				couple(i - n)
			}
			if iy < n-1 {
				couple(i + n)
			}
			*at(i, i) = diag
			b[i] = injMA[i]
		}
	}

	// Gaussian elimination with partial pivoting.
	perm := make([]int, nn)
	for i := range perm {
		perm[i] = i
	}
	for col := 0; col < nn; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < nn; r++ {
			if abs(*at(r, col)) > abs(*at(p, col)) {
				p = r
			}
		}
		if abs(*at(p, col)) < 1e-15 {
			return nil, fmt.Errorf("pgrid: singular mesh matrix at column %d (no pad path?)", col)
		}
		if p != col {
			for c := 0; c < nn; c++ {
				a[col*nn+c], a[p*nn+c] = a[p*nn+c], a[col*nn+c]
			}
			b[col], b[p] = b[p], b[col]
		}
		piv := *at(col, col)
		for r := col + 1; r < nn; r++ {
			f := *at(r, col) / piv
			if f == 0 {
				continue
			}
			*at(r, col) = 0
			for c := col + 1; c < nn; c++ {
				*at(r, c) -= f * *at(col, c)
			}
			b[r] -= f * b[col]
		}
	}
	// Back substitution.
	v := make([]float64, nn)
	for r := nn - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < nn; c++ {
			sum -= *at(r, c) * v[c]
		}
		v[r] = sum / *at(r, r)
	}

	sol := &Solution{N: n, Drop: v, Iterations: 1}
	for i := range v {
		v[i] *= 1e-3 // mV -> V
		if v[i] > sol.Worst {
			sol.Worst = v[i]
		}
	}
	return sol, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
