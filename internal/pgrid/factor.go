package pgrid

import (
	"fmt"

	"scap/internal/obs"
)

// Factored-path observability: calls vs builds distinguishes cache
// hits; each SolveFactored is exactly two banded triangular sweeps.
var (
	cFactorCalls = obs.NewCounter("pgrid.factor.calls")
	cFactorBuild = obs.NewCounter("pgrid.factor.builds")
	cFactSolves  = obs.NewCounter("pgrid.factored.solves")
	cFactSweeps  = obs.NewCounter("pgrid.factored.triangular_sweeps")
)

// Factorization is the banded LDLᵀ (root-free Cholesky) factorization of
// the mesh conductance matrix G. The 5-point stencil on an n×n mesh gives
// G a half-bandwidth of n (node i couples only to i±1 and i±n), and
// symmetric factorization preserves that band, so the unit lower factor L
// is stored as n·n rows of n sub-diagonals each — O(n³) floats instead of
// the O(n⁴) a dense factor would need.
//
// G depends only on the mesh topology and resistances, never on the
// injection, so the factorization is computed once per Grid and every
// per-pattern solve reduces to two banded triangular sweeps — O(n³) work
// against the O(sweeps·n²) of SOR with its ~100+ sweeps. After
// construction a Factorization is immutable and safe for concurrent use
// by any number of goroutines (each solve writes only caller-owned
// buffers).
type Factorization struct {
	n  int // mesh edge: n×n nodes
	nn int // node count n·n
	bw int // half-bandwidth (= n)
	// l[i*bw+o-1] holds L[i][i-o], the o-th sub-diagonal entry of the
	// unit lower factor in row i, for o = 1..min(i, bw).
	l []float64
	d []float64 // diagonal of D, in mesh conductance units (1/Ω)
}

// Factor returns the grid's cached LDLᵀ factorization, computing it on
// first use. The computation is guarded by a sync.Once, so concurrent
// first callers block until one factorization exists and then share it.
func (g *Grid) Factor() (*Factorization, error) {
	cFactorCalls.Add(1)
	g.factOnce.Do(func() {
		cFactorBuild.Add(1)
		g.fact, g.factErr = factorize(g)
	})
	return g.fact, g.factErr
}

// factorize assembles the banded conductance matrix and eliminates it.
func factorize(g *Grid) (*Factorization, error) {
	defer obs.TraceStart().End("pgrid", "banded-factor")
	return levelFactorize(g.P.N, g.padG, 1/g.P.SegRes)
}

// levelFactorize factors the generic level operator the multigrid
// hierarchy shares with the fine grid: an n×n 5-point mesh with segment
// conductance gseg and a per-node diagonal anchor term padG (the pad
// conductances on the fine grid, their full-weighting aggregates on the
// coarse levels). factorize(g) is exactly the padG = g.padG instance.
func levelFactorize(n int, padG []float64, gseg float64) (*Factorization, error) {
	nn := n * n
	bw := n
	f := &Factorization{
		n: n, nn: nn, bw: bw,
		l: make([]float64, nn*bw),
		d: make([]float64, nn),
	}

	// aRow writes row i of G restricted to columns [i-bw, i] into dst
	// (dst[bw] is the diagonal, dst[bw-o] is column i-o). Only three of
	// those entries are ever non-zero: the west neighbour (i-1, absent on
	// the left mesh edge), the south neighbour (i-n) and the diagonal.
	row := make([]float64, bw+1)
	aRow := func(i int, dst []float64) {
		for k := range dst {
			dst[k] = 0
		}
		ix, iy := i%n, i/n
		diag := padG[i]
		if ix > 0 {
			diag += gseg
			dst[bw-1] = -gseg // column i-1
		}
		if ix < n-1 {
			diag += gseg
		}
		if iy > 0 {
			diag += gseg
			dst[0] = -gseg // column i-n
		}
		if iy < n-1 {
			diag += gseg
		}
		dst[bw] = diag
	}

	// Row-oriented banded LDLᵀ: for each row i, eliminate against the at
	// most bw previous rows inside the band. All indices k below satisfy
	// k >= i-bw and k >= j-bw, so every factor access stays in band.
	for i := 0; i < nn; i++ {
		aRow(i, row)
		jmin := i - bw
		if jmin < 0 {
			jmin = 0
		}
		li := f.l[i*bw:] // row i of L: li[o-1] = L[i][i-o]
		for j := jmin; j <= i; j++ {
			sum := row[bw-(i-j)]
			for k := jmin; k < j; k++ {
				sum -= li[i-k-1] * f.d[k] * f.l[j*bw+(j-k-1)]
			}
			if j < i {
				li[i-j-1] = sum / f.d[j]
			} else {
				if sum <= 0 {
					return nil, fmt.Errorf("pgrid: mesh matrix not positive definite at node %d (no pad path?)", i)
				}
				f.d[i] = sum
			}
		}
	}
	return f, nil
}

// SolveScratch is caller-owned intermediate storage for the direct and
// multigrid solve paths: the forward-substitution vector plus the
// per-level multigrid buffers (grown lazily on first SolveMultigrid).
// One per worker; never shared between concurrent solves.
type SolveScratch struct {
	y  []float64
	mg *mgScratch
}

// solveBand solves the factored system L·D·Lᵀ·v = b in the raw mesh
// units (mV against mA injections): the forward sweep lands in y, the
// diagonal scale and backward sweep in v. b and v may alias. Both the
// user-facing SolveFactored and the multigrid coarse-grid solve run
// through here.
func (f *Factorization) solveBand(b, v, y []float64) {
	nn, bw := f.nn, f.bw
	// Forward sweep: L·y = b (unit lower triangular, banded).
	for i := 0; i < nn; i++ {
		s := b[i]
		omax := i
		if omax > bw {
			omax = bw
		}
		li := f.l[i*bw:]
		for o := 1; o <= omax; o++ {
			s -= li[o-1] * y[i-o]
		}
		y[i] = s
	}
	// Diagonal + backward sweep: Lᵀ·v = D⁻¹·y.
	for i := nn - 1; i >= 0; i-- {
		s := y[i] / f.d[i]
		omax := nn - 1 - i
		if omax > bw {
			omax = bw
		}
		for o := 1; o <= omax; o++ {
			s -= f.l[(i+o)*bw+(o-1)] * v[i+o]
		}
		v[i] = s
	}
}

// SolveFactored solves G·v = I for a per-node current injection (mA)
// using the grid's cached banded LDLᵀ factorization — two O(n³)
// triangular sweeps instead of an SOR iteration, and exact to rounding
// rather than to an iteration tolerance. Inputs and outputs match Solve
// (drops in volts, Iterations reported as 1).
//
// reuse, when non-nil, recycles a previous Solution's Drop buffer;
// scratch, when non-nil, recycles the forward-substitution vector. Both
// are per-caller state: a single Factorization may serve any number of
// concurrent SolveFactored calls as long as each goroutine passes its
// own reuse/scratch.
func (g *Grid) SolveFactored(injMA []float64, reuse *Solution, scratch *SolveScratch) (*Solution, error) {
	f, err := g.Factor()
	if err != nil {
		return nil, err
	}
	nn := f.nn
	if len(injMA) != nn {
		return nil, fmt.Errorf("pgrid: injection length %d, want %d", len(injMA), nn)
	}
	sol := reuse
	if sol == nil || cap(sol.Drop) < nn {
		sol = &Solution{Drop: make([]float64, nn)}
	}
	sol.N = f.n
	sol.Drop = sol.Drop[:nn]
	sol.Iterations = 1
	sol.Worst = 0
	if scratch == nil {
		scratch = &SolveScratch{}
	}
	if cap(scratch.y) < nn {
		scratch.y = make([]float64, nn)
	}
	y := scratch.y[:nn]

	// The two banded sweeps produce the raw solution in mV (conductances
	// in 1/Ω against mA); convert to volts in a final pass that also
	// finds the worst drop, mirroring SolveWarm.
	v := sol.Drop
	f.solveBand(injMA, v, y)
	for i := range v {
		v[i] *= 1e-3 // mV -> V
		if v[i] > sol.Worst {
			sol.Worst = v[i]
		}
	}
	cFactSolves.Add(1)
	cFactSweeps.Add(2)
	return sol, nil
}
