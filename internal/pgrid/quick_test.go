package pgrid

import (
	"math"
	"testing"
	"testing/quick"

	"scap/internal/place"
)

// smallGrid builds a low-resolution mesh for fast property checks.
func smallGrid(t *testing.T) *Grid {
	t.Helper()
	p := DefaultParams()
	p.N = 10
	p.Tol = 1e-9
	g, err := New(place.NewFloorplan(), p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestQuickSuperposition: the mesh is linear, so the solution of a sum of
// injections equals the sum of solutions.
func TestQuickSuperposition(t *testing.T) {
	g := smallGrid(t)
	n := g.P.N * g.P.N
	f := func(seedA, seedB uint32, ia, ib uint16) bool {
		injA := make([]float64, n)
		injB := make([]float64, n)
		injA[int(ia)%n] = 1 + float64(seedA%100)
		injB[int(ib)%n] = 1 + float64(seedB%100)
		both := make([]float64, n)
		for i := range both {
			both[i] = injA[i] + injB[i]
		}
		sa, err := g.Solve(injA)
		if err != nil {
			return false
		}
		sb, err := g.Solve(injB)
		if err != nil {
			return false
		}
		sc, err := g.Solve(both)
		if err != nil {
			return false
		}
		for i := range sc.Drop {
			want := sa.Drop[i] + sb.Drop[i]
			if math.Abs(sc.Drop[i]-want) > 1e-4*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDropNonNegativeAndBounded: any non-negative injection yields
// non-negative drops bounded by total current times the worst-case path
// resistance.
func TestQuickDropNonNegativeAndBounded(t *testing.T) {
	g := smallGrid(t)
	n := g.P.N * g.P.N
	bound := float64(2*g.P.N)*g.P.SegRes + g.P.PadRes // generous series bound, Ω
	f := func(picks [6]uint16, amps [6]uint8) bool {
		inj := make([]float64, n)
		total := 0.0
		for i, p := range picks {
			a := float64(amps[i]%50) + 1
			inj[int(p)%n] += a
			total += a
		}
		sol, err := g.Solve(inj)
		if err != nil {
			return false
		}
		for _, d := range sol.Drop {
			if d < 0 || d > total*bound*1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickThreeSolverTriangle closes the solver triangle on randomized
// meshes: banded-vs-sparse, banded-vs-SOR, and sparse-vs-SOR must all
// agree within 1e-9 V on every node, including the degenerate edge
// sizes n=1,2,3 the nested-dissection recursion bottoms out on.
func TestQuickThreeSolverTriangle(t *testing.T) {
	const tol = 1e-9
	f := func(seed uint32, nPick uint8, picks [4]uint16, amps [4]uint8) bool {
		// Bias toward the tiny edge sizes, then sample up to 12.
		sizes := []int{1, 2, 3, 4, 5, 6, 8, 10, 12}
		p := DefaultParams()
		p.N = sizes[int(nPick)%len(sizes)]
		p.Tol = 1e-13
		p.MaxIter = 400000
		g, err := New(place.NewFloorplan(), p)
		if err != nil {
			return false
		}
		nn := p.N * p.N
		inj := make([]float64, nn)
		for i, pk := range picks {
			inj[int(pk)%nn] += float64(amps[i]%40) + 1 + float64(seed%7)
		}
		banded, err := g.SolveFactored(inj, nil, nil)
		if err != nil {
			return false
		}
		sparse, err := g.SolveSparse(inj, nil, nil)
		if err != nil {
			return false
		}
		sor, err := g.Solve(inj)
		if err != nil {
			return false
		}
		for i := range banded.Drop {
			if math.Abs(banded.Drop[i]-sparse.Drop[i]) > tol ||
				math.Abs(banded.Drop[i]-sor.Drop[i]) > tol ||
				math.Abs(sparse.Drop[i]-sor.Drop[i]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMonotoneInCurrent: adding current anywhere never lowers any
// node's drop.
func TestQuickMonotoneInCurrent(t *testing.T) {
	g := smallGrid(t)
	n := g.P.N * g.P.N
	f := func(base uint16, extra uint16) bool {
		injA := make([]float64, n)
		injA[int(base)%n] = 10
		injB := append([]float64(nil), injA...)
		injB[int(extra)%n] += 5
		sa, err := g.Solve(injA)
		if err != nil {
			return false
		}
		sb, err := g.Solve(injB)
		if err != nil {
			return false
		}
		for i := range sa.Drop {
			if sb.Drop[i] < sa.Drop[i]-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
