package pgrid

import (
	"math"
	"testing"
	"testing/quick"

	"scap/internal/place"
)

// smallGrid builds a low-resolution mesh for fast property checks.
func smallGrid(t *testing.T) *Grid {
	t.Helper()
	p := DefaultParams()
	p.N = 10
	p.Tol = 1e-9
	g, err := New(place.NewFloorplan(), p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestQuickSuperposition: the mesh is linear, so the solution of a sum of
// injections equals the sum of solutions.
func TestQuickSuperposition(t *testing.T) {
	g := smallGrid(t)
	n := g.P.N * g.P.N
	f := func(seedA, seedB uint32, ia, ib uint16) bool {
		injA := make([]float64, n)
		injB := make([]float64, n)
		injA[int(ia)%n] = 1 + float64(seedA%100)
		injB[int(ib)%n] = 1 + float64(seedB%100)
		both := make([]float64, n)
		for i := range both {
			both[i] = injA[i] + injB[i]
		}
		sa, err := g.Solve(injA)
		if err != nil {
			return false
		}
		sb, err := g.Solve(injB)
		if err != nil {
			return false
		}
		sc, err := g.Solve(both)
		if err != nil {
			return false
		}
		for i := range sc.Drop {
			want := sa.Drop[i] + sb.Drop[i]
			if math.Abs(sc.Drop[i]-want) > 1e-4*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDropNonNegativeAndBounded: any non-negative injection yields
// non-negative drops bounded by total current times the worst-case path
// resistance.
func TestQuickDropNonNegativeAndBounded(t *testing.T) {
	g := smallGrid(t)
	n := g.P.N * g.P.N
	bound := float64(2*g.P.N)*g.P.SegRes + g.P.PadRes // generous series bound, Ω
	f := func(picks [6]uint16, amps [6]uint8) bool {
		inj := make([]float64, n)
		total := 0.0
		for i, p := range picks {
			a := float64(amps[i]%50) + 1
			inj[int(p)%n] += a
			total += a
		}
		sol, err := g.Solve(inj)
		if err != nil {
			return false
		}
		for _, d := range sol.Drop {
			if d < 0 || d > total*bound*1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMonotoneInCurrent: adding current anywhere never lowers any
// node's drop.
func TestQuickMonotoneInCurrent(t *testing.T) {
	g := smallGrid(t)
	n := g.P.N * g.P.N
	f := func(base uint16, extra uint16) bool {
		injA := make([]float64, n)
		injA[int(base)%n] = 10
		injB := append([]float64(nil), injA...)
		injB[int(extra)%n] += 5
		sa, err := g.Solve(injA)
		if err != nil {
			return false
		}
		sb, err := g.Solve(injB)
		if err != nil {
			return false
		}
		for i := range sa.Drop {
			if sb.Drop[i] < sa.Drop[i]-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
