package pgrid

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"scap/internal/obs"
	"scap/internal/parallel"
)

// Sparse-tier observability, mirroring the pgrid.factor.* family: calls
// vs builds distinguishes cache hits, each SolveSparse is exactly two
// sparse triangular sweeps, and the one-time build records the symbolic
// fill (factor nnz, fill ratio) the ordering achieved.
var (
	cSparseCalls  = obs.NewCounter("pgrid.sparse.factor.calls")
	cSparseBuild  = obs.NewCounter("pgrid.sparse.factor.builds")
	cSparseSolves = obs.NewCounter("pgrid.sparse.solves")
	cSparseSweeps = obs.NewCounter("pgrid.sparse.triangular_sweeps")
	gSparseNNZ    = obs.NewGauge("pgrid.sparse.factor_nnz")
	hSparseFill   = obs.NewHistogram("pgrid.sparse.fill_ratio")
	// Subtree utilization of the parallel numeric pass: row chunks
	// eliminated (one per recursion-tree node) vs chunks handed to a
	// spawned goroutine.
	cSubtreeTasks  = obs.NewCounter("pgrid.sparse.factor_subtree_tasks")
	cSubtreeSpawns = obs.NewCounter("pgrid.sparse.factor_subtree_spawns")
)

func init() {
	obs.RegisterDerived("pgrid.sparse.factor.cache_hits", func(c map[string]int64) (float64, bool) {
		calls, builds := c["pgrid.sparse.factor.calls"], c["pgrid.sparse.factor.builds"]
		return float64(calls - builds), calls > 0
	})
	obs.RegisterDerived("pgrid.sparse.factor_subtree_parallel_frac", func(c map[string]int64) (float64, bool) {
		tasks, spawns := c["pgrid.sparse.factor_subtree_tasks"], c["pgrid.sparse.factor_subtree_spawns"]
		if tasks <= 0 {
			return 0, false
		}
		return float64(spawns) / float64(tasks), true
	})
}

// Ordering is a fill-reducing elimination order of the n×n mesh nodes:
// Perm[k] is the original node eliminated k-th, IPerm its inverse
// (IPerm[node] = elimination position). Both are full permutations of
// [0, n·n).
type Ordering struct {
	N     int
	Perm  []int32
	IPerm []int32
	// tree is the nested-dissection recursion tree over elimination
	// positions, appended post-order (the root is tree[len(tree)-1]).
	// The parallel numeric factorization fans out over its independent
	// subtrees.
	tree []ndSpan
}

// ndSpan is one node of the nested-dissection recursion tree, expressed
// in elimination positions: the subtree owns rows [lo, hi); its two
// child regions cover [lo, sep) and are mutually independent (their
// mesh nodes touch only through the separator), and the separator rows
// [sep, hi) are eliminated after both children. A base-case leaf has
// left = right = -1 and sep = lo: all its rows run serially.
type ndSpan struct {
	lo, sep, hi int32
	left, right int32 // indices into Ordering.tree, -1 for a leaf
}

// NestedDissection computes a geometric nested-dissection ordering of
// the n×n mesh graph by recursive separator bisection: split the longer
// side of a rectangular region with a one-node-wide separator line,
// order both halves recursively, and number the separator last. On the
// 5-point mesh the grid structure *is* the graph, so the geometric
// separators are exact (no graph partitioner needed) and the classic
// George result applies: the Cholesky factor fills in at O(N·logN)
// nonzeros and factors in O(N^1.5) flops for N = n² nodes — against
// O(N^1.5) storage and O(N²) flops for the banded elimination.
func NestedDissection(n int) *Ordering {
	o := &Ordering{
		N:     n,
		Perm:  make([]int32, 0, n*n),
		IPerm: make([]int32, n*n),
	}
	var rec func(x0, y0, w, h int) int32
	rec = func(x0, y0, w, h int) int32 {
		if w <= 0 || h <= 0 {
			return -1
		}
		lo := int32(len(o.Perm))
		// Base case: thin or tiny regions take a natural banded order
		// with the shorter side fastest-varying (half-bandwidth ≤
		// min(w, h) inside the region, so no separator could do better).
		if w <= 2 || h <= 2 || w*h <= 12 {
			if w <= h {
				for y := y0; y < y0+h; y++ {
					for x := x0; x < x0+w; x++ {
						o.Perm = append(o.Perm, int32(y*n+x))
					}
				}
			} else {
				for x := x0; x < x0+w; x++ {
					for y := y0; y < y0+h; y++ {
						o.Perm = append(o.Perm, int32(y*n+x))
					}
				}
			}
			o.tree = append(o.tree, ndSpan{
				lo: lo, sep: lo, hi: int32(len(o.Perm)), left: -1, right: -1,
			})
			return int32(len(o.tree) - 1)
		}
		var left, right int32
		if w >= h {
			mid := x0 + w/2
			left = rec(x0, y0, mid-x0, h)
			right = rec(mid+1, y0, x0+w-mid-1, h)
			sep := int32(len(o.Perm))
			for y := y0; y < y0+h; y++ {
				o.Perm = append(o.Perm, int32(y*n+mid))
			}
			o.tree = append(o.tree, ndSpan{
				lo: lo, sep: sep, hi: int32(len(o.Perm)), left: left, right: right,
			})
		} else {
			mid := y0 + h/2
			left = rec(x0, y0, w, mid-y0)
			right = rec(x0, mid+1, w, y0+h-mid-1)
			sep := int32(len(o.Perm))
			for x := x0; x < x0+w; x++ {
				o.Perm = append(o.Perm, int32(mid*n+x))
			}
			o.tree = append(o.tree, ndSpan{
				lo: lo, sep: sep, hi: int32(len(o.Perm)), left: left, right: right,
			})
		}
		return int32(len(o.tree) - 1)
	}
	rec(0, 0, n, n)
	for k, node := range o.Perm {
		o.IPerm[node] = int32(k)
	}
	return o
}

// SparseFactorization is the sparse LDLᵀ (root-free Cholesky)
// factorization of the mesh conductance matrix under a nested-dissection
// permutation: P·G·Pᵀ = L·D·Lᵀ with L unit lower triangular, stored
// compressed by columns. Unlike the banded factor, storage follows the
// true fill pattern computed by a symbolic pass over the elimination
// tree, so factor memory is O(N·logN) instead of O(N^1.5).
//
// G depends only on the mesh topology and resistances, never on the
// injection, so both the symbolic and the numeric factorization happen
// once per Grid; after construction a SparseFactorization is immutable
// and safe for concurrent use by any number of goroutines (each solve
// writes only caller-owned buffers).
type SparseFactorization struct {
	n   int // mesh edge: n×n nodes
	nn  int // node count n·n
	ord *Ordering
	// L in compressed-sparse-column form, diagonal (all ones) implicit:
	// column j's sub-diagonal entries are rowIdx/lx[colPtr[j]:colPtr[j+1]],
	// rows strictly ascending.
	colPtr []int64
	rowIdx []int32
	lx     []float64
	d      []float64 // diagonal of D, in mesh conductance units (1/Ω)

	nnzA int64 // nonzeros of tril(G) incl. diagonal (for the fill ratio)
}

// NNZ returns the factor's stored nonzero count: the strictly-lower
// entries of L plus the diagonal of D.
func (f *SparseFactorization) NNZ() int64 { return int64(len(f.lx)) + int64(f.nn) }

// FillRatio returns NNZ divided by the nonzeros of the lower triangle of
// G (diagonal included): 1.0 would mean the ordering produced no fill at
// all.
func (f *SparseFactorization) FillRatio() float64 { return float64(f.NNZ()) / float64(f.nnzA) }

// Ordering returns the nested-dissection permutation the factorization
// was computed under.
func (f *SparseFactorization) Ordering() *Ordering { return f.ord }

// SparseFactor returns the grid's cached sparse LDLᵀ factorization,
// computing it on first use. Like Factor, the computation is guarded by
// a sync.Once: concurrent first callers block until one factorization
// exists and then share it read-only.
func (g *Grid) SparseFactor() (*SparseFactorization, error) {
	cSparseCalls.Add(1)
	g.sparseOnce.Do(func() {
		cSparseBuild.Add(1)
		g.sparse, g.sparseErr = sparseFactorize(g)
	})
	return g.sparse, g.sparseErr
}

// sparseFactorize runs the three build stages — ordering, symbolic,
// numeric — and records their spans and the achieved fill.
func sparseFactorize(g *Grid) (*SparseFactorization, error) {
	defer obs.StartSpan("sparse-factor").End()
	n := g.P.N
	nn := n * n
	f := &SparseFactorization{n: n, nn: nn, d: make([]float64, nn)}

	ordSpan := obs.StartSpan("sparse-ordering")
	f.ord = NestedDissection(n)
	ordSpan.End()

	// Assemble the upper triangle of A = P·G·Pᵀ compressed by columns
	// (diagonal included): column k holds the couplings of node Perm[k]
	// to its already-eliminated mesh neighbours. The 5-point stencil
	// caps each column at 4 off-diagonals + diagonal.
	perm, iperm := f.ord.Perm, f.ord.IPerm
	gseg := 1 / g.P.SegRes
	ap := make([]int64, nn+1)
	ai := make([]int32, 0, 5*nn)
	ax := make([]float64, 0, 5*nn)
	var nnzA int64
	for k := 0; k < nn; k++ {
		node := int(perm[k])
		ix, iy := node%n, node/n
		diag := g.padG[node]
		couple := func(nb int) {
			diag += gseg
			if j := iperm[nb]; int(j) < k {
				ai = append(ai, j)
				ax = append(ax, -gseg)
			}
		}
		if ix > 0 {
			couple(node - 1)
		}
		if ix < n-1 {
			couple(node + 1)
		}
		if iy > 0 {
			couple(node - n)
		}
		if iy < n-1 {
			couple(node + n)
		}
		ai = append(ai, int32(k))
		ax = append(ax, diag)
		ap[k+1] = int64(len(ai))
		nnzA += ap[k+1] - ap[k] // tril(G) nnz == triu(PGPᵀ) nnz by symmetry
	}
	f.nnzA = nnzA

	// Symbolic pass (up-looking, after Davis's LDL): walk each column's
	// entries up the elimination tree, discovering parents and counting
	// the exact per-column fill of L in O(nnz(L)) time.
	symSpan := obs.StartSpan("sparse-symbolic")
	parent := make([]int32, nn)
	flag := make([]int32, nn)
	lnz := make([]int64, nn)
	for k := 0; k < nn; k++ {
		parent[k] = -1
		flag[k] = int32(k)
		for p := ap[k]; p < ap[k+1]; p++ {
			i := ai[p]
			for int(i) < k && flag[i] != int32(k) {
				if parent[i] == -1 {
					parent[i] = int32(k)
				}
				lnz[i]++
				flag[i] = int32(k)
				i = parent[i]
			}
		}
	}
	f.colPtr = make([]int64, nn+1)
	for k := 0; k < nn; k++ {
		f.colPtr[k+1] = f.colPtr[k] + lnz[k]
	}
	nnzL := f.colPtr[nn]
	if nnzL+int64(nn) > math.MaxInt32 {
		return nil, fmt.Errorf("pgrid: sparse factor nnz %d exceeds int32 indexing", nnzL)
	}
	symSpan.End()

	// Numeric pass: compute L and D column by column, fanned out over the
	// independent nested-dissection subtrees (see numericFactor).
	numSpan := obs.StartSpan("sparse-numeric")
	f.rowIdx = make([]int32, nnzL)
	f.lx = make([]float64, nnzL)
	if err := f.numericFactor(g.P.Workers, ap, ai, ax, parent); err != nil {
		return nil, err
	}
	numSpan.End()

	gSparseNNZ.Max(f.NNZ())
	hSparseFill.Observe(f.FillRatio())
	obs.SetRunInfo("sparse_factor_nnz", f.NNZ())
	obs.SetRunInfo("sparse_fill_ratio", math.Round(f.FillRatio()*1000)/1000)
	return f, nil
}

// factorScratch is the dense working set of one in-flight subtree task
// of the numeric factorization: the row accumulator, the etree-walk
// pattern stack, and the visited-stamp array. Pooled across tasks; y
// is kept zeroed by the elimination loop itself (entries are zeroed as
// they are consumed), and flag needs no reset because stamps are global
// row indices — each row is eliminated exactly once, so a stale stamp
// can never equal a live one (row 0, the zero value, has an empty walk).
type factorScratch struct {
	y       []float64
	pattern []int32
	flag    []int32
}

// sparseSubtreeMinRows is the smallest child subtree worth handing to
// its own goroutine; below it the spawn overhead beats the elimination
// work. Purely a scheduling choice — the factor is bit-identical for
// any worker count because independent subtrees own disjoint column
// ranges (a child row's etree walk stops before any separator index).
const sparseSubtreeMinRows = 2048

// numericFactor runs the numeric elimination over the nested-dissection
// recursion tree: the two child regions of every separator are
// numerically independent (their columns are referenced by no row
// outside their own subtree until the separator rows, which run after
// both children join), so sibling subtrees factor in parallel across
// goroutines, bounded by the workers knob. Shared state is written
// disjointly: rows of L land in column slots owned by the writing
// subtree, and d/next entries belong to exactly one subtree.
func (f *SparseFactorization) numericFactor(workers int, ap []int64, ai []int32, ax []float64, parent []int32) error {
	nn := f.nn
	workers = parallel.Resolve(workers)
	next := make([]int64, nn) // next free slot per column of L
	copy(next, f.colPtr[:nn])

	pool := sync.Pool{New: func() any {
		return &factorScratch{
			y:       make([]float64, nn),
			pattern: make([]int32, nn),
			flag:    make([]int32, nn),
		}
	}}

	// The first failed row in elimination order wins, so the reported
	// error is schedule-independent.
	var (
		errMu   sync.Mutex
		errRow  = int32(math.MaxInt32)
		nodeErr error
	)
	fail := func(k int32, err error) {
		errMu.Lock()
		if k < errRow {
			errRow, nodeErr = k, err
		}
		errMu.Unlock()
	}

	perm := f.ord.Perm
	// rows eliminates rows [k0, k1): each is a sparse triangular solve
	// whose pattern is an etree walk, with y zeroed back as entries are
	// consumed so a task is O(flops) with no per-row allocation.
	rows := func(scr *factorScratch, k0, k1 int32) {
		y, pattern, flag := scr.y, scr.pattern, scr.flag
		for k := int(k0); k < int(k1); k++ {
			top := nn
			flag[k] = int32(k)
			for p := ap[k]; p < ap[k+1]; p++ {
				i := ai[p]
				y[i] += ax[p]
				ln := 0
				for flag[i] != int32(k) {
					pattern[ln] = i
					ln++
					flag[i] = int32(k)
					i = parent[i]
				}
				for ln > 0 {
					ln--
					top--
					pattern[top] = pattern[ln]
				}
			}
			dk := y[k]
			y[k] = 0
			for ; top < nn; top++ {
				i := pattern[top]
				yi := y[i]
				y[i] = 0
				p2 := next[i]
				for p := f.colPtr[i]; p < p2; p++ {
					y[f.rowIdx[p]] -= f.lx[p] * yi
				}
				lki := yi / f.d[i]
				dk -= lki * yi
				f.rowIdx[p2] = int32(k)
				f.lx[p2] = lki
				next[i] = p2 + 1
			}
			if dk <= 0 {
				fail(int32(k), fmt.Errorf("pgrid: mesh matrix not positive definite at node %d (no pad path?)", perm[k]))
				return
			}
			f.d[k] = dk
		}
	}

	// Fan out down the recursion tree: spawn the left child while the
	// right runs inline, to a depth that keeps roughly 2× workers tasks
	// in flight; small children stay inline.
	spawnDepth := bits.Len(uint(workers))
	tree := f.ord.tree
	var walk func(idx int32, depth int)
	walk = func(idx int32, depth int) {
		nd := tree[idx]
		cSubtreeTasks.Add(1)
		if nd.left >= 0 {
			l, r := tree[nd.left], tree[nd.right]
			if workers > 1 && depth < spawnDepth &&
				l.hi-l.lo >= sparseSubtreeMinRows && r.hi-r.lo >= sparseSubtreeMinRows {
				cSubtreeSpawns.Add(1)
				var wg sync.WaitGroup
				wg.Add(1)
				go func() {
					defer wg.Done()
					walk(nd.left, depth+1)
				}()
				walk(nd.right, depth+1)
				wg.Wait()
			} else {
				walk(nd.left, depth+1)
				walk(nd.right, depth+1)
			}
		}
		if nd.sep == nd.hi {
			return
		}
		scr := pool.Get().(*factorScratch)
		rows(scr, nd.sep, nd.hi)
		pool.Put(scr)
	}
	walk(int32(len(tree)-1), 0)
	return nodeErr
}

// SolveSparse solves G·v = I for a per-node current injection (mA)
// using the grid's cached sparse LDLᵀ factorization — two sparse
// triangular sweeps over the O(N·logN) factor instead of the banded
// path's O(N^1.5) sweeps, and exact to rounding like SolveFactored.
// Inputs and outputs match Solve (drops in volts, Iterations reported
// as 1).
//
// reuse, when non-nil, recycles a previous Solution's Drop buffer;
// scratch, when non-nil, recycles the permuted work vector. Both are
// per-caller state: one SparseFactorization serves any number of
// concurrent SolveSparse calls as long as each goroutine passes its own
// reuse/scratch, and the steady-state hot path performs no allocation.
func (g *Grid) SolveSparse(injMA []float64, reuse *Solution, scratch *SolveScratch) (*Solution, error) {
	f, err := g.SparseFactor()
	if err != nil {
		return nil, err
	}
	nn := f.nn
	if len(injMA) != nn {
		return nil, fmt.Errorf("pgrid: injection length %d, want %d", len(injMA), nn)
	}
	sol := reuse
	if sol == nil || cap(sol.Drop) < nn {
		sol = &Solution{Drop: make([]float64, nn)}
	}
	sol.N = f.n
	sol.Drop = sol.Drop[:nn]
	sol.Iterations = 1
	sol.Worst = 0
	if scratch == nil {
		scratch = &SolveScratch{}
	}
	if cap(scratch.y) < nn {
		scratch.y = make([]float64, nn)
	}
	y := scratch.y[:nn]

	// Permute the injection into elimination order, then run the three
	// in-place passes: L·y = P·I (unit lower, column-oriented scatter),
	// the diagonal scale, and Lᵀ·z = y (gather). The raw solution is in
	// mV (conductances in 1/Ω against mA).
	perm := f.ord.Perm
	for k := 0; k < nn; k++ {
		y[k] = injMA[perm[k]]
	}
	for j := 0; j < nn; j++ {
		yj := y[j]
		if yj == 0 {
			continue
		}
		for p := f.colPtr[j]; p < f.colPtr[j+1]; p++ {
			y[f.rowIdx[p]] -= f.lx[p] * yj
		}
	}
	for j := 0; j < nn; j++ {
		y[j] /= f.d[j]
	}
	for j := nn - 1; j >= 0; j-- {
		s := y[j]
		for p := f.colPtr[j]; p < f.colPtr[j+1]; p++ {
			s -= f.lx[p] * y[f.rowIdx[p]]
		}
		y[j] = s
	}
	// Scatter back to mesh order with the mV→V conversion and the
	// worst-drop scan, mirroring SolveFactored's final pass.
	v := sol.Drop
	for k := 0; k < nn; k++ {
		d := y[k] * 1e-3
		v[perm[k]] = d
		if d > sol.Worst {
			sol.Worst = d
		}
	}
	cSparseSolves.Add(1)
	cSparseSweeps.Add(2)
	return sol, nil
}
