package pgrid

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"scap/internal/place"
)

// TestNestedDissectionRoundTrip: for every mesh edge (including the
// degenerate 1..3 sizes the recursion must bottom out on), the ordering
// is a true permutation and Perm/IPerm invert each other.
func TestNestedDissectionRoundTrip(t *testing.T) {
	for n := 1; n <= 40; n++ {
		o := NestedDissection(n)
		nn := n * n
		if len(o.Perm) != nn || len(o.IPerm) != nn {
			t.Fatalf("n=%d: perm length %d / iperm length %d, want %d", n, len(o.Perm), len(o.IPerm), nn)
		}
		seen := make([]bool, nn)
		for k, node := range o.Perm {
			if node < 0 || int(node) >= nn {
				t.Fatalf("n=%d: perm[%d] = %d out of range", n, k, node)
			}
			if seen[node] {
				t.Fatalf("n=%d: node %d ordered twice", n, node)
			}
			seen[node] = true
			if o.IPerm[node] != int32(k) {
				t.Fatalf("n=%d: iperm[perm[%d]] = %d, want %d", n, k, o.IPerm[node], k)
			}
		}
	}
}

// TestSparseMatchesOracles cross-validates the sparse tier against the
// banded factorization and the dense Gaussian oracle on randomized
// meshes (the same regime as TestSolveFactoredPropertyEquivalence).
func TestSparseMatchesOracles(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const tol = 1e-9
	for trial := 0; trial < 25; trial++ {
		g := randGrid(t, rng)
		inj := randInj(g, rng)
		sp, err := g.SolveSparse(inj, nil, nil)
		if err != nil {
			t.Fatalf("trial %d: sparse: %v", trial, err)
		}
		fac, err := g.SolveFactored(inj, nil, nil)
		if err != nil {
			t.Fatalf("trial %d: factored: %v", trial, err)
		}
		direct, err := g.SolveDirect(inj)
		if err != nil {
			t.Fatalf("trial %d: direct: %v", trial, err)
		}
		for i := range sp.Drop {
			if d := math.Abs(sp.Drop[i] - fac.Drop[i]); d > tol {
				t.Fatalf("trial %d node %d: sparse %v vs factored %v (N=%d)",
					trial, i, sp.Drop[i], fac.Drop[i], g.P.N)
			}
			if d := math.Abs(sp.Drop[i] - direct.Drop[i]); d > tol {
				t.Fatalf("trial %d node %d: sparse %v vs direct %v (N=%d)",
					trial, i, sp.Drop[i], direct.Drop[i], g.P.N)
			}
		}
		if d := math.Abs(sp.Worst - fac.Worst); d > tol {
			t.Fatalf("trial %d: worst sparse %v vs factored %v", trial, sp.Worst, fac.Worst)
		}
	}
}

// TestSparseFactorStats: the symbolic fill bookkeeping must be
// internally consistent, and the nested-dissection fill must stay far
// below the banded factor's N³ storage at a representative size.
func TestSparseFactorStats(t *testing.T) {
	p := DefaultParams()
	p.N = 48
	g, err := New(place.NewFloorplan(), p)
	if err != nil {
		t.Fatal(err)
	}
	f, err := g.SparseFactor()
	if err != nil {
		t.Fatal(err)
	}
	nn := int64(p.N * p.N)
	if f.NNZ() < nn {
		t.Fatalf("factor nnz %d below node count %d", f.NNZ(), nn)
	}
	if f.FillRatio() < 1 {
		t.Fatalf("fill ratio %v below 1", f.FillRatio())
	}
	banded := nn * int64(p.N) // banded l storage: nn rows × bw floats
	if f.NNZ() >= banded/2 {
		t.Fatalf("sparse fill %d not clearly below banded storage %d", f.NNZ(), banded)
	}
	// Cached: a second call returns the same factorization.
	again, err := g.SparseFactor()
	if err != nil {
		t.Fatal(err)
	}
	if again != f {
		t.Fatal("SparseFactor did not cache")
	}
}

// TestSolveSparseReuseNoAlloc: with caller-owned reuse/scratch the
// per-pattern sparse solve must not allocate — the same contract the
// banded SolveFactored hot path holds.
func TestSolveSparseReuseNoAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randGrid(t, rng)
	inj := randInj(g, rng)
	fresh, err := g.SolveSparse(inj, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol := &Solution{Drop: make([]float64, g.P.N*g.P.N)}
	var scratch SolveScratch
	if _, err := g.SolveSparse(inj, sol, &scratch); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := g.SolveSparse(inj, sol, &scratch); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state SolveSparse allocated %v objects/op, want 0", allocs)
	}
	for i := range fresh.Drop {
		if fresh.Drop[i] != sol.Drop[i] {
			t.Fatalf("node %d: reuse changed the answer: %v vs %v", i, fresh.Drop[i], sol.Drop[i])
		}
	}
	// Undersized reuse must be replaced, not indexed out of range; bad
	// injection lengths must be rejected.
	small, err := g.SolveSparse(inj, &Solution{Drop: make([]float64, 2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(small.Drop) != g.P.N*g.P.N {
		t.Fatalf("undersized reuse left %d nodes", len(small.Drop))
	}
	if _, err := g.SolveSparse(make([]float64, 3), nil, nil); err == nil {
		t.Fatal("bad injection length accepted")
	}
}

// TestSparseFactorizationConcurrentSolves shares one sparse
// factorization across 8 goroutines (first-touch build race included);
// run under -race via `make test-race`, answers must be bit-identical
// to a serial reference, mirroring TestFactorizationConcurrentSolves.
func TestSparseFactorizationConcurrentSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := DefaultParams()
	p.N = 16
	g, err := New(place.NewFloorplan(), p)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const solvesEach = 6
	injs := make([][]float64, goroutines*solvesEach)
	refs := make([][]float64, len(injs))
	for i := range injs {
		injs[i] = randInj(g, rng)
	}
	gRef, err := New(place.NewFloorplan(), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range injs {
		sol, err := gRef.SolveSparse(injs[i], nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = append([]float64(nil), sol.Drop...)
	}

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var scratch SolveScratch
			var sol *Solution
			for s := 0; s < solvesEach; s++ {
				i := w*solvesEach + s
				var err error
				sol, err = g.SolveSparse(injs[i], sol, &scratch)
				if err != nil {
					errs[w] = err
					return
				}
				for node := range sol.Drop {
					if sol.Drop[node] != refs[i][node] {
						t.Errorf("worker %d solve %d node %d: %v vs serial %v",
							w, s, node, sol.Drop[node], refs[i][node])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}

// TestNestedDissectionTreeCoverage: the recorded recursion tree
// partitions the elimination range exactly — every row belongs to
// precisely one node's serial chunk ([sep, hi)), children tile their
// parent's [lo, sep), and the root spans the whole mesh.
func TestNestedDissectionTreeCoverage(t *testing.T) {
	for n := 1; n <= 40; n++ {
		o := NestedDissection(n)
		nn := int32(n * n)
		if len(o.tree) == 0 {
			t.Fatalf("n=%d: empty recursion tree", n)
		}
		root := o.tree[len(o.tree)-1]
		if root.lo != 0 || root.hi != nn {
			t.Fatalf("n=%d: root spans [%d, %d), want [0, %d)", n, root.lo, root.hi, nn)
		}
		covered := make([]int, nn)
		for idx, nd := range o.tree {
			if nd.lo > nd.sep || nd.sep > nd.hi {
				t.Fatalf("n=%d node %d: bad span lo=%d sep=%d hi=%d", n, idx, nd.lo, nd.sep, nd.hi)
			}
			if (nd.left < 0) != (nd.right < 0) {
				t.Fatalf("n=%d node %d: half-leaf (left=%d right=%d)", n, idx, nd.left, nd.right)
			}
			if nd.left >= 0 {
				l, r := o.tree[nd.left], o.tree[nd.right]
				if l.lo != nd.lo || l.hi != r.lo || r.hi != nd.sep {
					t.Fatalf("n=%d node %d: children [%d,%d) [%d,%d) don't tile [%d,%d)",
						n, idx, l.lo, l.hi, r.lo, r.hi, nd.lo, nd.sep)
				}
			} else if nd.sep != nd.lo {
				t.Fatalf("n=%d node %d: leaf with sep %d != lo %d", n, idx, nd.sep, nd.lo)
			}
			for k := nd.sep; k < nd.hi; k++ {
				covered[k]++
			}
		}
		for k, c := range covered {
			if c != 1 {
				t.Fatalf("n=%d: row %d covered %d times", n, k, c)
			}
		}
	}
}

// TestSparseParallelFactorBitIdentity: the numeric factorization must
// produce a bit-identical factor for any worker count, on a mesh large
// enough that the subtree fan-out actually spawns goroutines.
func TestSparseParallelFactorBitIdentity(t *testing.T) {
	const n = 128 // root children ≈ 8k rows each, above sparseSubtreeMinRows
	factor := func(workers int) *SparseFactorization {
		p := DefaultParams()
		p.N = n
		p.Workers = workers
		g, err := New(place.NewFloorplan(), p)
		if err != nil {
			t.Fatal(err)
		}
		f, err := g.SparseFactor()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	ref := factor(1)
	for _, workers := range []int{2, 4, 7} {
		f := factor(workers)
		if len(f.lx) != len(ref.lx) {
			t.Fatalf("workers=%d: nnz %d != serial %d", workers, len(f.lx), len(ref.lx))
		}
		for i := range f.lx {
			if f.lx[i] != ref.lx[i] || f.rowIdx[i] != ref.rowIdx[i] {
				t.Fatalf("workers=%d: factor entry %d differs (must be bit-identical)", workers, i)
			}
		}
		for i := range f.d {
			if f.d[i] != ref.d[i] {
				t.Fatalf("workers=%d: d[%d] differs (must be bit-identical)", workers, i)
			}
		}
	}
}
