package pgrid

import (
	"math"
	"testing"

	"scap/internal/parasitic"
	"scap/internal/place"
	"scap/internal/power"
	"scap/internal/soc"
)

func grid(t *testing.T) (*Grid, *place.Floorplan) {
	t.Helper()
	fp := place.NewFloorplan()
	g, err := New(fp, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return g, fp
}

func TestZeroCurrentZeroDrop(t *testing.T) {
	g, _ := grid(t)
	sol, err := g.Solve(make([]float64, g.P.N*g.P.N))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range sol.Drop {
		if d != 0 {
			t.Fatal("drop without current")
		}
	}
	if sol.Worst != 0 {
		t.Fatal("worst should be 0")
	}
}

func TestUniformCurrentCenterWorst(t *testing.T) {
	g, fp := grid(t)
	inj := make([]float64, g.P.N*g.P.N)
	for i := range inj {
		inj[i] = 0.02
	}
	sol, err := g.Solve(inj)
	if err != nil {
		t.Fatal(err)
	}
	center := sol.At(g, fp.W/2, fp.H/2)
	corner := sol.At(g, fp.W*0.02, fp.H*0.02)
	if center <= corner {
		t.Fatalf("center drop %v not above corner %v", center, corner)
	}
	if sol.Worst <= 0 {
		t.Fatal("no drop under uniform load")
	}
	for _, d := range sol.Drop {
		if d < 0 {
			t.Fatal("negative drop")
		}
	}
}

func TestLinearity(t *testing.T) {
	g, _ := grid(t)
	inj := make([]float64, g.P.N*g.P.N)
	inj[g.P.N*g.P.N/2+g.P.N/2] = 50
	s1, err := g.Solve(inj)
	if err != nil {
		t.Fatal(err)
	}
	for i := range inj {
		inj[i] *= 2
	}
	s2, err := g.Solve(inj)
	if err != nil {
		t.Fatal(err)
	}
	// SOR solves to a tolerance, so check linearity to 1% relative on the
	// meaningful drops.
	for i := range s1.Drop {
		if s1.Drop[i] < 1e-5 {
			continue
		}
		if math.Abs(s2.Drop[i]-2*s1.Drop[i]) > 0.01*2*s1.Drop[i] {
			t.Fatalf("node %d: doubling current gave %v vs %v", i, s2.Drop[i], 2*s1.Drop[i])
		}
	}
}

func TestPadsSinkCurrent(t *testing.T) {
	// A node adjacent to a pad must see much less drop than the die center
	// under the same local injection.
	g, fp := grid(t)
	injCenter := make([]float64, g.P.N*g.P.N)
	injCenter[g.NodeOf(fp.W/2, fp.H/2)] = 1
	sc, err := g.Solve(injCenter)
	if err != nil {
		t.Fatal(err)
	}
	injEdge := make([]float64, g.P.N*g.P.N)
	injEdge[g.NodeOf(0, 0)] = 1
	se, err := g.Solve(injEdge)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Worst <= se.Worst {
		t.Fatalf("center injection (%v) should hurt more than corner (%v)", sc.Worst, se.Worst)
	}
}

func TestSolveValidation(t *testing.T) {
	g, _ := grid(t)
	if _, err := g.Solve(make([]float64, 3)); err == nil {
		t.Fatal("wrong injection length accepted")
	}
	bad := DefaultParams()
	bad.N = 0
	if _, err := New(place.NewFloorplan(), bad); err == nil {
		t.Fatal("bad params accepted")
	}
	bad = DefaultParams()
	bad.Omega = 2.5
	if _, err := New(place.NewFloorplan(), bad); err == nil {
		t.Fatal("bad omega accepted")
	}
	bad = DefaultParams()
	bad.MaxIter = 1
	g2, err := New(place.NewFloorplan(), bad)
	if err != nil {
		t.Fatal(err)
	}
	inj := make([]float64, g2.P.N*g2.P.N)
	inj[0] = 1
	if _, err := g2.Solve(inj); err == nil {
		t.Fatal("non-convergence not reported")
	}
}

func TestStatisticalSOCB5Hottest(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := place.Place(d, 1)
	if _, err := parasitic.Extract(d, fp, parasitic.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	g, err := New(fp, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cur := power.StatCurrents(d, 0.3, 10)
	inj := g.InjectInstCurrents(d, cur)
	sol, err := g.Solve(inj)
	if err != nil {
		t.Fatal(err)
	}
	worst := sol.WorstPerBlock(g, d.NumBlocks)
	for b := 0; b < d.NumBlocks; b++ {
		if b != soc.B5 && worst[b] >= worst[soc.B5] {
			t.Fatalf("B%d drop %v >= B5 drop %v", b+1, worst[b], worst[soc.B5])
		}
	}
	if worst[d.NumBlocks] < worst[soc.B5] {
		t.Fatal("chip worst below B5 worst")
	}
	mean := sol.MeanPerBlock(g, d.NumBlocks)
	for b := range mean {
		if mean[b] > worst[b] {
			t.Fatalf("block %d mean %v above worst %v", b, mean[b], worst[b])
		}
	}
	t.Logf("worst drops per block: %v (chip %v)", worst[:d.NumBlocks], worst[d.NumBlocks])
}

func TestNodeMapping(t *testing.T) {
	g, fp := grid(t)
	// NodeOf and NodeXY must roughly invert each other.
	for _, node := range []int{0, 37, g.P.N*g.P.N - 1, g.P.N * 7} {
		x, y := g.NodeXY(node)
		if got := g.NodeOf(x, y); got != node {
			t.Fatalf("node %d -> (%v,%v) -> %d", node, x, y, got)
		}
	}
	// Out-of-range coordinates clamp.
	if g.NodeOf(-5, -5) != 0 {
		t.Fatal("negative coords should clamp to node 0")
	}
	if g.NodeOf(fp.W+10, fp.H+10) != g.P.N*g.P.N-1 {
		t.Fatal("oversized coords should clamp to last node")
	}
}

// TestDirectMatchesSOR cross-validates the two solvers: the iterative SOR
// solution must agree with dense Gaussian elimination to solver tolerance.
func TestDirectMatchesSOR(t *testing.T) {
	fp := place.NewFloorplan()
	p := DefaultParams()
	p.N = 12
	p.Tol = 1e-9
	g, err := New(fp, p)
	if err != nil {
		t.Fatal(err)
	}
	inj := make([]float64, p.N*p.N)
	inj[g.NodeOf(fp.W/2, fp.H/2)] = 40
	inj[g.NodeOf(fp.W/4, fp.H/3)] = 15
	inj[g.NodeOf(fp.W*0.8, fp.H*0.7)] = 25
	sor, err := g.Solve(inj)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := g.SolveDirect(inj)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sor.Drop {
		diff := math.Abs(sor.Drop[i] - direct.Drop[i])
		if diff > 1e-6*(1+direct.Drop[i]) {
			t.Fatalf("node %d: SOR %v vs direct %v", i, sor.Drop[i], direct.Drop[i])
		}
	}
	if math.Abs(sor.Worst-direct.Worst) > 1e-6*(1+direct.Worst) {
		t.Fatalf("worst: SOR %v vs direct %v", sor.Worst, direct.Worst)
	}
}

func TestDirectValidation(t *testing.T) {
	g, _ := grid(t)
	if _, err := g.SolveDirect(make([]float64, 3)); err == nil {
		t.Fatal("bad length accepted")
	}
	// The former 4096-node ceiling is lifted: a mesh above it must build a
	// dense system without erroring on size alone (solving one that large
	// is exercised by the factored/SOR property tests instead — dense
	// elimination at 70×70 is too slow for tier-1).
	big := DefaultParams()
	big.N = 70
	if _, err := New(place.NewFloorplan(), big); err != nil {
		t.Fatal(err)
	}
	if _, err := g.SolveDirect(make([]float64, 70*70)); err == nil {
		t.Fatal("mismatched injection length accepted")
	}
}

// TestSolveWarmMatchesCold: warm-starting from a neighbouring solution
// must converge to the same drops (to solver tolerance) in fewer sweeps.
func TestSolveWarmMatchesCold(t *testing.T) {
	g, fp := grid(t)
	inj := make([]float64, g.P.N*g.P.N)
	inj[g.NodeOf(fp.W/2, fp.H/2)] = 40
	inj[g.NodeOf(fp.W/4, fp.H/3)] = 15
	cold, err := g.Solve(inj)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb the injection slightly: the per-pattern regime.
	inj[g.NodeOf(fp.W/2, fp.H/2)] = 42
	cold2, err := g.Solve(inj)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := g.SolveWarm(inj, cold.Drop, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations >= cold2.Iterations {
		t.Fatalf("warm start took %d iterations, cold %d", warm.Iterations, cold2.Iterations)
	}
	for i := range warm.Drop {
		if diff := math.Abs(warm.Drop[i] - cold2.Drop[i]); diff > 1e-4 {
			t.Fatalf("node %d: warm %v vs cold %v", i, warm.Drop[i], cold2.Drop[i])
		}
	}
	if math.Abs(warm.Worst-cold2.Worst) > 1e-4 {
		t.Fatalf("worst: warm %v vs cold %v", warm.Worst, cold2.Worst)
	}
}

// TestSolveWarmInPlace: warm may alias reuse.Drop (re-solving in the
// previous solution's own buffer), and a converged guess costs exactly
// one verification sweep.
func TestSolveWarmInPlace(t *testing.T) {
	g, fp := grid(t)
	inj := make([]float64, g.P.N*g.P.N)
	inj[g.NodeOf(fp.W/2, fp.H/2)] = 40
	sol, err := g.Solve(inj)
	if err != nil {
		t.Fatal(err)
	}
	coldIters := sol.Iterations
	buf := sol.Drop
	again, err := g.SolveWarm(inj, sol.Drop, sol)
	if err != nil {
		t.Fatal(err)
	}
	if again != sol {
		t.Fatal("reuse Solution not returned")
	}
	if &again.Drop[0] != &buf[0] {
		t.Fatal("Drop buffer was reallocated")
	}
	if again.Iterations != 1 {
		t.Fatalf("re-solving a converged solution took %d sweeps, want 1", again.Iterations)
	}
	if again.Iterations >= coldIters {
		t.Fatalf("warm %d not below cold %d", again.Iterations, coldIters)
	}
	if again.Worst <= 0 {
		t.Fatal("worst lost on reuse")
	}
}

func TestSolveWarmValidation(t *testing.T) {
	g, _ := grid(t)
	inj := make([]float64, g.P.N*g.P.N)
	if _, err := g.SolveWarm(inj, make([]float64, 3), nil); err == nil {
		t.Fatal("bad warm length accepted")
	}
	// Undersized reuse buffer must be replaced, not indexed out of range.
	small := &Solution{Drop: make([]float64, 4)}
	sol, err := g.SolveWarm(inj, nil, small)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Drop) != g.P.N*g.P.N {
		t.Fatalf("reuse solution has %d nodes", len(sol.Drop))
	}
}

func TestInjectInstCurrentsInto(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(96))
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := place.Place(d, 1)
	if _, err := parasitic.Extract(d, fp, parasitic.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	g, err := New(fp, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cur := power.StatCurrents(d, 0.3, 10)
	want := g.InjectInstCurrents(d, cur)
	buf := make([]float64, g.P.N*g.P.N)
	for i := range buf {
		buf[i] = 99 // stale content must be cleared
	}
	got := g.InjectInstCurrentsInto(buf, d, cur)
	if &got[0] != &buf[0] {
		t.Fatal("buffer not reused")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("node %d: %v != %v", i, got[i], want[i])
		}
	}
}
