package pgrid

import (
	"fmt"
	"math"

	"scap/internal/obs"
	"scap/internal/parallel"
)

// Geometric multigrid: the fourth solver tier (see DESIGN.md §16). The
// direct tiers pay factor storage — N³ floats banded, O(N·logN) sparse —
// that eventually bites on million-node meshes; multigrid solves the
// same mesh equation iteratively in O(N) work per V-cycle with nothing
// cached but the coarse-level pad aggregates and one tiny coarse-grid
// factorization.
//
// The hierarchy exploits that every coarsening of the resistive sheet
// is again the same problem: a 2D resistor mesh coarsened 2× has the
// same per-segment conductance (sheet conductance is scale-invariant),
// and the pad conductances aggregate under the full-weighting stencil.
// So a level is just (n, padG) — structurally identical to the fine
// grid — and the smoother, residual and transfer passes share one
// 5-point kernel. The V-cycle uses red-black Gauss-Seidel smoothing
// (each color pass reads only the other color, so row-blocked parallel
// execution is bit-identical for any worker count), full-weighting
// restriction with conservative boundary clamping, bilinear
// prolongation, and a banded LDLᵀ direct solve on the coarsest level.
// Cold solves bootstrap with one full-multigrid (FMG) descent before
// iterating V-cycles to the grid's Tol.

// Multigrid observability, mirroring the factor/sparse families: one
// flush per solve. The residual histogram records the final max node
// update per solve (same semantics as pgrid.sor.final_residual_v).
var (
	cMGSolves   = obs.NewCounter("pgrid.mg.solves")
	cMGCycles   = obs.NewCounter("pgrid.mg.vcycles")
	cMGSweeps   = obs.NewCounter("pgrid.mg.smoother_sweeps")
	hMGResidual = obs.NewHistogram("pgrid.mg.final_residual_v")
	gMGLevels   = obs.NewGauge("pgrid.mg.levels")
)

func init() {
	obs.RegisterDerived("pgrid.mg.cycles_per_solve", func(c map[string]int64) (float64, bool) {
		solves, cycles := c["pgrid.mg.solves"], c["pgrid.mg.vcycles"]
		if solves <= 0 {
			return 0, false
		}
		return float64(cycles) / float64(solves), true
	})
}

const (
	// mgCoarsestN caps the coarsest level's mesh edge: at or below it
	// the level is solved directly by a banded LDLᵀ factorization (at
	// most mgCoarsestN² nodes, a trivial factor). Grids no larger than
	// this get a single-level hierarchy, making SolveMultigrid exact on
	// the degenerate meshes (n=1,2,3, …).
	mgCoarsestN = 16
	// mgPreSweeps/mgPostSweeps are the red-black Gauss-Seidel smoothing
	// sweeps per V-cycle around the coarse-grid correction: V(2,2).
	mgPreSweeps  = 2
	mgPostSweeps = 2
	// mgMaxCycles bounds the top-level V-cycle iteration; a healthy
	// V(2,2) cycle contracts the error ~10× per cycle, so hitting this
	// cap means the hierarchy is broken, not that Tol is tight.
	mgMaxCycles = 256
	// mgParallelMinNodes gates the row-blocked fan-out: levels smaller
	// than this run their passes inline (the pool dispatch would cost
	// more than the pass). Purely a scheduling choice — results are
	// bit-identical either way.
	mgParallelMinNodes = 16384
)

// mgLevel is one grid of the hierarchy: an n×n mesh with the same
// segment conductance as the fine grid and the full-weighting
// aggregate of the pad conductances on its diagonal.
type mgLevel struct {
	n    int
	padG []float64
}

// Multigrid is a built V-cycle hierarchy for one Grid: the level
// operators (coarsened pad aggregates) plus the direct factorization of
// the coarsest level. Like the two direct factorizations it is computed
// once per Grid and immutable afterwards: any number of goroutines may
// run SolveMultigrid concurrently against it as long as each passes its
// own Solution/SolveScratch.
type Multigrid struct {
	levels []mgLevel // levels[0] is the fine grid
	coarse *Factorization
	gseg   float64
}

// Levels returns the hierarchy depth (1 for meshes at or below the
// coarsest-level cap, which are solved directly).
func (m *Multigrid) Levels() int { return len(m.levels) }

// MG returns the grid's cached multigrid hierarchy, building it on
// first use under the same sync.Once discipline as Factor/SparseFactor.
func (g *Grid) MG() (*Multigrid, error) {
	g.mgOnce.Do(func() {
		g.mg, g.mgErr = buildMultigrid(g)
	})
	return g.mg, g.mgErr
}

// buildMultigrid coarsens the mesh 2× per level down to mgCoarsestN and
// factors the coarsest operator.
func buildMultigrid(g *Grid) (*Multigrid, error) {
	defer obs.TraceStart().End("pgrid", "mg-build")
	m := &Multigrid{gseg: 1 / g.P.SegRes}
	m.levels = append(m.levels, mgLevel{n: g.P.N, padG: g.padG})
	for {
		cur := m.levels[len(m.levels)-1]
		if cur.n <= mgCoarsestN {
			break
		}
		nc := (cur.n + 1) / 2
		if nc >= cur.n {
			break
		}
		padGc := make([]float64, nc*nc)
		restrictFW(cur.padG, cur.n, padGc, nc, 1, nil)
		m.levels = append(m.levels, mgLevel{n: nc, padG: padGc})
	}
	bottom := m.levels[len(m.levels)-1]
	f, err := levelFactorize(bottom.n, bottom.padG, m.gseg)
	if err != nil {
		return nil, err
	}
	m.coarse = f
	gMGLevels.Max(int64(len(m.levels)))
	obs.SetRunInfo("mg_levels", len(m.levels))
	return m, nil
}

// mgScratch is the caller-owned per-solve state of the multigrid path:
// one voltage/rhs/residual triple per level (level 0's voltage is the
// Solution.Drop buffer and its rhs aliases the injection), the coarse
// solve's forward vector, and the per-block maxima of the tracked
// final smoothing sweep.
type mgScratch struct {
	v, rhs, res [][]float64
	coarseY     []float64
	blockMax    []float64
	sweeps      int64
}

// grow sizes the scratch for hierarchy m (idempotent).
func (s *mgScratch) grow(m *Multigrid) {
	depth := len(m.levels)
	if len(s.v) < depth {
		s.v = make([][]float64, depth)
		s.rhs = make([][]float64, depth)
		s.res = make([][]float64, depth)
	}
	for l := 1; l < depth; l++ {
		nn := m.levels[l].n * m.levels[l].n
		if cap(s.v[l]) < nn {
			s.v[l] = make([]float64, nn)
			s.rhs[l] = make([]float64, nn)
		}
		s.v[l] = s.v[l][:nn]
		s.rhs[l] = s.rhs[l][:nn]
	}
	for l := 0; l < depth-1; l++ {
		nn := m.levels[l].n * m.levels[l].n
		if cap(s.res[l]) < nn {
			s.res[l] = make([]float64, nn)
		}
		s.res[l] = s.res[l][:nn]
	}
	cn := m.coarse.nn
	if cap(s.coarseY) < cn {
		s.coarseY = make([]float64, cn)
	}
	s.coarseY = s.coarseY[:cn]
}

// mgBlocks partitions an n-row pass over nodes total nodes into
// row blocks for the worker pool; (1, n) means "run inline".
func mgBlocks(workers, n, nodes int) (blocks, rowsPer int) {
	if workers <= 1 || nodes < mgParallelMinNodes || n < 2 {
		return 1, n
	}
	blocks = 4 * workers
	if blocks > n {
		blocks = n
	}
	rowsPer = (n + blocks - 1) / blocks
	blocks = (n + rowsPer - 1) / rowsPer
	return blocks, rowsPer
}

// mgRows fans body across the row blocks of an n-row pass. Each block
// writes only its own rows' outputs and reads shared inputs, so the
// result is bit-identical for any worker count (the body's per-node
// arithmetic never depends on the partition).
func mgRows(workers, n, nodes int, body func(block, iy0, iy1 int)) {
	blocks, rowsPer := mgBlocks(workers, n, nodes)
	if blocks == 1 {
		body(0, 0, n)
		return
	}
	_ = parallel.For(workers, blocks, func(_, b int) error {
		iy0 := b * rowsPer
		iy1 := iy0 + rowsPer
		if iy1 > n {
			iy1 = n
		}
		body(b, iy0, iy1)
		return nil
	})
}

// rbSweep runs one red-black Gauss-Seidel smoothing sweep (both colors,
// colors strictly in order — a barrier between them) on level lev. When
// track is set it returns the maximum node update of the sweep in mV
// (the convergence measure, same semantics as SOR's per-sweep delta).
func (m *Multigrid) rbSweep(lev, workers int, v, rhs []float64, scr *mgScratch, track bool) float64 {
	n := m.levels[lev].n
	padG := m.levels[lev].padG
	gseg := m.gseg
	nn := n * n
	scr.sweeps++
	blocks, _ := mgBlocks(workers, n, nn)
	if track {
		if cap(scr.blockMax) < blocks {
			scr.blockMax = make([]float64, blocks)
		}
		scr.blockMax = scr.blockMax[:blocks]
		for i := range scr.blockMax {
			scr.blockMax[i] = 0
		}
	}
	for color := 0; color <= 1; color++ {
		mgRows(workers, n, nn, func(block, iy0, iy1 int) {
			maxD := 0.0
			for iy := iy0; iy < iy1; iy++ {
				row := iy * n
				for ix := (color + iy) & 1; ix < n; ix += 2 {
					i := row + ix
					sumG := padG[i]
					sumGV := 0.0
					if ix > 0 {
						sumG += gseg
						sumGV += gseg * v[i-1]
					}
					if ix < n-1 {
						sumG += gseg
						sumGV += gseg * v[i+1]
					}
					if iy > 0 {
						sumG += gseg
						sumGV += gseg * v[i-n]
					}
					if iy < n-1 {
						sumG += gseg
						sumGV += gseg * v[i+n]
					}
					nv := (sumGV + rhs[i]) / sumG
					if track {
						if d := math.Abs(nv - v[i]); d > maxD {
							maxD = d
						}
					}
					v[i] = nv
				}
			}
			if track && maxD > scr.blockMax[block] {
				scr.blockMax[block] = maxD
			}
		})
	}
	if !track {
		return 0
	}
	maxD := 0.0
	for _, d := range scr.blockMax {
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// residual writes res = rhs − A·v on level lev.
func (m *Multigrid) residual(lev, workers int, v, rhs, res []float64) {
	n := m.levels[lev].n
	padG := m.levels[lev].padG
	gseg := m.gseg
	mgRows(workers, n, n*n, func(_, iy0, iy1 int) {
		for iy := iy0; iy < iy1; iy++ {
			row := iy * n
			for ix := 0; ix < n; ix++ {
				i := row + ix
				sumG := padG[i]
				sumGV := 0.0
				if ix > 0 {
					sumG += gseg
					sumGV += gseg * v[i-1]
				}
				if ix < n-1 {
					sumG += gseg
					sumGV += gseg * v[i+1]
				}
				if iy > 0 {
					sumG += gseg
					sumGV += gseg * v[i-n]
				}
				if iy < n-1 {
					sumG += gseg
					sumGV += gseg * v[i+n]
				}
				res[i] = rhs[i] + sumGV - sumG*v[i]
			}
		}
	})
}

// restrictFW restricts fine (n×n) onto coarse (nc×nc) with the
// full-weighting stencil, transposed from the bilinear prolongation
// (R = Pᵀ): center 1, edge ½, corner ¼ — except that a fine odd
// row/column whose second coarse parent falls outside the mesh (the
// dangling boundary of an even n) contributes its full weight to the
// one parent it has, exactly mirroring prolongAdd's clamp. Row sums of
// Pᵀ being preserved means restriction conserves the total injected
// current, so every coarse problem is the same physical sheet with
// aggregated pads and currents.
func restrictFW(fine []float64, n int, coarse []float64, nc, workers int, _ *mgScratch) {
	mgRows(workers, nc, nc*nc, func(_, j0, j1 int) {
		for J := j0; J < j1; J++ {
			fy := 2 * J
			crow := J * nc
			for I := 0; I < nc; I++ {
				fx := 2 * I
				acc := 0.0
				for dy := -1; dy <= 1; dy++ {
					y := fy + dy
					if y < 0 || y >= n {
						continue
					}
					wy := 0.5
					if dy == 0 {
						wy = 1
					} else if dy == 1 && J+1 >= nc {
						wy = 1 // dangling fine row: sole parent
					}
					frow := y * n
					for dx := -1; dx <= 1; dx++ {
						x := fx + dx
						if x < 0 || x >= n {
							continue
						}
						wx := 0.5
						if dx == 0 {
							wx = 1
						} else if dx == 1 && I+1 >= nc {
							wx = 1
						}
						acc += wy * wx * fine[frow+x]
					}
				}
				coarse[crow+I] = acc
			}
		}
	})
}

// prolong interpolates coarse (nc×nc) onto fine (n×n) bilinearly,
// adding into fine when add is set (the coarse-grid correction) and
// overwriting otherwise (the FMG descent). The dangling odd boundary
// of an even n clamps to its one coarse parent.
func prolong(coarse []float64, nc int, fine []float64, n, workers int, add bool) {
	mgRows(workers, n, n*n, func(_, iy0, iy1 int) {
		for iy := iy0; iy < iy1; iy++ {
			J0 := iy / 2
			J1 := J0 + 1
			if J1 >= nc {
				J1 = J0
			}
			oddY := iy&1 == 1
			row := iy * n
			c0 := J0 * nc
			c1 := J1 * nc
			for ix := 0; ix < n; ix++ {
				I0 := ix / 2
				I1 := I0 + 1
				if I1 >= nc {
					I1 = I0
				}
				var val float64
				switch {
				case !oddY && ix&1 == 0:
					val = coarse[c0+I0]
				case !oddY:
					val = 0.5 * (coarse[c0+I0] + coarse[c0+I1])
				case ix&1 == 0:
					val = 0.5 * (coarse[c0+I0] + coarse[c1+I0])
				default:
					val = 0.25 * (coarse[c0+I0] + coarse[c0+I1] + coarse[c1+I0] + coarse[c1+I1])
				}
				if add {
					fine[row+ix] += val
				} else {
					fine[row+ix] = val
				}
			}
		}
	})
}

// vcycle runs one V-cycle rooted at level lev on scr's buffers. When
// track is set (the top-level convergence check) it returns the max
// node update of the final post-smoothing sweep in mV.
func (m *Multigrid) vcycle(lev, workers int, scr *mgScratch, track bool) float64 {
	v, rhs := scr.v[lev], scr.rhs[lev]
	if lev == len(m.levels)-1 {
		m.coarse.solveBand(rhs, v, scr.coarseY)
		return 0
	}
	for s := 0; s < mgPreSweeps; s++ {
		m.rbSweep(lev, workers, v, rhs, scr, false)
	}
	cur, nxt := m.levels[lev], m.levels[lev+1]
	m.residual(lev, workers, v, rhs, scr.res[lev])
	restrictFW(scr.res[lev], cur.n, scr.rhs[lev+1], nxt.n, workers, scr)
	vc := scr.v[lev+1]
	for i := range vc {
		vc[i] = 0
	}
	m.vcycle(lev+1, workers, scr, false)
	prolong(vc, nxt.n, v, cur.n, workers, true)
	delta := 0.0
	for s := 0; s < mgPostSweeps; s++ {
		t := track && s == mgPostSweeps-1
		if d := m.rbSweep(lev, workers, v, rhs, scr, t); t {
			delta = d
		}
	}
	return delta
}

// SolveMultigrid solves G·v = I for a per-node current injection (mA)
// by geometric V-cycle multigrid to the grid's Tol (the same
// max-node-update criterion as SOR), with the smoother, residual and
// transfer passes row-blocked across Params.Workers workers — results
// are bit-identical for any worker count. Inputs and outputs match
// Solve (drops in volts); Iterations reports the V-cycle count.
//
// warm, when non-nil, seeds the iteration with a previous solution (the
// per-pattern warm-start hook, same contract as SolveWarm — warm may
// alias reuse.Drop); a cold solve bootstraps with one full-multigrid
// descent instead. reuse and scratch recycle the Solution and the
// per-level work buffers; both are per-caller state, one hierarchy
// serves any number of concurrent solvers.
func (g *Grid) SolveMultigrid(injMA, warm []float64, reuse *Solution, scratch *SolveScratch) (*Solution, error) {
	m, err := g.MG()
	if err != nil {
		return nil, err
	}
	n := g.P.N
	nn := n * n
	if len(injMA) != nn {
		return nil, fmt.Errorf("pgrid: injection length %d, want %d", len(injMA), nn)
	}
	if warm != nil && len(warm) != nn {
		return nil, fmt.Errorf("pgrid: warm-start length %d, want %d", len(warm), nn)
	}
	sol := reuse
	if sol == nil || cap(sol.Drop) < nn {
		sol = &Solution{Drop: make([]float64, nn)}
	}
	sol.N = n
	sol.Drop = sol.Drop[:nn]
	sol.Iterations = 0
	sol.Worst = 0
	if scratch == nil {
		scratch = &SolveScratch{}
	}
	if scratch.mg == nil {
		scratch.mg = &mgScratch{}
	}
	scr := scratch.mg
	scr.grow(m)
	scr.sweeps = 0
	workers := parallel.Resolve(g.P.Workers)

	// Level 0 solves in place: the Solution buffer is the voltage (mV
	// during iteration) and the injection is the rhs, read-only.
	v := sol.Drop
	scr.v[0] = v
	scr.rhs[0] = injMA

	if warm != nil {
		for i := range v {
			v[i] = warm[i] * 1e3 // V -> mV
		}
	} else if depth := len(m.levels); depth > 1 {
		// FMG descent: restrict the injection itself down the hierarchy,
		// solve the coarsest exactly, and interpolate upward with one
		// V-cycle per level — a near-converged start for ~2 cycles' work.
		for l := 0; l < depth-1; l++ {
			restrictFW(scr.rhs[l], m.levels[l].n, scr.rhs[l+1], m.levels[l+1].n, workers, scr)
		}
		m.coarse.solveBand(scr.rhs[depth-1], scr.v[depth-1], scr.coarseY)
		for l := depth - 2; l >= 1; l-- {
			prolong(scr.v[l+1], m.levels[l+1].n, scr.v[l], m.levels[l].n, workers, false)
			m.vcycle(l, workers, scr, false)
		}
		prolong(scr.v[1], m.levels[1].n, v, n, workers, false)
	} else {
		for i := range v {
			v[i] = 0
		}
	}

	tolMV := g.P.Tol * 1e3
	lastDelta := 0.0
	converged := false
	for cyc := 1; cyc <= mgMaxCycles; cyc++ {
		lastDelta = m.vcycle(0, workers, scr, true)
		sol.Iterations = cyc
		if lastDelta < tolMV {
			converged = true
			break
		}
	}
	// FMG restriction scribbled on rhs[l>0]; v/rhs level-0 aliases must
	// not outlive the call (the caller owns those buffers).
	scr.v[0], scr.rhs[0] = nil, nil
	if !converged {
		return nil, fmt.Errorf("pgrid: multigrid did not converge in %d V-cycles (last delta %g V)",
			mgMaxCycles, lastDelta*1e-3)
	}
	cMGSolves.Add(1)
	cMGCycles.Add(int64(sol.Iterations))
	cMGSweeps.Add(scr.sweeps)
	hMGResidual.Observe(lastDelta * 1e-3)
	for i := range v {
		v[i] *= 1e-3 // mV -> V
		if v[i] > sol.Worst {
			sol.Worst = v[i]
		}
	}
	return sol, nil
}
