package pgrid

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"scap/internal/place"
)

// randGrid builds a randomized mesh: random resolution, segment/pad
// resistances and pad count, with a tight SOR tolerance so the iterative
// solution is comparable to the exact solvers at 1e-9 V.
func randGrid(t *testing.T, rng *rand.Rand) *Grid {
	t.Helper()
	p := DefaultParams()
	p.N = 4 + rng.Intn(12)           // 4..15 -> 16..225 nodes
	p.SegRes = 0.1 + 2*rng.Float64() // 0.1..2.1 Ω
	p.PadRes = 0.05 + rng.Float64()  // 0.05..1.05 Ω
	p.NumPads = 1 + rng.Intn(40)     // 1..40
	p.PadOffset = rng.Float64() / 2  // 0..0.5
	p.Tol = 1e-12                    // run SOR essentially to convergence
	p.MaxIter = 200000
	g, err := New(place.NewFloorplan(), p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randInj draws a sparse-ish random injection (mA) over the mesh.
func randInj(g *Grid, rng *rand.Rand) []float64 {
	nn := g.P.N * g.P.N
	inj := make([]float64, nn)
	hits := 1 + rng.Intn(nn)
	for h := 0; h < hits; h++ {
		inj[rng.Intn(nn)] += 50 * rng.Float64()
	}
	return inj
}

// TestSolveFactoredPropertyEquivalence is the solver-hierarchy contract:
// on randomized meshes and injections the banded factorization, the SOR
// iteration (at tight tolerance) and the dense Gaussian oracle must all
// agree within 1e-9 V, node for node and on the worst drop.
func TestSolveFactoredPropertyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const tol = 1e-9
	for trial := 0; trial < 25; trial++ {
		g := randGrid(t, rng)
		inj := randInj(g, rng)

		fac, err := g.SolveFactored(inj, nil, nil)
		if err != nil {
			t.Fatalf("trial %d: factored: %v", trial, err)
		}
		direct, err := g.SolveDirect(inj)
		if err != nil {
			t.Fatalf("trial %d: direct: %v", trial, err)
		}
		sor, err := g.SolveWarm(inj, nil, nil)
		if err != nil {
			t.Fatalf("trial %d: sor: %v", trial, err)
		}
		for i := range fac.Drop {
			if d := math.Abs(fac.Drop[i] - direct.Drop[i]); d > tol {
				t.Fatalf("trial %d node %d: factored %v vs direct %v (N=%d)",
					trial, i, fac.Drop[i], direct.Drop[i], g.P.N)
			}
			if d := math.Abs(fac.Drop[i] - sor.Drop[i]); d > tol {
				t.Fatalf("trial %d node %d: factored %v vs SOR %v (N=%d)",
					trial, i, fac.Drop[i], sor.Drop[i], g.P.N)
			}
		}
		if d := math.Abs(fac.Worst - direct.Worst); d > tol {
			t.Fatalf("trial %d: worst factored %v vs direct %v", trial, fac.Worst, direct.Worst)
		}
		if d := math.Abs(fac.Worst - sor.Worst); d > tol {
			t.Fatalf("trial %d: worst factored %v vs SOR %v", trial, fac.Worst, sor.Worst)
		}
	}
}

// TestSolveFactoredReuse: the reuse/scratch hooks must recycle their
// buffers and produce the same answer as a fresh solve.
func TestSolveFactoredReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randGrid(t, rng)
	inj := randInj(g, rng)
	fresh, err := g.SolveFactored(inj, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var scratch SolveScratch
	reused, err := g.SolveFactored(inj, &Solution{Drop: make([]float64, g.P.N*g.P.N)}, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	buf := reused.Drop
	again, err := g.SolveFactored(inj, reused, &scratch)
	if err != nil {
		t.Fatal(err)
	}
	if again != reused || &again.Drop[0] != &buf[0] {
		t.Fatal("reuse Solution/Drop buffer was not recycled")
	}
	for i := range fresh.Drop {
		if fresh.Drop[i] != again.Drop[i] {
			t.Fatalf("node %d: reuse changed the answer: %v vs %v", i, fresh.Drop[i], again.Drop[i])
		}
	}
	// Undersized reuse must be replaced, not indexed out of range.
	small := &Solution{Drop: make([]float64, 2)}
	sol, err := g.SolveFactored(inj, small, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Drop) != g.P.N*g.P.N {
		t.Fatalf("undersized reuse left %d nodes", len(sol.Drop))
	}
	if _, err := g.SolveFactored(make([]float64, 3), nil, nil); err == nil {
		t.Fatal("bad injection length accepted")
	}
}

// TestFactorizationConcurrentSolves shares one Factorization across 8
// goroutines, each running many solves with its own scratch. Run under
// -race via `make test-race`, this is the data-race contract of the
// read-only factor cache; the answers must also be bit-identical to the
// serial reference.
func TestFactorizationConcurrentSolves(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	p := DefaultParams()
	p.N = 16
	g, err := New(place.NewFloorplan(), p)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const solvesEach = 6
	injs := make([][]float64, goroutines*solvesEach)
	refs := make([][]float64, len(injs))
	for i := range injs {
		injs[i] = randInj(g, rng)
	}
	// Serial reference AFTER the injections are fixed but computed on a
	// second identical grid, so the concurrent run below performs the
	// first-touch factorization race on g itself.
	gRef, err := New(place.NewFloorplan(), p)
	if err != nil {
		t.Fatal(err)
	}
	for i := range injs {
		sol, err := gRef.SolveFactored(injs[i], nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = append([]float64(nil), sol.Drop...)
	}

	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var scratch SolveScratch
			var sol *Solution
			for s := 0; s < solvesEach; s++ {
				i := w*solvesEach + s
				var err error
				sol, err = g.SolveFactored(injs[i], sol, &scratch)
				if err != nil {
					errs[w] = err
					return
				}
				for node := range sol.Drop {
					if sol.Drop[node] != refs[i][node] {
						t.Errorf("worker %d solve %d node %d: %v vs serial %v",
							w, s, node, sol.Drop[node], refs[i][node])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
}
