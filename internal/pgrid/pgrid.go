// Package pgrid models the chip's power-delivery network and computes
// IR-drop: a uniform resistive mesh per rail (VDD and VSS have the same
// topology), fed by pads distributed around the die periphery (the paper's
// design has 37 VDD and 37 VSS pads), with cell currents injected at their
// placed locations. The mesh equation G·v = I is solved either by a cached
// banded LDLᵀ factorization (SolveFactored — the per-pattern hot path,
// which amortizes the matrix work once per grid) or by successive
// over-relaxation (Solve/SolveWarm — the iterative fallback and
// cross-validation oracle).
//
// Both analyses of the paper run on top of this solver:
//
//   - statistical (vector-less): per-instance currents from a toggle
//     probability over a chosen window (full or half cycle — Table 3);
//   - dynamic (per-pattern): per-instance currents from the switching
//     energy a pattern dissipates within its switching time frame window
//     (Figure 3, Table 4).
//
// Because the center of the die is farthest from the pads, the central
// block B5 naturally sees the worst drop — the paper's key observation.
package pgrid

import (
	"fmt"
	"math"
	"sync"

	"scap/internal/netlist"
	"scap/internal/obs"
	"scap/internal/place"
)

// Solver observability (see DESIGN.md §10): one flush per solve, never
// per sweep, so the disabled cost is a handful of gated atomic loads
// against an O(N²·sweeps) or O(N³) solve.
var (
	cSORSolves   = obs.NewCounter("pgrid.sor.solves")
	cSORSweeps   = obs.NewCounter("pgrid.sor.sweeps")
	hSORResidual = obs.NewHistogram("pgrid.sor.final_residual_v")
)

func init() {
	// Cache hits are Factor() calls that found the factorization built.
	obs.RegisterDerived("pgrid.factor.cache_hits", func(c map[string]int64) (float64, bool) {
		calls, builds := c["pgrid.factor.calls"], c["pgrid.factor.builds"]
		return float64(calls - builds), calls > 0
	})
}

// Params configures the mesh and solver.
type Params struct {
	N       int     // mesh resolution: N×N nodes over the die
	SegRes  float64 // Ω of each mesh segment between adjacent nodes
	NumPads int     // pads per rail around the periphery (paper: 37)
	PadRes  float64 // Ω from a pad to its mesh node
	// PadOffset shifts the pads by this fraction of the pad pitch; the
	// VSS network uses 0.5 so its pads interleave with the VDD pads.
	PadOffset float64
	MaxIter   int     // SOR iteration cap
	Tol       float64 // convergence threshold on max node update, volts
	Omega     float64 // SOR relaxation factor (1..2)
	// Workers fans the multigrid smoother/residual/transfer passes across
	// the internal/parallel pool (<= 0 means all cores, 1 forces the
	// serial path). Results are bit-identical for any value.
	Workers int
}

// DefaultParams returns a mesh calibrated to 180 nm package/grid
// magnitudes at the repo's default design scale.
func DefaultParams() Params {
	return Params{
		N: 40, SegRes: 0.55, NumPads: 37, PadRes: 0.4,
		MaxIter: 20000, Tol: 1e-7, Omega: 1.85,
	}
}

// Validate reports parameter problems.
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("pgrid: N must be >= 1")
	}
	if p.SegRes <= 0 || p.PadRes <= 0 {
		return fmt.Errorf("pgrid: resistances must be positive")
	}
	if p.NumPads < 1 {
		return fmt.Errorf("pgrid: need at least one pad")
	}
	if p.Omega <= 0 || p.Omega >= 2 {
		return fmt.Errorf("pgrid: Omega %v outside (0, 2)", p.Omega)
	}
	if p.MaxIter < 1 || p.Tol <= 0 {
		return fmt.Errorf("pgrid: bad solver controls")
	}
	return nil
}

// Grid is a built power mesh for one die.
type Grid struct {
	P  Params
	fp *place.Floorplan
	// padG[i] is the pad conductance attached to node i (0 if none).
	padG []float64

	// Cached banded LDLᵀ factorization of the conductance matrix (see
	// factor.go); built lazily on the first SolveFactored/Factor call and
	// shared read-only by every solve thereafter.
	factOnce sync.Once
	fact     *Factorization
	factErr  error

	// Cached sparse LDLᵀ factorization under the nested-dissection
	// ordering (see sparse.go); same lazy build / shared read-only
	// discipline as the banded factor.
	sparseOnce sync.Once
	sparse     *SparseFactorization
	sparseErr  error

	// Cached geometric multigrid hierarchy (see multigrid.go); same lazy
	// build / shared read-only discipline as the two factorizations.
	mgOnce sync.Once
	mg     *Multigrid
	mgErr  error
}

// New builds the mesh over the floorplan's die.
func New(fp *place.Floorplan, p Params) (*Grid, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &Grid{P: p, fp: fp, padG: make([]float64, p.N*p.N)}
	for i := 0; i < p.NumPads; i++ {
		x, y := padXY(float64(i)+p.PadOffset, p.NumPads, fp)
		g.padG[g.NodeOf(x, y)] += 1 / p.PadRes
	}
	return g, nil
}

// padXY mirrors parasitic.PadXY (duplicated to keep the package free of a
// dependency cycle): pads uniformly spaced around the periphery.
func padXY(i float64, n int, fp *place.Floorplan) (float64, float64) {
	per := 2 * (fp.W + fp.H)
	pos := math.Mod(per*i/float64(n), per)
	switch {
	case pos < fp.W:
		return pos, 0
	case pos < fp.W+fp.H:
		return fp.W, pos - fp.W
	case pos < 2*fp.W+fp.H:
		return 2*fp.W + fp.H - pos, fp.H
	default:
		return 0, per - pos
	}
}

// NodeOf returns the mesh node index closest to die location (x, y).
func (g *Grid) NodeOf(x, y float64) int {
	n := g.P.N
	ix := int(x / g.fp.W * float64(n))
	iy := int(y / g.fp.H * float64(n))
	if ix < 0 {
		ix = 0
	}
	if ix >= n {
		ix = n - 1
	}
	if iy < 0 {
		iy = 0
	}
	if iy >= n {
		iy = n - 1
	}
	return iy*n + ix
}

// NodeXY returns the die location of a node's center.
func (g *Grid) NodeXY(node int) (float64, float64) {
	n := g.P.N
	ix, iy := node%n, node/n
	return (float64(ix) + 0.5) * g.fp.W / float64(n),
		(float64(iy) + 0.5) * g.fp.H / float64(n)
}

// InjectInstCurrents maps per-instance currents (mA, indexed by InstID)
// onto mesh nodes, returning the per-node injection vector.
func (g *Grid) InjectInstCurrents(d *netlist.Design, cur []float64) []float64 {
	return g.InjectInstCurrentsInto(nil, d, cur)
}

// InjectInstCurrentsInto is InjectInstCurrents accumulating into a
// reusable per-node buffer (grown if needed, zeroed, returned) so the
// per-pattern pipeline does not allocate N² floats per solve.
func (g *Grid) InjectInstCurrentsInto(inj []float64, d *netlist.Design, cur []float64) []float64 {
	if len(inj) != g.P.N*g.P.N {
		inj = make([]float64, g.P.N*g.P.N)
	} else {
		for i := range inj {
			inj[i] = 0
		}
	}
	for i := range d.Insts {
		if cur[i] == 0 {
			continue
		}
		inj[g.NodeOf(d.Insts[i].X, d.Insts[i].Y)] += cur[i]
	}
	return inj
}

// Solution is a solved rail: per-node voltage drop from the nominal rail
// voltage (positive volts for both VDD sag and VSS bounce).
type Solution struct {
	N          int
	Drop       []float64 // volts per node
	Iterations int
	Worst      float64 // max node drop, volts
}

// Solve computes node voltage drops for a per-node current injection (mA).
// The mesh conductances are in 1/Ω, so the raw solution is in mV and is
// converted to volts. Every call starts SOR from a zero guess; the
// per-pattern pipelines use SolveWarm instead.
func (g *Grid) Solve(injMA []float64) (*Solution, error) {
	return g.SolveWarm(injMA, nil, nil)
}

// SolveWarm is Solve with two reuse hooks for the per-pattern hot loop:
//
//   - warm, when non-nil, is an initial voltage guess in volts (a
//     previous Solution.Drop for a similar injection). Successive
//     per-pattern injections resemble each other, so warm-starting cuts
//     the SOR iteration count sharply. Warm may alias reuse.Drop —
//     warm-starting a solve in its own buffer is the intended use.
//   - reuse, when non-nil, is a Solution whose Drop buffer is recycled
//     instead of allocating N² floats per call (per-worker scratch).
//
// The solve runs to the same Tol for any guess, so a warm-started
// solution agrees with the cold one to solver tolerance. An
// already-converged guess costs exactly one verification sweep
// (Iterations == 1): the convergence scan and the final mV→V
// conversion with its worst-drop pass live outside the iteration path.
func (g *Grid) SolveWarm(injMA, warm []float64, reuse *Solution) (*Solution, error) {
	n := g.P.N
	if len(injMA) != n*n {
		return nil, fmt.Errorf("pgrid: injection length %d, want %d", len(injMA), n*n)
	}
	if warm != nil && len(warm) != n*n {
		return nil, fmt.Errorf("pgrid: warm-start length %d, want %d", len(warm), n*n)
	}
	sol := reuse
	if sol == nil || cap(sol.Drop) < n*n {
		sol = &Solution{Drop: make([]float64, n*n)}
	}
	sol.N = n
	sol.Drop = sol.Drop[:n*n]
	sol.Iterations = 0
	sol.Worst = 0
	v := sol.Drop
	if warm != nil {
		for i := range v {
			v[i] = warm[i] * 1e3 // V -> mV (the sweep works in mV)
		}
	} else {
		for i := range v {
			v[i] = 0
		}
	}

	gseg := 1 / g.P.SegRes
	converged := false
	lastDelta := 0.0
	for iter := 1; iter <= g.P.MaxIter; iter++ {
		maxDelta := 0.0
		for iy := 0; iy < n; iy++ {
			for ix := 0; ix < n; ix++ {
				i := iy*n + ix
				sumG := g.padG[i]
				sumGV := 0.0
				if ix > 0 {
					sumG += gseg
					sumGV += gseg * v[i-1]
				}
				if ix < n-1 {
					sumG += gseg
					sumGV += gseg * v[i+1]
				}
				if iy > 0 {
					sumG += gseg
					sumGV += gseg * v[i-n]
				}
				if iy < n-1 {
					sumG += gseg
					sumGV += gseg * v[i+n]
				}
				nv := (sumGV + injMA[i]) / sumG
				nv = v[i] + g.P.Omega*(nv-v[i])
				if d := math.Abs(nv - v[i]); d > maxDelta {
					maxDelta = d
				}
				v[i] = nv
			}
		}
		sol.Iterations = iter
		lastDelta = maxDelta * 1e-3 // mV -> V
		if lastDelta < g.P.Tol {
			converged = true
			break
		}
	}
	if !converged {
		return nil, fmt.Errorf("pgrid: SOR did not converge in %d iterations", g.P.MaxIter)
	}
	cSORSolves.Add(1)
	cSORSweeps.Add(int64(sol.Iterations))
	hSORResidual.Observe(lastDelta)
	for i := range v {
		v[i] *= 1e-3 // mV -> V
		if v[i] > sol.Worst {
			sol.Worst = v[i]
		}
	}
	return sol, nil
}

// At samples the solved drop at a die location (nearest node).
func (s *Solution) At(g *Grid, x, y float64) float64 {
	return s.Drop[g.NodeOf(x, y)]
}

// WorstPerBlock returns the maximum node drop inside each block rectangle,
// plus a chip-level entry (index NumBlocks). Nodes outside every block
// count only toward the chip entry.
func (s *Solution) WorstPerBlock(g *Grid, numBlocks int) []float64 {
	out := make([]float64, numBlocks+1)
	for node, d := range s.Drop {
		x, y := g.NodeXY(node)
		if b := g.fp.BlockAt(x, y); b >= 0 && b < numBlocks && d > out[b] {
			out[b] = d
		}
		if d > out[numBlocks] {
			out[numBlocks] = d
		}
	}
	return out
}

// MeanPerBlock returns the average node drop inside each block rectangle,
// plus a chip-level entry.
func (s *Solution) MeanPerBlock(g *Grid, numBlocks int) []float64 {
	sum := make([]float64, numBlocks+1)
	cnt := make([]int, numBlocks+1)
	for node, d := range s.Drop {
		x, y := g.NodeXY(node)
		if b := g.fp.BlockAt(x, y); b >= 0 && b < numBlocks {
			sum[b] += d
			cnt[b]++
		}
		sum[numBlocks] += d
		cnt[numBlocks]++
	}
	for i := range sum {
		if cnt[i] > 0 {
			sum[i] /= float64(cnt[i])
		}
	}
	return sum
}
