package pgrid

import (
	"math"
	"sync"
	"testing"
	"testing/quick"

	"scap/internal/place"
)

// mgGrid builds a mesh with the tight tolerance the oracle comparisons
// need (the acceptance bar is 1e-6 V; mg converges to P.Tol).
func mgGrid(t *testing.T, n, workers int, fp *place.Floorplan) *Grid {
	t.Helper()
	p := DefaultParams()
	p.N = n
	p.Tol = 1e-9
	p.Workers = workers
	if fp == nil {
		fp = place.NewFloorplan()
	}
	g, err := New(fp, p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMultigridVsDenseOracle property-tests the mg tier against the
// dense Gaussian oracle on randomized meshes, biased toward the
// degenerate edge sizes (n=1,2,3 are single-level direct solves; the
// larger picks exercise multi-level V-cycles and the FMG cold start).
func TestMultigridVsDenseOracle(t *testing.T) {
	const tol = 1e-6
	f := func(seed uint32, nPick uint8, picks [4]uint16, amps [4]uint8) bool {
		sizes := []int{1, 2, 3, 4, 5, 8, 12, 17, 20, 24, 33}
		n := sizes[int(nPick)%len(sizes)]
		g := mgGrid(t, n, 1, nil)
		nn := n * n
		inj := make([]float64, nn)
		for i, pk := range picks {
			inj[int(pk)%nn] += float64(amps[i]%40) + 1 + float64(seed%7)
		}
		mg, err := g.SolveMultigrid(inj, nil, nil, nil)
		if err != nil {
			t.Logf("n=%d: %v", n, err)
			return false
		}
		dense, err := g.SolveDirect(inj)
		if err != nil {
			return false
		}
		for i := range mg.Drop {
			if math.Abs(mg.Drop[i]-dense.Drop[i]) > tol {
				t.Logf("n=%d node %d: mg %g dense %g", n, i, mg.Drop[i], dense.Drop[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMultigridFourSolverAgreement closes the full solver square on the
// default-calibration mesh: mg must agree with banded, sparse, and SOR
// to the 1e-6 V acceptance bar.
func TestMultigridFourSolverAgreement(t *testing.T) {
	const tol = 1e-6
	g := mgGrid(t, 40, 1, nil)
	nn := 40 * 40
	inj := make([]float64, nn)
	for i := 0; i < nn; i += 7 {
		inj[i] = 1 + float64(i%13)
	}
	mg, err := g.SolveMultigrid(inj, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	banded, err := g.SolveFactored(inj, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := g.SolveSparse(inj, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	sor, err := g.Solve(inj)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mg.Drop {
		if math.Abs(mg.Drop[i]-banded.Drop[i]) > tol ||
			math.Abs(mg.Drop[i]-sparse.Drop[i]) > tol ||
			math.Abs(mg.Drop[i]-sor.Drop[i]) > tol {
			t.Fatalf("node %d: mg %g banded %g sparse %g sor %g",
				i, mg.Drop[i], banded.Drop[i], sparse.Drop[i], sor.Drop[i])
		}
	}
	if mg.Worst <= 0 {
		t.Fatalf("worst drop %g, want > 0", mg.Worst)
	}
}

// TestMultigridNonSquareFloorplan runs the oracle comparison over a
// rectangular die (pads land asymmetrically, so padG loses the square
// symmetry) at sizes spanning single- and multi-level hierarchies.
func TestMultigridNonSquareFloorplan(t *testing.T) {
	const tol = 1e-6
	fp := &place.Floorplan{W: place.DieSize, H: 0.35 * place.DieSize}
	for _, n := range []int{1, 2, 3, 7, 16, 21, 40} {
		g := mgGrid(t, n, 1, fp)
		nn := n * n
		inj := make([]float64, nn)
		for i := range inj {
			inj[i] = float64((i*31)%17) * 0.5
		}
		inj[nn/2] += 25
		mg, err := g.SolveMultigrid(inj, nil, nil, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		dense, err := g.SolveDirect(inj)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		for i := range mg.Drop {
			if math.Abs(mg.Drop[i]-dense.Drop[i]) > tol {
				t.Fatalf("n=%d node %d: mg %g dense %g", n, i, mg.Drop[i], dense.Drop[i])
			}
		}
	}
}

// TestMultigridWorkerBitIdentity: the row-blocked passes must produce
// bit-identical solutions for any worker count, on a mesh large enough
// to cross the parallel fan-out threshold.
func TestMultigridWorkerBitIdentity(t *testing.T) {
	const n = 160 // 25600 nodes > mgParallelMinNodes on the top level
	nn := n * n
	inj := make([]float64, nn)
	for i := range inj {
		inj[i] = float64((i*13)%23) * 0.25
	}
	inj[nn/2+n/2] += 40
	var ref []float64
	for _, workers := range []int{1, 2, 3, 5, 8} {
		g := mgGrid(t, n, workers, nil)
		sol, err := g.SolveMultigrid(inj, nil, nil, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = append([]float64(nil), sol.Drop...)
			continue
		}
		for i := range sol.Drop {
			if sol.Drop[i] != ref[i] {
				t.Fatalf("workers=%d node %d: %g != serial %g (must be bit-identical)",
					workers, i, sol.Drop[i], ref[i])
			}
		}
	}
}

// TestMultigridWarmStart: a warm start from the converged solution of
// the same injection must agree with the cold solve and converge in a
// single verification V-cycle; a perturbed-injection warm start must
// still land on the perturbed solution.
func TestMultigridWarmStart(t *testing.T) {
	const tol = 1e-6
	g := mgGrid(t, 40, 1, nil)
	nn := 40 * 40
	inj := make([]float64, nn)
	for i := range inj {
		inj[i] = float64((i*7)%11)
	}
	cold, err := g.SolveMultigrid(inj, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	coldDrop := append([]float64(nil), cold.Drop...)

	warm, err := g.SolveMultigrid(inj, coldDrop, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations != 1 {
		t.Fatalf("converged warm start took %d cycles, want 1", warm.Iterations)
	}
	for i := range warm.Drop {
		if math.Abs(warm.Drop[i]-coldDrop[i]) > tol {
			t.Fatalf("node %d: warm %g cold %g", i, warm.Drop[i], coldDrop[i])
		}
	}

	// Perturb the injection and warm-start in the solution's own buffer
	// (the per-pattern pipeline's aliased use).
	inj[nn/3] += 15
	sol := warm
	sol, err = g.SolveMultigrid(inj, sol.Drop, sol, &SolveScratch{})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := g.SolveDirect(inj)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sol.Drop {
		if math.Abs(sol.Drop[i]-dense.Drop[i]) > tol {
			t.Fatalf("node %d: warm-perturbed %g dense %g", i, sol.Drop[i], dense.Drop[i])
		}
	}
}

// TestMultigridConcurrentSolves shares one hierarchy across goroutines
// (each with its own Solution/SolveScratch, per the documented contract)
// and checks every result against the banded factor; run under -race
// this pins the hierarchy's immutability after build.
func TestMultigridConcurrentSolves(t *testing.T) {
	g := mgGrid(t, 24, 2, nil)
	nn := 24 * 24
	if _, err := g.MG(); err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	drops := make([][]float64, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			inj := make([]float64, nn)
			for i := range inj {
				inj[i] = float64(((i+w)*5)%9) + 1
			}
			var sol *Solution
			scratch := &SolveScratch{}
			for rep := 0; rep < 3; rep++ {
				var err error
				sol, err = g.SolveMultigrid(inj, nil, sol, scratch)
				if err != nil {
					errs[w] = err
					return
				}
			}
			drops[w] = append([]float64(nil), sol.Drop...)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", w, err)
		}
	}
	for w, drop := range drops {
		inj := make([]float64, nn)
		for i := range inj {
			inj[i] = float64(((i+w)*5)%9) + 1
		}
		want, err := g.SolveFactored(inj, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range drop {
			if math.Abs(drop[i]-want.Drop[i]) > 1e-6 {
				t.Fatalf("goroutine %d node %d: mg %g banded %g", w, i, drop[i], want.Drop[i])
			}
		}
	}
}

// TestMultigridHierarchyShape pins the coarsening geometry: halving
// down to the coarsest cap, one level for tiny meshes.
func TestMultigridHierarchyShape(t *testing.T) {
	cases := []struct {
		n      int
		levels int
	}{
		{1, 1}, {2, 1}, {16, 1}, {17, 2}, {40, 3}, {64, 3}, {65, 4},
	}
	for _, c := range cases {
		g := mgGrid(t, c.n, 1, nil)
		m, err := g.MG()
		if err != nil {
			t.Fatalf("n=%d: %v", c.n, err)
		}
		if m.Levels() != c.levels {
			t.Errorf("n=%d: %d levels, want %d", c.n, m.Levels(), c.levels)
		}
		bottom := m.levels[len(m.levels)-1]
		if bottom.n > mgCoarsestN {
			t.Errorf("n=%d: coarsest level n=%d exceeds cap %d", c.n, bottom.n, mgCoarsestN)
		}
	}
}
