package vcd

import (
	"bytes"
	"strings"
	"testing"

	"scap/internal/cell"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/sdf"
	"scap/internal/sim"
)

func record(t *testing.T) (*Recorder, int) {
	t.Helper()
	d := netlist.New("v", cell.New180nm())
	d.NumBlocks = 1
	d.Domains = []netlist.DomainInfo{{Name: "clk", FreqMHz: 50, PeriodNs: 20}}
	q1 := d.AddNet("q1")
	q2 := d.AddNet("q2")
	a := d.AddNet("a")
	b := d.AddNet("b")
	d.AddInst("i1", cell.Inv, []netlist.NetID{q1}, a, 0)
	d.AddInst("i2", cell.Inv, []netlist.NetID{a}, b, 0)
	f1 := d.AddInst("f1", cell.DFF, []netlist.NetID{b}, q1, 0)
	f2 := d.AddInst("f2", cell.DFF, []netlist.NetID{b}, q2, 0)
	d.SetDomain(f1, 0, false)
	d.SetDomain(f2, 0, false)
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	tm := sim.NewTiming(s, sdf.Compute(d), nil)
	rec := NewRecorder(d)
	res, err := tm.Launch([]logic.V{logic.Zero, logic.X}, []logic.V{logic.One, logic.X},
		nil, 20, rec.OnToggle)
	if err != nil {
		t.Fatal(err)
	}
	return rec, res.Toggles
}

func TestRecorderCapturesAllToggles(t *testing.T) {
	rec, toggles := record(t)
	if len(rec.Changes) != toggles {
		t.Fatalf("recorded %d changes, sim reported %d", len(rec.Changes), toggles)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	rec, _ := record(t)
	var buf bytes.Buffer
	if err := rec.Write(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"$timescale 1ps $end", "$var wire 1", "$enddefinitions"} {
		if !strings.Contains(out, want) {
			t.Fatalf("VCD missing %q:\n%s", want, out)
		}
	}
	back, err := Read(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rec.Changes) {
		t.Fatalf("read %d changes, wrote %d", len(back), len(rec.Changes))
	}
	// Same multiset of (net, rising) with ps-rounded times in order.
	for i := 1; i < len(back); i++ {
		if back[i].TimeNs < back[i-1].TimeNs {
			t.Fatal("changes out of order")
		}
	}
	seen := map[string]int{}
	for _, c := range back {
		seen[c.Net]++
	}
	for _, c := range rec.Changes {
		seen[c.Net]--
	}
	for n, v := range seen {
		if v != 0 {
			t.Fatalf("net %s count off by %d", n, v)
		}
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read(strings.NewReader("$enddefinitions $end\n#notanumber\n")); err == nil {
		t.Fatal("bad timestamp accepted")
	}
	if _, err := Read(strings.NewReader("$enddefinitions $end\n#10\n1zz\n")); err == nil {
		t.Fatal("unknown id accepted")
	}
	if _, err := Read(strings.NewReader("$var wire\n")); err == nil {
		t.Fatal("bad $var accepted")
	}
}

func TestID94(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := id94(i)
		if id == "" || seen[id] {
			t.Fatalf("id94(%d) = %q duplicate or empty", i, id)
		}
		seen[id] = true
	}
}
