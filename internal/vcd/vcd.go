// Package vcd records switching activity in the IEEE 1364 value-change-dump
// format. The main SCAP flow streams toggles straight into the power meter
// (the paper's PLI shortcut that avoids "extremely large VCD files"), but
// the dump remains available for debugging single patterns and for
// interoperability, mirroring the paper's Figure 5 where VCD is the
// fallback exchange format.
package vcd

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"scap/internal/netlist"
)

// Change is one recorded value change.
type Change struct {
	TimeNs float64
	Net    string
	Rising bool
}

// Recorder collects toggles from a timing simulation.
type Recorder struct {
	d       *netlist.Design
	Changes []Change
}

// NewRecorder builds a recorder for design d.
func NewRecorder(d *netlist.Design) *Recorder { return &Recorder{d: d} }

// OnToggle has the sim.ToggleFn shape.
func (r *Recorder) OnToggle(inst netlist.InstID, t float64, rising bool) {
	r.Changes = append(r.Changes, Change{
		TimeNs: t,
		Net:    r.d.Nets[r.d.Insts[inst].Out].Name,
		Rising: rising,
	})
}

// id94 renders n as a compact printable VCD identifier.
func id94(n int) string {
	var b []byte
	for {
		b = append(b, byte('!'+n%94))
		n /= 94
		if n == 0 {
			break
		}
	}
	return string(b)
}

// Write emits the recorded changes as a VCD stream with 1 ps timescale.
func (r *Recorder) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "$date repro $end\n$version scap %s $end\n$timescale 1ps $end\n", r.d.Name)
	fmt.Fprintln(bw, "$scope module top $end")
	ids := map[string]string{}
	var names []string
	for _, c := range r.Changes {
		if _, ok := ids[c.Net]; !ok {
			ids[c.Net] = id94(len(ids))
			names = append(names, c.Net)
		}
	}
	for _, n := range names {
		fmt.Fprintf(bw, "$var wire 1 %s %s $end\n", ids[n], n)
	}
	fmt.Fprintln(bw, "$upscope $end\n$enddefinitions $end")

	sorted := append([]Change(nil), r.Changes...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].TimeNs < sorted[j].TimeNs })
	lastT := -1
	for _, c := range sorted {
		ps := int(c.TimeNs*1000 + 0.5)
		if ps != lastT {
			fmt.Fprintf(bw, "#%d\n", ps)
			lastT = ps
		}
		v := byte('0')
		if c.Rising {
			v = '1'
		}
		fmt.Fprintf(bw, "%c%s\n", v, ids[c.Net])
	}
	return bw.Flush()
}

// Read parses a VCD stream written by Write (single-bit wires only) and
// returns the changes in time order.
func Read(rd io.Reader) ([]Change, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	names := map[string]string{} // id -> net name
	var out []Change
	t := 0.0
	inDefs := true
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		switch {
		case txt == "":
			continue
		case strings.HasPrefix(txt, "$var"):
			f := strings.Fields(txt)
			if len(f) < 6 {
				return nil, fmt.Errorf("vcd: line %d: bad $var", line)
			}
			names[f[3]] = f[4]
		case strings.HasPrefix(txt, "$enddefinitions"):
			inDefs = false
		case strings.HasPrefix(txt, "$"):
			continue
		case strings.HasPrefix(txt, "#"):
			ps, err := strconv.Atoi(txt[1:])
			if err != nil {
				return nil, fmt.Errorf("vcd: line %d: bad timestamp: %v", line, err)
			}
			t = float64(ps) / 1000
		case !inDefs && (txt[0] == '0' || txt[0] == '1'):
			id := txt[1:]
			name, ok := names[id]
			if !ok {
				return nil, fmt.Errorf("vcd: line %d: unknown id %q", line, id)
			}
			out = append(out, Change{TimeNs: t, Net: name, Rising: txt[0] == '1'})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
