package repro

import (
	"fmt"
	"strings"

	"scap/internal/atpg"
	"scap/internal/core"
	"scap/internal/ftas"
	"scap/internal/sched"
	"scap/internal/soc"
	"scap/internal/textplot"
)

// extension experiment ids appended to Experiments by init.
var extensionIDs = []string{"ext-functional", "ext-ftas", "ext-quality", "ext-sched"}

func init() {
	Experiments = append(Experiments, extensionIDs...)
}

// ExtFunctional quantifies the paper's premise: test-mode switching far
// exceeds mission-mode switching.
func (r *Runner) ExtFunctional() (string, error) {
	_, prof, err := r.Conventional()
	if err != nil {
		return "", err
	}
	fn, err := r.Sys.FunctionalPowerSim(0, 40, r.Sys.Cfg.Seed+99)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(header("Extension: functional vs test switching power"))
	nb := r.Sys.D.NumBlocks
	var sumCap, sumScap float64
	for i := range prof {
		sumCap += prof[i].ChipCAPVdd
		sumScap += prof[i].ChipSCAPVdd
	}
	meanCap := sumCap / float64(len(prof))
	meanScap := sumScap / float64(len(prof))
	fmt.Fprintf(&b, "functional baseline (%d mission cycles): chip %.2f mW, B5 %.2f mW\n",
		fn.Cycles, fn.MeanPowerMW[nb], fn.MeanPowerMW[soc.B5])
	fmt.Fprintf(&b, "conventional test set: mean CAP %.2f mW (%.1fx functional), mean SCAP %.2f mW (%.1fx)\n",
		meanCap, meanCap/fn.MeanPowerMW[nb], meanScap, meanScap/fn.MeanPowerMW[nb])
	fmt.Fprintf(&b, "B5 test/functional SCAP ratio: %.1fx\n",
		core.TestVsFunctionalRatio(prof, fn, soc.B5))
	fmt.Fprintf(&b, "\npaper: \"the switching activity during test is far greater and "+
		"non-uniform than during functional operation\" — confirmed: %v\n",
		meanCap > 1.3*fn.MeanPowerMW[nb])
	return b.String(), nil
}

// ExtFTAS runs the faster-than-at-speed overkill sweep on the hottest
// conventional pattern (the authors' companion ICCAD'06 analysis).
func (r *Runner) ExtFTAS() (string, error) {
	conv, prof, err := r.Conventional()
	if err != nil {
		return "", err
	}
	hot := 0
	for i := range prof {
		if prof[i].ChipSCAPVdd > prof[hot].ChipSCAPVdd {
			hot = i
		}
	}
	imp, _, err := r.Sys.DelayImpact(&conv.Patterns[hot], 0)
	if err != nil {
		return "", err
	}
	res, err := ftas.Sweep(imp, r.Sys.Period/4, r.Sys.Period, r.Sys.Period/20, 0)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(header("Extension: faster-than-at-speed overkill sweep (pattern #" + fmt.Sprint(hot) + ")"))
	fmt.Fprintf(&b, "%10s %9s %10s %11s %9s\n", "period ns", "freq MHz", "nom-fails", "drop-fails", "overkill")
	for _, p := range res.Points {
		fmt.Fprintf(&b, "%10.2f %9.1f %10d %11d %9d\n",
			p.PeriodNs, p.FreqMHz, p.NomViolations, p.ScaledViolations, p.Overkill)
	}
	if res.MinPeriodNoOverkillNs > 0 {
		fmt.Fprintf(&b, "\nfastest overkill-free capture: %.2f ns (%.1f MHz)\n",
			res.MinPeriodNoOverkillNs, res.MaxSafeFreqMHz)
	}
	fmt.Fprintf(&b, "shape check: IR-drop overkill appears before genuine small-delay screening as frequency rises\n")
	return b.String(), nil
}

// ExtQuality grades the conventional set's detection-path delays.
func (r *Runner) ExtQuality() (string, error) {
	conv, _, err := r.Conventional()
	if err != nil {
		return "", err
	}
	rep, err := r.Sys.GradeDetections(conv, 3000)
	if err != nil {
		return "", err
	}
	labels := make([]string, 10)
	counts := make([]int, 10)
	for i := 0; i < 10; i++ {
		labels[i] = fmt.Sprintf("%d-%d%%", i*10, (i+1)*10)
		counts[i] = rep.Deciles[i]
	}
	var b strings.Builder
	b.WriteString(header("Extension: detection-path quality (small-delay-defect screening)"))
	fmt.Fprintf(&b, "graded %d detections at T = %.4g ns: slack best %.2f / mean %.2f / worst %.2f ns\n\n",
		len(rep.Grades), rep.PeriodNs, rep.BestSlack, rep.MeanSlack, rep.WorstSlack)
	b.WriteString(textplot.Histogram(counts, labels, 48, "detect-path delay as fraction of the period"))
	fmt.Fprintf(&b, "\nmass on the left = short-path detections that let small delay defects escape\n"+
		"(the motivation for faster-than-at-speed capture, tempered by its IR-drop overkill above)\n")
	return b.String(), nil
}

// ExtSched schedules all six domains' tests under a power budget.
func (r *Runner) ExtSched() (string, error) {
	sys := r.Sys
	var tests []sched.DomainTest
	shiftMHz := 10.0
	maxChain := float64(sys.SC.MaxChainLen())
	var b strings.Builder
	b.WriteString(header("Extension: power-constrained SOC test scheduling"))
	for dom := range sys.D.Domains {
		l := sys.NewFaultList()
		res, err := sys.ATPG(l, atpg.Options{Dom: dom, Fill: atpg.FillRandom, Seed: sys.Cfg.Seed + 70})
		if err != nil {
			return "", err
		}
		fr := &core.FlowResult{Name: "sched", Dom: dom, Patterns: res.Patterns, Faults: l}
		prof, err := sys.ProfilePatterns(fr)
		if err != nil {
			return "", err
		}
		peak := 0.0
		for i := range prof {
			if prof[i].ChipSCAPVdd > peak {
				peak = prof[i].ChipSCAPVdd
			}
		}
		tests = append(tests, sched.DomainTest{
			Name:    sys.D.Domains[dom].Name,
			TimeUS:  float64(len(res.Patterns)) * (maxChain/shiftMHz + 2*sys.Period/1000),
			PowerMW: peak,
		})
	}
	budget := 0.0
	for _, t := range tests {
		if t.PowerMW*1.1 > budget {
			budget = t.PowerMW * 1.1
		}
	}
	serial := sched.Serial(tests)
	opt, err := sched.Optimal(tests, budget)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "budget %.1f mW: serial %.0f µs vs optimal %.0f µs in %d sessions (%.0f%% saved)\n",
		budget, serial.MakespanUS, opt.MakespanUS, len(opt.Sessions),
		100*(1-opt.MakespanUS/serial.MakespanUS))
	for i, ses := range opt.Sessions {
		fmt.Fprintf(&b, "  session %d (%.0f µs, %.1f mW):", i+1, ses.TimeUS, ses.PowerMW)
		for _, di := range ses.Domains {
			fmt.Fprintf(&b, " %s", tests[di].Name)
		}
		fmt.Fprintln(&b)
	}
	return b.String(), nil
}
