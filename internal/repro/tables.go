package repro

import (
	"fmt"
	"math"
	"strings"

	"scap/internal/core"
	"scap/internal/soc"
)

// Table1 reproduces the design-characteristics table.
func (r *Runner) Table1() (string, error) {
	sys := r.Sys
	stats, err := sys.D.ComputeStats()
	if err != nil {
		return "", err
	}
	l := sys.NewFaultList()
	var b strings.Builder
	b.WriteString(header("Table 1: Design Characteristics"))
	fmt.Fprintf(&b, "scale divisor: 1/%d of the paper's design\n\n", sys.Plan.Scale)
	fmt.Fprintf(&b, "%-28s %12s %14s\n", "", "measured", "paper")
	fmt.Fprintf(&b, "%-28s %12d %14s\n", "Clock Domains", len(sys.D.Domains), "6")
	fmt.Fprintf(&b, "%-28s %12d %14s\n", "Scan Chains", len(sys.SC.Chains), "16")
	fmt.Fprintf(&b, "%-28s %12d %14s\n", "Total Scan Flops", stats.Flops, "~23K (full)")
	fmt.Fprintf(&b, "%-28s %12d %14s\n", "Negative Edge Scan Flops", stats.NegEdgeFlops, "22 (full)")
	fmt.Fprintf(&b, "%-28s %12d %14s\n", "Transition Delay Faults", l.UniverseSize, "(full-chip set)")
	fmt.Fprintf(&b, "%-28s %12d %14s\n", "  collapsed", len(l.Faults), "")
	fmt.Fprintf(&b, "%-28s %12d %14s\n", "Logic Gates", stats.Gates, "")
	fmt.Fprintf(&b, "%-28s %12d %14s\n", "Primary Inputs", stats.PIs, "")
	return b.String(), nil
}

// Table2 reproduces the clock-domain analysis table.
func (r *Runner) Table2() (string, error) {
	var b strings.Builder
	b.WriteString(header("Table 2: Clock Domain Analysis"))
	fmt.Fprintf(&b, "%-12s %12s %12s   %s\n", "Clock Domain", "#Scan Cells", "Freq [MHz]", "Blocks Covered")
	for i := range r.Sys.Plan.Domains {
		dp := &r.Sys.Plan.Domains[i]
		fmt.Fprintf(&b, "%-12s %12d %12.0f   %s\n", dp.Name, dp.Flops, dp.FreqMHz, dp.BlocksCovered())
	}
	fmt.Fprintf(&b, "\nshape check: clka dominant (paper: ~18K of ~23K flops, spans B1 to B6): %v\n",
		r.Sys.Plan.Domains[0].Flops > r.Sys.Plan.TotalFlops()/2 &&
			r.Sys.Plan.Domains[0].BlocksCovered() == "B1 to B6")
	return b.String(), nil
}

// Table3 reproduces the statistical functional IR-drop analysis.
func (r *Runner) Table3() (string, error) {
	sys, stat := r.Sys, r.Stat
	var b strings.Builder
	b.WriteString(header("Table 3: Statistical functional IR-drop analysis per block"))
	fmt.Fprintf(&b, "vector-less, %.0f%% toggle probability; Case1 window %.4g ns (full cycle), Case2 %.4g ns (half cycle)\n\n",
		100*stat.ToggleProb, stat.Case1.WindowNs, stat.Case2.WindowNs)
	fmt.Fprintf(&b, "%-6s | %-31s | %-31s\n", "", "Case1 (full cycle)", "Case2 (half cycle)")
	fmt.Fprintf(&b, "%-6s | %9s %9s %11s | %9s %9s %11s\n",
		"Block", "P_vdd mW", "P_vss mW", "drop V/V", "P_vdd mW", "P_vss mW", "drop V/V")
	row := func(name string, idx int) {
		c1, c2 := &stat.Case1, &stat.Case2
		fmt.Fprintf(&b, "%-6s | %9.2f %9.2f %5.3f/%5.3f | %9.2f %9.2f %5.3f/%5.3f\n",
			name,
			c1.Power.Blocks[idx].PowerVddMW, c1.Power.Blocks[idx].PowerVssMW,
			c1.WorstVDD[idx], c1.WorstVSS[idx],
			c2.Power.Blocks[idx].PowerVddMW, c2.Power.Blocks[idx].PowerVssMW,
			c2.WorstVDD[idx], c2.WorstVSS[idx])
	}
	for blk := 0; blk < sys.D.NumBlocks; blk++ {
		row(soc.BlockName(blk), blk)
	}
	row("Chip", sys.D.NumBlocks)

	// Functional baseline: the paper justifies its pessimistic 30% toggle
	// assumption by test activity far exceeding mission-mode activity.
	fn, err := sys.FunctionalPowerSim(0, 30, sys.Cfg.Seed+99)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nfunctional-mode baseline (30 simulated mission cycles): chip %.2f mW, B5 %.2f mW\n",
		fn.MeanPowerMW[sys.D.NumBlocks], fn.MeanPowerMW[soc.B5])

	hb := stat.HotBlock
	fmt.Fprintf(&b, "\nshape checks (paper: power doubles when window halves; B5 hottest):\n")
	fmt.Fprintf(&b, "  Case2/Case1 chip power ratio: %.2f (paper: 2.0)\n",
		stat.Case2.Power.Chip().PowerVddMW/stat.Case1.Power.Chip().PowerVddMW)
	fmt.Fprintf(&b, "  hottest block: %s (paper: B5), threshold %.2f mW (paper: 204 mW at full scale)\n",
		soc.BlockName(hb), stat.ThresholdMW[hb])
	fmt.Fprintf(&b, "  B5 Case2 worst drop: %.3f V (paper: ~0.12 V)\n", stat.Case2.WorstVDD[soc.B5])
	return b.String(), nil
}

// Table4 reproduces the CAP-vs-SCAP single-pattern comparison. The subject
// is the conventional random-fill clka pattern whose STW lies closest to
// the paper's 8.34 ns (0.42 of the 20 ns cycle).
func (r *Runner) Table4() (string, error) {
	conv, prof, err := r.Conventional()
	if err != nil {
		return "", err
	}
	want := 0.417 * r.Sys.Period
	best, bestD := -1, math.Inf(1)
	for i := range prof {
		if prof[i].Toggles == 0 {
			continue
		}
		if d := math.Abs(prof[i].STW - want); d < bestD {
			best, bestD = i, d
		}
	}
	if best < 0 {
		return "", fmt.Errorf("repro: no active pattern for Table 4")
	}
	capIR, err := r.Sys.DynamicIRDrop(&conv.Patterns[best], 0, core.ModelCAP)
	if err != nil {
		return "", err
	}
	scapIR, err := r.Sys.DynamicIRDrop(&conv.Patterns[best], 0, core.ModelSCAP)
	if err != nil {
		return "", err
	}
	nb := r.Sys.D.NumBlocks
	chipCap := capIR.Profile.Chip()
	var b strings.Builder
	b.WriteString(header("Table 4: Average dynamic power / IR-drop of one pattern, CAP vs SCAP"))
	fmt.Fprintf(&b, "pattern #%d, STW %.2f ns, clock period %.4g ns (paper: STW 8.34 ns, T 20 ns)\n\n",
		best, scapIR.STW, r.Sys.Period)
	fmt.Fprintf(&b, "%-6s | %14s %14s | %12s %12s\n", "", "P_vdd [mW]", "P_vss [mW]", "drop VDD [V]", "drop VSS [V]")
	fmt.Fprintf(&b, "%-6s | %14.2f %14.2f | %12.3f %12.3f\n", "CAP",
		chipCap.CAPVdd, chipCap.CAPVss, capIR.WorstVDD[nb], capIR.WorstVSS[nb])
	fmt.Fprintf(&b, "%-6s | %14.2f %14.2f | %12.3f %12.3f\n", "SCAP",
		chipCap.SCAPVdd, chipCap.SCAPVss, scapIR.WorstVDD[nb], scapIR.WorstVSS[nb])
	fmt.Fprintf(&b, "\nshape checks (paper: SCAP > 2x CAP; IR-drop roughly doubles):\n")
	fmt.Fprintf(&b, "  SCAP/CAP power ratio: %.2f (paper: 2.26)\n", chipCap.SCAPVdd/chipCap.CAPVdd)
	fmt.Fprintf(&b, "  SCAP/CAP VDD-drop ratio: %.2f (paper: 0.26/0.128 = 2.0)\n",
		scapIR.WorstVDD[nb]/capIR.WorstVDD[nb])
	return b.String(), nil
}
