// Package repro regenerates every table and figure of the paper's
// evaluation on the synthetic SOC. Each experiment returns a plain-text
// report juxtaposing the paper's published values with the measured ones,
// so the shape criteria of DESIGN.md can be checked by eye or by the
// benchmark harness. All experiments share one built System and cache the
// expensive artifacts (flows, per-pattern power profiles).
package repro

import (
	"fmt"
	"strings"
	"sync"

	"scap/internal/core"
	"scap/internal/soc"
)

// Runner owns the built system and experiment caches.
type Runner struct {
	Sys  *core.System
	Stat *core.StatAnalysis

	mu       sync.Mutex
	conv     *core.FlowResult
	nw       *core.FlowResult
	convProf []core.PatternProfile
	newProf  []core.PatternProfile
}

// New builds the system at the given scale divisor and runs the statistical
// analysis. Scale 8 is the default experiment scale; unit-style runs use
// larger divisors. The per-pattern analysis layers use every core; use
// NewWorkers to pin the pool size.
func New(scale int) (*Runner, error) {
	return NewWorkers(scale, 0)
}

// NewWorkers is New with an explicit worker-pool size for the
// per-pattern analysis layers (0 = all cores, 1 = exact serial path).
// Reports are identical for any value — the pool only parallelizes
// index-addressed work.
func NewWorkers(scale, workers int) (*Runner, error) {
	cfg := core.DefaultConfig(scale)
	cfg.Workers = workers
	sys, err := core.Build(cfg)
	if err != nil {
		return nil, err
	}
	stat, err := sys.Statistical()
	if err != nil {
		return nil, err
	}
	return &Runner{Sys: sys, Stat: stat}, nil
}

// Conventional returns the cached conventional flow and its power profile.
func (r *Runner) Conventional() (*core.FlowResult, []core.PatternProfile, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.conv == nil {
		fr, err := r.Sys.ConventionalFlow(0)
		if err != nil {
			return nil, nil, err
		}
		prof, err := r.Sys.ProfilePatterns(fr)
		if err != nil {
			return nil, nil, err
		}
		r.conv, r.convProf = fr, prof
	}
	return r.conv, r.convProf, nil
}

// NewProcedure returns the cached noise-tolerant flow and its profile.
func (r *Runner) NewProcedure() (*core.FlowResult, []core.PatternProfile, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nw == nil {
		fr, err := r.Sys.NewProcedureFlow(0)
		if err != nil {
			return nil, nil, err
		}
		prof, err := r.Sys.ProfilePatterns(fr)
		if err != nil {
			return nil, nil, err
		}
		r.nw, r.newProf = fr, prof
	}
	return r.nw, r.newProf, nil
}

// Experiments lists every experiment id in paper order.
var Experiments = []string{
	"table1", "table2", "table3", "table4",
	"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
}

// Run dispatches one experiment by id.
func (r *Runner) Run(id string) (string, error) {
	switch id {
	case "table1":
		return r.Table1()
	case "table2":
		return r.Table2()
	case "table3":
		return r.Table3()
	case "table4":
		return r.Table4()
	case "fig1":
		return r.Fig1()
	case "fig2":
		return r.Fig2()
	case "fig3":
		return r.Fig3()
	case "fig4":
		return r.Fig4()
	case "fig5":
		return r.Fig5()
	case "fig6":
		return r.Fig6()
	case "fig7":
		return r.Fig7()
	case "ext-functional":
		return r.ExtFunctional()
	case "ext-ftas":
		return r.ExtFTAS()
	case "ext-quality":
		return r.ExtQuality()
	case "ext-sched":
		return r.ExtSched()
	default:
		return "", fmt.Errorf("repro: unknown experiment %q (have %s)",
			id, strings.Join(Experiments, ", "))
	}
}

// All runs every experiment and concatenates the reports.
func (r *Runner) All() (string, error) {
	var b strings.Builder
	for _, id := range Experiments {
		s, err := r.Run(id)
		if err != nil {
			return "", fmt.Errorf("%s: %w", id, err)
		}
		b.WriteString(s)
		b.WriteString("\n")
	}
	return b.String(), nil
}

// header renders an experiment banner.
func header(title string) string {
	line := strings.Repeat("=", len(title))
	return fmt.Sprintf("%s\n%s\n", title, line)
}

// hotBlockName names the statistically hottest block (B5 by construction).
func (r *Runner) hotBlockName() string {
	return soc.BlockName(r.Stat.HotBlock)
}
