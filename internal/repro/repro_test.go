package repro

import (
	"strings"
	"sync"
	"testing"
)

var (
	ronce sync.Once
	rg    *Runner
	rerr  error
)

func runner(t *testing.T) *Runner {
	t.Helper()
	ronce.Do(func() { rg, rerr = New(48) })
	if rerr != nil {
		t.Fatal(rerr)
	}
	return rg
}

func TestAllExperimentsProduceReports(t *testing.T) {
	r := runner(t)
	for _, id := range Experiments {
		out, err := r.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(out) < 80 {
			t.Fatalf("%s: suspiciously short report:\n%s", id, out)
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	r := runner(t)
	if _, err := r.Run("table99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable3ReportsDoubling(t *testing.T) {
	r := runner(t)
	out, err := r.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Case2/Case1 chip power ratio: 2.00") {
		t.Fatalf("Table 3 missing the doubling check:\n%s", out)
	}
	if !strings.Contains(out, "hottest block: B5") {
		t.Fatalf("Table 3 hot block is not B5:\n%s", out)
	}
}

func TestTable4SCAPAboveCAP(t *testing.T) {
	r := runner(t)
	out, err := r.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "SCAP/CAP power ratio:") {
		t.Fatalf("Table 4 missing ratio:\n%s", out)
	}
}

func TestFig2AndFig6Contrast(t *testing.T) {
	r := runner(t)
	f2, err := r.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	f6, err := r.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"threshold", "paper: 2253 of 5846"} {
		if !strings.Contains(f2, want) {
			t.Fatalf("Fig2 missing %q", want)
		}
	}
	for _, want := range []string{"quiet prefix", "paper: 57 of 6490"} {
		if !strings.Contains(f6, want) {
			t.Fatalf("Fig6 missing %q", want)
		}
	}
}

func TestFig7RegionsPresent(t *testing.T) {
	r := runner(t)
	out, err := r.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Region 1") || !strings.Contains(out, "Region 2") {
		t.Fatalf("Fig7 missing regions:\n%s", out)
	}
}

func TestAllConcatenates(t *testing.T) {
	r := runner(t)
	out, err := r.All()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"Table 1", "Table 4", "Figure 1", "Figure 7"} {
		if !strings.Contains(out, id) {
			t.Fatalf("All() missing %s", id)
		}
	}
}
