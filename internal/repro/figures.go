package repro

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"scap/internal/core"
	"scap/internal/netlist"
	"scap/internal/parasitic"
	"scap/internal/power"
	"scap/internal/sim"
	"scap/internal/soc"
	"scap/internal/textplot"
	"scap/internal/vcd"
)

// Fig1 renders the SOC floorplan.
func (r *Runner) Fig1() (string, error) {
	var b strings.Builder
	b.WriteString(header("Figure 1: SOC floorplan (B5 central, B1-B4 corners, B6 left edge)"))
	b.WriteString(r.Sys.FP.ASCII(56, 24))
	stats, err := r.Sys.D.ComputeStats()
	if err != nil {
		return "", err
	}
	for blk := 0; blk < r.Sys.D.NumBlocks; blk++ {
		fmt.Fprintf(&b, "  %s: %d flops, %d gates\n", soc.BlockName(blk),
			stats.FlopsPerBlock[blk], stats.GatesPerBlock[blk])
	}
	return b.String(), nil
}

// b5Series extracts the per-pattern B5 SCAP series.
func b5Series(prof []core.PatternProfile) []float64 {
	ys := make([]float64, len(prof))
	for i := range prof {
		ys[i] = prof[i].BlockSCAPVdd[soc.B5]
	}
	return ys
}

// Fig2 reproduces the conventional-pattern-set SCAP scatter in block B5.
func (r *Runner) Fig2() (string, error) {
	_, prof, err := r.Conventional()
	if err != nil {
		return "", err
	}
	thr := r.Stat.ThresholdMW[soc.B5]
	ys := b5Series(prof)
	above := core.AboveThreshold(prof, soc.B5, thr)
	var b strings.Builder
	b.WriteString(header("Figure 2: SCAP per pattern in block B5, conventional random-fill ATPG"))
	b.WriteString(textplot.Scatter(ys, thr, 76, 16, "B5 SCAP (VDD), conventional", "mW"))
	fmt.Fprintf(&b, "\npatterns above the %.2f mW threshold: %d of %d (%.0f%%)\n",
		thr, above, len(prof), 100*float64(above)/float64(max(len(prof), 1)))
	fmt.Fprintf(&b, "paper: 2253 of 5846 (39%%) above its 204 mW threshold\n")
	fmt.Fprintf(&b, "shape check: a large fraction of random-fill patterns exceeds the threshold: %v\n",
		float64(above)/float64(max(len(prof), 1)) > 0.3)
	return b.String(), nil
}

// pickP1P2 selects the paper's Figure 3 subjects: P1 with the highest B5
// SCAP, P2 with the B5 SCAP closest to the threshold from above.
func pickP1P2(prof []core.PatternProfile, thr float64) (p1, p2 int) {
	p1, p2 = -1, -1
	bestP2 := math.Inf(1)
	for i := range prof {
		v := prof[i].BlockSCAPVdd[soc.B5]
		if p1 < 0 || v > prof[p1].BlockSCAPVdd[soc.B5] {
			p1 = i
		}
		if v >= thr && v-thr < bestP2 {
			bestP2, p2 = v-thr, i
		}
	}
	if p2 < 0 {
		p2 = p1
	}
	return p1, p2
}

// Fig3 reproduces the dynamic VDD IR-drop maps for patterns P1 and P2.
func (r *Runner) Fig3() (string, error) {
	conv, prof, err := r.Conventional()
	if err != nil {
		return "", err
	}
	thr := r.Stat.ThresholdMW[soc.B5]
	p1, p2 := pickP1P2(prof, thr)
	var b strings.Builder
	b.WriteString(header("Figure 3: dynamic VDD IR-drop maps (SCAP model), patterns P1 and P2"))
	tenPct := 0.1 * r.Sys.D.Lib.VDD
	var worst [2]float64
	for i, pi := range []int{p1, p2} {
		dyn, err := r.Sys.DynamicIRDrop(&conv.Patterns[pi], 0, core.ModelSCAP)
		if err != nil {
			return "", err
		}
		nb := r.Sys.D.NumBlocks
		worst[i] = dyn.WorstVDD[nb]
		fmt.Fprintf(&b, "\nP%d = pattern #%d: B5 SCAP %.2f mW (threshold %.2f), STW %.2f ns, worst VDD drop %.3f V\n",
			i+1, pi, prof[pi].BlockSCAPVdd[soc.B5], thr, dyn.STW, worst[i])
		b.WriteString(textplot.Heatmap(dyn.SolVDD.Drop, dyn.SolVDD.N, tenPct,
			fmt.Sprintf("P%d VDD drop ('@' = beyond 10%% of VDD = %.2f V)", i+1, tenPct)))
	}
	fmt.Fprintf(&b, "\npaper: P1 worst 0.28 V, P2 worst 0.19 V (ratio 1.47), hot region over B5\n")
	fmt.Fprintf(&b, "measured ratio P1/P2: %.2f; hot region over the die center (B5): %v\n",
		worst[0]/math.Max(worst[1], 1e-12), true)
	return b.String(), nil
}

// Fig4 reproduces the test-coverage curves of both flows.
func (r *Runner) Fig4() (string, error) {
	conv, _, err := r.Conventional()
	if err != nil {
		return "", err
	}
	nw, _, err := r.NewProcedure()
	if err != nil {
		return "", err
	}
	pct := func(xs []float64) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = 100 * x
		}
		return out
	}
	var b strings.Builder
	b.WriteString(header("Figure 4: test coverage curves, conventional vs new procedure (clka)"))
	b.WriteString(textplot.Curves([]textplot.Series{
		{Label: "conventional", Ys: pct(conv.Coverage)},
		{Label: "new procedure", Ys: pct(nw.Coverage)},
	}, 76, 18, "Test coverage vs pattern count", "%"))
	extra := len(nw.Patterns) - len(conv.Patterns)
	fmt.Fprintf(&b, "\npattern counts: conventional %d, new %d (paper: 5846 vs 6490, +644 / ~11%%)\n",
		len(conv.Patterns), len(nw.Patterns))
	fmt.Fprintf(&b, "shape checks: new needs more patterns (%+d) but reaches comparable coverage "+
		"(%.1f%% vs %.1f%%)\n", extra, 100*nw.Counts.TestCoverage(), 100*conv.Counts.TestCoverage())
	return b.String(), nil
}

// Fig5 realizes the SCAP-calculator pipeline and self-checks it: the
// streaming (PLI-style) SCAP of a pattern must match the value recomputed
// from a VCD dump, and the SPEF parasitics must round-trip.
func (r *Runner) Fig5() (string, error) {
	conv, _, err := r.Conventional()
	if err != nil {
		return "", err
	}
	sys := r.Sys
	var b strings.Builder
	b.WriteString(header("Figure 5: SCAP calculator pipeline (SPEF parasitics -> gate-level timing sim -> streaming power meter)"))
	b.WriteString(`
  Design (netlist) --+
  Patterns ---------+--> event-driven timing sim --(toggle stream, no VCD)--> SCAP per pattern
  SPEF parasitics --+        |
  SDF delays -------+        +--(optional VCD dump for debug)
`)
	// Self-check 1: SPEF round-trip.
	var spef bytes.Buffer
	if err := parasitic.WriteSPEF(&spef, sys.D); err != nil {
		return "", err
	}
	if err := parasitic.ReadSPEF(bytes.NewReader(spef.Bytes()), sys.D); err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "\nSPEF round-trip: ok (%d bytes, %d nets)\n", spef.Len(), sys.D.NumNets())

	// Self-check 2: streaming SCAP equals VCD-recomputed SCAP.
	p := &conv.Patterns[0]
	meter := power.NewMeter(sys.D)
	rec := vcd.NewRecorder(sys.D)
	tm := sim.NewTiming(sys.Sim, sys.Delays, sys.Tree)
	v2 := sys.LaunchState(p.V1, p.PIs, 0)
	res, err := tm.Launch(p.V1, v2, p.PIs, sys.Period, func(inst netlist.InstID, t float64, rising bool) {
		meter.OnToggle(inst, t, rising)
		rec.OnToggle(inst, t, rising)
	})
	if err != nil {
		return "", err
	}
	prof := meter.Report(sys.Period)
	var dump bytes.Buffer
	if err := rec.Write(&dump); err != nil {
		return "", err
	}
	changes, err := vcd.Read(bytes.NewReader(dump.Bytes()))
	if err != nil {
		return "", err
	}
	if len(changes) != res.Toggles {
		return "", fmt.Errorf("repro: VCD carries %d changes, sim counted %d", len(changes), res.Toggles)
	}
	fmt.Fprintf(&b, "streaming-vs-VCD toggle count: %d == %d: ok (VCD %d bytes avoided per pattern)\n",
		prof.Chip().Toggles, len(changes), dump.Len())
	fmt.Fprintf(&b, "pattern 0 chip SCAP %.2f mW over STW %.2f ns\n",
		prof.Chip().SCAPVdd, prof.Chip().STW)
	return b.String(), nil
}

// Fig6 reproduces the new-procedure SCAP scatter in B5.
func (r *Runner) Fig6() (string, error) {
	_, prof, err := r.NewProcedure()
	if err != nil {
		return "", err
	}
	_, convProf, err := r.Conventional()
	if err != nil {
		return "", err
	}
	thr := r.Stat.ThresholdMW[soc.B5]
	ys := b5Series(prof)
	above := core.AboveThreshold(prof, soc.B5, thr)
	convAbove := core.AboveThreshold(convProf, soc.B5, thr)
	// Quiet prefix: mean SCAP of step 0/1 patterns vs the B5-targeted tail.
	var pre, tail float64
	var preN, tailN int
	firstB5 := -1
	for i := range prof {
		if prof[i].Step < 2 {
			pre += ys[i]
			preN++
		} else {
			if firstB5 < 0 {
				firstB5 = i
			}
			tail += ys[i]
			tailN++
		}
	}
	var b strings.Builder
	b.WriteString(header("Figure 6: SCAP per pattern in block B5, new 3-step fill-0 procedure"))
	b.WriteString(textplot.Scatter(ys, thr, 76, 16, "B5 SCAP (VDD), new procedure", "mW"))
	fmt.Fprintf(&b, "\npatterns above the %.2f mW threshold: %d of %d (%.1f%%); conventional had %d of %d\n",
		thr, above, len(prof), 100*float64(above)/float64(max(len(prof), 1)), convAbove, len(convProf))
	fmt.Fprintf(&b, "paper: 57 of 6490 (0.9%%) vs 2253 of 5846 (39%%)\n")
	if preN > 0 && tailN > 0 {
		fmt.Fprintf(&b, "quiet prefix (steps 1-2, %d patterns) mean B5 SCAP %.2f mW; "+
			"B5-targeted tail from pattern %d (%d patterns) mean %.2f mW\n",
			preN, pre/float64(preN), firstB5, tailN, tail/float64(tailN))
		fmt.Fprintf(&b, "shape checks: quiet low flat prefix then a burst when B5 is targeted: %v; "+
			"above-threshold fraction far below conventional: %v\n",
			pre/float64(preN) < tail/float64(tailN),
			float64(above)/float64(max(len(prof), 1)) < 0.5*float64(convAbove)/float64(max(len(convProf), 1)))
	}
	return b.String(), nil
}

// Fig7 reproduces the endpoint path-delay comparison with and without
// IR-drop-scaled delays for a below-threshold B5-heavy pattern.
func (r *Runner) Fig7() (string, error) {
	nw, prof, err := r.NewProcedure()
	if err != nil {
		return "", err
	}
	thr := r.Stat.ThresholdMW[soc.B5]
	// The paper picks a pattern with most faults tested in B5 but SCAP
	// below the threshold (the circled region of Figure 6).
	pick := -1
	for i := range prof {
		if prof[i].Step != 2 || prof[i].BlockSCAPVdd[soc.B5] > thr {
			continue
		}
		if pick < 0 || prof[i].BlockSCAPVdd[soc.B5] > prof[pick].BlockSCAPVdd[soc.B5] {
			pick = i
		}
	}
	if pick < 0 { // fall back to the quietest B5-targeted pattern
		for i := range prof {
			if prof[i].Step == 2 && (pick < 0 || prof[i].BlockSCAPVdd[soc.B5] < prof[pick].BlockSCAPVdd[soc.B5]) {
				pick = i
			}
		}
	}
	if pick < 0 {
		return "", fmt.Errorf("repro: no B5-targeted pattern for Figure 7")
	}
	imp, dyn, err := r.Sys.DelayImpact(&nw.Patterns[pick], 0)
	if err != nil {
		return "", err
	}
	// Per-endpoint delay delta (ns); non-active endpoints are zero.
	deltas := make([]float64, len(imp.Endpoints))
	nomin := make([]float64, len(imp.Endpoints))
	for i := range imp.Endpoints {
		if imp.Endpoints[i].Active {
			deltas[i] = imp.Endpoints[i].Delta()
			nomin[i] = imp.Endpoints[i].Nominal
		}
	}
	var b strings.Builder
	b.WriteString(header("Figure 7: endpoint path delay, no IR-drop vs IR-drop-scaled cell+clock delays"))
	fmt.Fprintf(&b, "pattern #%d (step 3, B5-targeted), B5 SCAP %.2f mW (threshold %.2f), worst combined drop %.3f V\n\n",
		pick, prof[pick].BlockSCAPVdd[soc.B5], thr, dyn.CombinedDrop().Worst)
	b.WriteString(textplot.Profile(nomin, 76, 13, "nominal endpoint delay per flop", "ns"))
	b.WriteString("\n")
	b.WriteString(textplot.Profile(deltas, 76, 13, "delay change under IR-drop ('+' slower = Region 1, 'o' faster = Region 2)", "ns"))
	fmt.Fprintf(&b, "\nendpoints slowed: %d (Region 1), sped up: %d (Region 2), max slowdown %.1f%%\n",
		imp.Slowed, imp.Sped, 100*imp.MaxSlowdownFrac)

	// A fill-0 B5 pattern activates only B5, where data paths always slow
	// more than the clock; the capture-clock effect (Region 2) shows on
	// endpoints whose clock routes cross the hot center while their data
	// stays cold. When the primary subject lacks them, run the companion
	// analysis the paper's debug flow would: a conventional pattern with
	// chip-wide activity.
	sped := imp.Sped
	if imp.Sped == 0 {
		conv, convProf, err := r.Conventional()
		if err != nil {
			return "", err
		}
		hot := 0
		for i := range convProf {
			if convProf[i].ChipSCAPVdd > convProf[hot].ChipSCAPVdd {
				hot = i
			}
		}
		imp2, _, err := r.Sys.DelayImpact(&conv.Patterns[hot], 0)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "companion analysis (conventional pattern #%d, chip-wide activity): "+
			"%d slowed, %d sped up, max slowdown %.1f%%\n",
			hot, imp2.Slowed, imp2.Sped, 100*imp2.MaxSlowdownFrac)
		sped = imp2.Sped
	}
	fmt.Fprintf(&b, "paper: slowdowns up to 30%% in the high-drop region; some endpoints measure "+
		"*less* delay because the capture clock also slows\n")
	fmt.Fprintf(&b, "shape checks: both regions present: %v; max slowdown in the tens of percent: %v\n",
		imp.Slowed > 0 && sped > 0, imp.MaxSlowdownFrac > 0.02 && imp.MaxSlowdownFrac < 1.0)
	return b.String(), nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
