package repro

import "testing"

// TestReportsDeterministic: the whole pipeline is seeded, so two fresh
// runners at the same scale must produce byte-identical reports for every
// experiment.
func TestReportsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r1, err := New(96)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := New(96)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range Experiments {
		a, err := r1.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		b, err := r2.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a != b {
			t.Fatalf("%s: reports differ between identical runs", id)
		}
	}
}
