// Package clocktree models the chip's clock distribution: a buffered tree
// rooted at the die center whose per-flop insertion delay grows with routed
// distance, producing realistic skew between launch and capture flops.
//
// The tree matters twice in the reproduction. First, skew offsets launch
// and capture edges in the timing simulator. Second — the paper's Figure 7
// "Region 2" effect — clock buffers sit in the same voltage-drop regions as
// data logic, so under IR-drop the *capture clock* also slows down; when the
// clock path to a capture flop slows more than the data path, the measured
// endpoint delay decreases. ScaledArrival reproduces exactly that by
// re-deriving a flop's insertion delay with every route segment derated by
// the local voltage drop.
package clocktree

import (
	"math/rand"

	"scap/internal/netlist"
	"scap/internal/place"
)

// Params calibrates the clock-tree delay model.
type Params struct {
	BaseInsertion float64 // ns of fixed insertion delay at the root
	DelayPerUnit  float64 // ns of insertion delay per die unit of route
	JitterNs      float64 // uniform per-flop random skew component (+/- half)
	SegmentLen    float64 // die units between buffer stages along a route
}

// DefaultParams returns 180 nm-magnitude clock-tree parameters: sub-ns
// insertion, a few hundred ps of systematic skew across the die.
func DefaultParams() Params {
	return Params{BaseInsertion: 0.8, DelayPerUnit: 0.0007, JitterNs: 0.08, SegmentLen: 80}
}

// segment is one buffered stretch of a flop's clock route.
type segment struct {
	X, Y  float64 // buffer location
	Delay float64 // nominal delay contributed by this stage, ns
}

// Tree is the built clock network: per-flop arrival times and routes.
type Tree struct {
	SourceX, SourceY float64

	arrival map[netlist.InstID]float64
	routes  map[netlist.InstID][]segment

	MaxSkew       float64 // ns, max minus min arrival over all flops
	MeanInsertion float64 // ns
}

// Build routes a clock from the die center to every flop of d along an
// L-shaped path with a buffer every SegmentLen units, and returns the tree.
// Same design/seed give an identical tree.
func Build(d *netlist.Design, fp *place.Floorplan, p Params, seed int64) *Tree {
	r := rand.New(rand.NewSource(seed))
	cx, cy := fp.W/2, fp.H/2
	t := &Tree{
		SourceX: cx, SourceY: cy,
		arrival: make(map[netlist.InstID]float64, len(d.Flops)),
		routes:  make(map[netlist.InstID][]segment, len(d.Flops)),
	}
	if p.SegmentLen <= 0 {
		p.SegmentLen = 80
	}
	minA, maxA, sum := 1e18, -1e18, 0.0
	for _, f := range d.Flops {
		inst := d.Inst(f)
		segs := routeL(cx, cy, inst.X, inst.Y, p)
		jitter := (r.Float64() - 0.5) * p.JitterNs
		a := p.BaseInsertion + jitter
		for _, s := range segs {
			a += s.Delay
		}
		t.arrival[f] = a
		t.routes[f] = segs
		if a < minA {
			minA = a
		}
		if a > maxA {
			maxA = a
		}
		sum += a
	}
	if len(d.Flops) > 0 {
		t.MaxSkew = maxA - minA
		t.MeanInsertion = sum / float64(len(d.Flops))
	}
	return t
}

// routeL samples an L-shaped route (horizontal then vertical) from the
// source to the flop, one segment per SegmentLen units of travel.
func routeL(cx, cy, fx, fy float64, p Params) []segment {
	var segs []segment
	emit := func(x0, y0, x1, y1 float64) {
		dx, dy := x1-x0, y1-y0
		dist := dx
		if dist < 0 {
			dist = -dist
		}
		if dy != 0 {
			dist = dy
			if dist < 0 {
				dist = -dist
			}
		}
		n := int(dist/p.SegmentLen) + 1
		for i := 0; i < n; i++ {
			frac0 := float64(i) / float64(n)
			frac1 := float64(i+1) / float64(n)
			mx := x0 + dx*(frac0+frac1)/2
			my := y0 + dy*(frac0+frac1)/2
			segs = append(segs, segment{
				X: mx, Y: my,
				Delay: p.DelayPerUnit * dist / float64(n),
			})
		}
	}
	emit(cx, cy, fx, cy) // horizontal leg
	emit(fx, cy, fx, fy) // vertical leg
	return segs
}

// Arrival returns the nominal clock arrival time (ns after the clock-source
// edge) at flop f. Flops unknown to the tree get 0.
func (t *Tree) Arrival(f netlist.InstID) float64 { return t.arrival[f] }

// ScaledArrival recomputes the arrival at flop f with every route segment
// derated by the local supply droop: each stage delay is multiplied by
// (1 + kvolt*drop(x, y)), where dropAt samples the IR-drop map (volts) at a
// die location. This is the paper's cell-delay-scaling formula applied to
// the clock path.
func (t *Tree) ScaledArrival(f netlist.InstID, kvolt float64, dropAt func(x, y float64) float64) float64 {
	segs, ok := t.routes[f]
	if !ok {
		return 0
	}
	base := t.arrival[f]
	for _, s := range segs {
		base -= s.Delay
	}
	// base now holds insertion + jitter; the root sits at the source.
	a := base * (1 + kvolt*clampNonNeg(dropAt(t.SourceX, t.SourceY)))
	for _, s := range segs {
		a += s.Delay * (1 + kvolt*clampNonNeg(dropAt(s.X, s.Y)))
	}
	return a
}

func clampNonNeg(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}
