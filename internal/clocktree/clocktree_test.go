package clocktree

import (
	"math"
	"testing"

	"scap/internal/netlist"
	"scap/internal/place"
	"scap/internal/soc"
)

func built(t *testing.T) (*netlist.Design, *place.Floorplan, *Tree) {
	t.Helper()
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := place.Place(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	return d, fp, Build(d, fp, DefaultParams(), 5)
}

func TestArrivalsPositiveAndBounded(t *testing.T) {
	d, _, tr := built(t)
	p := DefaultParams()
	for _, f := range d.Flops {
		a := tr.Arrival(f)
		if a <= 0 {
			t.Fatalf("flop %d arrival %v", f, a)
		}
		// Upper bound: base + jitter + longest possible route.
		max := p.BaseInsertion + p.JitterNs + p.DelayPerUnit*(place.DieSize*2)
		if a > max {
			t.Fatalf("flop %d arrival %v exceeds bound %v", f, a, max)
		}
	}
	if tr.MaxSkew <= 0 || tr.MeanInsertion <= 0 {
		t.Fatalf("skew/insertion degenerate: %v %v", tr.MaxSkew, tr.MeanInsertion)
	}
	// Skew should be a respectable fraction of a ns but well under a cycle.
	if tr.MaxSkew > 3 {
		t.Fatalf("MaxSkew %v implausibly large", tr.MaxSkew)
	}
}

func TestArrivalGrowsWithDistanceOnAverage(t *testing.T) {
	d, fp, tr := built(t)
	cx, cy := fp.W/2, fp.H/2
	var nearSum, farSum float64
	var nearN, farN int
	for _, f := range d.Flops {
		inst := d.Inst(f)
		dist := math.Abs(inst.X-cx) + math.Abs(inst.Y-cy)
		if dist < 300 {
			nearSum += tr.Arrival(f)
			nearN++
		} else if dist > 600 {
			farSum += tr.Arrival(f)
			farN++
		}
	}
	if nearN == 0 || farN == 0 {
		t.Skip("no near/far split at this scale")
	}
	if farSum/float64(farN) <= nearSum/float64(nearN) {
		t.Fatalf("far flops (%v) not slower than near flops (%v)",
			farSum/float64(farN), nearSum/float64(nearN))
	}
}

func TestDeterminism(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := place.Place(d, 1)
	t1 := Build(d, fp, DefaultParams(), 5)
	t2 := Build(d, fp, DefaultParams(), 5)
	for _, f := range d.Flops {
		if t1.Arrival(f) != t2.Arrival(f) {
			t.Fatalf("arrival differs for flop %d", f)
		}
	}
}

func TestScaledArrivalNoDropEqualsNominal(t *testing.T) {
	d, _, tr := built(t)
	zero := func(x, y float64) float64 { return 0 }
	for _, f := range d.Flops[:10] {
		nom, sc := tr.Arrival(f), tr.ScaledArrival(f, 0.9, zero)
		if math.Abs(nom-sc) > 1e-9 {
			t.Fatalf("flop %d: scaled %v != nominal %v with zero drop", f, sc, nom)
		}
	}
}

func TestScaledArrivalSlowsUnderDrop(t *testing.T) {
	d, _, tr := built(t)
	uniform := func(x, y float64) float64 { return 0.2 }
	for _, f := range d.Flops[:10] {
		nom, sc := tr.Arrival(f), tr.ScaledArrival(f, 0.9, uniform)
		want := nom * 1.18
		if math.Abs(sc-want) > 1e-6*want {
			t.Fatalf("flop %d: scaled %v, want %v (uniform 0.2 V drop)", f, sc, want)
		}
	}
	// Negative drop must clamp, never speed the clock up.
	boost := func(x, y float64) float64 { return -0.3 }
	f := d.Flops[0]
	if sc := tr.ScaledArrival(f, 0.9, boost); sc < tr.Arrival(f)-1e-9 {
		t.Fatalf("negative drop sped up the clock: %v < %v", sc, tr.Arrival(f))
	}
}

func TestScaledArrivalLocalizedDrop(t *testing.T) {
	// A drop localized to the die center must slow every flop (all routes
	// start at the center), but flops far from the center less in relative
	// terms than ones inside the hot region.
	d, fp, tr := built(t)
	hot := func(x, y float64) float64 {
		dx, dy := x-fp.W/2, y-fp.H/2
		if dx*dx+dy*dy < 200*200 {
			return 0.25
		}
		return 0
	}
	var inRel, outRel float64
	var inN, outN int
	for _, f := range d.Flops {
		inst := d.Inst(f)
		rel := tr.ScaledArrival(f, 0.9, hot) / tr.Arrival(f)
		if rel < 1-1e-9 {
			t.Fatalf("flop %d sped up: %v", f, rel)
		}
		dx, dy := inst.X-fp.W/2, inst.Y-fp.H/2
		if dx*dx+dy*dy < 200*200 {
			inRel += rel
			inN++
		} else {
			outRel += rel
			outN++
		}
	}
	if inN == 0 || outN == 0 {
		t.Skip("no inside/outside split")
	}
	if inRel/float64(inN) <= outRel/float64(outN) {
		t.Fatalf("hot-region flops (%v) not slowed more than cold (%v)",
			inRel/float64(inN), outRel/float64(outN))
	}
}

func TestUnknownFlop(t *testing.T) {
	_, _, tr := built(t)
	if tr.Arrival(netlist.InstID(1<<30)) != 0 {
		t.Fatal("unknown flop should have zero arrival")
	}
	if tr.ScaledArrival(netlist.InstID(1<<30), 0.9, func(x, y float64) float64 { return 1 }) != 0 {
		t.Fatal("unknown flop should have zero scaled arrival")
	}
}
