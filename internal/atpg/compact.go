package atpg

import (
	"fmt"

	"scap/internal/fault"
	"scap/internal/faultsim"
	"scap/internal/logic"
)

// CompactReverse applies the classical reverse-order static compaction
// pass: patterns are fault-simulated from last to first, and a pattern is
// kept only if it detects at least one fault no later-kept pattern covers.
// The returned subset (in original order) preserves the set's detected-
// fault coverage exactly. The paper's related work ([17]) studies power
// supply noise during exactly this compaction loop; combined with the SCAP
// screen it lets a flow drop hot patterns whose faults are covered
// elsewhere.
//
// The fault list l must be fresh (all faults undetected); its statuses are
// updated to reflect the compacted set.
func CompactReverse(fs *faultsim.Sim, l *fault.List, pats []Pattern, dom int) ([]Pattern, error) {
	d := l.D
	for _, st := range l.Status {
		if st == fault.Detected {
			return nil, fmt.Errorf("atpg: CompactReverse needs a fresh fault list")
		}
	}
	subset := l.InDomain(dom)
	keep := make([]bool, len(pats))

	for hi := len(pats); hi > 0; hi -= 64 {
		lo := hi - 64
		if lo < 0 {
			lo = 0
		}
		chunk := pats[lo:hi]
		v1 := make([]logic.Word, len(d.Flops))
		pis := make([]logic.Word, len(d.PIs))
		for s := range chunk {
			for i, v := range chunk[s].V1 {
				v1[i] = v1[i].Set(uint(s), v)
			}
			for i, v := range chunk[s].PIs {
				pis[i] = pis[i].Set(uint(s), v)
			}
		}
		valid := uint64(1)<<uint(len(chunk)) - 1
		if len(chunk) == 64 {
			valid = ^uint64(0)
		}
		b := fs.GoodSim(v1, pis, dom, valid)
		for _, fi := range subset {
			if l.Status[fi] != fault.Undetected {
				continue
			}
			det := fs.Detect(b, &l.Faults[fi])
			if det == 0 {
				continue
			}
			// Credit the fault to the latest pattern in original order:
			// the highest set slot (greedy reverse order semantics).
			slot := 63
			for det&(1<<uint(slot)) == 0 {
				slot--
			}
			keep[lo+slot] = true
			l.MarkDetected(fi, lo+slot)
		}
	}

	out := make([]Pattern, 0, len(pats))
	for i := range pats {
		if keep[i] {
			out = append(out, pats[i])
		}
	}
	return out, nil
}
