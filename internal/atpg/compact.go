package atpg

import (
	"fmt"
	"math/bits"

	"scap/internal/fault"
	"scap/internal/faultsim"
	"scap/internal/logic"
)

// CompactReverse applies the classical reverse-order static compaction
// pass: patterns are fault-simulated from last to first, and a pattern is
// kept only if it detects at least one fault no later-kept pattern covers.
// The returned subset (in original order) preserves the set's detected-
// fault coverage exactly. The paper's related work ([17]) studies power
// supply noise during exactly this compaction loop; combined with the SCAP
// screen it lets a flow drop hot patterns whose faults are covered
// elsewhere.
//
// The fault list l must be fresh (all faults undetected); its statuses are
// updated to reflect the compacted set.
func CompactReverse(fs *faultsim.Sim, l *fault.List, pats []Pattern, dom int) ([]Pattern, error) {
	for _, st := range l.Status {
		if st == fault.Detected {
			return nil, fmt.Errorf("atpg: CompactReverse needs a fresh fault list")
		}
	}
	subset := l.InDomain(dom)
	keep := make([]bool, len(pats))

	var v1, pis []logic.Word
	slotV1 := make([][]logic.V, 0, 64)
	slotPI := make([][]logic.V, 0, 64)
	dets := make([]uint64, len(subset))
	for hi := len(pats); hi > 0; hi -= 64 {
		lo := hi - 64
		if lo < 0 {
			lo = 0
		}
		chunk := pats[lo:hi]
		slotV1, slotPI = slotV1[:0], slotPI[:0]
		for s := range chunk {
			slotV1 = append(slotV1, chunk[s].V1)
			slotPI = append(slotPI, chunk[s].PIs)
		}
		v1 = logic.PackSlots(v1, slotV1)
		pis = logic.PackSlots(pis, slotPI)
		b := fs.GoodSim(v1, pis, dom, logic.ValidMask(len(chunk)))
		// The re-simulation of the chunk fans out across fs.Workers; the
		// keep/mark merge below is serial in subset order, so the result
		// is bit-identical to the serial pass.
		fs.DetectAll(l, subset, b, dets, true)
		for i, fi := range subset {
			det := dets[i]
			if det == 0 || l.Status[fi] != fault.Undetected {
				continue
			}
			// Credit the fault to the latest pattern in original order:
			// the highest set slot (greedy reverse order semantics).
			slot := 63 - bits.LeadingZeros64(det)
			keep[lo+slot] = true
			l.MarkDetected(fi, lo+slot)
		}
	}

	out := make([]Pattern, 0, len(pats))
	for i := range pats {
		if keep[i] {
			out = append(out, pats[i])
		}
	}
	return out, nil
}
