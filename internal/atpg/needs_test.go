package atpg

import (
	"testing"

	"scap/internal/cell"
	"scap/internal/logic"
)

// TestPropagationNeedsTruthTable brute-force verifies the side-input tables
// PODEM's D-frontier uses: with the needs applied, flipping the faulty pin
// must flip the gate output (the fault effect propagates); any unspecified
// side input must not be able to block it once the needs are set.
func TestPropagationNeedsTruthTable(t *testing.T) {
	lib := cell.New180nm()
	for _, k := range lib.Kinds() {
		if k.IsSequential() {
			continue
		}
		n := k.NumInputs()
		for pin := 0; pin < n; pin++ {
			needs := propagationNeeds(k, pin)
			// Assemble the constraint vector: needs pins fixed, others free.
			fixed := make([]logic.V, n)
			for i := range fixed {
				fixed[i] = logic.X
			}
			ok := true
			for _, nd := range needs {
				if nd.pin == pin {
					t.Fatalf("%v pin %d: needs constrain the fault pin itself", k, pin)
				}
				if fixed[nd.pin] != logic.X {
					t.Fatalf("%v pin %d: duplicate need on pin %d", k, pin, nd.pin)
				}
				fixed[nd.pin] = nd.val
			}
			// Enumerate all assignments of the remaining free pins; for the
			// needs to be sufficient, EVERY completion must propagate.
			free := []int{}
			for i := 0; i < n; i++ {
				if i != pin && fixed[i] == logic.X {
					free = append(free, i)
				}
			}
			for m := 0; m < 1<<len(free); m++ {
				in0 := make([]logic.V, n)
				in1 := make([]logic.V, n)
				for i := 0; i < n; i++ {
					switch {
					case i == pin:
						in0[i], in1[i] = logic.Zero, logic.One
					case fixed[i] != logic.X:
						in0[i], in1[i] = fixed[i], fixed[i]
					default:
						// free pin: value from the enumeration mask
						v := logic.Zero
						for fi, fp := range free {
							if fp == i && m&(1<<fi) != 0 {
								v = logic.One
							}
						}
						in0[i], in1[i] = v, v
					}
				}
				if cell.Eval(k, in0) == cell.Eval(k, in1) {
					ok = false
				}
			}
			if !ok {
				t.Errorf("%v pin %d: needs %v do not guarantee propagation", k, pin, needs)
			}
		}
	}
}
