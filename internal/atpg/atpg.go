package atpg

import (
	"fmt"
	"time"

	"scap/internal/fault"
	"scap/internal/faultsim"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/obs"
	"scap/internal/parallel"
	"scap/internal/scan"
)

// ATPG observability: the fill/expansion step is attributed separately
// from generation (it runs once per emitted pattern), timed only while
// instrumentation is enabled and flushed once per Run. The implication
// counters come from the per-engine genStats sums, so they are identical
// for any worker count.
var (
	cATPGRuns      = obs.NewCounter("atpg.runs")
	cATPGPatterns  = obs.NewCounter("atpg.patterns")
	cFillExpand    = obs.NewCounter("atpg.fill_expansions")
	cFillBusyNs    = obs.NewCounter("atpg.fill_busy_ns")
	cGenWaves      = obs.NewCounter("atpg.implication_waves")
	cSpecWaves     = obs.NewCounter("atpg.spec_waves")
	cSlotsCommit   = obs.NewCounter("atpg.slots_committed")
	cSlotsPrune    = obs.NewCounter("atpg.slots_pruned")
	cGenBacktracks = obs.NewCounter("atpg.backtracks")
	cBTAvoided     = obs.NewCounter("atpg.backtracks_avoided")
)

// tkFaults is the per-fault attribution table: the faults whose PODEM
// search (generation + this lane's compaction attempts) burned the most
// implication waves. Cost and fields are engine-work deltas, which are
// deterministic per (fault, status snapshot) — so the table is
// bit-identical for any GenWorkers value. Recorded in the serial merge.
var tkFaults = obs.NewTopK("atpg.fault_hotspots", 16, "waves",
	"backtracks", "decisions", "spec_waves", "secondaries", "pattern")

func init() {
	obs.RegisterDerived("atpg.waves_per_pattern", func(c map[string]int64) (float64, bool) {
		if c["atpg.patterns"] <= 0 {
			return 0, false
		}
		return float64(c["atpg.implication_waves"]) / float64(c["atpg.patterns"]), true
	})
	obs.RegisterDerived("atpg.spec_commit_share", func(c map[string]int64) (float64, bool) {
		tot := c["atpg.slots_committed"] + c["atpg.slots_pruned"]
		if tot <= 0 {
			return 0, false
		}
		return float64(c["atpg.slots_committed"]) / float64(tot), true
	})
	obs.RegisterDerived("atpg.backtracks_avoided_share", func(c map[string]int64) (float64, bool) {
		if c["atpg.backtracks"] <= 0 {
			return 0, false
		}
		return float64(c["atpg.backtracks_avoided"]) / float64(c["atpg.backtracks"]), true
	})
}

// EngineKind selects the PODEM implication core.
type EngineKind uint8

// Engine kinds. The packed speculative core is the default; the scalar
// core is retained as its cross-validation oracle (both produce
// bit-identical pattern sets, property-tested under -race).
const (
	EnginePacked EngineKind = iota
	EngineScalar
)

// String names the engine kind.
func (k EngineKind) String() string {
	if k == EngineScalar {
		return "scalar"
	}
	return "packed"
}

// Options configures one ATPG run.
type Options struct {
	// Dom is the target clock domain; patterns launch and capture only its
	// flops (the paper generates transition patterns per clock domain).
	Dom int
	// Mode selects launch-off-capture (default) or launch-off-shift.
	Mode LaunchMode
	// Fill is the don't-care fill strategy.
	Fill Fill
	// Seed drives backtrace tie-breaking and random fill.
	Seed int64
	// BacktrackLimit aborts a fault after this many backtracks (default 64).
	BacktrackLimit int
	// MaxPatterns stops the run after this many patterns (0 = unlimited).
	MaxPatterns int
	// Blocks restricts the targeted faults to the given floorplan blocks
	// (nil targets every block) — the knob behind the paper's Step 1/2/3
	// procedure.
	Blocks []int
	// Faults explicitly lists target fault indexes, overriding Dom/Blocks
	// selection (still simulated and dropped against the whole set).
	Faults []int
	// PatternBase offsets the pattern indexes recorded in the fault list's
	// DetectedBy, so multi-step flows keep a global numbering.
	PatternBase int
	// Compaction bounds dynamic compaction: the maximum number of
	// secondary faults merged into one pattern (0 uses the default of 32,
	// negative disables compaction). The paper notes conventional ATPG
	// "targets as many faults per pattern as possible".
	Compaction int
	// CareBudget stops compaction once the cube holds this many state care
	// bits (0 = unlimited). Low-power flows use it to keep the per-pattern
	// care-bit *density* scale-invariant: at reduced design scale an
	// unbounded cube would cover a large fraction of a small block and
	// defeat the fill-0 quieting that full-size designs get for free.
	CareBudget int
	// Engine selects the PODEM implication core: packed speculative
	// (default) or the scalar oracle.
	Engine EngineKind
	// GenWorkers shards test generation itself across per-worker cloned
	// engines (0 = all cores, 1 = serial). Epoch-based scheduling keeps
	// the generated pattern set bit-identical for any worker count.
	GenWorkers int
}

// Pattern is one fully specified launch-off-capture (or -shift) test:
// the scan-in state V1 and the constant primary-input values. V2 derives
// from V1 at launch.
type Pattern struct {
	V1  []logic.V // per flop, design flop order
	PIs []logic.V // per primary input
	// Target is the fault index the pattern was generated for.
	Target int
	// Secondaries lists further fault indexes merged into the pattern by
	// dynamic compaction (each proven detected by construction).
	Secondaries []int
	// Step tags the generation step in multi-step flows (0-based).
	Step int
}

// GenStats tallies implication-engine work over one Run. The totals are
// per-fault additive sums over all worker engines, so they are
// deterministic and independent of the worker count.
type GenStats struct {
	// Waves counts two-frame implication waves, scalar and packed alike.
	Waves int64
	// SpecWaves counts packed speculative pair waves (each prices a
	// decision value and its complement in one wave).
	SpecWaves int64
	// Decisions and Backtracks mirror the classical PODEM effort metrics.
	Decisions  int64
	Backtracks int64
	// SlotsCommitted / SlotsPruned split speculative slots into the ones
	// materialized onto the committed state and the ones killed by the
	// conflict mask.
	SlotsCommitted int64
	SlotsPruned    int64
	// BacktracksAvoided counts flips resolved from an already-computed
	// slot instead of a dedicated discovery-plus-flip wave pair.
	BacktracksAvoided int64
}

// Result is the outcome of one ATPG run.
type Result struct {
	Dom      int
	Mode     LaunchMode
	Fill     Fill
	Patterns []Pattern
	// Subset is the fault-index set that was targeted.
	Subset []int
	// Counts is the subset's status tally after the run.
	Counts fault.Counts
	// Gen aggregates implication-engine work (worker-independent).
	Gen GenStats
}

// Run generates transition-fault patterns for the selected faults with
// PODEM, fills don't-cares, and fault-simulates each 64-pattern batch to
// drop collaterally detected faults. The fault list l is updated in place
// (statuses, detecting pattern indexes).
func Run(fs *faultsim.Sim, l *fault.List, sc *scan.Scan, opts Options) (*Result, error) {
	defer obs.StartSpan("atpg").End()
	d := l.D
	if opts.BacktrackLimit <= 0 {
		opts.BacktrackLimit = 64
	}
	subset := opts.Faults
	if subset == nil {
		subset = l.InDomain(opts.Dom)
		if opts.Blocks != nil {
			want := map[int]bool{}
			for _, b := range opts.Blocks {
				want[b] = true
			}
			filtered := subset[:0:0]
			for _, fi := range subset {
				if want[l.Faults[fi].Block] {
					filtered = append(filtered, fi)
				}
			}
			subset = filtered
		}
	}

	// Faults on primary-input nets cannot launch a transition: the paper's
	// flow holds PIs constant across V1/V2 (low-cost tester).
	for _, fi := range subset {
		if l.Status[fi] == fault.Undetected && d.Nets[l.Faults[fi].Net].PI >= 0 {
			l.Status[fi] = fault.Untestable
		}
	}

	cfg := engineConfig{
		dom:    opts.Dom,
		mode:   opts.Mode,
		limit:  opts.BacktrackLimit,
		packed: opts.Engine == EnginePacked,
	}
	if opts.Blocks != nil {
		cfg.prefer = map[int]bool{}
		for _, b := range opts.Blocks {
			cfg.prefer[b] = true
		}
	}
	cfg.excludePI = map[int]bool{}
	cfg.constPI = map[int]logic.V{}
	if sc != nil {
		cfg.constPI[d.Nets[sc.SE].PI] = logic.Zero
		for _, si := range sc.SIs {
			if opts.Mode == LOC {
				cfg.excludePI[d.Nets[si].PI] = true
			}
		}
		if opts.Mode == LOS {
			cfg.shiftPrev = shiftSources(d, sc)
		}
	}
	eng, err := newEngine(d, cfg)
	if err != nil {
		return nil, fmt.Errorf("atpg: %w", err)
	}
	fil := newFiller(d, sc, opts.Fill, opts.Seed+1)
	fil.targetBlocks = cfg.prefer // FillBlockAware randomizes only these

	res := &Result{Dom: opts.Dom, Mode: opts.Mode, Fill: opts.Fill, Subset: subset}

	maxSec := opts.Compaction
	if maxSec == 0 {
		maxSec = 32
	}
	measureFill := obs.On()
	var fillBusy int64

	// Epoch-based sharded generation. Each epoch snapshots the next (up
	// to) 64 undetected primaries, generates them in parallel on
	// per-worker cloned engines, merges serially in primary order, then
	// fault-simulates the epoch's patterns as one packed batch and drops
	// collateral detections before the next epoch is selected. Because
	// the epoch window is a constant (one batch word, not a function of
	// the worker count), the primaries each worker sees, the statuses
	// frozen during the parallel section and the merge order are all
	// worker-independent — the pattern set is bit-identical for
	// -workers 1, 2 or 64.
	genW := parallel.Resolve(opts.GenWorkers)
	engines := []*engine{eng}

	var (
		slotV1, slotPI [][]logic.V
		v1W, piW       []logic.Word // packed-batch buffers, reused across epochs
		prim           []int        // subset positions targeted this epoch
		outs           []genOut
	)
	cursor := 0
	done := false
	for !done {
		prim = prim[:0]
		for ; cursor < len(subset) && len(prim) < 64; cursor++ {
			if l.Status[subset[cursor]] == fault.Undetected {
				prim = append(prim, cursor)
			}
		}
		if len(prim) == 0 {
			break
		}
		// Secondaries for dynamic compaction are scanned strictly past
		// the epoch window (scanBase), in per-primary strided lanes, so
		// no two primaries claim the same secondary and no primary is
		// claimed mid-epoch.
		scanBase := cursor
		w := genW
		if w > len(prim) {
			w = len(prim)
		}
		for len(engines) < w {
			engines = append(engines, eng.clone())
		}
		if cap(outs) < len(prim) {
			outs = make([]genOut, len(prim))
		}
		outs = outs[:len(prim)]
		nLanes := len(prim)
		// Fault statuses are frozen for the whole parallel section (all
		// writes happen in the serial merge below), so the concurrent
		// reads in genOne are race-free and snapshot-consistent.
		parallel.For(w, nLanes, func(wk, i int) error {
			outs[i] = genOne(engines[wk], l, subset, prim[i], i, nLanes, scanBase, maxSec, opts.CareBudget)
			return nil
		})

		// Serial merge in primary order: statuses, fill (whose rng
		// consumes in pattern order), pattern numbering and the packed
		// drop are all deterministic here.
		slotV1, slotPI = slotV1[:0], slotPI[:0]
		epochBase := opts.PatternBase + len(res.Patterns)
		for i := range outs {
			po := &outs[i]
			fi := subset[prim[i]]
			recordFault := func(outcome string, patIdx int) {
				tkFaults.Record(int64(fi), po.stats.waves, outcome,
					float64(po.stats.backtracks), float64(po.stats.decisions),
					float64(po.stats.specWaves), float64(len(po.secondaries)),
					float64(patIdx))
			}
			if l.Status[fi] != fault.Undetected {
				// Generated, then detected as an earlier primary's
				// secondary within this same merge — the work is recorded
				// as collateral.
				recordFault("collateral", -1)
				continue
			}
			switch po.disp {
			case genAborted:
				l.Status[fi] = fault.Aborted
				recordFault("aborted", -1)
				continue
			case genUntestable:
				l.Status[fi] = fault.Untestable
				recordFault("untestable", -1)
				continue
			}
			// Lanes are disjoint, so secondaries are distinct across the
			// epoch; the filter is a cheap invariant guard.
			kept := po.secondaries[:0]
			for _, fj := range po.secondaries {
				if l.Status[fj] == fault.Undetected {
					kept = append(kept, fj)
				}
			}
			var fillT0 time.Time
			if measureFill {
				fillT0 = time.Now()
			}
			v1, pis := fil.Expand(po.cube)
			if measureFill {
				fillBusy += time.Since(fillT0).Nanoseconds()
			}
			patIdx := opts.PatternBase + len(res.Patterns)
			recordFault("detected", patIdx)
			res.Patterns = append(res.Patterns, Pattern{
				V1: v1, PIs: pis, Target: fi, Secondaries: kept,
			})
			l.MarkDetected(fi, patIdx)
			for _, fj := range kept {
				l.MarkDetected(fj, patIdx)
			}
			slotV1 = append(slotV1, v1)
			slotPI = append(slotPI, pis)
			if opts.MaxPatterns > 0 && len(res.Patterns) >= opts.MaxPatterns {
				done = true
				break
			}
		}
		// Drop collaterally detected faults against this epoch's batch.
		if len(slotV1) > 0 {
			v1W = logic.PackSlots(v1W, slotV1)
			piW = logic.PackSlots(piW, slotPI)
			valid := logic.ValidMask(len(slotV1))
			var b *faultsim.Batch
			if opts.Mode == LOS {
				b = fs.GoodSimShift(v1W, piW, opts.Dom, valid, cfg.shiftPrev)
			} else {
				b = fs.GoodSim(v1W, piW, opts.Dom, valid)
			}
			fs.Drop(l, subset, b, epochBase)
		}
	}

	for _, en := range engines {
		res.Gen.Waves += en.stats.waves
		res.Gen.SpecWaves += en.stats.specWaves
		res.Gen.Decisions += en.stats.decisions
		res.Gen.Backtracks += en.stats.backtracks
		res.Gen.SlotsCommitted += en.stats.slotsCommit
		res.Gen.SlotsPruned += en.stats.slotsPrune
		res.Gen.BacktracksAvoided += en.stats.avoided
	}

	cATPGRuns.Add(1)
	cATPGPatterns.Add(int64(len(res.Patterns)))
	cFillExpand.Add(int64(len(res.Patterns)))
	cFillBusyNs.Add(fillBusy)
	cGenWaves.Add(res.Gen.Waves)
	cSpecWaves.Add(res.Gen.SpecWaves)
	cSlotsCommit.Add(res.Gen.SlotsCommitted)
	cSlotsPrune.Add(res.Gen.SlotsPruned)
	cGenBacktracks.Add(res.Gen.Backtracks)
	cBTAvoided.Add(res.Gen.BacktracksAvoided)
	res.Counts = l.CountOf(subset)
	return res, nil
}

// genOut is one epoch primary's generation product, merged serially.
type genOut struct {
	cube        Cube
	disp        engineResult
	secondaries []int
	// stats is the engine-work delta this primary cost (generation plus
	// its lane's compaction attempts) — per-fault attribution for the
	// hotspot table.
	stats genStats
}

// genOne generates the pattern cube for one epoch primary and dynamically
// compacts further undetected faults into it. It reads shared fault
// statuses (frozen during the epoch's parallel section) and touches only
// its own engine, so concurrent calls are race-free; its result depends
// only on the engine configuration and the status snapshot, never on the
// worker running it.
func genOne(eng *engine, l *fault.List, subset []int, pos, lane, nLanes, scanBase, maxSec, careBudget int) genOut {
	fi := subset[pos]
	before := eng.stats
	cube, disp := eng.generate(&l.Faults[fi])
	out := genOut{cube: cube, disp: disp}
	if disp != genSuccess || maxSec <= 0 {
		out.stats = statsDelta(eng.stats, before)
		return out
	}
	// Dynamic compaction over this lane's stride of the undetected tail,
	// until a failure streak or the secondary budget is hit.
	streak := 0
	for sj := scanBase + lane; sj < len(subset) && len(out.secondaries) < maxSec && streak < 8; sj += nLanes {
		if careBudget > 0 && len(cube.State) >= careBudget {
			break
		}
		fj := subset[sj]
		if l.Status[fj] != fault.Undetected {
			continue
		}
		c2, d2 := eng.generateWith(&l.Faults[fj], cube)
		if d2 != genSuccess {
			streak++
			continue
		}
		streak = 0
		for k, v := range c2.State {
			cube.State[k] = v
		}
		for k, v := range c2.PIs {
			cube.PIs[k] = v
		}
		out.secondaries = append(out.secondaries, fj)
	}
	out.stats = statsDelta(eng.stats, before)
	return out
}

// statsDelta subtracts two engine-stat snapshots field-wise.
func statsDelta(after, before genStats) genStats {
	return genStats{
		waves:       after.waves - before.waves,
		specWaves:   after.specWaves - before.specWaves,
		decisions:   after.decisions - before.decisions,
		backtracks:  after.backtracks - before.backtracks,
		slotsCommit: after.slotsCommit - before.slotsCommit,
		slotsPrune:  after.slotsPrune - before.slotsPrune,
		avoided:     after.avoided - before.avoided,
	}
}

// shiftSources maps each flop to the frame-1 net that reaches it after one
// scan shift: the previous chain cell's output, or the chain's scan-in pin
// for the first cell. This is the launch-off-shift transfer function.
func shiftSources(d *netlist.Design, sc *scan.Scan) map[netlist.InstID]netlist.NetID {
	src := make(map[netlist.InstID]netlist.NetID, len(d.Flops))
	for ci := range sc.Chains {
		prev := sc.SIs[ci]
		for _, f := range sc.Chains[ci].Flops {
			src[f] = prev
			prev = d.Inst(f).Out
		}
	}
	return src
}
