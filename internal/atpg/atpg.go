package atpg

import (
	"fmt"
	"time"

	"scap/internal/fault"
	"scap/internal/faultsim"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/obs"
	"scap/internal/scan"
)

// ATPG observability: the fill/expansion step is attributed separately
// from generation (it runs once per emitted pattern), timed only while
// instrumentation is enabled and flushed once per Run.
var (
	cATPGRuns     = obs.NewCounter("atpg.runs")
	cATPGPatterns = obs.NewCounter("atpg.patterns")
	cFillExpand   = obs.NewCounter("atpg.fill_expansions")
	cFillBusyNs   = obs.NewCounter("atpg.fill_busy_ns")
)

// Options configures one ATPG run.
type Options struct {
	// Dom is the target clock domain; patterns launch and capture only its
	// flops (the paper generates transition patterns per clock domain).
	Dom int
	// Mode selects launch-off-capture (default) or launch-off-shift.
	Mode LaunchMode
	// Fill is the don't-care fill strategy.
	Fill Fill
	// Seed drives backtrace tie-breaking and random fill.
	Seed int64
	// BacktrackLimit aborts a fault after this many backtracks (default 64).
	BacktrackLimit int
	// MaxPatterns stops the run after this many patterns (0 = unlimited).
	MaxPatterns int
	// Blocks restricts the targeted faults to the given floorplan blocks
	// (nil targets every block) — the knob behind the paper's Step 1/2/3
	// procedure.
	Blocks []int
	// Faults explicitly lists target fault indexes, overriding Dom/Blocks
	// selection (still simulated and dropped against the whole set).
	Faults []int
	// PatternBase offsets the pattern indexes recorded in the fault list's
	// DetectedBy, so multi-step flows keep a global numbering.
	PatternBase int
	// Compaction bounds dynamic compaction: the maximum number of
	// secondary faults merged into one pattern (0 uses the default of 32,
	// negative disables compaction). The paper notes conventional ATPG
	// "targets as many faults per pattern as possible".
	Compaction int
	// CareBudget stops compaction once the cube holds this many state care
	// bits (0 = unlimited). Low-power flows use it to keep the per-pattern
	// care-bit *density* scale-invariant: at reduced design scale an
	// unbounded cube would cover a large fraction of a small block and
	// defeat the fill-0 quieting that full-size designs get for free.
	CareBudget int
}

// Pattern is one fully specified launch-off-capture (or -shift) test:
// the scan-in state V1 and the constant primary-input values. V2 derives
// from V1 at launch.
type Pattern struct {
	V1  []logic.V // per flop, design flop order
	PIs []logic.V // per primary input
	// Target is the fault index the pattern was generated for.
	Target int
	// Secondaries lists further fault indexes merged into the pattern by
	// dynamic compaction (each proven detected by construction).
	Secondaries []int
	// Step tags the generation step in multi-step flows (0-based).
	Step int
}

// Result is the outcome of one ATPG run.
type Result struct {
	Dom      int
	Mode     LaunchMode
	Fill     Fill
	Patterns []Pattern
	// Subset is the fault-index set that was targeted.
	Subset []int
	// Counts is the subset's status tally after the run.
	Counts fault.Counts
}

// Run generates transition-fault patterns for the selected faults with
// PODEM, fills don't-cares, and fault-simulates each 64-pattern batch to
// drop collaterally detected faults. The fault list l is updated in place
// (statuses, detecting pattern indexes).
func Run(fs *faultsim.Sim, l *fault.List, sc *scan.Scan, opts Options) (*Result, error) {
	defer obs.StartSpan("atpg").End()
	d := l.D
	if opts.BacktrackLimit <= 0 {
		opts.BacktrackLimit = 64
	}
	subset := opts.Faults
	if subset == nil {
		subset = l.InDomain(opts.Dom)
		if opts.Blocks != nil {
			want := map[int]bool{}
			for _, b := range opts.Blocks {
				want[b] = true
			}
			filtered := subset[:0:0]
			for _, fi := range subset {
				if want[l.Faults[fi].Block] {
					filtered = append(filtered, fi)
				}
			}
			subset = filtered
		}
	}

	// Faults on primary-input nets cannot launch a transition: the paper's
	// flow holds PIs constant across V1/V2 (low-cost tester).
	for _, fi := range subset {
		if l.Status[fi] == fault.Undetected && d.Nets[l.Faults[fi].Net].PI >= 0 {
			l.Status[fi] = fault.Untestable
		}
	}

	cfg := engineConfig{
		dom:   opts.Dom,
		mode:  opts.Mode,
		seed:  opts.Seed,
		limit: opts.BacktrackLimit,
	}
	if opts.Blocks != nil {
		cfg.prefer = map[int]bool{}
		for _, b := range opts.Blocks {
			cfg.prefer[b] = true
		}
	}
	cfg.excludePI = map[int]bool{}
	cfg.constPI = map[int]logic.V{}
	if sc != nil {
		cfg.constPI[d.Nets[sc.SE].PI] = logic.Zero
		for _, si := range sc.SIs {
			if opts.Mode == LOC {
				cfg.excludePI[d.Nets[si].PI] = true
			}
		}
		if opts.Mode == LOS {
			cfg.shiftPrev = shiftSources(d, sc)
		}
	}
	eng, err := newEngine(d, cfg)
	if err != nil {
		return nil, fmt.Errorf("atpg: %w", err)
	}
	fil := newFiller(d, sc, opts.Fill, opts.Seed+1)
	fil.targetBlocks = cfg.prefer // FillBlockAware randomizes only these

	res := &Result{Dom: opts.Dom, Mode: opts.Mode, Fill: opts.Fill, Subset: subset}

	var slotV1 [][]logic.V
	var slotPI [][]logic.V
	var v1W, piW []logic.Word // packed-batch buffers, reused across flushes
	flush := func() {
		if len(slotV1) == 0 {
			return
		}
		v1W = logic.PackSlots(v1W, slotV1)
		piW = logic.PackSlots(piW, slotPI)
		valid := logic.ValidMask(len(slotV1))
		base := opts.PatternBase + len(res.Patterns) - len(slotV1)
		var b *faultsim.Batch
		if opts.Mode == LOS {
			b = fs.GoodSimShift(v1W, piW, opts.Dom, valid, cfg.shiftPrev)
		} else {
			b = fs.GoodSim(v1W, piW, opts.Dom, valid)
		}
		fs.Drop(l, subset, b, base)
		slotV1, slotPI = slotV1[:0], slotPI[:0]
	}

	maxSec := opts.Compaction
	if maxSec == 0 {
		maxSec = 32
	}
	measureFill := obs.On()
	var fillBusy int64
	for si, fi := range subset {
		if opts.MaxPatterns > 0 && len(res.Patterns) >= opts.MaxPatterns {
			break
		}
		if l.Status[fi] != fault.Undetected {
			continue
		}
		cube, disp := eng.generate(&l.Faults[fi])
		switch disp {
		case genAborted:
			l.Status[fi] = fault.Aborted
			continue
		case genUntestable:
			l.Status[fi] = fault.Untestable
			continue
		}
		// Dynamic compaction: extend the cube with further undetected
		// faults until a failure streak or the secondary budget is hit.
		var secondaries []int
		if maxSec > 0 {
			streak := 0
			for sj := si + 1; sj < len(subset) && len(secondaries) < maxSec && streak < 8; sj++ {
				if opts.CareBudget > 0 && len(cube.State) >= opts.CareBudget {
					break
				}
				fj := subset[sj]
				if l.Status[fj] != fault.Undetected {
					continue
				}
				c2, d2 := eng.generateWith(&l.Faults[fj], cube)
				if d2 != genSuccess {
					streak++
					continue
				}
				streak = 0
				for k, v := range c2.State {
					cube.State[k] = v
				}
				for k, v := range c2.PIs {
					cube.PIs[k] = v
				}
				secondaries = append(secondaries, fj)
			}
		}
		var fillT0 time.Time
		if measureFill {
			fillT0 = time.Now()
		}
		v1, pis := fil.Expand(cube)
		if measureFill {
			fillBusy += time.Since(fillT0).Nanoseconds()
		}
		patIdx := opts.PatternBase + len(res.Patterns)
		res.Patterns = append(res.Patterns, Pattern{
			V1: v1, PIs: pis, Target: fi, Secondaries: secondaries,
		})
		l.MarkDetected(fi, patIdx)
		for _, fj := range secondaries {
			l.MarkDetected(fj, patIdx)
		}
		slotV1 = append(slotV1, v1)
		slotPI = append(slotPI, pis)
		if len(slotV1) == 64 {
			flush()
		}
	}
	flush()

	cATPGRuns.Add(1)
	cATPGPatterns.Add(int64(len(res.Patterns)))
	cFillExpand.Add(int64(len(res.Patterns)))
	cFillBusyNs.Add(fillBusy)
	res.Counts = l.CountOf(subset)
	return res, nil
}

// shiftSources maps each flop to the frame-1 net that reaches it after one
// scan shift: the previous chain cell's output, or the chain's scan-in pin
// for the first cell. This is the launch-off-shift transfer function.
func shiftSources(d *netlist.Design, sc *scan.Scan) map[netlist.InstID]netlist.NetID {
	src := make(map[netlist.InstID]netlist.NetID, len(d.Flops))
	for ci := range sc.Chains {
		prev := sc.SIs[ci]
		for _, f := range sc.Chains[ci].Flops {
			src[f] = prev
			prev = d.Inst(f).Out
		}
	}
	return src
}
