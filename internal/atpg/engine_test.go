package atpg

import (
	"testing"

	"scap/internal/cell"
	"scap/internal/fault"
	"scap/internal/logic"
	"scap/internal/netlist"
)

func TestEngineJustifiesAndTree(t *testing.T) {
	d := netlist.New("tree", cell.New180nm())
	d.NumBlocks = 1
	d.Domains = []netlist.DomainInfo{{Name: "clk", FreqMHz: 50, PeriodNs: 20}}
	n := map[string]netlist.NetID{}
	for _, name := range []string{"q0", "q1", "q2", "qo", "qh", "qv", "i0", "i1", "i2", "a1", "a2", "hv"} {
		n[name] = d.AddNet(name)
	}
	d.AddInst("inv0", cell.Inv, []netlist.NetID{n["q0"]}, n["i0"], 0)
	d.AddInst("inv1", cell.Inv, []netlist.NetID{n["q1"]}, n["i1"], 0)
	d.AddInst("inv2", cell.Inv, []netlist.NetID{n["q2"]}, n["i2"], 0)
	d.AddInst("and1", cell.And2, []netlist.NetID{n["q0"], n["q1"]}, n["a1"], 0)
	d.AddInst("and2", cell.And2, []netlist.NetID{n["a1"], n["q2"]}, n["a2"], 0)
	d.AddInst("invh", cell.Inv, []netlist.NetID{n["qh"]}, n["hv"], 0)
	flopIdx := map[string]int{}
	add := func(name string, dnet, qnet netlist.NetID) {
		id := d.AddInst(name, cell.DFF, []netlist.NetID{dnet}, qnet, 0)
		d.SetDomain(id, 0, false)
		flopIdx[name] = len(d.Flops) - 1
	}
	add("t0", n["i0"], n["q0"])
	add("t1", n["i1"], n["q1"])
	add("t2", n["i2"], n["q2"])
	add("fo", n["a2"], n["qo"])
	add("h", n["qh"], n["qh"])  // D = Q: holds forever
	add("fh", n["hv"], n["qv"]) // observes hv
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}

	eng, err := newEngine(d, engineConfig{dom: 0, limit: 64})
	if err != nil {
		t.Fatal(err)
	}

	// STR on a1: needs frame1 t0=t1=0 (so frame2 q0=q1=1 -> a1 rises) and
	// frame1 t2=0 for propagation through and2.
	cube, disp := eng.generate(&fault.Fault{Net: n["a1"], Type: fault.STR})
	if disp != genSuccess {
		t.Fatalf("STR a1 not generated: %v", disp)
	}
	for _, name := range []string{"t0", "t1", "t2"} {
		if v, ok := cube.State[flopIdx[name]]; !ok || v != logic.Zero {
			t.Fatalf("STR a1 cube: %s = %v (want 0); cube %v", name, v, cube.State)
		}
	}

	// STF on a1: frame1 t0=t1=1, propagation still needs frame2 q2=1 i.e.
	// frame1 t2=0.
	cube, disp = eng.generate(&fault.Fault{Net: n["a1"], Type: fault.STF})
	if disp != genSuccess {
		t.Fatalf("STF a1 not generated: %v", disp)
	}
	if v := cube.State[flopIdx["t0"]]; v != logic.One {
		t.Fatalf("STF a1: t0 = %v, want 1", v)
	}
	if v := cube.State[flopIdx["t1"]]; v != logic.One {
		t.Fatalf("STF a1: t1 = %v, want 1", v)
	}
	if v := cube.State[flopIdx["t2"]]; v != logic.Zero {
		t.Fatalf("STF a1: t2 = %v, want 0", v)
	}

	// hv sits behind a hold flop: its value cannot change between frames,
	// so both transition faults are provably untestable.
	if _, disp := eng.generate(&fault.Fault{Net: n["hv"], Type: fault.STR}); disp != genUntestable {
		t.Fatalf("STR hv disposition %v, want untestable", disp)
	}
	if _, disp := eng.generate(&fault.Fault{Net: n["hv"], Type: fault.STF}); disp != genUntestable {
		t.Fatalf("STF hv disposition %v, want untestable", disp)
	}
}
