package atpg

import (
	"sort"

	"scap/internal/cell"
	"scap/internal/fault"
	"scap/internal/logic"
	"scap/internal/netlist"
)

// setupFault installs fault f into the engine: computes the frame-2 fanout
// cone and observable endpoints, injects the stuck value into the faulty
// machine, and applies pinned primary-input constants (e.g. scan enable).
// It returns false when the fault has no observable endpoint in this
// domain.
func (e *engine) setupFault(f *fault.Fault) bool {
	e.site = f.Net
	if f.Type == fault.STR {
		e.stuck = logic.Zero
	} else {
		e.stuck = logic.One
	}
	cone, err := e.d.FanoutCone(f.Net)
	if err != nil {
		return false
	}
	e.cone = cone

	// Observable endpoints: D nets of target-domain flops fed by the site
	// or by cone gates. Dedup via the engine's generation-stamped net
	// marks: bumping the generation invalidates every stale stamp at once,
	// so this runs allocation-free once per fault across the whole list.
	e.obs = e.obs[:0]
	e.obsGen++
	if e.obsGen == 0 { // stamp wrapped: clear the slate once
		for i := range e.obsSeen {
			e.obsSeen[i] = 0
		}
		e.obsGen = 1
	}
	addObsOf := func(n netlist.NetID) {
		for _, ld := range e.d.Nets[n].Loads {
			inst := &e.d.Insts[ld.Inst]
			if inst.IsFlop() && ld.Pin == 0 && inst.Domain == e.dom && e.obsSeen[n] != e.obsGen {
				e.obsSeen[n] = e.obsGen
				e.obs = append(e.obs, n)
			}
		}
	}
	addObsOf(f.Net)
	for _, g := range cone {
		addObsOf(e.d.Insts[g].Out)
	}
	if len(e.obs) == 0 {
		return false
	}

	// Fault injection. The stuck value is propagated eagerly so the
	// committed faulty rail is always the exact function closure of the
	// current assignment set — the invariant the packed overlay relies on:
	// a lazily-unpropagated site value would let the overlay wave (which
	// evaluates every scheduled gate in all slots) derive faulty values in
	// slots whose own events never scheduled those gates.
	e.set(2, e.site, e.stuck)
	e.schedule2(e.site)
	e.wave()
	for pi, v := range e.piConst {
		e.assignInput(inputRef{isPI: true, idx: pi}, v)
	}
	return true
}

// teardown restores the all-X state after a fault.
func (e *engine) teardown() {
	e.undoTo(0)
	e.decs = e.decs[:0]
	e.backtracks = 0
	e.specOn = false
}

// excited reports whether the launch transition is fully justified: the
// site holds the pre-transition value in frame 1 and the post-transition
// value in frame 2 of the good machine.
func (e *engine) excited() bool {
	return e.val1[e.site] == e.stuck && e.val2[e.site] == e.stuck.Not()
}

// conflicted reports whether an assigned value contradicts the fault's
// activation requirements.
func (e *engine) conflicted() bool {
	if v := e.val1[e.site]; v != logic.X && v != e.stuck {
		return true
	}
	if v := e.val2[e.site]; v != logic.X && v != e.stuck.Not() {
		return true
	}
	return false
}

// observed reports whether the fault effect has reached an observable
// endpoint with defined, differing good/faulty values.
func (e *engine) observed() bool {
	for _, n := range e.obs {
		g, f := e.val2[n], e.valf[n]
		if g != logic.X && f != logic.X && g != f {
			return true
		}
	}
	return false
}

// divergedInput reports whether net n carries a defined good/faulty
// difference in frame 2.
func (e *engine) diverged(n netlist.NetID) bool {
	g, f := e.val2[n], e.valf[n]
	return g != logic.X && f != logic.X && g != f
}

// getObjective picks the next value requirement. Priority: justify the
// frame-1 site value, then the frame-2 good value, then advance the
// deepest D-frontier gate.
func (e *engine) getObjective() (objective, bool) {
	if e.conflicted() {
		return objective{}, false
	}
	if e.val1[e.site] == logic.X {
		return objective{frame: frame1, net: e.site, val: e.stuck}, true
	}
	if e.val2[e.site] == logic.X {
		return objective{frame: frame2, net: e.site, val: e.stuck.Not()}, true
	}
	// D-frontier: deepest cone gate with a diverged input whose own output
	// has not diverged yet and still has X side inputs to set. Gates inside
	// the preferred (targeted) blocks are tried first so detection stays
	// local and untargeted blocks remain quiet.
	if obj, ok := e.frontierObjective(true); ok {
		return obj, true
	}
	return e.frontierObjective(false)
}

// frontierObjective scans the D-frontier; when preferredOnly is set, gates
// outside the preferred block set are skipped.
func (e *engine) frontierObjective(preferredOnly bool) (objective, bool) {
	if preferredOnly && e.prefer == nil {
		return objective{}, false
	}
	for i := len(e.cone) - 1; i >= 0; i-- {
		g := e.cone[i]
		inst := &e.d.Insts[g]
		if preferredOnly && !e.prefer[inst.Block] {
			continue
		}
		if e.diverged(inst.Out) {
			continue
		}
		dPin := -1
		for p, n := range inst.In {
			if e.diverged(n) {
				dPin = p
				break
			}
		}
		if dPin < 0 {
			continue
		}
		needs := propagationNeeds(inst.Kind, dPin)
		for _, nd := range needs {
			n := inst.In[nd.pin]
			if e.val2[n] == logic.X {
				return objective{frame: frame2, net: n, val: nd.val}, true
			}
		}
	}
	return objective{}, false
}

// need is a side-input requirement for propagating through a gate.
type need struct {
	pin int
	val logic.V
}

// needsTab precomputes computePropagationNeeds for every (kind, pin): the
// D-frontier scan queries it once per frontier gate per objective pass, so
// the old per-call slice building was a steady allocation source in the
// search hot loop.
var needsTab = func() [][][]need {
	tab := make([][][]need, cell.NumKinds())
	for k := range tab {
		kind := cell.Kind(k)
		tab[k] = make([][]need, kind.NumInputs())
		for p := range tab[k] {
			tab[k][p] = computePropagationNeeds(kind, p)
		}
	}
	return tab
}()

// propagationNeeds returns the side-input values that let a fault effect
// on input pin propagate through a gate of the given kind, served from the
// precomputed table (the returned slice is shared: callers must not
// mutate it).
func propagationNeeds(k cell.Kind, pin int) []need {
	return needsTab[k][pin]
}

// computePropagationNeeds derives the propagation requirement list for one
// (kind, pin); it runs only at package init to fill needsTab.
func computePropagationNeeds(k cell.Kind, pin int) []need {
	others := func(v logic.V, n int) []need {
		var out []need
		for p := 0; p < n; p++ {
			if p != pin {
				out = append(out, need{pin: p, val: v})
			}
		}
		return out
	}
	switch k {
	case cell.Inv, cell.Buf:
		return nil
	case cell.Nand2, cell.Nand3, cell.Nand4, cell.And2, cell.And3, cell.And4:
		return others(logic.One, k.NumInputs())
	case cell.Nor2, cell.Nor3, cell.Nor4, cell.Or2, cell.Or3, cell.Or4:
		return others(logic.Zero, k.NumInputs())
	case cell.Xor2, cell.Xnor2:
		return others(logic.Zero, 2)
	case cell.Mux2:
		switch pin {
		case 0:
			return []need{{pin: 2, val: logic.Zero}}
		case 1:
			return []need{{pin: 2, val: logic.One}}
		default: // select diverged: make the data inputs differ
			return []need{{pin: 0, val: logic.Zero}, {pin: 1, val: logic.One}}
		}
	case cell.Aoi21: // !(A*B + C)
		switch pin {
		case 0:
			return []need{{pin: 1, val: logic.One}, {pin: 2, val: logic.Zero}}
		case 1:
			return []need{{pin: 0, val: logic.One}, {pin: 2, val: logic.Zero}}
		default:
			return []need{{pin: 0, val: logic.Zero}}
		}
	case cell.Oai21: // !((A+B) * C)
		switch pin {
		case 0:
			return []need{{pin: 1, val: logic.Zero}, {pin: 2, val: logic.One}}
		case 1:
			return []need{{pin: 0, val: logic.Zero}, {pin: 2, val: logic.One}}
		default:
			return []need{{pin: 0, val: logic.One}}
		}
	case cell.Aoi22: // !(A*B + C*D)
		switch pin {
		case 0:
			return []need{{pin: 1, val: logic.One}, {pin: 2, val: logic.Zero}}
		case 1:
			return []need{{pin: 0, val: logic.One}, {pin: 2, val: logic.Zero}}
		case 2:
			return []need{{pin: 3, val: logic.One}, {pin: 0, val: logic.Zero}}
		default:
			return []need{{pin: 2, val: logic.One}, {pin: 0, val: logic.Zero}}
		}
	case cell.Oai22: // !((A+B) * (C+D))
		switch pin {
		case 0:
			return []need{{pin: 1, val: logic.Zero}, {pin: 2, val: logic.One}}
		case 1:
			return []need{{pin: 0, val: logic.Zero}, {pin: 2, val: logic.One}}
		case 2:
			return []need{{pin: 3, val: logic.Zero}, {pin: 0, val: logic.One}}
		default:
			return []need{{pin: 2, val: logic.Zero}, {pin: 0, val: logic.One}}
		}
	default:
		return nil
	}
}

// inversion reports whether the gate kind inverts for backtrace purposes.
func inversion(k cell.Kind) bool {
	switch k {
	case cell.Inv, cell.Nand2, cell.Nand3, cell.Nand4,
		cell.Nor2, cell.Nor3, cell.Nor4, cell.Xnor2,
		cell.Aoi21, cell.Oai21, cell.Aoi22, cell.Oai22:
		return true
	default:
		return false
	}
}

// backtrace walks an objective backward through X-valued logic to an
// unassigned decision input. It returns false when no X path exists.
func (e *engine) backtrace(obj objective) (inputRef, logic.V, bool) {
	fr, n, v := obj.frame, obj.net, obj.val
	for steps := 0; steps < 4*int(e.maxLevel)+16; steps++ {
		net := &e.d.Nets[n]
		if net.PI >= 0 {
			if !e.decidablePI[net.PI] {
				return inputRef{}, 0, false
			}
			if e.valOf(fr, n) != logic.X {
				return inputRef{}, 0, false
			}
			return inputRef{isPI: true, idx: net.PI}, v, true
		}
		drv := net.Driver
		inst := &e.d.Insts[drv]
		if inst.IsFlop() {
			fi := e.flopIdx[drv]
			if fr == frame1 || e.hold[drv] {
				if e.val1[inst.Out] != logic.X {
					return inputRef{}, 0, false
				}
				return inputRef{isPI: false, idx: fi}, v, true
			}
			// Frame-2 flop output: cross the frame boundary to its source.
			src, ok := e.xferSrc[drv]
			if !ok {
				return inputRef{}, 0, false
			}
			fr, n = frame1, src
			continue
		}
		// Combinational gate: flip the target value through inverting
		// kinds and descend into an X-valued input.
		if inversion(inst.Kind) {
			v = v.Not()
		}
		pick := netlist.NoNet
		bestLv := int32(-1)
		for _, in := range inst.In {
			if e.valOf(fr, in) != logic.X {
				continue
			}
			lv := int32(0)
			if d := e.d.Nets[in].Driver; d != netlist.NoInst {
				lv = e.levels[d]
			}
			// Prefer the shallowest X input: cheapest to justify.
			if pick == netlist.NoNet || lv < bestLv {
				pick, bestLv = in, lv
			}
		}
		if pick == netlist.NoNet {
			return inputRef{}, 0, false
		}
		n = pick
	}
	return inputRef{}, 0, false
}

func (e *engine) valOf(fr int, n netlist.NetID) logic.V {
	if fr == frame1 {
		return e.val1[n]
	}
	return e.val2[n]
}

// decide pushes a new decision and applies it.
func (e *engine) decide(in inputRef, v logic.V) {
	e.stats.decisions++
	e.decs = append(e.decs, decision{input: in, val: v, trailMark: len(e.trail)})
	e.assignInput(in, v)
}

// backtrack flips the most recent unflipped decision. It returns false when
// the search space is exhausted.
func (e *engine) backtrack() bool {
	for len(e.decs) > 0 {
		d := &e.decs[len(e.decs)-1]
		if d.flipped {
			e.undoTo(d.trailMark)
			e.decs = e.decs[:len(e.decs)-1]
			continue
		}
		e.undoTo(d.trailMark)
		d.flipped = true
		d.val = d.val.Not()
		e.backtracks++
		e.stats.backtracks++
		e.assignInput(d.input, d.val)
		return true
	}
	return false
}

// generate runs PODEM for fault f and returns the cube on success.
func (e *engine) generate(f *fault.Fault) (Cube, engineResult) {
	return e.generateWith(f, Cube{})
}

// generateWith runs PODEM for fault f on top of pinned base assignments
// (dynamic compaction: the base is the cube accumulated for earlier
// targets of the same pattern). The returned cube contains only the new
// decisions; by Kleene monotonicity the base's earlier detection proofs
// survive any extension. A base conflict surfaces as untestable-under-base.
func (e *engine) generateWith(f *fault.Fault, base Cube) (Cube, engineResult) {
	defer e.teardown()
	if !e.setupFault(f) {
		return Cube{}, genUntestable
	}
	e.applyBase(base)
	if e.spec != nil {
		return e.searchPacked()
	}
	return e.searchScalar()
}

// searchScalar is the classical one-implication-at-a-time PODEM loop. It
// is retained verbatim as the cross-validation oracle for the packed
// speculative search (see podem_packed.go): both must produce identical
// cubes, verdicts and backtrack counts for every (fault, base) pair.
func (e *engine) searchScalar() (Cube, engineResult) {
	for {
		if e.backtracks > e.limit {
			return Cube{}, genAborted
		}
		if e.excited() && e.observed() {
			return e.cube(), genSuccess
		}
		obj, ok := e.getObjective()
		if ok {
			in, v, found := e.backtrace(obj)
			if found {
				e.decide(in, v)
				continue
			}
		}
		if !e.backtrack() {
			return Cube{}, genUntestable
		}
	}
}

// applyBase pins earlier-cube assignments (deterministic order) without
// putting them on the decision stack, so backtracking never undoes them.
// The scalar oracle settles one implication wave per care bit, the
// classical shape; the packed engine batches the whole cube into a single
// wave (applyBaseBatch) — under dynamic compaction base bits dominate the
// engine's wave count, so this is where most of its waves-per-cube
// reduction comes from.
func (e *engine) applyBase(base Cube) {
	if e.spec != nil {
		e.applyBaseBatch(base)
		return
	}
	for _, idx := range sortedKeys(base.State) {
		f := e.d.Flops[idx]
		if e.val1[e.d.Insts[f].Out] == logic.X {
			e.assignInput(inputRef{isPI: false, idx: idx}, base.State[idx])
		}
	}
	for _, idx := range sortedKeys(base.PIs) {
		n := e.d.PIs[idx]
		if e.val1[n] == logic.X {
			e.assignInput(inputRef{isPI: true, idx: idx}, base.PIs[idx])
		}
	}
}

// applyBaseBatch places every still-unassigned care bit of the base and
// settles them in one implication wave. The result is the same fixpoint
// the sequential oracle reaches: Kleene implication is monotone and
// confluent, so the closure of a set of root assignments is independent
// of application order and of whether a bit another bit already implies
// is written as a root or derived by the wave. Base cubes are mutually
// consistent by construction (they were jointly committed when earlier
// targets accepted them) and the frame-1/frame-2 good rails carry no
// fault-dependent state, so a bit can never arrive implied to the
// opposite value. Iteration order is free to be the map's: each (rail,
// net) pair is written at most once per batch, so trail restoration is
// order-independent too.
func (e *engine) applyBaseBatch(base Cube) {
	placed := 0
	for idx, v := range base.State {
		f := e.d.Flops[idx]
		if e.val1[e.d.Insts[f].Out] == logic.X {
			e.place(inputRef{isPI: false, idx: idx}, v)
			placed++
		}
	}
	for idx, v := range base.PIs {
		n := e.d.PIs[idx]
		if e.val1[n] == logic.X {
			e.place(inputRef{isPI: true, idx: idx}, v)
			placed++
		}
	}
	if placed > 0 {
		e.stats.waves++
		e.wave()
	}
}

func sortedKeys(m map[int]logic.V) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// cube extracts the decision assignments as a test cube.
func (e *engine) cube() Cube {
	c := Cube{State: map[int]logic.V{}, PIs: map[int]logic.V{}}
	for i := range e.decs {
		d := &e.decs[i]
		if d.input.isPI {
			c.PIs[d.input.idx] = d.val
		} else {
			c.State[d.input.idx] = d.val
		}
	}
	for pi, v := range e.piConst {
		c.PIs[pi] = v
	}
	return c
}
