package atpg

import (
	"testing"

	"scap/internal/fault"
	"scap/internal/faultsim"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/scan"
	"scap/internal/sim"
	"scap/internal/soc"
)

// rig bundles everything an ATPG run needs on the small SOC.
type rig struct {
	d  *netlist.Design
	s  *sim.Simulator
	fs *faultsim.Sim
	l  *fault.List
	sc *scan.Scan
}

func newRig(t *testing.T, scale int) *rig {
	t.Helper()
	d, _, err := soc.Generate(soc.DefaultConfig(scale))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(d, scan.Config{NumChains: 16})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := faultsim.New(s)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{d: d, s: s, fs: fs, l: fault.Universe(d), sc: sc}
}

func TestRunDetectsMostClkaFaults(t *testing.T) {
	r := newRig(t, 96)
	res, err := Run(r.fs, r.l, r.sc, Options{Dom: 0, Fill: FillRandom, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns generated")
	}
	c := res.Counts
	t.Logf("clka: %d faults, %d detected, %d aborted, %d untestable, %d patterns, coverage %.1f%%",
		c.Total, c.Detected, c.Aborted, c.Untestable, len(res.Patterns), 100*c.TestCoverage())
	if c.TestCoverage() < 0.70 {
		t.Fatalf("test coverage %.1f%% too low", 100*c.TestCoverage())
	}
	// Patterns must be fully specified.
	for pi, p := range res.Patterns {
		for i, v := range p.V1 {
			if v == logic.X {
				t.Fatalf("pattern %d flop %d is X after fill", pi, i)
			}
		}
		for i, v := range p.PIs {
			if v == logic.X {
				t.Fatalf("pattern %d PI %d is X after fill", pi, i)
			}
		}
	}
}

// TestEveryPatternDetectsItsTarget independently verifies the PODEM result
// with the fault simulator: the generated, filled pattern must detect the
// fault it was generated for.
func TestEveryPatternDetectsItsTarget(t *testing.T) {
	r := newRig(t, 96)
	res, err := Run(r.fs, r.l, r.sc, Options{Dom: 0, Fill: Fill0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, p := range res.Patterns {
		v1 := make([]logic.Word, len(r.d.Flops))
		pis := make([]logic.Word, len(r.d.PIs))
		for i, v := range p.V1 {
			v1[i] = logic.Splat(v)
		}
		for i, v := range p.PIs {
			pis[i] = logic.Splat(v)
		}
		b := r.fs.GoodSim(v1, pis, 0, 1)
		if det := r.fs.Detect(b, &r.l.Faults[p.Target]); det&1 == 0 {
			t.Fatalf("pattern for fault %s does not detect it", r.l.String(p.Target))
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
	t.Logf("verified %d patterns", checked)
}

func TestRunDeterministic(t *testing.T) {
	r1 := newRig(t, 96)
	r2 := newRig(t, 96)
	res1, err := Run(r1.fs, r1.l, r1.sc, Options{Dom: 0, Fill: FillRandom, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(r2.fs, r2.l, r2.sc, Options{Dom: 0, Fill: FillRandom, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Patterns) != len(res2.Patterns) {
		t.Fatalf("pattern counts differ: %d vs %d", len(res1.Patterns), len(res2.Patterns))
	}
	for i := range res1.Patterns {
		for j := range res1.Patterns[i].V1 {
			if res1.Patterns[i].V1[j] != res2.Patterns[i].V1[j] {
				t.Fatalf("pattern %d differs", i)
			}
		}
	}
}

func TestBlockRestrictionTargetsOnlyThoseBlocks(t *testing.T) {
	r := newRig(t, 96)
	res, err := Run(r.fs, r.l, r.sc, Options{
		Dom: 0, Fill: Fill0, Seed: 4, Blocks: []int{soc.B1, soc.B2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, fi := range res.Subset {
		b := r.l.Faults[fi].Block
		if b != soc.B1 && b != soc.B2 {
			t.Fatalf("subset contains fault in block %d", b)
		}
	}
	for _, p := range res.Patterns {
		b := r.l.Faults[p.Target].Block
		if b != soc.B1 && b != soc.B2 {
			t.Fatalf("pattern targets block %d", b)
		}
	}
}

func TestFillStrategies(t *testing.T) {
	r := newRig(t, 96)
	fil := newFiller(r.d, r.sc, Fill0, 1)
	cube := Cube{State: map[int]logic.V{3: logic.One}, PIs: map[int]logic.V{}}
	v1, _ := fil.Expand(cube)
	if v1[3] != logic.One {
		t.Fatal("care bit lost")
	}
	zeros := 0
	for i, v := range v1 {
		if i != 3 && v == logic.Zero {
			zeros++
		}
	}
	if zeros != len(v1)-1 {
		t.Fatalf("fill0 left %d non-zero bits", len(v1)-1-zeros)
	}

	fil1 := newFiller(r.d, r.sc, Fill1, 1)
	v1b, _ := fil1.Expand(Cube{State: map[int]logic.V{}, PIs: map[int]logic.V{}})
	for i, v := range v1b {
		if v != logic.One {
			t.Fatalf("fill1 bit %d = %v", i, v)
		}
	}

	// Adjacent: a single care bit in the middle of a chain spreads both ways.
	filA := newFiller(r.d, r.sc, FillAdjacent, 1)
	chain := r.sc.Chains[0]
	flopIdx := map[netlist.InstID]int{}
	for i, f := range r.d.Flops {
		flopIdx[f] = i
	}
	mid := flopIdx[chain.Flops[len(chain.Flops)/2]]
	v1c, _ := filA.Expand(Cube{State: map[int]logic.V{mid: logic.One}, PIs: map[int]logic.V{}})
	for _, f := range chain.Flops {
		if v1c[flopIdx[f]] != logic.One {
			t.Fatal("adjacent fill did not spread the care bit across the chain")
		}
	}

	// Random fill must produce both values somewhere.
	filR := newFiller(r.d, r.sc, FillRandom, 7)
	v1d, _ := filR.Expand(Cube{State: map[int]logic.V{}, PIs: map[int]logic.V{}})
	n0, n1 := 0, 0
	for _, v := range v1d {
		if v == logic.Zero {
			n0++
		} else {
			n1++
		}
	}
	if n0 == 0 || n1 == 0 {
		t.Fatalf("random fill degenerate: %d zeros, %d ones", n0, n1)
	}
}

func TestFillZeroQuietsUntargetedBlocks(t *testing.T) {
	// With fill-0 and faults targeted only outside B5, the B5 scan cells
	// must be (almost) all zero in every pattern — the paper's mechanism
	// for keeping the hot block quiet.
	r := newRig(t, 96)
	res, err := Run(r.fs, r.l, r.sc, Options{
		Dom: 0, Fill: Fill0, Seed: 5,
		Blocks: []int{soc.B1, soc.B2, soc.B3, soc.B4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns")
	}
	totalB5, onesB5 := 0, 0
	for _, p := range res.Patterns {
		for i, f := range r.d.Flops {
			inst := r.d.Inst(f)
			if inst.Block == soc.B5 && inst.Domain == 0 {
				totalB5++
				if p.V1[i] == logic.One {
					onesB5++
				}
			}
		}
	}
	if frac := float64(onesB5) / float64(totalB5); frac > 0.05 {
		t.Fatalf("B5 cells are %.1f%% ones under fill-0 outside-B5 targeting", 100*frac)
	}
}

func TestLOSMode(t *testing.T) {
	r := newRig(t, 96)
	res, err := Run(r.fs, r.l, r.sc, Options{Dom: 0, Mode: LOS, Fill: FillRandom, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("LOS generated no patterns")
	}
	c := res.Counts
	t.Logf("LOS: %d detected / %d, %d patterns", c.Detected, c.Total, len(res.Patterns))
	if c.Detected == 0 {
		t.Fatal("LOS detected nothing")
	}
	// Verify a sample of patterns against the shift-mode fault simulator.
	src := shiftSources(r.d, r.sc)
	for i, p := range res.Patterns {
		if i >= 20 {
			break
		}
		v1 := make([]logic.Word, len(r.d.Flops))
		pis := make([]logic.Word, len(r.d.PIs))
		for j, v := range p.V1 {
			v1[j] = logic.Splat(v)
		}
		for j, v := range p.PIs {
			pis[j] = logic.Splat(v)
		}
		b := r.fs.GoodSimShift(v1, pis, 0, 1, src)
		if det := r.fs.Detect(b, &r.l.Faults[p.Target]); det&1 == 0 {
			t.Fatalf("LOS pattern %d does not detect its target %s", i, r.l.String(p.Target))
		}
	}
}

func TestMaxPatternsHonored(t *testing.T) {
	r := newRig(t, 96)
	res, err := Run(r.fs, r.l, r.sc, Options{Dom: 0, Fill: Fill0, Seed: 7, MaxPatterns: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) > 5 {
		t.Fatalf("%d patterns exceed MaxPatterns", len(res.Patterns))
	}
}

func TestModeAndFillStrings(t *testing.T) {
	if LOC.String() != "LOC" || LOS.String() != "LOS" {
		t.Fatal("mode strings")
	}
	if FillRandom.String() != "random" || Fill0.String() != "fill0" ||
		Fill1.String() != "fill1" || FillAdjacent.String() != "adjacent" {
		t.Fatal("fill strings")
	}
}

func TestFillBlockAware(t *testing.T) {
	r := newRig(t, 96)
	res, err := Run(r.fs, r.l, r.sc, Options{
		Dom: 0, Fill: FillBlockAware, Seed: 11,
		Blocks: []int{soc.B1, soc.B2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns")
	}
	// Targeted blocks get a healthy mix of ones; untargeted blocks stay
	// (almost) all zero.
	onesIn, totIn, onesOut, totOut := 0, 0, 0, 0
	for _, p := range res.Patterns {
		for i, f := range r.d.Flops {
			inst := r.d.Inst(f)
			if inst.Domain != 0 {
				continue
			}
			if inst.Block == soc.B1 || inst.Block == soc.B2 {
				totIn++
				if p.V1[i] == logic.One {
					onesIn++
				}
			} else {
				totOut++
				if p.V1[i] == logic.One {
					onesOut++
				}
			}
		}
	}
	inFrac := float64(onesIn) / float64(totIn)
	outFrac := float64(onesOut) / float64(totOut)
	t.Logf("ones fraction: targeted %.2f, untargeted %.3f", inFrac, outFrac)
	if inFrac < 0.3 || inFrac > 0.7 {
		t.Fatalf("targeted blocks not randomized: %.2f", inFrac)
	}
	if outFrac > 0.05 {
		t.Fatalf("untargeted blocks not quiet: %.3f", outFrac)
	}
	// Patterns still detect their targets.
	for i, p := range res.Patterns {
		if i >= 10 {
			break
		}
		v1 := make([]logic.Word, len(r.d.Flops))
		pis := make([]logic.Word, len(r.d.PIs))
		for j, v := range p.V1 {
			v1[j] = logic.Splat(v)
		}
		for j, v := range p.PIs {
			pis[j] = logic.Splat(v)
		}
		b := r.fs.GoodSim(v1, pis, 0, 1)
		if det := r.fs.Detect(b, &r.l.Faults[p.Target]); det&1 == 0 {
			t.Fatalf("block-aware pattern %d misses its target", i)
		}
	}
}

func TestCompactReversePreservesCoverage(t *testing.T) {
	r := newRig(t, 96)
	res, err := Run(r.fs, r.l, r.sc, Options{Dom: 0, Fill: FillRandom, Seed: 13, Compaction: -1})
	if err != nil {
		t.Fatal(err)
	}
	before := r.l.CountOf(res.Subset)

	l2 := fault.Universe(r.d)
	kept, err := CompactReverse(r.fs, l2, res.Patterns, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kept) > len(res.Patterns) {
		t.Fatal("compaction grew the set")
	}
	t.Logf("reverse compaction: %d -> %d patterns", len(res.Patterns), len(kept))
	// Re-simulate the kept set from scratch: detected count must match.
	l3 := fault.Universe(r.d)
	subset := l3.InDomain(0)
	for base := 0; base < len(kept); base += 64 {
		hi := base + 64
		if hi > len(kept) {
			hi = len(kept)
		}
		chunk := kept[base:hi]
		v1 := make([]logic.Word, len(r.d.Flops))
		pis := make([]logic.Word, len(r.d.PIs))
		for s := range chunk {
			for i, v := range chunk[s].V1 {
				v1[i] = v1[i].Set(uint(s), v)
			}
			for i, v := range chunk[s].PIs {
				pis[i] = pis[i].Set(uint(s), v)
			}
		}
		valid := uint64(1)<<uint(hi-base) - 1
		if hi-base == 64 {
			valid = ^uint64(0)
		}
		b := r.fs.GoodSim(v1, pis, 0, valid)
		r.fs.Drop(l3, subset, b, base)
	}
	after := l3.CountOf(subset)
	if after.Detected < before.Detected {
		t.Fatalf("compaction lost coverage: %d -> %d detected", before.Detected, after.Detected)
	}
	// A fresh-list precondition violation errors out.
	if _, err := CompactReverse(r.fs, l3, kept, 0); err == nil {
		t.Fatal("non-fresh list accepted")
	}
}

func TestDetectionCounts(t *testing.T) {
	r := newRig(t, 96)
	res, err := Run(r.fs, r.l, r.sc, Options{Dom: 0, Fill: FillRandom, Seed: 14, MaxPatterns: 64})
	if err != nil {
		t.Fatal(err)
	}
	l2 := fault.Universe(r.d)
	subset := l2.InDomain(0)
	counts := make([]int, len(l2.Faults))
	v1 := make([]logic.Word, len(r.d.Flops))
	pis := make([]logic.Word, len(r.d.PIs))
	for s := range res.Patterns {
		for i, v := range res.Patterns[s].V1 {
			v1[i] = v1[i].Set(uint(s), v)
		}
		for i, v := range res.Patterns[s].PIs {
			pis[i] = pis[i].Set(uint(s), v)
		}
	}
	valid := uint64(1)<<uint(len(res.Patterns)) - 1
	if len(res.Patterns) == 64 {
		valid = ^uint64(0)
	}
	b := r.fs.GoodSim(v1, pis, 0, valid)
	r.fs.DetectionCounts(l2, subset, b, counts)
	multi, total := 0, 0
	for _, fi := range subset {
		if counts[fi] > 0 {
			total++
		}
		if counts[fi] > 1 {
			multi++
		}
	}
	t.Logf("n-detect over %d patterns: %d faults detected, %d more than once", len(res.Patterns), total, multi)
	if total == 0 || multi == 0 {
		t.Fatal("detection counts degenerate")
	}
}

// TestRunAndCompactParallelBitIdentical: an entire ATPG run (whose batch
// flushes drop faults through the worker-sharded sweep) and the
// reverse-order compaction must both be bit-identical for any worker
// count (run under -race via the Makefile's test-race gate).
func TestRunAndCompactParallelBitIdentical(t *testing.T) {
	r1 := newRig(t, 96)
	res1, err := Run(r1.fs, r1.l, r1.sc, Options{Dom: 0, Fill: FillRandom, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	l1 := fault.Universe(r1.d)
	kept1, err := CompactReverse(r1.fs, l1, res1.Patterns, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		r2 := newRig(t, 96)
		r2.fs.Workers = workers
		res2, err := Run(r2.fs, r2.l, r2.sc, Options{Dom: 0, Fill: FillRandom, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if len(res2.Patterns) != len(res1.Patterns) {
			t.Fatalf("workers=%d: %d patterns vs serial %d", workers, len(res2.Patterns), len(res1.Patterns))
		}
		for i := range res1.Patterns {
			p1, p2 := &res1.Patterns[i], &res2.Patterns[i]
			if p1.Target != p2.Target {
				t.Fatalf("workers=%d: pattern %d target %d vs %d", workers, i, p2.Target, p1.Target)
			}
			for j := range p1.V1 {
				if p1.V1[j] != p2.V1[j] {
					t.Fatalf("workers=%d: pattern %d V1 differs", workers, i)
				}
			}
		}
		for fi := range r1.l.Status {
			if r1.l.Status[fi] != r2.l.Status[fi] || r1.l.DetectedBy[fi] != r2.l.DetectedBy[fi] {
				t.Fatalf("workers=%d: fault %d: %v by %d vs serial %v by %d", workers, fi,
					r2.l.Status[fi], r2.l.DetectedBy[fi], r1.l.Status[fi], r1.l.DetectedBy[fi])
			}
		}
		l2 := fault.Universe(r2.d)
		kept2, err := CompactReverse(r2.fs, l2, res2.Patterns, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(kept2) != len(kept1) {
			t.Fatalf("workers=%d: compacted to %d vs serial %d", workers, len(kept2), len(kept1))
		}
		for i := range kept1 {
			if kept1[i].Target != kept2[i].Target {
				t.Fatalf("workers=%d: kept pattern %d differs", workers, i)
			}
		}
		for fi := range l1.Status {
			if l1.Status[fi] != l2.Status[fi] || l1.DetectedBy[fi] != l2.DetectedBy[fi] {
				t.Fatalf("workers=%d: compaction fault %d status differs", workers, fi)
			}
		}
	}
}
