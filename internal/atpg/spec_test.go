package atpg

import (
	"fmt"
	"reflect"
	"testing"

	"scap/internal/fault"
	"scap/internal/netlist"
	"scap/internal/obs"
)

// cubeEqual reports whether two cubes specify exactly the same care bits.
func cubeEqual(a, b Cube) bool {
	if len(a.State) != len(b.State) || len(a.PIs) != len(b.PIs) {
		return false
	}
	for k, v := range a.State {
		if b.State[k] != v {
			return false
		}
	}
	for k, v := range a.PIs {
		if b.PIs[k] != v {
			return false
		}
	}
	return true
}

func cubeString(c Cube) string {
	return fmt.Sprintf("state=%v pis=%v", c.State, c.PIs)
}

// TestPackedEngineMatchesScalarPerFault is the tentpole's oracle check:
// for every fault of the domain, the packed speculative engine must
// return exactly the cube and disposition of the scalar engine — the
// speculation is a search-order-preserving optimization, never a
// heuristic. Exercised for both launch modes and with accumulated bases
// (generateWith), which is how dynamic compaction calls the engine.
func TestPackedEngineMatchesScalarPerFault(t *testing.T) {
	for _, scale := range []int{96, 64} {
		for _, mode := range []LaunchMode{LOC, LOS} {
			t.Run(fmt.Sprintf("scale%d_%v", scale, mode), func(t *testing.T) {
				r := newRig(t, scale)
				cfg := engineConfig{dom: 0, mode: mode, limit: 64}
				if mode == LOS {
					cfg.shiftPrev = shiftPrevMap(t, r)
				}
				es, err := newEngine(r.d, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfgP := cfg
				cfgP.packed = true
				ep, err := newEngine(r.d, cfgP)
				if err != nil {
					t.Fatal(err)
				}
				subset := r.l.InDomain(0)
				var base Cube
				haveBase := false
				mismatch := 0
				for _, fi := range subset {
					f := &r.l.Faults[fi]
					var cs, cp Cube
					var ds, dp engineResult
					if haveBase {
						cs, ds = es.generateWith(f, base)
						cp, dp = ep.generateWith(f, base)
					} else {
						cs, ds = es.generate(f)
						cp, dp = ep.generate(f)
					}
					if ds != dp {
						t.Errorf("fault %d (net %d %v): scalar disp %d, packed disp %d",
							fi, f.Net, f.Type, ds, dp)
						mismatch++
					} else if ds == genSuccess && !cubeEqual(cs, cp) {
						t.Errorf("fault %d (net %d %v): cube mismatch\n  scalar: %s\n  packed: %s",
							fi, f.Net, f.Type, cubeString(cs), cubeString(cp))
						mismatch++
					}
					if mismatch > 5 {
						t.Fatalf("too many mismatches, stopping")
					}
					// Every few successes, accumulate a base cube so the
					// generateWith path (compaction) is exercised too.
					if ds == genSuccess {
						if !haveBase || len(base.State) > 40 {
							base, haveBase = cs, true
						}
					}
				}
			})
		}
	}
}

// shiftPrevMap reproduces the LOS frame-1 source map the runner builds.
func shiftPrevMap(t *testing.T, r *rig) map[netlist.InstID]netlist.NetID {
	t.Helper()
	return shiftSources(r.d, r.sc)
}

// TestRunPackedMatchesScalarEngine checks the whole Run pipeline — epoch
// selection, dynamic compaction, fill and fault dropping — produces a
// bit-identical pattern set and fault disposition whichever implication
// core is underneath.
func TestRunPackedMatchesScalarEngine(t *testing.T) {
	rp := newRig(t, 96)
	rs := newRig(t, 96)
	resP, err := Run(rp.fs, rp.l, rp.sc, Options{Dom: 0, Fill: FillRandom, Seed: 3, Engine: EnginePacked})
	if err != nil {
		t.Fatal(err)
	}
	resS, err := Run(rs.fs, rs.l, rs.sc, Options{Dom: 0, Fill: FillRandom, Seed: 3, Engine: EngineScalar})
	if err != nil {
		t.Fatal(err)
	}
	comparePatternSets(t, resS, resP, rs.l, rp.l)
}

// TestRunShardedBitIdentical checks the epoch-sharded generator yields the
// same patterns, statuses and detection attribution for 1, 2 and 8
// workers. Run with -race this also exercises the parallel section for
// data races.
func TestRunShardedBitIdentical(t *testing.T) {
	var ref *Result
	var refL *fault.List
	for _, w := range []int{1, 2, 8} {
		r := newRig(t, 96)
		res, err := Run(r.fs, r.l, r.sc, Options{
			Dom: 0, Fill: FillRandom, Seed: 5, GenWorkers: w,
		})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refL = res, r.l
			continue
		}
		t.Run(fmt.Sprintf("workers%d", w), func(t *testing.T) {
			comparePatternSets(t, ref, res, refL, r.l)
			if res.Gen != ref.Gen {
				t.Errorf("generation stats differ: w=1 %+v, w=%d %+v", ref.Gen, w, res.Gen)
			}
		})
	}
}

func comparePatternSets(t *testing.T, a, b *Result, la, lb *fault.List) {
	t.Helper()
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatalf("pattern count differs: %d vs %d", len(a.Patterns), len(b.Patterns))
	}
	for i := range a.Patterns {
		pa, pb := &a.Patterns[i], &b.Patterns[i]
		if pa.Target != pb.Target {
			t.Fatalf("pattern %d target differs: %d vs %d", i, pa.Target, pb.Target)
		}
		if len(pa.Secondaries) != len(pb.Secondaries) {
			t.Fatalf("pattern %d secondary count differs: %v vs %v", i, pa.Secondaries, pb.Secondaries)
		}
		for j := range pa.Secondaries {
			if pa.Secondaries[j] != pb.Secondaries[j] {
				t.Fatalf("pattern %d secondaries differ: %v vs %v", i, pa.Secondaries, pb.Secondaries)
			}
		}
		for j := range pa.V1 {
			if pa.V1[j] != pb.V1[j] {
				t.Fatalf("pattern %d V1[%d] differs: %v vs %v", i, j, pa.V1[j], pb.V1[j])
			}
		}
		for j := range pa.PIs {
			if pa.PIs[j] != pb.PIs[j] {
				t.Fatalf("pattern %d PI[%d] differs: %v vs %v", i, j, pa.PIs[j], pb.PIs[j])
			}
		}
	}
	if len(la.Status) != len(lb.Status) {
		t.Fatalf("status length differs")
	}
	for i := range la.Status {
		if la.Status[i] != lb.Status[i] {
			t.Fatalf("fault %d status differs: %v vs %v", i, la.Status[i], lb.Status[i])
		}
		if la.DetectedBy[i] != lb.DetectedBy[i] {
			t.Fatalf("fault %d DetectedBy differs: %d vs %d", i, la.DetectedBy[i], lb.DetectedBy[i])
		}
	}
}

// TestFaultHotspotsWorkerIndependent: the per-fault attribution table is
// recorded in the serial epoch merge on deterministic costs (implication
// waves, backtracks), so it must be bit-identical for any GenWorkers
// value — the hotspot list is part of the determinism contract.
func TestFaultHotspotsWorkerIndependent(t *testing.T) {
	run := func(w int) []obs.TopEntry {
		obs.Reset()
		obs.Enable()
		defer func() {
			obs.Reset()
			obs.Disable()
		}()
		r := newRig(t, 96)
		if _, err := Run(r.fs, r.l, r.sc, Options{
			Dom: 0, Fill: FillRandom, Seed: 5, GenWorkers: w,
		}); err != nil {
			t.Fatal(err)
		}
		return tkFaults.Snapshot()
	}
	want := run(1)
	if len(want) == 0 {
		t.Fatal("serial run recorded no fault hotspots")
	}
	for _, w := range []int{2, 8} {
		if got := run(w); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: fault hotspot table differs from serial\nserial: %+v\npar:    %+v",
				w, want, got)
		}
	}
}
