package atpg

import (
	"scap/internal/cell"
	"scap/internal/logic"
	"scap/internal/netlist"
)

// Packed speculative PODEM.
//
// The scalar engine pays one full two-frame implication wave per decision
// and a second one per backtrack — discovering a conflict and undoing it
// are separate round-trips. The packed core keeps the *committed* search
// state scalar (val1/val2/valf plus the trail, exactly as before) and runs
// speculation through a 64-slot dual-rail overlay: one wave evaluates up
// to 64 alternative assignments at once via cell.EvalWord, a per-slot
// conflict mask replaces repeated conflicted() scans, and the first
// consistent slot is materialized onto the trail while dead slots become
// immediate prunes that never touch the committed state.
//
// Speculation is the pair wave (see DESIGN.md §14): decideSpec implies a
// decision's chosen value in slot 0 and the complement in slot 1 of the
// same wave. A slot-0 conflict commits slot 1 directly — the backtrack
// that scalar PODEM would pay a discovery wave plus a flip wave for
// costs nothing extra. Backtracking itself stays scalar: the trail makes
// a scalar undo free, so any multi-level speculative pricing of flips
// would recompute by evaluation what the trail restores for nothing (a
// cascade variant that did exactly that was measured at ~15x a scalar
// wave per flip and removed). Pair waves are burst-gated (see specOn),
// and the packed engine additionally batches base-cube application into
// one wave per cube (applyBaseBatch in podem.go) — under dynamic
// compaction that is the bulk of its waves-per-cube reduction.
//
// Equivalence with the scalar engine is exact, not approximate: the loop
// in searchPacked replicates searchScalar's checkpoint order (limit,
// success, objective, backtrack), conflicted slots can never satisfy the
// success predicate (a conflict at the site excludes excitation), and the
// overlay wave computes the same Kleene fixpoint as the scalar wave, so
// committed states, decision stacks, backtrack counts and verdicts all
// match cube-for-cube. The property tests in spec_test.go enforce this
// against the retained scalar oracle.

// specState is the packed overlay: per-net speculative words for frame 1,
// frame-2 good and frame-2 faulty, touched flags plus lists for O(touched)
// reset, and level buckets mirroring the scalar wave's scheduling.
type specState struct {
	ov1, ov2, ovf []logic.Word
	t1, t2, tf    []bool
	l1, l2, lf    []netlist.NetID
	b1, b2        [][]netlist.InstID
	q1, q2        []bool
	maxLevel      int32
}

func newSpecState(d *netlist.Design, ml int32) *specState {
	return &specState{
		ov1: make([]logic.Word, d.NumNets()),
		ov2: make([]logic.Word, d.NumNets()),
		ovf: make([]logic.Word, d.NumNets()),
		t1:  make([]bool, d.NumNets()),
		t2:  make([]bool, d.NumNets()),
		tf:  make([]bool, d.NumNets()),
		b1:  make([][]netlist.InstID, ml+2),
		b2:  make([][]netlist.InstID, ml+2),
		q1:  make([]bool, d.NumInsts()),
		q2:  make([]bool, d.NumInsts()),
		maxLevel: ml,
	}
}

// reset clears the overlay back to "every slot reads the committed scalar
// value" in O(touched nets). Buckets and queued flags are already clean:
// pwave always drains them fully.
func (sp *specState) reset() {
	for _, n := range sp.l1 {
		sp.t1[n] = false
	}
	for _, n := range sp.l2 {
		sp.t2[n] = false
	}
	for _, n := range sp.lf {
		sp.tf[n] = false
	}
	sp.l1, sp.l2, sp.lf = sp.l1[:0], sp.l2[:0], sp.lf[:0]
}

// --- overlay reads and writes -------------------------------------------
//
// Read rule: a net not touched by the overlay holds its committed scalar
// value in every slot. Writes record the touched net once for reset.

func (e *engine) r1(n netlist.NetID) logic.Word {
	if e.spec.t1[n] {
		return e.spec.ov1[n]
	}
	return logic.Splat(e.val1[n])
}

func (e *engine) r2(n netlist.NetID) logic.Word {
	if e.spec.t2[n] {
		return e.spec.ov2[n]
	}
	return logic.Splat(e.val2[n])
}

func (e *engine) rf(n netlist.NetID) logic.Word {
	if e.spec.tf[n] {
		return e.spec.ovf[n]
	}
	return logic.Splat(e.valf[n])
}

func (e *engine) pset1(n netlist.NetID, w logic.Word) {
	sp := e.spec
	if !sp.t1[n] {
		sp.t1[n] = true
		sp.l1 = append(sp.l1, n)
	}
	sp.ov1[n] = w
}

func (e *engine) pset2(n netlist.NetID, w logic.Word) {
	sp := e.spec
	if !sp.t2[n] {
		sp.t2[n] = true
		sp.l2 = append(sp.l2, n)
	}
	sp.ov2[n] = w
}

func (e *engine) psetf(n netlist.NetID, w logic.Word) {
	sp := e.spec
	if !sp.tf[n] {
		sp.tf[n] = true
		sp.lf = append(sp.lf, n)
	}
	sp.ovf[n] = w
}

// --- packed scheduling, mirroring schedule1/schedule2/set2both ----------

func (e *engine) pschedule1(n netlist.NetID) {
	sp := e.spec
	for _, ld := range e.d.Nets[n].Loads {
		inst := &e.d.Insts[ld.Inst]
		if inst.IsFlop() || sp.q1[ld.Inst] {
			continue
		}
		sp.q1[ld.Inst] = true
		sp.b1[e.levels[ld.Inst]] = append(sp.b1[e.levels[ld.Inst]], ld.Inst)
	}
	// Frame boundary: flops fed from this net launch its value in frame 2.
	if flops, ok := e.xfer[n]; ok {
		w := e.r1(n)
		for _, f := range flops {
			e.pset2both(e.d.Insts[f].Out, w)
		}
	}
}

func (e *engine) pschedule2(n netlist.NetID) {
	sp := e.spec
	for _, ld := range e.d.Nets[n].Loads {
		inst := &e.d.Insts[ld.Inst]
		if inst.IsFlop() || sp.q2[ld.Inst] {
			continue
		}
		sp.q2[ld.Inst] = true
		sp.b2[e.levels[ld.Inst]] = append(sp.b2[e.levels[ld.Inst]], ld.Inst)
	}
}

// pset2both is the packed set2both: frame-2 good and (except at the fault
// site) faulty take the same word. The good-value early-out is sound for
// the same reason as the scalar one — both writers of flop-out frame-2
// values keep good == faulty per slot away from the site.
func (e *engine) pset2both(n netlist.NetID, w logic.Word) {
	if e.r2(n) == w {
		return
	}
	e.pset2(n, w)
	if n != e.site {
		e.psetf(n, w)
	}
	e.pschedule2(n)
}

// pwave drains the packed buckets exactly like engine.wave drains the
// scalar ones: frame 1 in level order (feeding frame 2 through the
// boundary), then frame 2 good+faulty with a re-drain loop for
// good/faulty scheduling interleave. Kleene logic on words is monotone
// slot-wise, so the wave settles to the same fixpoint the scalar wave
// would reach independently in every slot.
func (e *engine) pwave() {
	sp := e.spec
	e.stats.waves++
	e.stats.specWaves++
	var buf [4]logic.Word
	for lv := int32(1); lv <= sp.maxLevel; lv++ {
		bucket := sp.b1[lv]
		sp.b1[lv] = bucket[:0]
		for _, g := range bucket {
			sp.q1[g] = false
			inst := &e.d.Insts[g]
			in := buf[:len(inst.In)]
			for p, n := range inst.In {
				in[p] = e.r1(n)
			}
			w := cell.EvalWord(inst.Kind, in)
			if w != e.r1(inst.Out) {
				e.pset1(inst.Out, w)
				e.pschedule1(inst.Out)
			}
		}
	}
	var bufF [4]logic.Word
	for e.pdirty2() {
		for lv := int32(1); lv <= sp.maxLevel; lv++ {
			bucket := sp.b2[lv]
			sp.b2[lv] = bucket[:0]
			for _, g := range bucket {
				sp.q2[g] = false
				inst := &e.d.Insts[g]
				in := buf[:len(inst.In)]
				inF := bufF[:len(inst.In)]
				for p, n := range inst.In {
					in[p] = e.r2(n)
					inF[p] = e.rf(n)
				}
				wG := cell.EvalWord(inst.Kind, in)
				wF := cell.EvalWord(inst.Kind, inF)
				if wG != e.r2(inst.Out) {
					e.pset2(inst.Out, wG)
					e.pschedule2(inst.Out)
				}
				if inst.Out != e.site && wF != e.rf(inst.Out) {
					e.psetf(inst.Out, wF)
					e.pschedule2(inst.Out)
				}
			}
		}
	}
}

func (e *engine) pdirty2() bool {
	for lv := int32(1); lv <= e.spec.maxLevel; lv++ {
		if len(e.spec.b2[lv]) > 0 {
			return true
		}
	}
	return false
}

// conflictMask is the packed conflicted(): the slots whose speculative
// values contradict the fault's activation requirements (frame-1 site must
// stay X-or-stuck, frame-2 good site X-or-complement).
func (e *engine) conflictMask() uint64 {
	w1, w2 := e.r1(e.site), e.r2(e.site)
	if e.stuck == logic.Zero {
		return w1.One | w2.Zero
	}
	return w1.Zero | w2.One
}

// seedInput writes a decision-input word into the overlay the way
// assignInput writes a scalar value: frame 1 plus frame 2 directly for
// PIs (held across both frames) and hold flops; dom-flop frame-2 values
// follow through the transfer map inside pschedule1.
func (e *engine) seedInput(in inputRef, w logic.Word) {
	if in.isPI {
		n := e.d.PIs[in.idx]
		e.pset1(n, w)
		e.pschedule1(n)
		e.pset2both(n, w)
	} else {
		f := e.d.Flops[in.idx]
		q := e.d.Insts[f].Out
		e.pset1(q, w)
		e.pschedule1(q)
		if e.hold[f] {
			e.pset2both(q, w)
		}
	}
}

// commitSlot materializes speculative slot s onto the committed scalar
// state through the trail, so undoTo unwinds it like any scalar wave.
// Every net whose committed value must change was touched by the overlay
// (the wave's cone covers the difference), and e.set skips nets whose
// slot-s value already matches.
func (e *engine) commitSlot(s uint) {
	sp := e.spec
	for _, n := range sp.l1 {
		e.set(0, n, sp.ov1[n].Get(s))
	}
	for _, n := range sp.l2 {
		e.set(1, n, sp.ov2[n].Get(s))
	}
	for _, n := range sp.lf {
		e.set(2, n, sp.ovf[n].Get(s))
	}
	e.stats.slotsCommit++
}

// specHardMin is the per-fault backtrack count that marks a fault as
// conflict-dense: pair speculation only arms on faults past it. Decisions
// of easy faults conflict too rarely for a double-cone pair wave to repay
// itself; the hard tail (deep search thrash up to the abort limit) is
// where flips cluster and the pre-priced complement slot wins.
const specHardMin = 16

// specOutcome is what a packed decision/backtrack step tells the search
// loop to do next.
type specOutcome uint8

const (
	specContinue  specOutcome = iota // committed a consistent state; resume
	specAbort                        // backtrack limit exceeded
	specExhausted                    // decision space exhausted: untestable
)

// decideSpec is the packed decide(): imply v (slot 0) and its complement
// (slot 1) in one wave, then commit the first consistent slot. Speculation
// is burst-gated: conflicts cluster in the decisions right after a
// backtrack, so specOn turns on at every conflict event and back off at
// the first clean slot-0 commit. A pair wave propagates both value cones,
// so paying it on a decision that commits cleanly is pure overhead — the
// gate keeps pair waves inside conflict-dense stretches, where the dead
// slot repays the wave by replacing scalar's discovery-plus-flip round
// trip. The outcome is identical whichever path a decision takes.
func (e *engine) decideSpec(in inputRef, v logic.V) specOutcome {
	if !e.specOn {
		e.decide(in, v)
		return specContinue
	}
	mark := len(e.trail)
	e.seedInput(in, logic.Splat(v).Set(1, v.Not()))
	e.pwave()
	conf := e.conflictMask()
	if conf&1 == 0 {
		e.stats.decisions++
		e.decs = append(e.decs, decision{input: in, val: v, trailMark: mark})
		e.commitSlot(0)
		e.spec.reset()
		e.specOn = false
		return specContinue
	}
	// Slot 0 is dead: scalar PODEM would assign v, wave, find the
	// conflict, undo, flip and wave again. Both outcomes are already in
	// hand — the flip either commits from slot 1 or the whole decision
	// cancels out and the search backtracks into earlier decisions.
	e.stats.slotsPrune++
	e.backtracks++
	e.stats.backtracks++
	e.stats.avoided++
	if conf&2 == 0 {
		e.stats.decisions++
		e.decs = append(e.decs, decision{input: in, val: v.Not(), flipped: true, trailMark: mark})
		e.commitSlot(1)
		e.spec.reset()
		return specContinue
	}
	e.stats.slotsPrune++
	e.spec.reset()
	// Both values conflict: scalar would push v, flip to the complement,
	// conflict again and pop — net effect, the stack is unchanged and the
	// flip consumed one backtrack. Check the limit exactly where the
	// scalar loop top would, then continue backtracking the scalar way.
	if e.backtracks > e.limit {
		return specAbort
	}
	if !e.backtrack() {
		return specExhausted
	}
	return specContinue
}

// searchPacked is the packed counterpart of searchScalar: same checkpoint
// order (limit, success, objective), with decide and backtrack replaced by
// their speculative forms.
func (e *engine) searchPacked() (Cube, engineResult) {
	for {
		if e.backtracks > e.limit {
			return Cube{}, genAborted
		}
		if e.excited() && e.observed() {
			return e.cube(), genSuccess
		}
		obj, ok := e.getObjective()
		if ok {
			in, v, found := e.backtrace(obj)
			if found {
				switch e.decideSpec(in, v) {
				case specAbort:
					return Cube{}, genAborted
				case specExhausted:
					return Cube{}, genUntestable
				}
				continue
			}
		}
		// No objective or dead backtrace: the search backtracks. Decisions
		// right after a backtrack are the conflict-dense stretch where a
		// pair wave can repay its double cone — but only on faults already
		// proven hard: an easy fault's occasional conflict is cheaper to
		// rediscover scalar-style than to pre-price every decision for.
		if e.backtracks >= specHardMin {
			e.specOn = true
		}
		if !e.backtrack() {
			return Cube{}, genUntestable
		}
	}
}
