package atpg

import (
	"math/rand"

	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/scan"
)

// Fill selects the don't-care fill strategy, mirroring the TetraMAX options
// the paper evaluates: random fill (the conventional high-activity
// default), fill-0 (the paper's best low-power option), fill-1, and
// fill-adjacent (repeat the nearest earlier care bit along the scan chain).
type Fill uint8

// Fill strategies.
const (
	FillRandom Fill = iota
	Fill0
	Fill1
	FillAdjacent
	// FillBlockAware is the "more ideal scenario" the paper wishes ATPG
	// tools offered: random fill inside the blocks a run is targeting (for
	// fortuitous detection there) and fill-0 everywhere else (to keep
	// untargeted blocks quiet). Requires TargetBlocks on the filler.
	FillBlockAware
)

// String names the fill strategy.
func (f Fill) String() string {
	switch f {
	case FillRandom:
		return "random"
	case Fill0:
		return "fill0"
	case Fill1:
		return "fill1"
	case FillBlockAware:
		return "block-aware"
	default:
		return "adjacent"
	}
}

// filler expands test cubes into fully specified patterns.
type filler struct {
	d    *netlist.Design
	sc   *scan.Scan // may be nil: falls back to design flop order
	kind Fill
	rng  *rand.Rand

	// chainOrder lists flop indexes (design flop order) chain by chain in
	// shift order, for the adjacent fill.
	chainOrder [][]int

	// targetBlocks marks the blocks that get random fill under
	// FillBlockAware; everything else fills with 0.
	targetBlocks map[int]bool
}

func newFiller(d *netlist.Design, sc *scan.Scan, kind Fill, seed int64) *filler {
	f := &filler{d: d, sc: sc, kind: kind, rng: rand.New(rand.NewSource(seed))}
	idx := make(map[netlist.InstID]int, len(d.Flops))
	for i, fl := range d.Flops {
		idx[fl] = i
	}
	if sc != nil {
		for _, c := range sc.Chains {
			order := make([]int, len(c.Flops))
			for k, fl := range c.Flops {
				order[k] = idx[fl]
			}
			f.chainOrder = append(f.chainOrder, order)
		}
	} else {
		order := make([]int, len(d.Flops))
		for i := range order {
			order[i] = i
		}
		f.chainOrder = [][]int{order}
	}
	return f
}

func (f *filler) fillValue() logic.V {
	switch f.kind {
	case Fill0:
		return logic.Zero
	case Fill1:
		return logic.One
	case FillRandom:
		return logic.FromBool(f.rng.Intn(2) == 1)
	default:
		return logic.Zero
	}
}

// Expand turns a cube into a fully specified pattern: a per-flop V1 vector
// and a per-PI vector. Scan-enable is forced to 0 (capture mode) and scan
// inputs to 0.
func (f *filler) Expand(c Cube) (v1 []logic.V, pis []logic.V) {
	d := f.d
	v1 = make([]logic.V, len(d.Flops))
	for i := range v1 {
		v1[i] = logic.X
	}
	for i, v := range c.State {
		v1[i] = v
	}
	if f.kind == FillBlockAware {
		for i := range v1 {
			if v1[i] != logic.X {
				continue
			}
			if f.targetBlocks[d.Inst(d.Flops[i]).Block] {
				v1[i] = logic.FromBool(f.rng.Intn(2) == 1)
			} else {
				v1[i] = logic.Zero
			}
		}
	} else if f.kind == FillAdjacent {
		for _, order := range f.chainOrder {
			// Forward pass carries the previous care bit; a leading run of
			// X takes the first care bit found (or 0 when none).
			carry := logic.X
			for _, fi := range order {
				if v1[fi] != logic.X {
					carry = v1[fi]
				} else if carry != logic.X {
					v1[fi] = carry
				}
			}
			carry = logic.X
			for k := len(order) - 1; k >= 0; k-- {
				fi := order[k]
				if v1[fi] != logic.X {
					carry = v1[fi]
				} else if carry != logic.X {
					v1[fi] = carry
				}
			}
			for _, fi := range order {
				if v1[fi] == logic.X {
					v1[fi] = logic.Zero
				}
			}
		}
	} else {
		for i := range v1 {
			if v1[i] == logic.X {
				v1[i] = f.fillValue()
			}
		}
	}

	pis = make([]logic.V, len(d.PIs))
	for i := range pis {
		pis[i] = logic.X
	}
	for i, v := range c.PIs {
		pis[i] = v
	}
	if f.sc != nil {
		pis[d.Nets[f.sc.SE].PI] = logic.Zero
		for _, si := range f.sc.SIs {
			if pis[d.Nets[si].PI] == logic.X {
				pis[d.Nets[si].PI] = logic.Zero
			}
		}
	}
	for i := range pis {
		if pis[i] == logic.X {
			if f.kind == FillRandom {
				pis[i] = logic.FromBool(f.rng.Intn(2) == 1)
			} else {
				pis[i] = f.fillValue()
			}
		}
	}
	return v1, pis
}
