// Package atpg implements deterministic test-pattern generation for
// transition delay faults: a two-frame PODEM engine supporting both
// launch-off-capture (the paper's method) and launch-off-shift, don't-care
// fill strategies (random / fill-0 / fill-1 / fill-adjacent — the Synopsys
// TetraMAX options the paper's procedure drives), per-block fault
// targeting, and a driver loop with parallel-pattern fault dropping.
//
// The engine works on the design twice without physically unrolling it:
// frame 1 is the initialization vector V1 (the scanned-in state plus the
// primary inputs, which are held constant across both frames per the
// paper), frame 2 is the launch/capture cycle whose flop state V2 derives
// from frame 1 through a transfer map (functional capture for LOC, chain
// shift for LOS). A slow-to-rise fault at net n requires n=0 in frame 1 and
// behaves as stuck-at-0 in frame 2; detection requires the frame-2 fault
// effect to reach the D input of a captured flop of the target domain.
package atpg

import (
	"scap/internal/cell"
	"scap/internal/logic"
	"scap/internal/netlist"
)

// LaunchMode selects how the V2 launch state derives from V1.
type LaunchMode uint8

// Launch modes.
const (
	LOC LaunchMode = iota // launch-off-capture (broadside)
	LOS                   // launch-off-shift (skewed load)
)

// String names the launch mode.
func (m LaunchMode) String() string {
	if m == LOS {
		return "LOS"
	}
	return "LOC"
}

// Cube is a generated test cube: the care bits of V1 and of the primary
// inputs; everything absent is a don't-care.
type Cube struct {
	State map[int]logic.V // flop index (design flop order) -> V1 care bit
	PIs   map[int]logic.V // PI index -> care bit
}

// engineResult is the disposition of one PODEM run.
type engineResult uint8

const (
	genSuccess engineResult = iota
	genUntestable
	genAborted
)

const (
	frame1 = 0
	frame2 = 1
)

type trailEnt struct {
	arr uint8 // 0: val1, 1: val2, 2: valf
	net netlist.NetID
	old logic.V
}

type inputRef struct {
	isPI bool
	idx  int // PI index or flop index
}

type decision struct {
	input     inputRef
	val       logic.V
	flipped   bool
	trailMark int
}

type objective struct {
	frame int
	net   netlist.NetID
	val   logic.V
}

// genStats tallies implication-engine work. Per-fault additive, so the
// totals summed over all worker engines at the end of a Run are
// independent of the worker count and of which worker ran which fault.
type genStats struct {
	waves       int64 // implication waves, scalar and packed together
	specWaves   int64 // packed speculative pair waves
	decisions   int64 // decisions committed to the stack
	backtracks  int64 // decision flips
	slotsCommit int64 // speculative slots materialized onto the trail
	slotsPrune  int64 // speculative slots killed by the conflict mask
	avoided     int64 // flips resolved from an already-computed slot
}

// engine is the two-frame PODEM machine. One engine is reused across all
// faults of one (domain, mode) run; clone() gives each generation worker
// its own.
type engine struct {
	d      *netlist.Design
	dom    int
	mode   LaunchMode
	levels []int32

	val1 []logic.V // frame-1 net values
	val2 []logic.V // frame-2 good-machine values
	valf []logic.V // frame-2 faulty-machine values

	trail []trailEnt
	decs  []decision

	// xfer maps a frame-1 net to the flops whose V2 output follows it
	// (capture D-net for LOC, predecessor Q / scan-in for LOS); xferSrc is
	// the inverse used by backward traversal.
	xfer    map[netlist.NetID][]netlist.InstID
	xferSrc map[netlist.InstID]netlist.NetID
	hold    map[netlist.InstID]bool // flops that keep V1 in frame 2

	flopIdx map[netlist.InstID]int

	decidablePI []bool // per PI index: usable as a decision variable
	piConst     map[int]logic.V

	// per-fault state
	site  netlist.NetID
	stuck logic.V
	cone  []netlist.InstID // frame-2 fanout cone, topo order
	obs   []netlist.NetID  // observable D nets (dom flops) in the cone

	// obsSeen/obsGen dedup observable endpoints in setupFault: a net is
	// "seen this fault" when its stamp equals the current generation, so
	// resetting between faults is a single counter bump.
	obsSeen []uint32
	obsGen  uint32

	// propagation buckets, one per level and frame
	b1, b2   [][]netlist.InstID
	q1, q2   []bool
	maxLevel int32

	backtracks int
	limit      int

	// prefer marks the blocks the run is targeting: the D-frontier tries
	// to keep propagation inside them (nil = no preference).
	prefer map[int]bool

	// spec is the packed speculative overlay (nil selects the scalar
	// oracle); specOn burst-gates pair speculation within one fault's
	// search — on at every conflict event, off again at the first clean
	// slot-0 commit, so pair waves are only paid in the conflict-dense
	// stretches right after backtracks where they can win.
	spec   *specState
	specOn bool

	stats genStats
}

// engineConfig parameterizes engine construction. The search itself is
// fully deterministic — no randomness enters between a (fault, base)
// pair and its cube.
type engineConfig struct {
	dom       int
	mode      LaunchMode
	limit     int                              // backtrack limit before aborting a fault
	packed    bool                             // use the packed speculative implication core
	excludePI map[int]bool                     // PI indexes never used as decisions (scan pins)
	constPI   map[int]logic.V                  // PI indexes pinned to a constant (scan enable)
	shiftPrev map[netlist.InstID]netlist.NetID // LOS: flop -> frame-1 source net
	prefer    map[int]bool                     // blocks to keep fault propagation inside
}

func newEngine(d *netlist.Design, cfg engineConfig) (*engine, error) {
	lv, err := d.Levels()
	if err != nil {
		return nil, err
	}
	var ml int32
	for _, l := range lv {
		if l > ml {
			ml = l
		}
	}
	e := &engine{
		d: d, dom: cfg.dom, mode: cfg.mode, levels: lv,
		val1:     make([]logic.V, d.NumNets()),
		val2:     make([]logic.V, d.NumNets()),
		valf:     make([]logic.V, d.NumNets()),
		obsSeen:  make([]uint32, d.NumNets()),
		xfer:     make(map[netlist.NetID][]netlist.InstID),
		xferSrc:  make(map[netlist.InstID]netlist.NetID),
		hold:     make(map[netlist.InstID]bool),
		flopIdx:  make(map[netlist.InstID]int, len(d.Flops)),
		piConst:  cfg.constPI,
		maxLevel: ml,
		limit:    cfg.limit,
		prefer:   cfg.prefer,
	}
	if cfg.packed {
		e.spec = newSpecState(d, ml)
	}
	for i := range e.val1 {
		e.val1[i], e.val2[i], e.valf[i] = logic.X, logic.X, logic.X
	}
	for i, f := range d.Flops {
		e.flopIdx[f] = i
		inst := d.Inst(f)
		if inst.Domain != cfg.dom {
			e.hold[f] = true
			continue
		}
		var src netlist.NetID
		switch cfg.mode {
		case LOC:
			src = inst.In[0] // functional capture from D
		case LOS:
			var ok bool
			src, ok = cfg.shiftPrev[f]
			if !ok {
				e.hold[f] = true
				continue
			}
		}
		e.xfer[src] = append(e.xfer[src], f)
		e.xferSrc[f] = src
	}
	e.decidablePI = make([]bool, len(d.PIs))
	for i := range e.decidablePI {
		e.decidablePI[i] = !cfg.excludePI[i]
		if _, pinned := cfg.constPI[i]; pinned {
			e.decidablePI[i] = false
		}
	}
	e.b1 = make([][]netlist.InstID, ml+2)
	e.b2 = make([][]netlist.InstID, ml+2)
	e.q1 = make([]bool, d.NumInsts())
	e.q2 = make([]bool, d.NumInsts())
	return e, nil
}

// --- value setting with trail -------------------------------------------

func (e *engine) set(arr uint8, n netlist.NetID, v logic.V) {
	var slot *logic.V
	switch arr {
	case 0:
		slot = &e.val1[n]
	case 1:
		slot = &e.val2[n]
	default:
		slot = &e.valf[n]
	}
	if *slot == v {
		return
	}
	e.trail = append(e.trail, trailEnt{arr: arr, net: n, old: *slot})
	*slot = v
}

func (e *engine) undoTo(mark int) {
	for len(e.trail) > mark {
		t := e.trail[len(e.trail)-1]
		e.trail = e.trail[:len(e.trail)-1]
		switch t.arr {
		case 0:
			e.val1[t.net] = t.old
		case 1:
			e.val2[t.net] = t.old
		default:
			e.valf[t.net] = t.old
		}
	}
}

// --- event-driven two-frame propagation ----------------------------------

func (e *engine) schedule1(n netlist.NetID) {
	for _, ld := range e.d.Nets[n].Loads {
		inst := &e.d.Insts[ld.Inst]
		if inst.IsFlop() || e.q1[ld.Inst] {
			continue
		}
		e.q1[ld.Inst] = true
		e.b1[e.levels[ld.Inst]] = append(e.b1[e.levels[ld.Inst]], ld.Inst)
	}
	// Frame boundary: flops fed from this net launch its value in frame 2.
	if flops, ok := e.xfer[n]; ok {
		v := e.val1[n]
		for _, f := range flops {
			e.set2both(e.d.Insts[f].Out, v)
		}
	}
}

func (e *engine) schedule2(n netlist.NetID) {
	for _, ld := range e.d.Nets[n].Loads {
		inst := &e.d.Insts[ld.Inst]
		if inst.IsFlop() || e.q2[ld.Inst] {
			continue
		}
		e.q2[ld.Inst] = true
		e.b2[e.levels[ld.Inst]] = append(e.b2[e.levels[ld.Inst]], ld.Inst)
	}
}

// set2both updates the frame-2 good value (and the faulty value except at
// the fault site, which stays stuck) and schedules fanout.
func (e *engine) set2both(n netlist.NetID, v logic.V) {
	if e.val2[n] == v {
		return
	}
	e.set(1, n, v)
	if n != e.site {
		e.set(2, n, v)
	}
	e.schedule2(n)
}

// wave drains frame-1 then frame-2 buckets in level order. Kleene logic is
// monotone under input refinement, so one level-ordered pass settles each
// wave.
func (e *engine) wave() {
	var buf [4]logic.V
	for lv := int32(1); lv <= e.maxLevel; lv++ {
		bucket := e.b1[lv]
		e.b1[lv] = bucket[:0]
		for _, g := range bucket {
			e.q1[g] = false
			inst := &e.d.Insts[g]
			in := buf[:len(inst.In)]
			for p, n := range inst.In {
				in[p] = e.val1[n]
			}
			v := cell.Eval(inst.Kind, in)
			if v != e.val1[inst.Out] {
				e.set(0, inst.Out, v)
				e.schedule1(inst.Out)
			}
		}
	}
	var buf2 [4]logic.V
	for lv := int32(1); lv <= e.maxLevel; lv++ {
		bucket := e.b2[lv]
		e.b2[lv] = bucket[:0]
		for _, g := range bucket {
			e.q2[g] = false
			inst := &e.d.Insts[g]
			in := buf[:len(inst.In)]
			inF := buf2[:len(inst.In)]
			for p, n := range inst.In {
				in[p] = e.val2[n]
				inF[p] = e.valf[n]
			}
			vG := cell.Eval(inst.Kind, in)
			vF := cell.Eval(inst.Kind, inF)
			if vG != e.val2[inst.Out] {
				e.set(1, inst.Out, vG)
				e.schedule2(inst.Out)
			}
			if inst.Out != e.site && vF != e.valf[inst.Out] {
				e.set(2, inst.Out, vF)
				e.schedule2(inst.Out)
			}
		}
	}
	// Frame-2 updates can re-populate earlier levels only via the frame
	// boundary, which happens in frame-1 scheduling; within frame 2 the
	// graph is acyclic and level-ordered, but a second pass is needed when
	// good and faulty values interleave scheduling. Drain until stable.
	for e.dirty2() {
		var buf3 [4]logic.V
		for lv := int32(1); lv <= e.maxLevel; lv++ {
			bucket := e.b2[lv]
			e.b2[lv] = bucket[:0]
			for _, g := range bucket {
				e.q2[g] = false
				inst := &e.d.Insts[g]
				in := buf[:len(inst.In)]
				inF := buf3[:len(inst.In)]
				for p, n := range inst.In {
					in[p] = e.val2[n]
					inF[p] = e.valf[n]
				}
				vG := cell.Eval(inst.Kind, in)
				vF := cell.Eval(inst.Kind, inF)
				if vG != e.val2[inst.Out] {
					e.set(1, inst.Out, vG)
					e.schedule2(inst.Out)
				}
				if inst.Out != e.site && vF != e.valf[inst.Out] {
					e.set(2, inst.Out, vF)
					e.schedule2(inst.Out)
				}
			}
		}
	}
}

func (e *engine) dirty2() bool {
	for lv := int32(1); lv <= e.maxLevel; lv++ {
		if len(e.b2[lv]) > 0 {
			return true
		}
	}
	return false
}

// place writes one input-variable value into both frames and schedules
// its fanout without settling it — callers batch several placements into
// one wave (applyBaseBatch) or settle immediately (assignInput).
func (e *engine) place(in inputRef, v logic.V) {
	if in.isPI {
		n := e.d.PIs[in.idx]
		e.set(0, n, v)
		e.schedule1(n)
		e.set2both(n, v)
	} else {
		f := e.d.Flops[in.idx]
		q := e.d.Insts[f].Out
		e.set(0, q, v)
		e.schedule1(q)
		if e.hold[f] {
			e.set2both(q, v)
		}
	}
}

// assignInput applies one decision value to an input variable and
// propagates both frames.
func (e *engine) assignInput(in inputRef, v logic.V) {
	e.place(in, v)
	e.stats.waves++
	e.wave()
}

// clone returns an engine for another generation worker: all construction
// state that is read-only after newEngine (design, levels, transfer maps,
// PI policies, block preferences) is shared, while every mutable search
// structure (value arrays, trail, decision stack, buckets, overlay) is
// private. Engines are stateless between faults (teardown restores all-X),
// so a clone produces bit-identical cubes to its original for any
// (fault, base) pair — the property the epoch scheduler rests on.
func (e *engine) clone() *engine {
	c := &engine{
		d: e.d, dom: e.dom, mode: e.mode, levels: e.levels,
		val1:        make([]logic.V, len(e.val1)),
		val2:        make([]logic.V, len(e.val2)),
		valf:        make([]logic.V, len(e.valf)),
		obsSeen:     make([]uint32, len(e.obsSeen)),
		xfer:        e.xfer,
		xferSrc:     e.xferSrc,
		hold:        e.hold,
		flopIdx:     e.flopIdx,
		decidablePI: e.decidablePI,
		piConst:     e.piConst,
		maxLevel:    e.maxLevel,
		limit:       e.limit,
		prefer:      e.prefer,
	}
	for i := range c.val1 {
		c.val1[i], c.val2[i], c.valf[i] = logic.X, logic.X, logic.X
	}
	c.b1 = make([][]netlist.InstID, e.maxLevel+2)
	c.b2 = make([][]netlist.InstID, e.maxLevel+2)
	c.q1 = make([]bool, e.d.NumInsts())
	c.q2 = make([]bool, e.d.NumInsts())
	if e.spec != nil {
		c.spec = newSpecState(e.d, e.maxLevel)
	}
	return c
}
