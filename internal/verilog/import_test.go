package verilog

import (
	"os"
	"testing"

	"scap/internal/atpg"
	"scap/internal/cell"
	"scap/internal/fault"
	"scap/internal/faultsim"
	"scap/internal/logic"
	"scap/internal/scan"
	"scap/internal/sim"
)

// TestImportedCounterBehaves reads a hand-written external design and
// verifies functional behavior, then runs the complete DFT flow on it:
// scan insertion, chain flush, and transition-fault ATPG.
func TestImportedCounterBehaves(t *testing.T) {
	f, err := os.Open("testdata/counter4.v")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := Read(f, cell.New180nm())
	if err != nil {
		t.Fatal(err)
	}
	d.NumBlocks = 1
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if len(d.Flops) != 4 || d.NumGates() != 6 {
		t.Fatalf("counter has %d flops, %d gates", len(d.Flops), d.NumGates())
	}

	// Functional check: 20 capture cycles count 0..15 and wrap.
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	// Map design flop order to bit weight via instance names u_q0..u_q3.
	weight := map[string]uint{"u_q0": 0, "u_q1": 1, "u_q2": 2, "u_q3": 3}
	state := make([]logic.V, len(d.Flops))
	for i := range state {
		state[i] = logic.Zero
	}
	value := func(st []logic.V) int {
		v := 0
		for i, fl := range d.Flops {
			if st[i] == logic.One {
				v |= 1 << weight[d.Inst(fl).Name]
			}
		}
		return v
	}
	nets := s.NewNets()
	for cyc := 1; cyc <= 20; cyc++ {
		s.ApplyState(nets, state)
		s.Propagate(nets)
		state = s.CaptureState(nets)
		if got, want := value(state), cyc%16; got != want {
			t.Fatalf("cycle %d: counter at %d, want %d", cyc, got, want)
		}
	}

	// DFT flow: scan insert, flush, transition-fault ATPG.
	sc, err := scan.Insert(d, scan.Config{NumChains: 1})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.FlushTest(s2, nil); err != nil {
		t.Fatal(err)
	}
	fs, err := faultsim.New(s2)
	if err != nil {
		t.Fatal(err)
	}
	l := fault.Universe(d)
	res, err := atpg.Run(fs, l, sc, atpg.Options{Dom: 0, Fill: atpg.FillRandom, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := res.Counts
	t.Logf("counter4 ATPG: %d faults, %d detected, %d untestable, %d patterns, TC %.1f%%",
		c.Total, c.Detected, c.Untestable, len(res.Patterns), 100*c.TestCoverage())
	if c.TestCoverage() < 0.5 {
		t.Fatalf("coverage %.1f%% too low for the counter", 100*c.TestCoverage())
	}
}
