package verilog

import (
	"bytes"
	"strings"
	"testing"

	"scap/internal/cell"
	"scap/internal/scan"
	"scap/internal/soc"
)

func TestRoundTripSOC(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := scan.Insert(d, scan.Config{NumChains: 16}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()), cell.New180nm())
	if err != nil {
		t.Fatal(err)
	}
	if back.NumInsts() != d.NumInsts() || back.NumNets() != d.NumNets() {
		t.Fatalf("size mismatch: %d/%d insts, %d/%d nets",
			back.NumInsts(), d.NumInsts(), back.NumNets(), d.NumNets())
	}
	if len(back.PIs) != len(d.PIs) || len(back.POs) != len(d.POs) {
		t.Fatalf("io mismatch: %d/%d PIs, %d/%d POs",
			len(back.PIs), len(d.PIs), len(back.POs), len(d.POs))
	}
	if back.NumBlocks != d.NumBlocks || len(back.Domains) != len(d.Domains) {
		t.Fatal("block/domain metadata lost")
	}
	// Name-keyed structural comparison (IDs may be permuted).
	type sig struct {
		kind    cell.Kind
		out     string
		in      string
		block   int
		domain  int
		negEdge bool
	}
	want := map[string]sig{}
	for i := range d.Insts {
		inst := &d.Insts[i]
		s := sig{kind: inst.Kind, out: d.Nets[inst.Out].Name,
			block: inst.Block, domain: inst.Domain, negEdge: inst.NegEdge}
		ins := make([]string, len(inst.In))
		for p, n := range inst.In {
			ins[p] = d.Nets[n].Name
		}
		s.in = strings.Join(ins, ",")
		want[inst.Name] = s
	}
	for i := range back.Insts {
		inst := &back.Insts[i]
		s := sig{kind: inst.Kind, out: back.Nets[inst.Out].Name,
			block: inst.Block, negEdge: inst.NegEdge}
		if inst.IsFlop() {
			s.domain = inst.Domain
		} else {
			s.domain = -1
		}
		ins := make([]string, len(inst.In))
		for p, n := range inst.In {
			ins[p] = back.Nets[n].Name
		}
		s.in = strings.Join(ins, ",")
		w, ok := want[inst.Name]
		if !ok {
			t.Fatalf("unexpected instance %q", inst.Name)
		}
		if w != s {
			t.Fatalf("instance %q differs:\n got %+v\nwant %+v", inst.Name, s, w)
		}
	}
	if err := back.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteContainsStructure(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(96))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"module turbo_eagle_repro", "endmodule", "input pi0;", "wire ", "// domain 0: clka 100 MHz"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output", want)
		}
	}
}

func TestReadErrors(t *testing.T) {
	lib := cell.New180nm()
	cases := []struct {
		name string
		src  string
	}{
		{"unknown cell", "wire a;\nwire y;\nFOO g1 (.Y(y), .A(a));\n"},
		{"unknown output net", "wire a;\nINV g1 (.Y(nope), .A(a));\n"},
		{"unknown input net", "wire y;\nINV g1 (.Y(y), .A(nope));\n"},
		{"malformed instance", "wire y;\nINV g1 .Y(y);\n"},
		{"bad connection", "wire a;\nwire y;\nINV g1 (Y(y), .A(a));\n"},
		{"bad assign", "assign x_po = nosuch;\n"},
		{"bad domain comment", "// domain x: clka xx MHz\n"},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.src), lib); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestSanitize(t *testing.T) {
	if sanitize("a-b c.d") != "a_b_c_d" {
		t.Fatal("sanitize wrong")
	}
}
