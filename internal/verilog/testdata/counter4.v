// hand-written 4-bit synchronous up-counter in the scap Verilog subset
// blocks: 1
// domain 0: clk 100 MHz
module counter4 (clk, q3_po);
  input clk;
  output q3_po;
  wire q0;
  wire q1;
  wire q2;
  wire q3;
  wire c01;
  wire c012;
  wire d0;
  wire d1;
  wire d2;
  wire d3;
  assign q3_po = q3;
  INV u_d0 (.Y(d0), .A(q0)); // block=0
  XOR2 u_d1 (.Y(d1), .A(q1), .B(q0)); // block=0
  AND2 u_c01 (.Y(c01), .A(q0), .B(q1)); // block=0
  XOR2 u_d2 (.Y(d2), .A(q2), .B(c01)); // block=0
  AND2 u_c012 (.Y(c012), .A(c01), .B(q2)); // block=0
  XOR2 u_d3 (.Y(d3), .A(q3), .B(c012)); // block=0
  DFF u_q0 (.Y(q0), .D(d0), .CK(clk)); // block=0 domain=0 negedge=false
  DFF u_q1 (.Y(q1), .D(d1), .CK(clk)); // block=0 domain=0 negedge=false
  DFF u_q2 (.Y(q2), .D(d2), .CK(clk)); // block=0 domain=0 negedge=false
  DFF u_q3 (.Y(q3), .D(d3), .CK(clk)); // block=0 domain=0 negedge=false
endmodule
