package fault

import (
	"testing"

	"scap/internal/cell"
	"scap/internal/netlist"
	"scap/internal/soc"
)

func TestUniverseOnSOC(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	l := Universe(d)
	if l.UniverseSize != 2*d.NumNets() {
		t.Fatalf("universe %d, want %d", l.UniverseSize, 2*d.NumNets())
	}
	if len(l.Faults) == 0 || len(l.Faults) > l.UniverseSize {
		t.Fatalf("collapsed count %d out of range", len(l.Faults))
	}
	// Collapsing must shrink the list (the SOC has buffers/inverters).
	if len(l.Faults) >= l.UniverseSize {
		t.Fatal("no collapsing happened")
	}
	equiv := 0
	for i := range l.Faults {
		equiv += l.Faults[i].Equiv
	}
	if equiv != l.UniverseSize {
		t.Fatalf("equivalence classes cover %d faults, want %d", equiv, l.UniverseSize)
	}
	for i := range l.Status {
		if l.Status[i] != Undetected || l.DetectedBy[i] != -1 {
			t.Fatal("fresh list not all-undetected")
		}
	}
}

// buildCollapseCircuit: PI a -> INV i1 -> n1 (single load) -> BUF b1 -> n2 -> flop.
func buildCollapseCircuit(t *testing.T) (*netlist.Design, netlist.NetID, netlist.NetID, netlist.NetID) {
	t.Helper()
	d := netlist.New("col", cell.New180nm())
	d.NumBlocks = 1
	d.Domains = []netlist.DomainInfo{{Name: "clk", FreqMHz: 100, PeriodNs: 10}}
	a := d.AddPI("a")
	n1 := d.AddNet("n1")
	n2 := d.AddNet("n2")
	q := d.AddNet("q")
	d.AddInst("i1", cell.Inv, []netlist.NetID{a}, n1, 0)
	d.AddInst("b1", cell.Buf, []netlist.NetID{n1}, n2, 0)
	f := d.AddInst("f", cell.DFF, []netlist.NetID{n2}, q, 0)
	d.SetDomain(f, 0, false)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	return d, a, n1, n2
}

func TestCollapseThroughInvBuf(t *testing.T) {
	d, a, _, _ := buildCollapseCircuit(t)
	l := Universe(d)
	// Universe: 8 faults (4 nets x 2). n1 faults collapse onto a (through
	// INV, flipped); n2 faults collapse onto a (through BUF+INV).
	// q faults stay (flop output). So representatives: a(STR), a(STF),
	// q(STR), q(STF) = 4.
	if len(l.Faults) != 4 {
		for i := range l.Faults {
			t.Logf("fault %d: %s", i, l.String(i))
		}
		t.Fatalf("collapsed to %d, want 4", len(l.Faults))
	}
	// a's two classes each represent 3 universe faults.
	for i := range l.Faults {
		f := &l.Faults[i]
		if f.Net == a && f.Equiv != 3 {
			t.Fatalf("fault %s Equiv=%d, want 3", l.String(i), f.Equiv)
		}
	}
}

func TestNoCollapseAcrossFanout(t *testing.T) {
	d := netlist.New("fan", cell.New180nm())
	d.NumBlocks = 1
	d.Domains = []netlist.DomainInfo{{Name: "clk", FreqMHz: 100, PeriodNs: 10}}
	a := d.AddPI("a")
	n1 := d.AddNet("n1")
	n2 := d.AddNet("n2")
	q := d.AddNet("q")
	q2 := d.AddNet("q2")
	d.AddInst("i1", cell.Inv, []netlist.NetID{a}, n1, 0)
	d.AddInst("i2", cell.Inv, []netlist.NetID{a}, n2, 0) // a has fanout 2
	f1 := d.AddInst("f1", cell.DFF, []netlist.NetID{n1}, q, 0)
	f2 := d.AddInst("f2", cell.DFF, []netlist.NetID{n2}, q2, 0)
	d.SetDomain(f1, 0, false)
	d.SetDomain(f2, 0, false)
	l := Universe(d)
	// n1/n2 must NOT collapse onto a (a has two loads): faults a(2) +
	// n1(2) + n2(2) + q(2) + q2(2) = 10.
	if len(l.Faults) != 10 {
		t.Fatalf("collapsed to %d, want 10 (no collapse across fanout)", len(l.Faults))
	}
}

func TestInBlocksAndDomains(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	l := Universe(d)
	b5 := l.InBlocks(soc.B5)
	if len(b5) == 0 {
		t.Fatal("no B5 faults")
	}
	for _, fi := range b5 {
		if l.Faults[fi].Block != soc.B5 {
			t.Fatal("InBlocks returned wrong block")
		}
	}
	all := l.InBlocks(soc.B1, soc.B2, soc.B3, soc.B4, soc.B5, soc.B6)
	if len(all) > len(l.Faults) {
		t.Fatal("block filter grew the list")
	}
	// clka (domain 0) must be the dominant domain by fault count.
	clka := l.InDomain(0)
	for dom := 1; dom < len(d.Domains); dom++ {
		if n := len(l.InDomain(dom)); n >= len(clka) {
			t.Fatalf("domain %d holds %d faults vs clka's %d", dom, n, len(clka))
		}
	}
	// Domain partitions must be disjoint.
	seen := make(map[int]int)
	for dom := range d.Domains {
		for _, fi := range l.InDomain(dom) {
			if prev, ok := seen[fi]; ok {
				t.Fatalf("fault %d in domains %d and %d", fi, prev, dom)
			}
			seen[fi] = dom
		}
	}
}

func TestCountsAndCoverage(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	l := Universe(d)
	l.MarkDetected(0, 7)
	l.MarkDetected(1, 8)
	l.MarkDetected(0, 9) // second detection must not overwrite
	l.Status[2] = Untestable
	l.Status[3] = Aborted
	c := l.Count()
	if c.Detected != 2 || c.Untestable != 1 || c.Aborted != 1 {
		t.Fatalf("counts %+v", c)
	}
	if l.DetectedBy[0] != 7 {
		t.Fatalf("first detection overwritten: %d", l.DetectedBy[0])
	}
	if got := c.TestCoverage(); got != float64(2)/float64(c.Total-1) {
		t.Fatalf("TestCoverage %v", got)
	}
	if got := c.FaultCoverage(); got != float64(2)/float64(c.Total) {
		t.Fatalf("FaultCoverage %v", got)
	}
	sub := l.CountOf([]int{0, 2})
	if sub.Total != 2 || sub.Detected != 1 || sub.Untestable != 1 {
		t.Fatalf("subset counts %+v", sub)
	}
	if (Counts{}).TestCoverage() != 0 || (Counts{}).FaultCoverage() != 0 {
		t.Fatal("empty coverage should be 0")
	}
}

func TestStatusAndTypeStrings(t *testing.T) {
	if STR.String() != "STR" || STF.String() != "STF" {
		t.Fatal("type strings")
	}
	for s, want := range map[Status]string{
		Undetected: "undetected", Detected: "detected",
		Aborted: "aborted", Untestable: "untestable",
	} {
		if s.String() != want {
			t.Fatalf("%d -> %q", s, s.String())
		}
	}
}
