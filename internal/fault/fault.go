// Package fault defines the transition delay fault (TDF) model: slow-to-rise
// and slow-to-fall faults on every net, structural equivalence collapsing
// through buffer/inverter chains, per-block fault selection (the unit the
// paper's pattern-generation procedure targets), and fault-status tracking
// for ATPG and fault simulation.
//
// Detection semantics (launch-off-capture, two vectors V1/V2):
//
//	slow-to-rise  on net n: V1 sets n=0, V2 sets n=1, and the V2-frame
//	              stuck-at-0 fault at n propagates to a captured flop;
//	slow-to-fall  on net n: V1 sets n=1, V2 sets n=0, and the V2-frame
//	              stuck-at-1 fault at n propagates to a captured flop.
package fault

import (
	"fmt"

	"scap/internal/cell"
	"scap/internal/netlist"
)

// Type is the transition polarity of a fault.
type Type uint8

// The two transition fault types.
const (
	STR Type = iota // slow-to-rise
	STF             // slow-to-fall
)

// String returns "STR" or "STF".
func (t Type) String() string {
	if t == STR {
		return "STR"
	}
	return "STF"
}

// Fault is one transition delay fault at a net.
type Fault struct {
	ID   int
	Net  netlist.NetID
	Type Type
	// Block is the floorplan block of the fault site's driver (NoBlock for
	// primary-input nets); per-block ATPG targeting filters on it.
	Block int
	// Equiv counts how many universe faults this collapsed representative
	// stands for (>= 1).
	Equiv int
}

// Status tracks the ATPG/fault-simulation disposition of a fault.
type Status uint8

// Fault dispositions.
const (
	Undetected Status = iota
	Detected
	Aborted    // ATPG gave up (backtrack limit)
	Untestable // proven untestable (no activation or no propagation)
)

// String names the status.
func (s Status) String() string {
	switch s {
	case Undetected:
		return "undetected"
	case Detected:
		return "detected"
	case Aborted:
		return "aborted"
	default:
		return "untestable"
	}
}

// List is a collapsed fault list with status tracking.
type List struct {
	D      *netlist.Design
	Faults []Fault
	Status []Status
	// DetectedBy records the pattern index that first detected each fault
	// (-1 when undetected).
	DetectedBy []int
	// UniverseSize is the uncollapsed fault count (2 faults per net),
	// the paper's Table 1 "Transition Delay Faults" number.
	UniverseSize int
}

// Universe enumerates the full TDF universe of d (two faults per net) and
// collapses equivalences through fanout-free buffer/inverter stages. The
// returned list is deterministic.
func Universe(d *netlist.Design) *List {
	l := &List{D: d, UniverseSize: 2 * d.NumNets()}
	seen := make(map[int64]int) // (rep net, type) -> fault index
	key := func(n netlist.NetID, t Type) int64 { return int64(n)<<1 | int64(t) }

	for id := 0; id < d.NumNets(); id++ {
		for _, t := range []Type{STR, STF} {
			rn, rt := representative(d, netlist.NetID(id), t)
			if fi, ok := seen[key(rn, rt)]; ok {
				l.Faults[fi].Equiv++
				continue
			}
			block := netlist.NoBlock
			if drv := d.Nets[rn].Driver; drv != netlist.NoInst {
				block = d.Insts[drv].Block
			}
			fi := len(l.Faults)
			l.Faults = append(l.Faults, Fault{
				ID: fi, Net: rn, Type: rt, Block: block, Equiv: 1,
			})
			seen[key(rn, rt)] = fi
		}
	}
	l.Status = make([]Status, len(l.Faults))
	l.DetectedBy = make([]int, len(l.Faults))
	for i := range l.DetectedBy {
		l.DetectedBy[i] = -1
	}
	return l
}

// representative walks backward through fanout-free BUF/INV stages: a
// transition fault at the output of a single-load buffer (inverter) is
// equivalent to the same (opposite) transition at its input.
func representative(d *netlist.Design, n netlist.NetID, t Type) (netlist.NetID, Type) {
	for {
		drv := d.Nets[n].Driver
		if drv == netlist.NoInst {
			return n, t
		}
		inst := &d.Insts[drv]
		if inst.Kind != cell.Buf && inst.Kind != cell.Inv {
			return n, t
		}
		in := inst.In[0]
		if len(d.Nets[in].Loads) != 1 {
			return n, t
		}
		if inst.Kind == cell.Inv {
			t ^= 1
		}
		n = in
	}
}

// InBlocks returns the indexes of faults whose site lies in any of the
// given blocks.
func (l *List) InBlocks(blocks ...int) []int {
	want := make(map[int]bool, len(blocks))
	for _, b := range blocks {
		want[b] = true
	}
	var out []int
	for i := range l.Faults {
		if want[l.Faults[i].Block] {
			out = append(out, i)
		}
	}
	return out
}

// InDomain returns the indexes of faults whose site's fanout can be
// captured by flops of the given clock domain — approximated structurally
// as: the site's driver (or, for PI/flop-output sites, any load) belongs to
// the domain's combinational cloud. In this reproduction the clouds are
// domain-disjoint, so membership is decided by the nearest flop found when
// walking the fault net's load instances.
func (l *List) InDomain(dom int) []int {
	d := l.D
	var out []int
	for i := range l.Faults {
		if faultDomain(d, l.Faults[i].Net) == dom {
			out = append(out, i)
		}
	}
	return out
}

// faultDomain infers the clock domain a net belongs to: flop-driven nets
// take the flop's domain; otherwise the first flop load (direct or through
// its driver's block cloud) decides. Nets with no sequential context
// return -1.
func faultDomain(d *netlist.Design, n netlist.NetID) int {
	if drv := d.Nets[n].Driver; drv != netlist.NoInst && d.Insts[drv].IsFlop() {
		return d.Insts[drv].Domain
	}
	// Breadth-limited forward walk to the first flop load.
	frontier := []netlist.NetID{n}
	for depth := 0; depth < 64 && len(frontier) > 0; depth++ {
		var next []netlist.NetID
		for _, fn := range frontier {
			for _, ld := range d.Nets[fn].Loads {
				inst := &d.Insts[ld.Inst]
				if inst.IsFlop() {
					if ld.Pin == 0 {
						return inst.Domain
					}
					continue // scan path does not define the domain
				}
				next = append(next, inst.Out)
			}
		}
		frontier = next
	}
	return -1
}

// Counts summarizes the list's status distribution.
type Counts struct {
	Total, Detected, Undetected, Aborted, Untestable int
}

// Count tallies fault statuses over the whole list.
func (l *List) Count() Counts {
	return l.CountOf(nil)
}

// CountOf tallies statuses over a fault-index subset (nil means all).
func (l *List) CountOf(subset []int) Counts {
	var c Counts
	tally := func(i int) {
		c.Total++
		switch l.Status[i] {
		case Detected:
			c.Detected++
		case Undetected:
			c.Undetected++
		case Aborted:
			c.Aborted++
		case Untestable:
			c.Untestable++
		}
	}
	if subset == nil {
		for i := range l.Faults {
			tally(i)
		}
	} else {
		for _, i := range subset {
			tally(i)
		}
	}
	return c
}

// TestCoverage returns detected / (total - untestable), the paper's test
// coverage metric, over an optional subset.
func (c Counts) TestCoverage() float64 {
	den := c.Total - c.Untestable
	if den <= 0 {
		return 0
	}
	return float64(c.Detected) / float64(den)
}

// FaultCoverage returns detected / total.
func (c Counts) FaultCoverage() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Detected) / float64(c.Total)
}

// MarkDetected transitions fault fi to Detected by pattern pat (first
// detection wins).
func (l *List) MarkDetected(fi, pat int) {
	if l.Status[fi] != Detected {
		l.Status[fi] = Detected
		l.DetectedBy[fi] = pat
	}
}

// String renders a fault as "net(STR)".
func (l *List) String(fi int) string {
	f := &l.Faults[fi]
	return fmt.Sprintf("%s(%s)", l.D.Nets[f.Net].Name, f.Type)
}
