package netlist

import "fmt"

// TopoOrder returns the combinational instances of the design in a
// topological order: an instance appears after every combinational instance
// that drives one of its inputs. Flop outputs and primary inputs are
// sources. Flops themselves are included at the end of the order (their D /
// SI / SE inputs are consumed by the capture step, not by propagation).
// It returns an error if the combinational logic contains a cycle.
func (d *Design) TopoOrder() ([]InstID, error) {
	if d.topo != nil {
		return d.topo, nil
	}
	n := len(d.Insts)
	indeg := make([]int32, n)
	for i := range d.Insts {
		inst := &d.Insts[i]
		if inst.IsFlop() {
			continue // flops break the cycle; handled after comb logic
		}
		for _, in := range inst.In {
			if in == NoNet {
				continue
			}
			drv := d.Nets[in].Driver
			if drv != NoInst && !d.Insts[drv].IsFlop() {
				indeg[i]++
			}
		}
	}
	order := make([]InstID, 0, n)
	queue := make([]InstID, 0, n)
	for i := range d.Insts {
		if !d.Insts[i].IsFlop() && indeg[i] == 0 {
			queue = append(queue, InstID(i))
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, p := range d.Nets[d.Insts[id].Out].Loads {
			li := p.Inst
			if d.Insts[li].IsFlop() {
				continue
			}
			indeg[li]--
			if indeg[li] == 0 {
				queue = append(queue, li)
			}
		}
	}
	if len(order) != d.NumGates() {
		return nil, fmt.Errorf("netlist: combinational cycle detected (%d of %d gates ordered)",
			len(order), d.NumGates())
	}
	for _, f := range d.Flops {
		order = append(order, f)
	}
	d.topo = order
	return order, nil
}

// Levels returns the per-instance logic level: sources (instances fed only
// by flop outputs or primary inputs) are level 1; every other combinational
// instance is one more than its deepest combinational fanin. Flops are
// level 0. The result is indexed by InstID.
func (d *Design) Levels() ([]int32, error) {
	if d.levels != nil {
		return d.levels, nil
	}
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	lv := make([]int32, len(d.Insts))
	for _, id := range order {
		inst := &d.Insts[id]
		if inst.IsFlop() {
			lv[id] = 0
			continue
		}
		max := int32(0)
		for _, in := range inst.In {
			if in == NoNet {
				continue
			}
			drv := d.Nets[in].Driver
			if drv != NoInst && !d.Insts[drv].IsFlop() && lv[drv] > max {
				max = lv[drv]
			}
		}
		lv[id] = max + 1
	}
	d.levels = lv
	return lv, nil
}

// MaxLevel returns the deepest combinational level in the design.
func (d *Design) MaxLevel() (int32, error) {
	lv, err := d.Levels()
	if err != nil {
		return 0, err
	}
	var max int32
	for _, l := range lv {
		if l > max {
			max = l
		}
	}
	return max, nil
}

// FanoutCone returns the set of combinational instances reachable from net
// start through combinational logic (flops stop propagation), in
// topological order relative to the design's TopoOrder.
func (d *Design) FanoutCone(start NetID) ([]InstID, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	inCone := make([]bool, len(d.Insts))
	netIn := make([]bool, len(d.Nets))
	netIn[start] = true
	cone := make([]InstID, 0, 64)
	for _, id := range order {
		inst := &d.Insts[id]
		if inst.IsFlop() {
			continue
		}
		hit := false
		for _, in := range inst.In {
			if in != NoNet && netIn[in] {
				hit = true
				break
			}
		}
		if hit {
			inCone[id] = true
			netIn[inst.Out] = true
			cone = append(cone, id)
		}
	}
	return cone, nil
}

// FaninCone returns the set of instances (combinational gates and the flops
// or primary inputs at the frontier) in the transitive fanin of net start.
// Flops are included but not traversed through.
func (d *Design) FaninCone(start NetID) []InstID {
	seenInst := make(map[InstID]bool)
	seenNet := make(map[NetID]bool)
	var cone []InstID
	stack := []NetID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seenNet[n] {
			continue
		}
		seenNet[n] = true
		drv := d.Nets[n].Driver
		if drv == NoInst || seenInst[drv] {
			continue
		}
		seenInst[drv] = true
		cone = append(cone, drv)
		if d.Insts[drv].IsFlop() {
			continue
		}
		for _, in := range d.Insts[drv].In {
			if in != NoNet {
				stack = append(stack, in)
			}
		}
	}
	return cone
}
