package netlist

import (
	"testing"

	"scap/internal/cell"
)

// buildToy constructs a small two-flop design:
//
//	PI a, b ; flops f1, f2
//	g1 = NAND2(a, f1.Q)
//	g2 = NOR2(g1, b)
//	g3 = INV(g2)
//	f1.D = g2 ; f2.D = g3 ; PO = g3
func buildToy(t *testing.T) *Design {
	t.Helper()
	d := New("toy", cell.New180nm())
	d.NumBlocks = 1
	d.BlockNames = []string{"B1"}
	d.Domains = []DomainInfo{{Name: "clka", FreqMHz: 100, PeriodNs: 10}}

	a := d.AddPI("a")
	b := d.AddPI("b")
	q1 := d.AddNet("f1_q")
	q2 := d.AddNet("f2_q")
	n1 := d.AddNet("n1")
	n2 := d.AddNet("n2")
	n3 := d.AddNet("n3")

	d.AddInst("g1", cell.Nand2, []NetID{a, q1}, n1, 0)
	d.AddInst("g2", cell.Nor2, []NetID{n1, b}, n2, 0)
	d.AddInst("g3", cell.Inv, []NetID{n2}, n3, 0)
	f1 := d.AddInst("f1", cell.DFF, []NetID{n2}, q1, 0)
	f2 := d.AddInst("f2", cell.DFF, []NetID{n3}, q2, 0)
	d.SetDomain(f1, 0, false)
	d.SetDomain(f2, 0, false)
	d.MarkPO(n3)
	return d
}

func TestBuildAndCheck(t *testing.T) {
	d := buildToy(t)
	if err := d.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	if d.NumInsts() != 5 || d.NumGates() != 3 || len(d.Flops) != 2 {
		t.Fatalf("counts wrong: insts=%d gates=%d flops=%d", d.NumInsts(), d.NumGates(), len(d.Flops))
	}
	if len(d.PIs) != 2 || len(d.POs) != 1 {
		t.Fatalf("io wrong: %d PIs, %d POs", len(d.PIs), len(d.POs))
	}
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	d := buildToy(t)
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, id := range order {
		pos[d.Inst(id).Name] = i
	}
	if !(pos["g1"] < pos["g2"] && pos["g2"] < pos["g3"]) {
		t.Fatalf("order violates dependencies: %v", pos)
	}
	// Flops come after all combinational gates.
	if !(pos["f1"] > pos["g3"] && pos["f2"] > pos["g3"]) {
		t.Fatalf("flops not at end: %v", pos)
	}
}

func TestLevels(t *testing.T) {
	d := buildToy(t)
	lv, err := d.Levels()
	if err != nil {
		t.Fatal(err)
	}
	byName := func(name string) int32 {
		for i := range d.Insts {
			if d.Insts[i].Name == name {
				return lv[i]
			}
		}
		t.Fatalf("no instance %q", name)
		return -1
	}
	if byName("g1") != 1 || byName("g2") != 2 || byName("g3") != 3 {
		t.Fatalf("levels wrong: g1=%d g2=%d g3=%d", byName("g1"), byName("g2"), byName("g3"))
	}
	ml, err := d.MaxLevel()
	if err != nil || ml != 3 {
		t.Fatalf("MaxLevel = %d, %v", ml, err)
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	d := New("cyc", cell.New180nm())
	d.NumBlocks = 1
	a := d.AddPI("a")
	n1 := d.AddNet("n1")
	n2 := d.AddNet("n2")
	d.AddInst("g1", cell.Nand2, []NetID{a, n2}, n1, 0)
	d.AddInst("g2", cell.Inv, []NetID{n1}, n2, 0)
	if _, err := d.TopoOrder(); err == nil {
		t.Fatal("cycle not detected")
	}
	if err := d.Check(); err == nil {
		t.Fatal("Check missed cycle")
	}
}

func TestCheckCatchesUndrivenNet(t *testing.T) {
	d := New("bad", cell.New180nm())
	d.AddNet("floating")
	if err := d.Check(); err == nil {
		t.Fatal("undriven net not reported")
	}
}

func TestCheckCatchesMissingDomain(t *testing.T) {
	d := New("bad", cell.New180nm())
	d.NumBlocks = 1
	a := d.AddPI("a")
	q := d.AddNet("q")
	d.AddInst("f", cell.DFF, []NetID{a}, q, 0)
	if err := d.Check(); err == nil {
		t.Fatal("flop without domain not reported")
	}
}

func TestDoubleDrivePanics(t *testing.T) {
	d := New("bad", cell.New180nm())
	a := d.AddPI("a")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on driving a PI net")
		}
	}()
	d.AddInst("g", cell.Inv, []NetID{a}, a, 0)
}

func TestFanoutCone(t *testing.T) {
	d := buildToy(t)
	// Cone from n1 (g1 output) should include g2 and g3 but not g1.
	n1 := NetID(-1)
	for i := range d.Nets {
		if d.Nets[i].Name == "n1" {
			n1 = d.Nets[i].ID
		}
	}
	cone, err := d.FanoutCone(n1)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, id := range cone {
		names[d.Inst(id).Name] = true
	}
	if !names["g2"] || !names["g3"] || names["g1"] || len(names) != 2 {
		t.Fatalf("cone = %v", names)
	}
}

func TestFaninCone(t *testing.T) {
	d := buildToy(t)
	var n3 NetID
	for i := range d.Nets {
		if d.Nets[i].Name == "n3" {
			n3 = d.Nets[i].ID
		}
	}
	cone := d.FaninCone(n3)
	names := map[string]bool{}
	for _, id := range cone {
		names[d.Inst(id).Name] = true
	}
	// g3 <- g2 <- {g1, PI b}; g1 <- {PI a, f1}
	for _, want := range []string{"g3", "g2", "g1", "f1"} {
		if !names[want] {
			t.Fatalf("fanin cone missing %s: %v", want, names)
		}
	}
	if names["f2"] {
		t.Fatal("f2 should not be in fanin of n3")
	}
}

func TestLoadCap(t *testing.T) {
	d := buildToy(t)
	lib := d.Lib
	// g1 output (n1) feeds g2 pin0 only.
	var g1 InstID
	for i := range d.Insts {
		if d.Insts[i].Name == "g1" {
			g1 = d.Insts[i].ID
		}
	}
	want := lib.Cell(cell.Nand2).OutputCap + lib.Cell(cell.Nor2).InputCap
	if got := d.LoadCap(g1); got != want {
		t.Fatalf("LoadCap = %v, want %v", got, want)
	}
	// After wire-cap annotation the value must grow accordingly.
	d.Nets[d.Insts[g1].Out].WireCap = 5
	if got := d.LoadCap(g1); got != want+5 {
		t.Fatalf("LoadCap with wire = %v, want %v", got, want+5)
	}
}

func TestComputeStats(t *testing.T) {
	d := buildToy(t)
	s, err := d.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Flops != 2 || s.Gates != 3 || s.FlopsPerBlock[0] != 2 || s.FlopsPerDomain[0] != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxLevel != 3 {
		t.Fatalf("MaxLevel = %d", s.MaxLevel)
	}
	if s.NegEdgeFlops != 0 {
		t.Fatalf("NegEdgeFlops = %d", s.NegEdgeFlops)
	}
}

func TestBlockName(t *testing.T) {
	d := buildToy(t)
	if d.BlockName(0) != "B1" || d.BlockName(NoBlock) != "TOP" {
		t.Fatal("BlockName wrong")
	}
	d2 := New("x", cell.New180nm())
	d2.NumBlocks = 3
	if d2.BlockName(2) != "B3" {
		t.Fatal("fallback BlockName wrong")
	}
}

func TestAccessorsAndNetCap(t *testing.T) {
	d := buildToy(t)
	if d.NumNets() != len(d.Nets) {
		t.Fatal("NumNets")
	}
	var n1 NetID
	for i := range d.Nets {
		if d.Nets[i].Name == "n1" {
			n1 = d.Nets[i].ID
		}
	}
	if d.Net(n1).Name != "n1" {
		t.Fatal("Net accessor")
	}
	// NetCap on an instance-driven net equals LoadCap of its driver.
	drv := d.Net(n1).Driver
	if got, want := d.NetCap(n1), d.LoadCap(drv); got != want {
		t.Fatalf("NetCap %v, LoadCap %v", got, want)
	}
	// NetCap on a PI net counts only wire + load pins.
	a := d.PIs[0]
	d.Nets[a].WireCap = 3
	want := 3.0
	for _, p := range d.Nets[a].Loads {
		want += d.Lib.Cell(d.Insts[p.Inst].Kind).InputCap
	}
	if got := d.NetCap(a); got != want {
		t.Fatalf("PI NetCap %v, want %v", got, want)
	}
}

func TestSetInputRewires(t *testing.T) {
	d := buildToy(t)
	var g3 InstID
	var n1 NetID
	for i := range d.Insts {
		if d.Insts[i].Name == "g3" {
			g3 = d.Insts[i].ID
		}
	}
	for i := range d.Nets {
		if d.Nets[i].Name == "n1" {
			n1 = d.Nets[i].ID
		}
	}
	old := d.Insts[g3].In[0]
	d.SetInput(g3, 0, n1)
	if d.Insts[g3].In[0] != n1 {
		t.Fatal("pin not moved")
	}
	// Old net must no longer list g3 as a load; new net must.
	for _, p := range d.Nets[old].Loads {
		if p.Inst == g3 && p.Pin == 0 {
			t.Fatal("stale load on old net")
		}
	}
	found := false
	for _, p := range d.Nets[n1].Loads {
		if p.Inst == g3 && p.Pin == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("load missing on new net")
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	// No-op rewire keeps things intact.
	d.SetInput(g3, 0, n1)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	// Detaching a pin (NoNet) then reattaching.
	d.SetInput(g3, 0, NoNet)
	if d.Insts[g3].In[0] != NoNet {
		t.Fatal("detach failed")
	}
	d.SetInput(g3, 0, old)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSetInputPanicsOnBadPin(t *testing.T) {
	d := buildToy(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.SetInput(0, 9, NoNet)
}

func TestConvertToScan(t *testing.T) {
	d := buildToy(t)
	si := d.AddPI("si")
	se := d.AddPI("se")
	var f1 InstID
	for i := range d.Insts {
		if d.Insts[i].Name == "f1" {
			f1 = d.Insts[i].ID
		}
	}
	d.ConvertToScan(f1, si, se)
	inst := d.Inst(f1)
	if inst.Kind != cell.SDFF || len(inst.In) != 3 {
		t.Fatalf("conversion wrong: %v with %d pins", inst.Kind, len(inst.In))
	}
	if inst.In[1] != si || inst.In[2] != se {
		t.Fatal("scan pins wrong")
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	// Converting twice must panic (not a DFF anymore).
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double conversion")
		}
	}()
	d.ConvertToScan(f1, si, se)
}

func TestCheckCatchesBadBlockAndArity(t *testing.T) {
	d := buildToy(t)
	d.Insts[0].Block = 42
	if err := d.Check(); err == nil {
		t.Fatal("bad block accepted")
	}
	d.Insts[0].Block = 0
	d.Insts[0].In = d.Insts[0].In[:1]
	if err := d.Check(); err == nil {
		t.Fatal("bad arity accepted")
	}
}
