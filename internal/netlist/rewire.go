package netlist

import (
	"fmt"

	"scap/internal/cell"
)

// SetInput rewires input pin p of instance id from its current net to net n,
// keeping the net load cross-references consistent.
func (d *Design) SetInput(id InstID, p int, n NetID) {
	inst := &d.Insts[id]
	if p < 0 || p >= len(inst.In) {
		panic(fmt.Sprintf("netlist: %s has no pin %d", inst.Name, p))
	}
	old := inst.In[p]
	if old == n {
		return
	}
	if old != NoNet {
		loads := d.Nets[old].Loads
		for i, pin := range loads {
			if pin.Inst == id && pin.Pin == p {
				d.Nets[old].Loads = append(loads[:i], loads[i+1:]...)
				break
			}
		}
	}
	inst.In[p] = n
	if n != NoNet {
		d.Nets[n].Loads = append(d.Nets[n].Loads, Pin{Inst: id, Pin: p})
	}
	d.invalidate()
}

// ConvertToScan converts the plain DFF f into an SDFF whose scan input is
// si and scan enable is se. The functional D connection is preserved as
// pin 0. Panics if f is not a DFF.
func (d *Design) ConvertToScan(f InstID, si, se NetID) {
	inst := &d.Insts[f]
	if inst.Kind != cell.DFF {
		panic(fmt.Sprintf("netlist: ConvertToScan on %s (%v)", inst.Name, inst.Kind))
	}
	inst.Kind = cell.SDFF
	inst.In = append(inst.In, NoNet, NoNet) // SI, SE placeholders
	d.SetInput(f, 1, si)
	d.SetInput(f, 2, se)
	d.invalidate()
}
