package netlist

import "fmt"

// Check validates the structural integrity of the design:
//   - every net is driven by exactly one instance or primary input,
//     or is explicitly undriven (an error);
//   - instance pin counts match their cell kind;
//   - net driver/load cross-references are consistent;
//   - every flop has a clock domain assigned;
//   - the combinational logic is acyclic.
//
// It returns the first problem found, or nil.
func (d *Design) Check() error {
	if d.Lib == nil {
		return fmt.Errorf("netlist: design %q has no library", d.Name)
	}
	for i := range d.Nets {
		n := &d.Nets[i]
		if n.Driver == NoInst && n.PI < 0 {
			return fmt.Errorf("netlist: net %q undriven", n.Name)
		}
		if n.Driver != NoInst && n.PI >= 0 {
			return fmt.Errorf("netlist: net %q doubly driven (instance and PI)", n.Name)
		}
		if n.Driver != NoInst {
			if int(n.Driver) >= len(d.Insts) {
				return fmt.Errorf("netlist: net %q driver out of range", n.Name)
			}
			if d.Insts[n.Driver].Out != n.ID {
				return fmt.Errorf("netlist: net %q driver cross-reference broken", n.Name)
			}
		}
		for _, p := range n.Loads {
			if int(p.Inst) >= len(d.Insts) {
				return fmt.Errorf("netlist: net %q load instance out of range", n.Name)
			}
			inst := &d.Insts[p.Inst]
			if p.Pin < 0 || p.Pin >= len(inst.In) || inst.In[p.Pin] != n.ID {
				return fmt.Errorf("netlist: net %q load cross-reference to %q pin %d broken",
					n.Name, inst.Name, p.Pin)
			}
		}
	}
	for i := range d.Insts {
		inst := &d.Insts[i]
		if len(inst.In) != inst.Kind.NumInputs() {
			return fmt.Errorf("netlist: instance %q (%v) has %d inputs, wants %d",
				inst.Name, inst.Kind, len(inst.In), inst.Kind.NumInputs())
		}
		if inst.Out == NoNet || int(inst.Out) >= len(d.Nets) {
			return fmt.Errorf("netlist: instance %q output net invalid", inst.Name)
		}
		if inst.IsFlop() {
			if inst.Domain < 0 || inst.Domain >= len(d.Domains) {
				return fmt.Errorf("netlist: flop %q has no clock domain", inst.Name)
			}
		}
		if inst.Block != NoBlock && (inst.Block < 0 || inst.Block >= d.NumBlocks) {
			return fmt.Errorf("netlist: instance %q block %d out of range", inst.Name, inst.Block)
		}
	}
	if _, err := d.TopoOrder(); err != nil {
		return err
	}
	return nil
}

// Stats summarizes design composition.
type Stats struct {
	Insts, Gates, Flops, Nets, PIs, POs int
	FlopsPerBlock                       []int
	GatesPerBlock                       []int
	FlopsPerDomain                      []int
	NegEdgeFlops                        int
	MaxLevel                            int32
}

// ComputeStats gathers design statistics used by the Table 1 / Table 2
// experiments and the cmd tools.
func (d *Design) ComputeStats() (Stats, error) {
	s := Stats{
		Insts: len(d.Insts), Gates: d.NumGates(), Flops: len(d.Flops),
		Nets: len(d.Nets), PIs: len(d.PIs), POs: len(d.POs),
		FlopsPerBlock:  make([]int, d.NumBlocks),
		GatesPerBlock:  make([]int, d.NumBlocks),
		FlopsPerDomain: make([]int, len(d.Domains)),
	}
	for i := range d.Insts {
		inst := &d.Insts[i]
		if inst.Block == NoBlock {
			continue
		}
		if inst.IsFlop() {
			s.FlopsPerBlock[inst.Block]++
		} else {
			s.GatesPerBlock[inst.Block]++
		}
	}
	for _, f := range d.Flops {
		inst := &d.Insts[f]
		if inst.Domain >= 0 && inst.Domain < len(s.FlopsPerDomain) {
			s.FlopsPerDomain[inst.Domain]++
		}
		if inst.NegEdge {
			s.NegEdgeFlops++
		}
	}
	ml, err := d.MaxLevel()
	if err != nil {
		return s, err
	}
	s.MaxLevel = ml
	return s, nil
}
