// Package netlist defines the flattened gate-level netlist representation
// shared by every other subsystem: instances, nets, pins, block and clock
// domain tags, plus structural utilities (levelization, cone extraction,
// validation, statistics).
//
// The netlist is flat — hierarchy survives only as the per-instance Block
// tag, mirroring how the paper's flow treats its SOC: a single flattened
// design whose instances belong to floorplan blocks B1..B6.
package netlist

import (
	"fmt"

	"scap/internal/cell"
)

// InstID indexes an Instance within a Design.
type InstID int32

// NetID indexes a Net within a Design.
type NetID int32

// NoInst marks the absence of an instance (e.g. the driver of a primary input).
const NoInst InstID = -1

// NoNet marks the absence of a net (e.g. an unconnected optional pin).
const NoNet NetID = -1

// NoBlock tags top-level glue logic that belongs to no floorplan block.
const NoBlock = -1

// Pin identifies one input pin of one instance.
type Pin struct {
	Inst InstID
	Pin  int // input pin index, in cell.Kind pin order
}

// Instance is one placed library cell.
type Instance struct {
	ID   InstID
	Name string
	Kind cell.Kind

	In  []NetID // input nets, in pin order (len == Kind.NumInputs())
	Out NetID   // output net

	Block   int  // floorplan block index (0-based), or NoBlock
	Domain  int  // clock-domain index for sequential cells; -1 for combinational
	NegEdge bool // true for negative-edge-triggered flops

	X, Y float64 // placement location (die units); filled by internal/place
}

// IsFlop reports whether the instance is sequential.
func (in *Instance) IsFlop() bool { return in.Kind.IsSequential() }

// Net is one signal net with a single driver and fanout loads.
type Net struct {
	ID     NetID
	Name   string
	Driver InstID // driving instance, or NoInst when PIIndex >= 0
	PI     int    // index into Design.PIs when primary-input driven, else -1

	Loads []Pin // fanout pins
	PO    bool  // also observed as a primary output

	// Electrical annotation, filled by internal/parasitic:
	WireCap   float64 // interconnect capacitance, fF
	WireDelay float64 // interconnect delay from driver to loads, ns
}

// DomainInfo describes one clock domain of the design.
type DomainInfo struct {
	Name     string
	FreqMHz  float64
	PeriodNs float64
}

// Design is a flattened gate-level design.
type Design struct {
	Name string
	Lib  *cell.Library

	Insts []Instance
	Nets  []Net

	PIs []NetID // primary-input nets, in pad order
	POs []NetID // primary-output nets

	Flops []InstID // all sequential instances

	NumBlocks  int
	BlockNames []string
	Domains    []DomainInfo

	topo   []InstID // cached combinational topological order
	levels []int32  // cached per-instance level (flop/PI sources at 0)
}

// New creates an empty design using lib.
func New(name string, lib *cell.Library) *Design {
	return &Design{Name: name, Lib: lib}
}

// AddNet appends a new undriven net and returns its ID.
func (d *Design) AddNet(name string) NetID {
	id := NetID(len(d.Nets))
	d.Nets = append(d.Nets, Net{ID: id, Name: name, Driver: NoInst, PI: -1})
	d.invalidate()
	return id
}

// AddPI appends a new primary-input net and returns its ID.
func (d *Design) AddPI(name string) NetID {
	id := d.AddNet(name)
	d.Nets[id].PI = len(d.PIs)
	d.PIs = append(d.PIs, id)
	return id
}

// MarkPO marks net n as a primary output.
func (d *Design) MarkPO(n NetID) {
	if !d.Nets[n].PO {
		d.Nets[n].PO = true
		d.POs = append(d.POs, n)
	}
}

// AddInst appends an instance of kind driving net out from inputs in, and
// wires up the net loads/driver cross-references. The in slice is retained.
func (d *Design) AddInst(name string, kind cell.Kind, in []NetID, out NetID, block int) InstID {
	if len(in) != kind.NumInputs() {
		panic(fmt.Sprintf("netlist: %s (%v) needs %d inputs, got %d", name, kind, kind.NumInputs(), len(in)))
	}
	id := InstID(len(d.Insts))
	d.Insts = append(d.Insts, Instance{
		ID: id, Name: name, Kind: kind, In: in, Out: out,
		Block: block, Domain: -1,
	})
	if d.Nets[out].Driver != NoInst || d.Nets[out].PI >= 0 {
		panic(fmt.Sprintf("netlist: net %s already driven", d.Nets[out].Name))
	}
	d.Nets[out].Driver = id
	for p, n := range in {
		if n != NoNet {
			d.Nets[n].Loads = append(d.Nets[n].Loads, Pin{Inst: id, Pin: p})
		}
	}
	if kind.IsSequential() {
		d.Flops = append(d.Flops, id)
	}
	d.invalidate()
	return id
}

// SetDomain assigns flop f to clock domain dom (index into Domains) and
// records its clock edge.
func (d *Design) SetDomain(f InstID, dom int, negEdge bool) {
	inst := &d.Insts[f]
	if !inst.IsFlop() {
		panic("netlist: SetDomain on combinational instance " + inst.Name)
	}
	inst.Domain = dom
	inst.NegEdge = negEdge
}

// Inst returns the instance with the given ID.
func (d *Design) Inst(id InstID) *Instance { return &d.Insts[id] }

// Net returns the net with the given ID.
func (d *Design) Net(id NetID) *Net { return &d.Nets[id] }

// NumInsts returns the instance count.
func (d *Design) NumInsts() int { return len(d.Insts) }

// NumNets returns the net count.
func (d *Design) NumNets() int { return len(d.Nets) }

// NumGates returns the number of combinational instances.
func (d *Design) NumGates() int { return len(d.Insts) - len(d.Flops) }

// LoadCap returns the total capacitance (fF) switched when the output of
// instance id toggles: the cell's intrinsic output cap, the net wire cap,
// and the input-pin caps of all fanout loads. This is the C_i of the
// paper's CAP/SCAP formulas.
func (d *Design) LoadCap(id InstID) float64 {
	inst := &d.Insts[id]
	n := &d.Nets[inst.Out]
	c := d.Lib.Cell(inst.Kind).OutputCap + n.WireCap
	for _, p := range n.Loads {
		c += d.Lib.Cell(d.Insts[p.Inst].Kind).InputCap
	}
	return c
}

// NetCap returns the capacitance switched when net n toggles regardless of
// driver type (used for primary-input nets, whose toggles are rare).
func (d *Design) NetCap(n NetID) float64 {
	net := &d.Nets[n]
	c := net.WireCap
	if net.Driver != NoInst {
		c += d.Lib.Cell(d.Insts[net.Driver].Kind).OutputCap
	}
	for _, p := range net.Loads {
		c += d.Lib.Cell(d.Insts[p.Inst].Kind).InputCap
	}
	return c
}

// BlockName returns the display name of block b ("B1".. by default).
func (d *Design) BlockName(b int) string {
	if b == NoBlock {
		return "TOP"
	}
	if b < len(d.BlockNames) {
		return d.BlockNames[b]
	}
	return fmt.Sprintf("B%d", b+1)
}

func (d *Design) invalidate() {
	d.topo = nil
	d.levels = nil
}
