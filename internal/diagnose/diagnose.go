// Package diagnose implements effect-cause fault diagnosis, the flow the
// paper prescribes for patterns that fail on silicon ("we prefer to apply
// this technique ... to debug any pattern which is identified to fail due
// to IR-drop effects"): given the tester's failing-flop log per pattern,
// candidate transition faults are ranked by how well their simulated
// failure signatures explain the observations. A genuine delay defect
// matches one fault's signature closely; IR-drop overkill matches none —
// which is exactly how the two are told apart before a lot is scrapped.
package diagnose

import (
	"fmt"
	"sort"

	"scap/internal/atpg"
	"scap/internal/fault"
	"scap/internal/faultsim"
	"scap/internal/logic"
)

// Observation is one pattern's tester response: the flops (design flop
// order) whose captured values mismatched expectation. An empty list means
// the pattern passed — passing patterns prune candidates too.
type Observation struct {
	Pattern      atpg.Pattern
	FailingFlops []int
}

// Candidate is one ranked explanation.
type Candidate struct {
	Fault int // index into the fault list
	// Matched / Predicted / Observed tally (pattern, flop) failure pairs.
	Matched, Predicted, Observed int
	// Score is the Tarmac-style ranking: matches minus mispredictions
	// minus unexplained observations.
	Score float64
}

// Options tunes the ranking.
type Options struct {
	Dom int
	// TopK bounds the returned candidate list (default 10).
	TopK int
	// MispredictWeight and MissWeight penalize predicted-but-not-observed
	// and observed-but-not-predicted failures (defaults 0.5 and 1.0).
	MispredictWeight, MissWeight float64
}

// Run ranks every fault of the list against the observations and returns
// the best TopK explanations, best first.
func Run(fs *faultsim.Sim, l *fault.List, obs []Observation, opts Options) ([]Candidate, error) {
	if len(obs) == 0 {
		return nil, fmt.Errorf("diagnose: no observations")
	}
	if opts.TopK <= 0 {
		opts.TopK = 10
	}
	if opts.MispredictWeight == 0 {
		opts.MispredictWeight = 0.5
	}
	if opts.MissWeight == 0 {
		opts.MissWeight = 1.0
	}
	d := l.D

	// Batch the observations (≤64 per batch) and accumulate per-fault
	// tallies across batches.
	type tally struct{ matched, predicted int }
	tallies := make(map[int]*tally)
	observedTotal := 0

	for base := 0; base < len(obs); base += 64 {
		hi := base + 64
		if hi > len(obs) {
			hi = len(obs)
		}
		chunk := obs[base:hi]
		v1 := make([]logic.Word, len(d.Flops))
		pis := make([]logic.Word, len(d.PIs))
		for s, ob := range chunk {
			for i, v := range ob.Pattern.V1 {
				v1[i] = v1[i].Set(uint(s), v)
			}
			for i, v := range ob.Pattern.PIs {
				pis[i] = pis[i].Set(uint(s), v)
			}
		}
		valid := uint64(1)<<uint(len(chunk)) - 1
		if len(chunk) == 64 {
			valid = ^uint64(0)
		}
		b := fs.GoodSim(v1, pis, opts.Dom, valid)

		// Observed failure masks per flop for this chunk.
		obsMask := map[int]uint64{}
		for s, ob := range chunk {
			observedTotal += len(ob.FailingFlops)
			for _, fi := range ob.FailingFlops {
				obsMask[fi] |= 1 << uint(s)
			}
		}

		for cf := range l.Faults {
			pred := fs.FailMasks(b, &l.Faults[cf])
			if len(pred) == 0 {
				continue
			}
			t := tallies[cf]
			if t == nil {
				t = &tally{}
				tallies[cf] = t
			}
			for flop, mask := range pred {
				t.predicted += popcount(mask)
				t.matched += popcount(mask & obsMask[flop])
			}
		}
	}

	cands := make([]Candidate, 0, len(tallies))
	for cf, t := range tallies {
		mispred := t.predicted - t.matched
		missed := observedTotal - t.matched
		cands = append(cands, Candidate{
			Fault: cf, Matched: t.matched, Predicted: t.predicted, Observed: observedTotal,
			Score: float64(t.matched) -
				opts.MispredictWeight*float64(mispred) -
				opts.MissWeight*float64(missed),
		})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Score != cands[b].Score {
			return cands[a].Score > cands[b].Score
		}
		return cands[a].Fault < cands[b].Fault
	})
	if len(cands) > opts.TopK {
		cands = cands[:opts.TopK]
	}
	return cands, nil
}

// Observe builds the tester response an actual defect would produce: it
// simulates the defect fault on each pattern and records the failing
// flops. It is the test-side oracle used in the examples and tests.
func Observe(fs *faultsim.Sim, l *fault.List, defect int, pats []atpg.Pattern, dom int) ([]Observation, error) {
	d := l.D
	var out []Observation
	for base := 0; base < len(pats); base += 64 {
		hi := base + 64
		if hi > len(pats) {
			hi = len(pats)
		}
		chunk := pats[base:hi]
		v1 := make([]logic.Word, len(d.Flops))
		pis := make([]logic.Word, len(d.PIs))
		for s := range chunk {
			for i, v := range chunk[s].V1 {
				v1[i] = v1[i].Set(uint(s), v)
			}
			for i, v := range chunk[s].PIs {
				pis[i] = pis[i].Set(uint(s), v)
			}
		}
		valid := uint64(1)<<uint(len(chunk)) - 1
		if len(chunk) == 64 {
			valid = ^uint64(0)
		}
		b := fs.GoodSim(v1, pis, dom, valid)
		masks := fs.FailMasks(b, &l.Faults[defect])
		for s := range chunk {
			ob := Observation{Pattern: chunk[s]}
			for flop, m := range masks {
				if m&(1<<uint(s)) != 0 {
					ob.FailingFlops = append(ob.FailingFlops, flop)
				}
			}
			sort.Ints(ob.FailingFlops)
			out = append(out, ob)
		}
	}
	return out, nil
}

func popcount(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}
