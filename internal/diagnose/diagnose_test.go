package diagnose

import (
	"testing"

	"scap/internal/atpg"
	"scap/internal/fault"
	"scap/internal/faultsim"
	"scap/internal/netlist"
	"scap/internal/scan"
	"scap/internal/sim"
	"scap/internal/soc"
)

type rig struct {
	d    *netlist.Design
	fs   *faultsim.Sim
	l    *fault.List
	pats []atpg.Pattern
}

func newRig(t *testing.T) *rig {
	t.Helper()
	d, _, err := soc.Generate(soc.DefaultConfig(96))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(d, scan.Config{NumChains: 16})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := faultsim.New(s)
	if err != nil {
		t.Fatal(err)
	}
	l := fault.Universe(d)
	res, err := atpg.Run(fs, l, sc, atpg.Options{Dom: 0, Fill: atpg.FillRandom, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Fresh status list for diagnosis (the run above marked detections).
	return &rig{d: d, fs: fs, l: fault.Universe(d), pats: res.Patterns}
}

func TestDiagnoseRecoversInjectedDefect(t *testing.T) {
	r := newRig(t)
	recovered := 0
	tried := 0
	for _, defect := range []int{40, 200, 900, 1500} {
		if defect >= len(r.l.Faults) {
			continue
		}
		obs, err := Observe(r.fs, r.l, defect, r.pats, 0)
		if err != nil {
			t.Fatal(err)
		}
		fails := 0
		for _, ob := range obs {
			fails += len(ob.FailingFlops)
		}
		if fails == 0 {
			continue // defect never excited by this pattern set
		}
		tried++
		cands, err := Run(r.fs, r.l, obs, Options{Dom: 0, TopK: 5})
		if err != nil {
			t.Fatal(err)
		}
		if len(cands) == 0 {
			t.Fatalf("defect %d: no candidates", defect)
		}
		// The injected fault must rank first (ties with equivalents allowed:
		// same score).
		top := cands[0]
		found := false
		for _, c := range cands {
			if c.Score < top.Score {
				break
			}
			if c.Fault == defect {
				found = true
			}
		}
		if found {
			recovered++
		} else {
			t.Logf("defect %d (%s) not in top tie; top was %d (%s, score %.1f)",
				defect, r.l.String(defect), top.Fault, r.l.String(top.Fault), top.Score)
		}
	}
	if tried == 0 {
		t.Skip("no injected defect was excited")
	}
	if recovered < tried {
		t.Fatalf("recovered %d of %d injected defects", recovered, tried)
	}
}

func TestDiagnosePerfectScoreForExactMatch(t *testing.T) {
	r := newRig(t)
	defect, total := -1, 0
	var obs []Observation
	for cand := 100; cand < len(r.l.Faults) && total == 0; cand += 111 {
		o, err := Observe(r.fs, r.l, cand, r.pats, 0)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, ob := range o {
			n += len(ob.FailingFlops)
		}
		if n > 0 {
			defect, total, obs = cand, n, o
		}
	}
	if total == 0 {
		t.Skip("no excitable defect found")
	}
	cands, err := Run(r.fs, r.l, obs, Options{Dom: 0, TopK: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cands {
		if c.Fault == defect {
			if c.Matched != c.Predicted || c.Matched != c.Observed {
				t.Fatalf("true defect signature not exact: %+v", c)
			}
			if c.Score != float64(total) {
				t.Fatalf("true defect score %v, want %v", c.Score, float64(total))
			}
			return
		}
	}
	t.Fatal("true defect not in top 3")
}

func TestDiagnoseOverkillMatchesNothingWell(t *testing.T) {
	// IR-drop overkill produces failures no single fault explains: feed a
	// scattered synthetic failure log and expect the best score to stay
	// far below a clean signature match.
	r := newRig(t)
	var obs []Observation
	for i := 0; i < 10 && i < len(r.pats); i++ {
		ob := Observation{Pattern: r.pats[i]}
		for f := 0; f < len(r.d.Flops); f += 37 + i {
			ob.FailingFlops = append(ob.FailingFlops, f)
		}
		obs = append(obs, ob)
	}
	cands, err := Run(r.fs, r.l, obs, Options{Dom: 0, TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) > 0 {
		total := 0
		for _, ob := range obs {
			total += len(ob.FailingFlops)
		}
		if cands[0].Matched >= total/2 {
			t.Fatalf("scattered overkill matched suspiciously well: %+v of %d", cands[0], total)
		}
	}
}

func TestRunValidation(t *testing.T) {
	r := newRig(t)
	if _, err := Run(r.fs, r.l, nil, Options{Dom: 0}); err == nil {
		t.Fatal("empty observations accepted")
	}
}
