package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestScalarNot(t *testing.T) {
	cases := []struct{ in, want V }{
		{Zero, One}, {One, Zero}, {X, X},
	}
	for _, c := range cases {
		if got := c.in.Not(); got != c.want {
			t.Errorf("Not(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestScalarAndTruthTable(t *testing.T) {
	want := map[[2]V]V{
		{Zero, Zero}: Zero, {Zero, One}: Zero, {Zero, X}: Zero,
		{One, Zero}: Zero, {One, One}: One, {One, X}: X,
		{X, Zero}: Zero, {X, One}: X, {X, X}: X,
	}
	for in, w := range want {
		if got := in[0].And(in[1]); got != w {
			t.Errorf("And(%v,%v) = %v, want %v", in[0], in[1], got, w)
		}
	}
}

func TestScalarOrTruthTable(t *testing.T) {
	want := map[[2]V]V{
		{Zero, Zero}: Zero, {Zero, One}: One, {Zero, X}: X,
		{One, Zero}: One, {One, One}: One, {One, X}: One,
		{X, Zero}: X, {X, One}: One, {X, X}: X,
	}
	for in, w := range want {
		if got := in[0].Or(in[1]); got != w {
			t.Errorf("Or(%v,%v) = %v, want %v", in[0], in[1], got, w)
		}
	}
}

func TestScalarXorTruthTable(t *testing.T) {
	want := map[[2]V]V{
		{Zero, Zero}: Zero, {Zero, One}: One, {Zero, X}: X,
		{One, Zero}: One, {One, One}: Zero, {One, X}: X,
		{X, Zero}: X, {X, One}: X, {X, X}: X,
	}
	for in, w := range want {
		if got := in[0].Xor(in[1]); got != w {
			t.Errorf("Xor(%v,%v) = %v, want %v", in[0], in[1], got, w)
		}
	}
}

func TestScalarString(t *testing.T) {
	if Zero.String() != "0" || One.String() != "1" || X.String() != "X" {
		t.Fatal("unexpected String values")
	}
	if !Zero.Valid() || !One.Valid() || !X.Valid() || V(7).Valid() {
		t.Fatal("Valid misclassifies")
	}
	if V(9).String() == "" {
		t.Fatal("out-of-range String should not be empty")
	}
}

func TestFromBool(t *testing.T) {
	if FromBool(true) != One || FromBool(false) != Zero {
		t.Fatal("FromBool wrong")
	}
}

func TestWordGetSet(t *testing.T) {
	w := AllX
	w = w.Set(3, One).Set(17, Zero).Set(63, One)
	if w.Get(3) != One || w.Get(17) != Zero || w.Get(63) != One {
		t.Fatalf("Get after Set mismatch: %v", w)
	}
	if w.Get(0) != X || w.Get(62) != X {
		t.Fatal("untouched slots should be X")
	}
	// Overwrite a slot.
	w = w.Set(3, Zero)
	if w.Get(3) != Zero {
		t.Fatal("overwrite failed")
	}
	if !w.WellFormed() {
		t.Fatal("Set produced ill-formed word")
	}
}

func TestSplat(t *testing.T) {
	for _, v := range []V{Zero, One, X} {
		w := Splat(v)
		for i := uint(0); i < 64; i++ {
			if w.Get(i) != v {
				t.Fatalf("Splat(%v) slot %d = %v", v, i, w.Get(i))
			}
		}
	}
}

// randomWord returns a well-formed word with a random mix of 0/1/X slots.
func randomWord(r *rand.Rand) Word {
	known := r.Uint64()
	ones := r.Uint64() & known
	return Word{Zero: known &^ ones, One: ones}
}

// TestWordScalarAgreement cross-checks every parallel operation against the
// scalar truth tables on random words (property-based).
func TestWordScalarAgreement(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		a, b := randomWord(r), randomWord(r)
		and, or, xor, not := a.And(b), a.Or(b), a.Xor(b), a.Not()
		for _, w := range []Word{and, or, xor, not} {
			if !w.WellFormed() {
				t.Fatalf("ill-formed result %v", w)
			}
		}
		for i := uint(0); i < 64; i++ {
			av, bv := a.Get(i), b.Get(i)
			if got, want := and.Get(i), av.And(bv); got != want {
				t.Fatalf("And slot %d: %v&%v=%v want %v", i, av, bv, got, want)
			}
			if got, want := or.Get(i), av.Or(bv); got != want {
				t.Fatalf("Or slot %d: %v|%v=%v want %v", i, av, bv, got, want)
			}
			if got, want := xor.Get(i), av.Xor(bv); got != want {
				t.Fatalf("Xor slot %d: %v^%v=%v want %v", i, av, bv, got, want)
			}
			if got, want := not.Get(i), av.Not(); got != want {
				t.Fatalf("Not slot %d: !%v=%v want %v", i, av, got, want)
			}
		}
	}
}

func TestWordDeMorganProperty(t *testing.T) {
	f := func(az, ao, bz, bo uint64) bool {
		a := Word{Zero: az &^ ao, One: ao}
		b := Word{Zero: bz &^ bo, One: bo}
		lhs := a.And(b).Not()
		rhs := a.Not().Or(b.Not())
		return lhs == rhs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordDoubleNegationProperty(t *testing.T) {
	f := func(z, o uint64) bool {
		a := Word{Zero: z &^ o, One: o}
		return a.Not().Not() == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWordXorSelfIsZeroWhereKnown(t *testing.T) {
	f := func(z, o uint64) bool {
		a := Word{Zero: z &^ o, One: o}
		x := a.Xor(a)
		// Known slots must become 0; X slots stay X.
		return x.One == 0 && x.Zero == a.Known()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDiff(t *testing.T) {
	a := AllX.Set(0, One).Set(1, Zero).Set(2, One)
	b := AllX.Set(0, Zero).Set(1, Zero).Set(3, One)
	if d := a.Diff(b); d != 1 {
		t.Fatalf("Diff = %b, want only slot 0", d)
	}
	if !a.Eq(a) || a.Eq(b) {
		t.Fatal("Eq wrong")
	}
}

func TestSelect(t *testing.T) {
	a, b := Splat(Zero), Splat(One)
	m := uint64(0b1010)
	s := Select(m, a, b)
	if s.Get(0) != Zero || s.Get(1) != One || s.Get(2) != Zero || s.Get(3) != One {
		t.Fatalf("Select mixed wrong: %v", s)
	}
	if !s.WellFormed() {
		t.Fatal("Select ill-formed")
	}
}

func TestWordString(t *testing.T) {
	w := AllX.Set(0, One).Set(1, Zero)
	s := w.String()
	if len(s) != 64 || s[0] != '1' || s[1] != '0' || s[2] != 'X' {
		t.Fatalf("String = %q", s)
	}
}

func TestKnownMask(t *testing.T) {
	w := AllX.Set(5, One).Set(9, Zero)
	want := uint64(1<<5 | 1<<9)
	if w.Known() != want {
		t.Fatalf("Known = %b want %b", w.Known(), want)
	}
}

// TestPackSlotsRoundTrip: the transpose must agree with the slot-by-slot
// Word.Set construction it replaces, for random vectors and every count.
func TestPackSlotsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for _, count := range []int{1, 2, 7, 63, 64} {
		const n = 37
		vecs := make([][]V, count)
		for s := range vecs {
			vecs[s] = make([]V, n)
			for i := range vecs[s] {
				vecs[s][i] = V(r.Intn(3))
			}
		}
		want := make([]Word, n)
		for s := range vecs {
			for i, v := range vecs[s] {
				want[i] = want[i].Set(uint(s), v)
			}
		}
		got := PackSlots(nil, vecs)
		if len(got) != n {
			t.Fatalf("count %d: length %d want %d", count, len(got), n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("count %d word %d: %v want %v", count, i, got[i], want[i])
			}
			if !got[i].WellFormed() {
				t.Fatalf("count %d word %d ill-formed", count, i)
			}
			for s := count; s < 64; s++ {
				if got[i].Get(uint(s)) != X {
					t.Fatalf("count %d word %d: invalid slot %d not X", count, i, s)
				}
			}
		}
	}
}

// TestPackSlotsReusesBuffer: a large-enough dst must be reused (no stale
// slots survive because every word is rewritten) and resized down.
func TestPackSlotsReusesBuffer(t *testing.T) {
	buf := make([]Word, 10)
	for i := range buf {
		buf[i] = AllOne
	}
	vecs := [][]V{{Zero, One, X}}
	got := PackSlots(buf, vecs)
	if len(got) != 3 || &got[0] != &buf[0] {
		t.Fatalf("buffer not reused: len %d", len(got))
	}
	if got[0].Get(0) != Zero || got[1].Get(0) != One || got[2].Get(0) != X {
		t.Fatalf("values wrong: %v %v %v", got[0], got[1], got[2])
	}
	if got[0].Get(1) != X {
		t.Fatal("stale slot leaked from reused buffer")
	}
	if out := PackSlots(buf, nil); len(out) != 0 {
		t.Fatalf("empty input gave %d words", len(out))
	}
}

func TestValidMask(t *testing.T) {
	cases := []struct {
		n    int
		want uint64
	}{{0, 0}, {1, 1}, {3, 0b111}, {63, 1<<63 - 1}, {64, ^uint64(0)}, {100, ^uint64(0)}, {-1, 0}}
	for _, c := range cases {
		if got := ValidMask(c.n); got != c.want {
			t.Fatalf("ValidMask(%d) = %b want %b", c.n, got, c.want)
		}
	}
}

func TestClearSlots(t *testing.T) {
	w := Splat(One).Set(3, Zero).Set(7, X)
	got := w.ClearSlots(1<<0 | 1<<3 | 1<<9)
	for i := uint(0); i < 64; i++ {
		want := w.Get(i)
		if i == 0 || i == 3 || i == 9 {
			want = X
		}
		if got.Get(i) != want {
			t.Fatalf("slot %d: got %v want %v", i, got.Get(i), want)
		}
	}
	if !got.WellFormed() {
		t.Fatal("ClearSlots produced an ill-formed word")
	}
}

func TestSetSlots(t *testing.T) {
	for _, v := range []V{Zero, One, X} {
		w := Splat(Zero).Set(5, One).SetSlots(1<<2|1<<5|1<<63, v)
		for i := uint(0); i < 64; i++ {
			want := Zero
			if i == 5 {
				want = One
			}
			if i == 2 || i == 5 || i == 63 {
				want = v
			}
			if w.Get(i) != want {
				t.Fatalf("v=%v slot %d: got %v want %v", v, i, w.Get(i), want)
			}
		}
		if !w.WellFormed() {
			t.Fatalf("SetSlots(%v) produced an ill-formed word", v)
		}
	}
}
