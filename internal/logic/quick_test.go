package logic

import (
	"testing"
	"testing/quick"
)

// mk builds a well-formed word from two arbitrary planes.
func mk(z, o uint64) Word { return Word{Zero: z &^ o, One: o} }

func TestQuickAndCommutative(t *testing.T) {
	f := func(az, ao, bz, bo uint64) bool {
		a, b := mk(az, ao), mk(bz, bo)
		return a.And(b) == b.And(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOrCommutative(t *testing.T) {
	f := func(az, ao, bz, bo uint64) bool {
		a, b := mk(az, ao), mk(bz, bo)
		return a.Or(b) == b.Or(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndAssociative(t *testing.T) {
	f := func(az, ao, bz, bo, cz, co uint64) bool {
		a, b, c := mk(az, ao), mk(bz, bo), mk(cz, co)
		return a.And(b).And(c) == a.And(b.And(c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickXorCommutativeAndWellFormed(t *testing.T) {
	f := func(az, ao, bz, bo uint64) bool {
		a, b := mk(az, ao), mk(bz, bo)
		x := a.Xor(b)
		return x == b.Xor(a) && x.WellFormed()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIdentityAndDominance(t *testing.T) {
	f := func(az, ao uint64) bool {
		a := mk(az, ao)
		return a.And(AllOne) == a && // 1 is the AND identity
			a.Or(AllZero) == a && // 0 is the OR identity
			a.And(AllZero) == AllZero && // 0 dominates AND
			a.Or(AllOne) == AllOne // 1 dominates OR
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAbsorption(t *testing.T) {
	// Absorption holds for defined slots; X slots may stay X on both
	// sides, so compare only where the result is defined on both sides.
	f := func(az, ao, bz, bo uint64) bool {
		a, b := mk(az, ao), mk(bz, bo)
		lhs := a.Or(a.And(b))
		// Where a is defined, a | (a & b) must equal a.
		def := a.Known() & lhs.Known()
		return lhs.One&def == a.One&def && lhs.Zero&def == a.Zero&def
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSelectPartition(t *testing.T) {
	f := func(az, ao, bz, bo, m uint64) bool {
		a, b := mk(az, ao), mk(bz, bo)
		s := Select(m, a, b)
		for i := uint(0); i < 64; i++ {
			want := a.Get(i)
			if m&(1<<i) != 0 {
				want = b.Get(i)
			}
			if s.Get(i) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDiffSymmetricAndIrreflexive(t *testing.T) {
	f := func(az, ao, bz, bo uint64) bool {
		a, b := mk(az, ao), mk(bz, bo)
		return a.Diff(b) == b.Diff(a) && a.Diff(a) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
