// Package logic provides the logic-value domain used throughout the
// simulator and ATPG: a scalar three-valued type (0, 1, X) and a 64-way
// bit-parallel representation used for parallel-pattern simulation.
//
// The parallel representation is the classical dual-rail encoding: a Word
// carries two uint64 planes, Zero and One. Pattern slot i holds logic 0 when
// bit i of Zero is set, logic 1 when bit i of One is set, and X when neither
// is set. A slot never has both bits set; all operations preserve that
// invariant when given well-formed inputs.
package logic

import "fmt"

// V is a scalar three-valued logic value.
type V uint8

// The three scalar logic values. X models an unknown or don't-care value.
const (
	Zero V = iota
	One
	X
)

// String returns "0", "1" or "X".
func (v V) String() string {
	switch v {
	case Zero:
		return "0"
	case One:
		return "1"
	case X:
		return "X"
	default:
		return fmt.Sprintf("V(%d)", uint8(v))
	}
}

// Valid reports whether v is one of the three defined logic values.
func (v V) Valid() bool { return v <= X }

// Not returns the three-valued complement of v.
func (v V) Not() V {
	switch v {
	case Zero:
		return One
	case One:
		return Zero
	default:
		return X
	}
}

// And returns the three-valued conjunction of v and w.
func (v V) And(w V) V {
	if v == Zero || w == Zero {
		return Zero
	}
	if v == One && w == One {
		return One
	}
	return X
}

// Or returns the three-valued disjunction of v and w.
func (v V) Or(w V) V {
	if v == One || w == One {
		return One
	}
	if v == Zero && w == Zero {
		return Zero
	}
	return X
}

// Xor returns the three-valued exclusive-or of v and w.
func (v V) Xor(w V) V {
	if v == X || w == X {
		return X
	}
	if v == w {
		return Zero
	}
	return One
}

// FromBool converts a bool to One (true) or Zero (false).
func FromBool(b bool) V {
	if b {
		return One
	}
	return Zero
}

// Word is a 64-way parallel three-valued logic value in dual-rail encoding.
// Slot i is 0 when Zero has bit i set, 1 when One has bit i set, and X when
// neither plane has bit i set.
type Word struct {
	Zero uint64
	One  uint64
}

// AllX is the Word with every slot unknown.
var AllX = Word{}

// AllZero is the Word with every slot at logic 0.
var AllZero = Word{Zero: ^uint64(0)}

// AllOne is the Word with every slot at logic 1.
var AllOne = Word{One: ^uint64(0)}

// Splat returns a Word with every slot set to the scalar v.
func Splat(v V) Word {
	switch v {
	case Zero:
		return AllZero
	case One:
		return AllOne
	default:
		return AllX
	}
}

// Get returns the scalar value in slot i (0 <= i < 64).
func (w Word) Get(i uint) V {
	m := uint64(1) << i
	switch {
	case w.One&m != 0:
		return One
	case w.Zero&m != 0:
		return Zero
	default:
		return X
	}
}

// Set returns a copy of w with slot i set to v.
func (w Word) Set(i uint, v V) Word {
	m := uint64(1) << i
	w.Zero &^= m
	w.One &^= m
	switch v {
	case Zero:
		w.Zero |= m
	case One:
		w.One |= m
	}
	return w
}

// Not returns the slot-wise three-valued complement.
func (w Word) Not() Word { return Word{Zero: w.One, One: w.Zero} }

// And returns the slot-wise three-valued conjunction.
func (w Word) And(x Word) Word {
	return Word{Zero: w.Zero | x.Zero, One: w.One & x.One}
}

// Or returns the slot-wise three-valued disjunction.
func (w Word) Or(x Word) Word {
	return Word{Zero: w.Zero & x.Zero, One: w.One | x.One}
}

// Xor returns the slot-wise three-valued exclusive-or. Slots where either
// operand is X yield X.
func (w Word) Xor(x Word) Word {
	known := (w.Zero | w.One) & (x.Zero | x.One)
	diff := (w.Zero & x.One) | (w.One & x.Zero)
	return Word{Zero: known &^ diff, One: known & diff}
}

// Known returns a mask of the slots that hold a defined (non-X) value.
func (w Word) Known() uint64 { return w.Zero | w.One }

// Eq reports whether the two words are identical in every slot.
func (w Word) Eq(x Word) bool { return w == x }

// Diff returns a mask of slots where w and x hold different *defined*
// values (one is 0 and the other is 1). Slots where either side is X are
// never reported as different.
func (w Word) Diff(x Word) uint64 {
	return (w.Zero & x.One) | (w.One & x.Zero)
}

// WellFormed reports whether no slot has both the Zero and One bit set.
func (w Word) WellFormed() bool { return w.Zero&w.One == 0 }

// PackSlots transposes up to 64 scalar vectors into their packed Word
// form: the result r satisfies r[i].Get(s) == vecs[s][i] for every vector
// s and position i; slots >= len(vecs) are X. All vectors must share the
// length of vecs[0]. dst is reused when its capacity suffices (each word
// is written exactly once, so stale contents never leak), making the
// transpose allocation-free in steady state — the batch builders in ATPG,
// static compaction, fault grading and the packed screen all sit on it.
func PackSlots(dst []Word, vecs [][]V) []Word {
	if len(vecs) == 0 {
		return dst[:0]
	}
	n := len(vecs[0])
	if cap(dst) < n {
		dst = make([]Word, n)
	} else {
		dst = dst[:n]
	}
	for i := 0; i < n; i++ {
		var z, o uint64
		for s := range vecs {
			switch vecs[s][i] {
			case Zero:
				z |= 1 << uint(s)
			case One:
				o |= 1 << uint(s)
			}
		}
		dst[i] = Word{Zero: z, One: o}
	}
	return dst
}

// ValidMask returns the slot mask covering the first n of 64 slots — the
// Valid mask of a batch carrying n packed patterns.
func ValidMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	if n <= 0 {
		return 0
	}
	return uint64(1)<<uint(n) - 1
}

// ClearSlots returns w with every masked slot forced to X. The packed
// PODEM engine uses it to erase undone decisions from a speculative slot
// while the other slots keep their committed values.
func (w Word) ClearSlots(mask uint64) Word {
	return Word{Zero: w.Zero &^ mask, One: w.One &^ mask}
}

// SetSlots returns w with every masked slot forced to the scalar v.
func (w Word) SetSlots(mask uint64, v V) Word {
	w = w.ClearSlots(mask)
	switch v {
	case Zero:
		w.Zero |= mask
	case One:
		w.One |= mask
	}
	return w
}

// Select returns a Word that takes slots from a where mask bits are 0 and
// from b where mask bits are 1.
func Select(mask uint64, a, b Word) Word {
	return Word{
		Zero: a.Zero&^mask | b.Zero&mask,
		One:  a.One&^mask | b.One&mask,
	}
}

// String renders the word as 64 characters, slot 0 first.
func (w Word) String() string {
	buf := make([]byte, 64)
	for i := uint(0); i < 64; i++ {
		buf[i] = w.Get(i).String()[0]
	}
	return string(buf)
}
