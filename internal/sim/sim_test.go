package sim

import (
	"math/rand"
	"testing"

	"scap/internal/cell"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/parasitic"
	"scap/internal/place"
	"scap/internal/sdf"
	"scap/internal/soc"
)

// chain builds: f1.Q -> INV a -> INV b -> INV c -> f2.D, PO on c.
func chain(t *testing.T) (*netlist.Design, *Simulator) {
	t.Helper()
	d := netlist.New("chain", cell.New180nm())
	d.NumBlocks = 1
	d.Domains = []netlist.DomainInfo{{Name: "clk", FreqMHz: 50, PeriodNs: 20}}
	q1 := d.AddNet("q1")
	q2 := d.AddNet("q2")
	a := d.AddNet("a")
	b := d.AddNet("b")
	c := d.AddNet("c")
	d.AddInst("i1", cell.Inv, []netlist.NetID{q1}, a, 0)
	d.AddInst("i2", cell.Inv, []netlist.NetID{a}, b, 0)
	d.AddInst("i3", cell.Inv, []netlist.NetID{b}, c, 0)
	f1 := d.AddInst("f1", cell.DFF, []netlist.NetID{c}, q1, 0)
	f2 := d.AddInst("f2", cell.DFF, []netlist.NetID{c}, q2, 0)
	d.SetDomain(f1, 0, false)
	d.SetDomain(f2, 0, false)
	d.MarkPO(c)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, s
}

func TestPropagateChain(t *testing.T) {
	d, s := chain(t)
	nets := s.NewNets()
	s.ApplyState(nets, []logic.V{logic.Zero, logic.X})
	s.Propagate(nets)
	var a, b, c logic.V
	for i := range d.Nets {
		switch d.Nets[i].Name {
		case "a":
			a = nets[i]
		case "b":
			b = nets[i]
		case "c":
			c = nets[i]
		}
	}
	if a != logic.One || b != logic.Zero || c != logic.One {
		t.Fatalf("chain values a=%v b=%v c=%v", a, b, c)
	}
	st := s.CaptureState(nets)
	if st[0] != logic.One || st[1] != logic.One {
		t.Fatalf("captured %v", st)
	}
}

func TestCaptureHonorsScanEnable(t *testing.T) {
	d := netlist.New("scan", cell.New180nm())
	d.NumBlocks = 1
	d.Domains = []netlist.DomainInfo{{Name: "clk", FreqMHz: 50, PeriodNs: 20}}
	se := d.AddPI("se")
	si := d.AddPI("si")
	q := d.AddNet("q")
	dn := d.AddNet("d")
	d.AddInst("inv", cell.Inv, []netlist.NetID{q}, dn, 0)
	f := d.AddInst("f", cell.DFF, []netlist.NetID{dn}, q, 0)
	d.SetDomain(f, 0, false)
	d.ConvertToScan(f, si, se)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	nets := s.NewNets()
	s.ApplyState(nets, []logic.V{logic.Zero}) // Q=0 -> D=1
	// Functional mode: capture D.
	s.SetPIs(nets, []logic.V{logic.Zero, logic.Zero}) // se=0, si=0
	s.Propagate(nets)
	if st := s.CaptureState(nets); st[0] != logic.One {
		t.Fatalf("SE=0 captured %v, want D=1", st[0])
	}
	// Shift mode: capture SI.
	s.SetPIs(nets, []logic.V{logic.One, logic.Zero}) // se=1, si=0
	s.Propagate(nets)
	if st := s.CaptureState(nets); st[0] != logic.Zero {
		t.Fatalf("SE=1 captured %v, want SI=0", st[0])
	}
}

func socSim(t *testing.T) (*netlist.Design, *Simulator) {
	t.Helper()
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	return d, s
}

// TestParallelMatchesScalar is the key cross-check between the two
// zero-delay simulators on the full SOC.
func TestParallelMatchesScalar(t *testing.T) {
	d, s := socSim(t)
	r := rand.New(rand.NewSource(3))

	netsW := s.NewNetsW()
	piW := make([]logic.Word, len(d.PIs))
	stW := make([]logic.Word, len(d.Flops))
	for i := range piW {
		known := r.Uint64() | 0xffffffff // mix of defined and X slots
		ones := r.Uint64() & known
		piW[i] = logic.Word{Zero: known &^ ones, One: ones}
	}
	for i := range stW {
		known := ^uint64(0)
		ones := r.Uint64()
		stW[i] = logic.Word{Zero: known &^ ones, One: ones}
	}
	s.SetPIsW(netsW, piW)
	s.ApplyStateW(netsW, stW)
	s.PropagateW(netsW)
	capW := s.CaptureStateW(netsW)

	for slot := uint(0); slot < 64; slot += 13 {
		nets := s.NewNets()
		pis := make([]logic.V, len(d.PIs))
		st := make([]logic.V, len(d.Flops))
		for i := range pis {
			pis[i] = piW[i].Get(slot)
		}
		for i := range st {
			st[i] = stW[i].Get(slot)
		}
		s.SetPIs(nets, pis)
		s.ApplyState(nets, st)
		s.Propagate(nets)
		capS := s.CaptureState(nets)
		for i := range netsW {
			if netsW[i].Get(slot) != nets[i] {
				t.Fatalf("slot %d net %s: parallel %v scalar %v",
					slot, d.Nets[i].Name, netsW[i].Get(slot), nets[i])
			}
		}
		for i := range capS {
			if capW[i].Get(slot) != capS[i] {
				t.Fatalf("slot %d flop %d capture mismatch", slot, i)
			}
		}
	}
}

func delaysFor(t *testing.T, d *netlist.Design) *sdf.Delays {
	t.Helper()
	fp, err := place.Place(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parasitic.Extract(d, fp, parasitic.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	return sdf.Compute(d)
}

func TestTimingChainArrival(t *testing.T) {
	d, s := chain(t)
	dl := delaysFor(t, d)
	tm := NewTiming(s, dl, nil)
	// v1: q1=0 (a=1,b=0,c=1); launch q1 -> 1.
	v1 := []logic.V{logic.Zero, logic.One}
	v2 := []logic.V{logic.One, logic.One}
	res, err := tm.Launch(v1, v2, nil, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: q1 rises at 0; a falls after i1 fall delay; b rises; c falls.
	var i1, i2, i3 netlist.InstID
	for i := range d.Insts {
		switch d.Insts[i].Name {
		case "i1":
			i1 = netlist.InstID(i)
		case "i2":
			i2 = netlist.InstID(i)
		case "i3":
			i3 = netlist.InstID(i)
		}
	}
	want := dl.Fall[i1] + dl.Rise[i2] + dl.Fall[i3]
	if res.Toggles != 4 { // q1, a, b, c
		t.Fatalf("Toggles = %d, want 4", res.Toggles)
	}
	if !res.EndpointActive[0] || !res.EndpointActive[1] {
		t.Fatal("endpoints inactive")
	}
	if !approx(res.EndpointArrival[0], want) {
		t.Fatalf("endpoint arrival %v, want %v", res.EndpointArrival[0], want)
	}
	if !approx(res.STW, want) {
		t.Fatalf("STW %v, want %v", res.STW, want)
	}
}

func TestTimingGlitchPropagation(t *testing.T) {
	// f.Q -> a ; INV(a) -> b ; XOR(a,b) -> x -> f2.D.
	// A launch transition on a produces a glitch on x (two toggles).
	d := netlist.New("glitch", cell.New180nm())
	d.NumBlocks = 1
	d.Domains = []netlist.DomainInfo{{Name: "clk", FreqMHz: 50, PeriodNs: 20}}
	q := d.AddNet("q")
	q2 := d.AddNet("q2")
	b := d.AddNet("b")
	x := d.AddNet("x")
	d.AddInst("inv", cell.Inv, []netlist.NetID{q}, b, 0)
	d.AddInst("xor", cell.Xor2, []netlist.NetID{q, b}, x, 0)
	f1 := d.AddInst("f1", cell.DFF, []netlist.NetID{x}, q, 0)
	f2 := d.AddInst("f2", cell.DFF, []netlist.NetID{x}, q2, 0)
	d.SetDomain(f1, 0, false)
	d.SetDomain(f2, 0, false)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	s, err := New(d)
	if err != nil {
		t.Fatal(err)
	}
	dl := delaysFor(t, d)
	tm := NewTiming(s, dl, nil)
	tm.MinPulseNs = -1 // pure transport delay: glitches propagate
	res, err := tm.Launch([]logic.V{logic.Zero, logic.X}, []logic.V{logic.One, logic.X}, nil, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Toggles: q (1), b (1), x glitch (2) = 4.
	if res.Toggles != 4 {
		t.Fatalf("Toggles = %d, want 4 (glitch)", res.Toggles)
	}
	// x must settle back to its initial steady value (xor of complements = 1).
	if res.Nets[x] != logic.One {
		t.Fatalf("x settled to %v", res.Nets[x])
	}

	// With the inertial filter at its default, the same narrow pulse is
	// swallowed by the xor's own switching window when it is narrower than
	// the stage delay; the settled value must be unchanged either way.
	tmI := NewTiming(s, dl, nil)
	resI, err := tmI.Launch([]logic.V{logic.Zero, logic.X}, []logic.V{logic.One, logic.X}, nil, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resI.Toggles > res.Toggles {
		t.Fatalf("inertial filter increased toggles: %d > %d", resI.Toggles, res.Toggles)
	}
	if resI.Nets[x] != logic.One {
		t.Fatalf("inertial run settled x to %v", resI.Nets[x])
	}
}

// TestTimingSettlesToZeroDelayState: after all events drain, the timing
// simulator's net values must equal a zero-delay propagation of the launch
// state — transport-delay simulation converges to the steady state.
func TestTimingSettlesToZeroDelayState(t *testing.T) {
	d, s := socSim(t)
	dl := delaysFor(t, d)
	tm := NewTiming(s, dl, nil)
	r := rand.New(rand.NewSource(11))

	v1 := make([]logic.V, len(d.Flops))
	pis := make([]logic.V, len(d.PIs))
	for i := range v1 {
		v1[i] = logic.FromBool(r.Intn(2) == 1)
	}
	for i := range pis {
		pis[i] = logic.FromBool(r.Intn(2) == 1)
	}
	// LOC-style launch: v2 is the captured response of v1.
	nets := s.NewNets()
	s.SetPIs(nets, pis)
	s.ApplyState(nets, v1)
	s.Propagate(nets)
	v2 := s.CaptureState(nets)

	res, err := tm.Launch(v1, v2, pis, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Toggles == 0 {
		t.Fatal("no switching activity on random launch")
	}
	if res.Suppressed != 0 {
		t.Logf("suppressed %d events", res.Suppressed)
	}

	want := s.NewNets()
	s.SetPIs(want, pis)
	s.ApplyState(want, v2)
	s.Propagate(want)
	mismatch := 0
	for i := range want {
		if res.Nets[i] != want[i] {
			mismatch++
		}
	}
	if mismatch != 0 {
		t.Fatalf("%d nets did not settle to the zero-delay state", mismatch)
	}
	if res.STW <= 0 || res.STW > 20 {
		t.Fatalf("STW = %v ns, outside (0, 20]", res.STW)
	}
}

func TestTimingToggleCallbackAndCounts(t *testing.T) {
	d, s := chain(t)
	dl := delaysFor(t, d)
	tm := NewTiming(s, dl, nil)
	var got int
	res, err := tm.Launch([]logic.V{logic.Zero, logic.One}, []logic.V{logic.One, logic.One}, nil, 20,
		func(inst netlist.InstID, tt float64, rising bool) {
			got++
			if tt < 0 {
				t.Errorf("negative toggle time %v", tt)
			}
			_ = d.Insts[inst]
		})
	if err != nil {
		t.Fatal(err)
	}
	if got != res.Toggles {
		t.Fatalf("callback saw %d toggles, result says %d", got, res.Toggles)
	}
}

func TestTimingEventCapSuppresses(t *testing.T) {
	d, s := socSim(t)
	dl := delaysFor(t, d)
	tm := NewTiming(s, dl, nil)
	tm.MaxEventsPerNet = 1
	r := rand.New(rand.NewSource(2))
	v1 := make([]logic.V, len(d.Flops))
	pis := make([]logic.V, len(d.PIs))
	for i := range v1 {
		v1[i] = logic.FromBool(r.Intn(2) == 1)
	}
	for i := range pis {
		pis[i] = logic.FromBool(r.Intn(2) == 1)
	}
	nets := s.NewNets()
	s.SetPIs(nets, pis)
	s.ApplyState(nets, v1)
	s.Propagate(nets)
	v2 := s.CaptureState(nets)
	res, err := tm.Launch(v1, v2, pis, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Suppressed == 0 {
		t.Skip("no suppression triggered at this scale")
	}
}

func TestTimingInputValidation(t *testing.T) {
	d, s := chain(t)
	dl := delaysFor(t, d)
	tm := NewTiming(s, dl, nil)
	if _, err := tm.Launch([]logic.V{logic.Zero}, []logic.V{logic.One, logic.One}, nil, 20, nil); err == nil {
		t.Fatal("short v1 accepted")
	}
	if _, err := tm.Launch([]logic.V{logic.Zero, logic.One}, []logic.V{logic.One, logic.One},
		[]logic.V{logic.One}, 20, nil); err == nil {
		t.Fatal("wrong pi length accepted")
	}
	_ = d
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}
