package sim

import (
	"math/rand"
	"sync"
	"testing"

	"scap/internal/logic"
	"scap/internal/netlist"
)

// toggleRec is one callback observation; the equivalence tests compare
// the full stream, since power accounting is order-sensitive in float.
type toggleRec struct {
	inst   netlist.InstID
	t      float64
	rising bool
}

// launchCase is one randomized launch: a LOC-style (v1, v2, pis) triple.
type launchCase struct {
	v1, v2, pis []logic.V
}

// randomCases builds n launches that mimic the profiling workload: a
// random starting state, then each case flips only a few flops/PIs (the
// low-activity structure selective trace exploits), with occasional X
// launch values and occasional exact repeats (the cone-cache path).
func randomCases(d *netlist.Design, s *Simulator, n int, seed int64) []launchCase {
	r := rand.New(rand.NewSource(seed))
	v1 := make([]logic.V, len(d.Flops))
	pis := make([]logic.V, len(d.PIs))
	for i := range v1 {
		v1[i] = logic.FromBool(r.Intn(2) == 1)
	}
	for i := range pis {
		pis[i] = logic.FromBool(r.Intn(2) == 1)
	}
	cases := make([]launchCase, 0, n)
	for k := 0; k < n; k++ {
		if k > 0 && r.Intn(4) == 0 {
			// Exact repeat of the previous pattern.
			cases = append(cases, cases[k-1])
			continue
		}
		if k > 0 {
			prev := cases[k-1]
			copy(v1, prev.v1)
			copy(pis, prev.pis)
			for f := 0; f < 1+r.Intn(4); f++ {
				v1[r.Intn(len(v1))] ^= 1 // Zero <-> One
			}
			if len(pis) > 0 && r.Intn(2) == 0 {
				pis[r.Intn(len(pis))] ^= 1
			}
		}
		// LOC: v2 captures the settled response of v1.
		nets := s.NewNets()
		s.SetPIs(nets, pis)
		s.ApplyState(nets, v1)
		s.Propagate(nets)
		v2 := s.CaptureState(nets)
		if r.Intn(5) == 0 {
			v2[r.Intn(len(v2))] = logic.X
		}
		c := launchCase{
			v1:  append([]logic.V(nil), v1...),
			v2:  v2,
			pis: append([]logic.V(nil), pis...),
		}
		cases = append(cases, c)
	}
	return cases
}

// snapshotResult deep-copies a scratch-owned Result so it survives the
// next launch on the same scratch.
func snapshotResult(res *Result) *Result {
	out := *res
	out.EndpointArrival = append([]float64(nil), res.EndpointArrival...)
	out.EndpointActive = append([]bool(nil), res.EndpointActive...)
	out.Nets = append([]logic.V(nil), res.Nets...)
	return &out
}

// requireIdentical asserts bit-identical Results: every scalar, both
// endpoint arrays and the full settled net vector.
func requireIdentical(t *testing.T, tag string, got, want *Result) {
	t.Helper()
	if got.Toggles != want.Toggles || got.Suppressed != want.Suppressed {
		t.Fatalf("%s: toggles/suppressed %d/%d, want %d/%d",
			tag, got.Toggles, got.Suppressed, want.Toggles, want.Suppressed)
	}
	if got.FirstEvent != want.FirstEvent || got.LastEvent != want.LastEvent || got.STW != want.STW {
		t.Fatalf("%s: first/last/STW %v/%v/%v, want %v/%v/%v",
			tag, got.FirstEvent, got.LastEvent, got.STW,
			want.FirstEvent, want.LastEvent, want.STW)
	}
	for i := range want.EndpointArrival {
		if got.EndpointArrival[i] != want.EndpointArrival[i] ||
			got.EndpointActive[i] != want.EndpointActive[i] {
			t.Fatalf("%s: endpoint %d arrival %v/%v, want %v/%v",
				tag, i, got.EndpointArrival[i], got.EndpointActive[i],
				want.EndpointArrival[i], want.EndpointActive[i])
		}
	}
	for i := range want.Nets {
		if got.Nets[i] != want.Nets[i] {
			t.Fatalf("%s: net %d = %v, want %v", tag, i, got.Nets[i], want.Nets[i])
		}
	}
}

// TestLaunchIntoMatchesFreshLaunch is the equivalence property test:
// over a randomized low-activity pattern sequence, a single reused
// scratch must reproduce the fresh-allocation path bit-identically —
// Result fields, endpoint arrays, final nets AND the toggle-callback
// stream (order included, since downstream float accumulation is
// order-sensitive).
func TestLaunchIntoMatchesFreshLaunch(t *testing.T) {
	d, s := socSim(t)
	dl := delaysFor(t, d)
	tm := NewTiming(s, dl, nil)
	cases := randomCases(d, s, 40, 7)

	ls := NewLaunchScratch(s)
	var freshTog, reuseTog []toggleRec
	record := func(dst *[]toggleRec) ToggleFn {
		return func(inst netlist.InstID, tt float64, rising bool) {
			*dst = append(*dst, toggleRec{inst, tt, rising})
		}
	}
	for k, c := range cases {
		freshTog, reuseTog = freshTog[:0], reuseTog[:0]
		want, err := tm.Launch(c.v1, c.v2, c.pis, 20, record(&freshTog))
		if err != nil {
			t.Fatal(err)
		}
		got, err := tm.LaunchInto(ls, c.v1, c.v2, c.pis, 20, record(&reuseTog))
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "case", got, want)
		if len(freshTog) != len(reuseTog) {
			t.Fatalf("case %d: toggle stream %d vs %d", k, len(reuseTog), len(freshTog))
		}
		for i := range freshTog {
			if freshTog[i] != reuseTog[i] {
				t.Fatalf("case %d: toggle %d = %+v, want %+v", k, i, reuseTog[i], freshTog[i])
			}
		}
	}
}

// TestLaunchIntoWorkerEquivalence shards the same case list across
// several goroutine counts, each worker owning a private scratch, and
// requires bit-identical results for every partition — the parallel
// profiling pipeline's determinism contract. Run it under -race to
// prove scratches share nothing.
func TestLaunchIntoWorkerEquivalence(t *testing.T) {
	d, s := socSim(t)
	dl := delaysFor(t, d)
	tm := NewTiming(s, dl, nil)
	cases := randomCases(d, s, 24, 13)

	want := make([]*Result, len(cases))
	for i, c := range cases {
		res, err := tm.Launch(c.v1, c.v2, c.pis, 20, nil)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}

	for _, workers := range []int{1, 2, 4, 8} {
		got := make([]*Result, len(cases))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				ls := NewLaunchScratch(s)
				for i := w; i < len(cases); i += workers {
					c := cases[i]
					res, err := tm.LaunchInto(ls, c.v1, c.v2, c.pis, 20, nil)
					if err != nil {
						t.Error(err)
						return
					}
					got[i] = snapshotResult(res)
				}
			}(w)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatal("worker errors")
		}
		for i := range cases {
			requireIdentical(t, "workers", got[i], want[i])
		}
	}
}

// TestLaunchIntoSharedAcrossTimings re-simulates the same pattern with
// scaled delays on one shared scratch: the settled baseline is delay-
// independent, so the cone cache may serve a different Timing — and the
// results must still match that Timing's fresh path exactly.
func TestLaunchIntoSharedAcrossTimings(t *testing.T) {
	d, s := socSim(t)
	dl := delaysFor(t, d)
	scaled := dl.Clone()
	for i := range scaled.Rise {
		scaled.Rise[i] *= 1.25
		scaled.Fall[i] *= 1.25
	}
	nom := NewTiming(s, dl, nil)
	der := NewTiming(s, scaled, nil)
	c := randomCases(d, s, 1, 29)[0]

	ls := NewLaunchScratch(s)
	if _, err := nom.LaunchInto(ls, c.v1, c.v2, c.pis, 20, nil); err != nil {
		t.Fatal(err)
	}
	got, err := der.LaunchInto(ls, c.v1, c.v2, c.pis, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := der.Launch(c.v1, c.v2, c.pis, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "cross-timing", got, want)
}

// TestSettleBaselineMatchesPropagate checks the selective-trace settle
// against the full zero-delay oracle across a mutation chain, and that
// LaunchInto right after SettleBaseline (the LaunchStateInto pairing)
// still agrees with the fresh path.
func TestSettleBaselineMatchesPropagate(t *testing.T) {
	d, s := socSim(t)
	dl := delaysFor(t, d)
	tm := NewTiming(s, dl, nil)
	cases := randomCases(d, s, 20, 41)
	ls := NewLaunchScratch(s)
	for k, c := range cases {
		nets, err := ls.SettleBaseline(c.v1, c.pis)
		if err != nil {
			t.Fatal(err)
		}
		want := s.NewNets()
		s.SetPIs(want, c.pis)
		s.ApplyState(want, c.v1)
		s.Propagate(want)
		for i := range want {
			if nets[i] != want[i] {
				t.Fatalf("case %d: settled net %d = %v, oracle %v", k, i, nets[i], want[i])
			}
		}
		got, err := tm.LaunchInto(ls, c.v1, c.v2, c.pis, 20, nil)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := tm.Launch(c.v1, c.v2, c.pis, 20, nil)
		if err != nil {
			t.Fatal(err)
		}
		requireIdentical(t, "settle+launch", got, fresh)
	}
}

// TestFirstEventSentinel pins the -1 no-events sentinel: a quiet launch
// reports -1, while a genuine zero-skew transition at t=0 reports 0 —
// the ambiguity the old zero-initialized field could not express.
func TestFirstEventSentinel(t *testing.T) {
	d, s := chain(t)
	dl := delaysFor(t, d)
	tm := NewTiming(s, dl, nil)
	// v1 == v2: no launch edge, no events.
	quiet, err := tm.Launch([]logic.V{logic.Zero, logic.One}, []logic.V{logic.Zero, logic.One}, nil, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Toggles != 0 || quiet.FirstEvent != -1 {
		t.Fatalf("quiet launch: %d toggles, FirstEvent %v, want 0 and -1",
			quiet.Toggles, quiet.FirstEvent)
	}
	// Ideal (zero-skew) clock: the flop output transitions exactly at t=0.
	hot, err := tm.Launch([]logic.V{logic.Zero, logic.One}, []logic.V{logic.One, logic.One}, nil, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hot.Toggles == 0 || hot.FirstEvent != 0 {
		t.Fatalf("zero-skew launch: %d toggles, FirstEvent %v, want >0 and 0",
			hot.Toggles, hot.FirstEvent)
	}
	_ = d
}

// TestLaunchRejectsDegenerateConfig covers the input validation: a
// non-positive period and a sub-1 event cap must error out instead of
// silently simulating a degenerate horizon.
func TestLaunchRejectsDegenerateConfig(t *testing.T) {
	d, s := chain(t)
	dl := delaysFor(t, d)
	v1 := []logic.V{logic.Zero, logic.One}
	v2 := []logic.V{logic.One, logic.One}
	tm := NewTiming(s, dl, nil)
	for _, period := range []float64{0, -5} {
		if _, err := tm.Launch(v1, v2, nil, period, nil); err == nil {
			t.Fatalf("period %v accepted", period)
		}
	}
	tm.MaxEventsPerNet = 0
	if _, err := tm.Launch(v1, v2, nil, 20, nil); err == nil {
		t.Fatal("MaxEventsPerNet 0 accepted")
	}
	tm.MaxEventsPerNet = -3
	if _, err := tm.Launch(v1, v2, nil, 20, nil); err == nil {
		t.Fatal("negative MaxEventsPerNet accepted")
	}
	_ = d
}

// TestLaunchIntoRejectsForeignScratch: a scratch is bound to one
// Simulator's topology for life.
func TestLaunchIntoRejectsForeignScratch(t *testing.T) {
	d, s := chain(t)
	dl := delaysFor(t, d)
	tm := NewTiming(s, dl, nil)
	_, other := socSim(t)
	ls := NewLaunchScratch(other)
	_, err := tm.LaunchInto(ls, []logic.V{logic.Zero, logic.One}, []logic.V{logic.One, logic.One}, nil, 20, nil)
	if err == nil {
		t.Fatal("foreign scratch accepted")
	}
	_ = d
}
