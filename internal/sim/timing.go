package sim

import (
	"fmt"

	"scap/internal/cell"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/obs"
	"scap/internal/sdf"
)

// Event-loop observability: dispatched/suppressed counts and the queue
// high-water mark are tracked in launch-local variables and flushed
// once per Launch, so the event loop itself carries no atomic traffic.
var (
	cLaunches   = obs.NewCounter("sim.launches")
	cDispatched = obs.NewCounter("sim.events_dispatched")
	cSuppressed = obs.NewCounter("sim.events_suppressed")
	gQueueHWM   = obs.NewGauge("sim.queue_high_water")
)

// Clock supplies per-flop clock arrival times (ns after the clock-source
// edge). *clocktree.Tree implements it; internal/delayscale substitutes an
// IR-drop-derated version.
type Clock interface {
	Arrival(f netlist.InstID) float64
}

// ToggleFn receives one output transition during timing simulation: the
// driving instance, the transition time (ns after the launch clock-source
// edge) and the new value's polarity. This is the reproduction of the
// paper's PLI hook: power accounting happens in the callback with no VCD
// intermediary.
type ToggleFn func(inst netlist.InstID, t float64, rising bool)

// Timing is the event-driven gate-level timing simulator.
type Timing struct {
	sim    *Simulator
	delays *sdf.Delays
	tree   Clock // nil means an ideal (zero-skew) clock

	// MaxEventsPerNet guards against event explosion in glitchy
	// reconvergent logic; further transitions on a saturated net are
	// dropped and counted in Result.Suppressed.
	MaxEventsPerNet int

	// MinPulseNs floors the inertial filter: an output pulse narrower than
	// max(MinPulseNs, the driving gate's own switching delay) is swallowed
	// (classical inertial delay — a gate cannot produce a pulse shorter
	// than the time it takes to switch). Zero keeps only the per-gate
	// window; a negative value disables filtering (pure transport delay).
	MinPulseNs float64
}

// NewTiming builds a timing simulator from a combinational simulator, a
// delay table and an optional clock tree.
func NewTiming(s *Simulator, delays *sdf.Delays, tree Clock) *Timing {
	return &Timing{sim: s, delays: delays, tree: tree, MaxEventsPerNet: 128, MinPulseNs: 0.12}
}

// Clone returns an independent Timing with the same configuration. The
// underlying simulator, delay table and clock tree are immutable after
// construction and stay shared; Timing itself holds no scratch state
// between Launch calls (launch buffers live in the caller-owned
// LaunchScratch), so a clone is just a config copy. This is the
// per-worker constructor path of the parallel profiling pipeline —
// pair each clone with its own NewLaunchScratch.
func (tm *Timing) Clone() *Timing {
	c := *tm
	return &c
}

// Result summarizes one launch-to-capture timing simulation.
type Result struct {
	Toggles    int     // total output transitions observed
	Suppressed int     // transitions dropped by the per-net event cap
	FirstEvent float64 // time of the first transition (ns), -1 if none
	LastEvent  float64 // time of the last transition (ns), 0 if none

	// STW is the switching time frame window: the span during which all
	// transitions occur, measured from the launch clock edge to the last
	// transition (the paper's definition: the maximum path length affected
	// by the pattern determines this frame).
	STW float64

	// EndpointArrival[i] is the time of the last transition seen at the D
	// input of flop i (d.Flops order); EndpointActive[i] reports whether
	// the endpoint saw any transition at all. Non-active endpoints are the
	// paper's zero-delay endpoints in Figure 7.
	EndpointArrival []float64
	EndpointActive  []bool

	// Nets holds the final settled net values.
	Nets []logic.V
}

type event struct {
	t   float64
	seq int
	net netlist.NetID
	val logic.V
}

// eventQueue is a value-typed 4-ary min-heap ordered by (t, seq). A
// hand-rolled heap instead of container/heap: the interface{} Push/Pop
// of the standard library boxes every event onto the garbage-collected
// heap, one allocation per scheduled transition, which dominated the
// allocation profile of the timing hot loop. Arity 4 halves the tree
// depth of the binary heap, trading (cheap, cache-resident) sibling
// comparisons for (expensive) level-to-level moves. (t, seq) is a total
// order — seq is unique — so pop order, and with it every simulation
// result, is independent of the heap's internal layout.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}

// push appends e and sifts it up to its heap position.
func (q *eventQueue) push(e event) {
	h := append(*q, e)
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 4
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*q = h
}

// pop removes and returns the earliest event. The caller must check
// emptiness first.
func (q *eventQueue) pop() event {
	h := *q
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h = h[:n]
	*q = h
	for i := 0; ; {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if h.less(c, min) {
				min = c
			}
		}
		if !h.less(min, i) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// Launch runs one at-speed launch-to-capture cycle:
//
//   - the network is settled at the pre-launch state v1 (per-flop values,
//     d.Flops order) with constant primary inputs pis;
//   - at each flop's clock arrival time the flop output switches to its
//     launch value v2 (launch-off-capture: v2 is the captured response of
//     v1, but any v2 works — launch-off-shift passes the last-shift state);
//   - events propagate through the combinational logic with per-instance
//     rise/fall delays until the queue drains or the capture edge at
//     period ns has long passed.
//
// onToggle (optional) observes every output transition. The returned
// Result carries switching statistics, the STW and per-endpoint arrivals.
//
// Launch allocates a fresh scratch per call; hot loops should hold a
// per-worker LaunchScratch and call LaunchInto instead.
func (tm *Timing) Launch(v1, v2 []logic.V, pis []logic.V, period float64, onToggle ToggleFn) (*Result, error) {
	return tm.LaunchInto(nil, v1, v2, pis, period, onToggle)
}

// LaunchInto is the buffer-reusing form of Launch. A nil ls allocates a
// one-shot scratch (exactly Launch); otherwise ls must have been built
// for tm's simulator, and steady-state calls allocate nothing: the
// pre-launch settle touches only the fanout cone of flops/PIs that
// changed since the previous call (or nothing at all when the pattern
// repeats), and an undo log restores the baseline afterwards.
//
// The returned Result and its slices (Nets, EndpointArrival,
// EndpointActive) live inside ls and are only valid until the next
// LaunchInto on the same scratch — copy what must survive.
func (tm *Timing) LaunchInto(ls *LaunchScratch, v1, v2 []logic.V, pis []logic.V, period float64, onToggle ToggleFn) (*Result, error) {
	defer obs.TraceStart().End("sim", "launch")
	s := tm.sim
	d := s.d
	if period <= 0 {
		return nil, fmt.Errorf("sim: period %v ns: must be positive", period)
	}
	if tm.MaxEventsPerNet < 1 {
		return nil, fmt.Errorf("sim: MaxEventsPerNet %d: must be >= 1", tm.MaxEventsPerNet)
	}
	if len(v1) != len(d.Flops) || len(v2) != len(d.Flops) {
		return nil, fmt.Errorf("sim: state length %d/%d, want %d", len(v1), len(v2), len(d.Flops))
	}
	if len(pis) != len(d.PIs) {
		return nil, fmt.Errorf("sim: pi length %d, want %d", len(pis), len(d.PIs))
	}
	if ls == nil {
		ls = NewLaunchScratch(s)
	} else if ls.s != s {
		return nil, fmt.Errorf("sim: scratch bound to a different simulator")
	}
	if ls.launches > 0 {
		cScratchReuse.Add(1)
	}

	ls.settle(v1, pis)
	nets := ls.nets

	// Fresh event phase: the settled baseline guarantees projected ==
	// nets, eventsOn == 0, lastSched == 0, lastSeq == -1 everywhere (the
	// undo log restored them), and one gen bump empties the void and
	// undo sets.
	ls.gen++
	ls.seq = 0
	res := &ls.res
	res.Toggles, res.Suppressed = 0, 0
	res.FirstEvent, res.LastEvent, res.STW = -1, 0, 0
	for i := range res.EndpointArrival {
		res.EndpointArrival[i] = 0
		res.EndpointActive[i] = false
	}

	// Launch edge: flops whose state changes emit a Q transition at their
	// clock arrival time.
	for i, f := range d.Flops {
		if v1[i] == v2[i] || v2[i] == logic.X {
			continue
		}
		t := 0.0
		if tm.tree != nil {
			t = tm.tree.Arrival(f)
		}
		ls.pushEvent(tm, t, d.Insts[f].Out, v2[i], 0)
	}

	horizon := 4 * period // safety: glitch tails beyond this are abandoned
	dispatched, queueHWM := 0, len(ls.q)
	for len(ls.q) > 0 {
		if len(ls.q) > queueHWM {
			queueHWM = len(ls.q)
		}
		ev := ls.q.pop()
		dispatched++
		if ls.voidStamp[ev.seq] == ls.gen {
			continue
		}
		if ls.lastSeq[ev.net] == ev.seq {
			ls.lastSeq[ev.net] = -1 // no longer cancellable
		}
		if ev.t > horizon {
			res.Suppressed += len(ls.q) + 1
			break
		}
		old := nets[ev.net]
		if old == ev.val {
			continue
		}
		nets[ev.net] = ev.val

		// Account the transition against the driving instance.
		drv := d.Nets[ev.net].Driver
		if old != logic.X && ev.val != logic.X {
			res.Toggles++
			if res.FirstEvent < 0 || ev.t < res.FirstEvent {
				res.FirstEvent = ev.t
			}
			if ev.t > res.LastEvent {
				res.LastEvent = ev.t
			}
			if onToggle != nil && drv != netlist.NoInst {
				onToggle(drv, ev.t, ev.val == logic.One)
			}
		}

		for _, ld := range d.Nets[ev.net].Loads {
			if fs := s.flopSlot[ld.Inst]; fs >= 0 {
				if ld.Pin == 0 { // D input: endpoint observation
					res.EndpointArrival[fs] = ev.t
					res.EndpointActive[fs] = true
				}
				continue
			}
			inst := &d.Insts[ld.Inst]
			idx := uint32(0)
			for p, n := range inst.In {
				idx |= uint32(nets[n]) << (2 * uint(p))
			}
			newOut := cell.EvalPacked(inst.Kind, idx)
			if newOut == ls.projected[inst.Out] {
				continue
			}
			rise, fall := tm.delays.Of(inst.ID)
			dly := fall
			if newOut == logic.One {
				dly = rise
			}
			ls.pushEvent(tm, ev.t+dly, inst.Out, newOut, dly)
		}
	}

	res.STW = res.LastEvent
	copy(ls.resNets, nets)
	res.Nets = ls.resNets
	ls.restore()
	ls.launches++
	cLaunches.Add(1)
	cDispatched.Add(int64(dispatched))
	cSuppressed.Add(int64(res.Suppressed))
	gQueueHWM.Max(int64(queueHWM))
	hConeEvents.Observe(float64(dispatched))
	return res, nil
}
