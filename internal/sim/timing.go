package sim

import (
	"fmt"

	"scap/internal/cell"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/obs"
	"scap/internal/sdf"
)

// Event-loop observability: dispatched/suppressed counts and the queue
// high-water mark are tracked in launch-local variables and flushed
// once per Launch, so the event loop itself carries no atomic traffic.
var (
	cLaunches   = obs.NewCounter("sim.launches")
	cDispatched = obs.NewCounter("sim.events_dispatched")
	cSuppressed = obs.NewCounter("sim.events_suppressed")
	gQueueHWM   = obs.NewGauge("sim.queue_high_water")
)

// Clock supplies per-flop clock arrival times (ns after the clock-source
// edge). *clocktree.Tree implements it; internal/delayscale substitutes an
// IR-drop-derated version.
type Clock interface {
	Arrival(f netlist.InstID) float64
}

// ToggleFn receives one output transition during timing simulation: the
// driving instance, the transition time (ns after the launch clock-source
// edge) and the new value's polarity. This is the reproduction of the
// paper's PLI hook: power accounting happens in the callback with no VCD
// intermediary.
type ToggleFn func(inst netlist.InstID, t float64, rising bool)

// Timing is the event-driven gate-level timing simulator.
type Timing struct {
	sim    *Simulator
	delays *sdf.Delays
	tree   Clock // nil means an ideal (zero-skew) clock

	// MaxEventsPerNet guards against event explosion in glitchy
	// reconvergent logic; further transitions on a saturated net are
	// dropped and counted in Result.Suppressed.
	MaxEventsPerNet int

	// MinPulseNs floors the inertial filter: an output pulse narrower than
	// max(MinPulseNs, the driving gate's own switching delay) is swallowed
	// (classical inertial delay — a gate cannot produce a pulse shorter
	// than the time it takes to switch). Zero keeps only the per-gate
	// window; a negative value disables filtering (pure transport delay).
	MinPulseNs float64
}

// NewTiming builds a timing simulator from a combinational simulator, a
// delay table and an optional clock tree.
func NewTiming(s *Simulator, delays *sdf.Delays, tree Clock) *Timing {
	return &Timing{sim: s, delays: delays, tree: tree, MaxEventsPerNet: 128, MinPulseNs: 0.12}
}

// Clone returns an independent Timing with the same configuration. The
// underlying simulator, delay table and clock tree are immutable after
// construction and stay shared; Timing itself holds no scratch state
// between Launch calls (each Launch owns its event queue and net
// vectors), so a clone is just a config copy. This is the per-worker
// constructor path of the parallel profiling pipeline.
func (tm *Timing) Clone() *Timing {
	c := *tm
	return &c
}

// Result summarizes one launch-to-capture timing simulation.
type Result struct {
	Toggles    int     // total output transitions observed
	Suppressed int     // transitions dropped by the per-net event cap
	FirstEvent float64 // time of the first transition (ns), 0 if none
	LastEvent  float64 // time of the last transition (ns), 0 if none

	// STW is the switching time frame window: the span during which all
	// transitions occur, measured from the launch clock edge to the last
	// transition (the paper's definition: the maximum path length affected
	// by the pattern determines this frame).
	STW float64

	// EndpointArrival[i] is the time of the last transition seen at the D
	// input of flop i (d.Flops order); EndpointActive[i] reports whether
	// the endpoint saw any transition at all. Non-active endpoints are the
	// paper's zero-delay endpoints in Figure 7.
	EndpointArrival []float64
	EndpointActive  []bool

	// Nets holds the final settled net values.
	Nets []logic.V
}

type event struct {
	t   float64
	seq int
	net netlist.NetID
	val logic.V
}

// eventQueue is a value-typed binary min-heap ordered by (t, seq). A
// hand-rolled heap instead of container/heap: the interface{} Push/Pop
// of the standard library boxes every event onto the garbage-collected
// heap, one allocation per scheduled transition, which dominated the
// allocation profile of the timing hot loop. Values sift in place here.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}

// push appends e and sifts it up to its heap position.
func (q *eventQueue) push(e event) {
	*q = append(*q, e)
	h := *q
	for i := len(h) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// pop removes and returns the earliest event. The caller must check
// emptiness first.
func (q *eventQueue) pop() event {
	h := *q
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h = h[:n]
	*q = h
	for i := 0; ; {
		left := 2*i + 1
		if left >= n {
			break
		}
		min := left
		if right := left + 1; right < n && h.less(right, left) {
			min = right
		}
		if !h.less(min, i) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
	return top
}

// Launch runs one at-speed launch-to-capture cycle:
//
//   - the network is settled at the pre-launch state v1 (per-flop values,
//     d.Flops order) with constant primary inputs pis;
//   - at each flop's clock arrival time the flop output switches to its
//     launch value v2 (launch-off-capture: v2 is the captured response of
//     v1, but any v2 works — launch-off-shift passes the last-shift state);
//   - events propagate through the combinational logic with per-instance
//     rise/fall delays until the queue drains or the capture edge at
//     period ns has long passed.
//
// onToggle (optional) observes every output transition. The returned
// Result carries switching statistics, the STW and per-endpoint arrivals.
func (tm *Timing) Launch(v1, v2 []logic.V, pis []logic.V, period float64, onToggle ToggleFn) (*Result, error) {
	s := tm.sim
	d := s.d
	if len(v1) != len(d.Flops) || len(v2) != len(d.Flops) {
		return nil, fmt.Errorf("sim: state length %d/%d, want %d", len(v1), len(v2), len(d.Flops))
	}
	if len(pis) != len(d.PIs) {
		return nil, fmt.Errorf("sim: pi length %d, want %d", len(pis), len(d.PIs))
	}

	nets := s.NewNets()
	s.SetPIs(nets, pis)
	s.ApplyState(nets, v1)
	s.Propagate(nets)

	// projected[n] is the value net n will hold once all scheduled events
	// fire; it gates event creation so a gate output is only scheduled when
	// its eventual value actually changes.
	projected := make([]logic.V, len(nets))
	copy(projected, nets)
	eventsOn := make([]int, len(nets))
	// lastSched enforces per-net application order: with unequal rise/fall
	// delays a later-scheduled edge could otherwise overtake a pending one
	// and leave the net at a stale value. Clamping to the previous
	// scheduled time models the narrow pulse being swallowed.
	lastSched := make([]float64, len(nets))
	// Inertial-filter state: the seq of the still-pending last event per
	// net (-1 when none) and the projected value before it.
	lastSeq := make([]int, len(nets))
	prevProj := make([]logic.V, len(nets))
	for i := range lastSeq {
		lastSeq[i] = -1
	}
	voided := map[int]bool{}

	res := &Result{
		EndpointArrival: make([]float64, len(d.Flops)),
		EndpointActive:  make([]bool, len(d.Flops)),
	}

	var q eventQueue
	seq := 0
	// push schedules net n to take value v at time t; width is the
	// driving stage's inertial window. The caller must have verified v
	// differs from projected[n]; push updates projected[n].
	push := func(t float64, n netlist.NetID, v logic.V, width float64) {
		if eventsOn[n] >= tm.MaxEventsPerNet {
			res.Suppressed++
			return
		}
		if t < lastSched[n] {
			t = lastSched[n]
		}
		if width < tm.MinPulseNs {
			width = tm.MinPulseNs
		}
		// Inertial filter: returning to the pre-pulse value within the
		// stage's switching window swallows the pulse.
		if tm.MinPulseNs >= 0 && lastSeq[n] >= 0 && v == prevProj[n] &&
			t-lastSched[n] < width {
			voided[lastSeq[n]] = true
			lastSeq[n] = -1
			projected[n] = v
			return
		}
		prevProj[n] = projected[n]
		projected[n] = v
		lastSched[n] = t
		lastSeq[n] = seq
		eventsOn[n]++
		q.push(event{t: t, seq: seq, net: n, val: v})
		seq++
	}

	// Launch edge: flops whose state changes emit a Q transition at their
	// clock arrival time.
	for i, f := range d.Flops {
		if v1[i] == v2[i] || v2[i] == logic.X {
			continue
		}
		t := 0.0
		if tm.tree != nil {
			t = tm.tree.Arrival(f)
		}
		push(t, d.Insts[f].Out, v2[i], 0)
	}

	horizon := 4 * period // safety: glitch tails beyond this are abandoned
	var buf [4]logic.V
	dispatched, queueHWM := 0, len(q)
	for len(q) > 0 {
		if len(q) > queueHWM {
			queueHWM = len(q)
		}
		ev := q.pop()
		dispatched++
		if voided[ev.seq] {
			delete(voided, ev.seq)
			continue
		}
		if lastSeq[ev.net] == ev.seq {
			lastSeq[ev.net] = -1 // no longer cancellable
		}
		if ev.t > horizon {
			res.Suppressed += len(q) + 1
			break
		}
		old := nets[ev.net]
		if old == ev.val {
			continue
		}
		nets[ev.net] = ev.val

		// Account the transition against the driving instance.
		drv := d.Nets[ev.net].Driver
		if old != logic.X && ev.val != logic.X {
			res.Toggles++
			if res.FirstEvent == 0 || ev.t < res.FirstEvent {
				res.FirstEvent = ev.t
			}
			if ev.t > res.LastEvent {
				res.LastEvent = ev.t
			}
			if onToggle != nil && drv != netlist.NoInst {
				onToggle(drv, ev.t, ev.val == logic.One)
			}
		}

		for _, ld := range d.Nets[ev.net].Loads {
			inst := &d.Insts[ld.Inst]
			if inst.IsFlop() {
				if ld.Pin == 0 { // D input: endpoint observation
					fi := s.flopIndex[ld.Inst]
					res.EndpointArrival[fi] = ev.t
					res.EndpointActive[fi] = true
				}
				continue
			}
			in := buf[:len(inst.In)]
			for p, n := range inst.In {
				in[p] = nets[n]
			}
			newOut := cell.Eval(inst.Kind, in)
			if newOut == projected[inst.Out] {
				continue
			}
			rise, fall := tm.delays.Of(inst.ID)
			dly := fall
			if newOut == logic.One {
				dly = rise
			}
			push(ev.t+dly, inst.Out, newOut, dly)
		}
	}

	res.STW = res.LastEvent
	res.Nets = nets
	cLaunches.Add(1)
	cDispatched.Add(int64(dispatched))
	cSuppressed.Add(int64(res.Suppressed))
	gQueueHWM.Max(int64(queueHWM))
	return res, nil
}
