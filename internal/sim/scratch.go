package sim

import (
	"fmt"

	"scap/internal/cell"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/obs"
)

// Scratch/settle observability. The settle counters distinguish the
// three baseline paths: a cold full Propagate, an incremental
// selective-trace settle (only the fanout cone of changed flops/PIs),
// and a skipped settle when the cached baseline already matches the
// requested (v1, pis) — the cone-cache hit of same-pattern
// re-simulation.
var (
	cScratchReuse = obs.NewCounter("sim.scratch_reuses")
	cSettleFull   = obs.NewCounter("sim.settles_full")
	cSettleInc    = obs.NewCounter("sim.settles_incremental")
	cSettleSkip   = obs.NewCounter("sim.settles_skipped")
	cSettleGates  = obs.NewCounter("sim.settle_gates_evaluated")
	hSettleCone   = obs.NewHistogram("sim.settle_cone_gates")
	hConeEvents   = obs.NewHistogram("sim.cone_events")
)

func init() {
	obs.RegisterDerived("sim.scratch_reuse_share", func(c map[string]int64) (float64, bool) {
		launches := c["sim.launches"]
		if launches <= 0 {
			return 0, false
		}
		return float64(c["sim.scratch_reuses"]) / float64(launches), true
	})
}

// schedEntry is one undo-log record: net n held value old in the
// settled baseline before the launch touched it.
type schedEntry struct {
	net netlist.NetID
	old logic.V
}

// LaunchScratch owns every buffer a timing launch needs — the event
// queue, the per-net projection/ordering/inertial-filter arrays, the
// generation-stamped void and undo sets, the endpoint arrays and the
// Result itself — so steady-state LaunchInto calls perform zero heap
// allocation.
//
// Between launches the scratch caches the settled pre-launch baseline
// settle(v1, pis): an undo log restores the per-net state the event
// phase disturbed, and the next launch re-settles only the fanout cone
// of flops/PIs whose values differ from the cached (baseV1, basePIs).
// Re-launching the identical pattern (Monte-Carlo trials, delayscale
// re-simulation) skips settling entirely. The cached baseline is
// delay- and clock-independent, so one scratch may be shared across
// Timing instances that differ only in delays/tree — but never across
// Simulators (the topology must not change) and never concurrently
// (one scratch per worker).
type LaunchScratch struct {
	s *Simulator

	// nets holds settle(baseV1, basePIs) between launches; during the
	// event phase it is the live waveform state and the undo log
	// restores it afterwards.
	nets      []logic.V
	projected []logic.V
	eventsOn  []int
	lastSched []float64
	lastSeq   []int
	prevProj  []logic.V

	q   eventQueue
	seq int

	// gen stamps the per-launch dirty sets so they reset with a single
	// increment instead of O(N) clears. It is bumped once per settle
	// (instGen) and once per event phase (schedGen, voidStamp).
	gen       uint64
	voidStamp []uint64 // by event seq: == gen means voided
	schedGen  []uint64 // by net: == gen means already in the undo log
	sched     []schedEntry
	instGen   []uint64 // by inst: == gen means already scheduled to settle
	// buckets[lv] collects the dirty gates of logic level lv; the settle
	// drains levels in ascending order, so each gate is evaluated once
	// with final inputs and scheduling is O(1) per gate (levels are
	// strictly increasing along combinational edges).
	buckets [][]netlist.InstID

	// Cone cache identity: the (v1, pis) the baseline was settled at.
	baseV1    []logic.V
	basePIs   []logic.V
	baseValid bool

	// res and resNets are reused across launches; the Result returned
	// by LaunchInto points into them and is valid until the next
	// LaunchInto on this scratch.
	res      Result
	resNets  []logic.V
	launches int
}

// NewLaunchScratch allocates a scratch sized for s. All per-launch
// buffers are created here once; subsequent LaunchInto calls on the
// scratch allocate nothing.
func NewLaunchScratch(s *Simulator) *LaunchScratch {
	nn := s.d.NumNets()
	nf := len(s.d.Flops)
	ls := &LaunchScratch{
		s:         s,
		nets:      make([]logic.V, nn),
		projected: make([]logic.V, nn),
		eventsOn:  make([]int, nn),
		lastSched: make([]float64, nn),
		lastSeq:   make([]int, nn),
		prevProj:  make([]logic.V, nn),
		schedGen:  make([]uint64, nn),
		instGen:   make([]uint64, s.d.NumInsts()),
		buckets:   make([][]netlist.InstID, s.numLevels),
		baseV1:    make([]logic.V, nf),
		basePIs:   make([]logic.V, len(s.d.PIs)),
		resNets:   make([]logic.V, nn),
	}
	for i := range ls.lastSeq {
		ls.lastSeq[i] = -1
	}
	ls.res.EndpointArrival = make([]float64, nf)
	ls.res.EndpointActive = make([]bool, nf)
	return ls
}

// Simulator returns the simulator this scratch is bound to.
func (ls *LaunchScratch) Simulator() *Simulator { return ls.s }

// SettleBaseline settles the network at pre-launch state v1 (per-flop,
// d.Flops order) with constant primary inputs pis and returns the net
// values. The returned slice is the scratch's internal baseline — read
// only, valid until the next call on this scratch. A following
// LaunchInto with the same (v1, pis) reuses the settle for free.
func (ls *LaunchScratch) SettleBaseline(v1, pis []logic.V) ([]logic.V, error) {
	d := ls.s.d
	if len(v1) != len(d.Flops) {
		return nil, fmt.Errorf("sim: state length %d, want %d", len(v1), len(d.Flops))
	}
	if len(pis) != len(d.PIs) {
		return nil, fmt.Errorf("sim: pi length %d, want %d", len(pis), len(d.PIs))
	}
	ls.settle(v1, pis)
	return ls.nets, nil
}

func eqV(a, b []logic.V) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// settle establishes nets = settle(v1, pis) and projected = nets.
// Cold start runs the full topological Propagate (the oracle path);
// afterwards only the fanout cone of flops/PIs whose values differ
// from the cached baseline is re-evaluated, drained level by level so
// every dirty instance is evaluated exactly once with final inputs. A
// matching baseline skips the settle.
func (ls *LaunchScratch) settle(v1, pis []logic.V) {
	s := ls.s
	d := s.d
	ls.gen++
	if !ls.baseValid {
		for i := range ls.nets {
			ls.nets[i] = logic.X
		}
		s.SetPIs(ls.nets, pis)
		s.ApplyState(ls.nets, v1)
		s.Propagate(ls.nets)
		copy(ls.projected, ls.nets)
		copy(ls.baseV1, v1)
		copy(ls.basePIs, pis)
		ls.baseValid = true
		cSettleFull.Add(1)
		return
	}
	if eqV(ls.baseV1, v1) && eqV(ls.basePIs, pis) {
		cSettleSkip.Add(1)
		return
	}
	for i, n := range d.PIs {
		if ls.nets[n] != pis[i] {
			ls.nets[n] = pis[i]
			ls.projected[n] = pis[i]
			ls.seedLoads(n)
		}
	}
	for i, f := range d.Flops {
		out := d.Insts[f].Out
		if ls.nets[out] != v1[i] {
			ls.nets[out] = v1[i]
			ls.projected[out] = v1[i]
			ls.seedLoads(out)
		}
	}
	evals := 0
	for lv := 0; lv < len(ls.buckets); lv++ {
		// A gate's fanout sits at strictly higher levels, so this
		// bucket cannot grow while it drains.
		b := ls.buckets[lv]
		for _, id := range b {
			inst := &d.Insts[id]
			idx := uint32(0)
			for p, n := range inst.In {
				idx |= uint32(ls.nets[n]) << (2 * uint(p))
			}
			v := cell.EvalPacked(inst.Kind, idx)
			evals++
			if v != ls.nets[inst.Out] {
				ls.nets[inst.Out] = v
				ls.projected[inst.Out] = v
				ls.seedLoads(inst.Out)
			}
		}
		ls.buckets[lv] = b[:0]
	}
	copy(ls.baseV1, v1)
	copy(ls.basePIs, pis)
	cSettleInc.Add(1)
	cSettleGates.Add(int64(evals))
	hSettleCone.Observe(float64(evals))
}

// seedLoads marks every combinational load of net n dirty, appending
// it to its level's bucket. Flop loads are skipped: flop inputs do not
// feed back combinationally, and the launch state v1/v2 is supplied by
// the caller, not captured here.
func (ls *LaunchScratch) seedLoads(n netlist.NetID) {
	lvl, gen, instGen := ls.s.level, ls.gen, ls.instGen
	for _, ld := range ls.s.d.Nets[n].Loads {
		id := ld.Inst
		l := lvl[id]
		if l < 0 || instGen[id] == gen {
			continue
		}
		instGen[id] = gen
		ls.buckets[l] = append(ls.buckets[l], id)
	}
}

// pushEvent schedules net n to take value v at time t; width is the
// driving stage's inertial window. The caller must have verified v
// differs from projected[n]; pushEvent updates projected[n]. The first
// touch of a net records its baseline value in the undo log so the
// scratch can be restored after the launch. A method rather than a
// closure: closing over the scratch would allocate per launch.
func (ls *LaunchScratch) pushEvent(tm *Timing, t float64, n netlist.NetID, v logic.V, width float64) {
	if ls.eventsOn[n] >= tm.MaxEventsPerNet {
		ls.res.Suppressed++
		return
	}
	if ls.schedGen[n] != ls.gen {
		ls.schedGen[n] = ls.gen
		ls.sched = append(ls.sched, schedEntry{net: n, old: ls.projected[n]})
	}
	if t < ls.lastSched[n] {
		t = ls.lastSched[n]
	}
	if width < tm.MinPulseNs {
		width = tm.MinPulseNs
	}
	// Inertial filter: returning to the pre-pulse value within the
	// stage's switching window swallows the pulse.
	if tm.MinPulseNs >= 0 && ls.lastSeq[n] >= 0 && v == ls.prevProj[n] &&
		t-ls.lastSched[n] < width {
		ls.voidStamp[ls.lastSeq[n]] = ls.gen
		ls.lastSeq[n] = -1
		ls.projected[n] = v
		return
	}
	ls.prevProj[n] = ls.projected[n]
	ls.projected[n] = v
	ls.lastSched[n] = t
	ls.lastSeq[n] = ls.seq
	ls.eventsOn[n]++
	ls.q.push(event{t: t, seq: ls.seq, net: n, val: v})
	if ls.seq >= len(ls.voidStamp) {
		ls.voidStamp = append(ls.voidStamp, 0)
	}
	ls.seq++
}

// restore rolls the per-net state touched by the launch back to the
// settled baseline, so the scratch invariantly holds settle(baseV1,
// basePIs) between launches. Only nets in the undo log were disturbed:
// every fired or pending event passed through pushEvent first.
func (ls *LaunchScratch) restore() {
	for _, e := range ls.sched {
		ls.nets[e.net] = e.old
		ls.projected[e.net] = e.old
		ls.eventsOn[e.net] = 0
		ls.lastSched[e.net] = 0
		ls.lastSeq[e.net] = -1
	}
	ls.sched = ls.sched[:0]
	ls.q = ls.q[:0]
}
