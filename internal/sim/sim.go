// Package sim provides the three simulators the reproduction is built on:
//
//   - a scalar three-valued zero-delay simulator (ATPG implication, pattern
//     expansion, launch-off-capture frame derivation);
//   - a 64-way parallel-pattern simulator over logic.Word (fault dropping);
//   - an event-driven gate-level timing simulator with per-instance delays
//     and clock-tree skew (the stand-in for Synopsys VCS; it streams toggle
//     events to a callback exactly like the paper's PLI-based SCAP
//     calculator, so no VCD file is needed).
package sim

import (
	"fmt"

	"scap/internal/cell"
	"scap/internal/logic"
	"scap/internal/netlist"
)

// Simulator evaluates the combinational portion of a design in topological
// order. It is stateless; callers own the net-value vectors.
type Simulator struct {
	d     *netlist.Design
	order []netlist.InstID // combinational instances only, topo order
	// flopIndex maps an InstID to its position in d.Flops.
	flopIndex map[netlist.InstID]int
	// level[inst] is the gate's logic level — 1 + the max level of its
	// combinational driver instances, 0 when every input comes from a
	// flop, a PI, or an undriven net; -1 for flops. Levels are strictly
	// increasing along combinational edges, so the selective-trace
	// settle of LaunchScratch can drain dirty gates through per-level
	// buckets (O(1) push and pop, each gate evaluated at most once)
	// instead of a priority queue.
	level     []int32
	numLevels int
	// flopSlot[inst] is the instance's position in d.Flops, -1 for
	// combinational gates: the event loop's branch-free replacement for
	// an IsFlop check plus a map lookup.
	flopSlot []int32
}

// New builds a Simulator for d. It fails if the design has a combinational
// cycle.
func New(d *netlist.Design) (*Simulator, error) {
	full, err := d.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	s := &Simulator{
		d:         d,
		flopIndex: make(map[netlist.InstID]int, len(d.Flops)),
	}
	for _, id := range full {
		if !d.Inst(id).IsFlop() {
			s.order = append(s.order, id)
		}
	}
	s.level = make([]int32, d.NumInsts())
	for i := range s.level {
		s.level[i] = -1
	}
	for _, id := range s.order {
		lv := int32(0)
		for _, n := range d.Inst(id).In {
			drv := d.Nets[n].Driver
			if drv == netlist.NoInst || d.Inst(drv).IsFlop() {
				continue
			}
			if l := s.level[drv] + 1; l > lv {
				lv = l
			}
		}
		s.level[id] = lv
		if int(lv) >= s.numLevels {
			s.numLevels = int(lv) + 1
		}
	}
	s.flopSlot = make([]int32, d.NumInsts())
	for i := range s.flopSlot {
		s.flopSlot[i] = -1
	}
	for i, f := range d.Flops {
		s.flopIndex[f] = i
		s.flopSlot[f] = int32(i)
	}
	return s, nil
}

// Design returns the simulated design.
func (s *Simulator) Design() *netlist.Design { return s.d }

// FlopIndex returns the position of flop f in the design's flop list.
func (s *Simulator) FlopIndex(f netlist.InstID) int { return s.flopIndex[f] }

// NewNets returns a fresh all-X net-value vector.
func (s *Simulator) NewNets() []logic.V {
	nets := make([]logic.V, s.d.NumNets())
	for i := range nets {
		nets[i] = logic.X
	}
	return nets
}

// Propagate evaluates every combinational gate in topological order.
// Primary-input nets and flop output (Q) nets must be set by the caller;
// everything else is overwritten.
func (s *Simulator) Propagate(nets []logic.V) {
	d := s.d
	var buf [4]logic.V
	for _, id := range s.order {
		inst := &d.Insts[id]
		in := buf[:len(inst.In)]
		for p, n := range inst.In {
			in[p] = nets[n]
		}
		nets[inst.Out] = cell.Eval(inst.Kind, in)
	}
}

// CaptureState returns the value each flop would capture from the current
// net values (indexed like d.Flops). Scan flops honor their SE pin: SE=0
// captures D, SE=1 captures SI.
func (s *Simulator) CaptureState(nets []logic.V) []logic.V {
	return s.CaptureStateInto(make([]logic.V, len(s.d.Flops)), nets)
}

// CaptureStateInto is the buffer-reusing form of CaptureState: it writes
// the captured per-flop values into out (which must be len(d.Flops)) and
// returns it.
func (s *Simulator) CaptureStateInto(out []logic.V, nets []logic.V) []logic.V {
	d := s.d
	var buf [4]logic.V
	for i, f := range d.Flops {
		inst := &d.Insts[f]
		in := buf[:len(inst.In)]
		for p, n := range inst.In {
			in[p] = nets[n]
		}
		out[i] = cell.Eval(inst.Kind, in)
	}
	return out
}

// ApplyState writes a per-flop state vector onto the flop output nets.
func (s *Simulator) ApplyState(nets []logic.V, state []logic.V) {
	for i, f := range s.d.Flops {
		nets[s.d.Insts[f].Out] = state[i]
	}
}

// SetPIs writes primary-input values (indexed like d.PIs) onto the PI nets.
func (s *Simulator) SetPIs(nets []logic.V, pis []logic.V) {
	for i, n := range s.d.PIs {
		nets[n] = pis[i]
	}
}

// NewNetsW returns a fresh all-X parallel net-value vector.
func (s *Simulator) NewNetsW() []logic.Word {
	return make([]logic.Word, s.d.NumNets()) // zero Word == all-X
}

// PropagateW is the 64-way parallel counterpart of Propagate.
func (s *Simulator) PropagateW(nets []logic.Word) {
	d := s.d
	var buf [4]logic.Word
	for _, id := range s.order {
		inst := &d.Insts[id]
		in := buf[:len(inst.In)]
		for p, n := range inst.In {
			in[p] = nets[n]
		}
		nets[inst.Out] = cell.EvalWord(inst.Kind, in)
	}
}

// CaptureStateW is the 64-way parallel counterpart of CaptureState.
func (s *Simulator) CaptureStateW(nets []logic.Word) []logic.Word {
	d := s.d
	out := make([]logic.Word, len(d.Flops))
	var buf [4]logic.Word
	for i, f := range d.Flops {
		inst := &d.Insts[f]
		in := buf[:len(inst.In)]
		for p, n := range inst.In {
			in[p] = nets[n]
		}
		out[i] = cell.EvalWord(inst.Kind, in)
	}
	return out
}

// ApplyStateW writes a parallel per-flop state vector onto flop output nets.
func (s *Simulator) ApplyStateW(nets []logic.Word, state []logic.Word) {
	for i, f := range s.d.Flops {
		nets[s.d.Insts[f].Out] = state[i]
	}
}

// SetPIsW writes parallel primary-input values onto the PI nets.
func (s *Simulator) SetPIsW(nets []logic.Word, pis []logic.Word) {
	for i, n := range s.d.PIs {
		nets[n] = pis[i]
	}
}
