// Package shift estimates scan-shift switching activity. The paper
// deliberately excludes shift IR-drop (shifting runs at a slow 10 MHz),
// but its fill discussion notes that fill-adjacent exists to cut *shift*
// power; this package quantifies that trade-off with the standard
// weighted-transition-count (WTC) metric so the fill ablation can report
// both sides: capture power (SCAP) and shift power (WTC).
//
// For a chain of length L loaded with bits b[0..L-1] (b[0] next to the
// scan-in pin), a transition between b[k] and b[k+1] travels through the
// downstream cells while shifting in and is conventionally weighted by its
// distance from the scan-in: WTC = Σ_k (L-1-k) · [b'[k] != b'[k+1]] over
// the shift-order bit stream. Higher WTC means more cell toggles per load.
package shift

import (
	"fmt"

	"scap/internal/atpg"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/scan"
)

// Profile is the shift-activity summary of one pattern.
type Profile struct {
	// WTC is the summed weighted transition count over all chains.
	WTC int
	// Transitions is the unweighted adjacent-bit transition count.
	Transitions int
	// Bits is the total number of scan bits shifted.
	Bits int
}

// Rate returns transitions per bit boundary (0..1), a fill-quality measure.
func (p Profile) Rate() float64 {
	boundaries := p.Bits - 1
	if boundaries <= 0 {
		return 0
	}
	return float64(p.Transitions) / float64(boundaries)
}

// Measure computes the shift profile of one pattern's scan-in state.
func Measure(d *netlist.Design, sc *scan.Scan, p *atpg.Pattern) (Profile, error) {
	if len(p.V1) != len(d.Flops) {
		return Profile{}, fmt.Errorf("shift: pattern has %d state bits, design %d",
			len(p.V1), len(d.Flops))
	}
	idx := make(map[netlist.InstID]int, len(d.Flops))
	for i, f := range d.Flops {
		idx[f] = i
	}
	var prof Profile
	for _, c := range sc.Chains {
		L := len(c.Flops)
		prof.Bits += L
		for k := 0; k+1 < L; k++ {
			a := p.V1[idx[c.Flops[k]]]
			b := p.V1[idx[c.Flops[k+1]]]
			if a == logic.X || b == logic.X || a == b {
				continue
			}
			prof.Transitions++
			prof.WTC += L - 1 - k
		}
	}
	return prof, nil
}

// MeasureSet averages the shift profile over a pattern set.
func MeasureSet(d *netlist.Design, sc *scan.Scan, pats []atpg.Pattern) (mean Profile, rate float64, err error) {
	if len(pats) == 0 {
		return Profile{}, 0, fmt.Errorf("shift: empty pattern set")
	}
	var wtc, tr, bits int
	for i := range pats {
		p, err := Measure(d, sc, &pats[i])
		if err != nil {
			return Profile{}, 0, err
		}
		wtc += p.WTC
		tr += p.Transitions
		bits += p.Bits
	}
	n := len(pats)
	mean = Profile{WTC: wtc / n, Transitions: tr / n, Bits: bits / n}
	return mean, mean.Rate(), nil
}
