package shift

import (
	"testing"

	"scap/internal/atpg"
	"scap/internal/fault"
	"scap/internal/faultsim"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/scan"
	"scap/internal/sim"
	"scap/internal/soc"
)

func rig(t *testing.T) (*netlist.Design, *scan.Scan, *faultsim.Sim, *fault.List) {
	t.Helper()
	d, _, err := soc.Generate(soc.DefaultConfig(96))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(d, scan.Config{NumChains: 16})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := faultsim.New(s)
	if err != nil {
		t.Fatal(err)
	}
	return d, sc, fs, fault.Universe(d)
}

func TestMeasureKnownVector(t *testing.T) {
	d, sc, _, _ := rig(t)
	// Alternating state: every chain boundary toggles.
	p := atpg.Pattern{V1: make([]logic.V, len(d.Flops))}
	idx := map[netlist.InstID]int{}
	for i, f := range d.Flops {
		idx[f] = i
	}
	wantTr, wantWTC := 0, 0
	for _, c := range sc.Chains {
		for k, f := range c.Flops {
			p.V1[idx[f]] = logic.V(k % 2) // 0,1,0,1...
		}
		L := len(c.Flops)
		for k := 0; k+1 < L; k++ {
			wantTr++
			wantWTC += L - 1 - k
		}
	}
	prof, err := Measure(d, sc, &p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Transitions != wantTr || prof.WTC != wantWTC {
		t.Fatalf("got %+v, want tr=%d wtc=%d", prof, wantTr, wantWTC)
	}
	if prof.Rate() <= 0.9 {
		t.Fatalf("alternating rate %v, want ~1", prof.Rate())
	}

	// Constant state: zero everything.
	for i := range p.V1 {
		p.V1[i] = logic.One
	}
	prof, err = Measure(d, sc, &p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Transitions != 0 || prof.WTC != 0 || prof.Rate() != 0 {
		t.Fatalf("constant state profile %+v", prof)
	}
}

func TestXBitsDontCount(t *testing.T) {
	d, sc, _, _ := rig(t)
	p := atpg.Pattern{V1: make([]logic.V, len(d.Flops))}
	for i := range p.V1 {
		p.V1[i] = logic.X
	}
	prof, err := Measure(d, sc, &p)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Transitions != 0 {
		t.Fatal("X bits counted as transitions")
	}
}

// TestAdjacentFillMinimizesShiftPower is the classic fill trade-off: the
// adjacent fill must produce (much) lower shift activity than random fill
// on real ATPG patterns.
func TestAdjacentFillMinimizesShiftPower(t *testing.T) {
	d, sc, fs, _ := rig(t)
	rates := map[atpg.Fill]float64{}
	for _, fill := range []atpg.Fill{atpg.FillRandom, atpg.FillAdjacent, atpg.Fill0} {
		l := fault.Universe(d)
		res, err := atpg.Run(fs, l, sc, atpg.Options{
			Dom: 0, Fill: fill, Seed: 3, MaxPatterns: 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		_, rate, err := MeasureSet(d, sc, res.Patterns)
		if err != nil {
			t.Fatal(err)
		}
		rates[fill] = rate
	}
	t.Logf("shift transition rates: random=%.3f adjacent=%.3f fill0=%.3f",
		rates[atpg.FillRandom], rates[atpg.FillAdjacent], rates[atpg.Fill0])
	if rates[atpg.FillAdjacent] >= rates[atpg.FillRandom]/2 {
		t.Fatalf("adjacent fill (%.3f) not well below random (%.3f)",
			rates[atpg.FillAdjacent], rates[atpg.FillRandom])
	}
	if rates[atpg.Fill0] >= rates[atpg.FillRandom] {
		t.Fatal("fill0 should also beat random on shift activity")
	}
}

func TestMeasureValidation(t *testing.T) {
	d, sc, _, _ := rig(t)
	p := atpg.Pattern{V1: make([]logic.V, 3)}
	if _, err := Measure(d, sc, &p); err == nil {
		t.Fatal("short vector accepted")
	}
	if _, _, err := MeasureSet(d, sc, nil); err == nil {
		t.Fatal("empty set accepted")
	}
}
