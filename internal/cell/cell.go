// Package cell defines the standard-cell library used by the synthetic SOC:
// cell kinds, logic functions, pin capacitances and a linear delay model
// (intrinsic delay plus load-dependent slope), calibrated to magnitudes
// typical of a 180 nm / 1.8 V process like the one in the paper.
//
// The library replaces the vendor-supplied GSCLib technology library the
// paper uses: downstream code only consumes per-arc delays, pin/output
// capacitances and the k_volt delay-scaling factor, all of which are
// provided here.
package cell

import "fmt"

// Kind identifies a cell type in the library.
type Kind uint8

// The cell kinds available in the library. All combinational cells have a
// single output. DFF is a plain D flip-flop; SDFF is a scan flip-flop with
// a scan-input mux in front of D.
const (
	Inv Kind = iota
	Buf
	Nand2
	Nand3
	Nand4
	Nor2
	Nor3
	Nor4
	And2
	And3
	And4
	Or2
	Or3
	Or4
	Xor2
	Xnor2
	Mux2 // inputs: A, B, S; output = A when S=0, B when S=1
	Aoi21
	Oai21
	Aoi22
	Oai22
	DFF  // input: D; output Q
	SDFF // inputs: D, SI, SE; output Q
	numKinds
)

var kindNames = [...]string{
	Inv: "INV", Buf: "BUF",
	Nand2: "NAND2", Nand3: "NAND3", Nand4: "NAND4",
	Nor2: "NOR2", Nor3: "NOR3", Nor4: "NOR4",
	And2: "AND2", And3: "AND3", And4: "AND4",
	Or2: "OR2", Or3: "OR3", Or4: "OR4",
	Xor2: "XOR2", Xnor2: "XNOR2", Mux2: "MUX2",
	Aoi21: "AOI21", Oai21: "OAI21", Aoi22: "AOI22", Oai22: "OAI22",
	DFF: "DFF", SDFF: "SDFF",
}

var kindInputs = [...]int{
	Inv: 1, Buf: 1,
	Nand2: 2, Nand3: 3, Nand4: 4,
	Nor2: 2, Nor3: 3, Nor4: 4,
	And2: 2, And3: 3, And4: 4,
	Or2: 2, Or3: 3, Or4: 4,
	Xor2: 2, Xnor2: 2, Mux2: 3,
	Aoi21: 3, Oai21: 3, Aoi22: 4, Oai22: 4,
	DFF: 1, SDFF: 3,
}

// NumKinds returns the number of defined cell kinds. Table-driven
// consumers (e.g. the ATPG propagation-needs table) size their per-kind
// arrays with it instead of hard-coding the library.
func NumKinds() int { return int(numKinds) }

// String returns the library name of the kind, e.g. "NAND2".
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// NumInputs returns the number of logic input pins of the kind.
// For SDFF that is 3 (D, SI, SE); the clock pin is not modeled as a logic pin.
func (k Kind) NumInputs() int {
	if int(k) < len(kindInputs) {
		return kindInputs[k]
	}
	return 0
}

// IsSequential reports whether the kind is a flip-flop.
func (k Kind) IsSequential() bool { return k == DFF || k == SDFF }

// Valid reports whether k names a defined library cell.
func (k Kind) Valid() bool { return k < numKinds }

// KindByName returns the kind whose library name matches s.
func KindByName(s string) (Kind, bool) {
	for k, n := range kindNames {
		if n == s {
			return Kind(k), true
		}
	}
	return 0, false
}

// Cell carries the electrical and timing characterization of one library
// cell. Delays follow a linear model: delay = intrinsic + slope * loadCap.
type Cell struct {
	Kind Kind
	Name string

	RiseIntrinsic float64 // ns, unloaded rise delay
	FallIntrinsic float64 // ns, unloaded fall delay
	RiseSlope     float64 // ns per fF of load
	FallSlope     float64 // ns per fF of load

	InputCap  float64 // fF presented by each input pin
	OutputCap float64 // fF intrinsic output (drain) capacitance
	Area      float64 // relative placement area units
}

// RiseDelay returns the rising output delay (ns) driving loadFF femtofarads.
func (c *Cell) RiseDelay(loadFF float64) float64 {
	return c.RiseIntrinsic + c.RiseSlope*loadFF
}

// FallDelay returns the falling output delay (ns) driving loadFF femtofarads.
func (c *Cell) FallDelay(loadFF float64) float64 {
	return c.FallIntrinsic + c.FallSlope*loadFF
}

// Library is a complete characterized cell library plus the process-level
// constants consumed by the power and IR-drop models.
type Library struct {
	Name  string
	VDD   float64 // nominal supply voltage, volts
	KVolt float64 // delay-scaling factor: delay *= 1 + KVolt*dV (dV in volts relative to VDD)

	cells [numKinds]Cell
}

// Cell returns the characterization of kind k.
func (l *Library) Cell(k Kind) *Cell {
	if !k.Valid() {
		panic(fmt.Sprintf("cell: invalid kind %d", k))
	}
	return &l.cells[k]
}

// Kinds returns all kinds defined in the library, in declaration order.
func (l *Library) Kinds() []Kind {
	out := make([]Kind, 0, int(numKinds))
	for k := Kind(0); k < numKinds; k++ {
		out = append(out, k)
	}
	return out
}

// New180nm builds the default library at 180 nm / 1.8 V magnitudes.
// k_volt = 0.9 matches the paper's vendor library: a 5% supply droop
// (dV = 0.09 V ... the paper quotes dV = 0.1 V for a 9% delay increase).
func New180nm() *Library {
	l := &Library{Name: "gsc180-repro", VDD: 1.8, KVolt: 0.9}
	// def installs one cell; d* in ns, caps in fF, slope in ns/fF.
	def := func(k Kind, dr, df, sr, sf, inCap, outCap, area float64) {
		l.cells[k] = Cell{
			Kind: k, Name: k.String(),
			RiseIntrinsic: dr, FallIntrinsic: df,
			RiseSlope: sr, FallSlope: sf,
			InputCap: inCap, OutputCap: outCap, Area: area,
		}
	}
	def(Inv, 0.030, 0.025, 0.0016, 0.0013, 2.1, 1.6, 1)
	def(Buf, 0.055, 0.050, 0.0012, 0.0011, 2.3, 1.8, 2)
	def(Nand2, 0.045, 0.038, 0.0019, 0.0015, 2.4, 2.2, 2)
	def(Nand3, 0.058, 0.050, 0.0022, 0.0018, 2.6, 2.6, 3)
	def(Nand4, 0.072, 0.064, 0.0026, 0.0021, 2.8, 3.0, 4)
	def(Nor2, 0.052, 0.040, 0.0021, 0.0015, 2.4, 2.3, 2)
	def(Nor3, 0.068, 0.050, 0.0026, 0.0018, 2.6, 2.8, 3)
	def(Nor4, 0.086, 0.062, 0.0031, 0.0021, 2.8, 3.2, 4)
	def(And2, 0.068, 0.060, 0.0014, 0.0013, 2.4, 2.4, 3)
	def(And3, 0.082, 0.072, 0.0016, 0.0015, 2.6, 2.8, 4)
	def(And4, 0.096, 0.086, 0.0018, 0.0016, 2.8, 3.2, 5)
	def(Or2, 0.072, 0.062, 0.0015, 0.0013, 2.4, 2.4, 3)
	def(Or3, 0.088, 0.076, 0.0017, 0.0015, 2.6, 2.8, 4)
	def(Or4, 0.104, 0.090, 0.0019, 0.0016, 2.8, 3.2, 5)
	def(Xor2, 0.095, 0.090, 0.0021, 0.0019, 3.1, 3.0, 5)
	def(Xnor2, 0.095, 0.090, 0.0021, 0.0019, 3.1, 3.0, 5)
	def(Mux2, 0.085, 0.080, 0.0018, 0.0016, 2.7, 2.8, 5)
	def(Aoi21, 0.060, 0.048, 0.0023, 0.0017, 2.5, 2.6, 3)
	def(Oai21, 0.062, 0.046, 0.0023, 0.0017, 2.5, 2.6, 3)
	def(Aoi22, 0.074, 0.060, 0.0026, 0.0019, 2.7, 3.0, 4)
	def(Oai22, 0.076, 0.058, 0.0026, 0.0019, 2.7, 3.0, 4)
	// Flops: clock-to-Q delay as "intrinsic"; D/SI/SE pins share InputCap.
	def(DFF, 0.180, 0.170, 0.0015, 0.0014, 2.9, 3.4, 8)
	def(SDFF, 0.200, 0.190, 0.0015, 0.0014, 3.0, 3.6, 10)
	return l
}

// ScaleDelay applies the library's voltage-derating model: the returned
// delay is delay*(1 + KVolt*dropV) where dropV is the supply droop in volts
// seen by the cell (>= 0 under IR-drop). This is the paper's
// ScaledCellDelay = Delay * (1 + k_volt * dV) formula.
func (l *Library) ScaleDelay(delay, dropV float64) float64 {
	if dropV < 0 {
		dropV = 0
	}
	return delay * (1 + l.KVolt*dropV)
}
