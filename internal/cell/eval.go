package cell

import (
	"fmt"

	"scap/internal/logic"
)

// Eval computes the three-valued output of a combinational cell of kind k
// given its input pin values, in pin order. Sequential kinds evaluate their
// data path: DFF returns D; SDFF returns the scan-mux output
// (SE=0 -> D, SE=1 -> SI), which is the value the flop would capture.
func Eval(k Kind, in []logic.V) logic.V {
	if len(in) != k.NumInputs() {
		panic(fmt.Sprintf("cell: %v expects %d inputs, got %d", k, k.NumInputs(), len(in)))
	}
	switch k {
	case Inv:
		return in[0].Not()
	case Buf:
		return in[0]
	case Nand2, Nand3, Nand4:
		return reduceAnd(in).Not()
	case Nor2, Nor3, Nor4:
		return reduceOr(in).Not()
	case And2, And3, And4:
		return reduceAnd(in)
	case Or2, Or3, Or4:
		return reduceOr(in)
	case Xor2:
		return in[0].Xor(in[1])
	case Xnor2:
		return in[0].Xor(in[1]).Not()
	case Mux2:
		return muxV(in[0], in[1], in[2])
	case Aoi21:
		return in[0].And(in[1]).Or(in[2]).Not()
	case Oai21:
		return in[0].Or(in[1]).And(in[2]).Not()
	case Aoi22:
		return in[0].And(in[1]).Or(in[2].And(in[3])).Not()
	case Oai22:
		return in[0].Or(in[1]).And(in[2].Or(in[3])).Not()
	case DFF:
		return in[0]
	case SDFF:
		return muxV(in[0], in[1], in[2])
	default:
		panic(fmt.Sprintf("cell: Eval of invalid kind %v", k))
	}
}

// muxV is the three-valued 2:1 mux: s=0 -> a, s=1 -> b. With an unknown
// select the output is still defined when both data inputs agree.
func muxV(a, b, s logic.V) logic.V {
	switch s {
	case logic.Zero:
		return a
	case logic.One:
		return b
	default:
		if a == b && a != logic.X {
			return a
		}
		return logic.X
	}
}

func reduceAnd(in []logic.V) logic.V {
	v := in[0]
	for _, w := range in[1:] {
		v = v.And(w)
	}
	return v
}

func reduceOr(in []logic.V) logic.V {
	v := in[0]
	for _, w := range in[1:] {
		v = v.Or(w)
	}
	return v
}

// EvalWord is the 64-way parallel counterpart of Eval. Slot semantics match
// Eval applied slot-wise.
func EvalWord(k Kind, in []logic.Word) logic.Word {
	if len(in) != k.NumInputs() {
		panic(fmt.Sprintf("cell: %v expects %d inputs, got %d", k, k.NumInputs(), len(in)))
	}
	switch k {
	case Inv:
		return in[0].Not()
	case Buf:
		return in[0]
	case Nand2, Nand3, Nand4:
		return reduceAndW(in).Not()
	case Nor2, Nor3, Nor4:
		return reduceOrW(in).Not()
	case And2, And3, And4:
		return reduceAndW(in)
	case Or2, Or3, Or4:
		return reduceOrW(in)
	case Xor2:
		return in[0].Xor(in[1])
	case Xnor2:
		return in[0].Xor(in[1]).Not()
	case Mux2:
		return muxW(in[0], in[1], in[2])
	case Aoi21:
		return in[0].And(in[1]).Or(in[2]).Not()
	case Oai21:
		return in[0].Or(in[1]).And(in[2]).Not()
	case Aoi22:
		return in[0].And(in[1]).Or(in[2].And(in[3])).Not()
	case Oai22:
		return in[0].Or(in[1]).And(in[2].Or(in[3])).Not()
	case DFF:
		return in[0]
	case SDFF:
		return muxW(in[0], in[1], in[2])
	default:
		panic(fmt.Sprintf("cell: EvalWord of invalid kind %v", k))
	}
}

// muxW is the slot-wise three-valued 2:1 mux.
func muxW(a, b, s logic.Word) logic.Word {
	// Where s known: select a or b. Where s is X: defined only if a==b defined.
	selA := logic.Word{Zero: a.Zero & s.Zero, One: a.One & s.Zero}
	selB := logic.Word{Zero: b.Zero & s.One, One: b.One & s.One}
	sx := ^s.Known()
	agree := logic.Word{
		Zero: a.Zero & b.Zero & sx,
		One:  a.One & b.One & sx,
	}
	return logic.Word{
		Zero: selA.Zero | selB.Zero | agree.Zero,
		One:  selA.One | selB.One | agree.One,
	}
}

func reduceAndW(in []logic.Word) logic.Word {
	v := in[0]
	for _, w := range in[1:] {
		v = v.And(w)
	}
	return v
}

func reduceOrW(in []logic.Word) logic.Word {
	v := in[0]
	for _, w := range in[1:] {
		v = v.Or(w)
	}
	return v
}

// evalTable is the packed-index form of Eval: for each kind, the output
// for every combination of up to four 2-bit input values (logic.V fits
// in two bits). Built once from Eval itself at init, so EvalPacked is
// Eval by construction. Indices containing the unused encoding 3 are
// never produced by well-formed nets and stay at their zero value.
var evalTable [numKinds][256]logic.V

func init() {
	in := make([]logic.V, 4)
	for k := Kind(0); k < numKinds; k++ {
		n := k.NumInputs()
		for c := 0; c < pow3(n); c++ {
			idx, rem := uint32(0), c
			for p := 0; p < n; p++ {
				v := logic.V(rem % 3)
				rem /= 3
				in[p] = v
				idx |= uint32(v) << (2 * p)
			}
			evalTable[k][idx] = Eval(k, in[:n])
		}
	}
}

func pow3(n int) int {
	r := 1
	for i := 0; i < n; i++ {
		r *= 3
	}
	return r
}

// EvalPacked evaluates kind k on inputs packed two bits per pin,
// little-endian: idx = in0 | in1<<2 | in2<<4 | in3<<6. It is the hot-loop
// form of Eval — one table load instead of a switch — and agrees with
// Eval on every valid input combination by construction.
func EvalPacked(k Kind, idx uint32) logic.V { return evalTable[k][idx] }
