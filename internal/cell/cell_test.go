package cell

import (
	"math/rand"
	"testing"

	"scap/internal/logic"
)

func TestKindNamesRoundTrip(t *testing.T) {
	l := New180nm()
	for _, k := range l.Kinds() {
		got, ok := KindByName(k.String())
		if !ok || got != k {
			t.Errorf("KindByName(%q) = %v,%v", k.String(), got, ok)
		}
	}
	if _, ok := KindByName("NOPE"); ok {
		t.Error("KindByName accepted garbage")
	}
}

func TestKindMetadata(t *testing.T) {
	if Inv.NumInputs() != 1 || Nand4.NumInputs() != 4 || Mux2.NumInputs() != 3 || SDFF.NumInputs() != 3 {
		t.Fatal("NumInputs wrong")
	}
	if !DFF.IsSequential() || !SDFF.IsSequential() || Nand2.IsSequential() {
		t.Fatal("IsSequential wrong")
	}
	if Kind(200).Valid() {
		t.Fatal("Valid accepted out-of-range kind")
	}
	if Kind(200).NumInputs() != 0 {
		t.Fatal("NumInputs of invalid kind should be 0")
	}
	if Kind(200).String() == "" {
		t.Fatal("String of invalid kind empty")
	}
}

func TestLibraryCharacterization(t *testing.T) {
	l := New180nm()
	if l.VDD != 1.8 {
		t.Fatalf("VDD = %v", l.VDD)
	}
	if l.KVolt != 0.9 {
		t.Fatalf("KVolt = %v", l.KVolt)
	}
	for _, k := range l.Kinds() {
		c := l.Cell(k)
		if c.RiseIntrinsic <= 0 || c.FallIntrinsic <= 0 {
			t.Errorf("%v: non-positive intrinsic delay", k)
		}
		if c.InputCap <= 0 || c.OutputCap <= 0 {
			t.Errorf("%v: non-positive capacitance", k)
		}
		if c.Area <= 0 {
			t.Errorf("%v: non-positive area", k)
		}
		// Delay must grow with load.
		if c.RiseDelay(10) <= c.RiseDelay(0) || c.FallDelay(10) <= c.FallDelay(0) {
			t.Errorf("%v: delay not monotone in load", k)
		}
	}
}

func TestScaleDelayMatchesPaperFormula(t *testing.T) {
	l := New180nm()
	// Paper: k_volt = 0.9 means a 0.1 V droop increases delay by 9%.
	got := l.ScaleDelay(1.0, 0.1)
	if want := 1.09; !closeTo(got, want, 1e-12) {
		t.Fatalf("ScaleDelay(1, 0.1) = %v, want %v", got, want)
	}
	// Negative droop (overshoot) must not speed the cell up in this model.
	if l.ScaleDelay(1.0, -0.2) != 1.0 {
		t.Fatal("negative droop should clamp to nominal delay")
	}
}

func closeTo(a, b, eps float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= eps
}

func TestEvalBasicGates(t *testing.T) {
	z, o, x := logic.Zero, logic.One, logic.X
	cases := []struct {
		k    Kind
		in   []logic.V
		want logic.V
	}{
		{Inv, []logic.V{z}, o},
		{Inv, []logic.V{o}, z},
		{Buf, []logic.V{o}, o},
		{Nand2, []logic.V{o, o}, z},
		{Nand2, []logic.V{z, x}, o},
		{Nand3, []logic.V{o, o, z}, o},
		{Nand4, []logic.V{o, o, o, o}, z},
		{Nor2, []logic.V{z, z}, o},
		{Nor2, []logic.V{o, x}, z},
		{Nor3, []logic.V{z, z, z}, o},
		{Nor4, []logic.V{z, o, z, z}, z},
		{And3, []logic.V{o, o, o}, o},
		{And4, []logic.V{o, z, o, o}, z},
		{Or3, []logic.V{z, z, o}, o},
		{Or4, []logic.V{z, z, z, z}, z},
		{Xor2, []logic.V{o, z}, o},
		{Xor2, []logic.V{o, o}, z},
		{Xnor2, []logic.V{o, o}, o},
		{Mux2, []logic.V{z, o, z}, z}, // S=0 selects A
		{Mux2, []logic.V{z, o, o}, o}, // S=1 selects B
		{Mux2, []logic.V{o, o, x}, o}, // X select, data agree
		{Mux2, []logic.V{z, o, x}, x}, // X select, data disagree
		{Aoi21, []logic.V{o, o, z}, z},
		{Aoi21, []logic.V{z, o, z}, o},
		{Oai21, []logic.V{z, z, o}, o},
		{Oai21, []logic.V{o, z, o}, z},
		{Aoi22, []logic.V{o, o, z, z}, z},
		{Aoi22, []logic.V{z, o, o, z}, o},
		{Oai22, []logic.V{o, z, o, z}, z},
		{Oai22, []logic.V{z, z, o, o}, o},
		{DFF, []logic.V{o}, o},
		{SDFF, []logic.V{z, o, o}, o}, // SE=1 captures SI
		{SDFF, []logic.V{z, o, z}, z}, // SE=0 captures D
	}
	for _, c := range cases {
		if got := Eval(c.k, c.in); got != c.want {
			t.Errorf("Eval(%v, %v) = %v, want %v", c.k, c.in, got, c.want)
		}
	}
}

func TestEvalPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong arity")
		}
	}()
	Eval(Nand2, []logic.V{logic.One})
}

func TestEvalWordPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong arity")
		}
	}()
	EvalWord(Mux2, []logic.Word{logic.AllX})
}

// TestEvalWordAgreesWithScalar is the load-bearing cross-check: the parallel
// evaluator must match the scalar evaluator slot-by-slot for every kind and
// random three-valued inputs.
func TestEvalWordAgreesWithScalar(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	lib := New180nm()
	for _, k := range lib.Kinds() {
		n := k.NumInputs()
		for iter := 0; iter < 50; iter++ {
			ws := make([]logic.Word, n)
			for i := range ws {
				known := r.Uint64()
				ones := r.Uint64() & known
				ws[i] = logic.Word{Zero: known &^ ones, One: ones}
			}
			got := EvalWord(k, ws)
			if !got.WellFormed() {
				t.Fatalf("%v: ill-formed word result", k)
			}
			for s := uint(0); s < 64; s++ {
				vs := make([]logic.V, n)
				for i := range vs {
					vs[i] = ws[i].Get(s)
				}
				want := Eval(k, vs)
				if got.Get(s) != want {
					t.Fatalf("%v slot %d: in=%v got %v want %v", k, s, vs, got.Get(s), want)
				}
			}
		}
	}
}

func BenchmarkEvalWordNand2(b *testing.B) {
	in := []logic.Word{logic.AllOne, logic.AllZero}
	for i := 0; i < b.N; i++ {
		_ = EvalWord(Nand2, in)
	}
}

// TestEvalPackedMatchesEval pins the packed LUT to the reference Eval on
// every kind and every valid input combination.
func TestEvalPackedMatchesEval(t *testing.T) {
	in := make([]logic.V, 4)
	for k := Kind(0); k < numKinds; k++ {
		n := k.NumInputs()
		total := 1
		for i := 0; i < n; i++ {
			total *= 3
		}
		for c := 0; c < total; c++ {
			idx, rem := uint32(0), c
			for p := 0; p < n; p++ {
				v := logic.V(rem % 3)
				rem /= 3
				in[p] = v
				idx |= uint32(v) << (2 * p)
			}
			if got, want := EvalPacked(k, idx), Eval(k, in[:n]); got != want {
				t.Fatalf("%v packed idx %#x: got %v, want %v", k, idx, got, want)
			}
		}
	}
}
