package soc

import (
	"fmt"
	"math/rand"

	"scap/internal/cell"
	"scap/internal/logic"
	"scap/internal/netlist"
)

// gate-kind mix for the synthetic clouds; weights approximate the cell mix
// of a mapped 180 nm design (NAND/NOR/INV dominant).
var kindMix = []struct {
	kind   cell.Kind
	weight int
}{
	{cell.Nand2, 18}, {cell.Nor2, 12}, {cell.Inv, 14}, {cell.Buf, 6},
	{cell.And2, 8}, {cell.Or2, 8}, {cell.Nand3, 7}, {cell.Nor3, 5},
	{cell.Xor2, 5}, {cell.Xnor2, 3}, {cell.Mux2, 4}, {cell.Aoi21, 4},
	{cell.Oai21, 4}, {cell.Nand4, 3}, {cell.Nor4, 2}, {cell.And3, 3},
	{cell.Or3, 3}, {cell.Aoi22, 2}, {cell.Oai22, 2}, {cell.And4, 1},
	{cell.Or4, 1},
}

var kindMixTotal = func() int {
	t := 0
	for _, km := range kindMix {
		t += km.weight
	}
	return t
}()

// kindsByArity buckets the mix by input count for probability-balanced
// substitution.
var kindsByArity = func() map[int][]struct {
	kind   cell.Kind
	weight int
} {
	m := map[int][]struct {
		kind   cell.Kind
		weight int
	}{}
	for _, km := range kindMix {
		n := km.kind.NumInputs()
		m[n] = append(m[n], km)
	}
	return m
}()

func pickKind(r *rand.Rand) cell.Kind {
	n := r.Intn(kindMixTotal)
	for _, km := range kindMix {
		n -= km.weight
		if n < 0 {
			return km.kind
		}
	}
	return cell.Nand2
}

// pickKindArity picks a weighted random kind with the given input count.
func pickKindArity(r *rand.Rand, arity int) cell.Kind {
	bucket := kindsByArity[arity]
	total := 0
	for _, km := range bucket {
		total += km.weight
	}
	n := r.Intn(total)
	for _, km := range bucket {
		n -= km.weight
		if n < 0 {
			return km.kind
		}
	}
	return bucket[0].kind
}

// Generate builds the synthetic SOC described by cfg and returns the design
// together with the realized allocation plan.
func Generate(cfg Config) (*netlist.Design, *Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	d := netlist.New("turbo-eagle-repro", cell.New180nm())
	d.NumBlocks = NumBlocks
	d.BlockNames = make([]string, NumBlocks)
	for b := range d.BlockNames {
		d.BlockNames[b] = BlockName(b)
	}
	for _, ds := range cfg.Domains {
		d.Domains = append(d.Domains, netlist.DomainInfo{
			Name: ds.Name, FreqMHz: ds.FreqMHz, PeriodNs: 1000 / ds.FreqMHz,
		})
	}

	pis := make([]netlist.NetID, cfg.NumPIs)
	for i := range pis {
		pis[i] = d.AddPI(fmt.Sprintf("pi%d", i))
	}
	// Bus-enable pins gate every cross-block import (real bus interfaces
	// have output enables). With fill-0 they stay at 0, isolating blocks
	// from each other's switching — the property the paper's procedure
	// exploits; random fill drives the buses half the time.
	busEn := make([]netlist.NetID, cfg.NumBusEnables)
	for i := range busEn {
		busEn[i] = d.AddPI(fmt.Sprintf("bus_en%d", i))
	}

	plan := &Plan{Scale: cfg.Scale, TestPeriodNs: cfg.TestPeriodNs}
	// exports[dom] collects gate output nets available for cross-block
	// import within the same clock domain (the bus stand-in).
	exports := make([][]netlist.NetID, len(cfg.Domains))
	var poCandidates []netlist.NetID

	g := &islandGen{cfg: &cfg, d: d, r: r, pis: pis, busEn: busEn,
		fanout:  make(map[netlist.NetID]int),
		zeroVal: make(map[netlist.NetID]logic.V),
		prob:    make(map[netlist.NetID]float64)}
	for _, p := range pis {
		g.zeroVal[p] = logic.Zero
		g.prob[p] = 0.5
	}
	for _, p := range busEn {
		g.zeroVal[p] = logic.Zero
		g.prob[p] = 0.5
	}

	for dom := range cfg.Domains {
		ds := &cfg.Domains[dom]
		dp := DomainPlan{Name: ds.Name, FreqMHz: ds.FreqMHz}
		shareSum := 0.0
		for _, s := range ds.BlockShare {
			shareSum += s
		}
		for b := 0; b < NumBlocks; b++ {
			if ds.BlockShare[b] == 0 {
				continue
			}
			nFF := int(float64(ds.FullFlops)*ds.BlockShare[b]/shareSum)/cfg.Scale + 1
			tops := g.island(dom, b, nFF, &exports[dom])
			poCandidates = append(poCandidates, tops...)
			dp.FlopsPerBlock[b] = nFF
			dp.Flops += nFF
		}
		plan.Domains = append(plan.Domains, dp)
	}

	// Mark primary outputs on a sample of deep nets (unmeasured during
	// at-speed test, per the paper, but present in the design).
	for i := 0; i < cfg.NumPOs && len(poCandidates) > 0; i++ {
		d.MarkPO(poCandidates[r.Intn(len(poCandidates))])
	}

	// Tag the negative-edge flops: a handful of clka-domain flops in B6
	// (the paper keeps its 22 negative-edge cells on a separate chain).
	want := (cfg.NegEdgeFlops + cfg.Scale - 1) / cfg.Scale
	for _, f := range d.Flops {
		if want == 0 {
			break
		}
		inst := d.Inst(f)
		if inst.Domain == 0 && inst.Block == B6 {
			inst.NegEdge = true
			want--
		}
	}

	if err := d.Check(); err != nil {
		return nil, nil, fmt.Errorf("soc: generated design invalid: %w", err)
	}
	return d, plan, nil
}

// probOf returns the tracked signal probability of a net (0.5 if unknown).
func (g *islandGen) probOf(n netlist.NetID) float64 {
	if p, ok := g.prob[n]; ok {
		return p
	}
	return 0.5
}

// correlated reports whether candidate net c duplicates, inverts, or is
// inverted by one of the already chosen inputs (one level deep).
func (g *islandGen) correlated(chosen []netlist.NetID, c netlist.NetID) bool {
	invOf := func(n netlist.NetID) netlist.NetID {
		if drv := g.d.Nets[n].Driver; drv != netlist.NoInst {
			inst := g.d.Inst(drv)
			if inst.Kind == cell.Inv || inst.Kind == cell.Buf {
				return inst.In[0]
			}
		}
		return netlist.NoNet
	}
	ci := invOf(c)
	for _, p := range chosen {
		if p == c || invOf(p) == c || ci == p || (ci != netlist.NoNet && ci == invOf(p)) {
			return true
		}
	}
	return false
}

// balanceDist measures how far a probability sits from 0.5.
func balanceDist(p float64) float64 {
	if p < 0.5 {
		return 0.5 - p
	}
	return p - 0.5
}

// islandGen carries the state shared across island builds.
type islandGen struct {
	cfg    *Config
	d      *netlist.Design
	r      *rand.Rand
	pis    []netlist.NetID
	busEn  []netlist.NetID
	fanout map[netlist.NetID]int
	// zeroVal caches each net's value under the all-zero state (flops and
	// PIs at 0); it drives the quiet-zero flop D-input bias.
	zeroVal map[netlist.NetID]logic.V
	// prob tracks an approximate signal probability P(net=1) under random
	// states, propagated with an independence assumption. Gate kinds are
	// chosen to keep deep nets near 0.5 — uncorrected random logic drifts
	// to extreme probabilities with depth, which freezes state bits and
	// destroys transition-fault testability (real mapped logic is
	// probability-balanced).
	prob map[netlist.NetID]float64
}

// probEval estimates P(out=1) for a gate kind given input probabilities,
// assuming input independence.
func probEval(k cell.Kind, p []float64) float64 {
	prod := func(xs []float64) float64 {
		v := 1.0
		for _, x := range xs {
			v *= x
		}
		return v
	}
	inv := func(xs []float64) []float64 {
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = 1 - x
		}
		return out
	}
	switch k {
	case cell.Inv:
		return 1 - p[0]
	case cell.Buf:
		return p[0]
	case cell.And2, cell.And3, cell.And4:
		return prod(p)
	case cell.Nand2, cell.Nand3, cell.Nand4:
		return 1 - prod(p)
	case cell.Or2, cell.Or3, cell.Or4:
		return 1 - prod(inv(p))
	case cell.Nor2, cell.Nor3, cell.Nor4:
		return prod(inv(p))
	case cell.Xor2:
		return p[0] + p[1] - 2*p[0]*p[1]
	case cell.Xnor2:
		return 1 - (p[0] + p[1] - 2*p[0]*p[1])
	case cell.Mux2:
		return (1-p[2])*p[0] + p[2]*p[1]
	case cell.Aoi21:
		ab := p[0] * p[1]
		return 1 - (ab + p[2] - ab*p[2])
	case cell.Oai21:
		return 1 - (p[0]+p[1]-p[0]*p[1])*p[2]
	case cell.Aoi22:
		ab, cd := p[0]*p[1], p[2]*p[3]
		return 1 - (ab + cd - ab*cd)
	case cell.Oai22:
		return 1 - (p[0]+p[1]-p[0]*p[1])*(p[2]+p[3]-p[2]*p[3])
	default:
		return 0.5
	}
}

// island creates one (domain, block) logic island with nFF flops and a
// combinational cloud, importing a CrossFrac fraction of gate inputs from
// nets already exported by other blocks of the same domain. It returns the
// island's deepest-level nets (primary-output candidates) and appends its
// own exportable nets to *exports.
func (g *islandGen) island(dom, block, nFF int, exports *[]netlist.NetID) []netlist.NetID {
	cfg, d, r := g.cfg, g.d, g.r
	prefix := fmt.Sprintf("%s_%s", cfg.Domains[dom].Name, BlockName(block))

	// Flop output nets first; flop instances are added last, once their D
	// nets exist.
	qnets := make([]netlist.NetID, nFF)
	for i := range qnets {
		qnets[i] = d.AddNet(fmt.Sprintf("%s_ff%d_q", prefix, i))
		g.zeroVal[qnets[i]] = logic.Zero
		g.prob[qnets[i]] = 0.5
	}

	// Level 0: flop outputs plus a few chip PIs.
	depth := cfg.Depth
	byLevel := make([][]netlist.NetID, depth+1)
	byLevel[0] = append([]netlist.NetID{}, qnets...)
	nPI := 2 + nFF/16
	for i := 0; i < nPI && len(g.pis) > 0; i++ {
		byLevel[0] = append(byLevel[0], g.pis[r.Intn(len(g.pis))])
	}

	nGates := int(float64(nFF) * cfg.GatesPerFlop)
	if nGates < depth {
		nGates = depth
	}

	// pick chooses an input net from levels [lo, hi], preferring the less
	// loaded of two random candidates to keep fanout balanced.
	pick := func(lo, hi int) netlist.NetID {
		for tries := 0; ; tries++ {
			lv := lo + r.Intn(hi-lo+1)
			if len(byLevel[lv]) > 0 {
				cands := byLevel[lv]
				a := cands[r.Intn(len(cands))]
				b := cands[r.Intn(len(cands))]
				if g.fanout[b] < g.fanout[a] {
					a = b
				}
				g.fanout[a]++
				return a
			}
			if tries > 4*depth {
				// Degenerate small island: fall back to level 0.
				a := byLevel[0][r.Intn(len(byLevel[0]))]
				g.fanout[a]++
				return a
			}
		}
	}

	for gi := 0; gi < nGates; gi++ {
		// The first `depth` gates seed one net per level so every level is
		// populated; the rest are spread uniformly.
		var lv int
		if gi < depth {
			lv = gi + 1
		} else {
			lv = 1 + r.Intn(depth)
		}
		kind := pickKind(r)
		nin := kind.NumInputs()
		in := make([]netlist.NetID, nin)
		// Pin 0 comes from the immediately preceding level, creating long
		// sensitizable chains through the cloud.
		in[0] = pick(lv-1, lv-1)
		for p := 1; p < nin; p++ {
			if r.Float64() < cfg.CrossFrac && len(*exports) > 0 && len(g.busEn) > 0 {
				imp := (*exports)[r.Intn(len(*exports))]
				g.fanout[imp]++
				// Gate the import with a bus enable so untargeted blocks
				// can be isolated by filling the enables with 0.
				en := g.busEn[r.Intn(len(g.busEn))]
				gated := d.AddNet(fmt.Sprintf("%s_bus%d_%d", prefix, gi, p))
				d.AddInst(fmt.Sprintf("%s_busg%d_%d", prefix, gi, p), cell.And2,
					[]netlist.NetID{imp, en}, gated, block)
				g.prob[gated] = 0.5 * g.probOf(imp)
				g.zeroVal[gated] = logic.Zero
				in[p] = gated
				continue
			}
			in[p] = pick(0, lv-1)
			// Avoid trivially correlated inputs (duplicates or a signal and
			// its direct inverse), which create constant nets like
			// NAND(a, !a) that poison transition-fault testability.
			for tries := 0; tries < 4 && g.correlated(in[:p], in[p]); tries++ {
				in[p] = pick(0, lv-1)
			}
		}
		// Probability balancing: among same-arity candidates, keep the one
		// whose output probability stays closest to 0.5.
		ps := make([]float64, nin)
		for p, n := range in {
			ps[p] = g.probOf(n)
		}
		best, bestDist := kind, balanceDist(probEval(kind, ps))
		for try := 0; try < 3; try++ {
			alt := pickKindArity(r, nin)
			if dd := balanceDist(probEval(alt, ps)); dd < bestDist {
				best, bestDist = alt, dd
			}
		}
		kind = best
		out := d.AddNet(fmt.Sprintf("%s_n%d", prefix, gi))
		d.AddInst(fmt.Sprintf("%s_g%d", prefix, gi), kind, in, out, block)
		byLevel[lv] = append(byLevel[lv], out)
		g.prob[out] = probEval(kind, ps)
		// Track the gate's value under the all-zero state.
		zin := make([]logic.V, nin)
		for p, n := range in {
			zin[p] = g.zeroVal[n]
		}
		g.zeroVal[out] = cell.Eval(kind, zin)
	}

	// Enable pool for the hold muxes: each enable is a two-input AND decode
	// of shallow state (the synthesis image of clock-gating conditions).
	// At least one input sits at 0 in the all-zero state, so the enable is
	// off there and a single scan care bit almost never flips it — under
	// fill-0 the gated flops stay held, while random fill activates an
	// enable with probability ~0.25.
	nEn := 2 + nFF/16
	enables := make([]netlist.NetID, 0, nEn)
	pickZero := func() netlist.NetID {
		n := pick(0, 2)
		for tries := 0; tries < 8 && g.zeroVal[n] != logic.Zero; tries++ {
			n = pick(0, 2)
		}
		return n
	}
	for i := 0; i < nEn; i++ {
		a, b := pickZero(), pick(0, 2)
		en := d.AddNet(fmt.Sprintf("%s_en%d", prefix, i))
		d.AddInst(fmt.Sprintf("%s_enand%d", prefix, i), cell.And2,
			[]netlist.NetID{a, b}, en, block)
		g.zeroVal[en] = g.zeroVal[a].And(g.zeroVal[b])
		g.prob[en] = g.probOf(a) * g.probOf(b)
		enables = append(enables, en)
	}

	// Flop D inputs come from the deep two-thirds of the cloud so that
	// capture paths are long (the paper's STW ~ half the test period).
	deepLo := 2 * depth / 3
	if deepLo < 1 {
		deepLo = 1
	}
	for i, q := range qnets {
		dnet := pick(deepLo, depth)
		// Quiet-zero bias: most flops re-capture 0 when the design sits in
		// the all-zero state, so that state is quasi-quiescent.
		if r.Float64() < cfg.QuietZeroBias {
			for tries := 0; tries < 40 && g.zeroVal[dnet] != logic.Zero; tries++ {
				dnet = pick(deepLo, depth)
			}
		}
		din := dnet
		if r.Float64() < cfg.HoldFrac {
			// Hold mux: the flop keeps its value unless its enable is on.
			en := enables[r.Intn(len(enables))]
			g.fanout[en]++
			g.fanout[q]++
			mo := d.AddNet(fmt.Sprintf("%s_hold%d", prefix, i))
			d.AddInst(fmt.Sprintf("%s_holdm%d", prefix, i), cell.Mux2,
				[]netlist.NetID{q, dnet, en}, mo, block)
			g.zeroVal[mo] = logic.Zero
			pe := g.probOf(en)
			g.prob[mo] = (1-pe)*0.5 + pe*g.probOf(dnet)
			din = mo
		}
		f := d.AddInst(fmt.Sprintf("%s_ff%d", prefix, i), cell.DFF,
			[]netlist.NetID{din}, q, block)
		d.SetDomain(f, dom, false)
		g.zeroVal[q] = logic.Zero
	}

	// Export mid-and-deep nets for cross-block wiring; return deepest nets
	// as PO candidates.
	for lv := depth / 2; lv <= depth; lv++ {
		*exports = append(*exports, byLevel[lv]...)
	}
	return byLevel[depth]
}
