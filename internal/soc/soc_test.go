package soc

import (
	"testing"

	"scap/internal/netlist"
)

func genSmall(t *testing.T, seed int64) (*netlist.Design, *Plan) {
	t.Helper()
	cfg := DefaultConfig(64)
	cfg.Seed = seed
	d, p, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, p
}

func TestGenerateValidDesign(t *testing.T) {
	d, _ := genSmall(t, 1)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	if len(d.Flops) == 0 || d.NumGates() == 0 {
		t.Fatal("empty design")
	}
}

func TestPlanMatchesDesign(t *testing.T) {
	d, p := genSmall(t, 1)
	s, err := d.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Flops, p.TotalFlops(); got != want {
		t.Fatalf("flop count: design %d, plan %d", got, want)
	}
	for dom, dp := range p.Domains {
		if s.FlopsPerDomain[dom] != dp.Flops {
			t.Errorf("domain %s: design %d flops, plan %d",
				dp.Name, s.FlopsPerDomain[dom], dp.Flops)
		}
	}
	// clka must be the dominant domain and span all six blocks.
	if p.Domains[0].Name != "clka" {
		t.Fatal("domain 0 is not clka")
	}
	for dom := 1; dom < len(p.Domains); dom++ {
		if p.Domains[dom].Flops >= p.Domains[0].Flops {
			t.Errorf("clka not dominant vs %s", p.Domains[dom].Name)
		}
	}
	if p.Domains[0].BlocksCovered() != "B1 to B6" {
		t.Errorf("clka covers %q", p.Domains[0].BlocksCovered())
	}
	// B5 holds the largest clka share.
	for b := 0; b < NumBlocks; b++ {
		if b != B5 && p.Domains[0].FlopsPerBlock[b] >= p.Domains[0].FlopsPerBlock[B5] {
			t.Errorf("B5 not the largest clka block (B%d has %d vs %d)",
				b+1, p.Domains[0].FlopsPerBlock[b], p.Domains[0].FlopsPerBlock[B5])
		}
	}
}

func TestDeterminism(t *testing.T) {
	d1, _ := genSmall(t, 42)
	d2, _ := genSmall(t, 42)
	if d1.NumInsts() != d2.NumInsts() || d1.NumNets() != d2.NumNets() {
		t.Fatal("same seed produced different sizes")
	}
	for i := range d1.Insts {
		a, b := &d1.Insts[i], &d2.Insts[i]
		if a.Name != b.Name || a.Kind != b.Kind || a.Out != b.Out {
			t.Fatalf("instance %d differs: %+v vs %+v", i, a, b)
		}
		for p := range a.In {
			if a.In[p] != b.In[p] {
				t.Fatalf("instance %d pin %d differs", i, p)
			}
		}
	}
	d3, _ := genSmall(t, 43)
	same := d1.NumInsts() == d3.NumInsts()
	if same {
		diff := false
		for i := range d1.Insts {
			if len(d1.Insts[i].In) != len(d3.Insts[i].In) {
				diff = true
				break
			}
			for p := range d1.Insts[i].In {
				if d1.Insts[i].In[p] != d3.Insts[i].In[p] {
					diff = true
					break
				}
			}
			if diff {
				break
			}
		}
		if !diff {
			t.Fatal("different seeds produced identical wiring")
		}
	}
}

func TestClockDomainIsolation(t *testing.T) {
	d, _ := genSmall(t, 1)
	// Every flop's D-input fanin cone must contain only flops of the same
	// domain: launch-off-capture per domain relies on this.
	for _, f := range d.Flops {
		inst := d.Inst(f)
		cone := d.FaninCone(inst.In[0])
		for _, src := range cone {
			s := d.Inst(src)
			if s.IsFlop() && s.Domain != inst.Domain {
				t.Fatalf("flop %s (domain %d) has cross-domain fanin from %s (domain %d)",
					inst.Name, inst.Domain, s.Name, s.Domain)
			}
		}
	}
}

func TestNegativeEdgeFlops(t *testing.T) {
	d, _ := genSmall(t, 1)
	s, err := d.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.NegEdgeFlops == 0 {
		t.Fatal("no negative-edge flops tagged")
	}
	for _, f := range d.Flops {
		inst := d.Inst(f)
		if inst.NegEdge && inst.Domain != 0 {
			t.Fatalf("negative-edge flop %s outside clka", inst.Name)
		}
	}
}

func TestDepthReached(t *testing.T) {
	cfg := DefaultConfig(64)
	d, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ml, err := d.MaxLevel()
	if err != nil {
		t.Fatal(err)
	}
	if int(ml) < cfg.Depth {
		t.Fatalf("max level %d below configured depth %d", ml, cfg.Depth)
	}
}

func TestScaleReducesSize(t *testing.T) {
	d64, _ := genSmall(t, 1)
	cfg := DefaultConfig(32)
	d32, _, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d32.Flops) <= len(d64.Flops) {
		t.Fatalf("scale 32 (%d flops) not larger than scale 64 (%d flops)",
			len(d32.Flops), len(d64.Flops))
	}
}

func TestConfigValidate(t *testing.T) {
	bad := DefaultConfig(8)
	bad.Depth = 1
	if err := bad.Validate(); err == nil {
		t.Error("Depth=1 accepted")
	}
	bad = DefaultConfig(8)
	bad.CrossFrac = 0.9
	if err := bad.Validate(); err == nil {
		t.Error("CrossFrac=0.9 accepted")
	}
	bad = DefaultConfig(8)
	bad.Domains = nil
	if err := bad.Validate(); err == nil {
		t.Error("no domains accepted")
	}
	bad = DefaultConfig(8)
	bad.Domains[0].FullFlops = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero-size domain accepted")
	}
	bad = DefaultConfig(8)
	bad.TestPeriodNs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero test period accepted")
	}
	if DefaultConfig(0).Scale != 1 {
		t.Error("scale 0 should clamp to 1")
	}
}

func TestBlocksCoveredFormatting(t *testing.T) {
	p := DomainPlan{FlopsPerBlock: [NumBlocks]int{0, 0, 5, 0, 0, 0}}
	if got := p.BlocksCovered(); got != "B3" {
		t.Errorf("single block: %q", got)
	}
	p = DomainPlan{FlopsPerBlock: [NumBlocks]int{1, 1, 1, 1, 1, 1}}
	if got := p.BlocksCovered(); got != "B1 to B6" {
		t.Errorf("full range: %q", got)
	}
	p = DomainPlan{FlopsPerBlock: [NumBlocks]int{1, 0, 1, 0, 0, 0}}
	if got := p.BlocksCovered(); got != "B1,B3" {
		t.Errorf("sparse: %q", got)
	}
	p = DomainPlan{}
	if got := p.BlocksCovered(); got != "-" {
		t.Errorf("empty: %q", got)
	}
}
