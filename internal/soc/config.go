// Package soc generates the synthetic system-on-chip used throughout the
// reproduction. It stands in for the paper's proprietary TI "Turbo-Eagle"
// dual-processor SOC: six floorplan blocks B1..B6 stitched by bus-like
// cross-block nets, six clock domains with the paper's scan-flop split
// (Table 2), a handful of negative-edge flops, and combinational clouds
// deep enough that sensitized path delays land near half the 20 ns test
// clock period, matching the paper's switching-time-frame observations.
//
// Everything is deterministic for a given Config (seeded math/rand), and
// the whole design scales down by an integer factor so the full experiment
// suite runs quickly at small scale while preserving all structural ratios.
package soc

import "fmt"

// NumBlocks is the number of floorplan blocks, B1..B6 (Figure 1).
const NumBlocks = 6

// Block indices, matching the paper's names.
const (
	B1 = iota
	B2
	B3
	B4
	B5
	B6
)

// DomainSpec describes one clock domain at full (paper) scale.
type DomainSpec struct {
	Name    string
	FreqMHz float64
	// FullFlops is the flop count at scale 1 (the paper's design).
	FullFlops int
	// BlockShare distributes the domain's flops over blocks; zero entries
	// mean the domain has no flops in that block. Shares are normalized.
	BlockShare [NumBlocks]float64
}

// Config controls the generator.
type Config struct {
	Seed int64

	// Scale divides every full-scale flop count; 1 reproduces the paper's
	// ~23 K scan flops, 8 (the default) yields ~2.9 K.
	Scale int

	// GatesPerFlop sets combinational cloud size relative to flop count.
	GatesPerFlop float64

	// Depth is the target combinational depth of each cloud.
	Depth int

	// CrossFrac is the fraction of gate inputs sourced from another block of
	// the same clock domain (the AMBA-bus stand-in).
	CrossFrac float64

	// NumPIs / NumPOs are chip-level pin counts (PIs are held constant
	// during test, POs are unmeasured, per the paper).
	NumPIs, NumPOs int

	// NumBusEnables is the number of bus-enable pins gating cross-block
	// imports (0 leaves the bus ungated).
	NumBusEnables int

	// NegEdgeFlops is the number of negative-edge scan flops at full scale
	// (the paper has 22, placed on a separate chain).
	NegEdgeFlops int

	// TestPeriodNs is the launch-to-capture test clock period used by the
	// at-speed experiments (the paper's analyses use 20 ns).
	TestPeriodNs float64

	// QuietZeroBias is the fraction of flops whose D input is chosen from
	// nets that evaluate to 0 under the all-zero state, making the all-0
	// scan state quasi-quiescent. Real designs behave this way around
	// their reset state; it is the property the paper's fill-0 strategy
	// exploits to keep untargeted blocks quiet during launch-off-capture.
	QuietZeroBias float64

	// HoldFrac is the fraction of flops guarded by a hold mux
	// (D' = en ? D : Q) — the synthesis image of clock gating / datapath
	// enables. Enables evaluate to 0 in the all-zero state, so fill-0
	// patterns update only the logic they deliberately drive, while random
	// fill activates roughly half the enables. This localization is what
	// keeps real blocks' per-pattern switching a small fraction of the
	// block even when patterns carry care bits.
	HoldFrac float64

	// Domains lists all clock domains at full scale.
	Domains []DomainSpec
}

// DefaultConfig reproduces the paper's design characteristics (Tables 1–2)
// at the given scale divisor.
func DefaultConfig(scale int) Config {
	if scale < 1 {
		scale = 1
	}
	return Config{
		Seed:          1,
		Scale:         scale,
		GatesPerFlop:  4.0,
		Depth:         26,
		CrossFrac:     0.04,
		NumPIs:        96,
		NumPOs:        64,
		NumBusEnables: 8,
		NegEdgeFlops:  22,
		TestPeriodNs:  20,
		QuietZeroBias: 0.97,
		HoldFrac:      0.9,
		Domains: []DomainSpec{
			// clka is the dominant domain: ~18 K flops spanning B1..B6, with
			// B5 (the central hot block) holding the largest share.
			{Name: "clka", FreqMHz: 100, FullFlops: 17797,
				BlockShare: [NumBlocks]float64{0.08, 0.10, 0.12, 0.10, 0.45, 0.15}},
			{Name: "clkb", FreqMHz: 66, FullFlops: 1100,
				BlockShare: [NumBlocks]float64{1, 0, 0, 0, 0, 0}},
			{Name: "clkc", FreqMHz: 48, FullFlops: 950,
				BlockShare: [NumBlocks]float64{0, 0, 1, 0, 0, 0}},
			{Name: "clkd", FreqMHz: 60, FullFlops: 1210,
				BlockShare: [NumBlocks]float64{0, 0, 0, 0, 0, 1}},
			{Name: "clke", FreqMHz: 33, FullFlops: 880,
				BlockShare: [NumBlocks]float64{0, 0, 0, 0, 0, 1}},
			{Name: "clkf", FreqMHz: 75, FullFlops: 1086,
				BlockShare: [NumBlocks]float64{0, 1, 0, 0, 0, 0}},
		},
	}
}

// Validate reports configuration problems.
func (c *Config) Validate() error {
	if c.Scale < 1 {
		return fmt.Errorf("soc: Scale must be >= 1, got %d", c.Scale)
	}
	if c.GatesPerFlop <= 0 {
		return fmt.Errorf("soc: GatesPerFlop must be positive")
	}
	if c.Depth < 2 {
		return fmt.Errorf("soc: Depth must be >= 2")
	}
	if c.CrossFrac < 0 || c.CrossFrac > 0.5 {
		return fmt.Errorf("soc: CrossFrac %v out of range [0, 0.5]", c.CrossFrac)
	}
	if len(c.Domains) == 0 {
		return fmt.Errorf("soc: no clock domains")
	}
	if c.TestPeriodNs <= 0 {
		return fmt.Errorf("soc: TestPeriodNs must be positive")
	}
	if c.QuietZeroBias < 0 || c.QuietZeroBias > 1 {
		return fmt.Errorf("soc: QuietZeroBias %v out of range [0, 1]", c.QuietZeroBias)
	}
	if c.HoldFrac < 0 || c.HoldFrac > 1 {
		return fmt.Errorf("soc: HoldFrac %v out of range [0, 1]", c.HoldFrac)
	}
	for i := range c.Domains {
		d := &c.Domains[i]
		if d.FullFlops <= 0 || d.FreqMHz <= 0 {
			return fmt.Errorf("soc: domain %s has non-positive size or frequency", d.Name)
		}
		sum := 0.0
		for _, s := range d.BlockShare {
			if s < 0 {
				return fmt.Errorf("soc: domain %s has negative block share", d.Name)
			}
			sum += s
		}
		if sum == 0 {
			return fmt.Errorf("soc: domain %s covers no blocks", d.Name)
		}
	}
	return nil
}

// BlockName returns the paper's name for block index b (B1..B6).
func BlockName(b int) string { return fmt.Sprintf("B%d", b+1) }

// Plan records, for the generated design, how flops were allocated: the
// realized per-domain, per-block counts. It backs the Table 1 / Table 2
// experiments.
type Plan struct {
	Scale        int
	TestPeriodNs float64
	Domains      []DomainPlan
}

// DomainPlan is the realized allocation of one clock domain.
type DomainPlan struct {
	Name          string
	FreqMHz       float64
	Flops         int
	FlopsPerBlock [NumBlocks]int
}

// BlocksCovered renders the blocks a domain spans in the paper's Table 2
// style, e.g. "B1 to B6" or "B3".
func (p *DomainPlan) BlocksCovered() string {
	first, last, n := -1, -1, 0
	for b, f := range p.FlopsPerBlock {
		if f > 0 {
			if first < 0 {
				first = b
			}
			last = b
			n++
		}
	}
	switch {
	case n == 0:
		return "-"
	case n == 1:
		return BlockName(first)
	case n == last-first+1:
		return BlockName(first) + " to " + BlockName(last)
	default:
		s := ""
		for b, f := range p.FlopsPerBlock {
			if f > 0 {
				if s != "" {
					s += ","
				}
				s += BlockName(b)
			}
		}
		return s
	}
}

// TotalFlops sums the realized flop count over all domains.
func (p *Plan) TotalFlops() int {
	t := 0
	for _, d := range p.Domains {
		t += d.Flops
	}
	return t
}
