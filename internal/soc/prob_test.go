package soc

import (
	"math"
	"math/rand"
	"testing"

	"scap/internal/cell"
	"scap/internal/logic"
)

// TestProbEvalMatchesMonteCarlo validates the generator's signal-probability
// model: for independent random inputs with known P(1), the analytic
// probEval must match the empirical output probability for every cell kind.
func TestProbEvalMatchesMonteCarlo(t *testing.T) {
	lib := cell.New180nm()
	r := rand.New(rand.NewSource(8))
	const trials = 40000
	for _, k := range lib.Kinds() {
		if k.IsSequential() {
			continue
		}
		n := k.NumInputs()
		ps := make([]float64, n)
		for i := range ps {
			ps[i] = 0.15 + 0.7*r.Float64()
		}
		want := probEval(k, ps)
		ones := 0
		in := make([]logic.V, n)
		for tr := 0; tr < trials; tr++ {
			for i := range in {
				in[i] = logic.FromBool(r.Float64() < ps[i])
			}
			if cell.Eval(k, in) == logic.One {
				ones++
			}
		}
		got := float64(ones) / trials
		if math.Abs(got-want) > 0.015 {
			t.Errorf("%v: analytic %.3f vs empirical %.3f (ps=%v)", k, want, got, ps)
		}
	}
}
