package textplot

import (
	"strings"
	"testing"
)

func TestScatter(t *testing.T) {
	ys := []float64{1, 2, 3, 10, 2, 1, 8}
	s := Scatter(ys, 5, 40, 10, "SCAP", "mW")
	if !strings.Contains(s, "SCAP") || !strings.Contains(s, "threshold 5") {
		t.Fatalf("header missing:\n%s", s)
	}
	if !strings.Contains(s, "*") {
		t.Fatal("no above-threshold markers")
	}
	if !strings.Contains(s, ".") {
		t.Fatal("no below-threshold markers")
	}
	if !strings.Contains(s, "-") {
		t.Fatal("no threshold line")
	}
	if got := Scatter(nil, 5, 40, 10, "E", "mW"); !strings.Contains(got, "no data") {
		t.Fatal("empty input not handled")
	}
}

func TestCurves(t *testing.T) {
	s := Curves([]Series{
		{Label: "conventional", Ys: []float64{10, 50, 80, 90}},
		{Label: "new", Ys: []float64{5, 30, 60, 85, 90}},
	}, 40, 10, "Coverage", "%")
	if !strings.Contains(s, "a = conventional") || !strings.Contains(s, "b = new") {
		t.Fatalf("legend missing:\n%s", s)
	}
	if !strings.Contains(s, "a") || !strings.Contains(s, "b") {
		t.Fatal("curves not drawn")
	}
	if got := Curves(nil, 40, 10, "E", "%"); !strings.Contains(got, "no data") {
		t.Fatal("empty input not handled")
	}
}

func TestHeatmap(t *testing.T) {
	n := 4
	vals := make([]float64, n*n)
	vals[5] = 0.3  // above threshold
	vals[10] = 0.1 // below
	s := Heatmap(vals, n, 0.18, "IR-drop")
	if !strings.Contains(s, "@") {
		t.Fatalf("threshold marker missing:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != n+1 {
		t.Fatalf("want %d rows + header, got %d", n, len(lines))
	}
	// Row 0 is at the bottom: vals[5] is row 1 col 1, so '@' must be in
	// the second line from the bottom.
	if !strings.Contains(lines[len(lines)-2], "@") {
		t.Fatalf("hot cell in wrong row:\n%s", s)
	}
	if got := Heatmap(vals, 3, 0.1, "bad"); !strings.Contains(got, "no data") {
		t.Fatal("size mismatch not handled")
	}
}

func TestProfile(t *testing.T) {
	s := Profile([]float64{0, 1.5, -0.5, 3, 0}, 40, 11, "Endpoint delay delta", "ns")
	if !strings.Contains(s, "+") {
		t.Fatal("positive markers missing")
	}
	if !strings.Contains(s, "o") {
		t.Fatal("negative markers missing")
	}
	if got := Profile(nil, 40, 11, "E", "ns"); !strings.Contains(got, "no data") {
		t.Fatal("empty input not handled")
	}
	// All-zero input should not panic and draws just the axis.
	if got := Profile([]float64{0, 0}, 40, 11, "Z", "ns"); !strings.Contains(got, "-") {
		t.Fatal("zero input missing axis")
	}
}

func TestHistogram(t *testing.T) {
	s := Histogram([]int{5, 0, 12}, []string{"0-10%", "10-20%", "20-30%"}, 30, "slack deciles")
	if !strings.Contains(s, "####") || !strings.Contains(s, "20-30%") {
		t.Fatalf("histogram malformed:\n%s", s)
	}
	if got := Histogram(nil, nil, 10, "x"); !strings.Contains(got, "no data") {
		t.Fatal("empty not handled")
	}
	if got := Histogram([]int{1}, []string{"a", "b"}, 10, "x"); !strings.Contains(got, "no data") {
		t.Fatal("length mismatch not handled")
	}
}
