// Package textplot renders the paper's figures as ASCII plots: per-pattern
// scatter charts with a threshold line (Figures 2 and 6), multi-series
// coverage curves (Figure 4), spatial heatmaps (Figure 3), and endpoint
// delay profiles (Figure 7). Plots are deterministic text so experiment
// output can be diffed and embedded in EXPERIMENTS.md.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Scatter plots one value per index (e.g. SCAP per pattern) as a w×h chart
// with a horizontal threshold line. Values above the threshold render as
// '*', values below as '.', and the threshold row as '-'.
func Scatter(ys []float64, threshold float64, w, h int, title, yUnit string) string {
	if len(ys) == 0 || w < 8 || h < 4 {
		return title + ": (no data)\n"
	}
	maxY := threshold
	for _, y := range ys {
		if y > maxY {
			maxY = y
		}
	}
	if maxY <= 0 {
		maxY = 1
	}
	maxY *= 1.05
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	rowOf := func(y float64) int {
		r := h - 1 - int(y/maxY*float64(h-1)+0.5)
		if r < 0 {
			r = 0
		}
		if r >= h {
			r = h - 1
		}
		return r
	}
	thrRow := rowOf(threshold)
	for c := 0; c < w; c++ {
		grid[thrRow][c] = '-'
	}
	for i, y := range ys {
		c := i * (w - 1) / max(len(ys)-1, 1)
		r := rowOf(y)
		ch := byte('.')
		if y > threshold {
			ch = '*'
		}
		grid[r][c] = ch
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (max %.4g %s, threshold %.4g %s, n=%d)\n",
		title, maxY/1.05, yUnit, threshold, yUnit, len(ys))
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-8s%s%8s\n", "1", strings.Repeat(" ", max(w-16, 0)), fmt.Sprint(len(ys)))
	return b.String()
}

// Series is one named curve for Curves.
type Series struct {
	Label string
	Ys    []float64
}

// Curves plots multiple curves over a shared x index (e.g. coverage vs
// pattern count). Each series is drawn with its own rune ('a' + index in
// the legend).
func Curves(series []Series, w, h int, title, yUnit string) string {
	maxY, maxN := 0.0, 0
	for _, s := range series {
		for _, y := range s.Ys {
			if y > maxY {
				maxY = y
			}
		}
		if len(s.Ys) > maxN {
			maxN = len(s.Ys)
		}
	}
	if maxN == 0 || w < 8 || h < 4 {
		return title + ": (no data)\n"
	}
	if maxY <= 0 {
		maxY = 1
	}
	maxY *= 1.05
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range series {
		mark := byte('a' + si)
		for i, y := range s.Ys {
			c := i * (w - 1) / max(maxN-1, 1)
			r := h - 1 - int(y/maxY*float64(h-1)+0.5)
			if r < 0 {
				r = 0
			}
			if r >= h {
				r = h - 1
			}
			grid[r][c] = mark
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (max %.4g %s, x=1..%d)\n", title, maxY/1.05, yUnit, maxN)
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	for si, s := range series {
		fmt.Fprintf(&b, "  %c = %s\n", byte('a'+si), s.Label)
	}
	return b.String()
}

// heatRunes maps intensity 0..1 to shading characters.
var heatRunes = []byte(" .:-=+*#%@")

// Heatmap renders an n×n node grid of values (row 0 = bottom of the die)
// as shaded characters, flagging cells above the threshold with '@' (the
// paper's Figure 3 red regions are drops above 10% of VDD).
func Heatmap(vals []float64, n int, threshold float64, title string) string {
	if len(vals) != n*n || n < 1 {
		return title + ": (no data)\n"
	}
	maxV := 0.0
	for _, v := range vals {
		if v > maxV {
			maxV = v
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (max %.4g, '@' above %.4g)\n", title, maxV, threshold)
	for row := n - 1; row >= 0; row-- {
		for col := 0; col < n; col++ {
			v := vals[row*n+col]
			var ch byte
			switch {
			case v > threshold:
				ch = '@'
			case maxV <= 0:
				ch = heatRunes[0]
			default:
				idx := int(v / maxV * float64(len(heatRunes)-1))
				if idx >= len(heatRunes)-1 {
					idx = len(heatRunes) - 2 // reserve '@' for threshold
				}
				ch = heatRunes[idx]
			}
			b.WriteByte(ch)
			b.WriteByte(ch) // double width for aspect ratio
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Profile renders a per-endpoint value chart (the paper's Figure 7): one
// column per endpoint, '+' for positive values, 'o' for negative.
func Profile(ys []float64, w, h int, title, yUnit string) string {
	if len(ys) == 0 || w < 8 || h < 5 {
		return title + ": (no data)\n"
	}
	maxAbs := 0.0
	for _, y := range ys {
		if a := math.Abs(y); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}
	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	zero := h / 2
	for c := 0; c < w; c++ {
		grid[zero][c] = '-'
	}
	for i, y := range ys {
		c := i * (w - 1) / max(len(ys)-1, 1)
		span := float64(zero)
		r := zero - int(y/maxAbs*span+math.Copysign(0.5, y))
		if r < 0 {
			r = 0
		}
		if r >= h {
			r = h - 1
		}
		ch := byte('+')
		if y < 0 {
			ch = 'o'
		}
		if y != 0 {
			grid[r][c] = ch
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (|max| %.4g %s, n=%d)\n", title, maxAbs, yUnit, len(ys))
	for _, row := range grid {
		b.Write(row)
		b.WriteByte('\n')
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// StageRow is one row of StageTable: a (possibly indented) stage label
// and its wall time in milliseconds.
type StageRow struct {
	Label string
	Ms    float64
}

// StageTable renders a run's stage tree (already flattened to indented
// rows) as an aligned wall-time table with proportional bars — the
// human-readable exit summary of the observability layer.
func StageTable(rows []StageRow, width int, title string) string {
	if len(rows) == 0 {
		return title + ": (no stages)\n"
	}
	labelW, maxMs := 0, 0.0
	for _, r := range rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
		if r.Ms > maxMs {
			maxMs = r.Ms
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (total wall includes nested stages)\n", title)
	for _, r := range rows {
		bar := 0
		if maxMs > 0 {
			bar = int(r.Ms / maxMs * float64(width))
		}
		fmt.Fprintf(&b, "  %-*s %10.1f ms  %s\n", labelW, r.Label, r.Ms, strings.Repeat("#", bar))
	}
	return b.String()
}

// Histogram renders labeled integer buckets as horizontal bars.
func Histogram(counts []int, labels []string, width int, title string) string {
	if len(counts) == 0 || len(counts) != len(labels) {
		return title + ": (no data)\n"
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  (max %d)\n", title, maxC)
	for i, c := range counts {
		bar := 0
		if maxC > 0 {
			bar = c * width / maxC
		}
		fmt.Fprintf(&b, "%-10s %6d %s\n", labels[i], c, strings.Repeat("#", bar))
	}
	return b.String()
}
