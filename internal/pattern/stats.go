package pattern

import (
	"fmt"
	"strings"

	"scap/internal/atpg"
	"scap/internal/logic"
	"scap/internal/netlist"
)

// SetStats summarizes a pattern set's scan-state composition: the per-block
// density of 1-bits (under fill-0 a block's density is its care-bit
// activity) and the overall fill balance. The paper's Figure 6 analysis is,
// at heart, a statement about these densities.
type SetStats struct {
	Patterns int
	// OnesFrac[b] is the mean fraction of 1-valued scan bits in block b;
	// the last entry is chip-wide.
	OnesFrac []float64
	// XFrac is the fraction of don't-care (X) scan bits (non-zero only for
	// unexpanded cubes).
	XFrac float64
	// MeanSecondaries is the average compaction depth per pattern.
	MeanSecondaries float64
}

// Stats computes set statistics against the design the patterns target.
func Stats(d *netlist.Design, pats []atpg.Pattern) (*SetStats, error) {
	if len(pats) == 0 {
		return nil, fmt.Errorf("pattern: empty set")
	}
	st := &SetStats{Patterns: len(pats), OnesFrac: make([]float64, d.NumBlocks+1)}
	counts := make([]int, d.NumBlocks+1)
	ones := make([]int, d.NumBlocks+1)
	xs, total, secs := 0, 0, 0
	for i := range pats {
		p := &pats[i]
		if len(p.V1) != len(d.Flops) {
			return nil, fmt.Errorf("pattern %d: %d state bits for %d flops", i, len(p.V1), len(d.Flops))
		}
		secs += len(p.Secondaries)
		for j, f := range d.Flops {
			b := d.Inst(f).Block
			total++
			if b >= 0 {
				counts[b]++
			}
			counts[d.NumBlocks]++
			switch p.V1[j] {
			case logic.One:
				if b >= 0 {
					ones[b]++
				}
				ones[d.NumBlocks]++
			case logic.X:
				xs++
			}
		}
	}
	for b := range st.OnesFrac {
		if counts[b] > 0 {
			st.OnesFrac[b] = float64(ones[b]) / float64(counts[b])
		}
	}
	st.XFrac = float64(xs) / float64(total)
	st.MeanSecondaries = float64(secs) / float64(len(pats))
	return st, nil
}

// String renders the statistics in one line per block.
func (st *SetStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d patterns, X %.1f%%, mean secondaries %.1f; ones per block:",
		st.Patterns, 100*st.XFrac, st.MeanSecondaries)
	for i, f := range st.OnesFrac {
		if i == len(st.OnesFrac)-1 {
			fmt.Fprintf(&b, " chip=%.1f%%", 100*f)
		} else {
			fmt.Fprintf(&b, " B%d=%.1f%%", i+1, 100*f)
		}
	}
	return b.String()
}
