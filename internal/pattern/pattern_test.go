package pattern

import (
	"bytes"
	"strings"
	"testing"

	"scap/internal/atpg"
	"scap/internal/fault"
	"scap/internal/faultsim"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/scan"
	"scap/internal/sim"
	"scap/internal/soc"
)

func patternSet(t *testing.T) (*netlist.Design, []atpg.Pattern) {
	t.Helper()
	d, _, err := soc.Generate(soc.DefaultConfig(96))
	if err != nil {
		t.Fatal(err)
	}
	sc, err := scan.Insert(d, scan.Config{NumChains: 16})
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := faultsim.New(s)
	if err != nil {
		t.Fatal(err)
	}
	l := fault.Universe(d)
	res, err := atpg.Run(fs, l, sc, atpg.Options{Dom: 0, Fill: atpg.FillRandom, Seed: 1, MaxPatterns: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns")
	}
	return d, res.Patterns
}

func TestRoundTrip(t *testing.T) {
	d, pats := patternSet(t)
	var buf bytes.Buffer
	if err := Write(&buf, d, pats); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()), d)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pats) {
		t.Fatalf("read %d patterns, wrote %d", len(back), len(pats))
	}
	for i := range pats {
		if back[i].Target != pats[i].Target || back[i].Step != pats[i].Step {
			t.Fatalf("pattern %d metadata differs", i)
		}
		if len(back[i].Secondaries) != len(pats[i].Secondaries) {
			t.Fatalf("pattern %d secondaries differ", i)
		}
		for j := range pats[i].V1 {
			if back[i].V1[j] != pats[i].V1[j] {
				t.Fatalf("pattern %d V1[%d] differs", i, j)
			}
		}
		for j := range pats[i].PIs {
			if back[i].PIs[j] != pats[i].PIs[j] {
				t.Fatalf("pattern %d PIs[%d] differs", i, j)
			}
		}
	}
}

func TestReadValidatesDesign(t *testing.T) {
	d, pats := patternSet(t)
	var buf bytes.Buffer
	if err := Write(&buf, d, pats); err != nil {
		t.Fatal(err)
	}
	other, _, err := soc.Generate(soc.DefaultConfig(48))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Read(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("size-mismatched design accepted")
	}
}

func TestReadErrors(t *testing.T) {
	d, pats := patternSet(t)
	var buf bytes.Buffer
	if err := Write(&buf, d, pats[:1]); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	cases := map[string]string{
		"bad magic":     strings.Replace(good, "SCAPPAT 1", "NOPE 9", 1),
		"bad flops":     strings.Replace(good, "flops ", "flops x", 1),
		"bad bit":       strings.Replace(good, " v1 0", " v1 Z", 1),
		"truncated":     good[:len(good)/2],
		"bad attribute": strings.Replace(good, "target=", "target:", 1),
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src), d); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// X bits survive the trip.
	withX := strings.Replace(good, " pi 0", " pi X", 1)
	if !strings.Contains(withX, " pi X") {
		t.Skip("pi vector does not start with 0 in this seed")
	}
	back, err := Read(strings.NewReader(withX), d)
	if err != nil {
		t.Fatal(err)
	}
	if back[0].PIs[0].String() != "X" {
		t.Fatal("X bit lost")
	}
}

func TestStats(t *testing.T) {
	d, pats := patternSet(t)
	st, err := Stats(d, pats)
	if err != nil {
		t.Fatal(err)
	}
	if st.Patterns != len(pats) {
		t.Fatal("pattern count")
	}
	chip := st.OnesFrac[len(st.OnesFrac)-1]
	if chip <= 0.2 || chip >= 0.8 {
		t.Fatalf("random-fill chip ones fraction %.2f implausible", chip)
	}
	if st.XFrac != 0 {
		t.Fatal("expanded patterns should have no X bits")
	}
	if got := st.String(); len(got) < 20 {
		t.Fatalf("String too short: %q", got)
	}
	if _, err := Stats(d, nil); err == nil {
		t.Fatal("empty set accepted")
	}
	bad := []atpg.Pattern{{V1: make([]logic.V, 3)}}
	if _, err := Stats(d, bad); err == nil {
		t.Fatal("bad length accepted")
	}
}
