// Package pattern serializes test-pattern sets in a compact STIL-flavored
// text form, the artifact a pattern-generation flow hands to the tester
// (and the input the screening tools re-read). Each pattern carries its
// scan-in state V1 in design flop order, the constant primary-input
// vector, and its generation metadata (target fault, compaction
// secondaries, procedure step).
package pattern

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"scap/internal/atpg"
	"scap/internal/logic"
	"scap/internal/netlist"
)

// Write emits the pattern set. The header records the design name and the
// vector lengths so Read can validate against the target design.
func Write(w io.Writer, d *netlist.Design, pats []atpg.Pattern) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "SCAPPAT 1\ndesign %s\nflops %d\npis %d\npatterns %d\n",
		d.Name, len(d.Flops), len(d.PIs), len(pats))
	for i := range pats {
		p := &pats[i]
		fmt.Fprintf(bw, "pattern %d target=%d step=%d", i, p.Target, p.Step)
		if len(p.Secondaries) > 0 {
			fmt.Fprintf(bw, " secondaries=%s", joinInts(p.Secondaries))
		}
		fmt.Fprintln(bw)
		fmt.Fprintf(bw, " v1 %s\n", bits(p.V1))
		fmt.Fprintf(bw, " pi %s\n", bits(p.PIs))
	}
	return bw.Flush()
}

func bits(vs []logic.V) string {
	b := make([]byte, len(vs))
	for i, v := range vs {
		b[i] = v.String()[0]
	}
	return string(b)
}

func joinInts(xs []int) string {
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = strconv.Itoa(x)
	}
	return strings.Join(parts, ",")
}

// Read parses a pattern set written by Write and validates its vector
// lengths against d.
func Read(r io.Reader, d *netlist.Design) ([]atpg.Pattern, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 64*1024*1024)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			txt := strings.TrimSpace(sc.Text())
			if txt != "" {
				return txt, true
			}
		}
		return "", false
	}
	expect := func(prefix string) (string, error) {
		txt, ok := next()
		if !ok {
			return "", fmt.Errorf("pattern: line %d: unexpected EOF, want %q", line, prefix)
		}
		if !strings.HasPrefix(txt, prefix) {
			return "", fmt.Errorf("pattern: line %d: want %q, got %q", line, prefix, txt)
		}
		return strings.TrimSpace(strings.TrimPrefix(txt, prefix)), nil
	}

	if _, err := expect("SCAPPAT 1"); err != nil {
		return nil, err
	}
	if _, err := expect("design "); err != nil {
		return nil, err
	}
	nf, err := expectInt(expect, "flops ")
	if err != nil {
		return nil, err
	}
	np, err := expectInt(expect, "pis ")
	if err != nil {
		return nil, err
	}
	if nf != len(d.Flops) || np != len(d.PIs) {
		return nil, fmt.Errorf("pattern: file is for %d flops / %d PIs, design has %d / %d",
			nf, np, len(d.Flops), len(d.PIs))
	}
	count, err := expectInt(expect, "patterns ")
	if err != nil {
		return nil, err
	}

	pats := make([]atpg.Pattern, 0, count)
	for i := 0; i < count; i++ {
		head, err := expect("pattern ")
		if err != nil {
			return nil, err
		}
		var p atpg.Pattern
		for fi, f := range strings.Fields(head) {
			if fi == 0 {
				continue // pattern index
			}
			kv := strings.SplitN(f, "=", 2)
			if len(kv) != 2 {
				return nil, fmt.Errorf("pattern: line %d: bad attribute %q", line, f)
			}
			switch kv[0] {
			case "target":
				p.Target, err = strconv.Atoi(kv[1])
			case "step":
				p.Step, err = strconv.Atoi(kv[1])
			case "secondaries":
				for _, s := range strings.Split(kv[1], ",") {
					v, e := strconv.Atoi(s)
					if e != nil {
						err = e
						break
					}
					p.Secondaries = append(p.Secondaries, v)
				}
			}
			if err != nil {
				return nil, fmt.Errorf("pattern: line %d: %v", line, err)
			}
		}
		v1s, err := expect("v1 ")
		if err != nil {
			return nil, err
		}
		if p.V1, err = parseBits(v1s, nf); err != nil {
			return nil, fmt.Errorf("pattern: line %d: %v", line, err)
		}
		pis, err := expect("pi ")
		if err != nil {
			return nil, err
		}
		if p.PIs, err = parseBits(pis, np); err != nil {
			return nil, fmt.Errorf("pattern: line %d: %v", line, err)
		}
		pats = append(pats, p)
	}
	return pats, sc.Err()
}

func expectInt(expect func(string) (string, error), prefix string) (int, error) {
	s, err := expect(prefix)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(s)
}

func parseBits(s string, want int) ([]logic.V, error) {
	if len(s) != want {
		return nil, fmt.Errorf("vector length %d, want %d", len(s), want)
	}
	out := make([]logic.V, want)
	for i := 0; i < want; i++ {
		switch s[i] {
		case '0':
			out[i] = logic.Zero
		case '1':
			out[i] = logic.One
		case 'X':
			out[i] = logic.X
		default:
			return nil, fmt.Errorf("bad bit %q at %d", s[i], i)
		}
	}
	return out, nil
}
