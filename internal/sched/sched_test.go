package sched

import (
	"math"
	"math/rand"
	"testing"
)

func sample() []DomainTest {
	return []DomainTest{
		{Name: "clka", TimeUS: 900, PowerMW: 300},
		{Name: "clkb", TimeUS: 120, PowerMW: 80},
		{Name: "clkc", TimeUS: 100, PowerMW: 60},
		{Name: "clkd", TimeUS: 140, PowerMW: 90},
		{Name: "clke", TimeUS: 90, PowerMW: 40},
		{Name: "clkf", TimeUS: 110, PowerMW: 70},
	}
}

func TestSerialIsSum(t *testing.T) {
	tests := sample()
	s := Serial(tests)
	want := 0.0
	for _, x := range tests {
		want += x.TimeUS
	}
	if math.Abs(s.MakespanUS-want) > 1e-9 {
		t.Fatalf("serial makespan %v, want %v", s.MakespanUS, want)
	}
	if err := Check(s, tests, 1e18); err != nil {
		t.Fatal(err)
	}
}

func TestGreedyRespectsBudgetAndBeatsSerial(t *testing.T) {
	tests := sample()
	budget := 400.0
	g, err := Greedy(tests, budget)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(g, tests, budget); err != nil {
		t.Fatal(err)
	}
	if g.MakespanUS >= Serial(tests).MakespanUS {
		t.Fatalf("greedy (%v) not better than serial (%v)", g.MakespanUS, Serial(tests).MakespanUS)
	}
}

func TestOptimalNeverWorseThanGreedy(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for iter := 0; iter < 50; iter++ {
		n := 3 + r.Intn(5)
		tests := make([]DomainTest, n)
		maxP := 0.0
		for i := range tests {
			tests[i] = DomainTest{
				Name:    "d",
				TimeUS:  10 + 500*r.Float64(),
				PowerMW: 10 + 200*r.Float64(),
			}
			maxP = math.Max(maxP, tests[i].PowerMW)
		}
		budget := maxP * (1 + 1.5*r.Float64())
		g, err := Greedy(tests, budget)
		if err != nil {
			t.Fatal(err)
		}
		o, err := Optimal(tests, budget)
		if err != nil {
			t.Fatal(err)
		}
		if err := Check(o, tests, budget); err != nil {
			t.Fatal(err)
		}
		if o.MakespanUS > g.MakespanUS+1e-9 {
			t.Fatalf("optimal (%v) worse than greedy (%v)", o.MakespanUS, g.MakespanUS)
		}
		if o.MakespanUS > Serial(tests).MakespanUS+1e-9 {
			t.Fatal("optimal worse than serial")
		}
	}
}

func TestOptimalKnownCase(t *testing.T) {
	// Two pairs that fit exactly: optimal pairs them, makespan = 100+90.
	tests := []DomainTest{
		{Name: "a", TimeUS: 100, PowerMW: 60},
		{Name: "b", TimeUS: 95, PowerMW: 40},
		{Name: "c", TimeUS: 90, PowerMW: 60},
		{Name: "d", TimeUS: 85, PowerMW: 40},
	}
	o, err := Optimal(tests, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(o.MakespanUS-190) > 1e-9 {
		t.Fatalf("optimal makespan %v, want 190", o.MakespanUS)
	}
	if len(o.Sessions) != 2 {
		t.Fatalf("want 2 sessions, got %d", len(o.Sessions))
	}
}

func TestValidation(t *testing.T) {
	tests := sample()
	if _, err := Greedy(tests, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := Greedy(tests, 100); err == nil {
		t.Fatal("over-budget single domain accepted")
	}
	if _, err := Optimal(tests, 100); err == nil {
		t.Fatal("over-budget single domain accepted by Optimal")
	}
	big := make([]DomainTest, 17)
	for i := range big {
		big[i] = DomainTest{TimeUS: 1, PowerMW: 1}
	}
	if _, err := Optimal(big, 100); err == nil {
		t.Fatal("17 domains accepted by Optimal")
	}
	bad := sample()
	bad[0].TimeUS = -1
	if _, err := Greedy(bad, 500); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestCheckCatchesCorruption(t *testing.T) {
	tests := sample()
	g, err := Greedy(tests, 400)
	if err != nil {
		t.Fatal(err)
	}
	g.MakespanUS += 5
	if err := Check(g, tests, 400); err == nil {
		t.Fatal("inconsistent makespan accepted")
	}
	g, _ = Greedy(tests, 400)
	g.Sessions[0].Domains = append(g.Sessions[0].Domains, g.Sessions[0].Domains[0])
	if err := Check(g, tests, 400); err == nil {
		t.Fatal("duplicate domain accepted")
	}
	g, _ = Greedy(tests, 400)
	g.Sessions = g.Sessions[:len(g.Sessions)-1]
	if err := Check(g, tests, 400); err == nil {
		t.Fatal("missing domain accepted")
	}
}

func TestPopcount(t *testing.T) {
	if Popcount(0b1011) != 3 {
		t.Fatal("popcount")
	}
}
