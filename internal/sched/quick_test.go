package sched

import (
	"testing"
	"testing/quick"
)

// clamp turns arbitrary quick-generated values into valid domain tests.
func clampTests(times, powers [6]uint16, n uint8) []DomainTest {
	k := 2 + int(n)%5
	out := make([]DomainTest, k)
	for i := range out {
		out[i] = DomainTest{
			Name:    string(rune('a' + i)),
			TimeUS:  1 + float64(times[i]%1000),
			PowerMW: 1 + float64(powers[i]%300),
		}
	}
	return out
}

func maxPower(tests []DomainTest) float64 {
	m := 0.0
	for _, t := range tests {
		if t.PowerMW > m {
			m = t.PowerMW
		}
	}
	return m
}

// TestQuickOrderingInvariant: optimal <= greedy <= serial for any inputs,
// and every schedule passes Check.
func TestQuickOrderingInvariant(t *testing.T) {
	f := func(times, powers [6]uint16, n uint8, slack uint8) bool {
		tests := clampTests(times, powers, n)
		budget := maxPower(tests) * (1 + float64(slack%200)/100)
		s := Serial(tests)
		g, err := Greedy(tests, budget)
		if err != nil {
			return false
		}
		o, err := Optimal(tests, budget)
		if err != nil {
			return false
		}
		if Check(s, tests, budget+1e18) != nil ||
			Check(g, tests, budget) != nil ||
			Check(o, tests, budget) != nil {
			return false
		}
		return o.MakespanUS <= g.MakespanUS+1e-9 && g.MakespanUS <= s.MakespanUS+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickTightBudgetDegeneratesToSerial: with a budget only fitting the
// largest single domain, every scheduler returns the serial makespan.
func TestQuickTightBudgetDegeneratesToSerial(t *testing.T) {
	f := func(times [6]uint16, n uint8) bool {
		k := 2 + int(n)%5
		tests := make([]DomainTest, k)
		for i := range tests {
			tests[i] = DomainTest{
				Name:    "d",
				TimeUS:  1 + float64(times[i]%1000),
				PowerMW: 100, // equal power: at most one fits per session
			}
		}
		budget := 150.0
		o, err := Optimal(tests, budget)
		if err != nil {
			return false
		}
		return o.MakespanUS == Serial(tests).MakespanUS
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
