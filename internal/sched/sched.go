// Package sched implements power-constrained SOC test scheduling — the
// problem the paper's introduction motivates (its refs [5], [6]): clock
// domains can be tested in parallel to cut test time, but the summed test
// power of concurrently active domains must stay below the chip's
// functional power threshold, or the shared power grid sags exactly the
// way the paper's per-pattern analysis quantifies.
//
// Three schedulers are provided: fully serial (the safe baseline), a
// greedy first-fit-decreasing heuristic, and an exact partition-DP optimum
// (practical for the ≤16 domains real SOCs have).
package sched

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// DomainTest describes one clock domain's test session requirements.
type DomainTest struct {
	Name    string
	TimeUS  float64 // total tester time to apply the domain's pattern set
	PowerMW float64 // peak concurrent power demand while testing
}

// Session is one parallel group: all its domains are tested concurrently;
// the session lasts as long as its slowest member.
type Session struct {
	Domains []int // indexes into the input slice
	TimeUS  float64
	PowerMW float64
}

// Schedule is an ordered set of sessions.
type Schedule struct {
	Sessions   []Session
	MakespanUS float64
}

// Serial returns the one-domain-at-a-time schedule (always feasible).
func Serial(tests []DomainTest) *Schedule {
	s := &Schedule{}
	for i, t := range tests {
		s.Sessions = append(s.Sessions, Session{
			Domains: []int{i}, TimeUS: t.TimeUS, PowerMW: t.PowerMW,
		})
		s.MakespanUS += t.TimeUS
	}
	return s
}

// validate checks inputs against the budget.
func validate(tests []DomainTest, budgetMW float64) error {
	if budgetMW <= 0 {
		return fmt.Errorf("sched: power budget must be positive")
	}
	for _, t := range tests {
		if t.TimeUS < 0 || t.PowerMW < 0 {
			return fmt.Errorf("sched: domain %s has negative time or power", t.Name)
		}
		if t.PowerMW > budgetMW {
			return fmt.Errorf("sched: domain %s alone (%.1f mW) exceeds the %.1f mW budget",
				t.Name, t.PowerMW, budgetMW)
		}
	}
	return nil
}

// Greedy packs domains longest-first into sessions, adding a domain to the
// current session while the power budget allows.
func Greedy(tests []DomainTest, budgetMW float64) (*Schedule, error) {
	if err := validate(tests, budgetMW); err != nil {
		return nil, err
	}
	order := make([]int, len(tests))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return tests[order[a]].TimeUS > tests[order[b]].TimeUS
	})
	used := make([]bool, len(tests))
	s := &Schedule{}
	for _, seed := range order {
		if used[seed] {
			continue
		}
		ses := Session{Domains: []int{seed},
			TimeUS: tests[seed].TimeUS, PowerMW: tests[seed].PowerMW}
		used[seed] = true
		for _, cand := range order {
			if used[cand] || ses.PowerMW+tests[cand].PowerMW > budgetMW {
				continue
			}
			used[cand] = true
			ses.Domains = append(ses.Domains, cand)
			ses.PowerMW += tests[cand].PowerMW
			if tests[cand].TimeUS > ses.TimeUS {
				ses.TimeUS = tests[cand].TimeUS
			}
		}
		s.Sessions = append(s.Sessions, ses)
		s.MakespanUS += ses.TimeUS
	}
	return s, nil
}

// Optimal computes the minimum-makespan partition into power-feasible
// sessions by dynamic programming over domain subsets (O(3^n); n ≤ 16).
func Optimal(tests []DomainTest, budgetMW float64) (*Schedule, error) {
	if err := validate(tests, budgetMW); err != nil {
		return nil, err
	}
	n := len(tests)
	if n > 16 {
		return nil, fmt.Errorf("sched: Optimal supports at most 16 domains, got %d", n)
	}
	full := (1 << n) - 1

	// Feasibility and duration of each subset as one session.
	dur := make([]float64, full+1)
	feasible := make([]bool, full+1)
	for m := 1; m <= full; m++ {
		var p, t float64
		for i := 0; i < n; i++ {
			if m&(1<<i) != 0 {
				p += tests[i].PowerMW
				t = math.Max(t, tests[i].TimeUS)
			}
		}
		dur[m] = t
		feasible[m] = p <= budgetMW
	}

	best := make([]float64, full+1)
	choice := make([]int, full+1)
	for m := 1; m <= full; m++ {
		best[m] = math.Inf(1)
		// Fix the lowest set bit into the chosen session to avoid counting
		// each partition n! times.
		low := m & -m
		rest := m ^ low
		for sub := rest; ; sub = (sub - 1) & rest {
			ses := sub | low
			if feasible[ses] {
				if c := dur[ses] + best[m^ses]; c < best[m] {
					best[m], choice[m] = c, ses
				}
			}
			if sub == 0 {
				break
			}
		}
		if math.IsInf(best[m], 1) {
			return nil, fmt.Errorf("sched: no feasible session covers subset %b", m)
		}
	}

	s := &Schedule{MakespanUS: best[full]}
	for m := full; m != 0; {
		ses := choice[m]
		out := Session{TimeUS: dur[ses]}
		for i := 0; i < n; i++ {
			if ses&(1<<i) != 0 {
				out.Domains = append(out.Domains, i)
				out.PowerMW += tests[i].PowerMW
			}
		}
		s.Sessions = append(s.Sessions, out)
		m ^= ses
	}
	return s, nil
}

// Check verifies a schedule covers every domain exactly once within the
// budget and that the makespan is consistent.
func Check(s *Schedule, tests []DomainTest, budgetMW float64) error {
	seen := make([]bool, len(tests))
	total := 0.0
	for si, ses := range s.Sessions {
		var p, t float64
		for _, d := range ses.Domains {
			if d < 0 || d >= len(tests) {
				return fmt.Errorf("sched: session %d references domain %d", si, d)
			}
			if seen[d] {
				return fmt.Errorf("sched: domain %d scheduled twice", d)
			}
			seen[d] = true
			p += tests[d].PowerMW
			t = math.Max(t, tests[d].TimeUS)
		}
		if p > budgetMW+1e-9 {
			return fmt.Errorf("sched: session %d power %.1f exceeds budget %.1f", si, p, budgetMW)
		}
		if math.Abs(t-ses.TimeUS) > 1e-9 || math.Abs(p-ses.PowerMW) > 1e-9 {
			return fmt.Errorf("sched: session %d bookkeeping inconsistent", si)
		}
		total += ses.TimeUS
	}
	for d, ok := range seen {
		if !ok {
			return fmt.Errorf("sched: domain %d unscheduled", d)
		}
	}
	if math.Abs(total-s.MakespanUS) > 1e-9 {
		return fmt.Errorf("sched: makespan %.3f != session sum %.3f", s.MakespanUS, total)
	}
	return nil
}

// Popcount is exposed for tests of the DP's session enumeration.
func Popcount(m int) int { return bits.OnesCount(uint(m)) }
