// Package parallel provides the worker-pool primitive the per-pattern
// analysis layers fan out on: thousands of independent pattern
// evaluations (timing simulation + SCAP accounting, per-pattern grid
// solves, Monte-Carlo trials) dealt across GOMAXPROCS workers.
//
// The concurrency contract is deliberately narrow so results stay
// deterministic for any worker count:
//
//   - every worker owns its scratch state (cloned simulator, meter,
//     solver buffers), identified by the worker id passed to the body;
//   - the body writes only into index-addressed slots of pre-sized
//     output slices, never into shared accumulators;
//   - Workers == 1 runs the body inline on the caller's goroutine —
//     the exact serial path, with no pool machinery at all.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a Workers knob: any value <= 0 means "all cores"
// (runtime.GOMAXPROCS), 1 forces the exact serial path, larger values
// are taken as-is.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// For runs body(worker, i) once for every i in [0, n), fanned across
// Resolve(workers) goroutines. Worker ids are dense in
// [0, min(workers, n)), so callers can pre-build one scratch state per
// worker and index it by id. Indices are dealt from a shared counter,
// so the i handled by a given worker is scheduling-dependent — bodies
// must treat the worker id as "which scratch state" only, never as a
// partition of the data.
//
// On error the pool drains: workers stop taking new indices, and the
// error with the smallest index among those that failed is returned
// (matching what the serial path would have surfaced first). With
// workers resolved to 1, For degenerates to a plain loop with
// fail-fast semantics.
func For(workers, n int, body func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := body(0, i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := body(w, i); err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}
