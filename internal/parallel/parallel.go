// Package parallel provides the worker-pool primitive the per-pattern
// analysis layers fan out on: thousands of independent pattern
// evaluations (timing simulation + SCAP accounting, per-pattern grid
// solves, Monte-Carlo trials) dealt across GOMAXPROCS workers.
//
// The concurrency contract is deliberately narrow so results stay
// deterministic for any worker count:
//
//   - every worker owns its scratch state (cloned simulator, meter,
//     solver buffers), identified by the worker id passed to the body;
//   - the body writes only into index-addressed slots of pre-sized
//     output slices, never into shared accumulators;
//   - Workers == 1 runs the body inline on the caller's goroutine —
//     the exact serial path, with no pool machinery at all.
package parallel

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"scap/internal/obs"
)

// Pool observability: tasks dealt, per-worker busy time and pool
// utilization (busy / capacity). Timing is only taken while
// instrumentation is enabled; workers accumulate locally and flush
// once per For call.
var (
	cPoolRuns  = obs.NewCounter("parallel.runs")
	cPoolTasks = obs.NewCounter("parallel.tasks")
	cBusyNs    = obs.NewCounter("parallel.busy_ns")
	cCapNs     = obs.NewCounter("parallel.capacity_ns")
	pwBusyNs   = obs.NewPerWorker("parallel.worker_busy_ns")
	pwTasks    = obs.NewPerWorker("parallel.worker_tasks")
)

func init() {
	obs.RegisterDerived("parallel.utilization", func(c map[string]int64) (float64, bool) {
		busy, capacity := c["parallel.busy_ns"], c["parallel.capacity_ns"]
		if capacity <= 0 {
			return 0, false
		}
		return float64(busy) / float64(capacity), true
	})
}

// Resolve normalizes a Workers knob: any value <= 0 means "all cores"
// (runtime.GOMAXPROCS), 1 forces the exact serial path, larger values
// are taken as-is.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// ValidateWorkers rejects the -workers flag values the pool cannot
// honor. The programmatic knob treats every non-positive value as "all
// cores", but on a command line a negative count is almost certainly a
// typo that would silently fan out anyway — the CLIs call this right
// after flag parsing and error out instead.
func ValidateWorkers(workers int) error {
	if workers < 0 {
		return fmt.Errorf("invalid -workers %d: must be >= 0 (0 = all cores, 1 = serial, N = N workers)", workers)
	}
	return nil
}

// For runs body(worker, i) once for every i in [0, n), fanned across
// Resolve(workers) goroutines. Worker ids are dense in
// [0, min(workers, n)), so callers can pre-build one scratch state per
// worker and index it by id. Indices are dealt from a shared counter,
// so the i handled by a given worker is scheduling-dependent — bodies
// must treat the worker id as "which scratch state" only, never as a
// partition of the data.
//
// On error the pool drains: workers stop taking new indices, and the
// error with the smallest index among those that failed is returned
// (matching what the serial path would have surfaced first). With
// workers resolved to 1, For degenerates to a plain loop with
// fail-fast semantics.
func For(workers, n int, body func(worker, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	measure := obs.On()
	// Tracing rides on top of measurement (EnableTrace implies Enable):
	// the stage label and sampling stride are resolved once per For, and
	// each worker applies the stride to its own task count so the event
	// set stays deterministic per worker.
	traceOn := obs.TraceOn()
	var stage string
	var sample int64 = 1
	if traceOn {
		if stage = obs.CurrentStage(); stage == "" {
			stage = "task"
		}
		sample = int64(obs.TraceTaskSample())
	}
	var t0 time.Time
	if measure {
		t0 = time.Now()
	}
	if workers == 1 {
		// Serial path: the one worker is busy for the whole wall time.
		flush := func(tasks int64) {
			if !measure {
				return
			}
			busy := time.Since(t0).Nanoseconds()
			cPoolRuns.Add(1)
			cPoolTasks.Add(tasks)
			cBusyNs.Add(busy)
			cCapNs.Add(busy)
			pwBusyNs.Add(0, busy)
			pwTasks.Add(0, tasks)
		}
		for i := 0; i < n; i++ {
			sampled := traceOn && int64(i)%sample == 0
			var ts time.Time
			if sampled {
				ts = time.Now()
			}
			err := body(0, i)
			if sampled {
				obs.TraceTask(0, stage, ts, time.Since(ts))
			}
			if err != nil {
				flush(int64(i))
				return err
			}
		}
		flush(int64(n))
		return nil
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup

		mu       sync.Mutex
		firstIdx = n
		firstErr error

		tasksDone atomic.Int64
		busyTotal atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var busy int64
			var tasks int64
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					break
				}
				var ts time.Time
				if measure {
					ts = time.Now()
				}
				err := body(w, i)
				if measure {
					d := time.Since(ts)
					busy += d.Nanoseconds()
					if traceOn && tasks%sample == 0 {
						obs.TraceTask(w, stage, ts, d)
					}
					tasks++
				}
				if err != nil {
					mu.Lock()
					if i < firstIdx {
						firstIdx, firstErr = i, err
					}
					mu.Unlock()
					failed.Store(true)
					break
				}
			}
			if measure {
				busyTotal.Add(busy)
				tasksDone.Add(tasks)
				pwBusyNs.Add(w, busy)
				pwTasks.Add(w, tasks)
			}
		}(w)
	}
	wg.Wait()
	if measure {
		wall := time.Since(t0).Nanoseconds()
		cPoolRuns.Add(1)
		cPoolTasks.Add(tasksDone.Load())
		cBusyNs.Add(busyTotal.Load())
		cCapNs.Add(wall * int64(workers))
	}
	return firstErr
}
