package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"scap/internal/obs"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d", got)
	}
	for _, n := range []int{1, 2, 17} {
		if got := Resolve(n); got != n {
			t.Fatalf("Resolve(%d) = %d", n, got)
		}
	}
}

func TestForVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 500
		counts := make([]atomic.Int32, n)
		err := For(workers, n, func(w, i int) error {
			if w < 0 || w >= workers {
				return fmt.Errorf("worker id %d out of range [0,%d)", w, workers)
			}
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForIndexAddressedOutputDeterministic(t *testing.T) {
	const n = 1000
	want := make([]int, n)
	if err := For(1, n, func(_, i int) error { want[i] = 3*i + 1; return nil }); err != nil {
		t.Fatal(err)
	}
	got := make([]int, n)
	if err := For(8, n, func(_, i int) error { got[i] = 3*i + 1; return nil }); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("index %d: %d != %d", i, got[i], want[i])
		}
	}
}

func TestForErrorStopsAndSurfacesSmallestIndex(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int32
	err := For(4, 10000, func(_, i int) error {
		ran.Add(1)
		if i == 7 || i == 4000 {
			return fmt.Errorf("index %d: %w", i, boom)
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	// The pool must drain early: nowhere near all 10000 indices run.
	if r := ran.Load(); r == 10000 {
		t.Fatalf("pool did not stop on error (ran all %d)", r)
	}
	// Serial semantics: the error is fail-fast at the first failing index.
	err = For(1, 100, func(_, i int) error {
		if i >= 10 {
			return fmt.Errorf("index %d: %w", i, boom)
		}
		return nil
	})
	if err == nil || err.Error() != "index 10: boom" {
		t.Fatalf("serial error = %v, want index 10", err)
	}
}

func TestValidateWorkers(t *testing.T) {
	for _, w := range []int{0, 1, 8, 1000} {
		if err := ValidateWorkers(w); err != nil {
			t.Errorf("ValidateWorkers(%d) = %v, want nil", w, err)
		}
	}
	err := ValidateWorkers(-1)
	if err == nil {
		t.Fatal("ValidateWorkers(-1) accepted a negative count")
	}
	if !strings.Contains(err.Error(), "invalid -workers -1") {
		t.Errorf("error %q does not name the bad flag value", err)
	}
}

// TestForFlushesPoolMetrics checks that both the serial and pooled
// paths flush run/task counters once per For call when instrumentation
// is enabled, and record nothing while disabled.
func TestForFlushesPoolMetrics(t *testing.T) {
	runsOff, tasksOff := cPoolRuns.Value(), cPoolTasks.Value()
	if err := For(4, 50, func(_, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if cPoolRuns.Value() != runsOff || cPoolTasks.Value() != tasksOff {
		t.Fatalf("disabled run recorded metrics: runs=%d tasks=%d",
			cPoolRuns.Value()-runsOff, cPoolTasks.Value()-tasksOff)
	}

	obs.Enable()
	defer obs.Disable()
	runs0, tasks0, cap0 := cPoolRuns.Value(), cPoolTasks.Value(), cCapNs.Value()
	if err := For(4, 100, func(_, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := cPoolRuns.Value() - runs0; got != 1 {
		t.Errorf("pooled For flushed %d runs, want 1", got)
	}
	if got := cPoolTasks.Value() - tasks0; got != 100 {
		t.Errorf("pooled For flushed %d tasks, want 100", got)
	}
	if cCapNs.Value() <= cap0 {
		t.Error("pooled For did not record capacity time")
	}

	runs0, tasks0 = cPoolRuns.Value(), cPoolTasks.Value()
	if err := For(1, 10, func(_, _ int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got, gotT := cPoolRuns.Value()-runs0, cPoolTasks.Value()-tasks0; got != 1 || gotT != 10 {
		t.Errorf("serial For flushed runs=%d tasks=%d, want 1/10", got, gotT)
	}
}

func TestForEmptyAndSingle(t *testing.T) {
	if err := For(8, 0, func(_, _ int) error { t.Fatal("body ran"); return nil }); err != nil {
		t.Fatal(err)
	}
	ran := 0
	if err := For(8, 1, func(w, i int) error {
		if w != 0 || i != 0 {
			t.Fatalf("w=%d i=%d", w, i)
		}
		ran++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran %d times", ran)
	}
}
