// Package place implements the physical-design substrate: the fixed
// six-block floorplan of the paper's Figure 1 and a deterministic in-block
// grid placement. Placement coordinates feed parasitic extraction (wire
// caps and delays from distance), scan-chain ordering, the clock tree, and
// the IR-drop mesh (cell currents are injected at placed locations; block
// B5 sits at the die center, farthest from the peripheral pads, which is
// why it sees the worst IR-drop).
package place

import (
	"fmt"
	"math"
	"math/rand"

	"scap/internal/netlist"
	"scap/internal/soc"
)

// Rect is an axis-aligned rectangle in die units.
type Rect struct {
	X0, Y0, X1, Y1 float64
}

// W returns the rectangle width.
func (r Rect) W() float64 { return r.X1 - r.X0 }

// H returns the rectangle height.
func (r Rect) H() float64 { return r.Y1 - r.Y0 }

// Area returns the rectangle area.
func (r Rect) Area() float64 { return r.W() * r.H() }

// Center returns the rectangle midpoint.
func (r Rect) Center() (float64, float64) {
	return (r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2
}

// Contains reports whether (x, y) lies inside the rectangle.
func (r Rect) Contains(x, y float64) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Overlaps reports whether two rectangles intersect with positive area.
func (r Rect) Overlaps(o Rect) bool {
	return r.X0 < o.X1 && o.X0 < r.X1 && r.Y0 < o.Y1 && o.Y0 < r.Y1
}

// DieSize is the fixed die edge length in die units (~µm at the default
// 1/8 scale of the paper's 180 nm design).
const DieSize = 1000.0

// Floorplan is the chip-level geometry: die extent, one rectangle per
// block B1..B6, and a glue channel for untagged top-level logic.
type Floorplan struct {
	W, H   float64
	Blocks []Rect
	Glue   Rect
}

// NewFloorplan returns the paper's Figure 1 layout: four corner blocks
// (B1..B4), B6 on the left edge middle, and B5 — the hot block — in the
// die center.
func NewFloorplan() *Floorplan {
	s := DieSize
	return &Floorplan{
		W: s, H: s,
		Blocks: []Rect{
			soc.B1: {0.02 * s, 0.70 * s, 0.30 * s, 0.98 * s}, // top-left
			soc.B2: {0.70 * s, 0.70 * s, 0.98 * s, 0.98 * s}, // top-right
			soc.B3: {0.02 * s, 0.02 * s, 0.30 * s, 0.30 * s}, // bottom-left
			soc.B4: {0.70 * s, 0.02 * s, 0.98 * s, 0.30 * s}, // bottom-right
			soc.B5: {0.33 * s, 0.33 * s, 0.67 * s, 0.67 * s}, // center (hot)
			soc.B6: {0.02 * s, 0.34 * s, 0.28 * s, 0.66 * s}, // left middle
		},
		Glue: Rect{0.72 * s, 0.34 * s, 0.96 * s, 0.66 * s}, // routing channel
	}
}

// BlockAt returns the block index containing (x, y), or netlist.NoBlock.
func (fp *Floorplan) BlockAt(x, y float64) int {
	for b, r := range fp.Blocks {
		if r.Contains(x, y) {
			return b
		}
	}
	return netlist.NoBlock
}

// Rect returns the rectangle of block b, or the glue channel for NoBlock.
func (fp *Floorplan) Rect(b int) Rect {
	if b == netlist.NoBlock {
		return fp.Glue
	}
	return fp.Blocks[b]
}

// Place assigns a location to every instance of d inside its block's
// rectangle using a jittered grid in shuffled order, and returns the
// floorplan. Determinism: same design and seed give identical placement.
func Place(d *netlist.Design, seed int64) (*Floorplan, error) {
	fp := NewFloorplan()
	if d.NumBlocks > len(fp.Blocks) {
		return nil, fmt.Errorf("place: design has %d blocks, floorplan has %d",
			d.NumBlocks, len(fp.Blocks))
	}
	r := rand.New(rand.NewSource(seed))

	groups := make(map[int][]netlist.InstID)
	for i := range d.Insts {
		b := d.Insts[i].Block
		groups[b] = append(groups[b], netlist.InstID(i))
	}
	// Deterministic block iteration order: NoBlock last.
	order := make([]int, 0, len(groups))
	for b := 0; b < d.NumBlocks; b++ {
		if len(groups[b]) > 0 {
			order = append(order, b)
		}
	}
	if len(groups[netlist.NoBlock]) > 0 {
		order = append(order, netlist.NoBlock)
	}

	for _, b := range order {
		ids := groups[b]
		rect := fp.Rect(b)
		// Shuffle so scan ordering by location is non-trivial and wire
		// lengths are realistic (logical neighbors are physically spread).
		r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		cols := int(math.Ceil(math.Sqrt(float64(len(ids)) * rect.W() / rect.H())))
		if cols < 1 {
			cols = 1
		}
		rows := (len(ids) + cols - 1) / cols
		px, py := rect.W()/float64(cols), rect.H()/float64(rows)
		for i, id := range ids {
			cx, cy := i%cols, i/cols
			inst := d.Inst(id)
			inst.X = rect.X0 + (float64(cx)+0.25+0.5*r.Float64())*px
			inst.Y = rect.Y0 + (float64(cy)+0.25+0.5*r.Float64())*py
		}
	}
	return fp, nil
}

// Dist returns the Manhattan distance between two placed instances.
func Dist(a, b *netlist.Instance) float64 {
	return math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
}

// ASCII renders the floorplan as a w×h character grid with block labels,
// backing the Figure 1 experiment output.
func (fp *Floorplan) ASCII(w, h int) string {
	grid := make([][]byte, h)
	for y := range grid {
		grid[y] = make([]byte, w)
		for x := range grid[y] {
			grid[y][x] = '.'
		}
	}
	for b, r := range fp.Blocks {
		x0 := int(r.X0 / fp.W * float64(w))
		x1 := int(r.X1 / fp.W * float64(w))
		y0 := int(r.Y0 / fp.H * float64(h))
		y1 := int(r.Y1 / fp.H * float64(h))
		for y := y0; y < y1 && y < h; y++ {
			for x := x0; x < x1 && x < w; x++ {
				grid[h-1-y][x] = byte('1' + b)
			}
		}
		// Label at block center.
		cx, cy := r.Center()
		lx := int(cx / fp.W * float64(w))
		ly := h - 1 - int(cy/fp.H*float64(h))
		label := fmt.Sprintf("B%d", b+1)
		for i := 0; i < len(label) && lx+i < w; i++ {
			grid[ly][lx+i] = label[i]
		}
	}
	out := make([]byte, 0, (w+1)*h)
	for _, row := range grid {
		out = append(out, row...)
		out = append(out, '\n')
	}
	return string(out)
}
