package place

import (
	"strings"
	"testing"

	"scap/internal/netlist"
	"scap/internal/soc"
)

func TestFloorplanGeometry(t *testing.T) {
	fp := NewFloorplan()
	if len(fp.Blocks) != soc.NumBlocks {
		t.Fatalf("floorplan has %d blocks", len(fp.Blocks))
	}
	for b, r := range fp.Blocks {
		if r.W() <= 0 || r.H() <= 0 {
			t.Errorf("block B%d degenerate: %+v", b+1, r)
		}
		if r.X0 < 0 || r.Y0 < 0 || r.X1 > fp.W || r.Y1 > fp.H {
			t.Errorf("block B%d outside die: %+v", b+1, r)
		}
		for o := b + 1; o < len(fp.Blocks); o++ {
			if r.Overlaps(fp.Blocks[o]) {
				t.Errorf("B%d overlaps B%d", b+1, o+1)
			}
		}
		if fp.Glue.Overlaps(r) {
			t.Errorf("glue channel overlaps B%d", b+1)
		}
	}
	// B5 must be central: its center within the middle third of the die.
	cx, cy := fp.Blocks[soc.B5].Center()
	if cx < fp.W/3 || cx > 2*fp.W/3 || cy < fp.H/3 || cy > 2*fp.H/3 {
		t.Errorf("B5 not central: (%v, %v)", cx, cy)
	}
}

func TestRectHelpers(t *testing.T) {
	r := Rect{10, 20, 30, 60}
	if r.W() != 20 || r.H() != 40 || r.Area() != 800 {
		t.Fatal("dimension helpers wrong")
	}
	cx, cy := r.Center()
	if cx != 20 || cy != 40 {
		t.Fatal("center wrong")
	}
	if !r.Contains(15, 25) || r.Contains(5, 25) || r.Contains(30, 25) {
		t.Fatal("contains wrong")
	}
	if !r.Overlaps(Rect{25, 50, 40, 70}) || r.Overlaps(Rect{30, 20, 40, 60}) {
		t.Fatal("overlaps wrong")
	}
}

func TestBlockAt(t *testing.T) {
	fp := NewFloorplan()
	for b, r := range fp.Blocks {
		cx, cy := r.Center()
		if got := fp.BlockAt(cx, cy); got != b {
			t.Errorf("BlockAt center of B%d = %d", b+1, got)
		}
	}
	if got := fp.BlockAt(fp.W*0.5, fp.H*0.99); got != netlist.NoBlock {
		t.Errorf("BlockAt top channel = %d, want NoBlock", got)
	}
}

func TestPlaceAllInstancesInsideBlocks(t *testing.T) {
	cfg := soc.DefaultConfig(64)
	d, _, err := soc.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fp, err := Place(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range d.Insts {
		inst := &d.Insts[i]
		r := fp.Rect(inst.Block)
		if !r.Contains(inst.X, inst.Y) {
			t.Fatalf("instance %s placed at (%v,%v) outside %+v of block %d",
				inst.Name, inst.X, inst.Y, r, inst.Block)
		}
	}
}

func TestPlaceDeterministic(t *testing.T) {
	cfg := soc.DefaultConfig(64)
	d1, _, _ := soc.Generate(cfg)
	d2, _, _ := soc.Generate(cfg)
	if _, err := Place(d1, 9); err != nil {
		t.Fatal(err)
	}
	if _, err := Place(d2, 9); err != nil {
		t.Fatal(err)
	}
	for i := range d1.Insts {
		if d1.Insts[i].X != d2.Insts[i].X || d1.Insts[i].Y != d2.Insts[i].Y {
			t.Fatalf("placement differs at instance %d", i)
		}
	}
}

func TestDist(t *testing.T) {
	a := &netlist.Instance{X: 0, Y: 0}
	b := &netlist.Instance{X: 3, Y: 4}
	if Dist(a, b) != 7 {
		t.Fatalf("Dist = %v, want 7 (Manhattan)", Dist(a, b))
	}
}

func TestASCIIFloorplan(t *testing.T) {
	fp := NewFloorplan()
	s := fp.ASCII(40, 20)
	for b := 1; b <= 6; b++ {
		label := []string{"", "B1", "B2", "B3", "B4", "B5", "B6"}[b]
		if !strings.Contains(s, label) {
			t.Errorf("ASCII floorplan missing %s:\n%s", label, s)
		}
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("ASCII height %d", len(lines))
	}
	// B1 is top-left: the '1' fill must appear in the upper-left quadrant.
	if !strings.Contains(lines[2][:20], "1") {
		t.Errorf("B1 not in upper-left:\n%s", s)
	}
	// B4 is bottom-right.
	if !strings.Contains(lines[17][20:], "4") {
		t.Errorf("B4 not in lower-right:\n%s", s)
	}
}
