// Package faultsim implements parallel-pattern single-fault propagation
// (PPSFP) for transition delay faults under launch-off-capture: 64 pattern
// pairs are simulated at once through the good machine, and each fault's
// frame-2 stuck-at effect is propagated through a level-ordered cone with
// early exit. It provides the fault dropping that keeps ATPG fast and the
// coverage accounting behind the paper's Figure 4 curves.
package faultsim

import (
	"fmt"

	"scap/internal/cell"
	"scap/internal/fault"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/sim"
)

// Sim is a reusable transition-fault simulator for one design.
type Sim struct {
	s      *sim.Simulator
	d      *netlist.Design
	levels []int32

	// Observation points per clock domain: the D nets of that domain's
	// flops (launch-off-capture observes captured flops only; primary
	// outputs are not measured, per the paper).
	obsNets [][]netlist.NetID
	// isObs[dom][net] marks observation nets for O(1) lookup.
	isObs [][]bool
	// obsOwners[dom][net] lists the flop indexes (design flop order) whose
	// D input is that net — the flops a tester sees failing.
	obsOwners []map[netlist.NetID][]int

	// scratch state for cone propagation (reset after each fault):
	fv      []logic.Word // faulty frame-2 net values where touched
	touched []bool
	tlist   []netlist.NetID
	queued  []bool
	buckets [][]netlist.InstID // gates to evaluate, bucketed by level
}

// New builds a fault simulator on top of a zero-delay simulator.
func New(s *sim.Simulator) (*Sim, error) {
	d := s.Design()
	lv, err := d.Levels()
	if err != nil {
		return nil, fmt.Errorf("faultsim: %w", err)
	}
	ml := int32(0)
	for _, l := range lv {
		if l > ml {
			ml = l
		}
	}
	fs := &Sim{
		s: s, d: d, levels: lv,
		fv:      make([]logic.Word, d.NumNets()),
		touched: make([]bool, d.NumNets()),
		queued:  make([]bool, d.NumInsts()),
		buckets: make([][]netlist.InstID, ml+2),
	}
	fs.obsNets = make([][]netlist.NetID, len(d.Domains))
	fs.isObs = make([][]bool, len(d.Domains))
	fs.obsOwners = make([]map[netlist.NetID][]int, len(d.Domains))
	for dom := range d.Domains {
		fs.isObs[dom] = make([]bool, d.NumNets())
		fs.obsOwners[dom] = map[netlist.NetID][]int{}
	}
	for fi, f := range d.Flops {
		inst := d.Inst(f)
		dn := inst.In[0]
		fs.obsNets[inst.Domain] = append(fs.obsNets[inst.Domain], dn)
		fs.isObs[inst.Domain][dn] = true
		fs.obsOwners[inst.Domain][dn] = append(fs.obsOwners[inst.Domain][dn], fi)
	}
	return fs, nil
}

// FailMasks returns, for fault f under the batch, the per-flop failure
// signature: flop index (design flop order) -> slot mask where the flop
// captures a faulty value. Unlike Detect it propagates the whole cone (no
// early exit) so the signature is complete — the prediction a tester's
// failing-cycle log is matched against during diagnosis.
func (fs *Sim) FailMasks(b *Batch, f *fault.Fault) map[int]uint64 {
	act := fs.Activation(b, f)
	if act == 0 {
		return nil
	}
	d := fs.d
	stuck := logic.Splat(logic.Zero)
	if f.Type == fault.STF {
		stuck = logic.Splat(logic.One)
	}
	out := map[int]uint64{}
	record := func(n netlist.NetID, faulty logic.Word) {
		if !fs.isObs[b.Dom][n] {
			return
		}
		if m := b.N2[n].Diff(faulty) & act; m != 0 {
			for _, fi := range fs.obsOwners[b.Dom][n] {
				out[fi] |= m
			}
		}
	}

	fs.setFaulty(f.Net, stuck)
	record(f.Net, stuck)
	fs.scheduleLoads(f.Net)
	for lv := 1; lv < len(fs.buckets); lv++ {
		bucket := fs.buckets[lv]
		if len(bucket) == 0 {
			continue
		}
		fs.buckets[lv] = bucket[:0]
		for _, g := range bucket {
			fs.queued[g] = false
			inst := &d.Insts[g]
			var in [4]logic.Word
			for p, n := range inst.In {
				if fs.touched[n] {
					in[p] = fs.fv[n]
				} else {
					in[p] = b.N2[n]
				}
			}
			o := cell.EvalWord(inst.Kind, in[:len(inst.In)])
			cur := b.N2[inst.Out]
			if fs.touched[inst.Out] {
				cur = fs.fv[inst.Out]
			}
			if o == cur {
				continue
			}
			fs.setFaulty(inst.Out, o)
			record(inst.Out, o)
			fs.scheduleLoads(inst.Out)
		}
	}
	for _, n := range fs.tlist {
		fs.touched[n] = false
	}
	fs.tlist = fs.tlist[:0]
	for lv := range fs.buckets {
		for _, g := range fs.buckets[lv] {
			fs.queued[g] = false
		}
		fs.buckets[lv] = fs.buckets[lv][:0]
	}
	return out
}

// Batch holds the good-machine simulation of up to 64 launch-off-capture
// pattern pairs targeting one clock domain.
type Batch struct {
	Dom int
	// N1 and N2 are the per-net frame-1 (initialization) and frame-2
	// (launch/capture) good values.
	N1, N2 []logic.Word
	// V1 and V2 are the per-flop states before and at launch.
	V1, V2 []logic.Word
	// Captured is the per-flop frame-2 captured state (only meaningful for
	// flops of Dom; others hold).
	Captured []logic.Word
	// Valid masks the slots that carry real patterns.
	Valid uint64

	pis []logic.Word
}

// GoodSim simulates the good machine for a batch of launch-off-capture
// pattern pairs: v1 is the per-flop scan-in state, pis the constant
// primary-input values. Only flops of domain dom launch and capture; all
// others hold their v1 value.
func (fs *Sim) GoodSim(v1, pis []logic.Word, dom int, valid uint64) *Batch {
	b, cap1 := fs.frame1(v1, pis, dom, valid)
	d := fs.d
	v2 := make([]logic.Word, len(d.Flops))
	for i, f := range d.Flops {
		if d.Inst(f).Domain == dom {
			v2[i] = cap1[i]
		} else {
			v2[i] = v1[i]
		}
	}
	fs.frame2(b, v2)
	return b
}

// GoodSimShift simulates the good machine for launch-off-shift patterns:
// the launch state of each domain flop is the frame-1 value of its shift
// source net (previous chain cell or scan-in pin); flops absent from src
// hold.
func (fs *Sim) GoodSimShift(v1, pis []logic.Word, dom int, valid uint64,
	src map[netlist.InstID]netlist.NetID) *Batch {

	b, _ := fs.frame1(v1, pis, dom, valid)
	d := fs.d
	v2 := make([]logic.Word, len(d.Flops))
	for i, f := range d.Flops {
		if n, ok := src[f]; ok && d.Inst(f).Domain == dom {
			v2[i] = b.N1[n]
		} else {
			v2[i] = v1[i]
		}
	}
	fs.frame2(b, v2)
	return b
}

// frame1 settles the initialization frame and returns the batch shell plus
// the frame-1 captured state.
func (fs *Sim) frame1(v1, pis []logic.Word, dom int, valid uint64) (*Batch, []logic.Word) {
	s, d := fs.s, fs.d
	b := &Batch{Dom: dom, Valid: valid, V1: v1}
	if pis == nil {
		pis = make([]logic.Word, len(d.PIs)) // all-X primary inputs
	}
	b.pis = pis
	n1 := s.NewNetsW()
	s.SetPIsW(n1, pis)
	s.ApplyStateW(n1, v1)
	s.PropagateW(n1)
	b.N1 = n1
	return b, s.CaptureStateW(n1)
}

// frame2 settles the launch/capture frame for the given launch state.
func (fs *Sim) frame2(b *Batch, v2 []logic.Word) {
	s := fs.s
	n2 := s.NewNetsW()
	s.SetPIsW(n2, b.pis)
	s.ApplyStateW(n2, v2)
	s.PropagateW(n2)
	b.N2 = n2
	b.V2 = v2
	b.Captured = s.CaptureStateW(n2)
}

// Activation returns the slot mask where fault f's launch transition occurs
// (frame-1 value then frame-2 value at the site, e.g. 0→1 for slow-to-rise).
func (fs *Sim) Activation(b *Batch, f *fault.Fault) uint64 {
	n1, n2 := b.N1[f.Net], b.N2[f.Net]
	if f.Type == fault.STR {
		return n1.Zero & n2.One & b.Valid
	}
	return n1.One & n2.Zero & b.Valid
}

// Detect returns the slot mask where fault f is detected by the batch:
// the launch transition occurs and the frame-2 stuck-at effect reaches a
// captured flop of the batch's domain.
func (fs *Sim) Detect(b *Batch, f *fault.Fault) uint64 {
	act := fs.Activation(b, f)
	if act == 0 {
		return 0
	}
	d := fs.d

	// Inject the stuck value at the site in frame 2 and propagate the
	// difference through the level-ordered cone.
	stuck := logic.Splat(logic.Zero) // slow-to-rise behaves stuck-at-0 in frame 2
	if f.Type == fault.STF {
		stuck = logic.Splat(logic.One)
	}

	var detect uint64
	fs.setFaulty(f.Net, stuck)
	if fs.isObs[b.Dom][f.Net] {
		detect |= b.N2[f.Net].Diff(stuck) & act
	}
	fs.scheduleLoads(f.Net)

	for lv := 1; lv < len(fs.buckets) && detect != act; lv++ {
		bucket := fs.buckets[lv]
		if len(bucket) == 0 {
			continue
		}
		fs.buckets[lv] = bucket[:0]
		for _, g := range bucket {
			fs.queued[g] = false
			if detect == act {
				continue
			}
			inst := &d.Insts[g]
			var in [4]logic.Word
			for p, n := range inst.In {
				if fs.touched[n] {
					in[p] = fs.fv[n]
				} else {
					in[p] = b.N2[n]
				}
			}
			out := cell.EvalWord(inst.Kind, in[:len(inst.In)])
			cur := b.N2[inst.Out]
			if fs.touched[inst.Out] {
				cur = fs.fv[inst.Out]
			}
			if out == cur {
				continue
			}
			fs.setFaulty(inst.Out, out)
			if fs.isObs[b.Dom][inst.Out] {
				detect |= b.N2[inst.Out].Diff(out) & act
			}
			fs.scheduleLoads(inst.Out)
		}
	}

	// Reset scratch state.
	for _, n := range fs.tlist {
		fs.touched[n] = false
	}
	fs.tlist = fs.tlist[:0]
	for lv := range fs.buckets {
		for _, g := range fs.buckets[lv] {
			fs.queued[g] = false
		}
		fs.buckets[lv] = fs.buckets[lv][:0]
	}
	return detect
}

func (fs *Sim) setFaulty(n netlist.NetID, v logic.Word) {
	if !fs.touched[n] {
		fs.touched[n] = true
		fs.tlist = append(fs.tlist, n)
	}
	fs.fv[n] = v
}

func (fs *Sim) scheduleLoads(n netlist.NetID) {
	d := fs.d
	for _, ld := range d.Nets[n].Loads {
		inst := &d.Insts[ld.Inst]
		if inst.IsFlop() || fs.queued[ld.Inst] {
			continue
		}
		fs.queued[ld.Inst] = true
		lv := fs.levels[ld.Inst]
		fs.buckets[lv] = append(fs.buckets[lv], ld.Inst)
	}
}

// Drop runs detection for every not-yet-detected fault in subset against
// the batch and marks newly detected faults with the index of the earliest
// detecting pattern (base + slot). It returns the number of faults dropped.
func (fs *Sim) Drop(l *fault.List, subset []int, b *Batch, base int) int {
	dropped := 0
	for _, fi := range subset {
		if l.Status[fi] != fault.Undetected {
			continue
		}
		det := fs.Detect(b, &l.Faults[fi])
		if det == 0 {
			continue
		}
		slot := 0
		for det&1 == 0 {
			det >>= 1
			slot++
		}
		l.MarkDetected(fi, base+slot)
		dropped++
	}
	return dropped
}

// DetectionCounts adds, for every fault in subset, the number of batch
// patterns that detect it into counts (indexed like the fault list). It
// backs n-detect metrics: industrial flows often require every fault be
// detected n times to improve small-delay-defect screening.
func (fs *Sim) DetectionCounts(l *fault.List, subset []int, b *Batch, counts []int) {
	for _, fi := range subset {
		if det := fs.Detect(b, &l.Faults[fi]); det != 0 {
			counts[fi] += popcount64(det)
		}
	}
}

func popcount64(m uint64) int {
	n := 0
	for ; m != 0; m &= m - 1 {
		n++
	}
	return n
}
