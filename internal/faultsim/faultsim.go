// Package faultsim implements parallel-pattern single-fault propagation
// (PPSFP) for transition delay faults under launch-off-capture: 64 pattern
// pairs are simulated at once through the good machine, and each fault's
// frame-2 stuck-at effect is propagated through a level-ordered cone with
// early exit. The per-fault cone propagation additionally fans out across
// the internal/parallel worker pool (see Workers), so a sweep grades
// workers × 64 packed patterns at once. It provides the fault dropping
// that keeps ATPG fast and the coverage accounting behind the paper's
// Figure 4 curves.
package faultsim

import (
	"fmt"
	"math/bits"

	"scap/internal/cell"
	"scap/internal/fault"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/obs"
	"scap/internal/parallel"
	"scap/internal/sim"
)

// Fault-simulation observability: batches simulated, cone work per
// detection, early-exit share and drop yield, all wired into the -report
// run report. Cone gate counts accumulate in a per-call local and flush
// once per Detect, so the inner propagation loop never touches an atomic.
var (
	cBatches   = obs.NewCounter("faultsim.batches")
	cDetects   = obs.NewCounter("faultsim.detects")
	cNoAct     = obs.NewCounter("faultsim.no_activation")
	cEarlyExit = obs.NewCounter("faultsim.early_exits")
	cConeGates = obs.NewCounter("faultsim.cone_gate_evals")
	cDropped   = obs.NewCounter("faultsim.faults_dropped")
	hConeGates = obs.NewHistogram("faultsim.cone_gates_per_detect")
)

func init() {
	obs.RegisterDerived("faultsim.early_exit_share", func(c map[string]int64) (float64, bool) {
		det := c["faultsim.detects"] - c["faultsim.no_activation"]
		if det <= 0 {
			return 0, false
		}
		return float64(c["faultsim.early_exits"]) / float64(det), true
	})
}

// Sim is a reusable transition-fault simulator for one design.
//
// Concurrency: the good-machine methods (GoodSim, GoodSimShift,
// Activation) touch no Sim scratch and are safe to call concurrently.
// The cone-propagation methods (Detect, FailMasks, FailSlots) own mutable
// scratch and must not run concurrently on one Sim — Clone produces
// additional Sims sharing the immutable design/level/observability tables
// for exactly that. Drop, DetectionCounts and DetectAll shard themselves
// across Workers cloned Sims and are bit-identical for any worker count.
type Sim struct {
	s      *sim.Simulator
	d      *netlist.Design
	levels []int32

	// Workers fans DetectAll (and through it Drop and DetectionCounts)
	// across the worker pool: 0 means all cores, 1 forces the exact
	// serial path. Results are identical for any value.
	Workers int

	// Observation points per clock domain: the D nets of that domain's
	// flops (launch-off-capture observes captured flops only; primary
	// outputs are not measured, per the paper).
	obsNets [][]netlist.NetID
	// isObs[dom][net] marks observation nets for O(1) lookup.
	isObs [][]bool
	// obsOwners[dom][net] lists the flop indexes (design flop order) whose
	// D input is that net — the flops a tester sees failing.
	obsOwners []map[netlist.NetID][]int

	// scratch state for cone propagation (reset after each fault):
	fv      []logic.Word // faulty frame-2 net values where touched
	touched []bool
	tlist   []netlist.NetID
	queued  []bool
	buckets [][]netlist.InstID // gates to evaluate, bucketed by level

	// failure-signature scratch for FailSlots (lazily sized): sig is
	// indexed by flop and zeroed again before FailSlots returns.
	sig      []uint64
	sigFlops []int
	sigMasks []uint64

	// worker machinery, owned by the Sim DetectAll is called on:
	clones  []*Sim // lazily grown clone pool (clones[w] serves worker w+1)
	simsBuf []*Sim // reusable pool slice handed to parallel.For bodies
	detBuf  []uint64
}

// New builds a fault simulator on top of a zero-delay simulator.
func New(s *sim.Simulator) (*Sim, error) {
	d := s.Design()
	lv, err := d.Levels()
	if err != nil {
		return nil, fmt.Errorf("faultsim: %w", err)
	}
	ml := int32(0)
	for _, l := range lv {
		if l > ml {
			ml = l
		}
	}
	fs := &Sim{
		s: s, d: d, levels: lv,
		fv:      make([]logic.Word, d.NumNets()),
		touched: make([]bool, d.NumNets()),
		queued:  make([]bool, d.NumInsts()),
		buckets: make([][]netlist.InstID, ml+2),
	}
	fs.obsNets = make([][]netlist.NetID, len(d.Domains))
	fs.isObs = make([][]bool, len(d.Domains))
	fs.obsOwners = make([]map[netlist.NetID][]int, len(d.Domains))
	for dom := range d.Domains {
		fs.isObs[dom] = make([]bool, d.NumNets())
		fs.obsOwners[dom] = map[netlist.NetID][]int{}
	}
	for fi, f := range d.Flops {
		inst := d.Inst(f)
		dn := inst.In[0]
		fs.obsNets[inst.Domain] = append(fs.obsNets[inst.Domain], dn)
		fs.isObs[inst.Domain][dn] = true
		fs.obsOwners[inst.Domain][dn] = append(fs.obsOwners[inst.Domain][dn], fi)
	}
	return fs, nil
}

// Clone returns a Sim with private cone scratch that shares every
// immutable table (design, levels, observability) with fs — the
// per-worker constructor of the parallel fault-dropping pipeline. It is
// O(nets) for the scratch vectors and performs no per-flop analysis.
func (fs *Sim) Clone() *Sim {
	return &Sim{
		s: fs.s, d: fs.d, levels: fs.levels,
		obsNets: fs.obsNets, isObs: fs.isObs, obsOwners: fs.obsOwners,
		fv:      make([]logic.Word, fs.d.NumNets()),
		touched: make([]bool, fs.d.NumNets()),
		queued:  make([]bool, fs.d.NumInsts()),
		buckets: make([][]netlist.InstID, len(fs.buckets)),
	}
}

// pool returns n Sims usable by workers 0..n-1: fs itself plus lazily
// built clones, cached across calls so steady-state sweeps allocate
// nothing.
func (fs *Sim) pool(n int) []*Sim {
	for len(fs.clones) < n-1 {
		fs.clones = append(fs.clones, fs.Clone())
	}
	if cap(fs.simsBuf) < n {
		fs.simsBuf = make([]*Sim, n)
	}
	sims := fs.simsBuf[:n]
	sims[0] = fs
	copy(sims[1:], fs.clones[:n-1])
	return sims
}

// dets returns the reusable DetectAll result buffer sized to n.
func (fs *Sim) dets(n int) []uint64 {
	if cap(fs.detBuf) < n {
		fs.detBuf = make([]uint64, n)
	}
	return fs.detBuf[:n]
}

// FailMasks returns, for fault f under the batch, the per-flop failure
// signature: flop index (design flop order) -> slot mask where the flop
// captures a faulty value. Unlike Detect it propagates the whole cone (no
// early exit) so the signature is complete — the prediction a tester's
// failing-cycle log is matched against during diagnosis. Hot loops should
// prefer FailSlots, which reuses buffers instead of building a map.
func (fs *Sim) FailMasks(b *Batch, f *fault.Fault) map[int]uint64 {
	flops, masks := fs.FailSlots(b, f)
	if len(flops) == 0 {
		return nil
	}
	out := make(map[int]uint64, len(flops))
	for i, fi := range flops {
		out[fi] = masks[i]
	}
	return out
}

// FailSlots is the allocation-free form of FailMasks: it returns parallel
// slices (failing flop indexes in first-reached order, and the slot mask
// per flop) owned by the Sim and valid until the next FailSlots or
// FailMasks call on this Sim.
func (fs *Sim) FailSlots(b *Batch, f *fault.Fault) ([]int, []uint64) {
	fs.sigFlops = fs.sigFlops[:0]
	fs.sigMasks = fs.sigMasks[:0]
	act := fs.Activation(b, f)
	if act == 0 {
		return fs.sigFlops, fs.sigMasks
	}
	if fs.sig == nil {
		fs.sig = make([]uint64, len(fs.d.Flops))
	}
	d := fs.d
	stuck := logic.Splat(logic.Zero)
	if f.Type == fault.STF {
		stuck = logic.Splat(logic.One)
	}
	// Act-masked injection, as in Detect: the recorded signature is
	// act-masked anyway, and the tighter divergence cone is what keeps
	// per-fault signatures cheap on 64-slot batches.
	inj := logic.Select(act, b.N2[f.Net], stuck)
	record := func(n netlist.NetID, faulty logic.Word) {
		if !fs.isObs[b.Dom][n] {
			return
		}
		if m := b.N2[n].Diff(faulty) & act; m != 0 {
			for _, fi := range fs.obsOwners[b.Dom][n] {
				if fs.sig[fi] == 0 {
					fs.sigFlops = append(fs.sigFlops, fi)
				}
				fs.sig[fi] |= m
			}
		}
	}

	fs.setFaulty(f.Net, inj)
	record(f.Net, inj)
	fs.scheduleLoads(f.Net)
	for lv := 1; lv < len(fs.buckets); lv++ {
		bucket := fs.buckets[lv]
		if len(bucket) == 0 {
			continue
		}
		fs.buckets[lv] = bucket[:0]
		for _, g := range bucket {
			fs.queued[g] = false
			inst := &d.Insts[g]
			var in [4]logic.Word
			for p, n := range inst.In {
				if fs.touched[n] {
					in[p] = fs.fv[n]
				} else {
					in[p] = b.N2[n]
				}
			}
			o := cell.EvalWord(inst.Kind, in[:len(inst.In)])
			cur := b.N2[inst.Out]
			if fs.touched[inst.Out] {
				cur = fs.fv[inst.Out]
			}
			if o == cur {
				continue
			}
			fs.setFaulty(inst.Out, o)
			record(inst.Out, o)
			fs.scheduleLoads(inst.Out)
		}
	}
	for _, n := range fs.tlist {
		fs.touched[n] = false
	}
	fs.tlist = fs.tlist[:0]
	for lv := range fs.buckets {
		for _, g := range fs.buckets[lv] {
			fs.queued[g] = false
		}
		fs.buckets[lv] = fs.buckets[lv][:0]
	}
	// Drain the dense signature back to zero while building the compact
	// mask list, leaving sig clean for the next fault.
	for _, fi := range fs.sigFlops {
		fs.sigMasks = append(fs.sigMasks, fs.sig[fi])
		fs.sig[fi] = 0
	}
	return fs.sigFlops, fs.sigMasks
}

// Batch holds the good-machine simulation of up to 64 launch-off-capture
// pattern pairs targeting one clock domain.
type Batch struct {
	Dom int
	// N1 and N2 are the per-net frame-1 (initialization) and frame-2
	// (launch/capture) good values.
	N1, N2 []logic.Word
	// V1 and V2 are the per-flop states before and at launch.
	V1, V2 []logic.Word
	// Captured is the per-flop frame-2 captured state (only meaningful for
	// flops of Dom; others hold).
	Captured []logic.Word
	// Valid masks the slots that carry real patterns.
	Valid uint64

	pis []logic.Word
}

// GoodSim simulates the good machine for a batch of launch-off-capture
// pattern pairs: v1 is the per-flop scan-in state, pis the constant
// primary-input values. Only flops of domain dom launch and capture; all
// others hold their v1 value. GoodSim touches no Sim scratch and is safe
// to call concurrently.
func (fs *Sim) GoodSim(v1, pis []logic.Word, dom int, valid uint64) *Batch {
	defer obs.TraceStart().End("faultsim", "good-sim")
	b, cap1 := fs.frame1(v1, pis, dom, valid)
	d := fs.d
	v2 := make([]logic.Word, len(d.Flops))
	for i, f := range d.Flops {
		if d.Inst(f).Domain == dom {
			v2[i] = cap1[i]
		} else {
			v2[i] = v1[i]
		}
	}
	fs.frame2(b, v2)
	return b
}

// GoodSimShift simulates the good machine for launch-off-shift patterns:
// the launch state of each domain flop is the frame-1 value of its shift
// source net (previous chain cell or scan-in pin); flops absent from src
// hold.
func (fs *Sim) GoodSimShift(v1, pis []logic.Word, dom int, valid uint64,
	src map[netlist.InstID]netlist.NetID) *Batch {

	b, _ := fs.frame1(v1, pis, dom, valid)
	d := fs.d
	v2 := make([]logic.Word, len(d.Flops))
	for i, f := range d.Flops {
		if n, ok := src[f]; ok && d.Inst(f).Domain == dom {
			v2[i] = b.N1[n]
		} else {
			v2[i] = v1[i]
		}
	}
	fs.frame2(b, v2)
	return b
}

// frame1 settles the initialization frame and returns the batch shell plus
// the frame-1 captured state.
func (fs *Sim) frame1(v1, pis []logic.Word, dom int, valid uint64) (*Batch, []logic.Word) {
	cBatches.Add(1)
	s, d := fs.s, fs.d
	b := &Batch{Dom: dom, Valid: valid, V1: v1}
	if pis == nil {
		pis = make([]logic.Word, len(d.PIs)) // all-X primary inputs
	}
	b.pis = pis
	n1 := s.NewNetsW()
	s.SetPIsW(n1, pis)
	s.ApplyStateW(n1, v1)
	s.PropagateW(n1)
	b.N1 = n1
	return b, s.CaptureStateW(n1)
}

// frame2 settles the launch/capture frame for the given launch state.
func (fs *Sim) frame2(b *Batch, v2 []logic.Word) {
	s := fs.s
	n2 := s.NewNetsW()
	s.SetPIsW(n2, b.pis)
	s.ApplyStateW(n2, v2)
	s.PropagateW(n2)
	b.N2 = n2
	b.V2 = v2
	b.Captured = s.CaptureStateW(n2)
}

// Activation returns the slot mask where fault f's launch transition occurs
// (frame-1 value then frame-2 value at the site, e.g. 0→1 for slow-to-rise).
func (fs *Sim) Activation(b *Batch, f *fault.Fault) uint64 {
	n1, n2 := b.N1[f.Net], b.N2[f.Net]
	if f.Type == fault.STR {
		return n1.Zero & n2.One & b.Valid
	}
	return n1.One & n2.Zero & b.Valid
}

// Detect returns the slot mask where fault f is detected by the batch:
// the launch transition occurs and the frame-2 stuck-at effect reaches a
// captured flop of the batch's domain.
func (fs *Sim) Detect(b *Batch, f *fault.Fault) uint64 {
	cDetects.Add(1)
	act := fs.Activation(b, f)
	if act == 0 {
		cNoAct.Add(1)
		return 0
	}
	d := fs.d

	// Inject the stuck value at the site in frame 2 and propagate the
	// difference through the level-ordered cone. The injection is masked
	// to the activated slots: a transition fault only misbehaves where the
	// transition was launched, and detection is act-masked anyway, so the
	// non-activated slots keep their good value — which keeps the
	// divergence cone (and the word-level propagation frontier) tight on
	// wide packed batches where most slots activate only a few faults.
	stuck := logic.Splat(logic.Zero) // slow-to-rise behaves stuck-at-0 in frame 2
	if f.Type == fault.STF {
		stuck = logic.Splat(logic.One)
	}
	faulty := logic.Select(act, b.N2[f.Net], stuck)

	var detect uint64
	evals := 0
	fs.setFaulty(f.Net, faulty)
	if fs.isObs[b.Dom][f.Net] {
		detect |= b.N2[f.Net].Diff(faulty) & act
	}
	fs.scheduleLoads(f.Net)

	for lv := 1; lv < len(fs.buckets) && detect != act; lv++ {
		bucket := fs.buckets[lv]
		if len(bucket) == 0 {
			continue
		}
		fs.buckets[lv] = bucket[:0]
		for _, g := range bucket {
			fs.queued[g] = false
			if detect == act {
				continue
			}
			inst := &d.Insts[g]
			var in [4]logic.Word
			for p, n := range inst.In {
				if fs.touched[n] {
					in[p] = fs.fv[n]
				} else {
					in[p] = b.N2[n]
				}
			}
			evals++
			out := cell.EvalWord(inst.Kind, in[:len(inst.In)])
			cur := b.N2[inst.Out]
			if fs.touched[inst.Out] {
				cur = fs.fv[inst.Out]
			}
			if out == cur {
				continue
			}
			fs.setFaulty(inst.Out, out)
			if fs.isObs[b.Dom][inst.Out] {
				detect |= b.N2[inst.Out].Diff(out) & act
			}
			fs.scheduleLoads(inst.Out)
		}
	}
	if detect == act {
		cEarlyExit.Add(1)
	}

	// Reset scratch state.
	for _, n := range fs.tlist {
		fs.touched[n] = false
	}
	fs.tlist = fs.tlist[:0]
	for lv := range fs.buckets {
		for _, g := range fs.buckets[lv] {
			fs.queued[g] = false
		}
		fs.buckets[lv] = fs.buckets[lv][:0]
	}
	cConeGates.Add(int64(evals))
	hConeGates.Observe(float64(evals))
	return detect
}

func (fs *Sim) setFaulty(n netlist.NetID, v logic.Word) {
	if !fs.touched[n] {
		fs.touched[n] = true
		fs.tlist = append(fs.tlist, n)
	}
	fs.fv[n] = v
}

func (fs *Sim) scheduleLoads(n netlist.NetID) {
	d := fs.d
	for _, ld := range d.Nets[n].Loads {
		inst := &d.Insts[ld.Inst]
		if inst.IsFlop() || fs.queued[ld.Inst] {
			continue
		}
		fs.queued[ld.Inst] = true
		lv := fs.levels[ld.Inst]
		fs.buckets[lv] = append(fs.buckets[lv], ld.Inst)
	}
}

// DetectAll computes the detection mask of every fault in subset against
// the batch, writing dets[i] for subset[i] (len(dets) must equal
// len(subset)). With undetectedOnly, faults whose status is not
// Undetected are skipped and report a zero mask. The per-fault cone
// propagations are independent, so the loop fans out across
// Resolve(fs.Workers) cloned Sims; every task writes only its own
// index-addressed slot, making the result bit-identical for any worker
// count and any subset order. The fault list is read-only here — callers
// merge dets into statuses afterwards (Drop, CompactReverse).
func (fs *Sim) DetectAll(l *fault.List, subset []int, b *Batch, dets []uint64, undetectedOnly bool) {
	n := len(subset)
	if n == 0 {
		return
	}
	workers := parallel.Resolve(fs.Workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, fi := range subset {
			if undetectedOnly && l.Status[fi] != fault.Undetected {
				dets[i] = 0
				continue
			}
			dets[i] = fs.Detect(b, &l.Faults[fi])
		}
		return
	}
	sims := fs.pool(workers)
	// The body never fails; parallel.For's error plumbing is unused.
	_ = parallel.For(workers, n, func(w, i int) error {
		fi := subset[i]
		if undetectedOnly && l.Status[fi] != fault.Undetected {
			dets[i] = 0
			return nil
		}
		dets[i] = sims[w].Detect(b, &l.Faults[fi])
		return nil
	})
}

// Drop runs detection for every not-yet-detected fault in subset against
// the batch and marks newly detected faults with the index of the earliest
// detecting pattern (base + slot). It returns the number of faults
// dropped. The detection sweep fans out across fs.Workers (the merge is
// serial in subset order), so the marks are bit-identical to the serial
// path for any worker count.
func (fs *Sim) Drop(l *fault.List, subset []int, b *Batch, base int) int {
	dets := fs.dets(len(subset))
	fs.DetectAll(l, subset, b, dets, true)
	dropped := 0
	for i, fi := range subset {
		det := dets[i]
		if det == 0 || l.Status[fi] != fault.Undetected {
			continue
		}
		l.MarkDetected(fi, base+bits.TrailingZeros64(det))
		dropped++
	}
	cDropped.Add(int64(dropped))
	return dropped
}

// DetectionCounts adds, for every fault in subset, the number of batch
// patterns that detect it into counts (indexed like the fault list). It
// backs n-detect metrics: industrial flows often require every fault be
// detected n times to improve small-delay-defect screening. Like Drop,
// the sweep is worker-parallel and deterministic.
func (fs *Sim) DetectionCounts(l *fault.List, subset []int, b *Batch, counts []int) {
	dets := fs.dets(len(subset))
	fs.DetectAll(l, subset, b, dets, false)
	for i, fi := range subset {
		if dets[i] != 0 {
			counts[fi] += bits.OnesCount64(dets[i])
		}
	}
}
