package faultsim

import (
	"math/rand"
	"testing"

	"scap/internal/cell"
	"scap/internal/fault"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/sim"
	"scap/internal/soc"
)

// toggler builds: f1.Q=q1 -> INV -> n1; f1.D=n1 (self-toggling), f2.D=n1.
func toggler(t *testing.T) (*netlist.Design, *Sim, netlist.NetID, netlist.NetID) {
	t.Helper()
	d := netlist.New("tog", cell.New180nm())
	d.NumBlocks = 1
	d.Domains = []netlist.DomainInfo{{Name: "clk", FreqMHz: 50, PeriodNs: 20}}
	q1 := d.AddNet("q1")
	q2 := d.AddNet("q2")
	n1 := d.AddNet("n1")
	d.AddInst("inv", cell.Inv, []netlist.NetID{q1}, n1, 0)
	f1 := d.AddInst("f1", cell.DFF, []netlist.NetID{n1}, q1, 0)
	f2 := d.AddInst("f2", cell.DFF, []netlist.NetID{n1}, q2, 0)
	d.SetDomain(f1, 0, false)
	d.SetDomain(f2, 0, false)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	return d, fs, q1, n1
}

func TestDetectOnToggler(t *testing.T) {
	d, fs, q1, n1 := toggler(t)
	// Patterns: slot 0 has q1=0, slot 1 has q1=1; slots 2.. invalid.
	v1 := make([]logic.Word, len(d.Flops))
	for i := range v1 {
		v1[i] = logic.AllX.Set(0, logic.Zero).Set(1, logic.One)
	}
	b := fs.GoodSim(v1, nil, 0, 0b11)

	cases := []struct {
		net  netlist.NetID
		typ  fault.Type
		want uint64
	}{
		{q1, fault.STR, 0b01}, // q1 rises only when V1 q1=0
		{q1, fault.STF, 0b10},
		{n1, fault.STR, 0b10}, // n1 = !q1: rises when V1 q1=1
		{n1, fault.STF, 0b01},
	}
	for _, c := range cases {
		f := fault.Fault{Net: c.net, Type: c.typ}
		if got := fs.Detect(b, &f); got != c.want {
			t.Errorf("Detect(%s %v) = %b, want %b", d.Nets[c.net].Name, c.typ, got, c.want)
		}
		if act := fs.Activation(b, &f); act != c.want {
			t.Errorf("Activation(%s %v) = %b, want %b", d.Nets[c.net].Name, c.typ, act, c.want)
		}
	}
}

func TestValidMaskRespected(t *testing.T) {
	d, fs, q1, _ := toggler(t)
	v1 := make([]logic.Word, len(d.Flops))
	for i := range v1 {
		v1[i] = logic.Splat(logic.Zero)
	}
	b := fs.GoodSim(v1, nil, 0, 0b1) // only slot 0 valid
	f := fault.Fault{Net: q1, Type: fault.STR}
	if got := fs.Detect(b, &f); got != 0b1 {
		t.Fatalf("Detect = %b, want only valid slot", got)
	}
}

// scalarReference recomputes detection for one fault and one pattern with a
// straightforward scalar simulation, independent of the cone machinery.
func scalarReference(d *netlist.Design, s *sim.Simulator, v1 []logic.V, pis []logic.V,
	dom int, f *fault.Fault) bool {

	n1 := s.NewNets()
	s.SetPIs(n1, pis)
	s.ApplyState(n1, v1)
	s.Propagate(n1)
	cap1 := s.CaptureState(n1)
	v2 := make([]logic.V, len(d.Flops))
	for i, fl := range d.Flops {
		if d.Inst(fl).Domain == dom {
			v2[i] = cap1[i]
		} else {
			v2[i] = v1[i]
		}
	}
	n2 := s.NewNets()
	s.SetPIs(n2, pis)
	s.ApplyState(n2, v2)
	s.Propagate(n2)

	// Activation.
	if f.Type == fault.STR && !(n1[f.Net] == logic.Zero && n2[f.Net] == logic.One) {
		return false
	}
	if f.Type == fault.STF && !(n1[f.Net] == logic.One && n2[f.Net] == logic.Zero) {
		return false
	}

	// Faulty frame 2: force the stuck value at the site during propagation.
	stuck := logic.Zero
	if f.Type == fault.STF {
		stuck = logic.One
	}
	fn := make([]logic.V, len(n2))
	s.SetPIs(fn, pis)
	s.ApplyState(fn, v2)
	order, _ := d.TopoOrder()
	if fn[f.Net] != logic.X || d.Nets[f.Net].Driver == netlist.NoInst {
		fn[f.Net] = stuck // site is a state/PI net
	}
	var buf [4]logic.V
	for _, id := range order {
		inst := d.Inst(id)
		if inst.IsFlop() {
			continue
		}
		in := buf[:len(inst.In)]
		for p, n := range inst.In {
			v := fn[n]
			if n == f.Net {
				v = stuck
			}
			in[p] = v
		}
		fn[inst.Out] = cell.Eval(inst.Kind, in)
	}
	fn[f.Net] = stuck

	for _, fl := range d.Flops {
		inst := d.Inst(fl)
		if inst.Domain != dom {
			continue
		}
		dn := inst.In[0]
		if n2[dn] != fn[dn] && n2[dn] != logic.X && fn[dn] != logic.X {
			return true
		}
	}
	return false
}

// TestDetectMatchesScalarReference is the load-bearing cross-check on the
// generated SOC: cone-based parallel detection must agree with brute-force
// scalar fault injection for sampled faults and random patterns.
func TestDetectMatchesScalarReference(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(96))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	l := fault.Universe(d)
	r := rand.New(rand.NewSource(5))

	const dom = 0
	v1 := make([]logic.Word, len(d.Flops))
	pisW := make([]logic.Word, len(d.PIs))
	pis := make([]logic.V, len(d.PIs))
	for i := range pis {
		pis[i] = logic.FromBool(r.Intn(2) == 1)
		pisW[i] = logic.Splat(pis[i])
	}
	for i := range v1 {
		known := ^uint64(0)
		ones := r.Uint64()
		v1[i] = logic.Word{Zero: known &^ ones, One: ones}
	}
	b := fs.GoodSim(v1, pisW, dom, ^uint64(0))

	checked := 0
	for fi := 0; fi < len(l.Faults) && checked < 400; fi += 1 + r.Intn(7) {
		f := &l.Faults[fi]
		got := fs.Detect(b, f)
		for _, slot := range []uint{0, 13, 37, 63} {
			v1s := make([]logic.V, len(d.Flops))
			for i := range v1s {
				v1s[i] = v1[i].Get(slot)
			}
			want := scalarReference(d, s, v1s, pis, dom, f)
			if gotBit := got&(1<<slot) != 0; gotBit != want {
				t.Fatalf("fault %s slot %d: parallel %v, scalar %v",
					l.String(fi), slot, gotBit, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no faults checked")
	}
}

func TestDropMarksEarliestPattern(t *testing.T) {
	d, fs, q1, _ := toggler(t)
	l := fault.Universe(d)
	var target int
	found := false
	for i := range l.Faults {
		if l.Faults[i].Net == q1 && l.Faults[i].Type == fault.STR {
			target, found = i, true
		}
	}
	if !found {
		t.Fatal("q1 STR collapsed away unexpectedly")
	}
	v1 := make([]logic.Word, len(d.Flops))
	for i := range v1 {
		// Slots 0,1 have q1=1 (no STR activation), slot 2 has q1=0.
		v1[i] = logic.Splat(logic.One).Set(2, logic.Zero)
	}
	b := fs.GoodSim(v1, nil, 0, 0b111)
	subset := []int{target}
	n := fs.Drop(l, subset, b, 100)
	if n != 1 {
		t.Fatalf("dropped %d, want 1", n)
	}
	if l.Status[target] != fault.Detected || l.DetectedBy[target] != 102 {
		t.Fatalf("status %v by %d, want detected by 102", l.Status[target], l.DetectedBy[target])
	}
	// A second drop must not re-mark.
	if n := fs.Drop(l, subset, b, 200); n != 0 {
		t.Fatalf("re-dropped %d", n)
	}
}

func TestScratchStateResetBetweenFaults(t *testing.T) {
	// Running many detections back to back must not leak state: detect the
	// same fault twice and expect identical masks.
	d, _, err := soc.Generate(soc.DefaultConfig(96))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := sim.New(d)
	fs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	l := fault.Universe(d)
	r := rand.New(rand.NewSource(6))
	v1 := make([]logic.Word, len(d.Flops))
	for i := range v1 {
		known := ^uint64(0)
		ones := r.Uint64()
		v1[i] = logic.Word{Zero: known &^ ones, One: ones}
	}
	b := fs.GoodSim(v1, nil, 0, ^uint64(0))
	first := make([]uint64, 0, 200)
	for fi := 0; fi < 200 && fi < len(l.Faults); fi++ {
		first = append(first, fs.Detect(b, &l.Faults[fi]))
	}
	for fi := 0; fi < len(first); fi++ {
		if got := fs.Detect(b, &l.Faults[fi]); got != first[fi] {
			t.Fatalf("fault %d: second run %b != first %b", fi, got, first[fi])
		}
	}
}

// TestFailMasksConsistentWithDetect: the union of per-flop failure masks
// must equal the Detect mask — both views of the same fault effect.
func TestFailMasksConsistentWithDetect(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(96))
	if err != nil {
		t.Fatal(err)
	}
	s, _ := sim.New(d)
	fs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	l := fault.Universe(d)
	r := rand.New(rand.NewSource(17))
	v1 := make([]logic.Word, len(d.Flops))
	pis := make([]logic.Word, len(d.PIs))
	for i := range v1 {
		ones := r.Uint64()
		v1[i] = logic.Word{Zero: ^ones, One: ones}
	}
	for i := range pis {
		ones := r.Uint64()
		pis[i] = logic.Word{Zero: ^ones, One: ones}
	}
	b := fs.GoodSim(v1, pis, 0, ^uint64(0))
	checked := 0
	for fi := 0; fi < len(l.Faults) && checked < 300; fi += 3 {
		f := &l.Faults[fi]
		det := fs.Detect(b, f)
		masks := fs.FailMasks(b, f)
		var union uint64
		for flop, m := range masks {
			if d.Inst(d.Flops[flop]).Domain != 0 {
				t.Fatalf("fault %s fails a non-domain flop", l.String(fi))
			}
			union |= m
		}
		if union != det {
			t.Fatalf("fault %s: FailMasks union %b != Detect %b", l.String(fi), union, det)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("nothing checked")
	}
}

func TestDetectionCountsAccumulate(t *testing.T) {
	d, fs, q1, _ := toggler(t)
	l := fault.Universe(d)
	v1 := make([]logic.Word, len(d.Flops))
	for i := range v1 {
		// Slots 0,2: q1=0 (STR activates); slot 1: q1=1.
		v1[i] = logic.Splat(logic.Zero).Set(1, logic.One)
	}
	b := fs.GoodSim(v1, nil, 0, 0b111)
	var target int
	for i := range l.Faults {
		if l.Faults[i].Net == q1 && l.Faults[i].Type == fault.STR {
			target = i
		}
	}
	counts := make([]int, len(l.Faults))
	fs.DetectionCounts(l, []int{target}, b, counts)
	if counts[target] != 2 {
		t.Fatalf("q1 STR detected %d times, want 2 (slots 0 and 2)", counts[target])
	}
}

// socHarness builds the SOC-scale simulator trio plus a deterministic set
// of packed batches for the parallel-identity properties.
func socHarness(t *testing.T, seed int64, nBatches int) (*netlist.Design, *Sim, []*Batch) {
	t.Helper()
	d, _, err := soc.Generate(soc.DefaultConfig(96))
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(s)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(seed))
	batches := make([]*Batch, nBatches)
	for bi := range batches {
		v1 := make([]logic.Word, len(d.Flops))
		pis := make([]logic.Word, len(d.PIs))
		for i := range v1 {
			ones := r.Uint64()
			v1[i] = logic.Word{Zero: ^ones, One: ones}
		}
		for i := range pis {
			ones := r.Uint64()
			pis[i] = logic.Word{Zero: ^ones, One: ones}
		}
		batches[bi] = fs.GoodSim(v1, pis, 0, ^uint64(0))
	}
	return d, fs, batches
}

// TestDropParallelBitIdentical is the tentpole's concurrency contract:
// sharding the fault-dropping sweep across any worker count — and feeding
// the subset in any order — must reproduce the serial statuses and
// earliest-detecting-pattern marks exactly (run under -race via the
// Makefile's test-race gate).
func TestDropParallelBitIdentical(t *testing.T) {
	d, fs, batches := socHarness(t, 23, 3)
	baseSubset := fault.Universe(d).InDomain(0)

	run := func(workers int, subset []int) *fault.List {
		fs.Workers = workers
		defer func() { fs.Workers = 0 }()
		l := fault.Universe(d)
		for bi, b := range batches {
			fs.Drop(l, subset, b, bi*64)
		}
		return l
	}
	want := run(1, baseSubset)

	shuffled := append([]int(nil), baseSubset...)
	rand.New(rand.NewSource(99)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	cases := []struct {
		name    string
		workers int
		subset  []int
	}{
		{"workers=1/shuffled", 1, shuffled},
		{"workers=2", 2, baseSubset},
		{"workers=8", 8, baseSubset},
		{"workers=8/shuffled", 8, shuffled},
	}
	detected := 0
	for _, c := range cases {
		got := run(c.workers, c.subset)
		for fi := range want.Status {
			if got.Status[fi] != want.Status[fi] || got.DetectedBy[fi] != want.DetectedBy[fi] {
				t.Fatalf("%s: fault %d: status %v by %d, want %v by %d", c.name, fi,
					got.Status[fi], got.DetectedBy[fi], want.Status[fi], want.DetectedBy[fi])
			}
		}
	}
	for fi := range want.Status {
		if want.Status[fi] == fault.Detected {
			detected++
		}
	}
	if detected == 0 {
		t.Fatal("degenerate test: nothing detected")
	}
}

// TestDetectionCountsParallelBitIdentical: the n-detect accounting must
// also be exact for any worker count and subset order.
func TestDetectionCountsParallelBitIdentical(t *testing.T) {
	d, fs, batches := socHarness(t, 31, 2)
	l := fault.Universe(d)
	subset := l.InDomain(0)

	run := func(workers int, subset []int) []int {
		fs.Workers = workers
		defer func() { fs.Workers = 0 }()
		counts := make([]int, len(l.Faults))
		for _, b := range batches {
			fs.DetectionCounts(l, subset, b, counts)
		}
		return counts
	}
	want := run(1, subset)

	shuffled := append([]int(nil), subset...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	for _, workers := range []int{2, 8} {
		got := run(workers, subset)
		for fi := range want {
			if got[fi] != want[fi] {
				t.Fatalf("workers=%d: fault %d: count %d, want %d", workers, fi, got[fi], want[fi])
			}
		}
	}
	gotShuf := run(8, shuffled)
	total := 0
	for fi := range want {
		if gotShuf[fi] != want[fi] {
			t.Fatalf("shuffled: fault %d: count %d, want %d", fi, gotShuf[fi], want[fi])
		}
		total += want[fi]
	}
	if total == 0 {
		t.Fatal("degenerate test: no detections counted")
	}
}

// TestFailSlotsMatchesFailMasks: the allocation-free signature path and
// its map wrapper are two views of the same propagation, and repeated
// calls must not leak signature state.
func TestFailSlotsMatchesFailMasks(t *testing.T) {
	d, fs, batches := socHarness(t, 57, 1)
	l := fault.Universe(d)
	b := batches[0]
	checked := 0
	for fi := 0; fi < len(l.Faults) && checked < 200; fi += 5 {
		f := &l.Faults[fi]
		masks := fs.FailMasks(b, f)
		flops, ms := fs.FailSlots(b, f)
		if len(flops) != len(ms) || len(flops) != len(masks) {
			t.Fatalf("fault %s: %d flops / %d masks / map %d", l.String(fi), len(flops), len(ms), len(masks))
		}
		for i, flop := range flops {
			if masks[flop] != ms[i] {
				t.Fatalf("fault %s flop %d: slots %b vs map %b", l.String(fi), flop, ms[i], masks[flop])
			}
		}
		if len(flops) > 0 {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("degenerate test: no failing fault sampled")
	}
}

// TestCloneSharesTablesNotScratch: a clone must agree with its parent on
// every detection while owning disjoint scratch (exercised here by
// interleaving the two on different faults).
func TestCloneSharesTablesNotScratch(t *testing.T) {
	d, fs, batches := socHarness(t, 71, 1)
	l := fault.Universe(d)
	b := batches[0]
	c := fs.Clone()
	for fi := 0; fi < len(l.Faults) && fi < 150; fi++ {
		want := fs.Detect(b, &l.Faults[fi])
		c.Detect(b, &l.Faults[(fi+37)%len(l.Faults)]) // desync the clone's scratch
		if again := c.Detect(b, &l.Faults[fi]); again != want {
			t.Fatalf("fault %d: clone %b, parent %b", fi, again, want)
		}
	}
}
