package delayscale

import (
	"math"
	"testing"

	"scap/internal/clocktree"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/parasitic"
	"scap/internal/pgrid"
	"scap/internal/place"
	"scap/internal/sdf"
	"scap/internal/sim"
	"scap/internal/soc"
)

type world struct {
	d     *netlist.Design
	fp    *place.Floorplan
	s     *sim.Simulator
	dl    *sdf.Delays
	tree  *clocktree.Tree
	g     *pgrid.Grid
	kvolt float64
}

func build(t *testing.T) *world {
	t.Helper()
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := place.Place(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parasitic.Extract(d, fp, parasitic.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	g, err := pgrid.New(fp, pgrid.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return &world{
		d: d, fp: fp, s: s,
		dl:    sdf.Compute(d),
		tree:  clocktree.Build(d, fp, clocktree.DefaultParams(), 5),
		g:     g,
		kvolt: d.Lib.KVolt,
	}
}

// hotSolution builds a synthetic IR-drop map with a hot spot over B5.
func hotSolution(w *world, drop float64) *pgrid.Solution {
	n := w.g.P.N
	sol := &pgrid.Solution{N: n, Drop: make([]float64, n*n)}
	r := w.fp.Blocks[soc.B5]
	for node := range sol.Drop {
		x, y := w.g.NodeXY(node)
		if r.Contains(x, y) {
			sol.Drop[node] = drop
			if drop > sol.Worst {
				sol.Worst = drop
			}
		}
	}
	return sol
}

func TestScaleDelaysAppliesPaperFormula(t *testing.T) {
	w := build(t)
	sol := hotSolution(w, 0.1)
	scaled := ScaleDelays(w.d, w.dl, w.g, sol, 0.9)
	for i := range w.d.Insts {
		inst := &w.d.Insts[i]
		want := w.dl.Rise[i]
		if w.fp.Blocks[soc.B5].Contains(inst.X, inst.Y) {
			want *= 1.09
		}
		if math.Abs(scaled.Rise[i]-want) > 1e-9*want {
			t.Fatalf("inst %s: scaled %v, want %v", inst.Name, scaled.Rise[i], want)
		}
	}
}

func TestScaledClockSlowsOnlyAffectedRoutes(t *testing.T) {
	w := build(t)
	sol := hotSolution(w, 0.2)
	sc := NewScaledClock(w.d, w.tree, w.g, sol, 0.9)
	slowed := 0
	for _, f := range w.d.Flops {
		nom, der := w.tree.Arrival(f), sc.Arrival(f)
		if der < nom-1e-9 {
			t.Fatalf("flop %d clock sped up", f)
		}
		if der > nom+1e-9 {
			slowed++
		}
	}
	if slowed == 0 {
		t.Fatal("no clock route crosses the hot region?")
	}
}

func TestCompareZeroDropIsNeutral(t *testing.T) {
	w := build(t)
	n := w.g.P.N
	sol := &pgrid.Solution{N: n, Drop: make([]float64, n*n)}
	v1, v2, pis := launchVectors(w)
	imp, err := Compare(w.s, w.dl, w.tree, w.g, sol, w.kvolt, v1, v2, pis, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Slowed != 0 || imp.Sped != 0 {
		t.Fatalf("zero drop changed %d+%d endpoints", imp.Slowed, imp.Sped)
	}
	if imp.MaxSlowdownFrac > 1e-12 {
		t.Fatalf("zero drop slowdown %v", imp.MaxSlowdownFrac)
	}
}

func TestCompareHotB5SlowsItsEndpoints(t *testing.T) {
	w := build(t)
	sol := hotSolution(w, 0.25)
	v1, v2, pis := launchVectors(w)
	// Exercise the shared-scratch path: both runs reuse one scratch.
	imp, err := Compare(w.s, w.dl, w.tree, w.g, sol, w.kvolt, v1, v2, pis, 20,
		sim.NewLaunchScratch(w.s))
	if err != nil {
		t.Fatal(err)
	}
	if imp.Slowed == 0 {
		t.Fatal("hot spot slowed nothing")
	}
	if imp.MaxSlowdownFrac <= 0 || imp.MaxSlowdownFrac > 0.5 {
		t.Fatalf("max slowdown %v implausible", imp.MaxSlowdownFrac)
	}
	// The hot-block endpoints must dominate the slowdown; at least one B5
	// endpoint grows. And because the clock tree also slows, some endpoint
	// should shrink (the paper's Region 2) — tolerate zero at tiny scales.
	slowedB5 := 0
	for i := range imp.Endpoints {
		ep := &imp.Endpoints[i]
		if !ep.Active {
			if ep.Nominal != 0 || ep.Scaled != 0 {
				t.Fatal("inactive endpoint carries delay")
			}
			continue
		}
		if ep.Block == soc.B5 && ep.Delta() > 1e-3 {
			slowedB5++
		}
	}
	if slowedB5 == 0 {
		t.Fatal("no B5 endpoint slowed despite hot B5")
	}
	t.Logf("slowed %d, sped %d, max slowdown %.1f%%", imp.Slowed, imp.Sped, 100*imp.MaxSlowdownFrac)
}

// launchVectors builds a deterministic clka LOC launch.
func launchVectors(w *world) (v1, v2, pis []logic.V) {
	d, s := w.d, w.s
	v1 = make([]logic.V, len(d.Flops))
	pis = make([]logic.V, len(d.PIs))
	for i := range v1 {
		v1[i] = logic.FromBool(i%2 == 0)
	}
	for i := range pis {
		pis[i] = logic.FromBool(i%3 == 0)
	}
	nets := s.NewNets()
	s.SetPIs(nets, pis)
	s.ApplyState(nets, v1)
	s.Propagate(nets)
	cap1 := s.CaptureState(nets)
	v2 = make([]logic.V, len(d.Flops))
	for i, f := range d.Flops {
		if d.Inst(f).Domain == 0 {
			v2[i] = cap1[i]
		} else {
			v2[i] = v1[i]
		}
	}
	return v1, v2, pis
}

func TestCompareCorners(t *testing.T) {
	w := build(t)
	sol := hotSolution(w, 0.3)
	v1, v2, pis := launchVectors(w)
	// Pick a tight period so violations exist: just above the nominal max
	// endpoint delay.
	// One scratch serves all five launches of this test (two Compare,
	// three CompareCorners runs) — every settle after the first is a
	// cone-cache hit on the identical pattern.
	ls := sim.NewLaunchScratch(w.s)
	imp, err := Compare(w.s, w.dl, w.tree, w.g, sol, w.kvolt, v1, v2, pis, 20, ls)
	if err != nil {
		t.Fatal(err)
	}
	maxNom := 0.0
	for i := range imp.Endpoints {
		if imp.Endpoints[i].Active && imp.Endpoints[i].Nominal > maxNom {
			maxNom = imp.Endpoints[i].Nominal
		}
	}
	period := maxNom * 1.05
	cc, err := CompareCorners(w.s, w.dl, w.tree, w.g, sol, w.kvolt, 1.30,
		v1, v2, pis, period, ls)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("period %.2f: nominal %d, slow-corner %d, IR-aware %d (missed %d, corner overkill %d)",
		period, cc.NominalViol, cc.SlowCornerViol, cc.IRAwareViol,
		cc.MissedBySlow, cc.OverkillOfSlow)
	if cc.NominalViol != 0 {
		t.Fatal("period was chosen above the nominal max — no nominal violations expected")
	}
	// The uniform slow corner derates everything by 30%; the hot-spot is
	// localized, so the corner must flag at least as many endpoints as the
	// IR-aware run fails in the hot region — the paper's pessimism.
	if cc.SlowCornerViol == 0 {
		t.Fatal("slow corner flagged nothing — scenario degenerate")
	}
	if cc.OverkillOfSlow == 0 {
		t.Fatal("uniform corner showed no pessimism vs the localized analysis")
	}
}
