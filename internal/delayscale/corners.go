package delayscale

import (
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/pgrid"
	"scap/internal/sdf"
	"scap/internal/sim"
)

// CornerComparison contrasts the industry-standard corner signoff with the
// paper's IR-drop-aware re-simulation (Section 3.2: "presently during test
// pattern signoff, the patterns are simulated at the best and worst-case
// corners. This is either over optimistic or pessimistic as we apply the
// corner conditions to all the portions of the design"). A global slow
// corner derates every cell uniformly; the IR-aware run derates only where
// the voltage actually sags — the two disagree exactly on the localized
// failures corner signoff cannot see.
type CornerComparison struct {
	// SlowCornerFactor is the uniform derating applied in the slow corner.
	SlowCornerFactor float64
	// Violations at the given capture period, per analysis.
	PeriodNs       float64
	NominalViol    int // no derating
	SlowCornerViol int // uniform worst-case corner
	IRAwareViol    int // localized voltage-derated
	// MissedBySlow counts endpoints the IR-aware run fails but the slow
	// corner also fails — zero misses means the corner is safe but the
	// histogram shows how pessimistic it was: OverkillOfSlow counts
	// endpoints only the uniform corner fails.
	MissedBySlow   int
	OverkillOfSlow int
}

// CompareCorners runs three signoff analyses of one pattern at the given
// capture period: nominal, uniform slow corner (every delay scaled by
// slowFactor), and IR-drop-aware (delays scaled by the local drop map).
// ls (optional, nil allowed) is a reusable launch scratch shared by all
// three runs: only the delay tables differ, so the second and third
// settles are cone-cache hits.
func CompareCorners(s *sim.Simulator, delays *sdf.Delays, tree sim.Clock,
	g *pgrid.Grid, sol *pgrid.Solution, kvolt, slowFactor float64,
	v1, v2, pis []logic.V, period float64, ls *sim.LaunchScratch) (*CornerComparison, error) {

	d := s.Design()
	run := func(dl *sdf.Delays, clk sim.Clock) ([]float64, []bool, error) {
		tm := sim.NewTiming(s, dl, clk)
		res, err := tm.LaunchInto(ls, v1, v2, pis, period, nil)
		if err != nil {
			return nil, nil, err
		}
		// Copy out of the scratch-owned Result: the next run overwrites it.
		out := make([]float64, len(d.Flops))
		act := make([]bool, len(d.Flops))
		copy(act, res.EndpointActive)
		for i, f := range d.Flops {
			if act[i] {
				out[i] = res.EndpointArrival[i] - clkArrival(clk, f)
			}
		}
		return out, act, nil
	}

	nom, nomAct, err := run(delays, tree)
	if err != nil {
		return nil, err
	}
	slow := delays.Clone()
	for i := range slow.Rise {
		slow.Rise[i] *= slowFactor
		slow.Fall[i] *= slowFactor
	}
	slowD, slowAct, err := run(slow, tree)
	if err != nil {
		return nil, err
	}
	irDelays := ScaleDelays(d, delays, g, sol, kvolt)
	irD, irAct, err := run(irDelays, tree)
	if err != nil {
		return nil, err
	}

	cc := &CornerComparison{SlowCornerFactor: slowFactor, PeriodNs: period}
	for i := range d.Flops {
		lim := period
		if nomAct[i] && nom[i] > lim {
			cc.NominalViol++
		}
		sv := slowAct[i] && slowD[i] > lim
		iv := irAct[i] && irD[i] > lim
		if sv {
			cc.SlowCornerViol++
		}
		if iv {
			cc.IRAwareViol++
		}
		if iv && !sv {
			cc.MissedBySlow++
		}
		if sv && !iv {
			cc.OverkillOfSlow++
		}
	}
	return cc, nil
}

func clkArrival(c sim.Clock, f netlist.InstID) float64 {
	if c == nil {
		return 0
	}
	return c.Arrival(f)
}
