// Package delayscale implements the paper's IR-drop-aware re-simulation
// (the second PLI of Section 3.2): given a pattern's dynamic IR-drop map,
// every cell delay is scaled by
//
//	ScaledCellDelay = Delay · (1 + k_volt · ΔV)
//
// with ΔV the local supply droop, and the pattern is re-simulated through
// the event-driven timing simulator. The clock tree is derated the same
// way, which is what makes some endpoint delays *decrease* (the paper's
// Figure 7 Region 2): when the capture flop's clock path slows more than
// the data path, the delay measured relative to the arriving clock shrinks.
package delayscale

import (
	"fmt"

	"scap/internal/clocktree"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/pgrid"
	"scap/internal/sdf"
	"scap/internal/sim"
)

// ScaleDelays returns a copy of the delay table with every instance's rise
// and fall delays derated by the IR-drop at its placed location.
func ScaleDelays(d *netlist.Design, delays *sdf.Delays, g *pgrid.Grid, sol *pgrid.Solution, kvolt float64) *sdf.Delays {
	out := delays.Clone()
	for i := range d.Insts {
		inst := &d.Insts[i]
		drop := sol.At(g, inst.X, inst.Y)
		if drop < 0 {
			drop = 0
		}
		f := 1 + kvolt*drop
		out.Rise[i] *= f
		out.Fall[i] *= f
	}
	return out
}

// ScaledClock derates a clock tree's per-flop arrivals with the same
// voltage map and implements sim.Clock.
type ScaledClock struct {
	arrival map[netlist.InstID]float64
}

// NewScaledClock precomputes derated clock arrivals for every flop.
func NewScaledClock(d *netlist.Design, tree *clocktree.Tree, g *pgrid.Grid, sol *pgrid.Solution, kvolt float64) *ScaledClock {
	sc := &ScaledClock{arrival: make(map[netlist.InstID]float64, len(d.Flops))}
	dropAt := func(x, y float64) float64 { return sol.At(g, x, y) }
	for _, f := range d.Flops {
		sc.arrival[f] = tree.ScaledArrival(f, kvolt, dropAt)
	}
	return sc
}

// Arrival returns the derated clock arrival of flop f.
func (sc *ScaledClock) Arrival(f netlist.InstID) float64 { return sc.arrival[f] }

// Endpoint is one flop endpoint's measured path delays in the two runs.
type Endpoint struct {
	Flop    netlist.InstID
	Block   int
	Active  bool    // endpoint saw a transition in the nominal run
	Nominal float64 // ns, arrival at D minus nominal clock arrival
	Scaled  float64 // ns, arrival at D minus derated clock arrival
}

// Delta returns the scaled-minus-nominal delay change (ns).
func (e *Endpoint) Delta() float64 { return e.Scaled - e.Nominal }

// Impact is the full Figure 7 comparison for one pattern.
type Impact struct {
	Endpoints []Endpoint
	// Slowed / Sped count endpoints active in both runs whose measured
	// delay grew / shrank by more than 1 ps; Vanished counts endpoints
	// whose transition disappeared entirely under derating (a hazard that
	// no longer occurs).
	Slowed, Sped, Vanished int
	// MaxSlowdownFrac is the largest relative delay increase among active
	// endpoints (e.g. 0.30 for the paper's "up to 30%" Region 1).
	MaxSlowdownFrac float64
}

// Compare re-simulates one pattern without and with IR-drop-scaled delays
// and reports per-endpoint path delays relative to each endpoint's own
// (nominal vs derated) clock arrival. v1/v2/pis describe the launch as in
// sim.Timing.Launch. ls (optional, nil allowed) is a reusable launch
// scratch shared by both runs: the settled baseline is delay- and
// clock-independent, so the derated run is a cone-cache hit, and a
// caller whose scratch already holds this pattern's baseline pays no
// settle at all.
func Compare(s *sim.Simulator, delays *sdf.Delays, tree *clocktree.Tree,
	g *pgrid.Grid, sol *pgrid.Solution, kvolt float64,
	v1, v2, pis []logic.V, period float64, ls *sim.LaunchScratch) (*Impact, error) {

	d := s.Design()
	nom := sim.NewTiming(s, delays, tree)
	nomRes, err := nom.LaunchInto(ls, v1, v2, pis, period, nil)
	if err != nil {
		return nil, fmt.Errorf("delayscale: nominal run: %w", err)
	}

	// Harvest the nominal endpoints before the scaled run: a shared
	// scratch reuses its Result, so the second launch overwrites nomRes.
	imp := &Impact{Endpoints: make([]Endpoint, len(d.Flops))}
	for i, f := range d.Flops {
		ep := &imp.Endpoints[i]
		ep.Flop = f
		ep.Block = d.Inst(f).Block
		ep.Active = nomRes.EndpointActive[i]
		if ep.Active {
			ep.Nominal = nomRes.EndpointArrival[i] - tree.Arrival(f)
		}
	}

	scaledDelays := ScaleDelays(d, delays, g, sol, kvolt)
	scaledClock := NewScaledClock(d, tree, g, sol, kvolt)
	scl := sim.NewTiming(s, scaledDelays, scaledClock)
	sclRes, err := scl.LaunchInto(ls, v1, v2, pis, period, nil)
	if err != nil {
		return nil, fmt.Errorf("delayscale: scaled run: %w", err)
	}

	for i, f := range d.Flops {
		ep := &imp.Endpoints[i]
		if !ep.Active {
			continue // the paper plots non-active endpoints at zero delay
		}
		if !sclRes.EndpointActive[i] {
			ep.Scaled = ep.Nominal // transition vanished: report no shift
			imp.Vanished++
			continue
		}
		ep.Scaled = sclRes.EndpointArrival[i] - scaledClock.Arrival(f)
		switch {
		case ep.Scaled > ep.Nominal+1e-3:
			imp.Slowed++
		case ep.Scaled < ep.Nominal-1e-3:
			imp.Sped++
		}
		if ep.Nominal > 0 {
			if frac := (ep.Scaled - ep.Nominal) / ep.Nominal; frac > imp.MaxSlowdownFrac {
				imp.MaxSlowdownFrac = frac
			}
		}
	}
	return imp, nil
}
