package ftas

import (
	"testing"

	"scap/internal/delayscale"
	"scap/internal/netlist"
)

// fakeImpact builds an Impact with known endpoint delays.
func fakeImpact(pairs [][2]float64) *delayscale.Impact {
	imp := &delayscale.Impact{}
	for i, p := range pairs {
		imp.Endpoints = append(imp.Endpoints, delayscale.Endpoint{
			Flop: netlist.InstID(i), Active: true, Nominal: p[0], Scaled: p[1],
		})
	}
	// One inactive endpoint that must be ignored.
	imp.Endpoints = append(imp.Endpoints, delayscale.Endpoint{Flop: 99})
	return imp
}

func TestSweepCountsViolations(t *testing.T) {
	// Nominal delays 4, 6, 8; derated 5, 8, 11.
	imp := fakeImpact([][2]float64{{4, 5}, {6, 8}, {8, 11}})
	res, err := Sweep(imp, 5, 12, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	byPeriod := map[float64]Point{}
	for _, p := range res.Points {
		byPeriod[p.PeriodNs] = p
	}
	// At T=12: nothing violates in either corner.
	if p := byPeriod[12]; p.NomViolations != 0 || p.ScaledViolations != 0 || p.Overkill != 0 {
		t.Fatalf("T=12: %+v", p)
	}
	// At T=10: nominal fine (max 8), derated 11 fails -> 1 overkill.
	if p := byPeriod[10]; p.NomViolations != 0 || p.ScaledViolations != 1 || p.Overkill != 1 {
		t.Fatalf("T=10: %+v", p)
	}
	// At T=7: nominal {8} fails, derated {8, 11} fail -> overkill 1.
	if p := byPeriod[7]; p.NomViolations != 1 || p.ScaledViolations != 2 || p.Overkill != 1 {
		t.Fatalf("T=7: %+v", p)
	}
	// At T=5: nominal {6,8}, derated {5,8,11}... derated 5 <= 5 passes, so 2 vs 2.
	if p := byPeriod[5]; p.NomViolations != 2 || p.ScaledViolations != 2 || p.Overkill != 0 {
		t.Fatalf("T=5: %+v", p)
	}
	// Fastest overkill-free period: 5 ns would be chosen (overkill 0).
	if res.MinPeriodNoOverkillNs != 5 {
		t.Fatalf("safe period %v, want 5", res.MinPeriodNoOverkillNs)
	}
	if res.MaxSafeFreqMHz != 200 {
		t.Fatalf("safe freq %v, want 200", res.MaxSafeFreqMHz)
	}
}

func TestSweepMargin(t *testing.T) {
	imp := fakeImpact([][2]float64{{9, 9}})
	res, err := Sweep(imp, 10, 10, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Limit = 10-2 = 8 < 9: violation in both corners, zero overkill.
	p := res.Points[0]
	if p.NomViolations != 1 || p.ScaledViolations != 1 || p.Overkill != 0 {
		t.Fatalf("%+v", p)
	}
}

func TestSweepValidation(t *testing.T) {
	imp := fakeImpact(nil)
	if _, err := Sweep(imp, 0, 10, 1, 0); err == nil {
		t.Fatal("zero min accepted")
	}
	if _, err := Sweep(imp, 10, 5, 1, 0); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := Sweep(imp, 5, 10, 0, 0); err == nil {
		t.Fatal("zero step accepted")
	}
}

func TestSweepMonotonicity(t *testing.T) {
	imp := fakeImpact([][2]float64{{3, 4}, {5, 7}, {7, 9}, {2, 2.5}, {9, 12}})
	res, err := Sweep(imp, 2, 14, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Shrinking the period can only grow the violation counts.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].NomViolations < res.Points[i-1].NomViolations ||
			res.Points[i].ScaledViolations < res.Points[i-1].ScaledViolations {
			t.Fatalf("violations not monotone at %v", res.Points[i].PeriodNs)
		}
	}
}
