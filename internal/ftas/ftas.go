// Package ftas implements the faster-than-at-speed analysis of the
// authors' companion work (the paper's reference [20], ICCAD'06):
// capturing earlier than the functional period detects small delay
// defects, but IR-drop-slowed paths then fail on *good* silicon. Given a
// pattern's nominal and IR-drop-derated endpoint delays (from
// internal/delayscale), the sweep reports, per candidate capture period,
// how many endpoints violate timing in each corner — the excess under
// derating is the overkill the paper's Figure 7 warns about — and derives
// the fastest safe capture frequency.
package ftas

import (
	"fmt"
	"sort"

	"scap/internal/delayscale"
)

// Point is one capture-period step of the sweep.
type Point struct {
	PeriodNs float64
	FreqMHz  float64
	// NomViolations endpoints miss timing even at nominal voltage (true
	// small-delay screening); ScaledViolations miss under IR-drop;
	// Overkill = scaled - nominal: good-chip failures caused by the test's
	// own supply noise.
	NomViolations, ScaledViolations, Overkill int
}

// Result is the complete sweep.
type Result struct {
	Points []Point
	// MaxSafeFreqMHz is the highest swept frequency with zero overkill.
	MaxSafeFreqMHz float64
	// MinPeriodNoOverkillNs is the matching period (0 if none qualifies).
	MinPeriodNoOverkillNs float64
}

// Sweep evaluates capture periods from maxPeriod down to minPeriod in
// steps (all ns). Margin is the setup guard subtracted from each period.
func Sweep(imp *delayscale.Impact, minPeriod, maxPeriod, step, margin float64) (*Result, error) {
	if step <= 0 || minPeriod <= 0 || maxPeriod < minPeriod {
		return nil, fmt.Errorf("ftas: bad sweep range [%g, %g] step %g", minPeriod, maxPeriod, step)
	}
	// Collect active endpoint delays once.
	var nom, scl []float64
	for i := range imp.Endpoints {
		ep := &imp.Endpoints[i]
		if !ep.Active {
			continue
		}
		nom = append(nom, ep.Nominal)
		scl = append(scl, ep.Scaled)
	}
	sort.Float64s(nom)
	sort.Float64s(scl)
	countAbove := func(sorted []float64, limit float64) int {
		// First index with value > limit.
		lo := sort.SearchFloat64s(sorted, limit)
		for lo < len(sorted) && sorted[lo] <= limit {
			lo++
		}
		return len(sorted) - lo
	}

	res := &Result{}
	for p := maxPeriod; p >= minPeriod-1e-9; p -= step {
		limit := p - margin
		pt := Point{
			PeriodNs:         p,
			FreqMHz:          1000 / p,
			NomViolations:    countAbove(nom, limit),
			ScaledViolations: countAbove(scl, limit),
		}
		pt.Overkill = pt.ScaledViolations - pt.NomViolations
		if pt.Overkill < 0 {
			pt.Overkill = 0
		}
		res.Points = append(res.Points, pt)
		if pt.Overkill == 0 && (res.MinPeriodNoOverkillNs == 0 || p < res.MinPeriodNoOverkillNs) {
			res.MinPeriodNoOverkillNs = p
			res.MaxSafeFreqMHz = pt.FreqMHz
		}
	}
	return res, nil
}
