// Package sdf computes and exchanges per-instance pin-to-output delays in a
// reduced SDF-style format. It stands in for the paper's standard-delay-
// format back-annotation step: the event-driven timing simulator and the
// IR-drop-aware re-simulation both consume a Delays table, either computed
// directly from the library and extracted parasitics (Compute) or read back
// from an SDF file (Read).
package sdf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"scap/internal/netlist"
)

// Delays holds, for every instance (indexed by InstID), the delay from an
// input change to the corresponding output change, split by output edge.
// The value includes the cell delay under its extracted output load plus
// the interconnect delay of the output net.
type Delays struct {
	Rise []float64 // ns, output rising
	Fall []float64 // ns, output falling
}

// Compute derives nominal delays for every instance of d from the library's
// linear delay model and the parasitic annotation on the nets.
func Compute(d *netlist.Design) *Delays {
	n := len(d.Insts)
	dl := &Delays{Rise: make([]float64, n), Fall: make([]float64, n)}
	for i := range d.Insts {
		inst := &d.Insts[i]
		c := d.Lib.Cell(inst.Kind)
		load := d.LoadCap(inst.ID)
		wire := d.Nets[inst.Out].WireDelay
		dl.Rise[i] = c.RiseDelay(load) + wire
		dl.Fall[i] = c.FallDelay(load) + wire
	}
	return dl
}

// Clone returns a deep copy of the delay table (used before scaling).
func (dl *Delays) Clone() *Delays {
	out := &Delays{Rise: make([]float64, len(dl.Rise)), Fall: make([]float64, len(dl.Fall))}
	copy(out.Rise, dl.Rise)
	copy(out.Fall, dl.Fall)
	return out
}

// Of returns the rise and fall delay of instance id.
func (dl *Delays) Of(id netlist.InstID) (rise, fall float64) {
	return dl.Rise[id], dl.Fall[id]
}

// Write emits the delay table in reduced SDF form: one IOPATH record per
// instance with rise and fall delays in ns.
func Write(w io.Writer, d *netlist.Design, dl *Delays) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "(DELAYFILE (DESIGN \"%s\") (TIMESCALE 1ns)\n", d.Name)
	for i := range d.Insts {
		fmt.Fprintf(bw, "(CELL %s (IOPATH %.6g %.6g))\n", d.Insts[i].Name, dl.Rise[i], dl.Fall[i])
	}
	fmt.Fprintln(bw, ")")
	return bw.Flush()
}

// Read parses a reduced-SDF stream written by Write and returns the delay
// table for d (instances matched by name).
func Read(r io.Reader, d *netlist.Design) (*Delays, error) {
	byName := make(map[string]netlist.InstID, len(d.Insts))
	for i := range d.Insts {
		byName[d.Insts[i].Name] = netlist.InstID(i)
	}
	dl := &Delays{Rise: make([]float64, len(d.Insts)), Fall: make([]float64, len(d.Insts))}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(txt, "(CELL ") {
			continue
		}
		txt = strings.TrimSuffix(strings.TrimPrefix(txt, "("), ")")
		txt = strings.ReplaceAll(txt, "(", " ")
		txt = strings.ReplaceAll(txt, ")", " ")
		f := strings.Fields(txt)
		// Expect: CELL <name> IOPATH <rise> <fall>
		if len(f) != 5 || f[0] != "CELL" || f[2] != "IOPATH" {
			return nil, fmt.Errorf("sdf: line %d: malformed record %q", line, txt)
		}
		id, ok := byName[f[1]]
		if !ok {
			return nil, fmt.Errorf("sdf: line %d: unknown instance %q", line, f[1])
		}
		rise, err := strconv.ParseFloat(f[3], 64)
		if err != nil {
			return nil, fmt.Errorf("sdf: line %d: bad rise delay: %v", line, err)
		}
		fall, err := strconv.ParseFloat(f[4], 64)
		if err != nil {
			return nil, fmt.Errorf("sdf: line %d: bad fall delay: %v", line, err)
		}
		dl.Rise[id], dl.Fall[id] = rise, fall
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return dl, nil
}
