package sdf

import (
	"bytes"
	"strings"
	"testing"

	"scap/internal/parasitic"
	"scap/internal/place"
	"scap/internal/soc"
)

func computed(t *testing.T) (*Delays, int) {
	t.Helper()
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := place.Place(d, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := parasitic.Extract(d, fp, parasitic.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	return Compute(d), d.NumInsts()
}

func TestComputePositiveDelays(t *testing.T) {
	dl, n := computed(t)
	if len(dl.Rise) != n || len(dl.Fall) != n {
		t.Fatalf("table sized %d/%d, want %d", len(dl.Rise), len(dl.Fall), n)
	}
	for i := range dl.Rise {
		if dl.Rise[i] <= 0 || dl.Fall[i] <= 0 {
			t.Fatalf("instance %d has non-positive delay (%v, %v)", i, dl.Rise[i], dl.Fall[i])
		}
		if dl.Rise[i] > 5 || dl.Fall[i] > 5 {
			t.Fatalf("instance %d has implausible stage delay (%v, %v) ns", i, dl.Rise[i], dl.Fall[i])
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	dl, _ := computed(t)
	cp := dl.Clone()
	cp.Rise[0] = 99
	if dl.Rise[0] == 99 {
		t.Fatal("Clone shares storage")
	}
	r, f := dl.Of(3)
	if r != dl.Rise[3] || f != dl.Fall[3] {
		t.Fatal("Of accessor wrong")
	}
}

func TestSDFRoundTrip(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := place.Place(d, 1)
	if _, err := parasitic.Extract(d, fp, parasitic.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	dl := Compute(d)
	var buf bytes.Buffer
	if err := Write(&buf, d, dl); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()), d)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dl.Rise {
		if !approx(back.Rise[i], dl.Rise[i]) || !approx(back.Fall[i], dl.Fall[i]) {
			t.Fatalf("instance %d: got (%v,%v) want (%v,%v)",
				i, back.Rise[i], back.Fall[i], dl.Rise[i], dl.Fall[i])
		}
	}
}

func approx(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-4*(1+b)
}

func TestReadErrors(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Read(strings.NewReader("(CELL nosuch (IOPATH 1 2))\n"), d); err == nil {
		t.Fatal("unknown instance accepted")
	}
	name := d.Insts[0].Name
	if _, err := Read(strings.NewReader("(CELL "+name+" (IOPATH x 2))\n"), d); err == nil {
		t.Fatal("bad rise accepted")
	}
	if _, err := Read(strings.NewReader("(CELL "+name+" (IOPATH 1 y))\n"), d); err == nil {
		t.Fatal("bad fall accepted")
	}
	if _, err := Read(strings.NewReader("(CELL "+name+")\n"), d); err == nil {
		t.Fatal("malformed record accepted")
	}
	if _, err := Read(strings.NewReader("(DELAYFILE)\nnothing\n"), d); err != nil {
		t.Fatalf("benign lines rejected: %v", err)
	}
}
