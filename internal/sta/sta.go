// Package sta implements a lightweight static timing analysis over the
// gate-level netlist: topological worst-case arrival times for one clock
// domain's launch-to-capture paths, per-endpoint path delays relative to
// the capture flop's own clock arrival, and critical-path extraction.
//
// The reproduction uses it to estimate the switching time frame window
// without simulation (the STW-estimate ablation), to calibrate the SOC's
// path-depth against the paper's "STW ≈ half the cycle" observation, and
// to report worst negative slack under the test period.
package sta

import (
	"fmt"
	"math"

	"scap/internal/clocktree"
	"scap/internal/netlist"
	"scap/internal/sdf"
)

// Results holds one domain's static timing picture.
type Results struct {
	Dom int
	// Arrival is the worst-case transition arrival time per net (ns after
	// the launch clock-source edge); nets unreachable from the domain's
	// launch flops hold -Inf.
	Arrival []float64
	// EndpointDelay[i] is the arrival at flop i's D input minus that
	// flop's own clock arrival; NaN for unreachable endpoints.
	EndpointDelay []float64
	// MaxArrival is the latest arrival at any observed endpoint — the STA
	// estimate of the worst switching time frame window.
	MaxArrival float64
	// WNS is the worst negative slack at the analyzed period (positive
	// means all paths meet timing).
	WNS float64
	// CritEndpoint is the flop index of the critical endpoint (-1 if none).
	CritEndpoint int
	// CritPath lists the instances of the critical path, launch to capture.
	CritPath []netlist.InstID
}

// Analyze runs worst-case arrival analysis for domain dom at the given
// test period. Launch points are the domain's flops (clock arrival plus
// clock-to-Q); primary inputs are static and do not launch transitions.
func Analyze(d *netlist.Design, delays *sdf.Delays, tree *clocktree.Tree, dom int, period float64) (*Results, error) {
	order, err := d.TopoOrder()
	if err != nil {
		return nil, fmt.Errorf("sta: %w", err)
	}
	neg := math.Inf(-1)
	res := &Results{
		Dom:           dom,
		Arrival:       make([]float64, d.NumNets()),
		EndpointDelay: make([]float64, len(d.Flops)),
		CritEndpoint:  -1,
	}
	for i := range res.Arrival {
		res.Arrival[i] = neg
	}
	// from[n] records the instance whose arc set net n's arrival (for path
	// recovery); NoInst for launch points.
	from := make([]netlist.InstID, d.NumNets())
	for i := range from {
		from[i] = netlist.NoInst
	}

	for _, f := range d.Flops {
		inst := d.Inst(f)
		if inst.Domain != dom {
			continue
		}
		clk := 0.0
		if tree != nil {
			clk = tree.Arrival(f)
		}
		rise, fall := delays.Of(f)
		a := clk + math.Max(rise, fall)
		if a > res.Arrival[inst.Out] {
			res.Arrival[inst.Out] = a
			from[inst.Out] = f
		}
	}

	for _, id := range order {
		inst := d.Inst(id)
		if inst.IsFlop() {
			continue
		}
		worst := neg
		for _, in := range inst.In {
			if in != netlist.NoNet && res.Arrival[in] > worst {
				worst = res.Arrival[in]
			}
		}
		if math.IsInf(worst, -1) {
			continue
		}
		rise, fall := delays.Of(id)
		a := worst + math.Max(rise, fall)
		if a > res.Arrival[inst.Out] {
			res.Arrival[inst.Out] = a
			from[inst.Out] = id
		}
	}

	res.WNS = math.Inf(1)
	for i, f := range d.Flops {
		inst := d.Inst(f)
		dn := inst.In[0]
		a := res.Arrival[dn]
		if math.IsInf(a, -1) || inst.Domain != dom {
			res.EndpointDelay[i] = math.NaN()
			continue
		}
		clk := 0.0
		if tree != nil {
			clk = tree.Arrival(f)
		}
		res.EndpointDelay[i] = a - clk
		if a > res.MaxArrival {
			res.MaxArrival = a
			res.CritEndpoint = i
		}
		if slack := period + clk - a; slack < res.WNS {
			res.WNS = slack
		}
	}
	if math.IsInf(res.WNS, 1) {
		res.WNS = period
	}

	if res.CritEndpoint >= 0 {
		// Recover the critical path by walking from pointers backward.
		f := d.Flops[res.CritEndpoint]
		path := []netlist.InstID{f}
		n := d.Inst(f).In[0]
		for steps := 0; steps < d.NumInsts(); steps++ {
			src := from[n]
			if src == netlist.NoInst {
				break
			}
			path = append(path, src)
			inst := d.Inst(src)
			if inst.IsFlop() {
				break
			}
			// Continue from the input with the worst arrival.
			worst, pick := neg, netlist.NoNet
			for _, in := range inst.In {
				if in != netlist.NoNet && res.Arrival[in] > worst {
					worst, pick = res.Arrival[in], in
				}
			}
			if pick == netlist.NoNet {
				break
			}
			n = pick
		}
		// Reverse to launch-to-capture order.
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		res.CritPath = path
	}
	return res, nil
}
