package sta

import (
	"math"
	"testing"

	"scap/internal/cell"
	"scap/internal/clocktree"
	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/parasitic"
	"scap/internal/place"
	"scap/internal/sdf"
	"scap/internal/sim"
	"scap/internal/soc"
)

func TestAnalyzeChain(t *testing.T) {
	d := netlist.New("chain", cell.New180nm())
	d.NumBlocks = 1
	d.Domains = []netlist.DomainInfo{{Name: "clk", FreqMHz: 50, PeriodNs: 20}}
	q1 := d.AddNet("q1")
	q2 := d.AddNet("q2")
	a := d.AddNet("a")
	b := d.AddNet("b")
	d.AddInst("i1", cell.Inv, []netlist.NetID{q1}, a, 0)
	d.AddInst("i2", cell.Inv, []netlist.NetID{a}, b, 0)
	f1 := d.AddInst("f1", cell.DFF, []netlist.NetID{b}, q1, 0)
	f2 := d.AddInst("f2", cell.DFF, []netlist.NetID{b}, q2, 0)
	d.SetDomain(f1, 0, false)
	d.SetDomain(f2, 0, false)
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
	dl := sdf.Compute(d)
	res, err := Analyze(d, dl, nil, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	var i1, i2 netlist.InstID
	for i := range d.Insts {
		switch d.Insts[i].Name {
		case "i1":
			i1 = netlist.InstID(i)
		case "i2":
			i2 = netlist.InstID(i)
		}
	}
	ffMax := math.Max(dl.Rise[f1], dl.Fall[f1])
	want := ffMax + math.Max(dl.Rise[i1], dl.Fall[i1]) + math.Max(dl.Rise[i2], dl.Fall[i2])
	if math.Abs(res.MaxArrival-want) > 1e-9 {
		t.Fatalf("MaxArrival %v, want %v", res.MaxArrival, want)
	}
	if math.Abs(res.WNS-(20-want)) > 1e-9 {
		t.Fatalf("WNS %v, want %v", res.WNS, 20-want)
	}
	// Critical path: f1 -> i1 -> i2 -> (endpoint flop).
	if len(res.CritPath) < 3 {
		t.Fatalf("critical path too short: %d", len(res.CritPath))
	}
	if res.CritPath[0] != f1 && res.CritPath[0] != f2 {
		t.Fatalf("path does not start at a flop: %v", res.CritPath)
	}
}

func buildSOC(t *testing.T) (*netlist.Design, *sdf.Delays, *clocktree.Tree) {
	t.Helper()
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	fp, _ := place.Place(d, 1)
	if _, err := parasitic.Extract(d, fp, parasitic.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	return d, sdf.Compute(d), clocktree.Build(d, fp, clocktree.DefaultParams(), 5)
}

func TestAnalyzeSOCDomains(t *testing.T) {
	d, dl, tree := buildSOC(t)
	res, err := Analyze(d, dl, tree, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxArrival <= 0 {
		t.Fatal("no arrivals")
	}
	if res.CritEndpoint < 0 {
		t.Fatal("no critical endpoint")
	}
	// Endpoints of other domains must be NaN.
	for i, f := range d.Flops {
		if d.Inst(f).Domain != 0 && !math.IsNaN(res.EndpointDelay[i]) {
			t.Fatalf("cross-domain endpoint %d has delay %v", i, res.EndpointDelay[i])
		}
	}
}

// TestSTAUpperBoundsTimingSim: the STA worst arrival must upper-bound the
// last transition time of any simulated launch of the same domain.
func TestSTAUpperBoundsTimingSim(t *testing.T) {
	d, dl, tree := buildSOC(t)
	res, err := Analyze(d, dl, tree, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	tm := sim.NewTiming(s, dl, tree)
	v1 := make([]logic.V, len(d.Flops))
	pis := make([]logic.V, len(d.PIs))
	for i := range v1 {
		v1[i] = logic.FromBool(i%3 == 0)
	}
	for i := range pis {
		pis[i] = logic.FromBool(i%2 == 0)
	}
	nets := s.NewNets()
	s.SetPIs(nets, pis)
	s.ApplyState(nets, v1)
	s.Propagate(nets)
	cap1 := s.CaptureState(nets)
	v2 := make([]logic.V, len(d.Flops))
	for i, f := range d.Flops {
		if d.Inst(f).Domain == 0 {
			v2[i] = cap1[i]
		} else {
			v2[i] = v1[i]
		}
	}
	simRes, err := tm.Launch(v1, v2, pis, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if simRes.LastEvent > res.MaxArrival+1e-6 {
		t.Fatalf("simulated last event %v exceeds STA bound %v", simRes.LastEvent, res.MaxArrival)
	}
	if simRes.LastEvent <= 0 {
		t.Fatal("no simulated activity")
	}
	t.Logf("STA max arrival %.2f ns, simulated STW %.2f ns (period 20)", res.MaxArrival, simRes.LastEvent)
}

func TestWorstPaths(t *testing.T) {
	d, dl, tree := buildSOC(t)
	paths, err := WorstPaths(d, dl, tree, 0, 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	// Sorted by slack ascending; delays consistent; paths start at a flop.
	for i, p := range paths {
		if i > 0 && p.SlackNs < paths[i-1].SlackNs {
			t.Fatal("paths not sorted by slack")
		}
		if math.Abs(p.SlackNs-(20-p.DelayNs)) > 1e-9 {
			t.Fatalf("slack %v != period - delay %v", p.SlackNs, 20-p.DelayNs)
		}
		if len(p.Insts) == 0 {
			t.Fatal("empty path trace")
		}
		launch := d.Inst(p.Insts[0])
		if !launch.IsFlop() {
			t.Fatalf("path %d does not start at a flop (%s)", i, launch.Name)
		}
		if launch.Domain != 0 {
			t.Fatal("launch flop outside the analyzed domain")
		}
	}
	if _, err := WorstPaths(d, dl, tree, 0, 20, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}
