package sta

import (
	"fmt"
	"math"
	"sort"

	"scap/internal/clocktree"
	"scap/internal/netlist"
	"scap/internal/sdf"
)

// Path is one timed launch-to-capture path.
type Path struct {
	Endpoint netlist.InstID // capture flop
	DelayNs  float64        // arrival at D minus the endpoint's clock arrival
	SlackNs  float64
	// Insts lists the path's instances from the launch flop to the gate
	// driving the endpoint's D input.
	Insts []netlist.InstID
}

// WorstPaths returns the k worst (smallest-slack) paths of a domain, one
// per endpoint, sorted by slack ascending — the report a signoff engineer
// reads first. It reuses the arrival analysis and recovers each endpoint's
// path by walking worst-arrival fanins.
func WorstPaths(d *netlist.Design, delays *sdf.Delays, tree *clocktree.Tree,
	dom int, period float64, k int) ([]Path, error) {

	if k <= 0 {
		return nil, fmt.Errorf("sta: k must be positive")
	}
	res, err := Analyze(d, delays, tree, dom, period)
	if err != nil {
		return nil, err
	}

	type cand struct {
		flopPos int
		slack   float64
	}
	var cands []cand
	for i := range d.Flops {
		dly := res.EndpointDelay[i]
		if math.IsNaN(dly) {
			continue
		}
		cands = append(cands, cand{flopPos: i, slack: period - dly})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].slack < cands[b].slack })
	if len(cands) > k {
		cands = cands[:k]
	}

	paths := make([]Path, 0, len(cands))
	for _, c := range cands {
		f := d.Flops[c.flopPos]
		p := Path{Endpoint: f, DelayNs: res.EndpointDelay[c.flopPos], SlackNs: c.slack}
		// Walk backward along worst arrivals from the D net.
		n := d.Inst(f).In[0]
		for steps := 0; steps < d.NumInsts(); steps++ {
			drv := d.Nets[n].Driver
			if drv == netlist.NoInst {
				break
			}
			p.Insts = append(p.Insts, drv)
			inst := d.Inst(drv)
			if inst.IsFlop() {
				break
			}
			worst, pick := math.Inf(-1), netlist.NoNet
			for _, in := range inst.In {
				if in != netlist.NoNet && res.Arrival[in] > worst {
					worst, pick = res.Arrival[in], in
				}
			}
			if pick == netlist.NoNet || math.IsInf(worst, -1) {
				break
			}
			n = pick
		}
		// Reverse to launch-to-capture order.
		for i, j := 0, len(p.Insts)-1; i < j; i, j = i+1, j-1 {
			p.Insts[i], p.Insts[j] = p.Insts[j], p.Insts[i]
		}
		paths = append(paths, p)
	}
	return paths, nil
}
