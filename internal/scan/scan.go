// Package scan implements the full-scan design-for-test substrate: it
// converts every flop to a scan flop, stitches the configured number of
// scan chains (per clock domain, with the negative-edge flops on their own
// chain exactly as the paper's design keeps its 22 negative-edge cells on a
// separate chain), orders the cells within a chain by placement to
// minimize scan wirelength, and provides a functional shift model used to
// validate chain connectivity.
package scan

import (
	"fmt"
	"sort"

	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/sim"
)

// Chain is one stitched scan chain.
type Chain struct {
	Index   int
	Name    string
	Domain  int
	NegEdge bool
	// Flops lists the chain's cells in shift order: Flops[0] is the cell
	// next to the scan-input pin, Flops[len-1] drives the scan output.
	Flops []netlist.InstID
}

// Pos locates a flop inside the chain set.
type Pos struct {
	Chain int // index into Scan.Chains
	Index int // position within the chain
}

// Scan is the result of scan insertion.
type Scan struct {
	D      *netlist.Design
	Chains []Chain

	SE  netlist.NetID   // global scan-enable net (a primary input)
	SIs []netlist.NetID // per-chain scan-in nets (primary inputs)
	SOs []netlist.NetID // per-chain scan-out nets (marked primary outputs)

	pos map[netlist.InstID]Pos
}

// Config controls scan insertion.
type Config struct {
	// NumChains is the total chain budget (the paper's design uses 16).
	// One chain is reserved for negative-edge flops when any exist; the
	// rest are split across clock domains proportionally to flop count.
	NumChains int
	// OrderByPlacement serpentine-orders cells within each chain by their
	// placed location (requires placement); false keeps design order.
	OrderByPlacement bool
}

// DefaultConfig matches the paper's DFT setup.
func DefaultConfig() Config { return Config{NumChains: 16, OrderByPlacement: true} }

// Insert converts all flops of d to scan flops and stitches chains.
func Insert(d *netlist.Design, cfg Config) (*Scan, error) {
	if cfg.NumChains < 1 {
		return nil, fmt.Errorf("scan: NumChains must be >= 1")
	}
	if len(d.Flops) == 0 {
		return nil, fmt.Errorf("scan: design has no flops")
	}

	// Partition flops: negative-edge cells apart, the rest per domain.
	var neg []netlist.InstID
	perDomain := make([][]netlist.InstID, len(d.Domains))
	for _, f := range d.Flops {
		inst := d.Inst(f)
		if inst.NegEdge {
			neg = append(neg, f)
		} else {
			perDomain[inst.Domain] = append(perDomain[inst.Domain], f)
		}
	}

	budget := cfg.NumChains
	if len(neg) > 0 {
		budget--
	}
	if budget < 1 {
		budget = 1
	}
	total := len(d.Flops) - len(neg)

	sc := &Scan{D: d, pos: make(map[netlist.InstID]Pos, len(d.Flops))}
	sc.SE = d.AddPI("scan_enable")

	addChain := func(name string, domain int, negEdge bool, flops []netlist.InstID) {
		if len(flops) == 0 {
			return
		}
		if cfg.OrderByPlacement {
			serpentine(d, flops)
		}
		ci := len(sc.Chains)
		si := d.AddPI(fmt.Sprintf("si%d", ci))
		prev := si
		for k, f := range flops {
			d.ConvertToScan(f, prev, sc.SE)
			sc.pos[f] = Pos{Chain: ci, Index: k}
			prev = d.Inst(f).Out
		}
		d.MarkPO(prev)
		sc.Chains = append(sc.Chains, Chain{
			Index: ci, Name: name, Domain: domain, NegEdge: negEdge, Flops: flops,
		})
		sc.SIs = append(sc.SIs, si)
		sc.SOs = append(sc.SOs, prev)
	}

	for dom, flops := range perDomain {
		if len(flops) == 0 {
			continue
		}
		// Chains for this domain, proportional with a floor of one.
		n := budget * len(flops) / max(total, 1)
		if n < 1 {
			n = 1
		}
		per := (len(flops) + n - 1) / n
		for c := 0; c*per < len(flops); c++ {
			lo, hi := c*per, (c+1)*per
			if hi > len(flops) {
				hi = len(flops)
			}
			addChain(fmt.Sprintf("chain_%s_%d", d.Domains[dom].Name, c), dom, false, flops[lo:hi])
		}
	}
	if len(neg) > 0 {
		addChain("chain_negedge", 0, true, neg)
	}

	if err := d.Check(); err != nil {
		return nil, fmt.Errorf("scan: post-insertion check: %w", err)
	}
	return sc, nil
}

// serpentine orders flops in row bands by Y, alternating X direction —
// the classical placement-driven scan ordering that minimizes stitch
// wirelength.
func serpentine(d *netlist.Design, flops []netlist.InstID) {
	sort.Slice(flops, func(i, j int) bool {
		a, b := d.Inst(flops[i]), d.Inst(flops[j])
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		return a.X < b.X
	})
	// Band rows of ~sqrt(n) cells and reverse every other band.
	n := len(flops)
	band := 1
	for band*band < n {
		band++
	}
	for lo := 0; lo < n; lo += band {
		hi := lo + band
		if hi > n {
			hi = n
		}
		if (lo/band)%2 == 1 {
			for i, j := lo, hi-1; i < j; i, j = i+1, j-1 {
				flops[i], flops[j] = flops[j], flops[i]
			}
		}
	}
}

// PosOf returns the chain position of flop f.
func (sc *Scan) PosOf(f netlist.InstID) (Pos, bool) {
	p, ok := sc.pos[f]
	return p, ok
}

// NumFlops returns the total number of scan cells over all chains.
func (sc *Scan) NumFlops() int {
	n := 0
	for i := range sc.Chains {
		n += len(sc.Chains[i].Flops)
	}
	return n
}

// MaxChainLen returns the longest chain length (the shift cycle count).
func (sc *Scan) MaxChainLen() int {
	m := 0
	for i := range sc.Chains {
		if len(sc.Chains[i].Flops) > m {
			m = len(sc.Chains[i].Flops)
		}
	}
	return m
}

// ShiftIn performs a functional scan shift of the given per-chain vectors
// (vectors[c][0] ends up in chain c's first cell, i.e. it is shifted in
// last) using the zero-delay simulator, starting from state start
// (d.Flops order; may be nil for all-X). It returns the resulting state.
// Every vector must match its chain length. PIs other than scan pins hold
// the provided values.
func (sc *Scan) ShiftIn(s *sim.Simulator, start []logic.V, vectors [][]logic.V, pis []logic.V) ([]logic.V, error) {
	d := sc.D
	if len(vectors) != len(sc.Chains) {
		return nil, fmt.Errorf("scan: %d vectors for %d chains", len(vectors), len(sc.Chains))
	}
	for c := range vectors {
		if len(vectors[c]) != len(sc.Chains[c].Flops) {
			return nil, fmt.Errorf("scan: chain %d vector length %d, want %d",
				c, len(vectors[c]), len(sc.Chains[c].Flops))
		}
	}
	state := make([]logic.V, len(d.Flops))
	if start == nil {
		for i := range state {
			state[i] = logic.X
		}
	} else {
		copy(state, start)
	}
	if pis == nil {
		pis = make([]logic.V, len(d.PIs))
		for i := range pis {
			pis[i] = logic.X
		}
	} else {
		cp := make([]logic.V, len(d.PIs))
		copy(cp, pis)
		pis = cp
	}
	pis[d.Nets[sc.SE].PI] = logic.One

	cycles := sc.MaxChainLen()
	nets := s.NewNets()
	for cyc := 0; cyc < cycles; cyc++ {
		// The bit destined for position p must enter at cycle cycles-1-p,
		// so shorter chains see don't-care padding during the early cycles
		// and their real bits during the last len(chain) cycles.
		for c := range sc.Chains {
			vec := vectors[c]
			idx := cycles - 1 - cyc
			bit := logic.X
			if idx < len(vec) {
				bit = vec[idx]
			}
			pis[d.Nets[sc.SIs[c]].PI] = bit
		}
		s.SetPIs(nets, pis)
		s.ApplyState(nets, state)
		s.Propagate(nets)
		state = s.CaptureState(nets)
	}
	return state, nil
}

// StateOf converts per-chain vectors directly into a per-flop state vector
// without simulating the shift (vectors[c][k] lands in chain c cell k).
func (sc *Scan) StateOf(vectors [][]logic.V) ([]logic.V, error) {
	if len(vectors) != len(sc.Chains) {
		return nil, fmt.Errorf("scan: %d vectors for %d chains", len(vectors), len(sc.Chains))
	}
	d := sc.D
	state := make([]logic.V, len(d.Flops))
	for i := range state {
		state[i] = logic.X
	}
	flopIdx := make(map[netlist.InstID]int, len(d.Flops))
	for i, f := range d.Flops {
		flopIdx[f] = i
	}
	for c := range sc.Chains {
		if len(vectors[c]) != len(sc.Chains[c].Flops) {
			return nil, fmt.Errorf("scan: chain %d vector length %d, want %d",
				c, len(vectors[c]), len(sc.Chains[c].Flops))
		}
		for k, f := range sc.Chains[c].Flops {
			state[flopIdx[f]] = vectors[c][k]
		}
	}
	return state, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// FlushTest performs the classical chain-integrity check: a known bit
// sequence is shifted through every chain with scan-enable held high, and
// each chain's scan-out stream must reproduce the scan-in stream delayed
// by exactly the chain length. It returns the first broken chain found
// (nil when all chains are intact). This is the pattern manufacturing
// applies before any fault test — a broken chain fails here immediately.
func (sc *Scan) FlushTest(s *sim.Simulator, seq []logic.V) error {
	if len(seq) == 0 {
		seq = []logic.V{logic.Zero, logic.Zero, logic.One, logic.One}
	}
	d := sc.D
	pis := make([]logic.V, len(d.PIs))
	for i := range pis {
		pis[i] = logic.Zero
	}
	pis[d.Nets[sc.SE].PI] = logic.One

	state := make([]logic.V, len(d.Flops))
	for i := range state {
		state[i] = logic.X
	}
	nets := s.NewNets()
	cycles := sc.MaxChainLen() + 2*len(seq)
	// outs[c][t] is chain c's scan-out value before shift cycle t.
	outs := make([][]logic.V, len(sc.Chains))
	for cyc := 0; cyc < cycles; cyc++ {
		bit := seq[cyc%len(seq)]
		for c := range sc.Chains {
			pis[d.Nets[sc.SIs[c]].PI] = bit
		}
		s.SetPIs(nets, pis)
		s.ApplyState(nets, state)
		s.Propagate(nets)
		for c := range sc.Chains {
			outs[c] = append(outs[c], nets[sc.SOs[c]])
		}
		state = s.CaptureState(nets)
	}
	// outs[c][t] is the scan-out observed after t shifts: it must carry the
	// bit injected at cycle t-L (cell 0 at end of cycle t-L, cell L-1 at
	// end of cycle t-1, visible during cycle t).
	for c := range sc.Chains {
		L := len(sc.Chains[c].Flops)
		for t := L; t < cycles; t++ {
			want := seq[(t-L)%len(seq)]
			if outs[c][t] != want {
				return fmt.Errorf("scan: chain %s broken: flush bit %d expected %v, got %v",
					sc.Chains[c].Name, t, want, outs[c][t])
			}
		}
	}
	return nil
}
