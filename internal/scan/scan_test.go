package scan

import (
	"math/rand"
	"testing"

	"scap/internal/logic"
	"scap/internal/netlist"
	"scap/internal/place"
	"scap/internal/sim"
	"scap/internal/soc"
)

func inserted(t *testing.T, byPlacement bool) (*netlist.Design, *Scan) {
	t.Helper()
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if byPlacement {
		if _, err := place.Place(d, 1); err != nil {
			t.Fatal(err)
		}
	}
	cfg := DefaultConfig()
	cfg.OrderByPlacement = byPlacement
	sc, err := Insert(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d, sc
}

func TestInsertConvertsAllFlops(t *testing.T) {
	d, sc := inserted(t, true)
	if sc.NumFlops() != len(d.Flops) {
		t.Fatalf("chains carry %d flops, design has %d", sc.NumFlops(), len(d.Flops))
	}
	for _, f := range d.Flops {
		inst := d.Inst(f)
		if inst.Kind.String() != "SDFF" {
			t.Fatalf("flop %s not converted (%v)", inst.Name, inst.Kind)
		}
		if _, ok := sc.PosOf(f); !ok {
			t.Fatalf("flop %s not on any chain", inst.Name)
		}
	}
	if err := d.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestChainStructure(t *testing.T) {
	d, sc := inserted(t, true)
	if len(sc.Chains) == 0 || len(sc.SIs) != len(sc.Chains) || len(sc.SOs) != len(sc.Chains) {
		t.Fatalf("chain bookkeeping: %d chains, %d SIs, %d SOs",
			len(sc.Chains), len(sc.SIs), len(sc.SOs))
	}
	// Negative-edge flops live on exactly one dedicated chain.
	negChains := 0
	for _, c := range sc.Chains {
		if c.NegEdge {
			negChains++
			for _, f := range c.Flops {
				if !d.Inst(f).NegEdge {
					t.Fatal("pos-edge flop on the neg-edge chain")
				}
			}
		} else {
			for _, f := range c.Flops {
				if d.Inst(f).NegEdge {
					t.Fatal("neg-edge flop on a regular chain")
				}
				if d.Inst(f).Domain != c.Domain {
					t.Fatalf("chain %s mixes domains", c.Name)
				}
			}
		}
	}
	if negChains != 1 {
		t.Fatalf("%d neg-edge chains, want 1", negChains)
	}
	// Chain SI wiring: cell k's SI pin must be cell k-1's Q (or the SI pin).
	for _, c := range sc.Chains {
		prev := sc.SIs[c.Index]
		for _, f := range c.Flops {
			inst := d.Inst(f)
			if inst.In[1] != prev {
				t.Fatalf("chain %s broken at %s", c.Name, inst.Name)
			}
			if inst.In[2] != sc.SE {
				t.Fatalf("flop %s SE not on global scan enable", inst.Name)
			}
			prev = inst.Out
		}
		if sc.SOs[c.Index] != prev {
			t.Fatalf("chain %s scan-out mismatch", c.Name)
		}
	}
}

func TestChainCountNearBudget(t *testing.T) {
	_, sc := inserted(t, true)
	cfg := DefaultConfig()
	// Proportional allocation with floors can exceed the budget slightly
	// (six domains + neg-edge chain), but must stay in the same ballpark.
	if len(sc.Chains) < 6 || len(sc.Chains) > cfg.NumChains+6 {
		t.Fatalf("%d chains for budget %d", len(sc.Chains), cfg.NumChains)
	}
}

func TestShiftInMatchesStateOf(t *testing.T) {
	d, sc := inserted(t, false)
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(4))
	vectors := make([][]logic.V, len(sc.Chains))
	for c := range vectors {
		vectors[c] = make([]logic.V, len(sc.Chains[c].Flops))
		for k := range vectors[c] {
			vectors[c][k] = logic.FromBool(r.Intn(2) == 1)
		}
	}
	pis := make([]logic.V, len(d.PIs))
	for i := range pis {
		pis[i] = logic.Zero
	}
	got, err := sc.ShiftIn(s, nil, vectors, pis)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sc.StateOf(vectors)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("flop %d (%s): shifted %v, direct %v",
				i, d.Inst(d.Flops[i]).Name, got[i], want[i])
		}
	}
}

func TestStateOfLengthValidation(t *testing.T) {
	_, sc := inserted(t, false)
	if _, err := sc.StateOf(nil); err == nil {
		t.Fatal("nil vectors accepted")
	}
	bad := make([][]logic.V, len(sc.Chains))
	for c := range bad {
		bad[c] = make([]logic.V, len(sc.Chains[c].Flops))
	}
	bad[0] = bad[0][:len(bad[0])-1]
	if _, err := sc.StateOf(bad); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestShiftValidation(t *testing.T) {
	d, sc := inserted(t, false)
	s, _ := sim.New(d)
	if _, err := sc.ShiftIn(s, nil, nil, nil); err == nil {
		t.Fatal("nil vectors accepted")
	}
}

func TestSerpentineOrderingReducesWirelength(t *testing.T) {
	dOrdered, scOrdered := inserted(t, true)
	dPlain, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(dPlain, 1); err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.OrderByPlacement = false
	scPlain, err := Insert(dPlain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	length := func(d *netlist.Design, sc *Scan) float64 {
		total := 0.0
		for _, c := range sc.Chains {
			for k := 1; k < len(c.Flops); k++ {
				total += place.Dist(d.Inst(c.Flops[k-1]), d.Inst(c.Flops[k]))
			}
		}
		return total
	}
	lo, lp := length(dOrdered, scOrdered), length(dPlain, scPlain)
	if lo >= lp {
		t.Fatalf("placement-ordered chains (%v) not shorter than design order (%v)", lo, lp)
	}
}

func TestInsertErrors(t *testing.T) {
	d, _, err := soc.Generate(soc.DefaultConfig(64))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Insert(d, Config{NumChains: 0}); err == nil {
		t.Fatal("zero chains accepted")
	}
}

func TestFlushTestPassesOnIntactChains(t *testing.T) {
	d, sc := inserted(t, false)
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.FlushTest(s, nil); err != nil {
		t.Fatalf("intact chains failed flush: %v", err)
	}
	// A custom sequence works too.
	if err := sc.FlushTest(s, []logic.V{logic.One, logic.Zero}); err != nil {
		t.Fatalf("custom flush failed: %v", err)
	}
}

func TestFlushTestDetectsBrokenChain(t *testing.T) {
	d, sc := inserted(t, false)
	s, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: disconnect a mid-chain SI and tie it to constant scan-in
	// of another chain, breaking the shift path.
	victim := sc.Chains[0].Flops[len(sc.Chains[0].Flops)/2]
	d.SetInput(victim, 1, sc.SIs[len(sc.SIs)-1])
	s2, err := sim.New(d)
	if err != nil {
		t.Fatal(err)
	}
	_ = s
	if err := sc.FlushTest(s2, nil); err == nil {
		t.Fatal("broken chain passed flush")
	}
}
