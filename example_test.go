package scap_test

import (
	"fmt"

	"scap"
)

// ExampleScheduleOptimal schedules three clock domains under a shared
// power budget: the two smaller ones can run in parallel.
func ExampleScheduleOptimal() {
	tests := []scap.DomainTest{
		{Name: "cpu", TimeUS: 900, PowerMW: 220},
		{Name: "usb", TimeUS: 300, PowerMW: 90},
		{Name: "vga", TimeUS: 250, PowerMW: 80},
	}
	s, err := scap.ScheduleOptimal(tests, 250)
	if err != nil {
		panic(err)
	}
	fmt.Printf("sessions: %d, makespan: %.0f µs\n", len(s.Sessions), s.MakespanUS)
	// Output:
	// sessions: 2, makespan: 1200 µs
}

// ExampleBuild shows the minimal flow: build the SOC, derive the hot
// block's power threshold, generate patterns and screen them. (Numbers
// depend on the scale and seed; this example only demonstrates the calls.)
func ExampleBuild() {
	sys, err := scap.Build(scap.DefaultConfig(96))
	if err != nil {
		panic(err)
	}
	stat, err := sys.Statistical()
	if err != nil {
		panic(err)
	}
	flow, err := sys.ConventionalFlow(0)
	if err != nil {
		panic(err)
	}
	prof, err := sys.ProfilePatterns(flow)
	if err != nil {
		panic(err)
	}
	hot := scap.AboveThreshold(prof, stat.HotBlock, stat.ThresholdMW[stat.HotBlock])
	fmt.Println(len(prof) > 0, hot >= 0)
	// Output:
	// true true
}
