package scap

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"scap/internal/atpg"
	"scap/internal/core"
	"scap/internal/fault"
	"scap/internal/faultsim"
	"scap/internal/logic"
	"scap/internal/pgrid"
	"scap/internal/place"
	"scap/internal/power"
	"scap/internal/repro"
	"scap/internal/sim"
	"scap/internal/soc"
	"scap/internal/sta"
)

// benchScale keeps a full table/figure regeneration affordable inside the
// benchmark harness; `go run ./cmd/repro` uses the larger default scale.
const benchScale = 16

var (
	bOnce sync.Once
	bRun  *repro.Runner
	bErr  error
)

func benchRunner(b *testing.B) *repro.Runner {
	b.Helper()
	bOnce.Do(func() {
		bRun, bErr = repro.New(benchScale)
		if bErr != nil {
			return
		}
		// Warm the flow caches so per-experiment benches measure the
		// experiment itself, not the shared ATPG runs.
		if _, _, err := bRun.Conventional(); err != nil {
			bErr = err
			return
		}
		_, _, bErr = bRun.NewProcedure()
	})
	if bErr != nil {
		b.Fatal(bErr)
	}
	return bRun
}

// benchExperiment measures one table/figure regeneration.
func benchExperiment(b *testing.B, id string) {
	r := benchRunner(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunnerSetup measures the shared setup the experiment benches
// hide inside bOnce: building the system and running the statistical
// analysis. Allocation regressions in the build pipeline show up here.
func BenchmarkRunnerSetup(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := repro.New(benchScale); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1DesignCharacteristics(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2ClockDomains(b *testing.B)          { benchExperiment(b, "table2") }
func BenchmarkTable3StatisticalIRDrop(b *testing.B)     { benchExperiment(b, "table3") }
func BenchmarkTable4CAPvsSCAP(b *testing.B)             { benchExperiment(b, "table4") }
func BenchmarkFig1Floorplan(b *testing.B)               { benchExperiment(b, "fig1") }
func BenchmarkFig2ConventionalSCAP(b *testing.B)        { benchExperiment(b, "fig2") }
func BenchmarkFig3DynamicIRDrop(b *testing.B)           { benchExperiment(b, "fig3") }
func BenchmarkFig4CoverageCurves(b *testing.B)          { benchExperiment(b, "fig4") }
func BenchmarkFig5SCAPCalculator(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig6NewProcedureSCAP(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7DelayScaling(b *testing.B)            { benchExperiment(b, "fig7") }

// BenchmarkEndToEndFlows measures the two full pattern-generation flows on
// a freshly built system (the paper's complete methodology).
func BenchmarkEndToEndFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sys, err := core.Build(core.DefaultConfig(32))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.ConventionalFlow(0); err != nil {
			b.Fatal(err)
		}
		if _, err := sys.NewProcedureFlow(0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benches: the design choices DESIGN.md calls out ------------

// BenchmarkAblationFillStrategies compares the four don't-care fills on
// pattern count and hot-block SCAP (paper Section 3.1: fill-0 wins).
func BenchmarkAblationFillStrategies(b *testing.B) {
	r := benchRunner(b)
	sys, stat := r.Sys, r.Stat
	for _, fill := range []atpg.Fill{atpg.FillRandom, atpg.Fill0, atpg.Fill1, atpg.FillAdjacent, atpg.FillBlockAware} {
		fill := fill
		b.Run(fill.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fr, err := sys.StepFlow("ablation-"+fill.String(), 0, core.StepBlocks, fill)
				if err != nil {
					b.Fatal(err)
				}
				prof, err := sys.ProfilePatterns(fr)
				if err != nil {
					b.Fatal(err)
				}
				above := core.AboveThreshold(prof, soc.B5, stat.ThresholdMW[soc.B5])
				b.ReportMetric(float64(len(fr.Patterns)), "patterns")
				b.ReportMetric(100*float64(above)/float64(len(prof)), "%above")
				b.ReportMetric(100*fr.Counts.TestCoverage(), "%coverage")
			}
		})
	}
}

// BenchmarkAblationBlockSteps compares the paper's 3-step block ordering
// against a one-shot all-blocks fill-0 run.
func BenchmarkAblationBlockSteps(b *testing.B) {
	r := benchRunner(b)
	sys, stat := r.Sys, r.Stat
	variants := []struct {
		name  string
		steps [][]int
	}{
		{"one-shot", [][]int{{soc.B1, soc.B2, soc.B3, soc.B4, soc.B5, soc.B6}}},
		{"three-step", core.StepBlocks},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fr, err := sys.StepFlow("ablation-"+v.name, 0, v.steps, atpg.Fill0)
				if err != nil {
					b.Fatal(err)
				}
				prof, err := sys.ProfilePatterns(fr)
				if err != nil {
					b.Fatal(err)
				}
				above := core.AboveThreshold(prof, soc.B5, stat.ThresholdMW[soc.B5])
				b.ReportMetric(float64(len(fr.Patterns)), "patterns")
				b.ReportMetric(100*float64(above)/float64(len(prof)), "%above")
			}
		})
	}
}

// BenchmarkAblationCAPvsSCAPScreening counts the risky patterns the CAP
// model misses (the paper's Section 2.3 motivation for SCAP).
func BenchmarkAblationCAPvsSCAPScreening(b *testing.B) {
	r := benchRunner(b)
	_, prof, err := r.Conventional()
	if err != nil {
		b.Fatal(err)
	}
	thr := r.Stat.ThresholdMW[soc.B5]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scapAbove, capAbove := 0, 0
		for j := range prof {
			if prof[j].BlockSCAPVdd[soc.B5] > thr {
				scapAbove++
			}
			// CAP spreads the same energy over the full period.
			capEquiv := prof[j].BlockSCAPVdd[soc.B5] * prof[j].STW / r.Sys.Period
			if capEquiv > thr {
				capAbove++
			}
		}
		b.ReportMetric(float64(scapAbove), "scap-flagged")
		b.ReportMetric(float64(capAbove), "cap-flagged")
		b.ReportMetric(float64(scapAbove-capAbove), "missed-by-cap")
	}
}

// BenchmarkAblationSTWEstimate compares the measured per-pattern STW with
// the STA worst-arrival bound used as a simulation-free estimate.
func BenchmarkAblationSTWEstimate(b *testing.B) {
	r := benchRunner(b)
	_, prof, err := r.Conventional()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sta.Analyze(r.Sys.D, r.Sys.Delays, r.Sys.Tree, 0, r.Sys.Period)
		if err != nil {
			b.Fatal(err)
		}
		sum := 0.0
		for j := range prof {
			sum += prof[j].STW
		}
		mean := sum / float64(len(prof))
		b.ReportMetric(mean, "meanSTWns")
		b.ReportMetric(res.MaxArrival, "staBoundNs")
		b.ReportMetric(res.MaxArrival/mean, "bound/mean")
	}
}

// BenchmarkAblationGridResolution sweeps the IR-drop mesh resolution.
func BenchmarkAblationGridResolution(b *testing.B) {
	r := benchRunner(b)
	sys := r.Sys
	cur := power.StatCurrents(sys.D, sys.Cfg.ToggleProb, sys.Period/2)
	for i := range cur {
		cur[i] /= 2
	}
	for _, n := range []int{20, 40, 80} {
		n := n
		b.Run(map[int]string{20: "N20", 40: "N40", 80: "N80"}[n], func(b *testing.B) {
			p := sys.Cfg.Grid
			p.N = n
			g, err := pgrid.New(sys.FP, p)
			if err != nil {
				b.Fatal(err)
			}
			inj := g.InjectInstCurrents(sys.D, cur)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sol, err := g.Solve(inj)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(sol.Worst*1000, "worst-mV")
				b.ReportMetric(float64(sol.Iterations), "iters")
			}
		})
	}
}

// BenchmarkAblationLOCvsLOS compares the two launch mechanisms.
func BenchmarkAblationLOCvsLOS(b *testing.B) {
	r := benchRunner(b)
	sys := r.Sys
	for _, mode := range []atpg.LaunchMode{atpg.LOC, atpg.LOS} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				l := sys.NewFaultList()
				res, err := sys.ATPG(l, atpg.Options{
					Dom: 0, Mode: mode, Fill: atpg.FillRandom, Seed: 5,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*res.Counts.TestCoverage(), "%coverage")
				b.ReportMetric(float64(len(res.Patterns)), "patterns")
			}
		})
	}
}

// BenchmarkTimingSimulation measures the event-driven simulator alone.
func BenchmarkTimingSimulation(b *testing.B) {
	r := benchRunner(b)
	conv, _, err := r.Conventional()
	if err != nil {
		b.Fatal(err)
	}
	sys := r.Sys
	meter := power.NewMeter(sys.D)
	tm := sim.NewTiming(sys.Sim, sys.Delays, sys.Tree)
	p := &conv.Patterns[0]
	v2 := sys.LaunchState(p.V1, p.PIs, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		meter.Reset()
		if _, err := tm.Launch(p.V1, v2, p.PIs, sys.Period, meter.OnToggle); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLaunchWorkload precomputes the profiling workload the launch
// benches cycle over: every pattern of the new-procedure flow (the
// low-activity fill-0 set selective trace is built for) with its LOC v2.
func benchLaunchWorkload(b *testing.B) (*core.System, []*atpg.Pattern, [][]logic.V) {
	b.Helper()
	r := benchRunner(b)
	np, _, err := r.NewProcedure()
	if err != nil {
		b.Fatal(err)
	}
	sys := r.Sys
	pats := make([]*atpg.Pattern, len(np.Patterns))
	v2s := make([][]logic.V, len(np.Patterns))
	for i := range np.Patterns {
		pats[i] = &np.Patterns[i]
		v2s[i] = sys.LaunchState(pats[i].V1, pats[i].PIs, 0)
	}
	return sys, pats, v2s
}

// BenchmarkLaunch / BenchmarkLaunchReuse are the headline pair of the
// allocation-free scratch: the same pattern stream through the fresh
// path (a new scratch + full settle per call) vs one reused per-worker
// scratch (selective-trace settle, zero steady-state allocations). The
// reuse path must be >= 2x cheaper in ns/op and >= 5x in allocs/op.
func BenchmarkLaunch(b *testing.B) {
	sys, pats, v2s := benchLaunchWorkload(b)
	tm := sim.NewTiming(sys.Sim, sys.Delays, sys.Tree)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(pats)
		if _, err := tm.Launch(pats[k].V1, v2s[k], pats[k].PIs, sys.Period, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLaunchReuse(b *testing.B) {
	sys, pats, v2s := benchLaunchWorkload(b)
	tm := sim.NewTiming(sys.Sim, sys.Delays, sys.Tree)
	ls := sim.NewLaunchScratch(sys.Sim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % len(pats)
		if _, err := tm.LaunchInto(ls, pats[k].V1, v2s[k], pats[k].PIs, sys.Period, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLaunchResim re-launches one fixed pattern (the Monte-Carlo /
// delayscale re-simulation shape): the cone cache skips settling
// entirely, leaving only the event phase.
func BenchmarkLaunchResim(b *testing.B) {
	sys, pats, v2s := benchLaunchWorkload(b)
	tm := sim.NewTiming(sys.Sim, sys.Delays, sys.Tree)
	ls := sim.NewLaunchScratch(sys.Sim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tm.LaunchInto(ls, pats[0].V1, v2s[0], pats[0].PIs, sys.Period, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicIRDrop measures one full per-pattern IR-drop solve.
func BenchmarkDynamicIRDrop(b *testing.B) {
	r := benchRunner(b)
	conv, _, err := r.Conventional()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Sys.DynamicIRDrop(&conv.Patterns[0], 0, core.ModelSCAP); err != nil {
			b.Fatal(err)
		}
	}
}

// --- parallel pipeline benches -------------------------------------------

// benchProfilePatterns measures the whole-flow SCAP profiling loop at a
// fixed worker count; Serial (1) vs Parallel (all cores) is the headline
// speedup of the worker-pool pipeline.
func benchProfilePatterns(b *testing.B, workers int) {
	r := benchRunner(b)
	conv, _, err := r.Conventional()
	if err != nil {
		b.Fatal(err)
	}
	sys := r.Sys
	old := sys.Workers
	sys.Workers = workers
	defer func() { sys.Workers = old }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prof, err := sys.ProfilePatterns(conv)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(prof)), "patterns")
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(conv.Patterns)), "ns/pattern")
}

func BenchmarkProfilePatternsSerial(b *testing.B)   { benchProfilePatterns(b, 1) }
func BenchmarkProfilePatternsParallel(b *testing.B) { benchProfilePatterns(b, 0) }

// BenchmarkDynamicIRDropAll measures the batched warm-started pipeline
// over the whole conventional flow (serial vs all cores).
func BenchmarkDynamicIRDropAll(b *testing.B) {
	r := benchRunner(b)
	conv, _, err := r.Conventional()
	if err != nil {
		b.Fatal(err)
	}
	sys := r.Sys
	for _, v := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			old := sys.Workers
			sys.Workers = v.workers
			defer func() { sys.Workers = old }()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sums, err := sys.DynamicIRDropAll(conv, core.ModelSCAP)
				if err != nil {
					b.Fatal(err)
				}
				iters := 0
				for j := range sums {
					iters += sums[j].IterVDD
				}
				b.ReportMetric(float64(iters)/float64(len(sums)), "sweeps/pattern")
			}
		})
	}
}

// benchSolveInputs prepares the acceptance workload shared by the
// solver benchmarks: the default calibrated VDD grid, a statistical
// injection perturbed the way per-pattern injections drift, and a
// converged baseline usable as a warm start.
func benchSolveInputs(b *testing.B) (*pgrid.Grid, []float64, []float64) {
	b.Helper()
	r := benchRunner(b)
	sys := r.Sys
	cur := power.StatCurrents(sys.D, sys.Cfg.ToggleProb, sys.Period/2)
	for i := range cur {
		cur[i] /= 2
	}
	g := sys.GridVDD
	inj := g.InjectInstCurrents(sys.D, cur)
	base, err := g.Solve(inj)
	if err != nil {
		b.Fatal(err)
	}
	inj2 := append([]float64(nil), inj...)
	for i := range inj2 {
		inj2[i] *= 1.05
	}
	return g, inj2, base.Drop
}

// BenchmarkSolveWarm / BenchmarkSolveFactored are the headline pair of
// the cached banded-Cholesky solver: the same injection on the same
// default grid, solved by warm-started SOR vs two factored triangular
// sweeps. The factored path must be >= 5x cheaper in ns/op.
func BenchmarkSolveWarm(b *testing.B) {
	g, inj, warm := benchSolveInputs(b)
	b.ReportAllocs()
	b.ResetTimer()
	var sol *pgrid.Solution
	for i := 0; i < b.N; i++ {
		var err error
		sol, err = g.SolveWarm(inj, warm, sol)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sol.Iterations), "sweeps")
	}
}

func BenchmarkSolveFactored(b *testing.B) {
	g, inj, _ := benchSolveInputs(b)
	if _, err := g.Factor(); err != nil { // amortized once per grid: keep it out of the loop
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sol *pgrid.Solution
	var scratch pgrid.SolveScratch
	for i := 0; i < b.N; i++ {
		var err error
		sol, err = g.SolveFactored(inj, sol, &scratch)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFactor prices the one-time banded LDLᵀ factorization that
// SolveFactored amortizes across every solve of a grid's lifetime.
func BenchmarkFactor(b *testing.B) {
	r := benchRunner(b)
	p := r.Sys.GridVDD.P
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := pgrid.New(r.Sys.FP, p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := g.Factor(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPgridWarmStart quantifies the warm-start win on the SOR
// solver itself: the same slightly-perturbed injection solved cold vs
// warm-started from the neighbouring solution.
func BenchmarkPgridWarmStart(b *testing.B) {
	r := benchRunner(b)
	sys := r.Sys
	cur := power.StatCurrents(sys.D, sys.Cfg.ToggleProb, sys.Period/2)
	for i := range cur {
		cur[i] /= 2
	}
	g := sys.GridVDD
	inj := g.InjectInstCurrents(sys.D, cur)
	base, err := g.Solve(inj)
	if err != nil {
		b.Fatal(err)
	}
	// Perturb ~ the pattern-to-pattern variation of the dynamic flow.
	inj2 := append([]float64(nil), inj...)
	for i := range inj2 {
		inj2[i] *= 1.05
	}
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sol, err := g.Solve(inj2)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(sol.Iterations), "sweeps")
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		var sol *pgrid.Solution
		for i := 0; i < b.N; i++ {
			var err error
			sol, err = g.SolveWarm(inj2, base.Drop, sol)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(sol.Iterations), "sweeps")
		}
	})
}

// --- grid-scale sweep -----------------------------------------------------

// gridScaleCache shares one built-and-factored grid per mesh size
// across the sweep's sub-benchmarks, so the harness's growing b.N never
// re-pays a factorization and the per-pattern numbers stay pure solves.
var gridScaleCache = struct {
	sync.Mutex
	grids map[int]*pgrid.Grid
	injs  map[int][]float64
}{grids: map[int]*pgrid.Grid{}, injs: map[int][]float64{}}

func gridScaleGrid(b *testing.B, n int) (*pgrid.Grid, []float64) {
	b.Helper()
	gridScaleCache.Lock()
	defer gridScaleCache.Unlock()
	if g, ok := gridScaleCache.grids[n]; ok {
		return g, gridScaleCache.injs[n]
	}
	p := pgrid.DefaultParams()
	p.N = n
	g, err := pgrid.New(place.NewFloorplan(), p)
	if err != nil {
		b.Fatal(err)
	}
	// A deterministic scattered injection (~1% of nodes carrying a few
	// mA each), the spatial shape per-pattern switching currents take.
	rnd := rand.New(rand.NewSource(int64(n)))
	inj := make([]float64, n*n)
	for i := 0; i < len(inj)/100+1; i++ {
		inj[rnd.Intn(len(inj))] += 1 + 4*rnd.Float64()
	}
	gridScaleCache.grids[n] = g
	gridScaleCache.injs[n] = inj
	return g, inj
}

// BenchmarkGridScale is the asymptotic-crossover sweep behind the
// sparse and multigrid solver tiers (DESIGN.md "Solver hierarchy"):
// per-pattern solve time versus node count for each tier, n=32 through
// 2048 (4.2M nodes). The banded tier stops at n=256 — at n=512 its
// factor alone stores nn·bw ≈ 1 GB and costs O(N·bw²) ≈ 7e10 flops —
// SOR stops at n=128, and the sparse tier at n=512, where its factor
// build already dominates; only the factor-free multigrid tiers run
// the full range (mg cold-starts every solve, mg-warm warm-starts from
// the converged base of the same injection, the per-pattern pipeline's
// regime — the same split as sor vs a hypothetical sor-cold). The name
// deliberately avoids the 'Solve|Factor' bench-json regex so the timed
// bench-json pass doesn't run the sweep twice.
func BenchmarkGridScale(b *testing.B) {
	tiers := []struct {
		name  string
		maxN  int
		solve func(b *testing.B, g *pgrid.Grid, inj []float64)
	}{
		{"sparse", 512, func(b *testing.B, g *pgrid.Grid, inj []float64) {
			if _, err := g.SparseFactor(); err != nil {
				b.Fatal(err)
			}
			var sol *pgrid.Solution
			var scratch pgrid.SolveScratch
			var err error
			if sol, err = g.SolveSparse(inj, sol, &scratch); err != nil { // warm the scratch
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sol, err = g.SolveSparse(inj, sol, &scratch); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"banded", 256, func(b *testing.B, g *pgrid.Grid, inj []float64) {
			if _, err := g.Factor(); err != nil {
				b.Fatal(err)
			}
			var sol *pgrid.Solution
			var scratch pgrid.SolveScratch
			var err error
			if sol, err = g.SolveFactored(inj, sol, &scratch); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sol, err = g.SolveFactored(inj, sol, &scratch); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"sor-warm", 128, func(b *testing.B, g *pgrid.Grid, inj []float64) {
			base, err := g.Solve(inj)
			if err != nil {
				b.Fatal(err)
			}
			warm := append([]float64(nil), base.Drop...)
			var sol *pgrid.Solution
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sol, err = g.SolveWarm(inj, warm, sol); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"mg", 2048, func(b *testing.B, g *pgrid.Grid, inj []float64) {
			if _, err := g.MG(); err != nil {
				b.Fatal(err)
			}
			var sol *pgrid.Solution
			var scratch pgrid.SolveScratch
			var err error
			if sol, err = g.SolveMultigrid(inj, nil, sol, &scratch); err != nil { // warm the scratch
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sol, err = g.SolveMultigrid(inj, nil, sol, &scratch); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"mg-warm", 2048, func(b *testing.B, g *pgrid.Grid, inj []float64) {
			var scratch pgrid.SolveScratch
			base, err := g.SolveMultigrid(inj, nil, nil, &scratch) // warm the scratch
			if err != nil {
				b.Fatal(err)
			}
			warm := append([]float64(nil), base.Drop...)
			sol := base
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if sol, err = g.SolveMultigrid(inj, warm, sol, &scratch); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}
	for _, n := range []int{32, 64, 128, 256, 512, 1024, 2048} {
		for _, tier := range tiers {
			if n > tier.maxN {
				continue
			}
			tier := tier
			n := n
			b.Run(fmt.Sprintf("%s/n=%d", tier.name, n), func(b *testing.B) {
				g, inj := gridScaleGrid(b, n)
				tier.solve(b, g, inj)
				b.ReportMetric(float64(n*n), "grid_nodes")
			})
		}
	}
}

// --- packed fault-sim benches --------------------------------------------

// benchDropInputs prepares the fault-dropping workload: the full clka
// fault universe against one 64-pattern random batch on the shared
// benchScale system.
func benchDropInputs(b *testing.B) (*core.System, *fault.List, []int, *faultsim.Batch) {
	b.Helper()
	r := benchRunner(b)
	sys := r.Sys
	l := sys.NewFaultList()
	subset := l.InDomain(0)
	rnd := rand.New(rand.NewSource(9))
	v1 := make([]logic.Word, len(sys.D.Flops))
	pis := make([]logic.Word, len(sys.D.PIs))
	for i := range v1 {
		ones := rnd.Uint64()
		v1[i] = logic.Word{Zero: ^ones, One: ones}
	}
	for i := range pis {
		ones := rnd.Uint64()
		pis[i] = logic.Word{Zero: ^ones, One: ones}
	}
	return sys, l, subset, sys.FSim.GoodSim(v1, pis, 0, ^uint64(0))
}

// BenchmarkDrop measures one worker-sharded fault-dropping sweep (the
// inner loop of every ATPG flush) serial vs all cores. Committed BENCH
// numbers come from a 1-CPU VM, so the parallel variant only separates on
// multi-core hardware (see ROADMAP's bench caveat).
func BenchmarkDrop(b *testing.B) {
	sys, l, subset, bb := benchDropInputs(b)
	pristine := append([]fault.Status(nil), l.Status...)
	for _, v := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			old := sys.FSim.Workers
			sys.FSim.Workers = v.workers
			defer func() { sys.FSim.Workers = old }()
			b.ReportAllocs()
			b.ResetTimer()
			dropped := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(l.Status, pristine)
				b.StartTimer()
				dropped = sys.FSim.Drop(l, subset, bb, 0)
			}
			b.ReportMetric(float64(len(subset)), "faults")
			b.ReportMetric(float64(dropped), "dropped")
		})
	}
}

// BenchmarkDetectionCounts measures the n-detect accounting sweep (no
// status mutation, so no per-iteration reset).
func BenchmarkDetectionCounts(b *testing.B) {
	sys, l, subset, bb := benchDropInputs(b)
	counts := make([]int, len(l.Faults))
	for _, v := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			old := sys.FSim.Workers
			sys.FSim.Workers = v.workers
			defer func() { sys.FSim.Workers = old }()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sys.FSim.DetectionCounts(l, subset, bb, counts)
			}
		})
	}
}

// BenchmarkGradeFaultSim is the committed evidence for the 64-slot
// batching win: fault-grade the same 64 patterns against the domain's
// fault universe one pattern per sweep (a single-slot GoodSim plus a
// detection sweep each, the shape the old grading path ran) vs all 64
// packed into one good-machine batch and one sweep. Runs single-core
// (workers=1); ns/pattern is the comparable metric.
func BenchmarkGradeFaultSim(b *testing.B) {
	r := benchRunner(b)
	conv, _, err := r.Conventional()
	if err != nil {
		b.Fatal(err)
	}
	sys := r.Sys
	fs := sys.FSim
	l := conv.Faults
	d := sys.D
	subset := conv.Subset
	n := len(conv.Patterns)
	if n > 64 {
		n = 64
	}
	oldW := fs.Workers
	fs.Workers = 1
	defer func() { fs.Workers = oldW }()
	counts := make([]int, len(l.Faults))

	b.Run("batch1", func(b *testing.B) {
		v1W := make([]logic.Word, len(d.Flops))
		piW := make([]logic.Word, len(d.PIs))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for p := 0; p < n; p++ {
				pat := &conv.Patterns[p]
				for j := range v1W {
					v1W[j] = logic.Splat(pat.V1[j])
				}
				for j := range piW {
					piW[j] = logic.Splat(pat.PIs[j])
				}
				bb := fs.GoodSim(v1W, piW, conv.Dom, 1)
				fs.DetectionCounts(l, subset, bb, counts)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/pattern")
	})
	b.Run("batch64", func(b *testing.B) {
		slotV1 := make([][]logic.V, n)
		slotPI := make([][]logic.V, n)
		for p := 0; p < n; p++ {
			slotV1[p] = conv.Patterns[p].V1
			slotPI[p] = conv.Patterns[p].PIs
		}
		var v1W, piW []logic.Word
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v1W = logic.PackSlots(v1W, slotV1)
			piW = logic.PackSlots(piW, slotPI)
			bb := fs.GoodSim(v1W, piW, conv.Dom, logic.ValidMask(n))
			fs.DetectionCounts(l, subset, bb, counts)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/pattern")
	})
}

// BenchmarkGradeDetections measures the full batched grading engine
// (timing launches included) over the conventional flow.
func BenchmarkGradeDetections(b *testing.B) {
	r := benchRunner(b)
	conv, _, err := r.Conventional()
	if err != nil {
		b.Fatal(err)
	}
	sys := r.Sys
	for _, v := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", 0}} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			old := sys.Workers
			sys.Workers = v.workers
			defer func() { sys.Workers = old }()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := sys.GradeDetections(conv, 0)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(len(rep.Grades)), "grades")
			}
		})
	}
}

// --- ATPG generation benches ---------------------------------------------

// BenchmarkATPGGenerate is the committed evidence for the word-parallel
// PODEM core: the same deterministic generation run (every clka fault,
// dynamic compaction, random fill) through the scalar oracle engine, the
// packed speculative engine, and the packed engine with the epoch-sharded
// generator on all cores. All three produce bit-identical pattern sets
// (spec_test.go proves it); the scalar and packed variants run serial
// (GenWorkers=1) on the same host so ns/fault and waves/pattern are the
// direct engine-vs-engine comparison.
func BenchmarkATPGGenerate(b *testing.B) {
	r := benchRunner(b)
	sys := r.Sys
	for _, v := range []struct {
		name    string
		engine  atpg.EngineKind
		workers int
	}{
		{"scalar", atpg.EngineScalar, 1},
		{"packed", atpg.EnginePacked, 1},
		{"packed-sharded", atpg.EnginePacked, 0},
	} {
		v := v
		b.Run(v.name, func(b *testing.B) {
			old := sys.Workers
			sys.Workers = v.workers
			defer func() { sys.Workers = old }()
			b.ReportAllocs()
			b.ResetTimer()
			var res *atpg.Result
			targeted := 0
			for i := 0; i < b.N; i++ {
				l := sys.NewFaultList()
				var err error
				res, err = sys.ATPG(l, atpg.Options{
					Dom: 0, Fill: atpg.FillRandom, Seed: 5, Engine: v.engine,
				})
				if err != nil {
					b.Fatal(err)
				}
				targeted = res.Counts.Total
			}
			g := res.Gen
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(targeted), "ns/fault")
			b.ReportMetric(float64(g.Waves)/float64(len(res.Patterns)), "waves/pattern")
			b.ReportMetric(float64(g.Backtracks), "backtracks")
			b.ReportMetric(float64(g.BacktracksAvoided), "bt-wave-avoided")
			b.ReportMetric(float64(len(res.Patterns)), "patterns")
		})
	}
}

// BenchmarkScreenPatterns prices the packed zero-delay pre-screen; its
// ns/pattern against BenchmarkProfilePatternsSerial's per-pattern cost is
// the screen-then-verify headline (the screen must be >= 10x cheaper).
func BenchmarkScreenPatterns(b *testing.B) {
	r := benchRunner(b)
	conv, _, err := r.Conventional()
	if err != nil {
		b.Fatal(err)
	}
	sys := r.Sys
	old := sys.Workers
	sys.Workers = 1
	defer func() { sys.Workers = old }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		screens, err := sys.ScreenPatterns(conv)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(screens)), "patterns")
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(conv.Patterns)), "ns/pattern")
}
