package scap

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"scap/internal/soc"
)

var (
	fOnce sync.Once
	fSys  *System
	fErr  error
)

func facadeSystem(t *testing.T) *System {
	t.Helper()
	fOnce.Do(func() { fSys, fErr = Build(DefaultConfig(64)) })
	if fErr != nil {
		t.Fatal(fErr)
	}
	return fSys
}

// TestFacadeEndToEnd walks the documented public API surface.
func TestFacadeEndToEnd(t *testing.T) {
	sys := facadeSystem(t)
	stat, err := sys.Statistical()
	if err != nil {
		t.Fatal(err)
	}
	if stat.HotBlock != soc.B5 {
		t.Fatalf("hot block B%d", stat.HotBlock+1)
	}
	flow, err := sys.ConventionalFlow(0)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := sys.ProfilePatterns(flow)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != len(flow.Patterns) {
		t.Fatal("profile length mismatch")
	}
	above := AboveThreshold(prof, soc.B5, stat.ThresholdMW[soc.B5])
	if above < 0 || above > len(prof) {
		t.Fatal("implausible above count")
	}
	dyn, err := sys.DynamicIRDrop(&flow.Patterns[0], 0, ModelSCAP)
	if err != nil {
		t.Fatal(err)
	}
	if dyn.STW <= 0 {
		t.Fatal("no STW")
	}
}

func TestFacadePatternIO(t *testing.T) {
	sys := facadeSystem(t)
	l := sys.NewFaultList()
	res, err := sys.ATPG(l, ATPGOptions{Dom: 0, Fill: Fill0, Seed: 2, MaxPatterns: 8})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePatterns(&buf, sys, res.Patterns); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPatterns(bytes.NewReader(buf.Bytes()), sys)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(res.Patterns) {
		t.Fatal("pattern round trip lost patterns")
	}
}

func TestFacadeVerilog(t *testing.T) {
	sys := facadeSystem(t)
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, sys); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "endmodule") {
		t.Fatal("no module written")
	}
}

func TestFacadeFTASAndScheduling(t *testing.T) {
	sys := facadeSystem(t)
	flow, err := sys.ConventionalFlow(0)
	if err != nil {
		t.Fatal(err)
	}
	imp, _, err := sys.DelayImpact(&flow.Patterns[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := FTASSweep(imp, sys.Period/2, sys.Period, sys.Period/10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) == 0 {
		t.Fatal("empty sweep")
	}

	tests := []DomainTest{
		{Name: "a", TimeUS: 100, PowerMW: 50},
		{Name: "b", TimeUS: 80, PowerMW: 60},
		{Name: "c", TimeUS: 60, PowerMW: 40},
	}
	ser := ScheduleSerial(tests)
	gr, err := ScheduleGreedy(tests, 110)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := ScheduleOptimal(tests, 110)
	if err != nil {
		t.Fatal(err)
	}
	if !(opt.MakespanUS <= gr.MakespanUS && gr.MakespanUS <= ser.MakespanUS) {
		t.Fatalf("ordering violated: %v %v %v", opt.MakespanUS, gr.MakespanUS, ser.MakespanUS)
	}
}

func TestExperimentIDs(t *testing.T) {
	// 11 paper experiments (tables 1-4, figures 1-7) plus 4 extensions.
	if len(Experiments) != 15 {
		t.Fatalf("want 15 experiments, have %d", len(Experiments))
	}
}
