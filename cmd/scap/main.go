// Command scap is the SCAP calculator: the reproduction of the paper's
// PLI-based flow (Figure 5). It generates (or re-derives) a pattern set,
// streams each pattern through the gate-level timing simulator, and prints
// the per-pattern CAP/SCAP profile per block — with no VCD intermediary.
//
// Usage:
//
//	scap [-scale N] [-flow conventional|new] [-block B5] [-top K] [-plot] [-workers W]
//	     [-solver factored|sparse|mg|sor|auto] [-screen F] [-report F.json] [-metrics-addr :6060]
//	     [-trace F.json] [-trace-sample N] [-snapshot-interval D]
//
// With -screen F (0 < F <= 1) the packed zero-delay pre-screen ranks all
// patterns by estimated switching in the profiled block first, and the
// exact event-driven profiler runs only on the top fraction F.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"scap/internal/core"
	"scap/internal/logic"
	"scap/internal/obs"
	"scap/internal/parallel"
	"scap/internal/power"
	"scap/internal/sim"
	"scap/internal/soc"
	"scap/internal/textplot"
)

func main() {
	scale := flag.Int("scale", 8, "design scale divisor")
	flow := flag.String("flow", "conventional", "conventional | new")
	blockName := flag.String("block", "B5", "block to profile (B1..B6)")
	top := flag.Int("top", 10, "print the K hottest patterns")
	plot := flag.Bool("plot", false, "render the SCAP scatter plot")
	waveform := flag.Bool("waveform", false, "render the hottest pattern's instantaneous power waveform")
	workers := flag.Int("workers", 0, "pattern-profiling workers (0 = all cores, 1 = serial)")
	solverName := flag.String("solver", "factored", core.SolverFlagUsage)
	screen := flag.Float64("screen", 0, "packed zero-delay pre-screen: exactly profile only this top fraction of patterns (0 disables)")
	obsFlags := obs.RegisterFlags()
	flag.Parse()

	die(parallel.ValidateWorkers(*workers))
	if *screen < 0 || *screen > 1 {
		fmt.Fprintln(os.Stderr, "scap: -screen must be in [0, 1]")
		os.Exit(2)
	}
	solver, err := core.ParseSolver(*solverName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scap:", err)
		os.Exit(2)
	}
	die(obsFlags.Setup())

	block := -1
	for b := 0; b < soc.NumBlocks; b++ {
		if soc.BlockName(b) == *blockName {
			block = b
		}
	}
	if block < 0 {
		fmt.Fprintln(os.Stderr, "scap: unknown block", *blockName)
		os.Exit(2)
	}

	t0 := time.Now()
	cfg := core.DefaultConfig(*scale)
	cfg.Workers = *workers
	cfg.Solver = solver
	sys, err := core.Build(cfg)
	die(err)
	stat, err := sys.Statistical()
	die(err)
	var fr *core.FlowResult
	if *flow == "new" {
		fr, err = sys.NewProcedureFlow(0)
	} else {
		fr, err = sys.ConventionalFlow(0)
	}
	die(err)
	var prof []core.PatternProfile
	if *screen > 0 {
		screens, err := sys.ScreenPatterns(fr)
		die(err)
		sel := core.ScreenTop(screens, block, *screen)
		fmt.Printf("packed pre-screen: %d patterns triaged, top %.0f%% (%d) kept for exact profiling\n",
			len(screens), 100**screen, len(sel))
		prof, err = sys.ProfilePatternsAt(fr, sel)
		die(err)
	} else {
		prof, err = sys.ProfilePatterns(fr)
		die(err)
	}

	thr := stat.ThresholdMW[block]
	above := core.AboveThreshold(prof, block, thr)
	fmt.Printf("%s flow: %d patterns profiled in %v\n", fr.Name, len(prof), time.Since(t0).Round(time.Millisecond))
	fmt.Printf("%s statistical threshold (Case 2, VDD): %.2f mW\n", *blockName, thr)
	fmt.Printf("patterns above threshold: %d of %d (%.1f%%)\n",
		above, len(prof), 100*float64(above)/float64(len(prof)))

	idx := make([]int, len(prof))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return prof[idx[a]].BlockSCAPVdd[block] > prof[idx[b]].BlockSCAPVdd[block]
	})
	fmt.Printf("\nhottest %d patterns in %s:\n", *top, *blockName)
	fmt.Printf("%8s %6s %10s %10s %8s %8s\n", "pattern", "step", "SCAP mW", "CAP mW", "STW ns", "toggles")
	for k := 0; k < *top && k < len(idx); k++ {
		p := &prof[idx[k]]
		fmt.Printf("%8d %6d %10.2f %10.2f %8.2f %8d\n",
			p.Index, p.Step+1, p.BlockSCAPVdd[block], p.ChipCAPVdd, p.STW, p.Toggles)
	}
	if *plot {
		ys := make([]float64, len(prof))
		for i := range prof {
			ys[i] = prof[i].BlockSCAPVdd[block]
		}
		fmt.Println()
		fmt.Print(textplot.Scatter(ys, thr, 76, 16,
			fmt.Sprintf("%s SCAP (VDD), %s flow", *blockName, fr.Name), "mW"))
	}
	if *waveform {
		hot := prof[idx[0]].Index
		meter := power.NewMeter(sys.D)
		meter.EnableWaveform(sys.Period / 40)
		tm := sim.NewTiming(sys.Sim, sys.Delays, sys.Tree)
		ls := sim.NewLaunchScratch(sys.Sim)
		p := &fr.Patterns[hot]
		nf := len(sys.D.Flops)
		v2, err := sys.LaunchStateInto(ls, make([]logic.V, nf), make([]logic.V, nf), p.V1, p.PIs, 0)
		die(err)
		if _, err := tm.LaunchInto(ls, p.V1, v2, p.PIs, sys.Period, meter.OnToggle); err != nil {
			die(err)
		}
		w := meter.WaveformOf()
		rep := meter.Report(sys.Period)
		fmt.Println()
		fmt.Print(textplot.Profile(w.PowerMW(), 76, 14,
			fmt.Sprintf("pattern #%d instantaneous power (peak %.1f mW, CAP %.1f mW, SCAP %.1f mW)",
				hot, w.PeakMW(), rep.Chip().CAPVdd+rep.Chip().CAPVss,
				rep.Chip().SCAPVdd+rep.Chip().SCAPVss), "mW"))
	}
	die(obsFlags.Finish(os.Stdout, "scap", sys.Cfg))
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "scap:", err)
		os.Exit(1)
	}
}
