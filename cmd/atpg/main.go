// Command atpg generates transition-delay-fault patterns for the synthetic
// SOC, either conventionally (random fill, whole domain at once) or with
// the paper's supply-noise-tolerant procedure (per-block steps, fill-0,
// hot block last), and reports coverage and pattern statistics.
//
// Usage:
//
//	atpg [-scale N] [-flow conventional|new|single] [-dom D] [-fill random|fill0|fill1|adjacent]
//	     [-mode LOC|LOS] [-max M] [-workers W] [-engine packed|scalar]
//	     [-report F.json] [-metrics-addr :6060] [-trace F.json] [-snapshot-interval D]
//
// -workers shards test generation (and the fault-dropping sweeps) across
// the worker pool; the pattern set is bit-identical for every worker
// count. -engine selects the PODEM implication core for -flow single:
// the packed speculative engine (default) or the scalar oracle.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scap/internal/atpg"
	"scap/internal/core"
	"scap/internal/fault"
	"scap/internal/obs"
	"scap/internal/parallel"
	"scap/internal/pattern"
	"scap/internal/soc"
)

func main() {
	scale := flag.Int("scale", 8, "design scale divisor")
	flow := flag.String("flow", "conventional", "conventional | new | single")
	dom := flag.Int("dom", 0, "target clock domain index (0 = clka)")
	fillName := flag.String("fill", "random", "don't-care fill: random | fill0 | fill1 | adjacent")
	modeName := flag.String("mode", "LOC", "launch mode: LOC | LOS")
	maxPats := flag.Int("max", 0, "pattern limit for -flow single (0 = unlimited)")
	workers := flag.Int("workers", 0, "generation + fault-sim workers (0 = all cores, 1 = serial)")
	engineName := flag.String("engine", "packed", "PODEM implication core for -flow single: packed | scalar")
	outPath := flag.String("o", "", "write the generated pattern set to this file")
	obsFlags := obs.RegisterFlags()
	flag.Parse()

	fill, ok := map[string]atpg.Fill{
		"random": atpg.FillRandom, "fill0": atpg.Fill0,
		"fill1": atpg.Fill1, "adjacent": atpg.FillAdjacent,
	}[*fillName]
	if !ok {
		fmt.Fprintln(os.Stderr, "atpg: unknown fill", *fillName)
		os.Exit(2)
	}
	mode := atpg.LOC
	if *modeName == "LOS" {
		mode = atpg.LOS
	} else if *modeName != "LOC" {
		fmt.Fprintln(os.Stderr, "atpg: unknown mode", *modeName)
		os.Exit(2)
	}
	if err := parallel.ValidateWorkers(*workers); err != nil {
		fmt.Fprintln(os.Stderr, "atpg:", err)
		os.Exit(2)
	}
	engine, ok := map[string]atpg.EngineKind{
		"packed": atpg.EnginePacked, "scalar": atpg.EngineScalar,
	}[*engineName]
	if !ok {
		fmt.Fprintln(os.Stderr, "atpg: unknown engine", *engineName)
		os.Exit(2)
	}

	if err := obsFlags.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, "atpg:", err)
		os.Exit(1)
	}

	t0 := time.Now()
	cfg := core.DefaultConfig(*scale)
	cfg.Workers = *workers
	sys, err := core.Build(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "atpg:", err)
		os.Exit(1)
	}
	finishObs := func() {
		if err := obsFlags.Finish(os.Stdout, "atpg", sys.Cfg); err != nil {
			fmt.Fprintln(os.Stderr, "atpg:", err)
			os.Exit(1)
		}
	}
	fmt.Printf("built %d-instance design in %v\n", sys.D.NumInsts(), time.Since(t0).Round(time.Millisecond))

	var fr *core.FlowResult
	switch *flow {
	case "conventional":
		fr, err = sys.ConventionalFlow(*dom)
	case "new":
		fr, err = sys.NewProcedureFlow(*dom)
	case "single":
		l := sys.NewFaultList()
		var res *atpg.Result
		res, err = sys.ATPG(l, atpg.Options{
			Dom: *dom, Fill: fill, Mode: mode, Seed: 1, MaxPatterns: *maxPats,
			Engine: engine,
		})
		if err == nil {
			c := res.Counts
			fmt.Printf("single run (%v, %v, %v engine): %d patterns\n", mode, fill, engine, len(res.Patterns))
			if g := res.Gen; g.Waves > 0 && len(res.Patterns) > 0 {
				fmt.Printf("  implication: %d waves (%d speculative), %d decisions, %d backtracks (%d avoided)\n",
					g.Waves, g.SpecWaves, g.Decisions, g.Backtracks, g.BacktracksAvoided)
			}
			fmt.Printf("  faults: %d targeted, %d detected, %d aborted, %d untestable\n",
				c.Total, c.Detected, c.Aborted, c.Untestable)
			fmt.Printf("  test coverage %.2f%%, fault coverage %.2f%%\n",
				100*c.TestCoverage(), 100*c.FaultCoverage())
			finishObs()
			return
		}
	default:
		fmt.Fprintln(os.Stderr, "atpg: unknown flow", *flow)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "atpg:", err)
		os.Exit(1)
	}

	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "atpg:", err)
			os.Exit(1)
		}
		if err := pattern.Write(f, sys.D, fr.Patterns); err != nil {
			fmt.Fprintln(os.Stderr, "atpg:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "atpg:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d patterns to %s\n", len(fr.Patterns), *outPath)
	}

	c := fr.Counts
	fmt.Printf("%s flow, domain %s: %d patterns in %v\n",
		fr.Name, sys.D.Domains[*dom].Name, len(fr.Patterns), time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  faults: %d targeted, %d detected, %d aborted, %d untestable\n",
		c.Total, c.Detected, c.Aborted, c.Untestable)
	fmt.Printf("  test coverage %.2f%%, fault coverage %.2f%%\n",
		100*c.TestCoverage(), 100*c.FaultCoverage())
	perStep := map[int]int{}
	for i := range fr.Patterns {
		perStep[fr.Patterns[i].Step]++
	}
	if len(perStep) > 1 {
		for s := 0; s < len(core.StepBlocks); s++ {
			names := ""
			for _, b := range core.StepBlocks[s] {
				if names != "" {
					names += ","
				}
				names += soc.BlockName(b)
			}
			fmt.Printf("  step %d (%s): %d patterns\n", s+1, names, perStep[s])
		}
	}
	// Per-block fault disposition.
	fmt.Println("  per-block detected/total:")
	for b := 0; b < sys.D.NumBlocks; b++ {
		sub := intersect(fr.Faults, fr.Subset, b)
		cc := fr.Faults.CountOf(sub)
		fmt.Printf("    %s: %d/%d\n", soc.BlockName(b), cc.Detected, cc.Total)
	}
	finishObs()
}

func intersect(l *fault.List, subset []int, block int) []int {
	var out []int
	for _, fi := range subset {
		if l.Faults[fi].Block == block {
			out = append(out, fi)
		}
	}
	return out
}
