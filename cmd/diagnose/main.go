// Command diagnose demonstrates the effect-cause diagnosis loop the paper
// recommends for silicon failures: a transition-delay defect is injected
// into a simulated "device under test", the pattern set (generated or read
// from a file produced by cmd/atpg -o) is applied, the failing-flop log is
// collected, and the candidate faults best explaining the log are ranked.
//
// Usage:
//
//	diagnose [-scale N] [-defect F] [-patterns file] [-top K] [-workers W]
//	         [-report F.json] [-metrics-addr :6060] [-trace F.json] [-snapshot-interval D]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scap/internal/atpg"
	"scap/internal/core"
	"scap/internal/diagnose"
	"scap/internal/obs"
	"scap/internal/parallel"
	"scap/internal/pattern"
	"scap/internal/soc"
)

func main() {
	scale := flag.Int("scale", 16, "design scale divisor")
	defect := flag.Int("defect", -1, "fault index to inject (-1 = pick a detected one)")
	patPath := flag.String("patterns", "", "pattern file from 'atpg -o' (empty = generate)")
	top := flag.Int("top", 5, "candidates to report")
	workers := flag.Int("workers", 0, "fault-sim workers (0 = all cores, 1 = serial)")
	obsFlags := obs.RegisterFlags()
	flag.Parse()

	die(parallel.ValidateWorkers(*workers))
	die(obsFlags.Setup())

	t0 := time.Now()
	cfg := core.DefaultConfig(*scale)
	cfg.Workers = *workers
	sys, err := core.Build(cfg)
	die(err)
	defer func() { die(obsFlags.Finish(os.Stdout, "diagnose", sys.Cfg)) }()

	var pats []atpg.Pattern
	genList := sys.NewFaultList()
	if *patPath != "" {
		f, err := os.Open(*patPath)
		die(err)
		pats, err = pattern.Read(f, sys.D)
		die(err)
		die(f.Close())
		fmt.Printf("read %d patterns from %s\n", len(pats), *patPath)
	} else {
		res, err := sys.ATPG(genList, atpg.Options{Dom: 0, Fill: atpg.FillRandom, Seed: 1})
		die(err)
		pats = res.Patterns
		fmt.Printf("generated %d patterns\n", len(pats))
	}

	l := sys.NewFaultList() // fresh statuses for diagnosis
	pick := *defect
	if pick < 0 {
		// Default to a fault the pattern set certainly detects.
		for fi := range genList.Faults {
			if genList.DetectedBy[fi] >= 0 && genList.Faults[fi].Block == soc.B5 {
				pick = fi
				break
			}
		}
		if pick < 0 {
			pick = 100
		}
	}
	fmt.Printf("injected defect: fault %d = %s (block %s)\n",
		pick, l.String(pick), soc.BlockName(l.Faults[pick].Block))

	tester, err := diagnose.Observe(sys.FSim, l, pick, pats, 0)
	die(err)
	failingPats, failingFlops := 0, 0
	for _, ob := range tester {
		if len(ob.FailingFlops) > 0 {
			failingPats++
			failingFlops += len(ob.FailingFlops)
		}
	}
	fmt.Printf("tester log: %d failing patterns, %d failing-flop observations\n",
		failingPats, failingFlops)
	if failingFlops == 0 {
		fmt.Println("defect never excited by this pattern set — nothing to diagnose")
		return
	}

	cands, err := diagnose.Run(sys.FSim, l, tester, diagnose.Options{Dom: 0, TopK: *top})
	die(err)
	fmt.Printf("\ntop candidates (%v total):\n", time.Since(t0).Round(time.Millisecond))
	fmt.Printf("%6s  %-28s %8s %10s %10s %9s\n", "rank", "fault", "score", "matched", "predicted", "observed")
	for i, c := range cands {
		marker := ""
		if c.Fault == pick {
			marker = "  <-- injected defect"
		}
		fmt.Printf("%6d  %-28s %8.1f %10d %10d %9d%s\n",
			i+1, l.String(c.Fault), c.Score, c.Matched, c.Predicted, c.Observed, marker)
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "diagnose:", err)
		os.Exit(1)
	}
}
