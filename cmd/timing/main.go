// Command timing runs the static timing analysis: per-domain worst
// arrivals against the test period, the k worst paths with their gate
// traces, and the STA-based STW estimate the SCAP flow can fall back to
// when simulation is too expensive.
//
// Usage:
//
//	timing [-scale N] [-dom D] [-k K] [-workers W]
//	       [-report F.json] [-metrics-addr :6060] [-trace F.json] [-snapshot-interval D]
package main

import (
	"flag"
	"fmt"
	"os"

	"scap/internal/core"
	"scap/internal/obs"
	"scap/internal/parallel"
	"scap/internal/soc"
	"scap/internal/sta"
)

func main() {
	scale := flag.Int("scale", 8, "design scale divisor")
	dom := flag.Int("dom", 0, "clock domain to analyze")
	k := flag.Int("k", 5, "worst paths to report")
	workers := flag.Int("workers", 0, "analysis workers (0 = all cores, 1 = serial)")
	obsFlags := obs.RegisterFlags()
	flag.Parse()

	die(parallel.ValidateWorkers(*workers))
	die(obsFlags.Setup())

	cfg := core.DefaultConfig(*scale)
	cfg.Workers = *workers
	sys, err := core.Build(cfg)
	die(err)
	defer func() { die(obsFlags.Finish(os.Stdout, "timing", sys.Cfg)) }()
	d := sys.D
	if *dom < 0 || *dom >= len(d.Domains) {
		fmt.Fprintf(os.Stderr, "timing: domain %d out of range\n", *dom)
		os.Exit(2)
	}

	fmt.Printf("domain summary at test period %.4g ns:\n", sys.Period)
	fmt.Printf("%-8s %10s %10s %12s\n", "domain", "maxArr ns", "WNS ns", "endpoints")
	for i := range d.Domains {
		res, err := sta.Analyze(d, sys.Delays, sys.Tree, i, sys.Period)
		die(err)
		n := 0
		for _, f := range d.Flops {
			if d.Inst(f).Domain == i {
				n++
			}
		}
		fmt.Printf("%-8s %10.2f %10.2f %12d\n", d.Domains[i].Name, res.MaxArrival, res.WNS, n)
	}

	paths, err := sta.WorstPaths(d, sys.Delays, sys.Tree, *dom, sys.Period, *k)
	die(err)
	fmt.Printf("\n%d worst paths of %s:\n", len(paths), d.Domains[*dom].Name)
	for i, p := range paths {
		ep := d.Inst(p.Endpoint)
		fmt.Printf("\npath %d: delay %.3f ns, slack %.3f ns -> %s (%s)\n",
			i+1, p.DelayNs, p.SlackNs, ep.Name, soc.BlockName(ep.Block))
		for j, id := range p.Insts {
			inst := d.Inst(id)
			rise, fall := sys.Delays.Of(id)
			dl := rise
			if fall > dl {
				dl = fall
			}
			fmt.Printf("  %2d. %-28s %-6s %.3f ns\n", j+1, inst.Name, inst.Kind, dl)
		}
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "timing:", err)
		os.Exit(1)
	}
}
