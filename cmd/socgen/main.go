// Command socgen generates the synthetic Turbo-Eagle-class SOC, runs the
// physical-design steps (placement, scan insertion, parasitic extraction,
// clock tree) and prints design statistics. It can also dump the reduced
// SPEF and SDF views used by the other tools.
//
// Usage:
//
//	socgen [-scale N] [-seed S] [-spef file] [-sdf file] [-floorplan]
package main

import (
	"flag"
	"fmt"
	"os"

	"scap/internal/clocktree"
	"scap/internal/parasitic"
	"scap/internal/place"
	"scap/internal/scan"
	"scap/internal/sdf"
	"scap/internal/soc"
	"scap/internal/verilog"
)

func main() {
	scale := flag.Int("scale", 8, "design scale divisor (1 = paper size)")
	seed := flag.Int64("seed", 1, "generator seed")
	spefPath := flag.String("spef", "", "write reduced SPEF to this file")
	sdfPath := flag.String("sdf", "", "write reduced SDF to this file")
	vPath := flag.String("v", "", "write structural Verilog to this file")
	showFP := flag.Bool("floorplan", false, "print the ASCII floorplan")
	flag.Parse()

	cfg := soc.DefaultConfig(*scale)
	cfg.Seed = *seed
	d, plan, err := soc.Generate(cfg)
	die := func(err error) {
		if err != nil {
			fmt.Fprintln(os.Stderr, "socgen:", err)
			os.Exit(1)
		}
	}
	die(err)

	fp, err := place.Place(d, *seed)
	die(err)
	sc, err := scan.Insert(d, scan.DefaultConfig())
	die(err)
	sum, err := parasitic.Extract(d, fp, parasitic.DefaultParams())
	die(err)
	tree := clocktree.Build(d, fp, clocktree.DefaultParams(), *seed+1)
	stats, err := d.ComputeStats()
	die(err)

	fmt.Printf("design %s (scale 1/%d, seed %d)\n", d.Name, *scale, *seed)
	fmt.Printf("  instances: %d (%d gates, %d flops), nets: %d, PIs: %d, POs: %d\n",
		stats.Insts, stats.Gates, stats.Flops, stats.Nets, stats.PIs, stats.POs)
	fmt.Printf("  max logic depth: %d levels\n", stats.MaxLevel)
	fmt.Printf("  scan chains: %d (longest %d cells), negative-edge flops: %d\n",
		len(sc.Chains), sc.MaxChainLen(), stats.NegEdgeFlops)
	fmt.Printf("  wire parasitics: %.1f pF total, mean HPWL %.0f units\n",
		sum.TotalWireCap/1000, sum.MeanHPWL)
	fmt.Printf("  clock tree: mean insertion %.2f ns, max skew %.2f ns\n",
		tree.MeanInsertion, tree.MaxSkew)
	fmt.Println("\nclock domains:")
	for i := range plan.Domains {
		dp := &plan.Domains[i]
		fmt.Printf("  %-6s %6d flops  %5.0f MHz  %s\n", dp.Name, dp.Flops, dp.FreqMHz, dp.BlocksCovered())
	}
	fmt.Println("\nflops/gates per block:")
	for b := 0; b < d.NumBlocks; b++ {
		fmt.Printf("  %s: %6d / %6d\n", soc.BlockName(b), stats.FlopsPerBlock[b], stats.GatesPerBlock[b])
	}
	if *showFP {
		fmt.Println()
		fmt.Print(fp.ASCII(56, 24))
	}
	if *spefPath != "" {
		f, err := os.Create(*spefPath)
		die(err)
		die(parasitic.WriteSPEF(f, d))
		die(f.Close())
		fmt.Printf("\nwrote SPEF to %s\n", *spefPath)
	}
	if *vPath != "" {
		f, err := os.Create(*vPath)
		die(err)
		die(verilog.Write(f, d))
		die(f.Close())
		fmt.Printf("wrote Verilog to %s\n", *vPath)
	}
	if *sdfPath != "" {
		f, err := os.Create(*sdfPath)
		die(err)
		die(sdf.Write(f, d, sdf.Compute(d)))
		die(f.Close())
		fmt.Printf("wrote SDF to %s\n", *sdfPath)
	}
}
