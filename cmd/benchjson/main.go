// Command benchjson converts `go test -bench` text output on stdin into
// a versioned JSON bench report — one result object per benchmark line
// with the iteration count and every reported metric (ns/op, B/op,
// allocs/op and any b.ReportMetric extras) keyed by unit, plus the run's
// provenance (git SHA, Go version, GOMAXPROCS, hostname) so two bench
// files can be compared knowing what produced them. The raw text is
// echoed to stderr so a piped run stays watchable.
//
// Usage (see the Makefile's bench-json target):
//
//	go test -run '^$' -bench Solve -benchmem . | benchjson -o BENCH_pgrid.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"scap/internal/obs"
)

// benchSchemaVersion identifies the bench-report layout; bump on any
// incompatible change so downstream comparers can refuse mixed files.
const benchSchemaVersion = "scap/bench-report/v1"

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type benchReport struct {
	Schema     string         `json:"schema"`
	Provenance obs.Provenance `json:"provenance"`
	Warning    string         `json:"warning,omitempty"`
	Results    []result       `json:"results"`
}

func main() {
	outPath := ""
	args := os.Args[1:]
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-o", "--o":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "benchjson: -o requires a file argument")
				os.Exit(2)
			}
			i++
			outPath = args[i]
		case "-h", "--help":
			fmt.Fprintln(os.Stderr, "usage: go test -bench ... | benchjson [-o FILE]")
			os.Exit(2)
		default:
			fmt.Fprintln(os.Stderr, "benchjson: unknown flag", args[i])
			os.Exit(2)
		}
	}

	rep := benchReport{
		Schema:     benchSchemaVersion,
		Provenance: obs.CollectProvenance(),
		Results:    []result{},
	}
	rep.Warning = provenanceWarning(rep.Provenance)
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark...: some note" line
		}
		r := result{
			Name:       strings.TrimPrefix(fields[0], "Benchmark"),
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		// The tail is value/unit pairs: "128075 ns/op 2 B/op 0 allocs/op".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		rep.Results = append(rep.Results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := writeReport(outPath, &rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// provenanceWarning flags host conditions that skew benchmark numbers:
// a single-CPU host cannot separate serial from parallel variants, and
// a GOMAXPROCS cap below the physical CPU count (cgroup quota,
// throttled CI runner, explicit env) skews them the same way. The
// warning lands in the report itself so a reader comparing bench files
// doesn't mistake flat parallel speedups for a regression, and so
// benchdiff widens its tolerances for the suspect run.
func provenanceWarning(p obs.Provenance) string {
	switch {
	case p.NumCPU == 1:
		return "benchmarked on a single-CPU host: serial and parallel variants are not comparable"
	case p.GOMAXPROCS != p.NumCPU:
		return fmt.Sprintf(
			"benchmarked with GOMAXPROCS=%d on a %d-CPU host: parallel variants ran throttled",
			p.GOMAXPROCS, p.NumCPU)
	}
	return ""
}

// writeReport encodes the report to path ("" or "-" = stdout), checking
// every write so a full disk or broken pipe fails loudly instead of
// leaving a silently truncated bench file.
func writeReport(path string, rep *benchReport) error {
	var w io.Writer = os.Stdout
	if path != "" && path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "benchjson: wrote", path)
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
