// Command benchjson converts `go test -bench` text output on stdin into
// a JSON array on stdout — one object per benchmark line with the
// iteration count and every reported metric (ns/op, B/op, allocs/op and
// any b.ReportMetric extras) keyed by unit. The raw text is echoed to
// stderr so a piped run stays watchable.
//
// Usage (see the Makefile's bench-json target):
//
//	go test -run '^$' -bench Solve -benchmem . | benchjson > BENCH_pgrid.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

func main() {
	out := []result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. a "Benchmark...: some note" line
		}
		r := result{
			Name:       strings.TrimPrefix(fields[0], "Benchmark"),
			Iterations: iters,
			Metrics:    make(map[string]float64),
		}
		// The tail is value/unit pairs: "128075 ns/op 2 B/op 0 allocs/op".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		out = append(out, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
