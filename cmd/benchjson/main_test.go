package main

import (
	"strings"
	"testing"

	"scap/internal/obs"
)

// TestProvenanceWarning pins the host-condition flags benchdiff keys
// its tolerance widening on: single-CPU wins over the GOMAXPROCS
// mismatch, a matching multi-core host stays clean.
func TestProvenanceWarning(t *testing.T) {
	cases := []struct {
		gomaxprocs, numCPU int
		wants              string
	}{
		{1, 1, "single-CPU"},
		{4, 4, ""},
		{2, 8, "GOMAXPROCS=2"},
		{8, 2, "GOMAXPROCS=8"},
		{1, 16, "GOMAXPROCS=1"},
	}
	for _, c := range cases {
		got := provenanceWarning(obs.Provenance{GOMAXPROCS: c.gomaxprocs, NumCPU: c.numCPU})
		if c.wants == "" {
			if got != "" {
				t.Errorf("GOMAXPROCS=%d NumCPU=%d: unexpected warning %q", c.gomaxprocs, c.numCPU, got)
			}
			continue
		}
		if !strings.Contains(got, c.wants) {
			t.Errorf("GOMAXPROCS=%d NumCPU=%d: warning %q missing %q", c.gomaxprocs, c.numCPU, got, c.wants)
		}
	}
}
