// Command irdrop runs the power-grid analyses: the vector-less statistical
// analysis (Table 3) and, optionally, the dynamic per-pattern analysis with
// IR-drop heatmaps and the delay-scaled re-simulation (Figures 3 and 7).
//
// Usage:
//
//	irdrop [-scale N] [-dynamic] [-all] [-mc T] [-pattern P] [-model CAP|SCAP] [-map] [-workers W] [-solver factored|sparse|mg|sor|auto]
//	       [-report F.json] [-metrics-addr :6060] [-trace F.json] [-snapshot-interval D]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"scap/internal/core"
	"scap/internal/ftas"
	"scap/internal/obs"
	"scap/internal/parallel"
	"scap/internal/soc"
	"scap/internal/textplot"
)

func main() {
	scale := flag.Int("scale", 8, "design scale divisor")
	dynamic := flag.Bool("dynamic", false, "run the dynamic per-pattern analysis too")
	all := flag.Bool("all", false, "batch-solve IR drop for every pattern of the flow (worker pool + warm starts)")
	mc := flag.Int("mc", 0, "Monte-Carlo statistical trials (0 = off)")
	pattern := flag.Int("pattern", -1, "conventional-flow pattern to analyze (-1 = hottest)")
	modelName := flag.String("model", "SCAP", "power model for the dynamic analysis: CAP | SCAP")
	showMap := flag.Bool("map", false, "render the VDD drop heatmap")
	doFTAS := flag.Bool("ftas", false, "run the faster-than-at-speed overkill sweep")
	workers := flag.Int("workers", 0, "analysis workers (0 = all cores, 1 = serial)")
	solverName := flag.String("solver", "factored", core.SolverFlagUsage)
	obsFlags := obs.RegisterFlags()
	flag.Parse()

	die(parallel.ValidateWorkers(*workers))
	die(obsFlags.Setup())

	model := core.ModelSCAP
	if *modelName == "CAP" {
		model = core.ModelCAP
	} else if *modelName != "SCAP" {
		fmt.Fprintln(os.Stderr, "irdrop: unknown model", *modelName)
		os.Exit(2)
	}
	solver, err := core.ParseSolver(*solverName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "irdrop:", err)
		os.Exit(2)
	}

	t0 := time.Now()
	cfg := core.DefaultConfig(*scale)
	cfg.Workers = *workers
	cfg.Solver = solver
	sys, err := core.Build(cfg)
	die(err)
	// irdrop returns early from several analysis tiers; the deferred finish
	// emits the report/summary on every successful path.
	defer func() { die(obsFlags.Finish(os.Stdout, "irdrop", sys.Cfg)) }()
	stat, err := sys.Statistical()
	die(err)
	fmt.Printf("statistical vector-less analysis (%v):\n", time.Since(t0).Round(time.Millisecond))
	fmt.Printf("%-6s %26s %26s\n", "", "Case1 (full cycle)", "Case2 (half cycle)")
	fmt.Printf("%-6s %12s %13s %12s %13s\n", "block", "P_vdd [mW]", "drop [V]", "P_vdd [mW]", "drop [V]")
	for b := 0; b <= sys.D.NumBlocks; b++ {
		name := "Chip"
		if b < sys.D.NumBlocks {
			name = soc.BlockName(b)
		}
		fmt.Printf("%-6s %12.2f %13.3f %12.2f %13.3f\n", name,
			stat.Case1.Power.Blocks[b].PowerVddMW, stat.Case1.WorstVDD[b],
			stat.Case2.Power.Blocks[b].PowerVddMW, stat.Case2.WorstVDD[b])
	}

	if *mc > 0 {
		t1 := time.Now()
		res, err := sys.MonteCarloIRDrop(*mc, sys.Cfg.Seed)
		die(err)
		fmt.Printf("\nMonte-Carlo statistical analysis: %d trials, half-cycle window (%v, %s solver, mean %.1f sweeps/trial):\n",
			res.Trials, time.Since(t1).Round(time.Millisecond), solver, res.MeanIters)
		fmt.Printf("%-6s %10s %10s %10s\n", "block", "mean [V]", "p95 [V]", "max [V]")
		for b := 0; b <= sys.D.NumBlocks; b++ {
			name := "Chip"
			if b < sys.D.NumBlocks {
				name = soc.BlockName(b)
			}
			fmt.Printf("%-6s %10.3f %10.3f %10.3f\n", name, res.MeanVDD[b], res.P95VDD[b], res.MaxVDD[b])
		}
	}

	if !*dynamic && !*all {
		return
	}
	fr, err := sys.ConventionalFlow(0)
	die(err)
	prof, err := sys.ProfilePatterns(fr)
	die(err)

	if *all {
		t1 := time.Now()
		sums, err := sys.DynamicIRDropAll(fr, model)
		die(err)
		nb := sys.D.NumBlocks
		worstP, iterSum := 0, 0
		for i := range sums {
			iterSum += sums[i].IterVDD
			if sums[i].WorstVDD[nb] > sums[worstP].WorstVDD[nb] {
				worstP = i
			}
		}
		fmt.Printf("\nbatched %v-model analysis: %d patterns solved in %v (%s solver, mean %.1f VDD sweeps/pattern)\n",
			model, len(sums), time.Since(t1).Round(time.Millisecond), solver, float64(iterSum)/float64(len(sums)))
		fmt.Printf("  worst pattern #%d: VDD %.3f V, VSS %.3f V (STW %.2f ns)\n",
			worstP, sums[worstP].WorstVDD[nb], sums[worstP].WorstVSS[nb], sums[worstP].STW)
	}
	if !*dynamic {
		return
	}
	pick := *pattern
	if pick < 0 {
		for i := range prof {
			if pick < 0 || prof[i].BlockSCAPVdd[soc.B5] > prof[pick].BlockSCAPVdd[soc.B5] {
				pick = i
			}
		}
	}
	if pick >= len(fr.Patterns) {
		fmt.Fprintf(os.Stderr, "irdrop: pattern %d out of range (have %d)\n", pick, len(fr.Patterns))
		os.Exit(2)
	}
	dyn, err := sys.DynamicIRDrop(&fr.Patterns[pick], 0, model)
	die(err)
	nb := sys.D.NumBlocks
	fmt.Printf("\ndynamic %v-model analysis of pattern #%d (STW %.2f ns):\n", model, pick, dyn.STW)
	fmt.Printf("  worst drop: VDD %.3f V, VSS %.3f V\n", dyn.WorstVDD[nb], dyn.WorstVSS[nb])
	for b := 0; b < nb; b++ {
		fmt.Printf("  %s: VDD %.3f V, VSS %.3f V\n", soc.BlockName(b), dyn.WorstVDD[b], dyn.WorstVSS[b])
	}
	if *showMap {
		tenPct := 0.1 * sys.D.Lib.VDD
		fmt.Println()
		fmt.Print(textplot.Heatmap(dyn.SolVDD.Drop, dyn.SolVDD.N, tenPct,
			fmt.Sprintf("VDD drop map ('@' beyond 10%% VDD = %.2f V)", tenPct)))
	}
	imp, _, err := sys.DelayImpact(&fr.Patterns[pick], 0)
	die(err)
	fmt.Printf("\nIR-drop-aware re-simulation: %d endpoints slowed, %d sped up, max slowdown %.1f%%\n",
		imp.Slowed, imp.Sped, 100*imp.MaxSlowdownFrac)

	if *doFTAS {
		res, err := ftas.Sweep(imp, sys.Period/4, sys.Period, sys.Period/20, 0)
		die(err)
		fmt.Println("\nfaster-than-at-speed sweep (overkill = good-chip fails caused by IR-drop):")
		fmt.Printf("%10s %9s %10s %10s %9s\n", "period ns", "freq MHz", "nom-fails", "drop-fails", "overkill")
		for _, p := range res.Points {
			fmt.Printf("%10.2f %9.1f %10d %10d %9d\n",
				p.PeriodNs, p.FreqMHz, p.NomViolations, p.ScaledViolations, p.Overkill)
		}
		if res.MinPeriodNoOverkillNs > 0 {
			fmt.Printf("fastest overkill-free capture: %.2f ns (%.1f MHz)\n",
				res.MinPeriodNoOverkillNs, res.MaxSafeFreqMHz)
		}
	}
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "irdrop:", err)
		os.Exit(1)
	}
}
