// Command flow runs the complete release pipeline once and writes every
// artifact a downstream team would consume: the structural Verilog netlist,
// SPEF parasitics, SDF delays, both pattern sets (conventional and
// noise-tolerant) in the STIL-flavored format, and a summary report with
// thresholds, screening results and detection-quality grades.
//
// Usage:
//
//	flow [-scale N] [-out dir] [-workers W] [-solver factored|sparse|mg|sor|auto] [-screen F]
//	     [-cpuprofile F] [-memprofile F] [-report F.json] [-metrics-addr :6060]
//	     [-trace F.json] [-trace-sample N] [-snapshot-interval D]
//
// With -screen F (0 < F <= 1) the packed zero-delay pre-screen ranks each
// pattern set by estimated B5 switching and the exact event-driven
// profiler runs only on the top fraction F.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"scap/internal/core"
	"scap/internal/obs"
	"scap/internal/parallel"
	"scap/internal/parasitic"
	"scap/internal/pattern"
	"scap/internal/sdf"
	"scap/internal/soc"
	"scap/internal/verilog"
)

func main() {
	scale := flag.Int("scale", 8, "design scale divisor")
	out := flag.String("out", "flow_out", "artifact directory")
	workers := flag.Int("workers", 0, "pattern-analysis and ATPG-generation workers (0 = all cores, 1 = serial)")
	solverName := flag.String("solver", "factored", core.SolverFlagUsage)
	screen := flag.Float64("screen", 0, "packed zero-delay pre-screen: exactly profile only this top fraction of patterns (0 disables)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the whole flow to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile at flow end to this file")
	obsFlags := obs.RegisterFlags()
	flag.Parse()

	die(parallel.ValidateWorkers(*workers))
	if *screen < 0 || *screen > 1 {
		fmt.Fprintln(os.Stderr, "flow: -screen must be in [0, 1]")
		os.Exit(2)
	}
	solver, err := core.ParseSolver(*solverName)
	die(err)
	die(obsFlags.Setup())
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		die(err)
		die(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			die(f.Close())
		}()
	}

	t0 := time.Now()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		die(err)
	}
	cfg := core.DefaultConfig(*scale)
	cfg.Workers = *workers
	cfg.Solver = solver
	sys, err := core.Build(cfg)
	die(err)

	write := func(name string, fn func(*os.File) error) {
		f, err := os.Create(filepath.Join(*out, name))
		die(err)
		die(fn(f))
		die(f.Close())
		fmt.Printf("  wrote %s\n", filepath.Join(*out, name))
	}

	fmt.Printf("design built (%d instances) in %v\n", sys.D.NumInsts(), time.Since(t0).Round(time.Millisecond))
	// Chain-integrity signoff before anything else, as manufacturing would.
	die(sys.SC.FlushTest(sys.Sim, nil))
	fmt.Printf("  scan flush test: %d chains intact\n", len(sys.SC.Chains))
	write("design.v", func(f *os.File) error { return verilog.Write(f, sys.D) })
	write("design.spef", func(f *os.File) error { return parasitic.WriteSPEF(f, sys.D) })
	write("design.sdf", func(f *os.File) error { return sdf.Write(f, sys.D, sys.Delays) })

	stat, err := sys.Statistical()
	die(err)
	conv, err := sys.ConventionalFlow(0)
	die(err)
	nw, err := sys.NewProcedureFlow(0)
	die(err)
	write("patterns_conventional.pat", func(f *os.File) error {
		return pattern.Write(f, sys.D, conv.Patterns)
	})
	write("patterns_noise_tolerant.pat", func(f *os.File) error {
		return pattern.Write(f, sys.D, nw.Patterns)
	})

	profile := func(fr *core.FlowResult) []core.PatternProfile {
		if *screen <= 0 {
			p, err := sys.ProfilePatterns(fr)
			die(err)
			return p
		}
		screens, err := sys.ScreenPatterns(fr)
		die(err)
		sel := core.ScreenTop(screens, soc.B5, *screen)
		fmt.Printf("  %s: pre-screen kept %d of %d patterns for exact profiling\n",
			fr.Name, len(sel), len(screens))
		p, err := sys.ProfilePatternsAt(fr, sel)
		die(err)
		return p
	}
	convProf := profile(conv)
	newProf := profile(nw)
	grade, err := sys.GradeDetections(conv, 2000)
	die(err)

	write("report.txt", func(f *os.File) error {
		thr := stat.ThresholdMW[soc.B5]
		fmt.Fprintf(f, "scap flow report (scale 1/%d, seed %d)\n\n", *scale, sys.Cfg.Seed)
		fmt.Fprintf(f, "design: %d instances, %d scan flops, %d chains\n",
			sys.D.NumInsts(), len(sys.D.Flops), len(sys.SC.Chains))
		fmt.Fprintf(f, "B5 SCAP threshold: %.2f mW (statistical Case 2)\n\n", thr)
		rows := []struct {
			name  string
			fr    *core.FlowResult
			prof  []core.PatternProfile
			above int
		}{
			{"conventional", conv, convProf, core.AboveThreshold(convProf, soc.B5, thr)},
			{"noise-tolerant", nw, newProf, core.AboveThreshold(newProf, soc.B5, thr)},
		}
		for _, r := range rows {
			fmt.Fprintf(f, "%-15s %5d patterns, %.1f%% test coverage, %d above B5 threshold (%.1f%%)\n",
				r.name, len(r.fr.Patterns), 100*r.fr.Counts.TestCoverage(),
				r.above, 100*float64(r.above)/float64(len(r.prof)))
		}
		fmt.Fprintf(f, "\ndetection quality (conventional): %d graded, slack best/mean/worst %.2f/%.2f/%.2f ns\n",
			len(grade.Grades), grade.BestSlack, grade.MeanSlack, grade.WorstSlack)
		fmt.Fprintf(f, "delay-decile histogram (short->long paths): %v\n", grade.Deciles)
		return nil
	})
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		die(err)
		runtime.GC() // settle allocations so the heap profile reflects live data
		die(pprof.WriteHeapProfile(f))
		die(f.Close())
		fmt.Printf("  wrote %s\n", *memprofile)
	}
	die(obsFlags.Finish(os.Stdout, "flow", sys.Cfg))
	fmt.Printf("flow complete in %v\n", time.Since(t0).Round(time.Millisecond))
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "flow:", err)
		os.Exit(1)
	}
}
