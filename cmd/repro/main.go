// Command repro regenerates the paper's tables and figures on the
// synthetic SOC.
//
// Usage:
//
//	repro [-scale N] [-exp id] [-list] [-workers W]
//	      [-report F.json] [-metrics-addr :6060] [-trace F.json] [-snapshot-interval D]
//
// With no -exp it runs every experiment (table1..table4, fig1..fig7) and
// prints the combined report; -scale selects the design scale divisor
// (default 8, ~2.9K scan flops; 1 is the paper's full ~23K size).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"scap/internal/obs"
	"scap/internal/parallel"
	"scap/internal/repro"
)

func main() {
	scale := flag.Int("scale", 4, "design scale divisor (1 = paper size)")
	exp := flag.String("exp", "", "experiment id ("+strings.Join(repro.Experiments, ", ")+"); empty = all")
	list := flag.Bool("list", false, "list experiment ids and exit")
	workers := flag.Int("workers", 0, "pattern-analysis workers (0 = all cores, 1 = serial)")
	obsFlags := obs.RegisterFlags()
	flag.Parse()

	if err := parallel.ValidateWorkers(*workers); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(2)
	}
	if *list {
		for _, id := range repro.Experiments {
			fmt.Println(id)
		}
		return
	}
	if err := obsFlags.Setup(); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	t0 := time.Now()
	r, err := repro.NewWorkers(*scale, *workers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	fmt.Printf("system built at scale 1/%d in %v: %d instances, %d nets, %d scan flops\n\n",
		*scale, time.Since(t0).Round(time.Millisecond),
		r.Sys.D.NumInsts(), r.Sys.D.NumNets(), len(r.Sys.D.Flops))

	var out string
	if *exp == "" {
		out, err = r.All()
	} else {
		out, err = r.Run(*exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
	fmt.Print(out)
	fmt.Printf("\ntotal runtime %v\n", time.Since(t0).Round(time.Millisecond))
	if err := obsFlags.Finish(os.Stdout, "repro", r.Sys.Cfg); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}
