package main

import (
	"path/filepath"
	"testing"
)

func defaultTol() tolerances {
	return tolerances{ns: 1.75, mem: 2, extra: 2.5, byteSlack: 1024, allocSlack: 4}
}

func report(results ...result) *benchReport {
	return &benchReport{Schema: benchSchemaVersion, Results: results}
}

func res(name string, ns, bytes, allocs float64) result {
	return result{Name: name, Iterations: 1, Metrics: map[string]float64{
		"ns/op": ns, "B/op": bytes, "allocs/op": allocs,
	}}
}

func failures(rows []row) []row {
	var out []row
	for _, r := range rows {
		if !r.ok {
			out = append(out, r)
		}
	}
	return out
}

func TestSelfComparePasses(t *testing.T) {
	base := report(res("Solve/n=64-8", 1.2e6, 4096, 12), res("Factor", 3e6, 0, 0))
	rows, pass := compare(base, base, defaultTol())
	if !pass {
		t.Fatalf("self-compare failed: %+v", failures(rows))
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
}

func TestInjectedSlowdownFails(t *testing.T) {
	base := report(res("Solve", 1e6, 4096, 12))
	fresh := report(res("Solve", 2e6, 4096, 12)) // 2x > 1.75x budget
	rows, pass := compare(base, fresh, defaultTol())
	if pass {
		t.Fatal("2x ns/op slowdown passed the 1.75x gate")
	}
	fs := failures(rows)
	if len(fs) != 1 || fs[0].metric != "ns/op" {
		t.Fatalf("want exactly one ns/op failure, got %+v", fs)
	}
}

func TestSpeedupAlwaysPasses(t *testing.T) {
	base := report(res("Solve", 2e6, 8192, 40))
	fresh := report(res("Solve", 1e5, 0, 0)) // 20x faster, fewer allocs
	if _, pass := compare(base, fresh, defaultTol()); !pass {
		t.Fatal("an improvement must never fail the gate")
	}
}

func TestWarningWidensTolerances(t *testing.T) {
	base := report(res("Solve", 1e6, 0, 0))
	fresh := report(res("Solve", 2e6, 0, 0))
	if _, pass := compare(base, fresh, defaultTol()); pass {
		t.Fatal("2x must fail without the warning")
	}
	base.Warning = "benchmarked on a single-CPU host"
	// 1.75 * 1.5 = 2.625x budget: the same 2x slowdown now passes.
	if rows, pass := compare(base, fresh, defaultTol()); !pass {
		t.Fatalf("warning did not widen tolerances: %+v", failures(rows))
	}
}

func TestGomaxprocsSuffixNormalized(t *testing.T) {
	base := report(res("Solve/n=64-8", 1e6, 0, 0)) // recorded on an 8-core host
	fresh := report(res("Solve/n=64", 1e6, 0, 0))  // single-CPU host: no suffix
	rows, pass := compare(base, fresh, defaultTol())
	if !pass {
		t.Fatalf("suffix mismatch broke matching: %+v", failures(rows))
	}
	for _, r := range rows {
		if r.name != "Solve/n=64" {
			t.Fatalf("name not normalized: %q", r.name)
		}
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	base := report(res("Solve", 1e6, 0, 0), res("Factor", 1e6, 0, 0))
	fresh := report(res("Solve", 1e6, 0, 0))
	if _, pass := compare(base, fresh, defaultTol()); pass {
		t.Fatal("a benchmark dropped from the fresh run must fail")
	}
}

func TestMissingMetricFails(t *testing.T) {
	base := report(result{Name: "Drop", Metrics: map[string]float64{"ns/op": 1e6, "faults/s": 5e4}})
	fresh := report(result{Name: "Drop", Metrics: map[string]float64{"ns/op": 1e6}})
	if _, pass := compare(base, fresh, defaultTol()); pass {
		t.Fatal("a metric dropped from the fresh run must fail")
	}
}

func TestNewBenchmarkIsInformational(t *testing.T) {
	base := report(res("Solve", 1e6, 0, 0))
	fresh := report(res("Solve", 1e6, 0, 0), res("Shiny", 9e9, 1e6, 1e3))
	rows, pass := compare(base, fresh, defaultTol())
	if !pass {
		t.Fatalf("new benchmark must not fail: %+v", failures(rows))
	}
	last := rows[len(rows)-1]
	if last.name != "Shiny" || last.note == "" {
		t.Fatalf("new benchmark not reported: %+v", last)
	}
}

func TestExtrasAreSymmetric(t *testing.T) {
	mk := func(v float64) *benchReport {
		return report(result{Name: "GridScale", Metrics: map[string]float64{"grid_nodes": v}})
	}
	// grid_nodes is a deterministic work measure: a 3x drop is as
	// suspicious as a 3x rise.
	if _, pass := compare(mk(3000), mk(1000), defaultTol()); pass {
		t.Fatal("3x drop in a deterministic extra must fail")
	}
	if _, pass := compare(mk(1000), mk(3000), defaultTol()); pass {
		t.Fatal("3x rise in a deterministic extra must fail")
	}
	if _, pass := compare(mk(1000), mk(2000), defaultTol()); !pass {
		t.Fatal("2x drift is within the 2.5x extra budget")
	}
}

func TestMemSlackCoversZeroBaselines(t *testing.T) {
	base := report(res("Packed", 1e6, 0, 0))
	fresh := report(res("Packed", 1e6, 512, 2)) // within the absolute slack
	if rows, pass := compare(base, fresh, defaultTol()); !pass {
		t.Fatalf("absolute slack should absorb tiny growth on zero baselines: %+v", failures(rows))
	}
	fresh = report(res("Packed", 1e6, 4096, 16)) // beyond it
	if _, pass := compare(base, fresh, defaultTol()); pass {
		t.Fatal("allocation growth beyond the slack on a zero baseline must fail")
	}
}

// TestCommittedBaselinesLoadAndSelfCompare is the acceptance check that
// `benchdiff` exits zero on the committed trajectories: each BENCH_*.json
// must parse, carry the v1 schema, and pass a self-compare.
func TestCommittedBaselinesLoadAndSelfCompare(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Skip("no committed BENCH_*.json baselines")
	}
	for _, p := range paths {
		rep, err := load(p)
		if err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
		if rows, pass := compare(rep, rep, defaultTol()); !pass {
			t.Errorf("%s failed self-compare: %+v", p, failures(rows))
		}
	}
}
