// Command benchdiff is the perf-regression gate: it compares a fresh
// `make bench-json` report against a committed baseline BENCH_*.json
// and fails (exit 1) when any tracked metric regressed beyond its
// tolerance, printing a pass/fail table either way. CI runs it so a
// slowdown fails the build instead of silently landing in the
// trajectory files.
//
// Comparison rules, per metric unit:
//
//   - ns/op: fresh must stay within -tol-ns × base (ratio; timing is
//     noisy across hosts, so the default is generous).
//   - B/op and allocs/op: fresh ≤ base × -tol-mem plus a small absolute
//     slack (1024 B, 4 allocs) so zero-allocation baselines don't turn
//     single-byte jitter into failures.
//   - extra b.ReportMetric metrics (waves/pattern, grid_nodes, …):
//     these are deterministic work measures, compared symmetrically —
//     the larger of fresh/base and base/fresh must stay within
//     -tol-extra.
//
// Benchmark names are normalized by stripping the trailing
// "-GOMAXPROCS" suffix, so a file recorded on a single-CPU host (no
// suffix) still matches a multi-core run. If either report carries the
// benchjson single-CPU `warning`, every tolerance is widened ×1.5 —
// such baselines are known-noisy. A benchmark or metric present in the
// baseline but missing from the fresh run is a failure (a silently
// dropped benchmark would otherwise un-track its metrics); benchmarks
// only in the fresh run are reported as new and pass.
//
// Usage:
//
//	benchdiff -base BENCH_pgrid.json -fresh fresh/BENCH_pgrid.json [-tol-ns 1.75] [-tol-mem 2] [-tol-extra 2.5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
)

// benchSchemaVersion must match cmd/benchjson's output.
const benchSchemaVersion = "scap/bench-report/v1"

type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type benchReport struct {
	Schema  string   `json:"schema"`
	Warning string   `json:"warning,omitempty"`
	Results []result `json:"results"`
}

// tolerances carries the per-unit regression budgets.
type tolerances struct {
	ns, mem, extra        float64
	byteSlack, allocSlack float64
}

// row is one metric comparison in the output table.
type row struct {
	name, metric string
	base, fresh  float64
	ok           bool
	note         string
}

// gomaxprocsSuffix is the "-N" tail `go test -bench` appends on
// multi-core hosts; single-CPU hosts omit it, so names must be
// normalized before files from different hosts can be matched.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func normalize(name string) string {
	return gomaxprocsSuffix.ReplaceAllString(name, "")
}

// compare diffs fresh against base under tol and returns the table rows
// (baseline order, metrics sorted per benchmark) plus overall pass.
func compare(base, fresh *benchReport, tol tolerances) ([]row, bool) {
	if base.Warning != "" || fresh.Warning != "" {
		tol.ns *= 1.5
		tol.mem *= 1.5
		tol.extra *= 1.5
	}
	freshBy := make(map[string]result, len(fresh.Results))
	for _, r := range fresh.Results {
		freshBy[normalize(r.Name)] = r
	}
	var rows []row
	pass := true
	for _, br := range base.Results {
		name := normalize(br.Name)
		fr, ok := freshBy[name]
		if !ok {
			rows = append(rows, row{name: name, metric: "-", ok: false, note: "missing from fresh run"})
			pass = false
			continue
		}
		metrics := make([]string, 0, len(br.Metrics))
		for m := range br.Metrics {
			metrics = append(metrics, m)
		}
		sort.Strings(metrics)
		for _, m := range metrics {
			b := br.Metrics[m]
			f, ok := fr.Metrics[m]
			if !ok {
				rows = append(rows, row{name: name, metric: m, base: b, ok: false, note: "metric missing from fresh run"})
				pass = false
				continue
			}
			r := check(m, b, f, tol)
			r.name = name
			if !r.ok {
				pass = false
			}
			rows = append(rows, r)
		}
	}
	// Benchmarks only in the fresh run: informational, never failing.
	baseNames := make(map[string]bool, len(base.Results))
	for _, r := range base.Results {
		baseNames[normalize(r.Name)] = true
	}
	freshSorted := append([]result(nil), fresh.Results...)
	sort.Slice(freshSorted, func(a, b int) bool { return freshSorted[a].Name < freshSorted[b].Name })
	for _, r := range freshSorted {
		if !baseNames[normalize(r.Name)] {
			rows = append(rows, row{name: normalize(r.Name), metric: "-", ok: true, note: "new benchmark (not in baseline)"})
		}
	}
	return rows, pass
}

// check applies the unit's rule to one (base, fresh) metric pair.
func check(metric string, base, fresh float64, tol tolerances) row {
	r := row{metric: metric, base: base, fresh: fresh}
	switch metric {
	case "ns/op":
		limit := base * tol.ns
		r.ok = base <= 0 || fresh <= limit
		if !r.ok {
			r.note = fmt.Sprintf("%.2fx > %.2fx budget", fresh/base, tol.ns)
		}
	case "B/op":
		limit := base*tol.mem + tol.byteSlack
		r.ok = fresh <= limit
		if !r.ok {
			r.note = fmt.Sprintf("above %.0f limit", limit)
		}
	case "allocs/op":
		limit := base*tol.mem + tol.allocSlack
		r.ok = fresh <= limit
		if !r.ok {
			r.note = fmt.Sprintf("above %.0f limit", limit)
		}
	default:
		// Deterministic extras: drift in either direction is suspect.
		switch {
		case base == 0 && fresh == 0:
			r.ok = true
		case base <= 0 || fresh <= 0:
			r.ok = false
			r.note = "zero/sign flip vs baseline"
		default:
			ratio := fresh / base
			if ratio < 1 {
				ratio = 1 / ratio
			}
			r.ok = ratio <= tol.extra
			if !r.ok {
				r.note = fmt.Sprintf("%.2fx drift > %.2fx budget", ratio, tol.extra)
			}
		}
	}
	return r
}

func load(path string) (*benchReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep benchReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != benchSchemaVersion {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, benchSchemaVersion)
	}
	return &rep, nil
}

func main() {
	basePath := flag.String("base", "", "committed baseline bench report (required)")
	freshPath := flag.String("fresh", "", "freshly produced bench report (required)")
	tolNs := flag.Float64("tol-ns", 1.75, "ns/op regression budget as a ratio over baseline")
	tolMem := flag.Float64("tol-mem", 2, "B/op and allocs/op budget as a ratio over baseline (plus small absolute slack)")
	tolExtra := flag.Float64("tol-extra", 2.5, "symmetric drift budget for extra (ReportMetric) metrics")
	flag.Parse()
	if *basePath == "" || *freshPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: both -base and -fresh are required")
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := load(*freshPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	if base.Warning != "" || fresh.Warning != "" {
		fmt.Printf("note: single-CPU baseline in play, tolerances widened 1.5x\n")
	}
	rows, pass := compare(base, fresh, tolerances{
		ns: *tolNs, mem: *tolMem, extra: *tolExtra,
		byteSlack: 1024, allocSlack: 4,
	})
	fmt.Printf("%-52s %-12s %14s %14s  %-4s %s\n", "benchmark", "metric", "base", "fresh", "ok", "note")
	nFail := 0
	for _, r := range rows {
		verdict := "ok"
		if !r.ok {
			verdict = "FAIL"
			nFail++
		}
		fmt.Printf("%-52s %-12s %14.4g %14.4g  %-4s %s\n",
			r.name, r.metric, r.base, r.fresh, verdict, r.note)
	}
	fmt.Printf("\nbenchdiff: %d comparisons, %d failed (%s vs %s)\n", len(rows), nFail, *freshPath, *basePath)
	if !pass {
		os.Exit(1)
	}
}
