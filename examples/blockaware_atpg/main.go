// Block-aware ATPG: the paper's headline experiment in miniature. Two
// pattern sets for the dominant clock domain — conventional random-fill
// versus the 3-step block-targeted fill-0 procedure — are compared on
// pattern count, coverage, and how many patterns drive the hot central
// block B5 beyond its statistical power threshold.
package main

import (
	"fmt"
	"log"

	"scap"
	"scap/internal/soc"
	"scap/internal/textplot"
)

func main() {
	sys, err := scap.Build(scap.DefaultConfig(16))
	if err != nil {
		log.Fatal(err)
	}
	stat, err := sys.Statistical()
	if err != nil {
		log.Fatal(err)
	}
	thr := stat.ThresholdMW[soc.B5]
	fmt.Printf("B5 SCAP threshold from statistical analysis: %.2f mW\n\n", thr)

	run := func(name string, flow func(int) (*scap.FlowResult, error)) []scap.PatternProfile {
		fr, err := flow(0)
		if err != nil {
			log.Fatal(err)
		}
		prof, err := sys.ProfilePatterns(fr)
		if err != nil {
			log.Fatal(err)
		}
		above := scap.AboveThreshold(prof, soc.B5, thr)
		fmt.Printf("%-14s: %4d patterns, %.1f%% coverage, %d above threshold (%.1f%%)\n",
			name, len(fr.Patterns), 100*fr.Counts.TestCoverage(),
			above, 100*float64(above)/float64(len(prof)))
		return prof
	}

	convProf := run("conventional", sys.ConventionalFlow)
	newProf := run("new procedure", sys.NewProcedureFlow)

	series := func(prof []scap.PatternProfile) []float64 {
		ys := make([]float64, len(prof))
		for i := range prof {
			ys[i] = prof[i].BlockSCAPVdd[soc.B5]
		}
		return ys
	}
	fmt.Println()
	fmt.Print(textplot.Scatter(series(convProf), thr, 72, 12, "B5 SCAP, conventional (Fig. 2 shape)", "mW"))
	fmt.Println()
	fmt.Print(textplot.Scatter(series(newProf), thr, 72, 12, "B5 SCAP, new procedure (Fig. 6 shape)", "mW"))
	fmt.Println("\nnote the quiet prefix while steps 1-2 test the other blocks, and the")
	fmt.Println("burst when step 3 finally targets B5 — the paper's Figure 6.")
}
