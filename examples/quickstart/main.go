// Quickstart: build the synthetic SOC, derive the per-block power
// thresholds from the statistical IR-drop analysis, generate a transition
// delay fault pattern set, and measure each pattern's SCAP — the minimal
// end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"scap"
	"scap/internal/soc"
)

func main() {
	// Scale 24 keeps the run under a couple of seconds (~1K scan flops).
	sys, err := scap.Build(scap.DefaultConfig(24))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SOC: %d instances, %d scan flops, %d clock domains\n",
		sys.D.NumInsts(), len(sys.D.Flops), len(sys.D.Domains))

	// Step 1: vector-less statistical analysis -> per-block thresholds.
	stat, err := sys.Statistical()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("statistical thresholds (Case 2, VDD): ")
	for b := 0; b < sys.D.NumBlocks; b++ {
		fmt.Printf("%s=%.1f mW  ", soc.BlockName(b), stat.ThresholdMW[b])
	}
	fmt.Printf("\nhot block: %s\n\n", soc.BlockName(stat.HotBlock))

	// Step 2: conventional random-fill ATPG for the dominant domain clka.
	flow, err := sys.ConventionalFlow(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ATPG: %d patterns, %.1f%% test coverage (%d/%d faults)\n",
		len(flow.Patterns), 100*flow.Counts.TestCoverage(),
		flow.Counts.Detected, flow.Counts.Total)

	// Step 3: per-pattern SCAP via the streaming power meter.
	prof, err := sys.ProfilePatterns(flow)
	if err != nil {
		log.Fatal(err)
	}
	hot := 0
	for i := range prof {
		if prof[i].BlockSCAPVdd[stat.HotBlock] > prof[hot].BlockSCAPVdd[stat.HotBlock] {
			hot = i
		}
	}
	above := scap.AboveThreshold(prof, stat.HotBlock, stat.ThresholdMW[stat.HotBlock])
	fmt.Printf("SCAP screening in %s: %d of %d patterns above the threshold\n",
		soc.BlockName(stat.HotBlock), above, len(prof))
	fmt.Printf("hottest pattern: #%d with %.1f mW SCAP over a %.2f ns switching window\n",
		hot, prof[hot].BlockSCAPVdd[stat.HotBlock], prof[hot].STW)

	// Step 4: dynamic IR-drop of the hottest pattern, CAP vs SCAP model.
	capIR, err := sys.DynamicIRDrop(&flow.Patterns[hot], 0, scap.ModelCAP)
	if err != nil {
		log.Fatal(err)
	}
	scapIR, err := sys.DynamicIRDrop(&flow.Patterns[hot], 0, scap.ModelSCAP)
	if err != nil {
		log.Fatal(err)
	}
	nb := sys.D.NumBlocks
	fmt.Printf("worst VDD drop: %.3f V (CAP model) vs %.3f V (SCAP model) — "+
		"averaging over the full cycle hides %.1fx of the sag\n",
		capIR.WorstVDD[nb], scapIR.WorstVDD[nb], scapIR.WorstVDD[nb]/capIR.WorstVDD[nb])
}
