// IR-drop debug: the workflow the paper prescribes for a pattern suspected
// of failing silicon due to supply noise — solve its dynamic IR-drop map,
// then re-simulate with every cell and clock-tree stage derated by the
// local voltage collapse and inspect which endpoints slow down (Region 1)
// or speed up (Region 2).
package main

import (
	"fmt"
	"log"
	"sort"

	"scap"
	"scap/internal/soc"
	"scap/internal/textplot"
)

func main() {
	sys, err := scap.Build(scap.DefaultConfig(16))
	if err != nil {
		log.Fatal(err)
	}
	flow, err := sys.ConventionalFlow(0)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := sys.ProfilePatterns(flow)
	if err != nil {
		log.Fatal(err)
	}
	// Debug the hottest pattern, as a failing-pattern triage would.
	hot := 0
	for i := range prof {
		if prof[i].ChipSCAPVdd > prof[hot].ChipSCAPVdd {
			hot = i
		}
	}
	fmt.Printf("debugging pattern #%d: chip SCAP %.1f mW, STW %.2f ns\n\n",
		hot, prof[hot].ChipSCAPVdd, prof[hot].STW)

	dyn, err := sys.DynamicIRDrop(&flow.Patterns[hot], 0, scap.ModelSCAP)
	if err != nil {
		log.Fatal(err)
	}
	nb := sys.D.NumBlocks
	fmt.Printf("worst drops: VDD %.3f V, VSS %.3f V\n", dyn.WorstVDD[nb], dyn.WorstVSS[nb])
	tenPct := 0.1 * sys.D.Lib.VDD
	fmt.Print(textplot.Heatmap(dyn.SolVDD.Drop, dyn.SolVDD.N, tenPct,
		fmt.Sprintf("VDD drop map ('@' beyond 10%%VDD = %.2f V)", tenPct)))

	imp, _, err := sys.DelayImpact(&flow.Patterns[hot], 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-simulation with scaled delays: %d endpoints slower, %d faster, worst +%.1f%%\n",
		imp.Slowed, imp.Sped, 100*imp.MaxSlowdownFrac)

	// The five most-slowed endpoints, with their blocks: these are the
	// flops a tester would see failing although the silicon is good.
	type row struct {
		flop  string
		block string
		delta float64
		nom   float64
	}
	var rows []row
	for i := range imp.Endpoints {
		ep := &imp.Endpoints[i]
		if !ep.Active {
			continue
		}
		rows = append(rows, row{
			flop:  sys.D.Inst(ep.Flop).Name,
			block: soc.BlockName(ep.Block),
			delta: ep.Delta(), nom: ep.Nominal,
		})
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].delta > rows[b].delta })
	fmt.Println("\nmost-impacted endpoints (overkill candidates):")
	for i := 0; i < 5 && i < len(rows); i++ {
		fmt.Printf("  %-24s %-3s  %.3f ns -> %+.3f ns\n",
			rows[i].flop, rows[i].block, rows[i].nom, rows[i].delta)
	}
	if len(rows) > 0 {
		last := rows[len(rows)-1]
		fmt.Printf("\nand the other direction (capture clock slowed more than data):\n")
		fmt.Printf("  %-24s %-3s  %.3f ns -> %+.3f ns\n",
			last.flop, last.block, last.nom, last.delta)
	}
}
