// SCAP screening: apply the paper's production recipe — screen an existing
// at-speed pattern set against per-block statistical power thresholds and
// report exactly which patterns are IR-drop risks in which block, the list
// a test engineer would either regenerate or waive.
package main

import (
	"fmt"
	"log"

	"scap"
	"scap/internal/soc"
)

func main() {
	sys, err := scap.Build(scap.DefaultConfig(24))
	if err != nil {
		log.Fatal(err)
	}
	stat, err := sys.Statistical()
	if err != nil {
		log.Fatal(err)
	}
	flow, err := sys.ConventionalFlow(0)
	if err != nil {
		log.Fatal(err)
	}
	prof, err := sys.ProfilePatterns(flow)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("screening %d patterns against per-block Case-2 thresholds\n\n", len(prof))
	fmt.Printf("%-6s %12s %10s %10s\n", "block", "thr [mW]", "violations", "worst [mW]")
	type viol struct {
		pattern int
		block   int
		scap    float64
	}
	var worstList []viol
	for b := 0; b < sys.D.NumBlocks; b++ {
		thr := stat.ThresholdMW[b]
		n, worst, worstPat := 0, 0.0, -1
		for i := range prof {
			if v := prof[i].BlockSCAPVdd[b]; v > thr {
				n++
				if v > worst {
					worst, worstPat = v, i
				}
			}
		}
		fmt.Printf("%-6s %12.2f %10d %10.2f\n", soc.BlockName(b), thr, n, worst)
		if worstPat >= 0 {
			worstList = append(worstList, viol{worstPat, b, worst})
		}
	}

	fmt.Println("\nworst offender per block (candidates for regeneration or waiver):")
	for _, v := range worstList {
		p := &prof[v.pattern]
		fmt.Printf("  pattern #%-5d in %s: SCAP %.2f mW (%.1fx threshold), STW %.2f ns, %d toggles\n",
			v.pattern, soc.BlockName(v.block), v.scap,
			v.scap/stat.ThresholdMW[v.block], p.STW, p.Toggles)
	}

	// The fix the paper proposes: regenerate with the block-aware flow and
	// re-screen the hot block.
	nw, err := sys.NewProcedureFlow(0)
	if err != nil {
		log.Fatal(err)
	}
	nprof, err := sys.ProfilePatterns(nw)
	if err != nil {
		log.Fatal(err)
	}
	hb := stat.HotBlock
	before := scap.AboveThreshold(prof, hb, stat.ThresholdMW[hb])
	after := scap.AboveThreshold(nprof, hb, stat.ThresholdMW[hb])
	fmt.Printf("\nafter regenerating with the noise-tolerant procedure: %s violations %d/%d -> %d/%d\n",
		soc.BlockName(hb), before, len(prof), after, len(nprof))
}
