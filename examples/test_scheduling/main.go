// Test scheduling: the SOC-level consequence of per-pattern power
// profiling. Each clock domain's pattern set gets a test time (shift +
// capture cycles at its frequencies) and a peak power demand (worst chip
// SCAP of its patterns); domains are then scheduled in parallel sessions
// under the chip's functional power threshold — serial vs greedy vs the
// exact optimum.
package main

import (
	"fmt"
	"log"

	"scap"
	"scap/internal/atpg"
	"scap/internal/sched"
)

func main() {
	sys, err := scap.Build(scap.DefaultConfig(24))
	if err != nil {
		log.Fatal(err)
	}
	stat, err := sys.Statistical()
	if err != nil {
		log.Fatal(err)
	}

	// Build per-domain test descriptors: ATPG each domain, profile its
	// patterns, convert pattern count to tester time.
	var tests []sched.DomainTest
	shiftMHz := 10.0 // the paper's slow 10 MHz scan shift
	maxChain := float64(sys.SC.MaxChainLen())
	for dom := range sys.D.Domains {
		l := sys.NewFaultList()
		res, err := sys.ATPG(l, scap.ATPGOptions{Dom: dom, Fill: atpg.FillRandom, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fr := &scap.FlowResult{Name: "sched", Dom: dom, Patterns: res.Patterns, Faults: l}
		prof, err := sys.ProfilePatterns(fr)
		if err != nil {
			log.Fatal(err)
		}
		peak := 0.0
		for i := range prof {
			if prof[i].ChipSCAPVdd > peak {
				peak = prof[i].ChipSCAPVdd
			}
		}
		// Tester time: per pattern one full shift (maxChain cycles at the
		// shift clock) plus the launch/capture cycle.
		perPatternUS := (maxChain/shiftMHz + 2*sys.Period/1000) // µs
		tests = append(tests, sched.DomainTest{
			Name:    sys.D.Domains[dom].Name,
			TimeUS:  float64(len(res.Patterns)) * perPatternUS,
			PowerMW: peak,
		})
		fmt.Printf("%-6s %4d patterns  %8.1f µs  peak %6.1f mW\n",
			sys.D.Domains[dom].Name, len(res.Patterns), tests[dom].TimeUS, peak)
	}

	// Power budget: ideally the chip-level functional threshold — but the
	// dominant domain's random-fill patterns alone exceed it (the paper's
	// core observation!), so the test budget is set just above the largest
	// single-domain demand, the usual practice when patterns cannot be
	// regenerated.
	functional := stat.ThresholdMW[sys.D.NumBlocks]
	budget := functional
	for _, t := range tests {
		if t.PowerMW*1.1 > budget {
			budget = t.PowerMW * 1.1
		}
	}
	fmt.Printf("\nfunctional power threshold: %.1f mW\n", functional)
	if budget > functional {
		fmt.Printf("NOTE: the dominant domain's test power alone exceeds it — the paper's\n")
		fmt.Printf("motivation for noise-tolerant patterns; scheduling under %.1f mW instead\n", budget)
	}
	fmt.Println()

	show := func(name string, s *sched.Schedule) {
		fmt.Printf("%-8s makespan %9.1f µs, %d sessions\n", name, s.MakespanUS, len(s.Sessions))
		for i, ses := range s.Sessions {
			fmt.Printf("  session %d (%7.1f µs, %6.1f mW):", i+1, ses.TimeUS, ses.PowerMW)
			for _, d := range ses.Domains {
				fmt.Printf(" %s", tests[d].Name)
			}
			fmt.Println()
		}
	}
	serial := sched.Serial(tests)
	show("serial", serial)
	greedy, err := sched.Greedy(tests, budget)
	if err != nil {
		log.Fatal(err)
	}
	show("greedy", greedy)
	opt, err := sched.Optimal(tests, budget)
	if err != nil {
		log.Fatal(err)
	}
	show("optimal", opt)
	fmt.Printf("\nparallel testing saves %.1f%% of tester time within the power budget\n",
		100*(1-opt.MakespanUS/serial.MakespanUS))
}
