# Convenience targets for the scap reproduction.

.PHONY: test test-race bench bench-json bench-diff check repro flow report cover fmt vet

# Where bench-json writes its BENCH_*.json files. The default overwrites
# the committed baselines in the repo root; bench-diff points it at a
# scratch directory so a fresh run can be compared against the baselines.
BENCH_DIR ?= .

test:
	go test ./...

# Pre-PR gate: the worker-pool pipeline must be race-clean (see
# DESIGN.md "Concurrency model").
test-race:
	go test -race ./...

# One pass over every benchmark (compile + run each once); use
# `go test -bench=. -benchmem ./...` for timed runs.
bench:
	go test -bench . -benchtime 1x -run ^$$ ./...

# Machine-readable perf trajectory: run the power-grid solver and
# profiling-pipeline benchmarks with -benchmem and emit BENCH_pgrid.json,
# then the timing-simulation benchmarks into BENCH_sim.json (ns/op, B/op,
# allocs/op and extra metrics per benchmark) so regressions are comparable
# across PRs. The GridScale sweep (solve time vs node count per solver
# tier, n=32..2048, with grid_nodes as an extra metric) runs once per
# size (-benchtime 1x) and lands in the same BENCH_pgrid.json.
bench-json:
	{ go test -run '^$$' -bench 'Solve|Factor|Pgrid|IRDrop|ProfilePatterns' -benchmem . && \
	  go test -run '^$$' -bench 'GridScale' -benchtime 1x -benchmem . ; } | go run ./cmd/benchjson -o $(BENCH_DIR)/BENCH_pgrid.json
	go test -run '^$$' -bench 'Launch|TimingSimulation' -benchmem . | go run ./cmd/benchjson -o $(BENCH_DIR)/BENCH_sim.json
	go test -run '^$$' -bench '^BenchmarkDrop$$|DetectionCounts|GradeFaultSim|GradeDetections|ScreenPatterns|ProfilePatternsSerial' -benchmem . | go run ./cmd/benchjson -o $(BENCH_DIR)/BENCH_faultsim.json
	go test -run '^$$' -bench 'ATPGGenerate' -benchmem . | go run ./cmd/benchjson -o $(BENCH_DIR)/BENCH_atpg.json

# Perf-regression gate: re-run the bench-json pipelines into a scratch
# directory and diff every file against the committed baseline with
# cmd/benchdiff. Tolerances are deliberately generous (CI runners and
# single-CPU baselines are noisy); the gate exists to catch order-of-2x
# regressions, not percent-level drift. Fails the build on regression.
bench-diff:
	mkdir -p .benchfresh
	$(MAKE) bench-json BENCH_DIR=.benchfresh
	for f in BENCH_pgrid BENCH_sim BENCH_faultsim BENCH_atpg; do \
	  go run ./cmd/benchdiff -base $$f.json -fresh .benchfresh/$$f.json \
	    -tol-ns 4 -tol-mem 2 -tol-extra 2.5 || exit 1; \
	done

# CI-style tier-1 verify in one command.
check:
	go vet ./...
	go build ./...
	go test ./...

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
repro:
	go run ./cmd/repro -scale 4 | tee docs/report_scale4.txt

# One-shot release pipeline: all artifacts under flow_out/.
flow:
	go run ./cmd/flow -scale 8 -out flow_out

# Instrumented flow run: stage-span trace, solver/pool counters and the
# versioned JSON run report under flow_out/ (see DESIGN.md "Observability").
report:
	go run ./cmd/flow -scale 8 -out flow_out -report flow_out/run_report.json

cover:
	go test ./... -coverprofile=cover.out && go tool cover -func=cover.out | tail -1

fmt:
	gofmt -w .

vet:
	go vet ./...
