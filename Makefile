# Convenience targets for the scap reproduction.

.PHONY: test bench repro flow cover fmt vet

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
repro:
	go run ./cmd/repro -scale 4 | tee docs/report_scale4.txt

# One-shot release pipeline: all artifacts under flow_out/.
flow:
	go run ./cmd/flow -scale 8 -out flow_out

cover:
	go test ./... -coverprofile=cover.out && go tool cover -func=cover.out | tail -1

fmt:
	gofmt -w .

vet:
	go vet ./...
