// Package scap reproduces "Transition Delay Fault Test Pattern Generation
// Considering Supply Voltage Noise in a SOC Design" (Ahmed, Tehranipoor,
// Jayaram — DAC 2007): the SCAP switching-cycle-average-power model, the
// supply-noise-tolerant per-block fill-0 pattern-generation procedure, and
// the statistical/dynamic IR-drop validation flow — together with every
// substrate they need (synthetic SOC, scan DFT, two-frame PODEM ATPG,
// event-driven timing simulation, power-grid solver).
//
// This file is the public facade: it re-exports the main entry points so
// that examples and downstream users interact with one package.
//
//	sys, _ := scap.Build(scap.DefaultConfig(8))
//	stat, _ := sys.Statistical()
//	conv, _ := sys.ConventionalFlow(0)       // random-fill baseline
//	quiet, _ := sys.NewProcedureFlow(0)      // the paper's 3-step procedure
//	prof, _ := sys.ProfilePatterns(quiet)    // per-pattern SCAP
package scap

import (
	"io"

	"scap/internal/atpg"
	"scap/internal/core"
	"scap/internal/delayscale"
	"scap/internal/fault"
	"scap/internal/ftas"
	"scap/internal/pattern"
	"scap/internal/repro"
	"scap/internal/sched"
	"scap/internal/soc"
	"scap/internal/verilog"
)

// Config aggregates all subsystem parameters; see core.Config.
type Config = core.Config

// System is a fully built SOC plus its analysis machinery.
type System = core.System

// FlowResult is one complete pattern-generation flow.
type FlowResult = core.FlowResult

// PatternProfile is the per-pattern SCAP/CAP summary.
type PatternProfile = core.PatternProfile

// StatAnalysis is the vector-less statistical IR-drop analysis (Table 3).
type StatAnalysis = core.StatAnalysis

// DynamicIR is one pattern's dynamic IR-drop analysis.
type DynamicIR = core.DynamicIR

// PowerModel selects CAP or SCAP averaging for dynamic analyses.
type PowerModel = core.PowerModel

// Power models.
const (
	ModelCAP  = core.ModelCAP
	ModelSCAP = core.ModelSCAP
)

// Pattern is one launch-off-capture (or -shift) test pattern.
type Pattern = atpg.Pattern

// ATPGOptions configures a raw ATPG invocation (System.ATPG).
type ATPGOptions = atpg.Options

// Fill is the don't-care fill strategy.
type Fill = atpg.Fill

// Fill strategies.
const (
	FillRandom   = atpg.FillRandom
	Fill0        = atpg.Fill0
	Fill1        = atpg.Fill1
	FillAdjacent = atpg.FillAdjacent
)

// LaunchMode selects launch-off-capture or launch-off-shift.
type LaunchMode = atpg.LaunchMode

// Launch modes.
const (
	LOC = atpg.LOC
	LOS = atpg.LOS
)

// DefaultConfig returns the full experiment configuration at the given
// scale divisor (1 = the paper's ~23K-flop design; 8 runs in seconds).
func DefaultConfig(scale int) Config { return core.DefaultConfig(scale) }

// Build constructs the SOC and all analysis machinery.
func Build(cfg Config) (*System, error) { return core.Build(cfg) }

// AboveThreshold counts patterns whose SCAP in a block exceeds a threshold.
func AboveThreshold(profiles []PatternProfile, block int, thresholdMW float64) int {
	return core.AboveThreshold(profiles, block, thresholdMW)
}

// Runner regenerates the paper's tables and figures.
type Runner = repro.Runner

// NewRunner builds a system at the given scale and prepares the experiment
// harness (see Experiments for the ids).
func NewRunner(scale int) (*Runner, error) { return repro.New(scale) }

// Experiments lists the reproducible table/figure ids in paper order.
var Experiments = repro.Experiments

// --- paper-adjacent extensions -------------------------------------------

// DomainTest, Session and Schedule describe power-constrained SOC test
// scheduling (see internal/sched).
type (
	DomainTest = sched.DomainTest
	Session    = sched.Session
	Schedule   = sched.Schedule
)

// ScheduleSerial returns the one-domain-at-a-time schedule.
func ScheduleSerial(tests []DomainTest) *Schedule { return sched.Serial(tests) }

// ScheduleGreedy packs domains longest-first under the power budget.
func ScheduleGreedy(tests []DomainTest, budgetMW float64) (*Schedule, error) {
	return sched.Greedy(tests, budgetMW)
}

// ScheduleOptimal computes the exact minimum-makespan schedule (≤16 domains).
func ScheduleOptimal(tests []DomainTest, budgetMW float64) (*Schedule, error) {
	return sched.Optimal(tests, budgetMW)
}

// FTASResult is a faster-than-at-speed overkill sweep (see internal/ftas).
type FTASResult = ftas.Result

// FTASSweep sweeps capture periods over a delay-impact analysis and counts
// the good-chip failures IR-drop would cause at each frequency.
func FTASSweep(imp *delayscale.Impact, minPeriod, maxPeriod, step, margin float64) (*FTASResult, error) {
	return ftas.Sweep(imp, minPeriod, maxPeriod, step, margin)
}

// DelayImpact is the nominal-vs-derated endpoint comparison of one pattern.
type DelayImpact = delayscale.Impact

// WritePatterns and ReadPatterns serialize pattern sets in the repo's
// STIL-flavored format.
func WritePatterns(w io.Writer, sys *System, pats []Pattern) error {
	return pattern.Write(w, sys.D, pats)
}

// ReadPatterns parses a pattern file against the system's design.
func ReadPatterns(r io.Reader, sys *System) ([]Pattern, error) {
	return pattern.Read(r, sys.D)
}

// WriteVerilog emits the design as structural Verilog.
func WriteVerilog(w io.Writer, sys *System) error { return verilog.Write(w, sys.D) }

// QualityReport grades detection-path delays (small-delay-defect
// screening quality); produced by System.GradeDetections.
type QualityReport = core.QualityReport

// PatternScreen is the packed zero-delay pre-screen estimate of one
// pattern; produced by System.ScreenPatterns, 64 patterns per packed
// good-machine batch and popcount pass.
type PatternScreen = core.PatternScreen

// ScreenTop returns the indexes of the top fraction of screened patterns
// ranked by estimated VDD CAP in the given block (negative or
// out-of-range block ranks on the chip total) — feed the selection to
// System.ProfilePatternsAt for exact verification.
func ScreenTop(screens []PatternScreen, block int, frac float64) []int {
	return core.ScreenTop(screens, block, frac)
}

// FunctionalPower is the mission-mode switching baseline; produced by
// System.FunctionalPowerSim.
type FunctionalPower = core.FunctionalPower

// CompactPatterns applies reverse-order static compaction to a pattern
// set, preserving its detected-fault coverage with fewer patterns. The
// fault list must be freshly created (NewFaultList).
func CompactPatterns(sys *System, l *FaultList, pats []Pattern, dom int) ([]Pattern, error) {
	sys.FSim.Workers = sys.Workers
	return atpg.CompactReverse(sys.FSim, l, pats, dom)
}

// FaultList tracks transition-fault statuses (see internal/fault).
type FaultList = fault.List

// Floorplan block indexes (the paper's B1..B6; B5 is the hot central
// block) and the total block count.
const (
	B1 = soc.B1
	B2 = soc.B2
	B3 = soc.B3
	B4 = soc.B4
	B5 = soc.B5
	B6 = soc.B6

	NumBlocks = soc.NumBlocks
)

// BlockName returns the paper's name for a block index ("B1".."B6").
func BlockName(b int) string { return soc.BlockName(b) }
